/// \file micro_forecast.cc
/// \brief Micro-benchmarks of the forecast kernel engine.
///
/// Emits BENCH_forecast.json with before/after rows for every tuned
/// kernel (the scalar reference implementations stay callable exactly so
/// this file can measure them) and per-model Fit()/Forecast() timings in
/// both modes. The headline row is the SSA fit: the O(n·L) Hankel Gram
/// plus the relative-threshold Jacobi sweep schedule must hold a >= 3x
/// speedup over the scalar path at the default window.
///
/// With `--budgets=<path>` the fast-mode per-model fit times are checked
/// against the "forecast_train_micros" p50/p99 ceilings in the given
/// budgets file (tools/check.sh perf wires this up); a violation exits
/// non-zero so the gate fails loudly. Two assertions are always on,
/// budgets file or not: every model's fit_fast p50 must be <=
/// fit_scalar p50 * 1.05 (fast mode must never lose), and the batched
/// fleet row measures 1200 same-grid additive servers through the
/// BatchTrainer against the plain per-server loop.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "forecast/additive.h"
#include "forecast/arima.h"
#include "forecast/batch.h"
#include "forecast/feedforward.h"
#include "forecast/linalg.h"
#include "forecast/model.h"
#include "forecast/scratch.h"
#include "forecast/ssa.h"

using namespace seagull;

namespace {

using Clock = std::chrono::steady_clock;

/// Diurnal load with noise at the 5-minute production grid — the same
/// shape every trainable model sees in the pipeline.
LoadSeries SyntheticWeek(uint64_t seed, int64_t days = 7) {
  Rng rng(seed);
  std::vector<double> values;
  const int64_t ticks = days * 288;
  double level = 30.0;
  for (int64_t i = 0; i < ticks; ++i) {
    const double phase =
        static_cast<double>(i % 288) / 288.0 * 6.283185307179586;
    level = std::clamp(level + rng.Gaussian(0.0, 0.8), 5.0, 95.0);
    values.push_back(
        std::clamp(level + 15.0 * std::sin(phase), 0.0, 100.0));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

double MicrosSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

double Percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) return 0.0;
  const double idx = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

struct FitTiming {
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double predict_micros = 0.0;  ///< median per-Forecast cost (one day out)
};

/// Times `reps` fresh fits of `model_name` on a fixed synthetic week in
/// the current kernel mode, plus the one-day Forecast cost of the last
/// fit.
FitTiming TimeModel(const std::string& model_name, int reps) {
  const LoadSeries week = SyntheticWeek(17);
  FitTiming out;
  std::vector<double> fit_samples, predict_samples;
  for (int rep = 0; rep < reps; ++rep) {
    auto model = ModelFactory::Global().Create(model_name);
    model.status().Abort();
    const auto t0 = Clock::now();
    (*model)->Fit(week).Abort();
    fit_samples.push_back(MicrosSince(t0));
    const auto t1 = Clock::now();
    auto forecast =
        (*model)->Forecast(week, week.end(), kMinutesPerDay);
    forecast.status().Abort();
    predict_samples.push_back(MicrosSince(t1));
    benchmark::DoNotOptimize(forecast->size());
  }
  out.p50_micros = Percentile(fit_samples, 0.5);
  out.p99_micros = Percentile(fit_samples, 0.99);
  out.predict_micros = Percentile(predict_samples, 0.5);
  return out;
}

/// Min-of-reps wall micros of `body()` (kernels are fast; `inner`
/// repeats amortize the clock).
template <typename Fn>
double TimeKernel(int reps, int inner, Fn&& body) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < inner; ++i) body();
    const double micros = MicrosSince(t0) / static_cast<double>(inner);
    if (rep == 0 || micros < best) best = micros;
  }
  return best;
}

Json RowJson(const char* unit, double before, double after) {
  Json row = Json::MakeObject();
  row["unit"] = unit;
  row["scalar"] = before;
  row["fast"] = after;
  row["speedup"] = after > 0.0 ? before / after : 0.0;
  return row;
}

/// Before/after micro rows for each tuned linalg kernel at
/// production-relevant shapes.
Json KernelRows() {
  Json rows = Json::MakeObject();
  Rng rng(7);

  // Hankel Gram at the SSA default: n = one week, L = 72.
  {
    const int64_t n = 2016, L = 72;
    std::vector<double> x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.Gaussian(0.0, 1.0);
    Matrix gram;
    const double fast = TimeKernel(5, 4, [&] {
      BuildLagGram(x.data(), n, L, &gram);
      benchmark::DoNotOptimize(gram.At(0, 0));
    });
    double scalar = 0.0;
    {
      ScopedScalarKernels guard;
      scalar = TimeKernel(3, 1, [&] {
        BuildLagGram(x.data(), n, L, &gram);
        benchmark::DoNotOptimize(gram.At(0, 0));
      });
    }
    rows["build_lag_gram_2016x72"] = RowJson("micros", scalar, fast);

    // Eigendecomposition of that Gram: the sweep schedule is the tuned
    // part (the scalar cutoff always burns the full sweep budget).
    Matrix gram_fast;
    BuildLagGram(x.data(), n, L, &gram_fast);
    const double eig_fast = TimeKernel(3, 1, [&] {
      auto eig = SymmetricEigen(gram_fast);
      eig.status().Abort();
      benchmark::DoNotOptimize(eig->values[0]);
    });
    double eig_scalar = 0.0;
    {
      ScopedScalarKernels guard;
      eig_scalar = TimeKernel(3, 1, [&] {
        auto eig = SymmetricEigen(gram_fast);
        eig.status().Abort();
        benchmark::DoNotOptimize(eig->values[0]);
      });
    }
    rows["symmetric_eigen_72"] = RowJson("micros", eig_scalar, eig_fast);
  }

  // Blocked matmul at a feedforward-like shape.
  {
    Matrix a(96, 128), b(128, 96);
    for (int64_t i = 0; i < 96; ++i)
      for (int64_t j = 0; j < 128; ++j) a.At(i, j) = rng.Gaussian(0.0, 1.0);
    for (int64_t i = 0; i < 128; ++i)
      for (int64_t j = 0; j < 96; ++j) b.At(i, j) = rng.Gaussian(0.0, 1.0);
    const double fast = TimeKernel(5, 4, [&] {
      auto c = MatMul(a, b);
      c.status().Abort();
      benchmark::DoNotOptimize(c->At(0, 0));
    });
    double scalar = 0.0;
    {
      ScopedScalarKernels guard;
      scalar = TimeKernel(5, 4, [&] {
        auto c = MatMul(a, b);
        c.status().Abort();
        benchmark::DoNotOptimize(c->At(0, 0));
      });
    }
    rows["matmul_96x128x96"] = RowJson("micros", scalar, fast);
  }

  // SYRK-style Gram of a tall-skinny design matrix (least squares).
  {
    Matrix a(2016, 24);
    for (int64_t i = 0; i < a.rows(); ++i)
      for (int64_t j = 0; j < a.cols(); ++j)
        a.At(i, j) = rng.Gaussian(0.0, 1.0);
    const double fast = TimeKernel(5, 4, [&] {
      Matrix g = AtA(a, 1e-3);
      benchmark::DoNotOptimize(g.At(0, 0));
    });
    double scalar = 0.0;
    {
      ScopedScalarKernels guard;
      scalar = TimeKernel(5, 4, [&] {
        Matrix g = AtA(a, 1e-3);
        benchmark::DoNotOptimize(g.At(0, 0));
      });
    }
    rows["ata_2016x24"] = RowJson("micros", scalar, fast);
  }

  // Unrolled dot at the SSA recurrence length.
  {
    std::vector<double> a(4096), b(4096);
    for (auto& v : a) v = rng.Gaussian(0.0, 1.0);
    for (auto& v : b) v = rng.Gaussian(0.0, 1.0);
    const double fast = TimeKernel(7, 64, [&] {
      benchmark::DoNotOptimize(Dot(a, b));
    });
    double scalar = 0.0;
    {
      ScopedScalarKernels guard;
      scalar = TimeKernel(7, 64, [&] {
        benchmark::DoNotOptimize(Dot(a, b));
      });
    }
    rows["dot_4096"] = RowJson("micros", scalar, fast);
  }
  return rows;
}

/// Fleet-scale batched training: 1200 servers on one telemetry grid,
/// additive family, BatchTrainer vs the plain per-server loop
/// training.cc used to run. The emitted row's fit_fast percentiles are
/// the amortized per-server cost — each server's own fit time plus its
/// share of the group overhead (the shared design/Gram build) — so the
/// budget gate fails if batching ever stops paying for itself.
Json BatchFleetRow() {
  constexpr int64_t kServers = 1200;
  std::vector<LoadSeries> fleet;
  fleet.reserve(kServers);
  for (int64_t s = 0; s < kServers; ++s) {
    fleet.push_back(SyntheticWeek(1000 + static_cast<uint64_t>(s)));
  }

  const auto t_ref = Clock::now();
  for (const LoadSeries& series : fleet) {
    auto model = ModelFactory::Global().Create("additive");
    model.status().Abort();
    (*model)->Fit(series).Abort();
    benchmark::DoNotOptimize((*model)->name());
  }
  const double per_server_total = MicrosSince(t_ref);

  std::vector<BatchTrainItem> items(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) items[i].train = &fleet[i];
  BatchTrainStats stats;
  const auto t_batch = Clock::now();
  auto results = BatchTrainer::Fit("additive", items, /*pool=*/nullptr,
                                   &stats);
  const double batch_total = MicrosSince(t_batch);
  results.status().Abort();

  std::vector<double> item_micros;
  double item_sum = 0.0;
  for (const BatchTrainResult& r : *results) {
    r.status.Abort();
    item_micros.push_back(r.fit_micros);
    item_sum += r.fit_micros;
  }
  const double overhead = std::max(0.0, batch_total - item_sum) /
                          static_cast<double>(kServers);
  const double speedup =
      batch_total > 0.0 ? per_server_total / batch_total : 0.0;
  std::printf("%-14s %lld servers  per-server %9.0f us -> batched "
              "%9.0f us  (%5.2fx, %lld groups)\n",
              "batch additive", static_cast<long long>(kServers),
              per_server_total, batch_total, speedup,
              static_cast<long long>(stats.groups));

  Json row = Json::MakeObject();
  Json fast_j = Json::MakeObject();
  fast_j["p50"] = Percentile(item_micros, 0.5) + overhead;
  fast_j["p99"] = Percentile(item_micros, 0.99) + overhead;
  row["fit_fast"] = std::move(fast_j);
  row["servers"] = static_cast<double>(kServers);
  row["groups"] = static_cast<double>(stats.groups);
  row["per_server_total_micros"] = per_server_total;
  row["batch_total_micros"] = batch_total;
  row["batch_speedup"] = speedup;
  return row;
}

/// Checks fast-mode fit timings against the "forecast_train_micros"
/// section of the budgets file. Returns the number of violations.
int CheckBudgets(const std::string& path, const Json& models) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open budgets file: %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "budgets parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (!parsed->Contains("forecast_train_micros")) {
    std::fprintf(stderr,
                 "budgets file has no forecast_train_micros section\n");
    return 1;
  }
  int violations = 0;
  for (const auto& [name, ceiling] : (*parsed)["forecast_train_micros"]
                                         .AsObject()) {
    if (!models.Contains(name)) {
      std::fprintf(stderr, "budgeted model was not measured: %s\n",
                   name.c_str());
      ++violations;
      continue;
    }
    const Json& row = models[name];
    auto check = [&](const char* pct) {
      const double budget = ceiling[pct].AsDouble();
      const double measured = row["fit_fast"][pct].AsDouble();
      if (measured > budget) {
        std::fprintf(stderr,
                     "train budget exceeded: %s %s measured %.0fus > "
                     "budget %.0fus (if intentional, re-baseline "
                     "tests/budgets.json)\n",
                     name.c_str(), pct, measured, budget);
        ++violations;
      }
    };
    check("p50");
    check("p99");
  }
  if (violations == 0) {
    std::printf("train budgets OK (%s)\n", path.c_str());
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  std::string budgets_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budgets=", 10) == 0) {
      budgets_path = argv[i] + 10;
      break;
    }
  }

  seagull::bench::PrintHeader("Forecast kernels",
                              "scalar reference vs tuned engine");

  struct ModelPlan {
    const char* name;
    int reps;
  };
  // Heavier optimizers get fewer reps; their budgets carry the headroom.
  const ModelPlan kPlans[] = {
      {"ssa", 9}, {"additive", 7}, {"feedforward", 5}, {"arima", 3}};

  Json models = Json::MakeObject();
  double ssa_speedup = 0.0;
  int regressions = 0;
  for (const ModelPlan& plan : kPlans) {
    FitTiming fast = TimeModel(plan.name, plan.reps);
    FitTiming scalar;
    {
      ScopedScalarKernels guard;
      scalar = TimeModel(plan.name, std::max(2, plan.reps / 2));
    }
    const double speedup = fast.p50_micros > 0.0
                               ? scalar.p50_micros / fast.p50_micros
                               : 0.0;
    if (std::strcmp(plan.name, "ssa") == 0) ssa_speedup = speedup;
    // Fast mode must never lose to its own scalar reference (5% grace
    // absorbs timer jitter on models whose paths genuinely tie).
    if (fast.p50_micros > scalar.p50_micros * 1.05) {
      std::fprintf(stderr,
                   "fast-path regression: %s fit p50 %.0fus > scalar "
                   "p50 %.0fus * 1.05\n",
                   plan.name, fast.p50_micros, scalar.p50_micros);
      ++regressions;
    }
    std::printf("%-14s fit p50 %9.0f us -> %9.0f us  (%5.2fx)   "
                "predict %7.0f us\n",
                plan.name, scalar.p50_micros, fast.p50_micros, speedup,
                fast.predict_micros);
    Json row = Json::MakeObject();
    Json fast_j = Json::MakeObject();
    fast_j["p50"] = fast.p50_micros;
    fast_j["p99"] = fast.p99_micros;
    row["fit_fast"] = std::move(fast_j);
    Json scalar_j = Json::MakeObject();
    scalar_j["p50"] = scalar.p50_micros;
    scalar_j["p99"] = scalar.p99_micros;
    row["fit_scalar"] = std::move(scalar_j);
    row["fit_speedup"] = speedup;
    row["predict_micros"] = fast.predict_micros;
    models[plan.name] = std::move(row);
  }
  std::printf("%-14s %5.2fx  (target >= 3x)\n", "ssa speedup", ssa_speedup);

  models["batch"] = BatchFleetRow();

  Json kernels = KernelRows();
  for (const auto& [name, row] : kernels.AsObject()) {
    std::printf("%-26s %9.1f us -> %9.1f us  (%5.2fx)\n", name.c_str(),
                row["scalar"].AsDouble(), row["fast"].AsDouble(),
                row["speedup"].AsDouble());
  }

  Json out = Json::MakeObject();
  out["benchmark"] = "forecast_kernels";
  out["models"] = std::move(models);
  out["kernels"] = std::move(kernels);
  out["ssa_fit_speedup"] = ssa_speedup;
  out["ssa_fit_speedup_target"] = ">=3x";
  std::FILE* f = std::fopen("BENCH_forecast.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_forecast.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_forecast.json\n");
  }

  int violations = regressions;
  if (!budgets_path.empty()) {
    violations += CheckBudgets(budgets_path, out["models"]);
  }
  return violations == 0 ? 0 : 1;
}
