/// \file fig17_autoscale_runtime.cc
/// \brief Figure 17: SQL-database training, inference, and accuracy
/// computation runtime per model.
///
/// Paper shape: persistent forecast has no training; the neural network
/// trains in bounded time; ARIMA's training "is still not comparable with
/// other models" even on the coarser 15-minute grid.

#include "autoscale/eval.h"
#include "bench_common.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  PrintHeader("Figure 17", "SQL auto-scale training/inference/accuracy time");

  SqlFleetConfig config;
  config.num_databases = 40;
  config.weeks = 4;
  config.seed = 2025;
  SqlFleet fleet = SqlFleet::Generate(config);

  AutoscaleEvalOptions options;
  options.models = {"persistent_prev_day", "feedforward", "additive"};
  auto results = EvaluateAutoscaleModels(fleet, options);
  results.status().Abort();

  // ARIMA separately on fewer databases so the bench stays bounded.
  AutoscaleEvalOptions arima_options;
  arima_options.models = {"arima"};
  arima_options.max_databases = 8;
  auto arima = EvaluateAutoscaleModels(fleet, arima_options);
  arima.status().Abort();
  results->push_back((*arima)[0]);

  std::printf("%-22s %10s %12s %12s %12s %14s\n", "model", "databases",
              "train ms", "infer ms", "accuracy ms", "train ms/db");
  for (const auto& r : *results) {
    double per_db = r.databases_evaluated > 0
                        ? r.train_millis /
                              static_cast<double>(r.databases_evaluated)
                        : 0.0;
    std::printf("%-22s %10lld %12.1f %12.1f %12.1f %14.2f\n",
                r.model.c_str(),
                static_cast<long long>(r.databases_evaluated),
                r.train_millis, r.inference_millis, r.accuracy_millis,
                per_db);
  }
  return 0;
}
