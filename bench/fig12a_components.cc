/// \file fig12a_components.cc
/// \brief Figure 12(a): runtime of the use-case-agnostic pipeline
/// components per region, for four regions of different sizes.
///
/// Components measured (as in the paper): Data Ingestion, Data
/// Validation, Feature Extraction, Model Deployment, Accuracy Evaluation.
/// Training/Inference are Figure 11(a); Model Tracking, Scheduler, and
/// Incident Management run concurrently and are omitted. Paper shape:
/// deployment is roughly constant; everything else grows linearly with
/// input size; accuracy evaluation dominates at large inputs.

/// Telemetry is staged in the SeriesBlock binary format (the production
/// data plane); a second, CSV-staged run of each region adds one
/// comparison row so the format speedup is visible in the same table.

#include "bench_common.h"
#include "pipeline/pipeline.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  PrintHeader("Figure 12(a)", "pipeline component runtime per region");

  auto lake = LakeStore::OpenTemporary("fig12a");
  lake.status().Abort();
  DocStore docs;
  Pipeline pipeline = Pipeline::Standard();

  struct Row {
    std::string region;
    int64_t bytes = 0;
    PipelineRunReport report;      // binary (SeriesBlock) staging
    PipelineRunReport csv_report;  // same fleet staged as CSV
  };
  std::vector<Row> rows;
  int sizes[] = {40, 120, 400, 1200};
  for (int r = 0; r < 4; ++r) {
    Row row;
    row.region = "size-" + std::to_string(sizes[r]);
    // Production setting: the pipeline ingests one week of telemetry
    // (§6.1 "Figure 12 considers only one week").
    Fleet fleet = ProductionFleet(row.region, sizes[r],
                                  500 + static_cast<uint64_t>(r), 4);
    ExtractionOptions extraction;
    extraction.history_weeks = 4;
    lake->Put(LakeStore::TelemetryKey(row.region, 3),
              ExtractWeekBlock(fleet, 3, extraction))
        .Abort();
    const std::string csv_region = row.region + "-csv";
    lake->Put(LakeStore::TelemetryKey(csv_region, 3),
              ExtractWeekCsvText(fleet, 3, extraction))
        .Abort();
    auto size = lake->SizeOf(LakeStore::TelemetryKey(row.region, 3));
    row.bytes = size.ValueOr(0);

    PipelineContext ctx;
    ctx.region = row.region;
    ctx.week = 3;
    ctx.lake = &*lake;
    ctx.docs = &docs;
    row.report = pipeline.Run(&ctx);

    PipelineContext csv_ctx;
    csv_ctx.region = csv_region;
    csv_ctx.week = 3;
    csv_ctx.lake = &*lake;
    csv_ctx.docs = &docs;
    row.csv_report = pipeline.Run(&csv_ctx);
    rows.push_back(std::move(row));
  }

  const char* components[] = {"ingestion", "validation", "features",
                              "deployment", "accuracy"};
  std::printf("%-12s %10s", "component", "MB");
  for (const auto& row : rows) std::printf(" %12s", row.region.c_str());
  std::printf("\n");
  std::printf("%-12s %10s", "", "");
  for (const auto& row : rows) {
    std::printf(" %10.1fMB",
                static_cast<double>(row.bytes) / (1024.0 * 1024.0));
  }
  std::printf("\n");
  for (const char* component : components) {
    std::printf("%-12s %10s", component, "");
    for (const auto& row : rows) {
      std::printf(" %10.1fms", row.report.MillisOf(component));
    }
    std::printf("\n");
  }
  std::printf("%-12s %10s", "total", "");
  for (const auto& row : rows) {
    std::printf(" %10.1fms", row.report.TotalMillis());
  }
  std::printf("\n");
  // The same regions staged as CSV: only ingestion changes, so one
  // comparison row (plus the format speedup) tells the data-plane story.
  std::printf("%-12s %10s", "ingest(csv)", "");
  for (const auto& row : rows) {
    std::printf(" %10.1fms", row.csv_report.MillisOf("ingestion"));
  }
  std::printf("\n");
  std::printf("%-12s %10s", "fmt speedup", "");
  for (const auto& row : rows) {
    const double binary_ms = row.report.MillisOf("ingestion");
    const double csv_ms = row.csv_report.MillisOf("ingestion");
    std::printf(" %10.1fx ", binary_ms > 0.0 ? csv_ms / binary_ms : 0.0);
  }
  std::printf("\n");
  for (const auto& row : rows) {
    if (!row.report.success) {
      std::printf("WARNING: run for %s failed: %s\n", row.region.c_str(),
                  row.report.failure.c_str());
      return 1;
    }
    if (!row.csv_report.success) {
      std::printf("WARNING: csv run for %s failed: %s\n", row.region.c_str(),
                  row.csv_report.failure.c_str());
      return 1;
    }
  }
  return 0;
}
