/// \file fig13a_impact.cc
/// \brief Figure 13(a): backup-scheduling impact — where backups landed
/// relative to the true lowest-load windows, per cohort.
///
/// Paper (all regions, one month): for servers with predictable daily
/// patterns, 12.5% of backups moved from colliding defaults to correctly
/// chosen LL windows, 85.3% of defaults already coincided with LL
/// windows, and 2.1% of LL windows were chosen incorrectly; for stable
/// servers 99.5% of defaults already matched; for busy servers (>60%
/// load) 7.7% of collisions with peaks were avoided.

#include "bench_common.h"
#include "scheduling/simulation.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

void PrintImpactRow(const char* cohort, const ImpactReport& impact) {
  std::printf("%-18s %8lld %9.1f%% %12.1f%% %10.1f%% %10.1f\n", cohort,
              static_cast<long long>(impact.backups),
              100.0 * impact.FractionMoved(),
              100.0 * impact.FractionDefaultLl(),
              100.0 * impact.FractionIncorrect(),
              impact.improved_minutes / 60.0);
}

}  // namespace

int main() {
  PrintHeader("Figure 13(a)", "impact of optimized backup scheduling");

  // A production-mix region plus a pattern-enriched region so the
  // daily/weekly cohorts have enough members to report (the paper's
  // pattern classes hold "hundreds of top-revenue customers" out of tens
  // of thousands of servers; a scaled fleet needs enrichment).
  RegionConfig mixed;
  mixed.name = "impact-mixed";
  mixed.num_servers = 600;
  mixed.weeks = 5;
  mixed.seed = 131;

  RegionConfig patterned;
  patterned.name = "impact-patterned";
  patterned.num_servers = 400;
  patterned.weeks = 5;
  patterned.seed = 132;
  patterned.mix.short_lived = 0.10;
  patterned.mix.stable = 0.30;
  patterned.mix.daily = 0.25;
  patterned.mix.weekly = 0.15;
  patterned.mix.no_pattern = 0.20;

  SimulationOptions options;
  options.regions = {mixed, patterned};
  options.threads = 8;

  auto result = RunSimulation(options);
  result.status().Abort();

  std::printf("%-18s %8s %10s %13s %11s %10s\n", "cohort", "backups",
              "moved-LL", "default=LL", "incorrect", "impr.hours");
  PrintImpactRow("all servers", result->impact);
  PrintImpactRow("stable", result->impact_stable);
  PrintImpactRow("daily pattern", result->impact_daily);
  PrintImpactRow("weekly pattern", result->impact_weekly);
  PrintImpactRow("no pattern", result->impact_no_pattern);

  std::printf(
      "\npaper reference: daily-pattern cohort 12.5%% moved / 85.3%% "
      "default=LL / 2.1%% incorrect; stable cohort 99.5%% default=LL\n");

  const ImpactReport& impact = result->impact;
  std::printf(
      "\nbusy cohort (>60%% load): %lld backups, %lld default collisions, "
      "%lld executed collisions, %.1f%% avoided (paper: 7.7%%)\n",
      static_cast<long long>(impact.busy_backups),
      static_cast<long long>(impact.busy_default_collisions),
      static_cast<long long>(impact.busy_executed_collisions),
      100.0 * impact.BusyCollisionsAvoided());

  const auto& engine = result->engine;
  std::printf(
      "\nbackup engine (contention model, %lld backups): mean stretch "
      "default %.3fx -> scheduled %.3fx | contended minutes/backup "
      "default %.1f -> scheduled %.1f\n",
      static_cast<long long>(engine.backups), engine.stretch_default,
      engine.stretch_executed, engine.contended_default,
      engine.contended_executed);
  return 0;
}
