/// \file ablation_design.cc
/// \brief Ablations of the design constants the paper fixes by expert
/// choice: the three-week predictability gate (§2.3), the asymmetric
/// +10/−5 error bound (Definition 1), the LL-window tolerance
/// (Definition 8), and the §6.1 backup-day optimization.
///
/// Each section varies one constant while holding the rest at production
/// values and reports the trade-off it controls.

#include "bench_common.h"
#include "forecast/persistent.h"
#include "metrics/predictable.h"
#include "scheduling/day_optimizer.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

/// Previous-day forecaster over observed telemetry.
DayForecaster MakeForecaster(const LoadSeries* observed) {
  return [observed](int64_t day) -> Result<LoadSeries> {
    PersistentForecast model(PersistentVariant::kPreviousDay);
    LoadSeries recent =
        observed->Slice(observed->start(), day * kMinutesPerDay);
    return model.Forecast(recent, day * kMinutesPerDay, kMinutesPerDay);
  };
}

void AblateGateWeeks(const Fleet& fleet) {
  PrintHeader("Ablation 1", "predictability gate length (paper: 3 weeks)");
  std::printf("%-10s %10s %12s %14s\n", "weeks", "pass rate",
              "regret rate", "(bad target-day among passers)");
  const int64_t target_week = 5;
  for (int64_t gate = 1; gate <= 4; ++gate) {
    FleetConfig fleet_config;
    fleet_config.long_lived_weeks = gate;
    int64_t passed = 0, regret = 0, total = 0;
    for (const auto& profile : fleet.servers()) {
      if (profile.IsShortLived()) continue;
      LoadSeries observed = fleet.ObservedLoad(
          profile, 0, target_week * kMinutesPerWeek + kMinutesPerWeek);
      ++total;
      PredictabilityResult pred = EvaluatePredictability(
          MakeForecaster(&observed), observed, profile.created_at,
          profile.deleted_at, target_week, profile.backup_day,
          profile.backup_duration_minutes, AccuracyConfig{}, fleet_config);
      if (!pred.predictable) continue;
      ++passed;
      // Outcome on the actually scheduled day.
      int64_t day = target_week * 7 +
                    static_cast<int64_t>(profile.backup_day);
      auto forecast = MakeForecaster(&observed)(day);
      if (!forecast.ok()) {
        ++regret;
        continue;
      }
      LowLoadEvaluation eval = EvaluateLowLoad(
          *forecast, observed, day, profile.backup_duration_minutes);
      if (!eval.evaluable || !eval.window_correct) ++regret;
    }
    std::printf("%-10lld %9.1f%% %11.1f%%\n", static_cast<long long>(gate),
                100.0 * static_cast<double>(passed) /
                    static_cast<double>(total),
                passed == 0 ? 0.0
                            : 100.0 * static_cast<double>(regret) /
                                  static_cast<double>(passed));
  }
}

void AblateErrorBound(const Fleet& fleet) {
  PrintHeader("Ablation 2",
              "acceptable error bound (paper: +10 over / -5 under)");
  struct Bound {
    const char* label;
    double over, under;
  };
  const Bound bounds[] = {
      {"+10/-5 (paper)", 10.0, 5.0},
      {"+7.5/-7.5 sym", 7.5, 7.5},
      {"+5/-10 inverted", 5.0, 10.0},
      {"+5/-5 tight", 5.0, 5.0},
      {"+20/-10 loose", 20.0, 10.0},
  };
  std::printf("%-18s %12s %12s %13s\n", "bound", "load-acc %",
              "predict %", "under-pred %");
  for (const Bound& bound : bounds) {
    ModelEvalOptions options = EvalOptions(FilterLongLived());
    options.target_week = 5;
    options.accuracy.over_bound = bound.over;
    options.accuracy.under_bound = bound.under;
    auto result =
        EvaluateModelOnFleet(fleet, "persistent_prev_day", options);
    result.status().Abort();
    // Under-prediction exposure: how often does the *schedule* under-
    // estimate load? Approximate by the share of accurate windows whose
    // bound admitted deeper under-prediction.
    std::printf("%-18s %11.1f%% %11.1f%% %12.1f\n", bound.label,
                result->PctLoadsAccurate(), result->PctPredictable(),
                bound.under);
  }
  std::printf("(the asymmetric bound buys more accepted predictions than "
              "the tight bound while capping under-prediction risk)\n");
}

void AblateWindowTolerance(const Fleet& fleet) {
  PrintHeader("Ablation 3", "LL-window tolerance (paper: 10 points)");
  std::printf("%-12s %14s %12s\n", "tolerance", "windows-ok %",
              "predict %");
  for (double tolerance : {2.5, 5.0, 10.0, 20.0}) {
    ModelEvalOptions options = EvalOptions(FilterLongLived());
    options.target_week = 5;
    options.accuracy.window_tolerance = tolerance;
    auto result =
        EvaluateModelOnFleet(fleet, "persistent_prev_day", options);
    result.status().Abort();
    std::printf("%-12.1f %13.1f%% %11.1f%%\n", tolerance,
                result->PctWindowsCorrect(), result->PctPredictable());
  }
}

void AblateDayOptimizer(const Fleet& fleet) {
  PrintHeader("Ablation 4", "backup-day optimization (§6.1 follow-up)");
  // Weekly-structure endpoint (previous equivalent day).
  PersistentForecast model(PersistentVariant::kPreviousEquivalentDay);
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_eq_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  ModelEndpoint endpoint =
      std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();

  const int64_t week = 5;
  double default_load = 0.0, optimized_load = 0.0;
  int64_t servers = 0, moved = 0;
  for (const auto& profile : fleet.servers()) {
    if (profile.IsShortLived()) continue;
    LoadSeries recent =
        fleet.ObservedLoad(profile, 0, week * kMinutesPerWeek);
    auto plan = PlanBackupDay(endpoint, profile.server_id, recent, week,
                              profile.backup_day,
                              profile.backup_duration_minutes);
    if (!plan.ok() || !plan->default_day.window.found) continue;
    // Score both choices on ground truth.
    LoadSeries truth = fleet.TrueLoad(profile, week * kMinutesPerWeek,
                                      (week + 1) * kMinutesPerWeek);
    double d = truth.MeanInRange(plan->default_day.window.start,
                                 plan->default_day.window.end());
    double o = truth.MeanInRange(plan->chosen.window.start,
                                 plan->chosen.window.end());
    if (IsMissing(d) || IsMissing(o)) continue;
    default_load += d;
    optimized_load += o;
    ++servers;
    if (plan->moved_day) ++moved;
  }
  if (servers == 0) {
    std::printf("(no evaluable servers)\n");
    return;
  }
  std::printf("servers: %lld | moved to another day: %.1f%%\n",
              static_cast<long long>(servers),
              100.0 * static_cast<double>(moved) /
                  static_cast<double>(servers));
  std::printf("avg true load in backup window: default day %.2f%% -> "
              "optimized day %.2f%%\n",
              default_load / static_cast<double>(servers),
              optimized_load / static_cast<double>(servers));
  std::printf(
      "(finding: once the within-day window is already optimized, moving "
      "the day adds little — night valleys recur on every day for most "
      "load shapes; the §6.1 follow-up pays off only for servers busy "
      "around the clock on some days)\n");
}

void AblateRoutedEnsemble(const Fleet& fleet) {
  PrintHeader("Ablation 5",
              "one fleet-wide model vs per-class routing (§5.4)");
  std::printf("%-22s %10s %11s %12s %11s\n", "model", "LL-win %",
              "load-acc %", "predict %", "train ms");
  for (const char* model : {"persistent_prev_day", "routed", "ssa"}) {
    ModelEvalOptions options = EvalOptions(FilterLongLived());
    options.target_week = 5;
    auto result = EvaluateModelOnFleet(fleet, model, options);
    result.status().Abort();
    std::printf("%-22s %9.1f%% %10.1f%% %11.1f%% %11.1f\n", model,
                result->PctWindowsCorrect(), result->PctLoadsAccurate(),
                result->PctPredictable(), result->train_millis);
  }
  std::printf(
      "(§5.4's call: the routed ensemble buys little accuracy over the "
      "single heuristic while adding per-class training and maintenance "
      "cost — \"it is easier to maintain a single model for the entire "
      "fleet\")\n");
}

}  // namespace

int main() {
  // Pattern-enriched fleet so day/window structure matters, with a
  // six-week horizon for the 4-week gate ablation.
  RegionConfig config;
  config.name = "ablation";
  config.num_servers = 250;
  config.weeks = 7;
  config.seed = 606;
  config.mix.short_lived = 0.10;
  config.mix.stable = 0.40;
  config.mix.daily = 0.20;
  config.mix.weekly = 0.15;
  config.mix.no_pattern = 0.15;
  Fleet fleet = Fleet::Generate(config);

  AblateGateWeeks(fleet);
  AblateErrorBound(fleet);
  AblateWindowTolerance(fleet);
  AblateDayOptimizer(fleet);
  AblateRoutedEnsemble(fleet);
  return 0;
}
