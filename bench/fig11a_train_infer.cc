/// \file fig11a_train_infer.cc
/// \brief Figure 11(a): training and inference runtime per ML model as
/// the number of (unstable) servers grows.
///
/// Paper shapes to reproduce: persistent forecast has no training cost;
/// NimbusML (here: SSA) scales linearly and cheaply; GluonTS (here: the
/// feed-forward network) is slower to train; Prophet (here: the additive
/// model with Monte-Carlo inference) is the slowest of the scalable
/// models; ARIMA's order search is orders of magnitude more expensive
/// per server and is excluded from production (§2.1, §5.3.3) — it runs
/// here only at tiny server counts.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "scheduling/model_eval.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

const Fleet& CachedFleet(int num_servers) {
  static std::map<int, Fleet>* cache = new std::map<int, Fleet>();
  auto it = cache->find(num_servers);
  if (it == cache->end()) {
    it = cache->emplace(num_servers,
                        UnstableFleet("fig11a", num_servers, 7)).first;
  }
  return it->second;
}

void RunModel(benchmark::State& state, const std::string& model) {
  const int servers = static_cast<int>(state.range(0));
  const Fleet& fleet = CachedFleet(servers);
  double train_ms = 0, infer_ms = 0;
  int64_t evaluated = 0;
  for (auto _ : state) {
    auto result = EvaluateModelOnFleet(fleet, model, EvalOptions());
    result.status().Abort();
    train_ms += result->train_millis;
    infer_ms += result->inference_millis;
    evaluated = result->servers;
    benchmark::DoNotOptimize(result->server_days);
  }
  state.counters["servers"] = static_cast<double>(evaluated);
  state.counters["train_ms"] =
      benchmark::Counter(train_ms / static_cast<double>(state.iterations()));
  state.counters["infer_ms"] =
      benchmark::Counter(infer_ms / static_cast<double>(state.iterations()));
}

void BM_PersistentForecast(benchmark::State& state) {
  RunModel(state, "persistent_prev_day");
}
void BM_Ssa(benchmark::State& state) { RunModel(state, "ssa"); }
void BM_FeedForward(benchmark::State& state) {
  RunModel(state, "feedforward");
}
void BM_Additive(benchmark::State& state) { RunModel(state, "additive"); }
void BM_Arima(benchmark::State& state) { RunModel(state, "arima"); }

}  // namespace

// The paper sweeps 10..700 servers; scaled to keep the full bench sweep
// laptop-sized. Shapes (linear scaling; relative ordering) carry over.
BENCHMARK(BM_PersistentForecast)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ssa)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_FeedForward)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Additive)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
// ARIMA: "executing ARIMA in parallel for each server does not make [its]
// runtime comparable to other models" — tiny counts only.
BENCHMARK(BM_Arima)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
