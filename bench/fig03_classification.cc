/// \file fig03_classification.cc
/// \brief Figure 3: classification of servers by lifespan and typical
/// customer activity pattern.
///
/// Paper (random sample across four regions, one month): 42.1%
/// short-lived, 53.5% long-lived stable, 0.1% daily pattern, 0.1% weekly
/// pattern, 4.2% no pattern. This bench classifies a simulated
/// multi-region fleet with the pipeline's own feature-extraction metric
/// and prints the observed shares.

#include "bench_common.h"
#include "pipeline/features.h"
#include "telemetry/emitter.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  PrintHeader("Figure 3", "classification of servers");

  ClassCounts counts;
  for (const auto& region : MakeEvaluationRegions(0.5, 42)) {
    Fleet fleet = Fleet::Generate(region);
    MinuteStamp obs_to = static_cast<int64_t>(region.weeks) * kMinutesPerWeek;
    auto records = ExtractWeek(fleet, region.weeks - 1);
    auto grouped = GroupByServer(records);
    grouped.status().Abort();
    for (const auto& telemetry : *grouped) {
      ServerFeatures f = ExtractFeatures(telemetry, 0, obs_to,
                                         AccuracyConfig{}, FleetConfig{});
      counts.Add(f.classification.server_class);
    }
  }

  struct Row {
    const char* label;
    ServerClass cls;
    double paper_pct;
  };
  const Row rows[] = {
      {"short-lived", ServerClass::kShortLived, 42.1},
      {"stable", ServerClass::kStable, 53.5},
      {"daily pattern", ServerClass::kDailyPattern, 0.1},
      {"weekly pattern", ServerClass::kWeeklyPattern, 0.1},
      {"no pattern", ServerClass::kNoPattern, 4.2},
  };
  std::printf("%-16s %10s %12s %12s\n", "class", "servers", "measured %",
              "paper %");
  for (const Row& row : rows) {
    std::printf("%-16s %10lld %11.1f%% %11.1f%%\n", row.label,
                static_cast<long long>([&] {
                  switch (row.cls) {
                    case ServerClass::kShortLived:
                      return counts.short_lived;
                    case ServerClass::kStable:
                      return counts.stable;
                    case ServerClass::kDailyPattern:
                      return counts.daily;
                    case ServerClass::kWeeklyPattern:
                      return counts.weekly;
                    case ServerClass::kNoPattern:
                      return counts.no_pattern;
                  }
                  return int64_t{0};
                }()),
                100.0 * counts.Fraction(row.cls), row.paper_pct);
  }
  std::printf("total servers: %lld\n", static_cast<long long>(counts.total));
  return 0;
}
