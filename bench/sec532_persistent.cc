/// \file sec532_persistent.cc
/// \brief §5.3.2 and §5.4 headline numbers for persistent forecast.
///
/// §5.3.2 (stable + pattern cohort): persistent forecast "correctly
/// selected 99.83% of LL windows, accurately predicted the load during
/// 99.06% of all windows, and classified 96.92% of servers as
/// predictable". §5.4 (production, all long-lived servers): "99% of low
/// load windows, ... 96% of all windows, and classified 75% of
/// long-lived servers as predictable".

#include "bench_common.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  PrintHeader("Section 5.3.2 / 5.4", "persistent forecast headline numbers");

  Fleet fleet = ProductionFleet("sec532", 1500, 17);

  struct Cohort {
    const char* label;
    ServerFilter filter;
    double paper_windows, paper_loads, paper_predictable;
  };
  const Cohort cohorts[] = {
      {"stable+pattern (5.3.2)", FilterStableOrPattern(), 99.83, 99.06,
       96.92},
      {"all long-lived (5.4)", FilterLongLived(), 99.0, 96.0, 75.0},
  };

  std::printf("%-24s %14s %14s %14s\n", "cohort", "LL windows",
              "window load", "predictable");
  for (const Cohort& cohort : cohorts) {
    auto result = EvaluateModelOnFleet(fleet, "persistent_prev_day",
                                       EvalOptions(cohort.filter));
    result.status().Abort();
    std::printf("%-24s %8.2f%%      %8.2f%%      %8.2f%%\n", cohort.label,
                result->PctWindowsCorrect(), result->PctLoadsAccurate(),
                result->PctPredictable());
    std::printf("%-24s %8.2f%%      %8.2f%%      %8.2f%%   (paper)\n", "",
                cohort.paper_windows, cohort.paper_loads,
                cohort.paper_predictable);
  }
  return 0;
}
