/// \file bench_common.h
/// \brief Shared setup for the per-figure benchmark binaries.
///
/// Every bench prints the rows/series of one table or figure from the
/// paper's evaluation. Fleet sizes are scaled down from production (tens
/// of thousands of servers per region) so a full `for b in bench/*` sweep
/// finishes on a laptop; the *shapes* — who wins, by what factor, where
/// the crossovers fall — are the reproduction target, not the absolute
/// numbers (DESIGN.md, EXPERIMENTS.md).

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/obs/metrics.h"
#include "scheduling/model_eval.h"
#include "telemetry/fleet.h"

namespace seagull::bench {

/// Five-week horizon so the §5.3 protocol has a full training week before
/// each of the three evidence weeks (target week 4, evidence weeks 1-3).
inline constexpr int kEvalWeeks = 5;
inline constexpr int64_t kEvalTargetWeek = 4;

/// A fleet of exclusively long-lived unstable-no-pattern servers — the
/// cohort the paper applies ML models to (§5.3.3).
inline Fleet UnstableFleet(const std::string& name, int num_servers,
                           uint64_t seed) {
  RegionConfig config;
  config.name = name;
  config.num_servers = num_servers;
  config.weeks = kEvalWeeks;
  config.seed = seed;
  config.mix.short_lived = 0.0;
  config.mix.stable = 0.0;
  config.mix.daily = 0.0;
  config.mix.weekly = 0.0;
  config.mix.no_pattern = 1.0;
  return Fleet::Generate(config);
}

/// A production-mix fleet (Figure 3 proportions).
inline Fleet ProductionFleet(const std::string& name, int num_servers,
                             uint64_t seed, int weeks = kEvalWeeks) {
  RegionConfig config;
  config.name = name;
  config.num_servers = num_servers;
  config.weeks = weeks;
  config.seed = seed;
  return Fleet::Generate(config);
}

/// Evaluation options matching the §5.3 protocol.
inline ModelEvalOptions EvalOptions(ServerFilter filter = {},
                                    int64_t max_servers = 0) {
  ModelEvalOptions options;
  options.target_week = kEvalTargetWeek;
  options.filter = std::move(filter);
  options.max_servers = max_servers;
  return options;
}

/// Prints a horizontal rule + caption for a figure/table.
inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("\n=== %s — %s ===\n", figure, caption);
}

/// Captures one bench phase's metrics: zeroes the global registry, runs
/// `body`, and returns the resulting snapshot as JSON ({counters,
/// gauges, histograms} — histograms carry count/sum/p50/p95/p99 and raw
/// buckets). Embed the result under a "phases" key of a BENCH_*.json so
/// trajectory files record per-phase op counts and latency shapes, not
/// just wall clock.
template <typename Fn>
inline Json MetricsForPhase(Fn&& body) {
  MetricsRegistry::Global().Reset();
  body();
  return MetricsRegistry::Global().Snapshot().ToJson();
}

}  // namespace seagull::bench
