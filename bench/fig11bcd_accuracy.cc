/// \file fig11bcd_accuracy.cc
/// \brief Figures 11(b)–(d): low-load prediction accuracy per model per
/// region, on the unstable-no-pattern cohort.
///
/// Three metrics per (model, region): percentage of correctly chosen LL
/// windows (11(b)), percentage of LL windows with accurately predicted
/// load (11(c)), and percentage of predictable servers (11(d)).
/// Paper shape: persistent forecast, NimbusML/SSA and GluonTS/feed-forward
/// are comparable; Prophet/additive is similar or lower; variance across
/// regions is modest.

#include "bench_common.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  const char* regions[] = {"region-1", "region-2", "region-3", "region-4"};
  const int sizes[] = {30, 45, 60, 80};
  const char* models[] = {"persistent_prev_day", "ssa", "feedforward",
                          "additive"};

  // (model, region) -> result
  std::vector<std::vector<ModelEvalResult>> results;
  for (const char* model : models) {
    std::vector<ModelEvalResult> row;
    for (int r = 0; r < 4; ++r) {
      Fleet fleet = UnstableFleet(regions[r], sizes[r],
                                  1000 + static_cast<uint64_t>(r));
      auto result = EvaluateModelOnFleet(fleet, model, EvalOptions());
      result.status().Abort();
      row.push_back(std::move(result).ValueUnsafe());
    }
    results.push_back(std::move(row));
  }

  auto print_table = [&](const char* figure, const char* caption,
                         auto metric) {
    PrintHeader(figure, caption);
    std::printf("%-22s", "model");
    for (const char* region : regions) std::printf(" %10s", region);
    std::printf("\n");
    for (size_t m = 0; m < 4; ++m) {
      std::printf("%-22s", models[m]);
      for (size_t r = 0; r < 4; ++r) {
        std::printf(" %9.1f%%", metric(results[m][r]));
      }
      std::printf("\n");
    }
  };

  print_table("Figure 11(b)", "correctly chosen LL windows",
              [](const ModelEvalResult& r) { return r.PctWindowsCorrect(); });
  print_table("Figure 11(c)", "accurately predicted load in LL windows",
              [](const ModelEvalResult& r) { return r.PctLoadsAccurate(); });
  print_table("Figure 11(d)", "predictable servers",
              [](const ModelEvalResult& r) { return r.PctPredictable(); });
  return 0;
}
