/// \file fig12b_parallel.cc
/// \brief Figure 12(b): Accuracy Evaluation, single-threaded vs
/// partitioned-per-server parallel (the Dask analog), in two modes:
/// backup-day-only and every-day-one-week-ahead.
///
/// Paper shapes: parallel loses slightly at the smallest input and wins
/// consistently at large inputs; in the all-days mode the speedup is
/// 3–4.6x across sizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "pipeline/accuracy.h"
#include "pipeline/features.h"
#include "pipeline/fleet_runner.h"
#include "pipeline/inference.h"
#include "pipeline/ingestion.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "pipeline/validation.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

/// Context prepared through deployment so only accuracy evaluation runs
/// inside the timed region.
struct Prepared {
  DocStore docs;
  PipelineContext ctx;
};

Prepared* PrepareRegion(int num_servers) {
  static auto* lake = new Result<LakeStore>(
      LakeStore::OpenTemporary("fig12b"));
  lake->status().Abort();
  auto* prepared = new Prepared();
  std::string region = "par-" + std::to_string(num_servers);
  Fleet fleet = ProductionFleet(region, num_servers, 900, 4);
  (*lake)->Put(LakeStore::TelemetryKey(region, 3), ExtractWeekBlock(fleet, 3))
      .Abort();
  prepared->ctx.region = region;
  prepared->ctx.week = 3;
  prepared->ctx.lake = &**lake;
  prepared->ctx.docs = &prepared->docs;

  Pipeline prefix;  // everything before accuracy evaluation
  prefix.Add(std::make_unique<DataIngestionModule>())
      .Add(std::make_unique<DataValidationModule>())
      .Add(std::make_unique<FeatureExtractionModule>())
      .Add(std::make_unique<ModelTrainingModule>())
      .Add(std::make_unique<ModelDeploymentModule>());
  PipelineRunReport report = prefix.Run(&prepared->ctx);
  report.success ? void() : std::abort();
  return prepared;
}

Prepared& CachedRegion(int num_servers) {
  static auto* cache = new std::map<int, Prepared*>();
  auto it = cache->find(num_servers);
  if (it == cache->end()) {
    it = cache->emplace(num_servers, PrepareRegion(num_servers)).first;
  }
  return *it->second;
}

void RunAccuracy(benchmark::State& state, int threads, bool all_days) {
  Prepared& prepared = CachedRegion(static_cast<int>(state.range(0)));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  AccuracyEvaluationOptions options;
  options.evaluate_all_days = all_days;
  for (auto _ : state) {
    PipelineContext ctx = prepared.ctx;  // fresh copy per iteration
    ctx.pool = pool.get();
    AccuracyEvaluationModule module(options);
    Status st = module.Run(&ctx);
    st.Abort();
    benchmark::DoNotOptimize(ctx.accuracy_records.size());
  }
}

void BM_BackupDay_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, false);
}
void BM_BackupDay_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, false);
}
void BM_AllDays_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, true);
}
void BM_AllDays_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, true);
}

}  // namespace

BENCHMARK(BM_BackupDay_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BackupDay_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

namespace {

/// Fleet-level comparison (the Dask partition-per-server analog run
/// across whole regions): executes the same fixed-seed fleet with
/// jobs=1 and jobs=N through FleetRunner, checks the outputs are
/// byte-identical, and records the wall-clock trajectory in
/// BENCH_parallel.json for future PRs to regress against.
void RunFleetComparison() {
  constexpr int kRegions = 6;
  constexpr int kServers = 60;
  constexpr int64_t kWeek = 3;
  const unsigned cores = std::thread::hardware_concurrency();
  const int par_jobs =
      static_cast<int>(cores < 2 ? 2 : (cores > 8 ? 8 : cores));

  auto lake = LakeStore::OpenTemporary("fig12b_fleet");
  lake.status().Abort();
  std::vector<FleetJob> jobs;
  for (int r = 0; r < kRegions; ++r) {
    std::string region = "fleet-" + std::to_string(r);
    Fleet fleet = ProductionFleet(region, kServers,
                                  1200 + static_cast<uint64_t>(r));
    lake->Put(LakeStore::TelemetryKey(region, kWeek),
              ExtractWeekBlock(fleet, kWeek))
        .Abort();
    jobs.push_back({region, kWeek});
  }

  auto run = [&](int n_jobs, DocStore* docs) {
    FleetOptions options;
    options.jobs = n_jobs;
    FleetRunner runner(&*lake, docs, options);
    PipelineContext config;
    FleetRunResult result = runner.Run(jobs, config);
    if (result.FailureCount() != 0) {
      std::fprintf(stderr, "fleet run failed (%lld failures)\n",
                   static_cast<long long>(result.FailureCount()));
      std::abort();
    }
    return result;
  };

  // Each phase runs with a zeroed registry so BENCH_parallel.json can
  // carry per-phase store/pipeline/forecast histograms alongside the
  // wall-clock trajectory.
  DocStore seq_docs, par_docs;
  FleetRunResult seq, par;
  Json phases = Json::MakeObject();
  phases["sequential"] = MetricsForPhase([&] { seq = run(1, &seq_docs); });
  phases["parallel"] =
      MetricsForPhase([&] { par = run(par_jobs, &par_docs); });

  // Determinism gate: the parallel run must reproduce the sequential
  // run's data outputs exactly (tests/fleet_determinism_test.cc covers
  // the full snapshot; this is the in-bench spot check).
  auto dump = [](DocStore* docs, const char* container) {
    Json arr = Json::MakeArray();
    for (const auto& doc : docs->GetContainer(container)->Query(
             [](const Document&) { return true; })) {
      Json d = Json::MakeObject();
      d["pk"] = doc.partition_key;
      d["id"] = doc.id;
      d["body"] = doc.body;
      arr.Append(std::move(d));
    }
    return arr.Dump();
  };
  const bool deterministic =
      dump(&seq_docs, kPredictionsContainer) ==
          dump(&par_docs, kPredictionsContainer) &&
      dump(&seq_docs, kAccuracyContainer) ==
          dump(&par_docs, kAccuracyContainer);

  const double speedup =
      par.wall_millis > 0.0 ? seq.wall_millis / par.wall_millis : 0.0;
  PrintHeader("Fleet engine",
              "whole-region pipelines, sequential vs parallel");
  std::printf("%-28s %10.1f ms\n", "sequential (jobs=1)", seq.wall_millis);
  std::printf("%-28s %10.1f ms  (jobs=%d)\n", "parallel", par.wall_millis,
              par_jobs);
  std::printf("%-28s %10.2fx\n", "speedup", speedup);
  std::printf("%-28s %10s\n", "outputs identical",
              deterministic ? "yes" : "NO (BUG)");

  Json out = Json::MakeObject();
  out["benchmark"] = "fleet_parallel";
  out["hardware_threads"] = static_cast<int64_t>(cores);
  out["regions"] = kRegions;
  out["servers_per_region"] = kServers;
  out["jobs_parallel"] = par_jobs;
  out["sequential_ms"] = seq.wall_millis;
  out["parallel_ms"] = par.wall_millis;
  out["speedup"] = speedup;
  out["deterministic"] = deterministic;
  if (cores < 4) {
    // On a starved host the "parallel" run only measures dispatch
    // overhead; a sub-1.0x ratio here reads as a perf regression when it
    // is really a hardware limitation, so the target is marked
    // not-applicable instead of being reported as missed.
    out["speedup_target"] = "n/a";
    out["note"] = StringPrintf(
        "host has %u hardware thread(s); the >=2x speedup target needs "
        ">=4 cores, so the measured ratio is dispatch overhead only",
        cores);
  } else {
    out["speedup_target"] = ">=2x";
    out["note"] =
        "speedup is bounded by hardware_threads; the >=2x target applies "
        "on >=4 cores";
  }
  out["phases"] = std::move(phases);
  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_parallel.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_parallel.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Figure 12(b): accuracy evaluation, sequential vs partitioned per "
      "server across 8 workers.\n"
      "This machine reports %u hardware thread(s); the paper's 3-4.6x "
      "parallel speedup requires multiple cores — on a single-core host "
      "the parallel rows only measure dispatch overhead.\n",
      cores);
  RunFleetComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
