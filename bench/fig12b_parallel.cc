/// \file fig12b_parallel.cc
/// \brief Figure 12(b): Accuracy Evaluation, single-threaded vs
/// partitioned-per-server parallel (the Dask analog), in two modes:
/// backup-day-only and every-day-one-week-ahead.
///
/// Paper shapes: parallel loses slightly at the smallest input and wins
/// consistently at large inputs; in the all-days mode the speedup is
/// 3–4.6x across sizes.
///
/// With `--servers=N` the binary instead runs the fleet-scale memory
/// plane deliverable: N servers staged shard-by-shard as per-region
/// SeriesBlock blobs through the streaming SGB1 writer, the full
/// pipeline executed over each shard in a {jobs=1, jobs=`--jobs`} x
/// {mmap, heap} grid with the shard's blobs deleted before the next
/// shard is staged (both disk and RSS stay shard-bounded, which is what
/// makes `--servers=1000000` runnable), per-region digests compared for
/// byte-identity across all four passes, and (with `--budgets=<path>`)
/// peak RSS, per-server costs, and encoder residency gated against the
/// `fleet_scale` section of tests/budgets.json. Writes
/// BENCH_scale.json. `--shard=K` overrides the staging/resident shard
/// width (default 8); `--shard=0` disables retire-as-you-go entirely —
/// the pre-memory-plane O(fleet) retention, kept as the honest
/// "before" row for the RSS table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/obs/metrics.h"
#include "common/strings.h"
#include "pipeline/accuracy.h"
#include "pipeline/features.h"
#include "pipeline/fleet_runner.h"
#include "pipeline/inference.h"
#include "pipeline/ingestion.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "pipeline/validation.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

/// Context prepared through deployment so only accuracy evaluation runs
/// inside the timed region.
struct Prepared {
  DocStore docs;
  PipelineContext ctx;
};

Prepared* PrepareRegion(int num_servers) {
  static auto* lake = new Result<LakeStore>(
      LakeStore::OpenTemporary("fig12b"));
  lake->status().Abort();
  auto* prepared = new Prepared();
  std::string region = "par-" + std::to_string(num_servers);
  Fleet fleet = ProductionFleet(region, num_servers, 900, 4);
  (*lake)->Put(LakeStore::TelemetryKey(region, 3), ExtractWeekBlock(fleet, 3))
      .Abort();
  prepared->ctx.region = region;
  prepared->ctx.week = 3;
  prepared->ctx.lake = &**lake;
  prepared->ctx.docs = &prepared->docs;

  Pipeline prefix;  // everything before accuracy evaluation
  prefix.Add(std::make_unique<DataIngestionModule>())
      .Add(std::make_unique<DataValidationModule>())
      .Add(std::make_unique<FeatureExtractionModule>())
      .Add(std::make_unique<ModelTrainingModule>())
      .Add(std::make_unique<ModelDeploymentModule>());
  PipelineRunReport report = prefix.Run(&prepared->ctx);
  report.success ? void() : std::abort();
  return prepared;
}

Prepared& CachedRegion(int num_servers) {
  static auto* cache = new std::map<int, Prepared*>();
  auto it = cache->find(num_servers);
  if (it == cache->end()) {
    it = cache->emplace(num_servers, PrepareRegion(num_servers)).first;
  }
  return *it->second;
}

void RunAccuracy(benchmark::State& state, int threads, bool all_days) {
  Prepared& prepared = CachedRegion(static_cast<int>(state.range(0)));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  AccuracyEvaluationOptions options;
  options.evaluate_all_days = all_days;
  for (auto _ : state) {
    PipelineContext ctx = prepared.ctx;  // fresh copy per iteration
    ctx.pool = pool.get();
    AccuracyEvaluationModule module(options);
    Status st = module.Run(&ctx);
    st.Abort();
    benchmark::DoNotOptimize(ctx.accuracy_records.size());
  }
}

void BM_BackupDay_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, false);
}
void BM_BackupDay_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, false);
}
void BM_AllDays_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, true);
}
void BM_AllDays_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, true);
}

}  // namespace

BENCHMARK(BM_BackupDay_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BackupDay_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

namespace {

/// Fleet-level comparison (the Dask partition-per-server analog run
/// across whole regions): executes the same fixed-seed fleet with
/// jobs=1 and jobs=N through FleetRunner, checks the outputs are
/// byte-identical, and records the wall-clock trajectory in
/// BENCH_parallel.json for future PRs to regress against.
void RunFleetComparison() {
  constexpr int kRegions = 6;
  constexpr int kServers = 60;
  constexpr int64_t kWeek = 3;
  const unsigned cores = std::thread::hardware_concurrency();
  const int par_jobs =
      static_cast<int>(cores < 2 ? 2 : (cores > 8 ? 8 : cores));

  auto lake = LakeStore::OpenTemporary("fig12b_fleet");
  lake.status().Abort();
  std::vector<FleetJob> jobs;
  for (int r = 0; r < kRegions; ++r) {
    std::string region = "fleet-" + std::to_string(r);
    Fleet fleet = ProductionFleet(region, kServers,
                                  1200 + static_cast<uint64_t>(r));
    lake->Put(LakeStore::TelemetryKey(region, kWeek),
              ExtractWeekBlock(fleet, kWeek))
        .Abort();
    jobs.push_back({region, kWeek});
  }

  auto run = [&](int n_jobs, DocStore* docs) {
    FleetOptions options;
    options.jobs = n_jobs;
    FleetRunner runner(&*lake, docs, options);
    PipelineContext config;
    FleetRunResult result = runner.Run(jobs, config);
    if (result.FailureCount() != 0) {
      std::fprintf(stderr, "fleet run failed (%lld failures)\n",
                   static_cast<long long>(result.FailureCount()));
      std::abort();
    }
    return result;
  };

  // Each phase runs with a zeroed registry so BENCH_parallel.json can
  // carry per-phase store/pipeline/forecast histograms alongside the
  // wall-clock trajectory.
  DocStore seq_docs, par_docs;
  FleetRunResult seq, par;
  Json phases = Json::MakeObject();
  ResetPeakRss();
  phases["sequential"] = MetricsForPhase([&] { seq = run(1, &seq_docs); });
  const int64_t seq_peak = ReadPeakRssBytes();
  ResetPeakRss();
  phases["parallel"] =
      MetricsForPhase([&] { par = run(par_jobs, &par_docs); });
  const int64_t par_peak = ReadPeakRssBytes();

  // Determinism gate: the parallel run must reproduce the sequential
  // run's data outputs exactly (tests/fleet_determinism_test.cc covers
  // the full snapshot; this is the in-bench spot check).
  auto dump = [](DocStore* docs, const char* container) {
    Json arr = Json::MakeArray();
    for (const auto& doc : docs->GetContainer(container)->Query(
             [](const Document&) { return true; })) {
      Json d = Json::MakeObject();
      d["pk"] = doc.partition_key;
      d["id"] = doc.id;
      d["body"] = doc.body;
      arr.Append(std::move(d));
    }
    return arr.Dump();
  };
  const bool deterministic =
      dump(&seq_docs, kPredictionsContainer) ==
          dump(&par_docs, kPredictionsContainer) &&
      dump(&seq_docs, kAccuracyContainer) ==
          dump(&par_docs, kAccuracyContainer);

  const double speedup =
      par.wall_millis > 0.0 ? seq.wall_millis / par.wall_millis : 0.0;
  PrintHeader("Fleet engine",
              "whole-region pipelines, sequential vs parallel");
  std::printf("%-28s %10.1f ms\n", "sequential (jobs=1)", seq.wall_millis);
  std::printf("%-28s %10.1f ms  (jobs=%d)\n", "parallel", par.wall_millis,
              par_jobs);
  std::printf("%-28s %10.2fx\n", "speedup", speedup);
  std::printf("%-28s %10s\n", "outputs identical",
              deterministic ? "yes" : "NO (BUG)");
  std::printf("%-28s %10.1f MB (seq) / %.1f MB (par)\n", "phase peak RSS",
              static_cast<double>(seq_peak) / 1e6,
              static_cast<double>(par_peak) / 1e6);

  Json out = Json::MakeObject();
  out["benchmark"] = "fleet_parallel";
  out["hardware_threads"] = static_cast<int64_t>(cores);
  out["regions"] = kRegions;
  out["servers_per_region"] = kServers;
  out["jobs_parallel"] = par_jobs;
  out["sequential_ms"] = seq.wall_millis;
  out["parallel_ms"] = par.wall_millis;
  out["speedup"] = speedup;
  out["deterministic"] = deterministic;
  out["sequential_peak_rss_bytes"] = seq_peak;
  out["parallel_peak_rss_bytes"] = par_peak;
  if (cores < 4) {
    // On a starved host the "parallel" run only measures dispatch
    // overhead; a sub-1.0x ratio here reads as a perf regression when it
    // is really a hardware limitation, so the target is marked
    // not-applicable instead of being reported as missed.
    out["speedup_target"] = "n/a";
    out["note"] = StringPrintf(
        "host has %u hardware thread(s); the >=2x speedup target needs "
        ">=4 cores, so the measured ratio is dispatch overhead only",
        cores);
  } else {
    out["speedup_target"] = ">=2x";
    out["note"] =
        "speedup is bounded by hardware_threads; the >=2x target applies "
        "on >=4 cores";
  }
  out["phases"] = std::move(phases);
  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_parallel.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_parallel.json\n");
  }
}

/// FNV-1a over a string — the scale run's determinism digest primitive.
uint64_t FoldFnv(uint64_t h, const std::string& text) {
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Digest of one region's gated containers (predictions, accuracy,
/// model registry) — the same containers the in-bench determinism spot
/// check dumps, hashed instead of retained so a 100k-server fleet can
/// be compared across job counts without holding O(fleet) documents.
/// Incidents and run records are excluded: run records carry wall
/// clock, and the first-ever run of a region writes a one-time
/// "deduced schema" incident later runs do not repeat.
uint64_t DigestRegion(DocStore* docs, const std::string& region) {
  uint64_t h = 1469598103934665603ULL;
  for (const char* container :
       {kPredictionsContainer, kAccuracyContainer, kModelRegistryContainer}) {
    h = FoldFnv(h, container);
    for (const auto& doc :
         docs->GetContainer(container)->ReadPartition(region)) {
      h = FoldFnv(h, doc.id);
      h = FoldFnv(h, doc.body.Dump());
    }
  }
  return h;
}

/// One pass configuration over the scale fleet. Four passes cross the
/// two axes the gate cares about: job count (determinism across
/// parallelism) and blob read strategy (mmap vs heap byte-identity).
struct PassConfig {
  const char* key;    ///< JSON key prefix
  const char* label;  ///< report row label
  int jobs;
  bool mmap;
};

/// Accumulated results of one pass across every staging shard.
struct PassStats {
  std::vector<uint64_t> digests;  ///< per region, job order
  double wall_millis = 0.0;       ///< fleet-runner time only (no staging)
  int64_t peak_rss_bytes = 0;     ///< max over per-shard windows
  int64_t ingest_resident_bytes = 0;
  int64_t failures = 0;
};

/// The bounded-everything fleet-scale run (the tentpole deliverable).
///
/// Regions are processed in staging shards of `shard` regions: each
/// shard's blobs are staged through the *streaming* SGB1 writer
/// (`ExtractWeekBlockTo` + `PutStreamed` — no region's rows or blob are
/// ever held in memory), every pass configuration runs the full
/// pipeline over just that shard (each pass keeps its own DocStore and
/// digest list across shards), and the shard's blobs are then deleted
/// before the next shard is staged. Disk usage is therefore bounded by
/// one shard's blobs (~`shard` x 95 MB) and RSS by one shard's working
/// set — which is what makes `--servers 1000000` (~95 GB of telemetry)
/// runnable on a host whose disk could never hold the whole fleet.
///
/// Peak RSS per pass is the max over its per-shard windows, each opened
/// with a malloc trim + HWM reset so (a) a pass never inherits another
/// pass's arena floor and (b) the shard-retire sample cannot miss a
/// mid-shard spike — the window *is* the shard.
///
/// Digest identity is required across all four passes: jobs=1 vs
/// jobs=N (determinism) and mmap-on vs mmap-off (read-path
/// byte-identity). `--shard=0` disables sharding: all regions staged
/// up front and retained to the end — the pre-memory-plane behavior,
/// kept as the honest "before" row (it still reports
/// `per_server_resident_bytes` so BENCH_scale.json rows stay
/// comparable across modes).
int RunScaleFleet(int64_t servers, int par_jobs, int64_t shard,
                  const std::string& budgets_path) {
  constexpr int64_t kWeek = 3;
  constexpr int64_t kRegionServers = 1000;
  const int64_t regions =
      (servers + kRegionServers - 1) / kRegionServers;
  const int64_t shard_width = shard > 0 ? shard : regions;
  PrintHeader("Fleet scale",
              "bounded-RSS pipeline run, jobs x mmap grid, digest compare");
  if (shard > 0) {
    std::printf("%-28s %10lld servers in %lld regions (shard %lld)\n",
                "fleet", static_cast<long long>(servers),
                static_cast<long long>(regions),
                static_cast<long long>(shard));
  } else {
    std::printf("%-28s %10lld servers in %lld regions (unsharded)\n",
                "fleet", static_cast<long long>(servers),
                static_cast<long long>(regions));
  }

  auto lake = LakeStore::OpenTemporary("fig12b_scale");
  lake.status().Abort();

  const std::vector<PassConfig> pass_configs = {
      {"sequential", "sequential (mmap)", 1, true},
      {"parallel", "parallel (mmap)", par_jobs, true},
      {"sequential_heap", "sequential (heap)", 1, false},
      {"parallel_heap", "parallel (heap)", par_jobs, false},
  };
  std::vector<PassStats> stats(pass_configs.size());
  // Each pass owns a DocStore for the whole run (regions retire out of
  // it shard by shard; incident/run bookkeeping accumulates).
  std::vector<std::unique_ptr<DocStore>> docs;
  for (size_t i = 0; i < pass_configs.size(); ++i) {
    docs.push_back(std::make_unique<DocStore>());
    stats[i].digests.reserve(static_cast<size_t>(regions));
  }

  MetricsRegistry::Global().Reset();
  Counter* ingest_resident_ctr = MetricsRegistry::Global().GetCounter(
      "seagull.pipeline.ingest_resident_bytes", {{"format", "binary"}});

  int64_t staged_bytes = 0;
  int64_t encode_resident_bytes = 0;  // max writer high-water, any region
  double staging_millis = 0.0;
  int64_t remaining = servers;
  int64_t next_region = 0;

  for (int64_t shard_begin = 0; shard_begin < regions;
       shard_begin += shard_width) {
    const int64_t shard_end = std::min(regions, shard_begin + shard_width);

    // Stage this shard's blobs through the streaming writer: the SGB1
    // bytes go from the encoder straight into the lake's atomic put.
    std::vector<FleetJob> shard_jobs;
    shard_jobs.reserve(static_cast<size_t>(shard_end - shard_begin));
    const auto stage_start = std::chrono::steady_clock::now();
    for (; next_region < shard_end; ++next_region) {
      std::string region = "scale-" + std::to_string(next_region);
      const int64_t n = std::min<int64_t>(kRegionServers, remaining);
      remaining -= n;
      Fleet fleet =
          ProductionFleet(region, static_cast<int>(n),
                          3000 + static_cast<uint64_t>(next_region), 4);
      int64_t region_bytes = 0;
      int64_t writer_resident = 0;
      lake->PutStreamed(
              LakeStore::TelemetryKey(region, kWeek),
              [&](std::ostream& out) {
                return ExtractWeekBlockTo(
                    fleet, kWeek,
                    [&](std::string_view bytes) -> Status {
                      out.write(bytes.data(),
                                static_cast<std::streamsize>(bytes.size()));
                      if (!out) return Status::IOError("staging write failed");
                      region_bytes += static_cast<int64_t>(bytes.size());
                      return Status::OK();
                    },
                    {}, &writer_resident);
              })
          .Abort();
      staged_bytes += region_bytes;
      encode_resident_bytes = std::max(encode_resident_bytes, writer_resident);
      shard_jobs.push_back({region, kWeek});
    }
    staging_millis += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - stage_start)
                          .count();

    // Every pass runs this shard before its blobs are dropped. Each
    // (pass, shard) window gets a trimmed, reset HWM so per-pass peak
    // is the max over windows and never inherits a neighbor's floor.
    for (size_t p = 0; p < pass_configs.size(); ++p) {
      const PassConfig& cfg = pass_configs[p];
      lake->ConfigureMmap(cfg.mmap);
      FleetOptions options;
      options.jobs = cfg.jobs;
      options.max_resident_regions = 0;  // the slice is one shard already
      options.trim_at_shard_edges = true;
      DocStore* pass_docs = docs[p].get();
      PassStats* pass_stats = &stats[p];
      options.retire = [pass_docs, pass_stats](
                           const FleetJob& job,
                           const PipelineScheduler::ScheduledRun& run) {
        (void)run;
        pass_stats->digests.push_back(DigestRegion(pass_docs, job.region));
        pass_docs->DropPartition(job.region);
      };
      TrimMallocArenas();
      ResetPeakRss();
      const int64_t ingest_before = ingest_resident_ctr->Value();
      FleetRunner runner(&*lake, pass_docs, options);
      PipelineContext config;
      config.model_name = "persistent_prev_day";
      FleetRunResult result = runner.Run(shard_jobs, config);
      stats[p].wall_millis += result.wall_millis;
      stats[p].failures += result.FailureCount();
      stats[p].peak_rss_bytes =
          std::max(stats[p].peak_rss_bytes, ReadPeakRssBytes());
      stats[p].ingest_resident_bytes +=
          ingest_resident_ctr->Value() - ingest_before;
    }

    // Retire the staged blobs: at 1M servers the whole fleet's
    // telemetry (~95 GB) never exists on disk at once.
    if (shard > 0) {
      for (const FleetJob& job : shard_jobs) {
        lake->Delete(LakeStore::TelemetryKey(job.region, job.week)).Abort();
      }
    }
    if (regions > 100) {
      std::printf("  ... %lld/%lld regions done\n",
                  static_cast<long long>(shard_end),
                  static_cast<long long>(regions));
      std::fflush(stdout);
    }
  }

  std::printf("%-28s %10.1f MB staged via streaming writer (%lld blobs, "
              "%.1f s, encode resident %.1f MB)\n",
              "lake", static_cast<double>(staged_bytes) / 1e6,
              static_cast<long long>(regions), staging_millis / 1e3,
              static_cast<double>(encode_resident_bytes) / 1e6);

  const PassStats& seq = stats[0];
  const PassStats& par = stats[1];
  bool deterministic = true;
  for (const PassStats& s : stats) {
    if (s.failures != 0 || s.digests != seq.digests) deterministic = false;
  }
  const bool jobs_identical =
      seq.failures == 0 && par.failures == 0 && seq.digests == par.digests;
  const bool mmap_identical = seq.failures == 0 && stats[2].failures == 0 &&
                              stats[3].failures == 0 &&
                              seq.digests == stats[2].digests &&
                              par.digests == stats[3].digests;
  const double per_server_bytes =
      static_cast<double>(seq.ingest_resident_bytes) /
      static_cast<double>(servers);
  int64_t worst_peak = 0;
  for (const PassStats& s : stats) {
    worst_peak = std::max(worst_peak, s.peak_rss_bytes);
  }
  const double per_server_peak =
      static_cast<double>(worst_peak) / static_cast<double>(servers);

  for (size_t p = 0; p < pass_configs.size(); ++p) {
    std::printf("%-28s %10.1f s   peak RSS %8.1f MB  (jobs=%d)\n",
                pass_configs[p].label, stats[p].wall_millis / 1e3,
                static_cast<double>(stats[p].peak_rss_bytes) / 1e6,
                pass_configs[p].jobs);
  }
  std::printf("%-28s %10.0f bytes/server (amortized ingest)\n",
              "resident cost", per_server_bytes);
  std::printf("%-28s %10.0f bytes/server (worst pass)\n", "peak RSS cost",
              per_server_peak);
  std::printf("%-28s %10s\n", "digests identical (jobs)",
              jobs_identical ? "yes" : "NO (BUG)");
  std::printf("%-28s %10s\n", "digests identical (mmap)",
              mmap_identical ? "yes" : "NO (BUG)");

  Json out = Json::MakeObject();
  out["benchmark"] = "fleet_scale";
  out["servers"] = servers;
  out["regions"] = regions;
  out["region_servers"] = kRegionServers;
  out["max_resident_regions"] = shard;
  out["staged_bytes"] = staged_bytes;
  out["staging_s"] = staging_millis / 1e3;
  out["encode_resident_bytes"] = encode_resident_bytes;
  out["jobs_parallel"] = par_jobs;
  for (size_t p = 0; p < pass_configs.size(); ++p) {
    out[std::string(pass_configs[p].key) + "_s"] = stats[p].wall_millis / 1e3;
    out[std::string(pass_configs[p].key) + "_peak_rss_bytes"] =
        stats[p].peak_rss_bytes;
  }
  out["ingest_resident_bytes"] = seq.ingest_resident_bytes;
  out["per_server_resident_bytes"] = per_server_bytes;
  out["per_server_peak_rss_bytes"] = per_server_peak;
  out["deterministic"] = deterministic;
  out["jobs_identical"] = jobs_identical;
  out["mmap_identical"] = mmap_identical;
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_scale.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_scale.json\n");
  }

  int violations = 0;
  if (!deterministic) {
    std::fprintf(stderr,
                 "scale run diverged across job counts or read paths\n");
    ++violations;
  }
  if (!budgets_path.empty()) {
    std::ifstream in(budgets_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = Json::Parse(buffer.str());
    if (!in.good() && buffer.str().empty()) {
      std::fprintf(stderr, "cannot open budgets file: %s\n",
                   budgets_path.c_str());
      return 1;
    }
    if (!parsed.ok() || !parsed->Contains("fleet_scale")) {
      std::fprintf(stderr, "budgets file has no fleet_scale section\n");
      return 1;
    }
    const Json& scale = (*parsed)["fleet_scale"];
    const double rss_ceiling = scale["max_peak_rss_bytes"].AsDouble();
    // The ceiling is calibrated at the full 100k-server fleet; smaller
    // smokes must fit under it a fortiori.
    if (static_cast<double>(worst_peak) > rss_ceiling) {
      std::fprintf(stderr,
                   "fleet_scale budget exceeded: peak RSS %lld > ceiling "
                   "%.0f bytes (if intentional, re-baseline "
                   "tests/budgets.json)\n",
                   static_cast<long long>(worst_peak), rss_ceiling);
      ++violations;
    }
    const double per_server_ceiling =
        scale["max_per_server_resident_bytes"].AsDouble();
    if (per_server_bytes > per_server_ceiling) {
      std::fprintf(stderr,
                   "fleet_scale budget exceeded: %.0f resident "
                   "bytes/server > ceiling %.0f (if intentional, "
                   "re-baseline tests/budgets.json)\n",
                   per_server_bytes, per_server_ceiling);
      ++violations;
    }
    if (scale.Contains("max_encode_resident_bytes")) {
      const double encode_ceiling =
          scale["max_encode_resident_bytes"].AsDouble();
      if (static_cast<double>(encode_resident_bytes) > encode_ceiling) {
        std::fprintf(stderr,
                     "fleet_scale budget exceeded: encode resident %lld > "
                     "ceiling %.0f bytes (if intentional, re-baseline "
                     "tests/budgets.json)\n",
                     static_cast<long long>(encode_resident_bytes),
                     encode_ceiling);
        ++violations;
      }
    }
    // Per-server peak RSS only amortizes at fleet scale: a small smoke
    // divides a fixed process floor by few servers and would trip the
    // ceiling spuriously, so the gate arms at >= 100k servers (and only
    // for sharded runs — the --shard=0 "before" row retains the whole
    // fleet by design).
    if (scale.Contains("max_per_server_peak_rss_bytes") &&
        servers >= 100000 && shard > 0) {
      const double peak_ceiling =
          scale["max_per_server_peak_rss_bytes"].AsDouble();
      if (per_server_peak > peak_ceiling) {
        std::fprintf(stderr,
                     "fleet_scale budget exceeded: %.0f peak-RSS "
                     "bytes/server > ceiling %.0f (if intentional, "
                     "re-baseline tests/budgets.json)\n",
                     per_server_peak, peak_ceiling);
        ++violations;
      }
    }
    if (violations == 0) {
      std::printf("fleet_scale budgets OK (%s)\n", budgets_path.c_str());
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t scale_servers = 0;
  int scale_jobs = 8;
  int64_t scale_shard = 8;
  std::string budgets_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--servers=", 10) == 0) {
      scale_servers = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      scale_jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--shard=", 8) == 0) {
      scale_shard = std::atoll(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--budgets=", 10) == 0) {
      budgets_path = argv[i] + 10;
    } else {
      argv[out_argc++] = argv[i];  // leave the rest for the benchmark lib
    }
  }
  argc = out_argc;

  if (scale_servers > 0) {
    return RunScaleFleet(scale_servers, scale_jobs < 1 ? 1 : scale_jobs,
                         scale_shard, budgets_path);
  }

  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Figure 12(b): accuracy evaluation, sequential vs partitioned per "
      "server across 8 workers.\n"
      "This machine reports %u hardware thread(s); the paper's 3-4.6x "
      "parallel speedup requires multiple cores — on a single-core host "
      "the parallel rows only measure dispatch overhead.\n",
      cores);
  RunFleetComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
