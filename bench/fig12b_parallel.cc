/// \file fig12b_parallel.cc
/// \brief Figure 12(b): Accuracy Evaluation, single-threaded vs
/// partitioned-per-server parallel (the Dask analog), in two modes:
/// backup-day-only and every-day-one-week-ahead.
///
/// Paper shapes: parallel loses slightly at the smallest input and wins
/// consistently at large inputs; in the all-days mode the speedup is
/// 3–4.6x across sizes.
///
/// With `--servers=N` the binary instead runs the fleet-scale memory
/// plane deliverable: N servers staged as per-region SeriesBlock blobs,
/// the full pipeline executed in bounded-RSS shards at jobs=1 and
/// jobs=`--jobs`, per-region digests compared for byte-determinism, and
/// (with `--budgets=<path>`) peak RSS + per-server resident cost gated
/// against the `fleet_scale` section of tests/budgets.json. Writes
/// BENCH_scale.json. `--shard=K` overrides the resident-region cap
/// (default 8); `--shard=0` disables retire-as-you-go entirely — the
/// pre-memory-plane O(fleet) retention, kept as the honest "before"
/// row for the RSS table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "pipeline/accuracy.h"
#include "pipeline/features.h"
#include "pipeline/fleet_runner.h"
#include "pipeline/inference.h"
#include "pipeline/ingestion.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "pipeline/validation.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

/// Context prepared through deployment so only accuracy evaluation runs
/// inside the timed region.
struct Prepared {
  DocStore docs;
  PipelineContext ctx;
};

Prepared* PrepareRegion(int num_servers) {
  static auto* lake = new Result<LakeStore>(
      LakeStore::OpenTemporary("fig12b"));
  lake->status().Abort();
  auto* prepared = new Prepared();
  std::string region = "par-" + std::to_string(num_servers);
  Fleet fleet = ProductionFleet(region, num_servers, 900, 4);
  (*lake)->Put(LakeStore::TelemetryKey(region, 3), ExtractWeekBlock(fleet, 3))
      .Abort();
  prepared->ctx.region = region;
  prepared->ctx.week = 3;
  prepared->ctx.lake = &**lake;
  prepared->ctx.docs = &prepared->docs;

  Pipeline prefix;  // everything before accuracy evaluation
  prefix.Add(std::make_unique<DataIngestionModule>())
      .Add(std::make_unique<DataValidationModule>())
      .Add(std::make_unique<FeatureExtractionModule>())
      .Add(std::make_unique<ModelTrainingModule>())
      .Add(std::make_unique<ModelDeploymentModule>());
  PipelineRunReport report = prefix.Run(&prepared->ctx);
  report.success ? void() : std::abort();
  return prepared;
}

Prepared& CachedRegion(int num_servers) {
  static auto* cache = new std::map<int, Prepared*>();
  auto it = cache->find(num_servers);
  if (it == cache->end()) {
    it = cache->emplace(num_servers, PrepareRegion(num_servers)).first;
  }
  return *it->second;
}

void RunAccuracy(benchmark::State& state, int threads, bool all_days) {
  Prepared& prepared = CachedRegion(static_cast<int>(state.range(0)));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  AccuracyEvaluationOptions options;
  options.evaluate_all_days = all_days;
  for (auto _ : state) {
    PipelineContext ctx = prepared.ctx;  // fresh copy per iteration
    ctx.pool = pool.get();
    AccuracyEvaluationModule module(options);
    Status st = module.Run(&ctx);
    st.Abort();
    benchmark::DoNotOptimize(ctx.accuracy_records.size());
  }
}

void BM_BackupDay_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, false);
}
void BM_BackupDay_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, false);
}
void BM_AllDays_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, true);
}
void BM_AllDays_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, true);
}

}  // namespace

BENCHMARK(BM_BackupDay_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BackupDay_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

namespace {

/// Fleet-level comparison (the Dask partition-per-server analog run
/// across whole regions): executes the same fixed-seed fleet with
/// jobs=1 and jobs=N through FleetRunner, checks the outputs are
/// byte-identical, and records the wall-clock trajectory in
/// BENCH_parallel.json for future PRs to regress against.
void RunFleetComparison() {
  constexpr int kRegions = 6;
  constexpr int kServers = 60;
  constexpr int64_t kWeek = 3;
  const unsigned cores = std::thread::hardware_concurrency();
  const int par_jobs =
      static_cast<int>(cores < 2 ? 2 : (cores > 8 ? 8 : cores));

  auto lake = LakeStore::OpenTemporary("fig12b_fleet");
  lake.status().Abort();
  std::vector<FleetJob> jobs;
  for (int r = 0; r < kRegions; ++r) {
    std::string region = "fleet-" + std::to_string(r);
    Fleet fleet = ProductionFleet(region, kServers,
                                  1200 + static_cast<uint64_t>(r));
    lake->Put(LakeStore::TelemetryKey(region, kWeek),
              ExtractWeekBlock(fleet, kWeek))
        .Abort();
    jobs.push_back({region, kWeek});
  }

  auto run = [&](int n_jobs, DocStore* docs) {
    FleetOptions options;
    options.jobs = n_jobs;
    FleetRunner runner(&*lake, docs, options);
    PipelineContext config;
    FleetRunResult result = runner.Run(jobs, config);
    if (result.FailureCount() != 0) {
      std::fprintf(stderr, "fleet run failed (%lld failures)\n",
                   static_cast<long long>(result.FailureCount()));
      std::abort();
    }
    return result;
  };

  // Each phase runs with a zeroed registry so BENCH_parallel.json can
  // carry per-phase store/pipeline/forecast histograms alongside the
  // wall-clock trajectory.
  DocStore seq_docs, par_docs;
  FleetRunResult seq, par;
  Json phases = Json::MakeObject();
  ResetPeakRss();
  phases["sequential"] = MetricsForPhase([&] { seq = run(1, &seq_docs); });
  const int64_t seq_peak = ReadPeakRssBytes();
  ResetPeakRss();
  phases["parallel"] =
      MetricsForPhase([&] { par = run(par_jobs, &par_docs); });
  const int64_t par_peak = ReadPeakRssBytes();

  // Determinism gate: the parallel run must reproduce the sequential
  // run's data outputs exactly (tests/fleet_determinism_test.cc covers
  // the full snapshot; this is the in-bench spot check).
  auto dump = [](DocStore* docs, const char* container) {
    Json arr = Json::MakeArray();
    for (const auto& doc : docs->GetContainer(container)->Query(
             [](const Document&) { return true; })) {
      Json d = Json::MakeObject();
      d["pk"] = doc.partition_key;
      d["id"] = doc.id;
      d["body"] = doc.body;
      arr.Append(std::move(d));
    }
    return arr.Dump();
  };
  const bool deterministic =
      dump(&seq_docs, kPredictionsContainer) ==
          dump(&par_docs, kPredictionsContainer) &&
      dump(&seq_docs, kAccuracyContainer) ==
          dump(&par_docs, kAccuracyContainer);

  const double speedup =
      par.wall_millis > 0.0 ? seq.wall_millis / par.wall_millis : 0.0;
  PrintHeader("Fleet engine",
              "whole-region pipelines, sequential vs parallel");
  std::printf("%-28s %10.1f ms\n", "sequential (jobs=1)", seq.wall_millis);
  std::printf("%-28s %10.1f ms  (jobs=%d)\n", "parallel", par.wall_millis,
              par_jobs);
  std::printf("%-28s %10.2fx\n", "speedup", speedup);
  std::printf("%-28s %10s\n", "outputs identical",
              deterministic ? "yes" : "NO (BUG)");
  std::printf("%-28s %10.1f MB (seq) / %.1f MB (par)\n", "phase peak RSS",
              static_cast<double>(seq_peak) / 1e6,
              static_cast<double>(par_peak) / 1e6);

  Json out = Json::MakeObject();
  out["benchmark"] = "fleet_parallel";
  out["hardware_threads"] = static_cast<int64_t>(cores);
  out["regions"] = kRegions;
  out["servers_per_region"] = kServers;
  out["jobs_parallel"] = par_jobs;
  out["sequential_ms"] = seq.wall_millis;
  out["parallel_ms"] = par.wall_millis;
  out["speedup"] = speedup;
  out["deterministic"] = deterministic;
  out["sequential_peak_rss_bytes"] = seq_peak;
  out["parallel_peak_rss_bytes"] = par_peak;
  if (cores < 4) {
    // On a starved host the "parallel" run only measures dispatch
    // overhead; a sub-1.0x ratio here reads as a perf regression when it
    // is really a hardware limitation, so the target is marked
    // not-applicable instead of being reported as missed.
    out["speedup_target"] = "n/a";
    out["note"] = StringPrintf(
        "host has %u hardware thread(s); the >=2x speedup target needs "
        ">=4 cores, so the measured ratio is dispatch overhead only",
        cores);
  } else {
    out["speedup_target"] = ">=2x";
    out["note"] =
        "speedup is bounded by hardware_threads; the >=2x target applies "
        "on >=4 cores";
  }
  out["phases"] = std::move(phases);
  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_parallel.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_parallel.json\n");
  }
}

/// FNV-1a over a string — the scale run's determinism digest primitive.
uint64_t FoldFnv(uint64_t h, const std::string& text) {
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Digest of one region's gated containers (predictions, accuracy,
/// model registry) — the same containers the in-bench determinism spot
/// check dumps, hashed instead of retained so a 100k-server fleet can
/// be compared across job counts without holding O(fleet) documents.
/// Incidents and run records are excluded: run records carry wall
/// clock, and the first-ever run of a region writes a one-time
/// "deduced schema" incident later runs do not repeat.
uint64_t DigestRegion(DocStore* docs, const std::string& region) {
  uint64_t h = 1469598103934665603ULL;
  for (const char* container :
       {kPredictionsContainer, kAccuracyContainer, kModelRegistryContainer}) {
    h = FoldFnv(h, container);
    for (const auto& doc :
         docs->GetContainer(container)->ReadPartition(region)) {
      h = FoldFnv(h, doc.id);
      h = FoldFnv(h, doc.body.Dump());
    }
  }
  return h;
}

/// One bounded-RSS pass over the scale fleet at a given job count:
/// regions run in shards of `max_resident`, each region is digested and
/// dropped at its shard boundary, so peak RSS tracks one shard's
/// working set. Returns per-region digests in job order.
struct ScaleRun {
  std::vector<uint64_t> digests;
  double wall_millis = 0.0;
  int64_t peak_rss_bytes = 0;
  int64_t ingest_resident_bytes = 0;
  int64_t failures = 0;
};

ScaleRun RunScalePass(const LakeStore& lake, const std::vector<FleetJob>& jobs,
                      int n_jobs, int64_t max_resident) {
  ScaleRun out;
  DocStore docs;
  FleetOptions options;
  options.jobs = n_jobs;
  options.max_resident_regions = max_resident;
  out.digests.reserve(jobs.size());
  options.retire = [&](const FleetJob& job,
                       const PipelineScheduler::ScheduledRun& run) {
    (void)run;
    out.digests.push_back(DigestRegion(&docs, job.region));
    docs.DropPartition(job.region);
  };
  MetricsRegistry::Global().Reset();
#if defined(__GLIBC__)
  // Without the trim the second pass starts on the first pass's retained
  // arena pages: its HWM reset lands on that inflated floor and the
  // reported peak measures leftover allocator state, not this pass's
  // working set.
  malloc_trim(0);
#endif
  ResetPeakRss();
  FleetRunner runner(&lake, &docs, options);
  PipelineContext config;
  config.model_name = "persistent_prev_day";
  FleetRunResult result = runner.Run(jobs, config);
  out.wall_millis = result.wall_millis;
  out.failures = result.FailureCount();
  out.peak_rss_bytes = ReadPeakRssBytes();
  auto& reg = MetricsRegistry::Global();
  out.ingest_resident_bytes =
      reg.GetCounter("seagull.pipeline.ingest_resident_bytes",
                     {{"format", "binary"}})
          ->Value();
  return out;
}

/// The bounded-RSS fleet-scale run (the tentpole deliverable): stages a
/// `--servers` fleet as per-region SeriesBlock blobs (regions generated
/// one at a time so staging itself is memory-bounded), then runs the
/// full pipeline over every region at jobs=1 and jobs=N in retire-as-
/// you-go shards, comparing per-region digests for byte-determinism and
/// gating peak RSS against the budgets file's `fleet_scale` section.
/// `shard` is the max resident regions per pass; 0 disables sharding
/// (every region's working set is retained until the end — the
/// pre-memory-plane behavior, kept as the honest "before" row).
int RunScaleFleet(int64_t servers, int par_jobs, int64_t shard,
                  const std::string& budgets_path) {
  constexpr int64_t kWeek = 3;
  constexpr int64_t kRegionServers = 1000;
  const int64_t regions =
      (servers + kRegionServers - 1) / kRegionServers;
  PrintHeader("Fleet scale",
              "bounded-RSS pipeline run, jobs=1 vs jobs=N, digest compare");
  if (shard > 0) {
    std::printf("%-28s %10lld servers in %lld regions (shard %lld)\n",
                "fleet", static_cast<long long>(servers),
                static_cast<long long>(regions),
                static_cast<long long>(shard));
  } else {
    std::printf("%-28s %10lld servers in %lld regions (unsharded)\n",
                "fleet", static_cast<long long>(servers),
                static_cast<long long>(regions));
  }

  auto lake = LakeStore::OpenTemporary("fig12b_scale");
  lake.status().Abort();
  std::vector<FleetJob> jobs;
  jobs.reserve(static_cast<size_t>(regions));
  int64_t staged_bytes = 0;
  int64_t remaining = servers;
  for (int64_t r = 0; r < regions; ++r) {
    std::string region = "scale-" + std::to_string(r);
    const int64_t n = std::min<int64_t>(kRegionServers, remaining);
    remaining -= n;
    // Generate -> encode -> free, one region at a time: staging a
    // 100k-server fleet must not itself hold O(fleet) load series.
    Fleet fleet = ProductionFleet(region, static_cast<int>(n),
                                  3000 + static_cast<uint64_t>(r), 4);
    std::string block = ExtractWeekBlock(fleet, kWeek);
    staged_bytes += static_cast<int64_t>(block.size());
    lake->Put(LakeStore::TelemetryKey(region, kWeek), std::move(block))
        .Abort();
    jobs.push_back({region, kWeek});
  }
  std::printf("%-28s %10.1f MB staged (%lld blobs)\n", "lake",
              static_cast<double>(staged_bytes) / 1e6,
              static_cast<long long>(regions));

  ScaleRun seq = RunScalePass(*lake, jobs, 1, shard);
  ScaleRun par = RunScalePass(*lake, jobs, par_jobs, shard);

  const bool deterministic =
      seq.failures == 0 && par.failures == 0 && seq.digests == par.digests;
  const double per_server_bytes =
      static_cast<double>(seq.ingest_resident_bytes) /
      static_cast<double>(servers);
  auto row = [](const char* name, const ScaleRun& r, int jobs_used) {
    std::printf("%-28s %10.1f s   peak RSS %8.1f MB  (jobs=%d)\n", name,
                r.wall_millis / 1e3,
                static_cast<double>(r.peak_rss_bytes) / 1e6, jobs_used);
  };
  row("sequential", seq, 1);
  row("parallel", par, par_jobs);
  std::printf("%-28s %10.0f bytes/server (amortized ingest)\n",
              "resident cost", per_server_bytes);
  std::printf("%-28s %10s\n", "digests identical",
              deterministic ? "yes" : "NO (BUG)");

  Json out = Json::MakeObject();
  out["benchmark"] = "fleet_scale";
  out["servers"] = servers;
  out["regions"] = regions;
  out["region_servers"] = kRegionServers;
  out["max_resident_regions"] = shard;
  out["staged_bytes"] = staged_bytes;
  out["jobs_parallel"] = par_jobs;
  out["sequential_s"] = seq.wall_millis / 1e3;
  out["parallel_s"] = par.wall_millis / 1e3;
  out["sequential_peak_rss_bytes"] = seq.peak_rss_bytes;
  out["parallel_peak_rss_bytes"] = par.peak_rss_bytes;
  out["ingest_resident_bytes"] = seq.ingest_resident_bytes;
  out["per_server_resident_bytes"] = per_server_bytes;
  out["deterministic"] = deterministic;
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_scale.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_scale.json\n");
  }

  int violations = 0;
  if (!deterministic) {
    std::fprintf(stderr, "scale run diverged across job counts\n");
    ++violations;
  }
  if (!budgets_path.empty()) {
    std::ifstream in(budgets_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = Json::Parse(buffer.str());
    if (!in.good() && buffer.str().empty()) {
      std::fprintf(stderr, "cannot open budgets file: %s\n",
                   budgets_path.c_str());
      return 1;
    }
    if (!parsed.ok() || !parsed->Contains("fleet_scale")) {
      std::fprintf(stderr, "budgets file has no fleet_scale section\n");
      return 1;
    }
    const Json& scale = (*parsed)["fleet_scale"];
    const double rss_ceiling = scale["max_peak_rss_bytes"].AsDouble();
    const int64_t peak = std::max(seq.peak_rss_bytes, par.peak_rss_bytes);
    // The ceiling is calibrated at the full 100k-server fleet; smaller
    // smokes must fit under it a fortiori.
    if (static_cast<double>(peak) > rss_ceiling) {
      std::fprintf(stderr,
                   "fleet_scale budget exceeded: peak RSS %lld > ceiling "
                   "%.0f bytes (if intentional, re-baseline "
                   "tests/budgets.json)\n",
                   static_cast<long long>(peak), rss_ceiling);
      ++violations;
    }
    const double per_server_ceiling =
        scale["max_per_server_resident_bytes"].AsDouble();
    if (per_server_bytes > per_server_ceiling) {
      std::fprintf(stderr,
                   "fleet_scale budget exceeded: %.0f resident "
                   "bytes/server > ceiling %.0f (if intentional, "
                   "re-baseline tests/budgets.json)\n",
                   per_server_bytes, per_server_ceiling);
      ++violations;
    }
    if (violations == 0) {
      std::printf("fleet_scale budgets OK (%s)\n", budgets_path.c_str());
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t scale_servers = 0;
  int scale_jobs = 8;
  int64_t scale_shard = 8;
  std::string budgets_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--servers=", 10) == 0) {
      scale_servers = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      scale_jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--shard=", 8) == 0) {
      scale_shard = std::atoll(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--budgets=", 10) == 0) {
      budgets_path = argv[i] + 10;
    } else {
      argv[out_argc++] = argv[i];  // leave the rest for the benchmark lib
    }
  }
  argc = out_argc;

  if (scale_servers > 0) {
    return RunScaleFleet(scale_servers, scale_jobs < 1 ? 1 : scale_jobs,
                         scale_shard, budgets_path);
  }

  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Figure 12(b): accuracy evaluation, sequential vs partitioned per "
      "server across 8 workers.\n"
      "This machine reports %u hardware thread(s); the paper's 3-4.6x "
      "parallel speedup requires multiple cores — on a single-core host "
      "the parallel rows only measure dispatch overhead.\n",
      cores);
  RunFleetComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
