/// \file fig12b_parallel.cc
/// \brief Figure 12(b): Accuracy Evaluation, single-threaded vs
/// partitioned-per-server parallel (the Dask analog), in two modes:
/// backup-day-only and every-day-one-week-ahead.
///
/// Paper shapes: parallel loses slightly at the smallest input and wins
/// consistently at large inputs; in the all-days mode the speedup is
/// 3–4.6x across sizes.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "pipeline/accuracy.h"
#include "pipeline/features.h"
#include "pipeline/ingestion.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "pipeline/validation.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"

using namespace seagull;
using namespace seagull::bench;

namespace {

/// Context prepared through deployment so only accuracy evaluation runs
/// inside the timed region.
struct Prepared {
  DocStore docs;
  PipelineContext ctx;
};

Prepared* PrepareRegion(int num_servers) {
  static auto* lake = new Result<LakeStore>(
      LakeStore::OpenTemporary("fig12b"));
  lake->status().Abort();
  auto* prepared = new Prepared();
  std::string region = "par-" + std::to_string(num_servers);
  Fleet fleet = ProductionFleet(region, num_servers, 900, 4);
  (*lake)->Put(LakeStore::TelemetryKey(region, 3),
               ExtractWeekCsvText(fleet, 3))
      .Abort();
  prepared->ctx.region = region;
  prepared->ctx.week = 3;
  prepared->ctx.lake = &**lake;
  prepared->ctx.docs = &prepared->docs;

  Pipeline prefix;  // everything before accuracy evaluation
  prefix.Add(std::make_unique<DataIngestionModule>())
      .Add(std::make_unique<DataValidationModule>())
      .Add(std::make_unique<FeatureExtractionModule>())
      .Add(std::make_unique<ModelTrainingModule>())
      .Add(std::make_unique<ModelDeploymentModule>());
  PipelineRunReport report = prefix.Run(&prepared->ctx);
  report.success ? void() : std::abort();
  return prepared;
}

Prepared& CachedRegion(int num_servers) {
  static auto* cache = new std::map<int, Prepared*>();
  auto it = cache->find(num_servers);
  if (it == cache->end()) {
    it = cache->emplace(num_servers, PrepareRegion(num_servers)).first;
  }
  return *it->second;
}

void RunAccuracy(benchmark::State& state, int threads, bool all_days) {
  Prepared& prepared = CachedRegion(static_cast<int>(state.range(0)));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  AccuracyEvaluationOptions options;
  options.evaluate_all_days = all_days;
  for (auto _ : state) {
    PipelineContext ctx = prepared.ctx;  // fresh copy per iteration
    ctx.pool = pool.get();
    AccuracyEvaluationModule module(options);
    Status st = module.Run(&ctx);
    st.Abort();
    benchmark::DoNotOptimize(ctx.accuracy_records.size());
  }
}

void BM_BackupDay_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, false);
}
void BM_BackupDay_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, false);
}
void BM_AllDays_Sequential(benchmark::State& state) {
  RunAccuracy(state, 1, true);
}
void BM_AllDays_Parallel(benchmark::State& state) {
  RunAccuracy(state, 8, true);
}

}  // namespace

BENCHMARK(BM_BackupDay_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BackupDay_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Sequential)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllDays_Parallel)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Figure 12(b): accuracy evaluation, sequential vs partitioned per "
      "server across 8 workers.\n"
      "This machine reports %u hardware thread(s); the paper's 3-4.6x "
      "parallel speedup requires multiple cores — on a single-core host "
      "the parallel rows only measure dispatch overhead.\n",
      cores);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
