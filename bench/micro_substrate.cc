/// \file micro_substrate.cc
/// \brief Micro-benchmarks of the hot substrate kernels: the min-average
/// window sweep (every LL-window query), the bucket-ratio comparison
/// (every accuracy evaluation), telemetry CSV parsing (ingestion's
/// dominant cost), and SSA fitting (the cheapest trainable model).
///
/// Not a paper figure — a regression guard for the paths every
/// experiment runs through thousands of times.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/random.h"
#include "forecast/ssa.h"
#include "metrics/bucket_ratio.h"
#include "telemetry/emitter.h"
#include "timeseries/window.h"

using namespace seagull;

namespace {

LoadSeries RandomDay(uint64_t seed, int64_t days = 1) {
  Rng rng(seed);
  std::vector<double> values;
  double level = 25.0;
  for (int64_t i = 0; i < days * 288; ++i) {
    level = std::clamp(level + rng.Gaussian(0.0, 1.0), 0.0, 100.0);
    values.push_back(level);
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

void BM_MinAverageWindow(benchmark::State& state) {
  LoadSeries day = RandomDay(1, state.range(0));
  for (auto _ : state) {
    WindowResult w = FindMinAverageWindow(day, 120);
    benchmark::DoNotOptimize(w.start);
  }
  state.SetItemsProcessed(state.iterations() * day.size());
}

void BM_BucketRatio(benchmark::State& state) {
  LoadSeries truth = RandomDay(2, state.range(0));
  LoadSeries pred = RandomDay(3, state.range(0));
  for (auto _ : state) {
    BucketRatioResult r = BucketRatio(pred, truth);
    benchmark::DoNotOptimize(r.ratio);
  }
  state.SetItemsProcessed(state.iterations() * truth.size());
}

void BM_TelemetryCsvParse(benchmark::State& state) {
  RegionConfig config;
  config.name = "micro";
  config.num_servers = static_cast<int>(state.range(0));
  config.weeks = 4;
  Fleet fleet = Fleet::Generate(config);
  std::string text = ExtractWeekCsvText(fleet, 3);
  for (auto _ : state) {
    auto records = ParseTelemetryCsv(text);
    benchmark::DoNotOptimize(records->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}

void BM_SsaFit(benchmark::State& state) {
  LoadSeries week = RandomDay(4, 7);
  for (auto _ : state) {
    SsaForecast model;
    Status st = model.Fit(week);
    st.Abort();
    benchmark::DoNotOptimize(model.rank());
  }
}

void BM_GenerateLoadWeek(benchmark::State& state) {
  ServerProfile profile;
  profile.server_id = "micro";
  profile.archetype = ServerArchetype::kNoPattern;
  profile.created_at = 0;
  profile.deleted_at = 4 * kMinutesPerWeek;
  profile.seed = 5;
  for (auto _ : state) {
    LoadSeries load = GenerateLoad(profile, 3 * kMinutesPerWeek,
                                   4 * kMinutesPerWeek);
    benchmark::DoNotOptimize(load.size());
  }
}

}  // namespace

BENCHMARK(BM_MinAverageWindow)->Arg(1)->Arg(7);
BENCHMARK(BM_BucketRatio)->Arg(1)->Arg(7);
BENCHMARK(BM_TelemetryCsvParse)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsaFit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenerateLoadWeek)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
