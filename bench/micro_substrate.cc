/// \file micro_substrate.cc
/// \brief Micro-benchmarks of the hot substrate kernels: the min-average
/// window sweep (every LL-window query), the bucket-ratio comparison
/// (every accuracy evaluation), telemetry ingestion over both wire
/// formats (CSV parse+group vs SeriesBlock decode), the lake blob cache
/// hit path, and SSA fitting (the cheapest trainable model).
///
/// Not a paper figure — a regression guard for the paths every
/// experiment runs through thousands of times. Also emits
/// BENCH_ingest.json: the data-plane trajectory (rows/sec and bytes/sec
/// per format at the 1200-server region — materializing and streaming
/// SeriesBlock decode both — plus the decode peak-RSS footprint of each
/// path, the encode plane's streaming-writer vs materializing-encoder
/// wall time and resident cost, and the lake-cache hit rate of a
/// repeated fleet run) for future PRs to regress against. With
/// `--budgets=<path>` the streaming decode's footprint reduction is
/// gated against the `ingest_memory` section of tests/budgets.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "forecast/ssa.h"
#include "metrics/bucket_ratio.h"
#include "pipeline/fleet_runner.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"
#include "telemetry/series_block.h"
#include "timeseries/window.h"

using namespace seagull;

namespace {

LoadSeries RandomDay(uint64_t seed, int64_t days = 1) {
  Rng rng(seed);
  std::vector<double> values;
  double level = 25.0;
  for (int64_t i = 0; i < days * 288; ++i) {
    level = std::clamp(level + rng.Gaussian(0.0, 1.0), 0.0, 100.0);
    values.push_back(level);
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

void BM_MinAverageWindow(benchmark::State& state) {
  LoadSeries day = RandomDay(1, state.range(0));
  for (auto _ : state) {
    WindowResult w = FindMinAverageWindow(day, 120);
    benchmark::DoNotOptimize(w.start);
  }
  state.SetItemsProcessed(state.iterations() * day.size());
}

void BM_BucketRatio(benchmark::State& state) {
  LoadSeries truth = RandomDay(2, state.range(0));
  LoadSeries pred = RandomDay(3, state.range(0));
  for (auto _ : state) {
    BucketRatioResult r = BucketRatio(pred, truth);
    benchmark::DoNotOptimize(r.ratio);
  }
  state.SetItemsProcessed(state.iterations() * truth.size());
}

void BM_TelemetryCsvParse(benchmark::State& state) {
  RegionConfig config;
  config.name = "micro";
  config.num_servers = static_cast<int>(state.range(0));
  config.weeks = 4;
  Fleet fleet = Fleet::Generate(config);
  std::string text = ExtractWeekCsvText(fleet, 3);
  for (auto _ : state) {
    auto records = ParseTelemetryCsv(text);
    benchmark::DoNotOptimize(records->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}

/// Full CSV ingestion: parse + group into per-server series (what the
/// pipeline does for a text blob).
void BM_IngestCsv(benchmark::State& state) {
  RegionConfig config;
  config.name = "micro";
  config.num_servers = static_cast<int>(state.range(0));
  config.weeks = 4;
  Fleet fleet = Fleet::Generate(config);
  std::string text = ExtractWeekCsvText(fleet, 3);
  for (auto _ : state) {
    auto records = ParseTelemetryCsv(text);
    auto servers = GroupByServer(*records);
    benchmark::DoNotOptimize(servers->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}

/// Binary ingestion: SeriesBlock decoded straight into per-server
/// series, no flat-records intermediate.
void BM_IngestBinary(benchmark::State& state) {
  RegionConfig config;
  config.name = "micro";
  config.num_servers = static_cast<int>(state.range(0));
  config.weeks = 4;
  Fleet fleet = Fleet::Generate(config);
  std::string block = ExtractWeekBlock(fleet, 3);
  for (auto _ : state) {
    auto servers = DecodeSeriesBlockToServers(block);
    benchmark::DoNotOptimize(servers->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}

/// Streaming binary ingestion: the `SeriesBlockCursor` path the
/// pipeline runs — per-server column views into the blob, one grouped
/// server materialized at a time, no whole-block column scratch.
void BM_IngestStreaming(benchmark::State& state) {
  RegionConfig config;
  config.name = "micro";
  config.num_servers = static_cast<int>(state.range(0));
  config.weeks = 4;
  Fleet fleet = Fleet::Generate(config);
  std::string block = ExtractWeekBlock(fleet, 3);
  for (auto _ : state) {
    auto cursor = SeriesBlockCursor::Open(std::string_view(block));
    cursor.status().Abort();
    std::vector<ServerTelemetry> servers;
    servers.reserve(static_cast<size_t>(cursor->size()));
    StreamSeriesBlockServers(*cursor, [&](ServerTelemetry&& st) {
      servers.push_back(std::move(st));
      return Status::OK();
    }).Abort();
    benchmark::DoNotOptimize(servers.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
}

/// The lake-cache hit path: stat + shard lookup + shared_ptr copy.
void BM_LakeCacheHit(benchmark::State& state) {
  static auto* lake = [] {
    auto opened = LakeStore::OpenTemporary("micro_cache");
    opened.status().Abort();
    auto* owned = new LakeStore(std::move(opened).ValueUnsafe());
    owned->ConfigureCache(16 << 20);
    owned->Put("bench/blob", std::string(1 << 20, 'x')).Abort();
    owned->GetShared("bench/blob").status().Abort();  // warm
    return owned;
  }();
  for (auto _ : state) {
    auto blob = lake->GetShared("bench/blob");
    benchmark::DoNotOptimize(blob->get());
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}

/// The mmap read hit path: stat + shard lookup + BlobRef copy — the
/// ref aliases the cached page-cache mapping, no heap buffer at all.
void BM_LakeMmapHit(benchmark::State& state) {
  static auto* lake = [] {
    auto opened = LakeStore::OpenTemporary("micro_mmap");
    opened.status().Abort();
    auto* owned = new LakeStore(std::move(opened).ValueUnsafe());
    owned->ConfigureCache(16 << 20);
    owned->Put("bench/blob", std::string(1 << 20, 'x')).Abort();
    owned->GetBlob("bench/blob").status().Abort();  // warm: mapped entry
    return owned;
  }();
  for (auto _ : state) {
    auto blob = lake->GetBlob("bench/blob");
    benchmark::DoNotOptimize(blob->data());
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}

void BM_SsaFit(benchmark::State& state) {
  LoadSeries week = RandomDay(4, 7);
  for (auto _ : state) {
    SsaForecast model;
    Status st = model.Fit(week);
    st.Abort();
    benchmark::DoNotOptimize(model.rank());
  }
}

void BM_GenerateLoadWeek(benchmark::State& state) {
  ServerProfile profile;
  profile.server_id = "micro";
  profile.archetype = ServerArchetype::kNoPattern;
  profile.created_at = 0;
  profile.deleted_at = 4 * kMinutesPerWeek;
  profile.seed = 5;
  for (auto _ : state) {
    LoadSeries load = GenerateLoad(profile, 3 * kMinutesPerWeek,
                                   4 * kMinutesPerWeek);
    benchmark::DoNotOptimize(load.size());
  }
}

/// Emits BENCH_ingest.json: CSV vs SeriesBlock ingestion throughput at
/// the paper-scale 1200-server region (min-of-3 wall times), plus the
/// cache-hit rate of a second identical fleet run over a cache-enabled
/// lake with a per-phase metrics snapshot embedded.
int RunIngestTrajectory(const std::string& budgets_path) {
  using Clock = std::chrono::steady_clock;
  seagull::bench::PrintHeader("Data plane",
                              "CSV vs SeriesBlock ingestion, lake cache");

  RegionConfig config;
  config.name = "ingest-1200";
  config.num_servers = 1200;
  config.weeks = 4;
  config.seed = 42;
  Fleet fleet = Fleet::Generate(config);
  const std::string csv = ExtractWeekCsvText(fleet, 3);
  const std::string block = ExtractWeekBlock(fleet, 3);
  auto info = PeekSeriesBlock(block);
  info.status().Abort();
  const int64_t rows = info->total_samples;

  auto min_millis_of_3 = [](auto&& body) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      body();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      if (rep == 0 || ms < best) best = ms;
    }
    return best;
  };
  const double csv_ms = min_millis_of_3([&] {
    auto records = ParseTelemetryCsv(csv);
    auto servers = GroupByServer(*records);
    benchmark::DoNotOptimize(servers->size());
  });
  const double bin_ms = min_millis_of_3([&] {
    auto servers = DecodeSeriesBlockToServers(block);
    benchmark::DoNotOptimize(servers->size());
  });
  auto stream_decode = [&] {
    auto cursor = SeriesBlockCursor::Open(std::string_view(block));
    cursor.status().Abort();
    std::vector<ServerTelemetry> servers;
    servers.reserve(static_cast<size_t>(cursor->size()));
    StreamSeriesBlockServers(*cursor, [&](ServerTelemetry&& st) {
      servers.push_back(std::move(st));
      return Status::OK();
    }).Abort();
    benchmark::DoNotOptimize(servers.size());
  };
  const double stream_ms = min_millis_of_3(stream_decode);
  const double speedup = bin_ms > 0.0 ? csv_ms / bin_ms : 0.0;

  auto per_sec = [](double count, double ms) {
    return ms > 0.0 ? count * 1000.0 / ms : 0.0;
  };
  std::printf("%-28s %10.1f ms  %12.0f rows/s  %8.1f MB/s\n", "ingest (csv)",
              csv_ms, per_sec(static_cast<double>(rows), csv_ms),
              per_sec(static_cast<double>(csv.size()), csv_ms) / 1e6);
  std::printf("%-28s %10.1f ms  %12.0f rows/s  %8.1f MB/s\n",
              "ingest (binary)", bin_ms,
              per_sec(static_cast<double>(rows), bin_ms),
              per_sec(static_cast<double>(block.size()), bin_ms) / 1e6);
  std::printf("%-28s %10.1f ms  %12.0f rows/s  %8.1f MB/s\n",
              "ingest (streaming)", stream_ms,
              per_sec(static_cast<double>(rows), stream_ms),
              per_sec(static_cast<double>(block.size()), stream_ms) / 1e6);
  std::printf("%-28s %10.2fx   (target >= 4x)\n", "binary speedup", speedup);

  // Decode memory footprint, measured as the kernel's RSS high-water
  // delta around each decode (VmHWM reset via /proc/self/clear_refs).
  // Streaming runs first, on a cold allocator, so its measured peak is
  // an upper bound while the materializing pass benefits from warmed
  // pages — the ratio below is conservative. Both paths retain the
  // grouped output (what the ingest module does); the difference is
  // the materializing path's whole-block column scratch.
  const bool rss_supported = ResetPeakRss() && ReadPeakRssBytes() >= 0;
  int64_t stream_peak = -1, mat_peak = -1;
  double footprint_ratio = 0.0;
  if (rss_supported) {
    auto peak_delta = [](auto&& body) {
#if defined(__GLIBC__)
      // The timing reps above warmed the allocator: glibc's dynamic
      // mmap threshold ramped past the column-scratch size, so freed
      // pages stay resident in the arena and a decode that reuses them
      // never raises RSS. Hand free chunks back to the kernel first so
      // the body faults its working set in again.
      malloc_trim(0);
#endif
      ResetPeakRss();
      const int64_t before = ReadPeakRssBytes();
      body();
      return ReadPeakRssBytes() - before;
    };
    stream_peak = peak_delta(stream_decode);
    mat_peak = peak_delta([&] {
      auto servers = DecodeSeriesBlockToServers(block);
      benchmark::DoNotOptimize(servers->size());
    });
    footprint_ratio = stream_peak > 0
                          ? static_cast<double>(mat_peak) /
                                static_cast<double>(stream_peak)
                          : 0.0;
    std::printf("%-28s %10.1f MB peak (%6.0f bytes/server)\n",
                "decode footprint (stream)",
                static_cast<double>(stream_peak) / 1e6,
                static_cast<double>(stream_peak) / 1200.0);
    std::printf("%-28s %10.1f MB peak (%6.0f bytes/server)\n",
                "decode footprint (mater.)",
                static_cast<double>(mat_peak) / 1e6,
                static_cast<double>(mat_peak) / 1200.0);
    std::printf("%-28s %10.2fx   (target >= 2x)\n", "footprint reduction",
                footprint_ratio);
  } else {
    std::printf("%-28s %10s\n", "decode footprint",
                "n/a (no VmHWM reset on this kernel)");
  }

  // Encode plane: the streaming SGB1 writer (`ExtractWeekBlockTo` — two
  // deterministic generation passes, timestamps streamed in chunks,
  // values buffered) against the materializing path (`ExtractWeekBlock`
  // — every TelemetryRecord plus the whole output string in memory).
  // The writer's resident cost is its own high-water accounting, exact
  // and allocator-independent; the materializing cost is the RSS delta.
  int64_t writer_peak = 0;
  const double stream_encode_ms = min_millis_of_3([&] {
    int64_t bytes = 0;
    ExtractWeekBlockTo(fleet, 3,
                       [&](std::string_view b) {
                         bytes += static_cast<int64_t>(b.size());
                         return Status::OK();
                       },
                       {}, &writer_peak)
        .Abort();
    benchmark::DoNotOptimize(bytes);
  });
  const double mat_encode_ms = min_millis_of_3([&] {
    std::string blob = ExtractWeekBlock(fleet, 3);
    benchmark::DoNotOptimize(blob.size());
  });
  int64_t mat_encode_peak = -1;
  double encode_ratio = 0.0;
  if (rss_supported) {
#if defined(__GLIBC__)
    malloc_trim(0);
#endif
    ResetPeakRss();
    const int64_t before = ReadPeakRssBytes();
    {
      std::string blob = ExtractWeekBlock(fleet, 3);
      benchmark::DoNotOptimize(blob.size());
    }
    mat_encode_peak = ReadPeakRssBytes() - before;
    encode_ratio = writer_peak > 0 ? static_cast<double>(mat_encode_peak) /
                                         static_cast<double>(writer_peak)
                                   : 0.0;
  }
  std::printf("%-28s %10.1f ms  %10.1f MB resident (writer accounting)\n",
              "encode (streaming)", stream_encode_ms,
              static_cast<double>(writer_peak) / 1e6);
  if (mat_encode_peak >= 0) {
    std::printf("%-28s %10.1f ms  %10.1f MB resident (RSS delta)\n",
                "encode (materializing)", mat_encode_ms,
                static_cast<double>(mat_encode_peak) / 1e6);
    std::printf("%-28s %10.2fx\n", "encode residency reduction",
                encode_ratio);
  } else {
    std::printf("%-28s %10.1f ms\n", "encode (materializing)",
                mat_encode_ms);
  }

  // Cache trajectory: two identical fleet runs against one cache-enabled
  // lake; run two's telemetry reads should all hit.
  auto opened = LakeStore::OpenTemporary("ingest_cache");
  opened.status().Abort();
  LakeStore lake = std::move(opened).ValueUnsafe();
  lake.ConfigureCache(256 << 20);
  std::vector<FleetJob> jobs;
  for (int r = 0; r < 2; ++r) {
    std::string region = "cache-" + std::to_string(r);
    Fleet f = seagull::bench::ProductionFleet(region, 60,
                                              77 + static_cast<uint64_t>(r),
                                              4);
    lake.Put(LakeStore::TelemetryKey(region, 3), ExtractWeekBlock(f, 3))
        .Abort();
    jobs.push_back({region, 3});
  }
  auto run_once = [&] {
    DocStore docs;  // fresh docs: the scheduler sees the week as due
    FleetRunner runner(&lake, &docs);
    PipelineContext ctx;
    ctx.model_name = "persistent_prev_day";
    FleetRunResult result = runner.Run(jobs, ctx);
    if (result.FailureCount() != 0) std::abort();
  };
  run_once();  // cold: fill the cache
  Json warm_metrics = seagull::bench::MetricsForPhase(run_once);
  auto& reg = MetricsRegistry::Global();
  const double hits = static_cast<double>(
      reg.GetCounter("seagull.lake.cache_events", {{"event", "hit"}})
          ->Value());
  const double misses = static_cast<double>(
      reg.GetCounter("seagull.lake.cache_events", {{"event", "miss"}})
          ->Value());
  const double hit_rate = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  std::printf("%-28s %10.1f%%  (%0.0f hits / %0.0f misses, target >= 90%%)\n",
              "warm-run cache hit rate", hit_rate * 100.0, hits, misses);

  Json out = Json::MakeObject();
  out["benchmark"] = "ingest_data_plane";
  out["servers"] = 1200;
  out["rows"] = rows;
  Json csv_j = Json::MakeObject();
  csv_j["bytes"] = static_cast<int64_t>(csv.size());
  csv_j["millis"] = csv_ms;
  csv_j["rows_per_sec"] = per_sec(static_cast<double>(rows), csv_ms);
  csv_j["bytes_per_sec"] = per_sec(static_cast<double>(csv.size()), csv_ms);
  out["csv"] = std::move(csv_j);
  Json bin_j = Json::MakeObject();
  bin_j["bytes"] = static_cast<int64_t>(block.size());
  bin_j["millis"] = bin_ms;
  bin_j["rows_per_sec"] = per_sec(static_cast<double>(rows), bin_ms);
  bin_j["bytes_per_sec"] = per_sec(static_cast<double>(block.size()), bin_ms);
  out["binary"] = std::move(bin_j);
  Json stream_j = Json::MakeObject();
  stream_j["bytes"] = static_cast<int64_t>(block.size());
  stream_j["millis"] = stream_ms;
  stream_j["rows_per_sec"] = per_sec(static_cast<double>(rows), stream_ms);
  stream_j["bytes_per_sec"] =
      per_sec(static_cast<double>(block.size()), stream_ms);
  out["streaming"] = std::move(stream_j);
  Json foot_j = Json::MakeObject();
  foot_j["supported"] = rss_supported;
  foot_j["streaming_peak_bytes"] = stream_peak;
  foot_j["materializing_peak_bytes"] = mat_peak;
  foot_j["reduction_ratio"] = footprint_ratio;
  foot_j["streaming_bytes_per_server"] =
      static_cast<double>(stream_peak) / 1200.0;
  out["decode_footprint"] = std::move(foot_j);
  Json enc_j = Json::MakeObject();
  enc_j["streaming_millis"] = stream_encode_ms;
  enc_j["materializing_millis"] = mat_encode_ms;
  enc_j["streaming_resident_bytes"] = writer_peak;
  enc_j["materializing_peak_bytes"] = mat_encode_peak;
  enc_j["reduction_ratio"] = encode_ratio;
  out["encode"] = std::move(enc_j);
  out["speedup"] = speedup;
  Json cache_j = Json::MakeObject();
  cache_j["warm_hits"] = hits;
  cache_j["warm_misses"] = misses;
  cache_j["hit_rate"] = hit_rate;
  cache_j["warm_metrics"] = std::move(warm_metrics);
  out["cache"] = std::move(cache_j);
  std::FILE* f = std::fopen("BENCH_ingest.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_ingest.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_ingest.json\n");
  }

  // `--budgets`: gate the streaming decode's memory win against the
  // `ingest_memory` section (tools/check.sh perf/scale wire this up).
  int violations = 0;
  if (!budgets_path.empty()) {
    std::ifstream in(budgets_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = Json::Parse(buffer.str());
    if (!parsed.ok() || !parsed->Contains("ingest_memory")) {
      std::fprintf(stderr, "budgets file has no ingest_memory section\n");
      return 1;
    }
    const double min_ratio =
        (*parsed)["ingest_memory"]["min_footprint_ratio"].AsDouble();
    if (!rss_supported) {
      std::printf("ingest_memory budget skipped: kernel cannot reset "
                  "VmHWM\n");
    } else if (footprint_ratio < min_ratio) {
      std::fprintf(stderr,
                   "ingest_memory budget missed: footprint reduction "
                   "%.2fx < %.2fx floor (if intentional, re-baseline "
                   "tests/budgets.json)\n",
                   footprint_ratio, min_ratio);
      ++violations;
    } else {
      std::printf("ingest_memory budgets OK (%s)\n", budgets_path.c_str());
    }
  }
  return violations;
}

}  // namespace

BENCHMARK(BM_MinAverageWindow)->Arg(1)->Arg(7);
BENCHMARK(BM_BucketRatio)->Arg(1)->Arg(7);
BENCHMARK(BM_TelemetryCsvParse)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestCsv)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestBinary)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestStreaming)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LakeCacheHit);
BENCHMARK(BM_LakeMmapHit);
BENCHMARK(BM_SsaFit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenerateLoadWeek)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string budgets_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budgets=", 10) == 0) {
      budgets_path = argv[i] + 10;
    } else {
      argv[out_argc++] = argv[i];  // leave the rest for the benchmark lib
    }
  }
  argc = out_argc;
  const int violations = RunIngestTrajectory(budgets_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return violations == 0 ? 0 : 1;
}
