/// \file fig16_autoscale_accuracy.cc
/// \brief Figure 16 + §A.1: SQL-database model accuracy (Mean NRMSE and
/// MASE) for 24h-ahead prediction, and the stable-database share.
///
/// Paper: persistent forecast (previous day) finds the middle ground
/// between accuracy and computational overhead; 19.36% of sampled SQL
/// databases are stable.

#include "autoscale/classify.h"
#include "autoscale/eval.h"
#include "bench_common.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  PrintHeader("Figure 16 / §A.1", "SQL auto-scale model accuracy");

  SqlFleetConfig config;
  config.num_databases = 150;
  config.weeks = 4;
  config.seed = 2024;
  SqlFleet fleet = SqlFleet::Generate(config);

  // §A.1 classification.
  int64_t stable = 0;
  for (const auto& db : fleet.databases()) {
    LoadSeries load = fleet.Load(db, 0, 4 * kMinutesPerWeek);
    if (ClassifySqlDatabase(load, 0, 4 * kMinutesPerWeek).stable) ++stable;
  }
  std::printf("stable databases: %.2f%% (paper: 19.36%%)\n\n",
              100.0 * static_cast<double>(stable) /
                  static_cast<double>(fleet.size()));

  // Figure 16: model accuracy. ARIMA runs on a small subset, as in the
  // appendix where it needed a dedicated cluster.
  AutoscaleEvalOptions options;
  options.models = {"persistent_prev_day", "feedforward", "additive",
                    "arima"};
  options.max_databases = 60;
  auto results = EvaluateAutoscaleModels(fleet, options);
  results.status().Abort();

  std::printf("%-22s %10s %12s %12s\n", "model", "databases", "mean NRMSE",
              "MASE");
  for (const auto& r : *results) {
    std::printf("%-22s %10lld %12.3f %12.3f\n", r.model.c_str(),
                static_cast<long long>(r.databases_evaluated), r.mean_nrmse,
                r.mean_mase);
  }
  std::printf("\n(NRMSE < 1 beats predicting the mean; MASE < 1 beats the "
              "one-step naive forecast)\n");
  return 0;
}
