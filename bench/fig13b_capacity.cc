/// \file fig13b_capacity.cc
/// \brief Figure 13(b): percentage of servers per maximal CPU load — the
/// capacity-utilization histogram motivating overbooking/auto-scale.
///
/// Paper: only 3.7% of servers reach their CPU capacity per week; for
/// 96.3% resources could be saved.

#include "bench_common.h"
#include "scheduling/impact.h"

using namespace seagull;
using namespace seagull::bench;

int main() {
  PrintHeader("Figure 13(b)", "servers by maximal weekly CPU load");

  ImpactEvaluator evaluator;
  for (const auto& region : MakeEvaluationRegions(0.5, 99)) {
    Fleet fleet = Fleet::Generate(region);
    const int64_t week = region.weeks - 1;
    for (const auto& profile : fleet.servers()) {
      MinuteStamp w_start = week * kMinutesPerWeek;
      if (!profile.IsAliveAt(w_start)) continue;
      evaluator.AddServerWeek(
          profile.server_id,
          fleet.TrueLoad(profile, w_start, w_start + kMinutesPerWeek));
    }
  }

  const CapacityReport& cap = evaluator.capacity();
  std::printf("%-18s %10s %10s\n", "max weekly CPU", "servers", "share");
  for (size_t k = 0; k < cap.histogram.size(); ++k) {
    std::printf("  %3zu%% - %3zu%%     %10lld %9.1f%%\n", k * 10,
                k * 10 + 10, static_cast<long long>(cap.histogram[k]),
                100.0 * static_cast<double>(cap.histogram[k]) /
                    static_cast<double>(cap.servers));
  }
  std::printf("\nservers at capacity: %.1f%% (paper: 3.7%%); "
              "savings opportunity: %.1f%% (paper: 96.3%%)\n",
              100.0 * cap.FractionAtCapacity(),
              100.0 * (1.0 - cap.FractionAtCapacity()));
  return 0;
}
