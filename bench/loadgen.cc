/// \file loadgen.cc
/// \brief Serving-engine load test: BENCH_serving.json.
///
/// Boots a `ServingEngine` over a synthetic production-mix fleet (1200
/// servers by default, one week of 5-minute telemetry tails, the
/// persistent-prev-day champion deployed fleet-wide) and hammers it with
/// the open- and closed-loop drivers across the ramp, spike, and soak
/// profiles. Emits one row per (profile, mode) with per-verb
/// p50/p95/p99 latency, throughput, and the refit-amortization
/// accounting that shows dirty-set tracking paying for itself.
///
/// With `--budgets=<path>` the soak/open row is checked against the
/// "serving_micros" per-verb p50/p99 ceilings and the
/// "serving_min_throughput_rps" floor in the budgets file
/// (tools/check.sh serving wires this up); a violation exits non-zero.
///
/// Flags: --servers=N --ticks=N --base=N --clients=N --seed=S --jobs=N
///        --budgets=PATH --profile=NAME --fault-rate=F --fault-seed=S
///        (all optional; --profile restricts the matrix to one profile,
///        --fault-rate enables the deterministic serving.refit fault
///        point — the soak CI mode runs spike at 10%)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/fault.h"
#include "forecast/persistent.h"
#include "serving/loadgen.h"

using namespace seagull;

namespace {

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  const std::string text = FlagStr(argc, argv, name);
  return text.empty() ? fallback : std::atof(text.c_str());
}

/// Fleet-wide persistent-prev-day endpoint (the paper's champion for
/// the serving scenario; heuristic, so one model serves every server).
ModelEndpoint MakeEndpoint() {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  return std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();
}

/// One week of telemetry tails for a production-mix fleet.
std::vector<ServerTelemetry> MakeTails(const Fleet& fleet) {
  std::vector<ServerTelemetry> tails;
  tails.reserve(static_cast<size_t>(fleet.size()));
  for (const auto& profile : fleet.servers()) {
    ServerTelemetry st;
    st.server_id = profile.server_id;
    st.load = fleet.ObservedLoad(profile, 0, kMinutesPerWeek);
    tails.push_back(std::move(st));
  }
  return tails;
}

/// Per-verb p50/p99 ceilings + throughput floor for the soak/open row.
/// Returns the number of violations.
int CheckBudgets(const std::string& path, const Json& soak_row) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open budgets file: %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = Json::Parse(buffer.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "budgets parse error: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  const Json& ceilings = (*doc)["serving_micros"];
  if (!ceilings.is_object()) {
    std::fprintf(stderr, "budgets file has no serving_micros section\n");
    return 1;
  }
  int violations = 0;
  const Json& latency = soak_row["latency_micros"];
  for (const auto& [verb, ceiling] : ceilings.AsObject()) {
    const Json& measured = latency[verb];
    if (!measured.is_object()) {
      std::fprintf(stderr, "BUDGET VIOLATION: no %s requests measured\n",
                   verb.c_str());
      ++violations;
      continue;
    }
    const double p50 = measured["p50_micros"].AsDouble();
    const double p99 = measured["p99_micros"].AsDouble();
    const double p50_max = ceiling["p50"].AsDouble();
    const double p99_max = ceiling["p99"].AsDouble();
    if (p50 > p50_max || p99 > p99_max) {
      std::fprintf(stderr,
                   "BUDGET VIOLATION: serving %s p50 %.0f/%.0f us, "
                   "p99 %.0f/%.0f us (tests/budgets.json)\n",
                   verb.c_str(), p50, p50_max, p99, p99_max);
      ++violations;
    }
  }
  const double min_rps = (*doc)["serving_min_throughput_rps"].AsDouble();
  const double rps = soak_row["throughput_rps"].AsDouble();
  if (min_rps > 0.0 && rps < min_rps) {
    std::fprintf(stderr,
                 "BUDGET VIOLATION: serving throughput %.0f rps < "
                 "floor %.0f rps\n",
                 rps, min_rps);
    ++violations;
  }
  // Subscription freshness: the mean window-move lag must stay under
  // its ceiling (clean runs sit at ~0; refit faults push it up).
  if ((*doc).Contains("serving_notify_lag_ticks_max")) {
    const double lag_max = (*doc)["serving_notify_lag_ticks_max"].AsDouble();
    const double lag = soak_row["notify_lag_ticks"].AsDouble();
    const int64_t fired = soak_row["notifications"].AsInt();
    if (fired <= 0) {
      std::fprintf(stderr,
                   "BUDGET VIOLATION: no subscription notifications fired\n");
      ++violations;
    } else if (lag > lag_max) {
      std::fprintf(stderr,
                   "BUDGET VIOLATION: notify lag %.3f ticks > max %.3f "
                   "(tests/budgets.json)\n",
                   lag, lag_max);
      ++violations;
    }
  }
  if (violations == 0) {
    std::printf("serving budgets OK (%s)\n", path.c_str());
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t servers = FlagInt(argc, argv, "servers", 1200);
  const int64_t ticks = FlagInt(argc, argv, "ticks", 12);
  const int64_t base = FlagInt(argc, argv, "base", 400);
  const int64_t clients = FlagInt(argc, argv, "clients", 16);
  const uint64_t seed =
      static_cast<uint64_t>(FlagInt(argc, argv, "seed", 1));
  int64_t jobs = FlagInt(argc, argv, "jobs", 0);
  if (jobs <= 0) {
    jobs = static_cast<int64_t>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 4;
  }
  const std::string budgets_path = FlagStr(argc, argv, "budgets");
  const std::string only_profile = FlagStr(argc, argv, "profile");
  const double fault_rate = FlagDouble(argc, argv, "fault-rate", 0.0);
  const uint64_t fault_seed =
      static_cast<uint64_t>(FlagInt(argc, argv, "fault-seed", 5));

  std::unique_ptr<ScopedFaultInjection> faults;
  if (fault_rate > 0.0) {
    FaultConfig config;
    config.seed = fault_seed;
    config.rate = 0.0;  // only the serving.refit point faults
    faults = std::make_unique<ScopedFaultInjection>(config);
    faults->registry().SetPointRate("serving.refit", fault_rate);
  }

  bench::PrintHeader("Serving load test",
                     "open/closed-loop drivers vs the streaming engine");
  std::printf("fleet: %lld servers, %lld ticks, base %lld, %lld jobs\n",
              static_cast<long long>(servers),
              static_cast<long long>(ticks), static_cast<long long>(base),
              static_cast<long long>(jobs));

  const Fleet fleet = bench::ProductionFleet(
      "serve", static_cast<int>(servers), seed, /*weeks=*/1);
  const std::vector<ServerTelemetry> tails = MakeTails(fleet);
  std::vector<std::string> ids;
  ids.reserve(tails.size());
  for (const auto& st : tails) ids.push_back(st.server_id);

  ThreadPool pool(static_cast<int>(jobs));

  struct Run {
    LoadProfile profile;
    DriverMode mode;
  };
  const Run kRuns[] = {
      {LoadProfile::kRamp, DriverMode::kOpenLoop},
      {LoadProfile::kSpike, DriverMode::kOpenLoop},
      {LoadProfile::kSoak, DriverMode::kOpenLoop},
      {LoadProfile::kRamp, DriverMode::kClosedLoop},
      {LoadProfile::kSpike, DriverMode::kClosedLoop},
      {LoadProfile::kSoak, DriverMode::kClosedLoop},
  };

  Json profiles = Json::MakeObject();
  Json soak_open_row;
  for (const Run& run : kRuns) {
    if (!only_profile.empty() && only_profile != LoadProfileName(run.profile)) {
      continue;
    }
    LoadgenOptions options;
    options.profile = run.profile;
    options.mode = run.mode;
    options.seed = seed;
    // Production verb mix: single + batch predicts dominate, a steady
    // subscription churn rides along, the rest is ingest.
    options.predict_fraction = 0.5;
    options.ll_window_fraction = 0.2;
    options.batch_fraction = 0.08;
    options.batch_size = 16;
    options.subscribe_fraction = 0.05;
    // Soak holds the peak rate over a doubled horizon.
    options.ticks = run.profile == LoadProfile::kSoak ? ticks * 2 : ticks;
    // Closed loop: `base` arrivals per tick split across the clients.
    options.base_requests_per_tick =
        run.mode == DriverMode::kOpenLoop
            ? base
            : std::max<int64_t>(1, base / clients);
    options.closed_loop_clients = static_cast<int>(clients);
    options.epoch_start = kMinutesPerWeek;
    options.jobs = static_cast<int>(jobs);

    ServingOptions serving;
    serving.pool = &pool;
    ServingEngine engine(MakeEndpoint(), serving);
    engine.Bootstrap(tails).Abort();
    engine.Tick();  // initial forecasts so epoch-0 queries are served

    const auto schedule = BuildSchedule(options, ids);
    const LoadgenReport report = RunLoadTest(&engine, options, schedule);

    const LatencySummary& predict = report.latency.count("predict")
                                        ? report.latency.at("predict")
                                        : LatencySummary{};
    const LatencySummary& batch = report.latency.count("batch_predict")
                                      ? report.latency.at("batch_predict")
                                      : LatencySummary{};
    std::printf(
        "%-6s %-7s %7lld req %7.0f rps  predict p50/p95/p99 "
        "%6.0f/%6.0f/%6.0f us  batch p99 %6.0f us  notify %lld "
        "(lag %.2f)  refit/query %.3f  errors %lld\n",
        LoadProfileName(run.profile), DriverModeName(run.mode),
        static_cast<long long>(report.requests), report.throughput_rps,
        predict.p50, predict.p95, predict.p99, batch.p99,
        static_cast<long long>(report.notifications),
        report.notify_lag_ticks, report.refit_per_query,
        static_cast<long long>(report.errors));

    Json row = report.ToJson();
    if (!profiles.Contains(LoadProfileName(run.profile))) {
      profiles[LoadProfileName(run.profile)] = Json::MakeObject();
    }
    if (run.profile == LoadProfile::kSoak &&
        run.mode == DriverMode::kOpenLoop) {
      soak_open_row = row;
    }
    profiles[LoadProfileName(run.profile)][DriverModeName(run.mode)] =
        std::move(row);
  }

  Json out = Json::MakeObject();
  out["benchmark"] = "serving_loadtest";
  Json fleet_doc = Json::MakeObject();
  fleet_doc["servers"] = servers;
  fleet_doc["tail_days"] = 7;
  fleet_doc["ticks"] = ticks;
  fleet_doc["base_requests_per_tick"] = base;
  fleet_doc["closed_loop_clients"] = clients;
  fleet_doc["seed"] = static_cast<int64_t>(seed);
  fleet_doc["jobs"] = jobs;
  fleet_doc["fault_rate"] = fault_rate;
  out["fleet"] = std::move(fleet_doc);
  out["profiles"] = std::move(profiles);

  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f != nullptr) {
    std::string text = out.DumpPretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_serving.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_serving.json\n");
    return 1;
  }

  int violations = 0;
  if (!budgets_path.empty()) {
    if (!soak_open_row.is_object()) {
      std::fprintf(stderr,
                   "--budgets requires the soak/open row (drop --profile "
                   "or include soak)\n");
      violations = 1;
    } else {
      violations = CheckBudgets(budgets_path, soak_open_row);
    }
  }
  return violations == 0 ? 0 : 1;
}
