#include "metrics/standard.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace seagull {
namespace {

LoadSeries MakeSeries(std::vector<double> values, int64_t interval = 15) {
  return std::move(LoadSeries::Make(0, interval, std::move(values)))
      .ValueOrDie();
}

TEST(StandardMetricsTest, MaeAndRmseBasics) {
  LoadSeries truth = MakeSeries({10, 20, 30});
  LoadSeries pred = MakeSeries({12, 18, 30});
  EXPECT_NEAR(MeanAbsoluteError(pred, truth), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(RootMeanSquaredError(pred, truth), std::sqrt(8.0 / 3.0),
              1e-12);
}

TEST(StandardMetricsTest, PerfectForecastIsZeroError) {
  LoadSeries truth = MakeSeries({5, 10, 15, 20});
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, truth), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(truth, truth), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedRmse(truth, truth), 0.0);
}

TEST(StandardMetricsTest, MissingPairsExcluded) {
  LoadSeries truth = MakeSeries({10, kMissingValue, 30});
  LoadSeries pred = MakeSeries({12, 100, kMissingValue});
  EXPECT_NEAR(MeanAbsoluteError(pred, truth), 2.0, 1e-12);
}

TEST(StandardMetricsTest, NothingComparableIsMissing) {
  LoadSeries truth = MakeSeries({1, 2});
  LoadSeries far = std::move(LoadSeries::Make(600, 15, {1.0})).ValueOrDie();
  EXPECT_TRUE(IsMissing(MeanAbsoluteError(far, truth)));
  EXPECT_TRUE(IsMissing(NormalizedRmse(far, truth)));
  EXPECT_TRUE(IsMissing(MeanAbsoluteScaledError(far, truth)));
}

TEST(StandardMetricsTest, NrmsePaperProperty) {
  // "A mean NRMSE of 1 is produced when the mean is predicted as the
  // forecast" (Appendix A.2) — exactly true when the true mean equals
  // its RMS deviation scale; verify the defining ratio directly.
  Rng rng(5);
  std::vector<double> truth_v;
  for (int i = 0; i < 2000; ++i) {
    truth_v.push_back(20.0 + rng.Gaussian(0.0, 20.0));
  }
  LoadSeries truth = MakeSeries(truth_v);
  double mean = truth.Mean();
  LoadSeries mean_forecast = MakeSeries(
      std::vector<double>(truth_v.size(), mean));
  double nrmse = NormalizedRmse(mean_forecast, truth);
  // RMSE of the mean forecast is the true stddev; NRMSE = stddev/mean.
  // With stddev ~= mean, this is ~1.
  EXPECT_NEAR(nrmse, 1.0, 0.15);
}

TEST(StandardMetricsTest, NrmseZeroMeanIsMissing) {
  LoadSeries truth = MakeSeries({0, 0, 0});
  LoadSeries pred = MakeSeries({1, 1, 1});
  EXPECT_TRUE(IsMissing(NormalizedRmse(pred, truth)));
}

TEST(StandardMetricsTest, MaseBelowOneBeatsNaive) {
  // Truth is a steep ramp; one-step naive error is 10 per step. A
  // forecast within 2 of truth scores MASE well under 1.
  std::vector<double> truth_v, pred_v;
  for (int i = 0; i < 50; ++i) {
    truth_v.push_back(10.0 * i);
    pred_v.push_back(10.0 * i + 2.0);
  }
  double mase =
      MeanAbsoluteScaledError(MakeSeries(pred_v), MakeSeries(truth_v));
  EXPECT_LT(mase, 1.0);
  EXPECT_NEAR(mase, 0.2, 1e-9);
}

TEST(StandardMetricsTest, MaseAboveOneWorseThanNaive) {
  // Truth is flat (naive error tiny is zero -> use slight wiggle),
  // forecast is far off.
  std::vector<double> truth_v, pred_v;
  for (int i = 0; i < 50; ++i) {
    truth_v.push_back(20.0 + (i % 2 == 0 ? 0.5 : -0.5));
    pred_v.push_back(40.0);
  }
  double mase =
      MeanAbsoluteScaledError(MakeSeries(pred_v), MakeSeries(truth_v));
  EXPECT_GT(mase, 1.0);
}

TEST(StandardMetricsTest, MaseConstantTruthIsMissing) {
  // Naive normalizing factor is zero for a constant series.
  LoadSeries truth = MakeSeries({7, 7, 7, 7});
  LoadSeries pred = MakeSeries({8, 8, 8, 8});
  EXPECT_TRUE(IsMissing(MeanAbsoluteScaledError(pred, truth)));
}

TEST(StandardMetricsTest, IntervalMismatchComparesNothing) {
  LoadSeries truth = MakeSeries({1, 2, 3}, 15);
  LoadSeries pred = MakeSeries({1, 2, 3}, 5);
  EXPECT_TRUE(IsMissing(MeanAbsoluteError(pred, truth)));
}

}  // namespace
}  // namespace seagull
