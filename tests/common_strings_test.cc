#include "common/strings.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitEmptyString) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,y,z");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, "--"), "only");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("telemetry/region", "telemetry/"));
  EXPECT_FALSE(StartsWith("tel", "telemetry"));
  EXPECT_TRUE(EndsWith("week-0003.csv", ".csv"));
  EXPECT_FALSE(EndsWith(".csv", "week.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 42 "), 42.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("--3").ok());
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(*ParseInt64("12345"), 12345);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  99 "), 99);
}

TEST(StringsTest, ParseInt64RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("3.5").ok());
  EXPECT_FALSE(ParseInt64("12a").ok());
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
  // Long output is not truncated.
  std::string long_arg(500, 'y');
  EXPECT_EQ(StringPrintf("%s", long_arg.c_str()).size(), 500u);
}

}  // namespace
}  // namespace seagull
