/// \file pipeline_inference_test.cc
/// \brief Tests for the Inference module and the scheduler's
/// stored-prediction path.

#include <gtest/gtest.h>

#include "common/strings.h"

#include "pipeline/inference.h"
#include "pipeline/pipeline.h"
#include "scheduling/backup_scheduler.h"
#include "scheduling/simulation.h"
#include "telemetry/emitter.h"

namespace seagull {
namespace {

class InferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto lake = LakeStore::OpenTemporary("inference");
    ASSERT_TRUE(lake.ok());
    lake_ = std::make_unique<LakeStore>(std::move(lake).ValueUnsafe());
    RegionConfig config;
    config.name = "inf";
    config.num_servers = 25;
    config.weeks = 4;
    config.seed = 21;
    fleet_ = std::make_unique<Fleet>(Fleet::Generate(config));
    ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("inf", 2),
                           ExtractWeekCsvText(*fleet_, 2))
                    .ok());
    ctx_.region = "inf";
    ctx_.week = 2;
    ctx_.lake = lake_.get();
    ctx_.docs = &docs_;
    Pipeline pipeline = Pipeline::Standard();
    report_ = pipeline.Run(&ctx_);
  }

  std::unique_ptr<LakeStore> lake_;
  std::unique_ptr<Fleet> fleet_;
  DocStore docs_;
  PipelineContext ctx_;
  PipelineRunReport report_;
};

TEST_F(InferenceTest, StandardChainIncludesInference) {
  ASSERT_TRUE(report_.success) << report_.failure;
  EXPECT_GT(report_.MillisOf("inference"), 0.0);
  EXPECT_GT(ctx_.stats["inference.predictions"], 0.0);
}

TEST_F(InferenceTest, PredictionsStoredPerServerDay) {
  ASSERT_TRUE(report_.success);
  Container* predictions = docs_.GetContainer(kPredictionsContainer);
  // Up to 7 predictions per server with telemetry.
  EXPECT_GT(predictions->Count(), 0);
  EXPECT_LE(predictions->Count(),
            static_cast<int64_t>(ctx_.servers.size()) * 7);
  // Spot-check one document's shape.
  auto docs = predictions->ReadPartition("inf");
  ASSERT_FALSE(docs.empty());
  const Json& body = docs[0].body;
  EXPECT_TRUE(body["server_id"].is_string());
  EXPECT_TRUE(body["window_start"].is_number());
  EXPECT_TRUE(body["duration_minutes"].is_number());
  // The predicted day falls in the scheduling week (week 3).
  int64_t day = static_cast<int64_t>(body["day"].AsDouble());
  EXPECT_GE(day, 21);
  EXPECT_LT(day, 28);
  // The window lies within its day.
  MinuteStamp start =
      static_cast<MinuteStamp>(body["window_start"].AsDouble());
  EXPECT_EQ(DayIndex(start), day);
}

TEST_F(InferenceTest, SchedulerUsesStoredPrediction) {
  ASSERT_TRUE(report_.success);
  // Pick a predictable server with a stored prediction.
  Container* predictions = docs_.GetContainer(kPredictionsContainer);
  std::string server_id;
  int64_t day = 0;
  MinuteStamp stored_start = 0;
  int64_t stored_duration = 0;
  for (const auto& doc : predictions->ReadPartition("inf")) {
    auto acc = docs_.GetContainer(kAccuracyContainer)
                   ->Get("inf", StringPrintf(
                                    "w0003:%s",
                                    doc.body.GetString("server_id")
                                        .ValueOr("")
                                        .c_str()));
    if (!acc.ok() || !acc->body.GetBool("predictable").ValueOr(false)) {
      continue;
    }
    server_id = doc.body.GetString("server_id").ValueOr("");
    day = static_cast<int64_t>(doc.body.GetNumber("day").ValueOr(0));
    stored_start = static_cast<MinuteStamp>(
        doc.body.GetNumber("window_start").ValueOr(0));
    stored_duration = static_cast<int64_t>(
        doc.body.GetNumber("duration_minutes").ValueOr(0));
    break;
  }
  ASSERT_FALSE(server_id.empty()) << "no predictable server with prediction";

  DueServer due;
  due.server_id = server_id;
  due.recent_load = LoadSeries();  // live path would fail
  due.default_start = day * kMinutesPerDay;
  due.default_end = due.default_start + stored_duration;
  due.backup_duration_minutes = stored_duration;

  ServiceFabricProperties properties;
  BackupSchedulerOptions options;
  options.prefer_stored_predictions = true;
  BackupScheduler scheduler(&docs_, &properties, options);
  auto schedules = scheduler.ScheduleDay("inf", day, {due});
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].decision, ScheduleDecision::kScheduledLowLoad);
  EXPECT_EQ(schedules[0].window_start, stored_start);

  // Without the option the live path runs — and fails here because the
  // recent load is empty.
  ServiceFabricProperties properties2;
  BackupScheduler live_scheduler(&docs_, &properties2);
  auto live = live_scheduler.ScheduleDay("inf", day, {due});
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].decision, ScheduleDecision::kDefaultForecastFailed);
}

TEST_F(InferenceTest, DurationMismatchFallsBackToLivePath) {
  ASSERT_TRUE(report_.success);
  Container* predictions = docs_.GetContainer(kPredictionsContainer);
  auto docs = predictions->ReadPartition("inf");
  ASSERT_FALSE(docs.empty());
  std::string server_id = docs[0].body.GetString("server_id").ValueOr("");
  int64_t day =
      static_cast<int64_t>(docs[0].body.GetNumber("day").ValueOr(0));
  // Mark predictable.
  Document acc;
  acc.partition_key = "inf";
  acc.id = StringPrintf("w0003:%s", server_id.c_str());
  acc.body = Json::MakeObject();
  acc.body["predictable"] = true;
  docs_.GetContainer(kAccuracyContainer)->Upsert(acc).Abort();

  DueServer due;
  due.server_id = server_id;
  due.recent_load = LoadSeries();
  due.default_start = day * kMinutesPerDay;
  // A different duration than the stored prediction's.
  due.backup_duration_minutes =
      static_cast<int64_t>(
          docs[0].body.GetNumber("duration_minutes").ValueOr(60)) +
      kServerIntervalMinutes;
  due.default_end = due.default_start + due.backup_duration_minutes;

  ServiceFabricProperties properties;
  BackupSchedulerOptions options;
  options.prefer_stored_predictions = true;
  BackupScheduler scheduler(&docs_, &properties, options);
  auto schedules = scheduler.ScheduleDay("inf", day, {due});
  ASSERT_EQ(schedules.size(), 1u);
  // Stored prediction rejected; live path fails on empty recent load.
  EXPECT_EQ(schedules[0].decision,
            ScheduleDecision::kDefaultForecastFailed);
}

}  // namespace
}  // namespace seagull
