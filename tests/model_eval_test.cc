#include "scheduling/model_eval.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

RegionConfig SmallConfig(uint64_t seed, double no_pattern = 0.0) {
  RegionConfig config;
  config.name = "eval";
  config.num_servers = 30;
  config.weeks = 5;
  config.seed = seed;
  config.mix.short_lived = 0.0;
  config.mix.stable = 1.0 - no_pattern;
  config.mix.daily = 0.0;
  config.mix.weekly = 0.0;
  config.mix.no_pattern = no_pattern;
  return config;
}

ModelEvalOptions Target4() {
  ModelEvalOptions options;
  options.target_week = 4;
  return options;
}

TEST(ModelEvalTest, StableFleetIsNearlyPerfectWithPersistent) {
  Fleet fleet = Fleet::Generate(SmallConfig(1));
  auto result =
      EvaluateModelOnFleet(fleet, "persistent_prev_day", Target4());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model, "persistent_prev_day");
  EXPECT_GT(result->servers, 20);
  EXPECT_EQ(result->server_days, result->servers * 3);
  EXPECT_GT(result->PctWindowsCorrect(), 95.0);
  EXPECT_GT(result->PctLoadsAccurate(), 90.0);
  EXPECT_GT(result->PctPredictable(), 80.0);
  // Heuristic family: zero training time recorded.
  EXPECT_DOUBLE_EQ(result->train_millis, 0.0);
  EXPECT_GT(result->inference_millis, 0.0);
  EXPECT_GT(result->eval_millis, 0.0);
}

TEST(ModelEvalTest, TrainableFamilyRecordsTrainingTime) {
  Fleet fleet = Fleet::Generate(SmallConfig(2));
  ModelEvalOptions options = Target4();
  options.max_servers = 5;
  auto result = EvaluateModelOnFleet(fleet, "ssa", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->servers, 5);
  EXPECT_GT(result->train_millis, 0.0);
}

TEST(ModelEvalTest, MaxServersCaps) {
  Fleet fleet = Fleet::Generate(SmallConfig(3));
  ModelEvalOptions options = Target4();
  options.max_servers = 7;
  auto result =
      EvaluateModelOnFleet(fleet, "persistent_prev_day", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->servers, 7);
}

TEST(ModelEvalTest, FilterRestrictsCohort) {
  RegionConfig config = SmallConfig(4, /*no_pattern=*/0.5);
  Fleet fleet = Fleet::Generate(config);
  ModelEvalOptions all = Target4();
  ModelEvalOptions unstable_only = Target4();
  unstable_only.filter = FilterUnstableNoPattern();
  auto everything =
      EvaluateModelOnFleet(fleet, "persistent_prev_day", all);
  auto unstable =
      EvaluateModelOnFleet(fleet, "persistent_prev_day", unstable_only);
  ASSERT_TRUE(everything.ok());
  ASSERT_TRUE(unstable.ok());
  EXPECT_LT(unstable->servers, everything->servers);
  EXPECT_GT(unstable->servers, 0);
  // The unstable cohort is strictly harder.
  EXPECT_LE(unstable->PctPredictable(),
            everything->PctPredictable() + 1e-9);
}

TEST(ModelEvalTest, UnknownModelFails) {
  Fleet fleet = Fleet::Generate(SmallConfig(5));
  EXPECT_TRUE(EvaluateModelOnFleet(fleet, "nonexistent", Target4())
                  .status()
                  .IsNotFound());
}

TEST(ModelEvalTest, PercentagesZeroWhenNothingEvaluated) {
  ModelEvalResult empty;
  EXPECT_DOUBLE_EQ(empty.PctWindowsCorrect(), 0.0);
  EXPECT_DOUBLE_EQ(empty.PctLoadsAccurate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.PctPredictable(), 0.0);
}

TEST(ModelEvalTest, CohortFilters) {
  ServerProfile stable;
  stable.archetype = ServerArchetype::kStable;
  stable.created_at = 0;
  stable.deleted_at = 5 * kMinutesPerWeek;
  ServerProfile short_lived = stable;
  short_lived.deleted_at = kMinutesPerWeek;
  ServerProfile chaotic = stable;
  chaotic.archetype = ServerArchetype::kNoPattern;

  EXPECT_TRUE(FilterLongLived()(stable));
  EXPECT_FALSE(FilterLongLived()(short_lived));
  EXPECT_TRUE(FilterStableOrPattern()(stable));
  EXPECT_FALSE(FilterStableOrPattern()(chaotic));
  EXPECT_TRUE(FilterUnstableNoPattern()(chaotic));
  EXPECT_FALSE(FilterUnstableNoPattern()(stable));
  EXPECT_TRUE(FilterArchetype(ServerArchetype::kNoPattern)(chaotic));
  EXPECT_FALSE(FilterArchetype(ServerArchetype::kNoPattern)(stable));
}

TEST(ModelEvalTest, EarlyTargetWeekLimitsEvidence) {
  // target_week == long_lived_weeks means the first evidence week's
  // backup day has no training week before it; those servers cannot be
  // predictable but are still counted.
  Fleet fleet = Fleet::Generate(SmallConfig(6));
  ModelEvalOptions early;
  early.target_week = 3;
  auto result = EvaluateModelOnFleet(fleet, "persistent_prev_day", early);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->servers, 0);
  // Week-0 Monday backups are skipped (no prior week), so server_days
  // can fall below servers * 3.
  EXPECT_LE(result->server_days, result->servers * 3);
}

}  // namespace
}  // namespace seagull
