/// \file serving_test_util.h
/// \brief Shared fixtures for the serving-path tests.
///
/// `pipeline_serving_test.cc` (the stateless `ForecastService`),
/// `serving_engine_test.cc`, `loadgen_test.cc`, and
/// `serving_determinism_test.cc` (the stateful `ServingEngine`) all
/// serve the same wire contract from the same champion model; these
/// helpers keep the endpoint and telemetry literals in one place so the
/// suites stay byte-for-byte comparable.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "forecast/persistent.h"
#include "pipeline/serving.h"
#include "serving/engine.h"

namespace seagull {

/// Fleet-wide persistent-prev-day endpoint (heuristic family: the model
/// under key "" serves every server).
inline ModelEndpoint MakePrevDayEndpoint(int64_t version = 7) {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = version;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  return std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();
}

/// One day on the 5-minute grid: a 4-hour valley at 5% load, then 40%.
/// The previous-day forecast of the following day replicates this shape,
/// so tests can assert exact values and window positions.
inline LoadSeries DayOfLoad() {
  std::vector<double> values(288);
  for (int64_t i = 0; i < 288; ++i) {
    values[static_cast<size_t>(i)] = i < 48 ? 5.0 : 40.0;
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

/// Telemetry tail for one server, ready for `ServingEngine::Bootstrap`.
inline ServerTelemetry MakeTail(std::string server_id, LoadSeries load) {
  ServerTelemetry st;
  st.server_id = std::move(server_id);
  st.load = std::move(load);
  return st;
}

}  // namespace seagull
