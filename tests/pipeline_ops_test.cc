#include <gtest/gtest.h>

#include "pipeline/dashboard.h"
#include "pipeline/deployment.h"
#include "pipeline/incidents.h"
#include "pipeline/scheduler.h"
#include "pipeline/tracking.h"
#include "telemetry/emitter.h"

namespace seagull {
namespace {

/// A module that succeeds and counts invocations.
class CountingModule final : public PipelineModule {
 public:
  explicit CountingModule(int* counter) : counter_(counter) {}
  std::string name() const override { return "counting"; }
  Status Run(PipelineContext*) override {
    ++*counter_;
    return Status::OK();
  }

 private:
  int* counter_;
};

/// A module that always fails.
class FailingModule final : public PipelineModule {
 public:
  std::string name() const override { return "failing"; }
  Status Run(PipelineContext*) override {
    return Status::Internal("boom");
  }
};

TEST(PipelineRunnerTest, RunsModulesInOrderWithTimings) {
  int calls = 0;
  Pipeline p;
  p.Add(std::make_unique<CountingModule>(&calls))
      .Add(std::make_unique<CountingModule>(&calls));
  PipelineContext ctx;
  ctx.region = "r";
  ctx.week = 1;
  PipelineRunReport report = p.Run(&ctx);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(report.timings.size(), 2u);
  EXPECT_TRUE(report.timings[0].ok);
  EXPECT_GE(report.TotalMillis(), 0.0);
  EXPECT_GE(report.MillisOf("counting"), 0.0);
  EXPECT_DOUBLE_EQ(report.MillisOf("never-ran"), 0.0);
}

TEST(PipelineRunnerTest, StopsAtFirstFailure) {
  int calls = 0;
  Pipeline p;
  p.Add(std::make_unique<CountingModule>(&calls))
      .Add(std::make_unique<FailingModule>())
      .Add(std::make_unique<CountingModule>(&calls));
  PipelineContext ctx;
  PipelineRunReport report = p.Run(&ctx);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(calls, 1);  // third module never ran
  EXPECT_NE(report.failure.find("failing"), std::string::npos);
  // The failure was recorded as an error incident.
  ASSERT_EQ(ctx.incidents.size(), 1u);
  EXPECT_EQ(ctx.incidents[0].severity, IncidentSeverity::kError);
}

/// A module that fails with a retryable status a fixed number of times.
class FlakyModule final : public PipelineModule {
 public:
  explicit FlakyModule(int failures) : failures_(failures) {}
  std::string name() const override { return "flaky"; }
  Status Run(PipelineContext*) override {
    if (failures_-- > 0) return Status::IOError("transient outage");
    return Status::OK();
  }

 private:
  int failures_;
};

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_backoff_millis = 0.0;
  return policy;
}

TEST(PipelineRunnerTest, RetriesTransientModuleFailures) {
  int calls = 0;
  Pipeline p;
  p.Add(std::make_unique<FlakyModule>(2))
      .Add(std::make_unique<CountingModule>(&calls));
  PipelineContext ctx;
  ctx.region = "r";
  PipelineRunReport report = p.Run(&ctx, FastRetry(4));
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(report.retries, 2);
  EXPECT_FALSE(report.retries_exhausted);
  ASSERT_EQ(report.timings.size(), 2u);
  EXPECT_EQ(report.timings[0].attempts, 3);
  EXPECT_EQ(report.timings[1].attempts, 1);
  // Each retry left a warning incident for the run's audit trail.
  int warnings = 0;
  for (const auto& incident : ctx.incidents) {
    if (incident.severity == IncidentSeverity::kWarning) ++warnings;
  }
  EXPECT_EQ(warnings, 2);
}

TEST(PipelineRunnerTest, NonRetryableModuleFailureFailsFast) {
  Pipeline p;
  p.Add(std::make_unique<FailingModule>());  // Internal: not retryable
  PipelineContext ctx;
  PipelineRunReport report = p.Run(&ctx, FastRetry(5));
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.retries, 0);
  EXPECT_FALSE(report.retries_exhausted);
  ASSERT_EQ(report.timings.size(), 1u);
  EXPECT_EQ(report.timings[0].attempts, 1);
}

TEST(PipelineRunnerTest, ExhaustedRetriesAreFlaggedForQuarantine) {
  Pipeline p;
  p.Add(std::make_unique<FlakyModule>(100));
  PipelineContext ctx;
  PipelineRunReport report = p.Run(&ctx, FastRetry(3));
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.retries, 2);
  EXPECT_TRUE(report.retries_exhausted);
}

TEST(IncidentManagerTest, PersistsAndAlerts) {
  DocStore docs;
  IncidentManager manager(&docs);
  PipelineContext ctx;
  ctx.region = "r1";
  ctx.week = 3;
  ctx.AddIncident(IncidentSeverity::kInfo, "m", "fyi");
  ctx.AddIncident(IncidentSeverity::kError, "deploy", "failed deployment");
  PipelineRunReport report;
  report.success = true;
  auto alerts = manager.Process(ctx, report);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "error_incident");
  EXPECT_EQ(manager.History("r1").size(), 2u);
}

TEST(IncidentManagerTest, WarningFloodAlerts) {
  DocStore docs;
  IncidentRules rules;
  rules.warning_threshold = 3;
  IncidentManager manager(&docs, rules);
  PipelineContext ctx;
  ctx.region = "r";
  for (int i = 0; i < 5; ++i) {
    ctx.AddIncident(IncidentSeverity::kWarning, "m", "w");
  }
  PipelineRunReport report;
  report.success = true;
  auto alerts = manager.Process(ctx, report);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "warning_flood");
}

TEST(IncidentManagerTest, RunFailureAlerts) {
  DocStore docs;
  IncidentManager manager(&docs);
  PipelineContext ctx;
  ctx.region = "r";
  PipelineRunReport report;
  report.success = false;
  report.failure = "ingestion: NotFound: blob";
  auto alerts = manager.Process(ctx, report);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "run_failed");
}

TEST(DashboardTest, RecordsAndSummarizes) {
  DocStore docs;
  Dashboard dashboard(&docs);
  for (int week = 0; week < 3; ++week) {
    PipelineContext ctx;
    ctx.region = "west";
    ctx.week = week;
    ctx.stats["accuracy.predictable_fraction"] = 0.5 + 0.1 * week;
    PipelineRunReport report;
    report.region = "west";
    report.week = week;
    report.success = week != 1;
    report.timings.push_back({"ingestion", 10.0, true});
    report.incident_count = week;
    ASSERT_TRUE(dashboard.Record(ctx, report).ok());
  }
  auto summaries = dashboard.Summarize();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].runs, 3);
  EXPECT_EQ(summaries[0].failures, 1);
  EXPECT_EQ(summaries[0].incidents, 3);
  EXPECT_NEAR(summaries[0].last_predictable_fraction, 0.7, 1e-9);
  std::string text = dashboard.Render();
  EXPECT_NE(text.find("west"), std::string::npos);
}

TEST(DashboardTest, CountsRetriesAndQuarantinedRuns) {
  DocStore docs;
  Dashboard dashboard(&docs);
  for (int week = 0; week < 3; ++week) {
    PipelineContext ctx;
    ctx.region = "east";
    ctx.week = week;
    PipelineRunReport report;
    report.region = "east";
    report.week = week;
    report.retries = week;        // 0 + 1 + 2 = 3 total
    if (week == 2) {              // one run exhausted its budget
      report.success = false;
      report.retries_exhausted = true;
    } else {
      report.success = true;
    }
    ASSERT_TRUE(dashboard.Record(ctx, report).ok());
  }
  auto summaries = dashboard.Summarize();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].retries, 3);
  EXPECT_EQ(summaries[0].quarantines, 1);
  std::string text = dashboard.Render();
  EXPECT_NE(text.find("retries"), std::string::npos);
  EXPECT_NE(text.find("quar"), std::string::npos);
}

TEST(TrackingTest, RecordsStatsAndFallsBackOnRegression) {
  DocStore docs;
  PipelineContext ctx;
  ctx.region = "r";
  ctx.week = 5;
  ctx.docs = &docs;
  ctx.model_name = "persistent_prev_day";
  ctx.deployed_version = 1;
  // Version 1: 90% predictable.
  for (int i = 0; i < 10; ++i) {
    ServerAccuracy acc;
    acc.server_id = "s" + std::to_string(i);
    acc.long_lived = true;
    acc.predictable = i != 0;
    ctx.accuracy_records.push_back(acc);
  }
  ASSERT_TRUE(SetActiveVersion(&docs, "r", 1, "test").ok());
  ModelTrackingModule tracking;
  ASSERT_TRUE(tracking.Run(&ctx).ok());
  EXPECT_DOUBLE_EQ(ctx.stats["tracking.fallback"], 0.0);

  // Version 2: only 20% predictable -> regression, fallback to v1.
  PipelineContext ctx2;
  ctx2.region = "r";
  ctx2.week = 6;
  ctx2.docs = &docs;
  ctx2.model_name = "persistent_prev_day";
  ctx2.deployed_version = 2;
  for (int i = 0; i < 10; ++i) {
    ServerAccuracy acc;
    acc.server_id = "s" + std::to_string(i);
    acc.long_lived = true;
    acc.predictable = i < 2;
    ctx2.accuracy_records.push_back(acc);
  }
  ASSERT_TRUE(SetActiveVersion(&docs, "r", 2, "test").ok());
  ASSERT_TRUE(tracking.Run(&ctx2).ok());
  EXPECT_DOUBLE_EQ(ctx2.stats["tracking.fallback"], 1.0);
  EXPECT_EQ(*ActiveVersion(&docs, "r"), 1);
  // An error incident announced the fallback.
  bool announced = false;
  for (const auto& incident : ctx2.incidents) {
    if (incident.module == "tracking" &&
        incident.severity == IncidentSeverity::kError) {
      announced = true;
    }
  }
  EXPECT_TRUE(announced);
}

TEST(TrackingTest, RequiresDeploymentAndAccuracy) {
  DocStore docs;
  ModelTrackingModule tracking;
  PipelineContext ctx;
  ctx.docs = &docs;
  EXPECT_TRUE(tracking.Run(&ctx).IsFailedPrecondition());
}

class SchedulerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto lake = LakeStore::OpenTemporary("sched");
    ASSERT_TRUE(lake.ok());
    lake_ = std::make_unique<LakeStore>(std::move(lake).ValueUnsafe());
    RegionConfig config;
    config.name = "sched";
    config.num_servers = 25;
    config.weeks = 5;
    config.seed = 11;
    fleet_ = std::make_unique<Fleet>(Fleet::Generate(config));
    for (int64_t w = 2; w <= 3; ++w) {
      ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("sched", w),
                             ExtractWeekCsvText(*fleet_, w))
                      .ok());
    }
    pipeline_ = Pipeline::Standard();
  }

  std::unique_ptr<LakeStore> lake_;
  std::unique_ptr<Fleet> fleet_;
  DocStore docs_;
  Pipeline pipeline_;
};

TEST_F(SchedulerFixture, RunsWhenDueAndRecords) {
  PipelineScheduler scheduler(&pipeline_, lake_.get(), &docs_, 1);
  EXPECT_TRUE(scheduler.IsDue("sched", 2));
  EXPECT_EQ(scheduler.LastSuccessfulWeek("sched"), -1);
  PipelineContext config;
  auto run = scheduler.RunIfDue("sched", 2, config);
  EXPECT_TRUE(run.report.success);
  EXPECT_FALSE(run.report.timings.empty());
  EXPECT_EQ(scheduler.LastSuccessfulWeek("sched"), 2);
}

TEST_F(SchedulerFixture, SkipsWhenNotDue) {
  PipelineScheduler scheduler(&pipeline_, lake_.get(), &docs_, 2);
  PipelineContext config;
  auto first = scheduler.RunIfDue("sched", 2, config);
  EXPECT_TRUE(first.report.success);
  // Period 2: week 3 is not yet due.
  EXPECT_FALSE(scheduler.IsDue("sched", 3));
  auto skipped = scheduler.RunIfDue("sched", 3, config);
  EXPECT_TRUE(skipped.report.success);
  EXPECT_TRUE(skipped.report.timings.empty());  // no-op
  EXPECT_TRUE(scheduler.IsDue("sched", 4));
}

TEST_F(SchedulerFixture, FailedRunLeavesRegionDue) {
  PipelineScheduler scheduler(&pipeline_, lake_.get(), &docs_, 1);
  PipelineContext config;
  // Week 4 was never extracted: ingestion fails.
  auto run = scheduler.RunIfDue("sched", 4, config);
  EXPECT_FALSE(run.report.success);
  EXPECT_FALSE(run.alerts.empty());
  EXPECT_TRUE(scheduler.IsDue("sched", 4));  // still due (catch-up)
}

}  // namespace
}  // namespace seagull
