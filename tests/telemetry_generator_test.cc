#include "telemetry/load_generator.h"

#include <gtest/gtest.h>

#include "metrics/bucket_ratio.h"

namespace seagull {
namespace {

ServerProfile StableProfile() {
  ServerProfile p;
  p.server_id = "stable";
  p.archetype = ServerArchetype::kStable;
  p.created_at = 0;
  p.deleted_at = 4 * kMinutesPerWeek;
  p.base_load = 20.0;
  p.noise_sigma = 1.0;
  p.bump_amplitude = {0.0, 0.0};
  p.seed = 77;
  return p;
}

ServerProfile DailyProfile() {
  ServerProfile p = StableProfile();
  p.server_id = "daily";
  p.archetype = ServerArchetype::kDailyPattern;
  p.bump_amplitude = {35.0, 25.0};
  p.bump_center = {10 * 60.0, 16 * 60.0};
  p.bump_width = {90.0, 120.0};
  return p;
}

TEST(GeneratorTest, GridAlignmentAndBounds) {
  ServerProfile p = StableProfile();
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerDay);
  EXPECT_EQ(s.size(), 288);
  EXPECT_EQ(s.interval_minutes(), kServerIntervalMinutes);
  for (int64_t i = 0; i < s.size(); ++i) {
    ASSERT_FALSE(s.MissingAt(i));
    EXPECT_GE(s.ValueAt(i), 0.0);
    EXPECT_LE(s.ValueAt(i), p.capacity_ceiling);
  }
}

TEST(GeneratorTest, Deterministic) {
  ServerProfile p = StableProfile();
  LoadSeries a = GenerateLoad(p, 0, kMinutesPerDay);
  LoadSeries b = GenerateLoad(p, 0, kMinutesPerDay);
  EXPECT_EQ(a.values(), b.values());
}

TEST(GeneratorTest, RangeConsistency) {
  // Emitting a sub-range must observe the same ground truth as emitting
  // the whole range.
  ServerProfile p = DailyProfile();
  LoadSeries whole = GenerateLoad(p, 0, 3 * kMinutesPerDay);
  LoadSeries part = GenerateLoad(p, kMinutesPerDay, 2 * kMinutesPerDay);
  for (int64_t i = 0; i < part.size(); ++i) {
    EXPECT_DOUBLE_EQ(part.ValueAt(i), whole.ValueAtTime(part.TimeAt(i)));
  }
}

TEST(GeneratorTest, LifespanClipping) {
  ServerProfile p = StableProfile();
  p.created_at = kMinutesPerDay;
  p.deleted_at = 2 * kMinutesPerDay;
  LoadSeries s = GenerateLoad(p, 0, 3 * kMinutesPerDay);
  EXPECT_TRUE(IsMissing(s.ValueAtTime(0)));
  EXPECT_FALSE(IsMissing(s.ValueAtTime(kMinutesPerDay)));
  EXPECT_FALSE(IsMissing(s.ValueAtTime(2 * kMinutesPerDay - 5)));
  EXPECT_TRUE(IsMissing(s.ValueAtTime(2 * kMinutesPerDay)));
}

TEST(GeneratorTest, StableProfileStaysNearBase) {
  ServerProfile p = StableProfile();
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerWeek);
  EXPECT_NEAR(s.Mean(), p.base_load, 0.5);
  EXPECT_LT(s.Max() - s.Min(), 12.0);  // ~±4 sigma of noise
}

TEST(GeneratorTest, DailyProfileRepeatsDayToDay) {
  ServerProfile p = DailyProfile();
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerWeek);
  // Day 1 predicted by day 0 passes the bucket-ratio test (Definition 5).
  LoadSeries day0 = s.SliceDay(0).ShiftedTo(kMinutesPerDay);
  BucketRatioResult bucket = BucketRatioInRange(
      day0, s, kMinutesPerDay, 2 * kMinutesPerDay, AccuracyConfig{});
  EXPECT_GT(bucket.ratio, 0.95);
}

TEST(GeneratorTest, DailyProfileIsNotFlat) {
  ServerProfile p = DailyProfile();
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerDay);
  EXPECT_GT(s.Max() - s.Min(), 25.0);  // the bumps are visible
}

TEST(GeneratorTest, WeeklyProfileWeekendDiffers) {
  ServerProfile p = DailyProfile();
  p.archetype = ServerArchetype::kWeeklyPattern;
  for (int d = 0; d < 5; ++d) p.day_scale[static_cast<size_t>(d)] = 1.0;
  p.day_scale[5] = p.day_scale[6] = 0.1;
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerWeek);
  // Saturday (day 5) predicted by Friday (day 4) fails; predicted by the
  // shape scale argument: Friday has full bumps, Saturday nearly none.
  double friday_peak = s.SliceDay(4).Max();
  double saturday_peak = s.SliceDay(5).Max();
  EXPECT_GT(friday_peak, saturday_peak + 15.0);
}

TEST(GeneratorTest, ShapeAtMatchesGeneratedMeanForNoiseless) {
  ServerProfile p = DailyProfile();
  p.noise_sigma = 0.0;
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerDay);
  for (int64_t i = 0; i < s.size(); i += 17) {
    EXPECT_NEAR(s.ValueAt(i), ShapeAt(p, s.TimeAt(i)), 1e-9);
  }
}

TEST(GeneratorTest, MissingSampleRate) {
  ServerProfile p = StableProfile();
  GeneratorOptions opts;
  opts.missing_sample_rate = 0.2;
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerWeek, opts);
  double missing_fraction = static_cast<double>(s.CountMissing()) /
                            static_cast<double>(s.size());
  EXPECT_NEAR(missing_fraction, 0.2, 0.03);
}

TEST(GeneratorTest, MissingHourRateDropsWholeHours) {
  ServerProfile p = StableProfile();
  GeneratorOptions opts;
  opts.missing_hour_rate = 0.5;
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerDay, opts);
  // Each hour (12 ticks) is either fully present or fully missing.
  for (int64_t hour = 0; hour < 24; ++hour) {
    int64_t present = 0;
    for (int64_t k = 0; k < 12; ++k) {
      if (!s.MissingAt(hour * 12 + k)) ++present;
    }
    EXPECT_TRUE(present == 0 || present == 12) << "hour " << hour;
  }
}

TEST(GeneratorTest, SaturatingProfileReachesCeiling) {
  ServerProfile p = StableProfile();
  p.saturating = true;
  p.base_load = 65.0;
  p.burst_rate_per_day = 3.0;
  p.burst_magnitude = 50.0;
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerWeek);
  EXPECT_GE(s.Max(), 99.5);
}

TEST(GeneratorTest, NoPatternProfileWanders) {
  ServerProfile p = StableProfile();
  p.server_id = "np";
  p.archetype = ServerArchetype::kNoPattern;
  p.ou_sigma = 3.0;
  p.ou_theta = 0.02;
  LoadSeries s = GenerateLoad(p, 0, kMinutesPerWeek);
  // Day means vary far more than a stable server's.
  double lo = 1e9, hi = -1e9;
  for (int64_t d = 0; d < 7; ++d) {
    double m = s.SliceDay(d).Mean();
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 3.0);
}

TEST(GeneratorTest, EmptyRange) {
  ServerProfile p = StableProfile();
  LoadSeries s = GenerateLoad(p, 100, 100);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace seagull
