#include <gtest/gtest.h>

#include "common/strings.h"
#include "forecast/persistent.h"
#include "pipeline/scheduler.h"
#include "scheduling/backup_service.h"
#include "scheduling/impact.h"
#include "scheduling/simulation.h"

namespace seagull {
namespace {

TEST(ServiceFabricTest, SetGetClear) {
  ServiceFabricProperties props;
  EXPECT_FALSE(props.Get("srv", "p").has_value());
  props.Set("srv", "p", "v");
  EXPECT_EQ(*props.Get("srv", "p"), "v");
  EXPECT_EQ(props.Count(), 1);
  props.Clear("srv", "p");
  EXPECT_FALSE(props.Get("srv", "p").has_value());
  props.Clear("srv", "p");  // idempotent
}

TEST(ServiceFabricTest, BackupWindowTyped) {
  ServiceFabricProperties props;
  EXPECT_FALSE(props.GetBackupWindowStart("srv").has_value());
  props.SetBackupWindowStart("srv", 12345);
  ASSERT_TRUE(props.GetBackupWindowStart("srv").has_value());
  EXPECT_EQ(*props.GetBackupWindowStart("srv"), 12345);
}

TEST(ServiceFabricTest, MalformedPropertyReadsAsUnset) {
  ServiceFabricProperties props;
  props.Set("srv", kBackupWindowProperty, "not-a-number");
  EXPECT_FALSE(props.GetBackupWindowStart("srv").has_value());
}

class BackupSchedulerTest : public ::testing::Test {
 protected:
  static constexpr int64_t kDay = 21;  // week 3, Monday
  static constexpr int64_t kWeek = 3;

  void SetUp() override {
    // Valleyed recent load: low before 04:00 each day.
    std::vector<double> values;
    for (int64_t i = 0; i < 7 * 288; ++i) {
      values.push_back(i % 288 < 48 ? 4.0 : 45.0);
    }
    recent_ = std::move(LoadSeries::Make((kDay - 7) * kMinutesPerDay, 5,
                                         std::move(values)))
                  .ValueOrDie();
    // Accuracy doc marking the server predictable for week 3.
    StoreAccuracyDoc("srv-1", true);
    // Active persistent endpoint.
    PersistentForecast model;
    Json params = std::move(model.Serialize()).ValueOrDie();
    Json body = Json::MakeObject();
    body["family"] = "persistent_prev_day";
    body["version"] = 1;
    Json models = Json::MakeObject();
    models[""] = params;
    body["models"] = std::move(models);
    Document doc;
    doc.partition_key = "r";
    doc.id = "v000001";
    doc.body = std::move(body);
    docs_.GetContainer(kModelRegistryContainer)->Upsert(doc).Abort();
    SetActiveVersion(&docs_, "r", 1, "test").Abort();
  }

  void StoreAccuracyDoc(const std::string& server_id, bool predictable) {
    Document doc;
    doc.partition_key = "r";
    doc.id = StringPrintf("w%04lld:%s", static_cast<long long>(kWeek),
                          server_id.c_str());
    doc.body = Json::MakeObject();
    doc.body["predictable"] = predictable;
    docs_.GetContainer(kAccuracyContainer)->Upsert(doc).Abort();
  }

  DueServer MakeDue(const std::string& id) {
    DueServer due;
    due.server_id = id;
    due.recent_load = recent_;
    due.default_start = kDay * kMinutesPerDay + 14 * 60;  // 2pm: busy
    due.default_end = due.default_start + 60;
    due.backup_duration_minutes = 60;
    return due;
  }

  DocStore docs_;
  ServiceFabricProperties props_;
  LoadSeries recent_;
};

TEST_F(BackupSchedulerTest, PredictableServerMovesToValley) {
  BackupScheduler scheduler(&docs_, &props_);
  auto schedules = scheduler.ScheduleDay("r", kDay, {MakeDue("srv-1")});
  ASSERT_EQ(schedules.size(), 1u);
  const ScheduledBackup& s = schedules[0];
  EXPECT_EQ(s.decision, ScheduleDecision::kScheduledLowLoad);
  EXPECT_TRUE(s.moved());
  // The chosen window sits in the predicted valley (before 04:00).
  EXPECT_LT(MinuteOfDay(s.window_start), 4 * 60);
  // Property published for the backup service.
  ASSERT_TRUE(props_.GetBackupWindowStart("srv-1").has_value());
  EXPECT_EQ(*props_.GetBackupWindowStart("srv-1"), s.window_start);
}

TEST_F(BackupSchedulerTest, UnpredictableKeepsDefault) {
  StoreAccuracyDoc("srv-2", false);
  BackupScheduler scheduler(&docs_, &props_);
  auto schedules = scheduler.ScheduleDay("r", kDay, {MakeDue("srv-2")});
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].decision,
            ScheduleDecision::kDefaultNotPredictable);
  EXPECT_EQ(schedules[0].window_start, schedules[0].default_start);
  EXPECT_FALSE(props_.GetBackupWindowStart("srv-2").has_value());
}

TEST_F(BackupSchedulerTest, UnknownServerKeepsDefault) {
  BackupScheduler scheduler(&docs_, &props_);
  auto schedules = scheduler.ScheduleDay("r", kDay, {MakeDue("ghost")});
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].decision, ScheduleDecision::kDefaultNoHistory);
}

TEST_F(BackupSchedulerTest, ForecastFailureKeepsDefault) {
  StoreAccuracyDoc("srv-3", true);
  DueServer due = MakeDue("srv-3");
  due.recent_load = LoadSeries();  // endpoint cannot forecast
  BackupScheduler scheduler(&docs_, &props_);
  auto schedules = scheduler.ScheduleDay("r", kDay, {due});
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].decision,
            ScheduleDecision::kDefaultForecastFailed);
}

TEST_F(BackupSchedulerTest, DecisionNames) {
  EXPECT_STREQ(ScheduleDecisionName(ScheduleDecision::kScheduledLowLoad),
               "scheduled_low_load");
  EXPECT_STREQ(
      ScheduleDecisionName(ScheduleDecision::kDefaultNotPredictable),
      "default_not_predictable");
}

TEST_F(BackupSchedulerTest, BackupServiceHonorsProperty) {
  BackupScheduler scheduler(&docs_, &props_);
  auto schedules = scheduler.ScheduleDay("r", kDay, {MakeDue("srv-1")});
  ASSERT_EQ(schedules.size(), 1u);
  // True load for the backup day: same valley shape.
  std::vector<double> day(288);
  for (int64_t i = 0; i < 288; ++i) day[static_cast<size_t>(i)] =
      i < 48 ? 4.0 : 45.0;
  LoadSeries true_day =
      std::move(LoadSeries::Make(kDay * kMinutesPerDay, 5, std::move(day)))
          .ValueOrDie();
  BackupService service(&props_);
  BackupExecution exec = service.Execute(
      "srv-1", kDay, schedules[0].default_start, 60, true_day);
  EXPECT_TRUE(exec.used_scheduled_window);
  EXPECT_EQ(exec.start, schedules[0].window_start);
  EXPECT_NEAR(exec.avg_true_load, 4.0, 1.0);
  EXPECT_FALSE(exec.collided);
}

TEST_F(BackupSchedulerTest, BackupServiceIgnoresStaleProperty) {
  props_.SetBackupWindowStart("srv-9", (kDay - 7) * kMinutesPerDay);
  std::vector<double> day(288, 30.0);
  LoadSeries true_day =
      std::move(LoadSeries::Make(kDay * kMinutesPerDay, 5, std::move(day)))
          .ValueOrDie();
  BackupService service(&props_);
  MinuteStamp default_start = kDay * kMinutesPerDay + 600;
  BackupExecution exec =
      service.Execute("srv-9", kDay, default_start, 60, true_day);
  EXPECT_FALSE(exec.used_scheduled_window);
  EXPECT_EQ(exec.start, default_start);
}

TEST(ImpactTest, ClassifiesMovedBackups) {
  ImpactEvaluator impact;
  // Day with a deep valley; default in the busy part, schedule in valley.
  std::vector<double> day(288, 50.0);
  for (int64_t i = 0; i < 48; ++i) day[static_cast<size_t>(i)] = 4.0;
  LoadSeries true_day =
      std::move(LoadSeries::Make(0, 5, std::move(day))).ValueOrDie();
  ScheduledBackup sched;
  sched.server_id = "s";
  sched.day_index = 0;
  sched.decision = ScheduleDecision::kScheduledLowLoad;
  sched.window_start = 0;
  sched.window_end = 60;
  sched.default_start = 14 * 60;
  sched.default_end = 15 * 60;
  BackupPlacement p = impact.AddBackup(sched, true_day);
  EXPECT_TRUE(p.moved);
  EXPECT_TRUE(p.executed_is_ll);
  EXPECT_FALSE(p.default_is_ll);
  EXPECT_EQ(impact.impact().moved_to_ll, 1);
  EXPECT_GT(impact.impact().improved_minutes, 0.0);
}

TEST(ImpactTest, DefaultAlreadyLowLoad) {
  ImpactEvaluator impact;
  std::vector<double> day(288, 10.0);  // flat: every window is LL
  LoadSeries true_day =
      std::move(LoadSeries::Make(0, 5, std::move(day))).ValueOrDie();
  ScheduledBackup sched;
  sched.decision = ScheduleDecision::kDefaultNotPredictable;
  sched.window_start = sched.default_start = 100;
  sched.window_end = sched.default_end = 160;
  impact.AddBackup(sched, true_day);
  EXPECT_EQ(impact.impact().default_already_ll, 1);
  EXPECT_EQ(impact.impact().incorrect, 0);
}

TEST(ImpactTest, IncorrectWindow) {
  ImpactEvaluator impact;
  std::vector<double> day(288, 50.0);
  for (int64_t i = 0; i < 48; ++i) day[static_cast<size_t>(i)] = 4.0;
  LoadSeries true_day =
      std::move(LoadSeries::Make(0, 5, std::move(day))).ValueOrDie();
  ScheduledBackup sched;
  sched.decision = ScheduleDecision::kScheduledLowLoad;
  sched.window_start = 14 * 60;  // busy part
  sched.window_end = 15 * 60;
  sched.default_start = 14 * 60;
  sched.default_end = 15 * 60;
  impact.AddBackup(sched, true_day);
  EXPECT_EQ(impact.impact().incorrect, 1);
}

TEST(ImpactTest, BusyCohortCollisionAccounting) {
  ImpactEvaluator impact(AccuracyConfig{}, 60.0);
  // Peak above 60 midday; valley at night.
  std::vector<double> day(288, 30.0);
  for (int64_t i = 140; i < 170; ++i) day[static_cast<size_t>(i)] = 80.0;
  for (int64_t i = 0; i < 48; ++i) day[static_cast<size_t>(i)] = 5.0;
  LoadSeries true_day =
      std::move(LoadSeries::Make(0, 5, std::move(day))).ValueOrDie();
  ScheduledBackup sched;
  sched.decision = ScheduleDecision::kScheduledLowLoad;
  sched.window_start = 0;  // valley
  sched.window_end = 60;
  sched.default_start = 145 * 5;  // inside the peak
  sched.default_end = 145 * 5 + 60;
  impact.AddBackup(sched, true_day);
  EXPECT_EQ(impact.impact().busy_backups, 1);
  EXPECT_EQ(impact.impact().busy_default_collisions, 1);
  EXPECT_EQ(impact.impact().busy_executed_collisions, 0);
  EXPECT_DOUBLE_EQ(impact.impact().BusyCollisionsAvoided(), 1.0);
}

TEST(ImpactTest, CapacityHistogram) {
  ImpactEvaluator impact;
  auto add = [&](double peak) {
    std::vector<double> week(288, peak / 2);
    week[0] = peak;
    impact.AddServerWeek("s", std::move(LoadSeries::Make(
                                  0, 5, std::move(week)))
                                  .ValueOrDie());
  };
  add(15.0);
  add(25.0);
  add(99.9);
  const CapacityReport& cap = impact.capacity();
  EXPECT_EQ(cap.servers, 3);
  EXPECT_EQ(cap.histogram[1], 1);
  EXPECT_EQ(cap.histogram[2], 1);
  EXPECT_EQ(cap.histogram[9], 1);
  EXPECT_EQ(cap.at_capacity, 1);
  EXPECT_NEAR(cap.FractionAtCapacity(), 1.0 / 3.0, 1e-9);
}

TEST(DueServersTest, MatchesBackupDayAndLifespan) {
  RegionConfig config;
  config.name = "due";
  config.num_servers = 50;
  config.weeks = 4;
  config.seed = 5;
  Fleet fleet = Fleet::Generate(config);
  int64_t day = 3 * 7 + 2;  // week 3, Wednesday
  auto due = DueServersForDay(fleet, day);
  for (const auto& d : due) {
    const ServerProfile* p = fleet.Find(d.server_id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->backup_day, DayOfWeek::kWednesday);
    EXPECT_TRUE(p->IsAliveAt(day * kMinutesPerDay));
    EXPECT_EQ(d.backup_duration_minutes, p->backup_duration_minutes);
    EXPECT_FALSE(d.recent_load.empty());
    // Recent load ends at the scheduling boundary.
    EXPECT_LE(d.recent_load.end(), day * kMinutesPerDay);
  }
}

}  // namespace
}  // namespace seagull
