/// \file series_block_writer_test.cc
/// \brief The streaming SGB1 encoder: byte-identity with the
/// materializing `EncodeSeriesBlock` across adversarial inputs, the
/// two-pass protocol's misuse statuses, sink-failure propagation, and
/// the emitter-level `ExtractWeekBlockTo` equivalence plus its resident
/// cost bound.

#include "telemetry/series_block_writer.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"
#include "telemetry/series_block.h"

namespace seagull {
namespace {

/// Sink that accumulates the blob for comparison.
SeriesBlockWriter::Sink CollectInto(std::string* out) {
  return [out](std::string_view bytes) {
    out->append(bytes.data(), bytes.size());
    return Status::OK();
  };
}

std::vector<TelemetryRecord> SampleRecords() {
  std::vector<TelemetryRecord> records;
  for (int64_t t = 0; t < 30; t += 5) {
    TelemetryRecord r;
    r.server_id = "srv-a";
    r.timestamp = t;
    r.avg_cpu = 10.0 + static_cast<double>(t);
    r.default_backup_start = 120;
    r.default_backup_end = 180;
    records.push_back(r);
  }
  TelemetryRecord b;
  b.server_id = "srv-b";
  b.timestamp = 10;
  b.avg_cpu = 55.5;
  b.default_backup_start = 600;
  b.default_backup_end = 660;
  records.push_back(b);
  return records;
}

/// Random rows with gaps, several servers, *unquantized* values — the
/// writer must reproduce the record encoder's quantization too.
std::vector<TelemetryRecord> RandomRecords(uint64_t seed) {
  Rng rng(seed);
  std::vector<TelemetryRecord> records;
  const int servers = static_cast<int>(rng.UniformInt(1, 6));
  for (int s = 0; s < servers; ++s) {
    TelemetryRecord base;
    base.server_id = StringPrintf("srv-%02d", s);
    base.default_backup_start = rng.UniformInt(0, 1000) * 5;
    base.default_backup_end =
        base.default_backup_start + rng.UniformInt(1, 24) * 5;
    const int64_t start = rng.UniformInt(0, 100) * 5;
    const int samples = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < samples; ++i) {
      if (rng.Chance(0.15)) continue;  // missing sample -> absent row
      TelemetryRecord r = base;
      r.timestamp = start + i * 5;
      r.avg_cpu = rng.Uniform(0.0, 100.0);
      records.push_back(std::move(r));
    }
  }
  return records;
}

std::string StreamedEncode(const std::vector<TelemetryRecord>& records) {
  std::string out;
  Status st = WriteSeriesBlockFromRecords(records, kServerIntervalMinutes,
                                          CollectInto(&out));
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(SeriesBlockWriterTest, PropertyByteIdenticalToRecordEncoder) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto records = RandomRecords(seed);
    EXPECT_EQ(StreamedEncode(records), EncodeSeriesBlock(records))
        << "seed " << seed;
  }
}

TEST(SeriesBlockWriterTest, EmptyInputProducesTheCanonicalEmptyBlock) {
  const std::string streamed = StreamedEncode({});
  EXPECT_EQ(streamed, EncodeSeriesBlock({}));
  auto info = PeekSeriesBlock(streamed);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->server_count, 0);
  EXPECT_EQ(info->total_samples, 0);
}

TEST(SeriesBlockWriterTest, InterleavedAndDuplicateIdsMatchEncoder) {
  // srv-a's rows split around srv-b's: groups are non-contiguous, so
  // the record front-end must merge them (first-appearance order, last
  // row's backup window) exactly as EncodeSeriesBlock does.
  std::vector<TelemetryRecord> records = SampleRecords();
  TelemetryRecord again = records[0];
  again.timestamp = 100;
  again.avg_cpu = 77.0;
  again.default_backup_start = 300;  // later row overrides the window
  again.default_backup_end = 360;
  records.push_back(again);
  TelemetryRecord dup = records[1];  // duplicate (server, timestamp)
  dup.avg_cpu = 99.0;
  records.push_back(dup);
  EXPECT_EQ(StreamedEncode(records), EncodeSeriesBlock(records));
}

TEST(SeriesBlockWriterTest, SingleServerSingleSampleMatchesEncoder) {
  TelemetryRecord r;
  r.server_id = "only";
  r.timestamp = 5;
  r.avg_cpu = 12.345678;  // quantizes through the writer
  r.default_backup_start = 0;
  r.default_backup_end = 60;
  EXPECT_EQ(StreamedEncode({r}), EncodeSeriesBlock({r}));
}

TEST(SeriesBlockWriterTest, StreamedBlobDecodesAndSurvivesMutilation) {
  const auto records = SampleRecords();
  const std::string blob = StreamedEncode(records);
  auto decoded = DecodeSeriesBlock(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), records.size());

  // Truncations and bit flips of the *streamed* output must be caught
  // by the incrementally-folded checksum / structural checks.
  for (size_t cut : {size_t{0}, size_t{10}, size_t{35}, blob.size() / 2,
                     blob.size() - 1}) {
    EXPECT_FALSE(DecodeSeriesBlock(blob.substr(0, cut)).ok()) << cut;
  }
  for (size_t at : {size_t{0}, size_t{20}, blob.size() / 2,
                    blob.size() - 1}) {
    std::string bad = blob;
    bad[at] = static_cast<char>(bad[at] ^ 0x5a);
    EXPECT_FALSE(DecodeSeriesBlock(bad).ok()) << at;
  }
}

TEST(SeriesBlockWriterTest, ZeroCountDeclarationsAreDropped) {
  std::string manual;
  SeriesBlockWriter writer(CollectInto(&manual));
  ASSERT_TRUE(writer.Declare("ghost", 0, 0, 60).ok());
  ASSERT_TRUE(writer.Finish().ok());
  // A fleet of only empty servers is byte-identical to no fleet at all.
  EXPECT_EQ(manual, EncodeSeriesBlock({}));
}

TEST(SeriesBlockWriterTest, ManualProtocolMatchesEncoder) {
  const auto records = SampleRecords();  // srv-a x6 rows, srv-b x1
  std::string manual;
  SeriesBlockWriter writer(CollectInto(&manual));
  ASSERT_TRUE(writer.Declare("srv-a", 6, 120, 180).ok());
  ASSERT_TRUE(writer.Declare("srv-b", 1, 600, 660).ok());
  ASSERT_TRUE(writer.StartAppend().ok());
  for (const TelemetryRecord& r : records) {
    ASSERT_TRUE(writer.Append(r.server_id, r.timestamp, r.avg_cpu).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(manual, EncodeSeriesBlock(records));
  EXPECT_EQ(writer.bytes_written(), static_cast<int64_t>(manual.size()));
}

TEST(SeriesBlockWriterTest, ProtocolMisuseIsRejected) {
  std::string out;
  {
    SeriesBlockWriter writer(CollectInto(&out));
    ASSERT_TRUE(writer.Declare("a", 1, 0, 60).ok());
    EXPECT_FALSE(writer.Declare("a", 2, 0, 60).ok());  // duplicate id
  }
  {
    SeriesBlockWriter writer(CollectInto(&out));
    ASSERT_TRUE(writer.Declare("a", 1, 0, 60).ok());
    EXPECT_FALSE(writer.Append("a", 0, 1.0).ok());  // before StartAppend
  }
  {
    SeriesBlockWriter writer(CollectInto(&out));
    ASSERT_TRUE(writer.Declare("a", 1, 0, 60).ok());
    ASSERT_TRUE(writer.StartAppend().ok());
    EXPECT_FALSE(writer.Declare("b", 1, 0, 60).ok());  // declare too late
  }
  {
    SeriesBlockWriter writer(CollectInto(&out));
    ASSERT_TRUE(writer.Declare("a", 1, 0, 60).ok());
    ASSERT_TRUE(writer.StartAppend().ok());
    EXPECT_FALSE(writer.Append("b", 0, 1.0).ok());  // out of order
  }
  {
    SeriesBlockWriter writer(CollectInto(&out));
    ASSERT_TRUE(writer.Declare("a", 1, 0, 60).ok());
    ASSERT_TRUE(writer.StartAppend().ok());
    ASSERT_TRUE(writer.Append("a", 0, 1.0).ok());
    EXPECT_FALSE(writer.Append("a", 5, 1.0).ok());  // past declared count
  }
  {
    SeriesBlockWriter writer(CollectInto(&out));
    ASSERT_TRUE(writer.Declare("a", 2, 0, 60).ok());
    ASSERT_TRUE(writer.StartAppend().ok());
    ASSERT_TRUE(writer.Append("a", 0, 1.0).ok());
    EXPECT_FALSE(writer.Finish().ok());  // undelivered samples
  }
}

TEST(SeriesBlockWriterTest, SinkErrorAbortsTheWrite) {
  int64_t budget = 40;  // enough for the header, not the columns
  SeriesBlockWriter writer([&](std::string_view bytes) {
    budget -= static_cast<int64_t>(bytes.size());
    if (budget < 0) return Status::IOError("sink full");
    return Status::OK();
  });
  ASSERT_TRUE(writer.Declare("a", 100, 0, 60).ok());
  Status st = writer.StartAppend();
  // The directory overflows the budget either here or on a later
  // append; once failed, the writer stays failed.
  for (int i = 0; st.ok() && i < 100; ++i) {
    st = writer.Append("a", i * 5, 1.0);
  }
  if (st.ok()) st = writer.Finish();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(writer.Finish().ok());  // sticky failure
}

TEST(SeriesBlockWriterTest, ExtractWeekBlockToMatchesExtractWeekBlock) {
  RegionConfig config;
  config.name = "stream";
  config.num_servers = 8;
  config.weeks = 4;
  config.seed = 11;
  config.telemetry.missing_sample_rate = 0.05;
  Fleet fleet = Fleet::Generate(config);
  for (int64_t week : {int64_t{1}, int64_t{3}}) {
    std::string streamed;
    int64_t peak = 0;
    ASSERT_TRUE(ExtractWeekBlockTo(fleet, week, CollectInto(&streamed), {},
                                   &peak)
                    .ok());
    const std::string reference = ExtractWeekBlock(fleet, week);
    EXPECT_EQ(streamed, reference) << "week " << week;
    EXPECT_GT(peak, 0);
  }
}

TEST(SeriesBlockWriterTest, ResidentCostStaysUnderTheBlobAtScale) {
  // The streaming claim only bites once the timestamp column exceeds
  // the 256 KB chunk (below that nothing ever flushes early): at 64
  // servers the blob is ~2 MB and the writer must hold roughly the
  // value column plus one chunk — well under the whole blob.
  RegionConfig config;
  config.name = "resident";
  config.num_servers = 64;
  config.weeks = 4;
  config.seed = 17;
  Fleet fleet = Fleet::Generate(config);
  std::string streamed;
  int64_t peak = 0;
  ASSERT_TRUE(
      ExtractWeekBlockTo(fleet, 3, CollectInto(&streamed), {}, &peak).ok());
  EXPECT_EQ(streamed, ExtractWeekBlock(fleet, 3));
  EXPECT_GT(peak, 0);
  EXPECT_LT(peak, static_cast<int64_t>(streamed.size() * 3 / 4));
}

}  // namespace
}  // namespace seagull
