#include "forecast/persistent.h"

#include <gtest/gtest.h>

#include <cmath>

namespace seagull {
namespace {

// Two weeks of history where value = day index (flat within a day).
LoadSeries DayIndexedHistory(int64_t days) {
  std::vector<double> values;
  for (int64_t d = 0; d < days; ++d) {
    for (int64_t i = 0; i < 288; ++i) {
      values.push_back(static_cast<double>(d));
    }
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(PersistentTest, PreviousDayReplicatesYesterday) {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  LoadSeries history = DayIndexedHistory(7);
  auto forecast =
      model.Forecast(history, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 288);
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_DOUBLE_EQ(forecast->ValueAt(i), 6.0);  // yesterday was day 6
  }
}

TEST(PersistentTest, PreviousDayMultiDayHorizonFoldsBack) {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  LoadSeries history = DayIndexedHistory(7);
  auto forecast =
      model.Forecast(history, 7 * kMinutesPerDay, 3 * kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  // Every forecast day replicates the last observed day.
  EXPECT_DOUBLE_EQ(forecast->ValueAtTime(7 * kMinutesPerDay), 6.0);
  EXPECT_DOUBLE_EQ(forecast->ValueAtTime(8 * kMinutesPerDay), 6.0);
  EXPECT_DOUBLE_EQ(forecast->ValueAtTime(9 * kMinutesPerDay + 600), 6.0);
}

TEST(PersistentTest, PreviousEquivalentDayReplicatesLastWeek) {
  PersistentForecast model(PersistentVariant::kPreviousEquivalentDay);
  LoadSeries history = DayIndexedHistory(14);
  auto forecast =
      model.Forecast(history, 14 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_DOUBLE_EQ(forecast->ValueAt(i), 7.0);  // same weekday last week
  }
}

TEST(PersistentTest, PreviousWeekAverageIsFlat) {
  PersistentForecast model(PersistentVariant::kPreviousWeekAverage);
  LoadSeries history = DayIndexedHistory(14);  // last week: days 7..13
  auto forecast =
      model.Forecast(history, 14 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_DOUBLE_EQ(forecast->ValueAt(i), 10.0);  // mean of 7..13
  }
}

TEST(PersistentTest, MissingSourceSamplesStayMissing) {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  auto history = LoadSeries::MakeEmpty(0, 5, 288);
  history->SetValue(0, 42.0);
  auto forecast =
      model.Forecast(*history, kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ(forecast->ValueAt(0), 42.0);
  EXPECT_TRUE(forecast->MissingAt(1));
}

TEST(PersistentTest, RequiresHistory) {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  LoadSeries empty;
  EXPECT_TRUE(model.Forecast(empty, 0, kMinutesPerDay)
                  .status()
                  .IsFailedPrecondition());
}

TEST(PersistentTest, RejectsMisalignedRange) {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  LoadSeries history = DayIndexedHistory(2);
  EXPECT_TRUE(model.Forecast(history, 2 * kMinutesPerDay + 3, 60)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(model.Forecast(history, 2 * kMinutesPerDay, 61)
                  .status()
                  .IsInvalid());
}

TEST(PersistentTest, NoTrainingRequired) {
  PersistentForecast model;
  EXPECT_FALSE(model.requires_training());
  EXPECT_TRUE(model.Fit(DayIndexedHistory(1)).ok());
}

TEST(PersistentTest, NamesAndSerialization) {
  for (auto variant : {PersistentVariant::kPreviousDay,
                       PersistentVariant::kPreviousEquivalentDay,
                       PersistentVariant::kPreviousWeekAverage}) {
    PersistentForecast model(variant);
    auto doc = model.Serialize();
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(*doc->GetString("model"), model.name());
    PersistentForecast restored(PersistentVariant::kPreviousDay);
    ASSERT_TRUE(restored.Deserialize(*doc).ok());
    EXPECT_EQ(restored.variant(), variant);
  }
}

TEST(PersistentTest, DeserializeRejectsBadVariant) {
  Json doc = Json::MakeObject();
  doc["variant"] = 99;
  PersistentForecast model;
  EXPECT_FALSE(model.Deserialize(doc).ok());
}

TEST(PersistentTest, WeekAverageFallsBackToOverallMean) {
  PersistentForecast model(PersistentVariant::kPreviousWeekAverage);
  // Only two days of history; the "previous week" range [7d, 14d) before
  // forecast start 14d... use start right after the data instead.
  LoadSeries history = DayIndexedHistory(2);
  // Forecast starting 10 days after the data ends: previous week has no
  // samples, so the overall mean (0.5) is used.
  auto forecast =
      model.Forecast(history, 12 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ(forecast->ValueAt(0), 0.5);
}

}  // namespace
}  // namespace seagull
