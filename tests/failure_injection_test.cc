/// \file failure_injection_test.cc
/// \brief Failure-path coverage: corrupted inputs, broken registry state,
/// and degraded telemetry must degrade gracefully — errors surface as
/// statuses and incidents, the scheduler falls back to default windows,
/// and nothing crashes. Infrastructure failures (store outages, transient
/// I/O errors) are driven through `FaultRegistry`; corrupted-input cases
/// stay hand-crafted because they model bad *data*, not bad I/O.

#include <gtest/gtest.h>

#include <fstream>

#include "common/fault.h"
#include "common/retry.h"
#include "pipeline/scheduler.h"
#include "scheduling/backup_scheduler.h"
#include "scheduling/simulation.h"
#include "telemetry/emitter.h"

namespace seagull {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto lake = LakeStore::OpenTemporary("failure");
    ASSERT_TRUE(lake.ok());
    lake_ = std::make_unique<LakeStore>(std::move(lake).ValueUnsafe());
    RegionConfig config;
    config.name = "fail";
    config.num_servers = 20;
    config.weeks = 4;
    config.seed = 3;
    fleet_ = std::make_unique<Fleet>(Fleet::Generate(config));
  }

  PipelineContext MakeContext(int64_t week) {
    PipelineContext ctx;
    ctx.region = "fail";
    ctx.week = week;
    ctx.lake = lake_.get();
    ctx.docs = &docs_;
    return ctx;
  }

  std::unique_ptr<LakeStore> lake_;
  std::unique_ptr<Fleet> fleet_;
  DocStore docs_;
};

TEST_F(FailureTest, GarbageBlobFailsIngestionWithIncident) {
  ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("fail", 2),
                         "\x01\x02garbage\xff,,,\nnot,a,csv")
                  .ok());
  Pipeline pipeline = Pipeline::Standard();
  PipelineContext ctx = MakeContext(2);
  PipelineRunReport report = pipeline.Run(&ctx);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(ctx.incidents.empty());
}

TEST_F(FailureTest, WrongHeaderFailsIngestion) {
  ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("fail", 2),
                         "a,b,c,d,e\nx,1,2,3,4\n")
                  .ok());
  Pipeline pipeline = Pipeline::Standard();
  PipelineContext ctx = MakeContext(2);
  PipelineRunReport report = pipeline.Run(&ctx);
  EXPECT_FALSE(report.success);
}

TEST_F(FailureTest, TruncatedCsvFailsCleanly) {
  std::string good = ExtractWeekCsvText(*fleet_, 2);
  // Chop mid-line.
  std::string truncated = good.substr(0, good.size() / 2);
  while (!truncated.empty() && truncated.back() != '\n') {
    truncated.pop_back();
  }
  truncated += "fail-srv-00001,100";  // incomplete row
  ASSERT_TRUE(
      lake_->Put(LakeStore::TelemetryKey("fail", 2), truncated).ok());
  Pipeline pipeline = Pipeline::Standard();
  PipelineContext ctx = MakeContext(2);
  PipelineRunReport report = pipeline.Run(&ctx);
  EXPECT_FALSE(report.success);
}

TEST_F(FailureTest, FailedRunKeepsRegionDueForCatchUp) {
  // The data is fine; the telemetry store is down. The run must fail
  // without consuming the region's cadence slot.
  ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("fail", 2),
                         ExtractWeekCsvText(*fleet_, 2))
                  .ok());
  Pipeline pipeline = Pipeline::Standard();
  PipelineScheduler scheduler(&pipeline, lake_.get(), &docs_);
  PipelineContext config;
  {
    ScopedFaultInjection fault({/*seed=*/1, /*rate=*/0.0});
    fault.registry().AddOutage("lake.get", "telemetry/fail", /*count=*/-1);
    auto run = scheduler.RunIfDue("fail", 2, config);
    EXPECT_FALSE(run.report.success);
    EXPECT_FALSE(run.alerts.empty());
  }
  // The outage clears; the region is still due and now succeeds.
  EXPECT_TRUE(scheduler.IsDue("fail", 2));
  auto retry = scheduler.RunIfDue("fail", 2, config);
  EXPECT_TRUE(retry.report.success) << retry.report.failure;
}

TEST_F(FailureTest, TransientStoreFaultRecoveredByRetry) {
  ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("fail", 2),
                         ExtractWeekCsvText(*fleet_, 2))
                  .ok());
  ScopedFaultInjection fault({/*seed=*/1, /*rate=*/0.0});
  fault.registry().AddOutage("lake.get", "telemetry/fail", /*count=*/2);
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.base_backoff_millis = 0.0;
  Pipeline pipeline = Pipeline::Standard();
  PipelineScheduler scheduler(&pipeline, lake_.get(), &docs_,
                              /*period_weeks=*/1, retry);
  PipelineContext config;
  auto run = scheduler.RunIfDue("fail", 2, config);
  EXPECT_TRUE(run.report.success) << run.report.failure;
  EXPECT_EQ(run.report.retries, 2);
  EXPECT_FALSE(run.report.retries_exhausted);
}

TEST_F(FailureTest, ExhaustedRetriesMarkTheRunForQuarantine) {
  ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("fail", 2),
                         ExtractWeekCsvText(*fleet_, 2))
                  .ok());
  ScopedFaultInjection fault({/*seed=*/1, /*rate=*/0.0});
  fault.registry().AddOutage("lake.get", "telemetry/fail", /*count=*/-1);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_backoff_millis = 0.0;
  Pipeline pipeline = Pipeline::Standard();
  PipelineScheduler scheduler(&pipeline, lake_.get(), &docs_,
                              /*period_weeks=*/1, retry);
  PipelineContext config;
  auto run = scheduler.RunIfDue("fail", 2, config);
  EXPECT_FALSE(run.report.success);
  // `retries_exhausted` is what FleetRunner keys quarantine on: it
  // distinguishes a persistent infrastructure outage from a data bug
  // (which fails fast without retrying).
  EXPECT_TRUE(run.report.retries_exhausted);
  EXPECT_EQ(run.report.retries, 2);
}

TEST_F(FailureTest, UnknownModelFamilyFailsTraining) {
  ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("fail", 2),
                         ExtractWeekCsvText(*fleet_, 2))
                  .ok());
  Pipeline pipeline = Pipeline::Standard();
  PipelineContext ctx = MakeContext(2);
  ctx.model_name = "prophet9000";
  PipelineRunReport report = pipeline.Run(&ctx);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure.find("training"), std::string::npos);
}

TEST_F(FailureTest, CorruptRegistryDegradesToDefaultWindows) {
  // Active pointer exists but the version document does not.
  ASSERT_TRUE(SetActiveVersion(&docs_, "fail", 42, "dangling").ok());
  // Mark one server predictable so only the endpoint is broken.
  Document acc;
  acc.partition_key = "fail";
  acc.id = "w0004:srv-x";
  acc.body = Json::MakeObject();
  acc.body["predictable"] = true;
  docs_.GetContainer(kAccuracyContainer)->Upsert(acc).Abort();

  ServiceFabricProperties properties;
  BackupScheduler scheduler(&docs_, &properties);
  DueServer due;
  due.server_id = "srv-x";
  due.recent_load =
      *LoadSeries::MakeEmpty(27 * kMinutesPerDay, 5, 288);
  due.default_start = 28 * kMinutesPerDay + 120;
  due.default_end = due.default_start + 60;
  due.backup_duration_minutes = 60;
  auto schedules = scheduler.ScheduleDay("fail", 28, {due});
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].decision,
            ScheduleDecision::kDefaultForecastFailed);
  EXPECT_EQ(schedules[0].window_start, due.default_start);
}

TEST_F(FailureTest, MalformedVersionDocRejectedByEndpoint) {
  Json no_models = Json::MakeObject();
  no_models["family"] = "persistent_prev_day";
  no_models["version"] = 1;
  EXPECT_FALSE(ModelEndpoint::FromVersionDoc(no_models).ok());

  Json empty_models = no_models;
  empty_models["models"] = Json::MakeObject();
  EXPECT_FALSE(ModelEndpoint::FromVersionDoc(empty_models).ok());

  Json bad_params = no_models;
  bad_params["models"] = Json::MakeObject();
  bad_params["models"]["srv"] = Json::MakeObject();  // missing "model"
  EXPECT_FALSE(ModelEndpoint::FromVersionDoc(bad_params).ok());
}

TEST_F(FailureTest, SeverelyDegradedTelemetryStillRuns) {
  RegionConfig config;
  config.name = "degraded";
  config.num_servers = 40;
  config.weeks = 4;
  config.seed = 9;
  config.telemetry.missing_sample_rate = 0.15;
  config.telemetry.missing_hour_rate = 0.10;
  SimulationOptions options;
  options.regions = {config};
  auto result = RunSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& run : result->regions[0].runs) {
    EXPECT_TRUE(run.success) << run.failure;
  }
  // Scheduling still happened (possibly with fewer moved windows).
  EXPECT_GT(result->regions[0].backups_scheduled, 0);
}

TEST_F(FailureTest, DocStoreSnapshotCorruptionFails) {
  std::string path = lake_->root() + "/snapshot.json";
  {
    std::ofstream out(path);
    out << "{\"container\": [{\"pk\": \"p\"";  // truncated JSON
  }
  DocStore store;
  EXPECT_FALSE(store.LoadFromFile(path).ok());
}

TEST_F(FailureTest, EmptyRegionListIsFine) {
  SimulationOptions options;
  auto result = RunSimulation(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->regions.empty());
}

}  // namespace
}  // namespace seagull
