#include "telemetry/signals.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

ServerProfile Profile(uint64_t seed) {
  ServerProfile p;
  p.server_id = "sig";
  p.archetype = ServerArchetype::kDailyPattern;
  p.created_at = 0;
  p.deleted_at = kMinutesPerWeek;
  p.base_load = 15.0;
  p.noise_sigma = 1.0;
  p.bump_center = {10 * 60.0, 16 * 60.0};
  p.bump_width = {100.0, 120.0};
  p.bump_amplitude = {30.0, 20.0};
  p.seed = seed;
  return p;
}

TEST(SignalsTest, Names) {
  EXPECT_STREQ(SignalKindName(SignalKind::kCpu), "cpu");
  EXPECT_STREQ(SignalKindName(SignalKind::kMemory), "memory");
  EXPECT_STREQ(SignalKindName(SignalKind::kIo), "io");
  EXPECT_STREQ(SignalKindName(SignalKind::kConnections), "connections");
}

TEST(SignalsTest, CpuSignalMatchesGenerateLoad) {
  ServerProfile p = Profile(1);
  LoadSeries direct = GenerateLoad(p, 0, kMinutesPerDay);
  LoadSeries via = GenerateSignal(p, SignalKind::kCpu, 0, kMinutesPerDay);
  EXPECT_EQ(direct.values(), via.values());
}

TEST(SignalsTest, AllSignalsShareGridAndMissingness) {
  ServerProfile p = Profile(2);
  GeneratorOptions options;
  options.missing_sample_rate = 0.1;
  MultiSignalSeries s = GenerateAllSignals(p, 0, kMinutesPerDay, options);
  ASSERT_EQ(s.cpu.size(), s.memory.size());
  ASSERT_EQ(s.cpu.size(), s.io.size());
  ASSERT_EQ(s.cpu.size(), s.connections.size());
  for (int64_t i = 0; i < s.cpu.size(); ++i) {
    EXPECT_EQ(s.cpu.MissingAt(i), s.memory.MissingAt(i)) << i;
    EXPECT_EQ(s.cpu.MissingAt(i), s.io.MissingAt(i)) << i;
    EXPECT_EQ(s.cpu.MissingAt(i), s.connections.MissingAt(i)) << i;
  }
}

TEST(SignalsTest, Deterministic) {
  ServerProfile p = Profile(3);
  LoadSeries a = GenerateSignal(p, SignalKind::kIo, 0, kMinutesPerDay);
  LoadSeries b = GenerateSignal(p, SignalKind::kIo, 0, kMinutesPerDay);
  EXPECT_EQ(a.values(), b.values());
}

TEST(SignalsTest, SignalsAreBounded) {
  ServerProfile p = Profile(4);
  MultiSignalSeries s = GenerateAllSignals(p, 0, kMinutesPerWeek);
  for (int64_t i = 0; i < s.cpu.size(); ++i) {
    EXPECT_GE(s.memory.ValueAt(i), 0.0);
    EXPECT_LE(s.memory.ValueAt(i), 100.0);
    EXPECT_GE(s.io.ValueAt(i), 0.0);
    EXPECT_LE(s.io.ValueAt(i), 100.0);
    EXPECT_GE(s.connections.ValueAt(i), 0.0);
    // Connections are whole numbers.
    EXPECT_DOUBLE_EQ(s.connections.ValueAt(i),
                     std::round(s.connections.ValueAt(i)));
  }
}

TEST(SignalsTest, CompanionSignalsCorrelateWithCpu) {
  ServerProfile p = Profile(5);
  MultiSignalSeries s = GenerateAllSignals(p, 0, kMinutesPerWeek);
  CrossSignalFeatures f = ComputeCrossSignalFeatures(s);
  // The daily bump drives all signals: positive correlation throughout
  // (I/O is diluted by multiplicative noise and independent flush
  // bursts, so its correlation is the weakest of the three).
  EXPECT_GT(f.cpu_io_correlation, 0.25);
  EXPECT_GT(f.cpu_connections_correlation, 0.8);
  // Memory lags but still follows the daily shape.
  EXPECT_GT(f.cpu_memory_correlation, 0.3);
  EXPECT_GT(f.mean_memory, 10.0);
  EXPECT_LT(f.mean_memory, 90.0);
}

TEST(SignalsTest, MemoryIsSmootherThanCpu) {
  ServerProfile p = Profile(6);
  MultiSignalSeries s = GenerateAllSignals(p, 0, kMinutesPerDay);
  auto roughness = [](const LoadSeries& series) {
    double sum = 0;
    for (int64_t i = 1; i < series.size(); ++i) {
      sum += std::fabs(series.ValueAt(i) - series.ValueAt(i - 1));
    }
    return sum;
  };
  EXPECT_LT(roughness(s.memory), 0.5 * roughness(s.cpu));
}

TEST(SignalsTest, CorrelationEdgeCases) {
  LoadSeries empty;
  LoadSeries flat =
      std::move(LoadSeries::Make(0, 5, {5, 5, 5, 5})).ValueOrDie();
  LoadSeries ramp =
      std::move(LoadSeries::Make(0, 5, {1, 2, 3, 4})).ValueOrDie();
  EXPECT_DOUBLE_EQ(SignalCorrelation(empty, ramp), 0.0);
  EXPECT_DOUBLE_EQ(SignalCorrelation(flat, ramp), 0.0);  // zero variance
  EXPECT_NEAR(SignalCorrelation(ramp, ramp), 1.0, 1e-9);
  // Anti-correlated series.
  LoadSeries anti =
      std::move(LoadSeries::Make(0, 5, {4, 3, 2, 1})).ValueOrDie();
  EXPECT_NEAR(SignalCorrelation(ramp, anti), -1.0, 1e-9);
}

TEST(SignalsTest, GetBySignalKind) {
  ServerProfile p = Profile(7);
  MultiSignalSeries s = GenerateAllSignals(p, 0, kMinutesPerDay);
  EXPECT_EQ(&s.Get(SignalKind::kCpu), &s.cpu);
  EXPECT_EQ(&s.Get(SignalKind::kMemory), &s.memory);
  EXPECT_EQ(&s.Get(SignalKind::kIo), &s.io);
  EXPECT_EQ(&s.Get(SignalKind::kConnections), &s.connections);
}

}  // namespace
}  // namespace seagull
