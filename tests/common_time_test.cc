#include "common/time.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

TEST(TimeTest, Constants) {
  EXPECT_EQ(kMinutesPerDay, 1440);
  EXPECT_EQ(kMinutesPerWeek, 10080);
  EXPECT_EQ(TicksPerDay(kServerIntervalMinutes), 288);
  EXPECT_EQ(TicksPerDay(kSqlIntervalMinutes), 96);
}

TEST(TimeTest, DayIndexAndStartOfDay) {
  EXPECT_EQ(DayIndex(0), 0);
  EXPECT_EQ(DayIndex(1439), 0);
  EXPECT_EQ(DayIndex(1440), 1);
  EXPECT_EQ(StartOfDay(1500), 1440);
  EXPECT_EQ(StartOfDay(1440), 1440);
  EXPECT_EQ(MinuteOfDay(1500), 60);
}

TEST(TimeTest, NegativeStampsFloor) {
  EXPECT_EQ(DayIndex(-1), -1);
  EXPECT_EQ(DayIndex(-1440), -1);
  EXPECT_EQ(DayIndex(-1441), -2);
  EXPECT_EQ(MinuteOfDay(-1), 1439);
}

TEST(TimeTest, WeekIndex) {
  EXPECT_EQ(WeekIndex(0), 0);
  EXPECT_EQ(WeekIndex(kMinutesPerWeek - 1), 0);
  EXPECT_EQ(WeekIndex(kMinutesPerWeek), 1);
  EXPECT_EQ(StartOfWeek(kMinutesPerWeek + 5), kMinutesPerWeek);
}

TEST(TimeTest, EpochIsMonday) {
  EXPECT_EQ(DayOfWeekOf(0), DayOfWeek::kMonday);
  EXPECT_EQ(DayOfWeekOf(kMinutesPerDay), DayOfWeek::kTuesday);
  EXPECT_EQ(DayOfWeekOf(6 * kMinutesPerDay), DayOfWeek::kSunday);
  EXPECT_EQ(DayOfWeekOf(7 * kMinutesPerDay), DayOfWeek::kMonday);
}

TEST(TimeTest, DayOfWeekNames) {
  EXPECT_STREQ(DayOfWeekName(DayOfWeek::kMonday), "Monday");
  EXPECT_STREQ(DayOfWeekName(DayOfWeek::kSunday), "Sunday");
}

TEST(TimeTest, FormatMinute) {
  // Week 1, Tuesday 14:35 = week + day + 14h35.
  MinuteStamp t = kMinutesPerWeek + kMinutesPerDay + 14 * 60 + 35;
  EXPECT_EQ(FormatMinute(t), "W1 Tue 14:35");
  EXPECT_EQ(FormatTimeOfDay(0), "00:00");
  EXPECT_EQ(FormatTimeOfDay(23 * 60 + 59), "23:59");
}

TEST(TimeTest, EquivalentDayArithmetic) {
  // The same day of week one week apart maps to the same weekday.
  for (int64_t d = 0; d < 14; ++d) {
    EXPECT_EQ(DayOfWeekOf(d * kMinutesPerDay),
              DayOfWeekOf((d + 7) * kMinutesPerDay));
  }
}

}  // namespace
}  // namespace seagull
