#include "telemetry/azure_trace.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "pipeline/pipeline.h"
#include "store/lake_store.h"

namespace seagull {
namespace {

/// Builds a synthetic trace in the Azure Public Dataset format: two VMs,
/// one day of 300-second readings.
std::string SampleTrace(bool with_header = true) {
  std::string text;
  if (with_header) text += "timestamp,vm_id,min_cpu,max_cpu,avg_cpu\n";
  for (int64_t tick = 0; tick < 288; ++tick) {
    int64_t seconds = tick * 300;
    double load_a = tick < 48 ? 5.0 : 40.0;  // nightly valley
    double load_b = 20.0;
    text += StringPrintf("%lld,vm-a,%.1f,%.1f,%.2f\n",
                         static_cast<long long>(seconds), load_a - 1,
                         load_a + 1, load_a);
    text += StringPrintf("%lld,vm-b,%.1f,%.1f,%.2f\n",
                         static_cast<long long>(seconds), load_b - 1,
                         load_b + 1, load_b);
  }
  return text;
}

TEST(AzureTraceTest, ImportsAndGroups) {
  auto servers = ImportAzureVmTrace(SampleTrace());
  ASSERT_TRUE(servers.ok()) << servers.status().ToString();
  ASSERT_EQ(servers->size(), 2u);
  const ServerTelemetry& a = (*servers)[0];
  EXPECT_EQ(a.server_id, "vm-a");
  EXPECT_EQ(a.load.interval_minutes(), kServerIntervalMinutes);
  EXPECT_EQ(a.load.size(), 288);
  EXPECT_DOUBLE_EQ(a.load.ValueAt(0), 5.0);
  EXPECT_DOUBLE_EQ(a.load.ValueAt(100), 40.0);
  // Synthetic backup metadata attached.
  EXPECT_EQ(a.backup_duration_minutes(), 60);
}

TEST(AzureTraceTest, HeaderOptional) {
  auto servers = ImportAzureVmTrace(SampleTrace(/*with_header=*/false));
  ASSERT_TRUE(servers.ok());
  EXPECT_EQ(servers->size(), 2u);
}

TEST(AzureTraceTest, DropsOutOfRangeRows) {
  std::string trace = SampleTrace();
  trace += "86400,vm-a,0,0,250.0\n";  // absurd utilization
  auto servers = ImportAzureVmTrace(trace);
  ASSERT_TRUE(servers.ok());
  // The bad sample is absent.
  EXPECT_TRUE(IsMissing((*servers)[0].load.ValueAtTime(86400 / 60)));

  AzureTraceOptions strict;
  strict.drop_out_of_range = false;
  EXPECT_FALSE(ImportAzureVmTrace(trace, strict).ok());
}

TEST(AzureTraceTest, RejectsMalformedRows) {
  EXPECT_FALSE(ImportAzureVmTrace("").ok());
  EXPECT_FALSE(ImportAzureVmTrace("300,vm,1,2\n").ok());          // 4 fields
  EXPECT_FALSE(ImportAzureVmTrace("300,vm,1,2,3,4\n").ok());      // 6 fields
  EXPECT_FALSE(ImportAzureVmTrace("301,vm,1,2,3\n").ok());        // cadence
  EXPECT_FALSE(ImportAzureVmTrace("x,vm,1,2,3\ny,vm,1,2,3\n").ok());
}

TEST(AzureTraceTest, ExportRoundTripsThroughNativeCsv) {
  auto servers = ImportAzureVmTrace(SampleTrace());
  ASSERT_TRUE(servers.ok());
  std::string native = ExportToTelemetryCsv(*servers);
  auto records = ParseTelemetryCsv(native);
  ASSERT_TRUE(records.ok());
  auto regrouped = GroupByServer(*records);
  ASSERT_TRUE(regrouped.ok());
  ASSERT_EQ(regrouped->size(), servers->size());
  EXPECT_EQ((*regrouped)[0].load.values(), (*servers)[0].load.values());
}

TEST(AzureTraceTest, ImportedTraceRunsThroughThePipeline) {
  // Build a 4-week trace for a handful of VMs and run the full pipeline
  // on it — real-data onboarding end to end.
  std::string text = "timestamp,vm_id,min_cpu,max_cpu,avg_cpu\n";
  for (int64_t tick = 0; tick < 4 * 7 * 288; ++tick) {
    int64_t seconds = tick * 300;
    double load = 15.0 + (tick % 288 < 60 ? -10.0 : 10.0);
    for (int vm = 0; vm < 5; ++vm) {
      text += StringPrintf("%lld,trace-vm-%d,0,0,%.2f\n",
                           static_cast<long long>(seconds), vm,
                           load + vm);
    }
  }
  auto servers = ImportAzureVmTrace(text);
  ASSERT_TRUE(servers.ok());

  auto lake = LakeStore::OpenTemporary("azure-trace");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake->Put(LakeStore::TelemetryKey("trace", 3),
                        ExportToTelemetryCsv(*servers))
                  .ok());
  DocStore docs;
  PipelineContext ctx;
  ctx.region = "trace";
  ctx.week = 3;
  ctx.lake = &*lake;
  ctx.docs = &docs;
  Pipeline pipeline = Pipeline::Standard();
  PipelineRunReport report = pipeline.Run(&ctx);
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_EQ(ctx.servers.size(), 5u);
  // The flat-with-valley VMs classify stable and are predictable.
  EXPECT_GT(ctx.stats["accuracy.predictable"], 0.0);
}

}  // namespace
}  // namespace seagull
