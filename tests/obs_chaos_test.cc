/// \file obs_chaos_test.cc
/// \brief Concurrent monitoring under fault injection: a reader thread
/// polls `Dashboard::Live()`, registry snapshots, and the trace sink
/// while an 8-way fleet run retries through injected store faults. Under
/// tsan this is the proof that fleet-health counters routed through the
/// atomic registry fixed the old read-without-sync dashboard pattern —
/// the previous design summed per-run report fields that workers were
/// still writing.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "pipeline/dashboard.h"
#include "pipeline/fleet_runner.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

constexpr int64_t kWeek = 3;

TEST(ObsChaosTest, LiveCountersReadableWhileFleetRunsUnderFaults) {
  auto lake = LakeStore::OpenTemporary("obs_chaos");
  ASSERT_TRUE(lake.ok());
  const char* const regions[] = {"chaos-a", "chaos-b", "chaos-c", "chaos-d"};
  uint64_t seed = 9300;
  for (const char* region : regions) {
    RegionConfig config;
    config.name = region;
    config.num_servers = 25;
    config.weeks = 5;
    config.seed = seed++;
    Fleet fleet = Fleet::Generate(config);
    ASSERT_TRUE(lake->Put(LakeStore::TelemetryKey(region, kWeek),
                          ExtractWeekCsvText(fleet, kWeek))
                    .ok());
  }

  MetricsRegistry::Global().Reset();
  ScopedTracing tracing;
  FaultConfig faults;
  faults.seed = 31;
  ScopedFaultInjection injection(faults);
  // Deterministic transient outages: the first two lake reads touching
  // these regions fail, forcing module retries the fleet must absorb
  // without quarantining (2 failures < 3 attempts).
  injection.registry().AddOutage("lake.get", "chaos-a", 2);
  injection.registry().AddOutage("lake.get", "chaos-c", 2);

  DocStore docs;
  FleetOptions options;
  options.jobs = 8;
  FleetRunner runner(&*lake, &docs, options);
  std::vector<FleetJob> jobs;
  for (const char* region : regions) jobs.push_back({region, kWeek});

  // The monitoring thread: hammers every concurrent read surface the
  // observability layer offers until the run completes.
  std::atomic<bool> done{false};
  std::atomic<int64_t> polls{0};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      Dashboard::LiveFleetCounters live = Dashboard::Live();
      EXPECT_GE(live.regions_run, 0);
      EXPECT_LE(live.regions_run, 4);
      EXPECT_GE(live.retries, 0);
      EXPECT_GE(live.quarantines, 0);
      MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
      for (const auto& s : snapshot.samples) {
        EXPECT_GE(s.count, 0);
      }
      TraceSink::Global().TreeDigest();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  PipelineContext config;
  FleetRunResult result = runner.Run(jobs, config);
  done.store(true, std::memory_order_release);
  monitor.join();

  ASSERT_EQ(result.SuccessCount(), 4)
      << (result.runs.empty() ? "" : result.runs[0].report.failure);
  EXPECT_GT(polls.load(), 0);

  // After the run, the live view agrees with the run result exactly.
  Dashboard::LiveFleetCounters live = Dashboard::Live();
  EXPECT_EQ(live.regions_run, 4);
  EXPECT_EQ(live.region_failures, 0);
  EXPECT_EQ(live.quarantines,
            static_cast<int64_t>(result.quarantined.size()));
  EXPECT_EQ(live.retries, result.TotalRetries());
  EXPECT_GT(live.retries, 0) << "fault rate too low to exercise retries";
}

TEST(ObsChaosTest, QuarantineCountsSurfaceInLiveView) {
  auto lake = LakeStore::OpenTemporary("obs_chaos_q");
  ASSERT_TRUE(lake.ok());
  RegionConfig config;
  config.name = "chaos-q";
  config.num_servers = 20;
  config.weeks = 5;
  config.seed = 9400;
  Fleet fleet = Fleet::Generate(config);
  ASSERT_TRUE(lake->Put(LakeStore::TelemetryKey("chaos-q", kWeek),
                        ExtractWeekCsvText(fleet, kWeek))
                  .ok());

  MetricsRegistry::Global().Reset();
  FaultConfig faults;
  faults.seed = 77;
  ScopedFaultInjection injection(faults);
  // A permanent outage on the region's telemetry reads: ingestion can
  // never succeed, retries exhaust, the fleet quarantines the region.
  injection.registry().AddOutage("lake.get", "chaos-q", /*count=*/-1);

  DocStore docs;
  FleetRunner runner(&*lake, &docs);
  PipelineContext ctx;
  FleetRunResult result = runner.Run({{"chaos-q", kWeek}}, ctx);
  ASSERT_EQ(result.FailureCount(), 1);
  ASSERT_EQ(result.quarantined.size(), 1u);

  Dashboard::LiveFleetCounters live = Dashboard::Live();
  EXPECT_EQ(live.regions_run, 1);
  EXPECT_EQ(live.region_failures, 1);
  EXPECT_EQ(live.quarantines, 1);
  EXPECT_GT(live.retries, 0);
}

}  // namespace
}  // namespace seagull
