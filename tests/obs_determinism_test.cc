/// \file obs_determinism_test.cc
/// \brief Observability must not observe differently under parallelism:
/// with the clock frozen (durations collapse to zero) and a fixed fault
/// seed, a jobs=1 and a jobs=8 fleet run produce byte-identical metrics
/// snapshots (modulo `seagull.pool.*`, which counts schedule-dependent
/// steals/queue depths by design, and `seagull.process.*`, which reads
/// kernel RSS accounting — physical-memory telemetry, like wall clock)
/// and identical span-tree digests.
///
/// This is the observability extension of the fleet determinism
/// contract: timing is observational-only, so freezing it cannot change
/// what the pipeline does — only what the histograms record.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/obs/clock.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "pipeline/fleet_runner.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

constexpr int64_t kWeek = 3;
const char* const kRegions[] = {"obs-a", "obs-b", "obs-c"};

/// Shared fixed-seed lake, schema-pre-warmed like the fleet determinism
/// suite so every observed run sees identical lake state.
const LakeStore& SharedLake() {
  static const LakeStore* lake = [] {
    auto opened = LakeStore::OpenTemporary("obs_det");
    opened.status().Abort();
    auto* owned = new LakeStore(std::move(opened).ValueUnsafe());
    uint64_t seed = 7100;
    for (const char* region : kRegions) {
      RegionConfig config;
      config.name = region;
      config.num_servers = 30;
      config.weeks = 5;
      config.seed = seed++;
      Fleet fleet = Fleet::Generate(config);
      owned->Put(LakeStore::TelemetryKey(region, kWeek),
                 ExtractWeekCsvText(fleet, kWeek))
          .Abort();
    }
    DocStore scratch;
    FleetRunner warmup(owned, &scratch);
    std::vector<FleetJob> jobs;
    for (const char* region : kRegions) jobs.push_back({region, kWeek});
    PipelineContext config;
    warmup.Run(jobs, config);
    return owned;
  }();
  return *lake;
}

struct ObservedRun {
  std::string metrics_json;  ///< snapshot minus seagull.pool.*
  std::map<std::string, int64_t> counters;
  std::vector<std::string> span_digest;
  FleetRunResult result;
};

/// One fleet run observed under frozen clock + fresh registry/sink.
/// `fault_rate > 0` enables key-deterministic fault injection, which
/// must fire identically regardless of the schedule.
ObservedRun RunObserved(int jobs, double fault_rate) {
  // Materialize the lake (and its warm-up fleet run) before zeroing the
  // registry, or the first observed run counts the warm-up's ops too.
  const LakeStore& lake = SharedLake();
  ScopedFrozenClock frozen;
  MetricsRegistry::Global().Reset();
  ScopedTracing tracing;
  FaultConfig faults;
  faults.seed = 4242;
  faults.rate = fault_rate;
  ScopedFaultInjection injection(faults);

  DocStore docs;
  FleetOptions options;
  options.jobs = jobs;
  FleetRunner runner(&lake, &docs, options);
  std::vector<FleetJob> fleet_jobs;
  for (const char* region : kRegions) fleet_jobs.push_back({region, kWeek});
  PipelineContext config;

  ObservedRun out;
  out.result = runner.Run(fleet_jobs, config);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot().Without(
      {"seagull.pool.", "seagull.process."});
  out.metrics_json = snapshot.ToJson().Dump();
  out.counters = snapshot.CounterValues();
  out.span_digest = tracing.sink().TreeDigest();
  return out;
}

void ExpectIdenticalObservations(const ObservedRun& seq,
                                 const ObservedRun& par) {
  // Counter-by-counter first: a mismatch here names the exact metric.
  ASSERT_EQ(seq.counters.size(), par.counters.size());
  for (const auto& [key, value] : seq.counters) {
    auto it = par.counters.find(key);
    ASSERT_NE(it, par.counters.end()) << "missing counter: " << key;
    EXPECT_EQ(value, it->second) << "counter diverged: " << key;
  }
  // Then the whole snapshot byte-for-byte: gauges and histogram buckets
  // included (frozen clock -> all observations land in the first
  // bucket with sum 0, identically on every schedule).
  EXPECT_EQ(seq.metrics_json, par.metrics_json);
  EXPECT_EQ(seq.span_digest, par.span_digest);
}

TEST(ObsDeterminismTest, MetricsAndSpansMatchAcrossJobsCleanRun) {
  ObservedRun seq = RunObserved(1, /*fault_rate=*/0.0);
  ObservedRun par = RunObserved(8, /*fault_rate=*/0.0);
  ASSERT_EQ(seq.result.SuccessCount(), 3);
  ASSERT_EQ(par.result.SuccessCount(), 3);
  ExpectIdenticalObservations(seq, par);
  // Sanity: the snapshot actually covered the layers, it is not
  // vacuously equal.
  EXPECT_GT(seq.counters.at("seagull.fleet.regions_run"), 0);
  EXPECT_GT(seq.counters.at("seagull.lake.ops{op=get}"), 0);
  EXPECT_GT(seq.counters.at("seagull.doc.ops{op=upsert}"), 0);
}

TEST(ObsDeterminismTest, MetricsAndSpansMatchAcrossJobsUnderFaults) {
  // Faults are a pure function of (seed, point, op key, attempt index),
  // so retry and fault counters must also agree between schedules.
  ObservedRun seq = RunObserved(1, /*fault_rate=*/0.02);
  ObservedRun par = RunObserved(8, /*fault_rate=*/0.02);
  ExpectIdenticalObservations(seq, par);
  // The fault rate is high enough to actually fire on this fleet.
  int64_t injected = 0, retries = 0;
  for (const auto& [key, value] : seq.counters) {
    if (key.rfind("seagull.fault.injected", 0) == 0) injected += value;
    if (key.rfind("seagull.pipeline.module_retries", 0) == 0) {
      retries += value;
    }
  }
  EXPECT_GT(injected, 0);
  EXPECT_GT(retries, 0);
}

TEST(ObsDeterminismTest, RepeatedParallelRunsObserveIdentically) {
  ObservedRun first = RunObserved(8, /*fault_rate=*/0.02);
  ObservedRun second = RunObserved(8, /*fault_rate=*/0.02);
  ExpectIdenticalObservations(first, second);
}

TEST(ObsDeterminismTest, FrozenClockZeroesEveryHistogram) {
  ObservedRun run = RunObserved(4, /*fault_rate=*/0.0);
  auto parsed = Json::Parse(run.metrics_json);
  ASSERT_TRUE(parsed.ok());
  const Json& histograms = (*parsed)["histograms"];
  ASSERT_TRUE(histograms.Contains(
      "seagull.pipeline.module_micros{module=ingestion}"));
  for (const auto& [key, h] : histograms.AsObject()) {
    EXPECT_DOUBLE_EQ(h.GetNumber("sum").ValueOr(-1), 0.0)
        << "non-zero duration under frozen clock: " << key;
    // Every observation is a zero-duration sample: all land in the
    // first bucket (quantiles interpolate inside it, below its edge).
    const auto& buckets = h["buckets"].AsArray();
    ASSERT_FALSE(buckets.empty());
    EXPECT_DOUBLE_EQ(buckets[0].GetNumber("count").ValueOr(-1),
                     h.GetNumber("count").ValueOr(-2))
        << key;
    EXPECT_LE(h.GetNumber("p99").ValueOr(1e18),
              buckets[0].GetNumber("le").ValueOr(0))
        << key;
  }
}

}  // namespace
}  // namespace seagull
