#include "telemetry/server_profile.h"

#include <gtest/gtest.h>

#include "telemetry/fleet.h"

namespace seagull {
namespace {

TEST(ArchetypeMixTest, DefaultIsValid) {
  ArchetypeMix mix;
  EXPECT_TRUE(mix.IsValid());
}

TEST(ArchetypeMixTest, InvalidMixes) {
  ArchetypeMix mix;
  mix.stable = 0.9;  // now sums > 1
  EXPECT_FALSE(mix.IsValid());
  ArchetypeMix negative;
  negative.short_lived = -0.1;
  negative.stable = 0.956;
  EXPECT_FALSE(negative.IsValid());
}

TEST(SampleProfileTest, Deterministic) {
  ArchetypeMix mix;
  Rng rng1(5), rng2(5);
  ServerProfile a = SampleProfile("s1", mix, 4 * kMinutesPerWeek, &rng1);
  ServerProfile b = SampleProfile("s1", mix, 4 * kMinutesPerWeek, &rng2);
  EXPECT_EQ(a.archetype, b.archetype);
  EXPECT_EQ(a.created_at, b.created_at);
  EXPECT_EQ(a.deleted_at, b.deleted_at);
  EXPECT_DOUBLE_EQ(a.base_load, b.base_load);
  EXPECT_EQ(a.backup_duration_minutes, b.backup_duration_minutes);
}

TEST(SampleProfileTest, ShortLivedFractionApproximatesMix) {
  ArchetypeMix mix;
  Rng rng(17);
  int short_lived = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ServerProfile p = SampleProfile("s" + std::to_string(i), mix,
                                    4 * kMinutesPerWeek, &rng);
    if (p.IsShortLived()) ++short_lived;
  }
  EXPECT_NEAR(static_cast<double>(short_lived) / n, mix.short_lived, 0.03);
}

TEST(SampleProfileTest, ShortLivedServersFitHorizon) {
  ArchetypeMix mix;
  mix.short_lived = 1.0;
  mix.stable = mix.daily = mix.weekly = mix.no_pattern = 0.0;
  Rng rng(3);
  const int64_t horizon = 4 * kMinutesPerWeek;
  for (int i = 0; i < 200; ++i) {
    ServerProfile p = SampleProfile("s" + std::to_string(i), mix, horizon,
                                    &rng);
    EXPECT_TRUE(p.IsShortLived());
    EXPECT_GE(p.created_at, 0);
    EXPECT_LE(p.deleted_at, horizon);
    EXPECT_LT(p.LifespanMinutes(), 3 * kMinutesPerWeek);
    EXPECT_EQ(p.created_at % kServerIntervalMinutes, 0);
  }
}

TEST(SampleProfileTest, BackupDurationOnGridAndBounded) {
  ArchetypeMix mix;
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    ServerProfile p = SampleProfile("s" + std::to_string(i), mix,
                                    4 * kMinutesPerWeek, &rng);
    EXPECT_EQ(p.backup_duration_minutes % kServerIntervalMinutes, 0);
    EXPECT_GE(p.backup_duration_minutes, 30);
    EXPECT_LE(p.backup_duration_minutes, 360);
    EXPECT_GE(p.default_backup_start_minute, 0);
    EXPECT_LT(p.default_backup_start_minute, kMinutesPerDay);
  }
}

TEST(SampleProfileTest, SaturatingTailIsSmall) {
  ArchetypeMix mix;
  Rng rng(29);
  int saturating = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ServerProfile p = SampleProfile("s" + std::to_string(i), mix,
                                    4 * kMinutesPerWeek, &rng);
    if (p.saturating) ++saturating;
  }
  // Paper: 3.7% of servers reach CPU capacity (Figure 13(b)).
  EXPECT_NEAR(static_cast<double>(saturating) / n, 0.037, 0.01);
}

TEST(SampleProfileTest, WeeklyPatternHasWeekendScale) {
  ArchetypeMix mix;
  mix.short_lived = 0.0;
  mix.stable = 0.0;
  mix.daily = 0.0;
  mix.weekly = 1.0;
  mix.no_pattern = 0.0;
  Rng rng(31);
  ServerProfile p = SampleProfile("w1", mix, 4 * kMinutesPerWeek, &rng);
  EXPECT_EQ(p.archetype, ServerArchetype::kWeeklyPattern);
  // Weekend scales differ from weekday scales.
  EXPECT_LT(p.day_scale[5], 0.5);
  EXPECT_LT(p.day_scale[6], 0.5);
  EXPECT_GT(p.day_scale[0], 0.5);
}

TEST(ArchetypeNameTest, AllNamed) {
  EXPECT_STREQ(ServerArchetypeName(ServerArchetype::kStable), "stable");
  EXPECT_STREQ(ServerArchetypeName(ServerArchetype::kDailyPattern), "daily");
  EXPECT_STREQ(ServerArchetypeName(ServerArchetype::kWeeklyPattern),
               "weekly");
  EXPECT_STREQ(ServerArchetypeName(ServerArchetype::kNoPattern),
               "no_pattern");
}

TEST(FleetTest, GenerateDeterministicAndNamed) {
  RegionConfig config;
  config.name = "test-region";
  config.num_servers = 10;
  config.seed = 99;
  Fleet a = Fleet::Generate(config);
  Fleet b = Fleet::Generate(config);
  ASSERT_EQ(a.size(), 10);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.servers()[static_cast<size_t>(i)].server_id,
              b.servers()[static_cast<size_t>(i)].server_id);
    EXPECT_EQ(a.servers()[static_cast<size_t>(i)].seed,
              b.servers()[static_cast<size_t>(i)].seed);
  }
  EXPECT_NE(a.Find("test-region-srv-00003"), nullptr);
  EXPECT_EQ(a.Find("missing"), nullptr);
}

TEST(FleetTest, EvaluationRegionsScale) {
  auto regions = MakeEvaluationRegions(1.0);
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_LT(regions[0].num_servers, regions[3].num_servers);
  auto scaled = MakeEvaluationRegions(0.5);
  EXPECT_EQ(scaled[3].num_servers, regions[3].num_servers / 2);
}

}  // namespace
}  // namespace seagull
