#include "forecast/ssa.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "metrics/standard.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

// One week of a daily sinusoid on the 5-minute grid.
LoadSeries DailySine(double mean, double amplitude, int64_t days,
                     double noise = 0.0, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(days) * 288);
  for (int64_t i = 0; i < days * 288; ++i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    double v = mean + amplitude * std::sin(kTwoPi * phase);
    if (noise > 0) v += rng.Gaussian(0.0, noise);
    values.push_back(v);
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(SsaTest, RecoversCleanSinusoid) {
  LoadSeries train = DailySine(30.0, 10.0, 7);
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  LoadSeries truth = DailySine(30.0, 10.0, 8).Slice(
      7 * kMinutesPerDay, 8 * kMinutesPerDay);
  double rmse = RootMeanSquaredError(*forecast, truth);
  EXPECT_LT(rmse, 1.0);
}

TEST(SsaTest, HandlesNoisySinusoid) {
  LoadSeries train = DailySine(30.0, 10.0, 7, 1.0);
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  LoadSeries truth = DailySine(30.0, 10.0, 8, 0.0).Slice(
      7 * kMinutesPerDay, 8 * kMinutesPerDay);
  double rmse = RootMeanSquaredError(*forecast, truth);
  EXPECT_LT(rmse, 4.0);
}

TEST(SsaTest, FlatSeriesForecastsMean) {
  std::vector<double> flat(2016, 25.0);
  LoadSeries train =
      std::move(LoadSeries::Make(0, 5, std::move(flat))).ValueOrDie();
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, kMinutesPerWeek, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); i += 7) {
    EXPECT_NEAR(forecast->ValueAt(i), 25.0, 0.5);
  }
}

TEST(SsaTest, ForecastBeforeFitFails) {
  SsaForecast model;
  LoadSeries any = DailySine(10, 1, 1);
  EXPECT_TRUE(model.Forecast(any, kMinutesPerDay, kMinutesPerDay)
                  .status()
                  .IsFailedPrecondition());
}

TEST(SsaTest, TooLittleHistoryFails) {
  auto tiny = LoadSeries::Make(0, 5, {1.0, 2.0});
  SsaForecast model;
  EXPECT_FALSE(model.Fit(*tiny).ok());
}

TEST(SsaTest, ToleratesMissingSamples) {
  LoadSeries train = DailySine(30.0, 10.0, 7);
  for (int64_t i = 100; i < 160; ++i) train.SetValue(i, kMissingValue);
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  EXPECT_TRUE(forecast.ok());
}

TEST(SsaTest, OutputsNonNegativeBoundedValues) {
  LoadSeries train = DailySine(5.0, 10.0, 7, 2.0);  // dips below zero pre-clamp
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_GE(forecast->ValueAt(i), 0.0);
    EXPECT_LE(forecast->ValueAt(i), 300.0);
  }
}

TEST(SsaTest, SerializationRoundTrip) {
  LoadSeries train = DailySine(30.0, 10.0, 7);
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto doc = model.Serialize();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->GetString("model"), "ssa");

  SsaForecast restored;
  ASSERT_TRUE(restored.Deserialize(*doc).ok());
  auto f1 = model.Forecast(train, 7 * kMinutesPerDay, 2 * 60);
  auto f2 = restored.Forecast(train, 7 * kMinutesPerDay, 2 * 60);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9);
  }
}

TEST(SsaTest, SerializeBeforeFitFails) {
  SsaForecast model;
  EXPECT_TRUE(model.Serialize().status().IsFailedPrecondition());
}

TEST(SsaTest, RankIsBounded) {
  LoadSeries train = DailySine(30.0, 10.0, 7, 2.0);
  SsaOptions options;
  options.max_components = 5;
  SsaForecast model(options);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_LE(model.rank(), 5);
  EXPECT_GE(model.rank(), 1);
}

TEST(SsaTest, ShortSeriesShrinksWindow) {
  // 3 days only; default window 72 fits (2*72-1 < 864).
  LoadSeries train = DailySine(20.0, 5.0, 3);
  SsaForecast model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 3 * kMinutesPerDay, kMinutesPerDay);
  EXPECT_TRUE(forecast.ok());
}

}  // namespace
}  // namespace seagull
