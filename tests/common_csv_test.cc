#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace seagull {
namespace {

TEST(CsvTest, ParseSimple) {
  auto t = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->rows[1][2], "6");
}

TEST(CsvTest, ParseWithoutTrailingNewline) {
  auto t = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->rows[0][1], "2");
}

TEST(CsvTest, ParseCrLf) {
  auto t = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->rows[0][0], "1");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto t = ParseCsv("name,note\nx,\"a, b\"\ny,\"line1\nline2\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][1], "a, b");
  EXPECT_EQ(t->rows[1][1], "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto t = ParseCsv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], "he said \"hi\"");
}

TEST(CsvTest, RowArityMismatchFails) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"open\n").ok());
}

TEST(CsvTest, EmptyDocumentFails) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, WriteQuotesWhenNeeded) {
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"x", "plain"}, {"y", "has,comma"}, {"z", "has\"quote"}};
  std::string text = WriteCsv(t);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows[1][1], "has,comma");
  EXPECT_EQ(parsed->rows[2][1], "has\"quote");
}

TEST(CsvTest, RoundTripPreservesEverything) {
  CsvTable t;
  t.header = {"a", "weird header, quoted"};
  t.rows = {{"", "empty first"}, {"multi\nline", "x"}};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, t.header);
  EXPECT_EQ(parsed->rows, t.rows);
}

TEST(CsvTest, ColumnIndex) {
  CsvTable t;
  t.header = {"a", "b", "c"};
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "seagull_csv_test.csv")
          .string();
  CsvTable t;
  t.header = {"x"};
  t.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, t.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/dir/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace seagull
