#include "timeseries/resample.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

LoadSeries MakeSeries(std::vector<double> values, int64_t interval = 5) {
  return std::move(LoadSeries::Make(0, interval, std::move(values)))
      .ValueOrDie();
}

TEST(ResampleTest, DownsampleAverages) {
  // 5-min to 15-min: buckets of 3.
  LoadSeries s = MakeSeries({1, 2, 3, 10, 11, 12});
  auto d = Downsample(s, 15);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->interval_minutes(), 15);
  EXPECT_EQ(d->size(), 2);
  EXPECT_DOUBLE_EQ(d->ValueAt(0), 2.0);
  EXPECT_DOUBLE_EQ(d->ValueAt(1), 11.0);
}

TEST(ResampleTest, DownsampleSkipsMissingWithinBucket) {
  LoadSeries s = MakeSeries({1, kMissingValue, 3});
  auto d = Downsample(s, 15);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->ValueAt(0), 2.0);
}

TEST(ResampleTest, DownsampleAllMissingBucketStaysMissing) {
  LoadSeries s = MakeSeries(
      {kMissingValue, kMissingValue, kMissingValue, 6, 6, 6});
  auto d = Downsample(s, 15);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->MissingAt(0));
  EXPECT_DOUBLE_EQ(d->ValueAt(1), 6.0);
}

TEST(ResampleTest, DownsampleSameIntervalIsIdentity) {
  LoadSeries s = MakeSeries({1, 2, 3});
  auto d = Downsample(s, 5);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->values(), s.values());
}

TEST(ResampleTest, DownsampleRejectsBadIntervals) {
  LoadSeries s = MakeSeries({1, 2, 3});
  EXPECT_FALSE(Downsample(s, 7).ok());    // not a multiple of 5
  EXPECT_FALSE(Downsample(s, 13 * 5).ok());  // doesn't divide a day... 65 min
}

TEST(ResampleTest, DownsamplePreservesMeanWhenComplete) {
  std::vector<double> v(288);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i % 17);
  LoadSeries s = MakeSeries(v);
  auto d = Downsample(s, 60);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Mean(), s.Mean(), 1e-9);
}

TEST(ResampleTest, InterpolateFillsInteriorGapLinearly) {
  LoadSeries s = MakeSeries({0, kMissingValue, kMissingValue, 3});
  LoadSeries f = InterpolateMissing(s);
  EXPECT_DOUBLE_EQ(f.ValueAt(1), 1.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(2), 2.0);
  EXPECT_EQ(f.CountMissing(), 0);
}

TEST(ResampleTest, InterpolateFillsEdgesWithNearest) {
  LoadSeries s = MakeSeries({kMissingValue, 5, kMissingValue});
  LoadSeries f = InterpolateMissing(s);
  EXPECT_DOUBLE_EQ(f.ValueAt(0), 5.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(2), 5.0);
}

TEST(ResampleTest, InterpolateAllMissingUnchanged) {
  auto s = LoadSeries::MakeEmpty(0, 5, 3);
  LoadSeries f = InterpolateMissing(*s);
  EXPECT_EQ(f.CountPresent(), 0);
}

TEST(ResampleTest, InterpolateCompleteSeriesUnchanged) {
  LoadSeries s = MakeSeries({1, 2, 3});
  LoadSeries f = InterpolateMissing(s);
  EXPECT_EQ(f.values(), s.values());
}

TEST(ResampleTest, ClampValues) {
  LoadSeries s = MakeSeries({-5, 50, 150, kMissingValue});
  LoadSeries c = ClampValues(s, 0, 100);
  EXPECT_DOUBLE_EQ(c.ValueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(c.ValueAt(1), 50.0);
  EXPECT_DOUBLE_EQ(c.ValueAt(2), 100.0);
  EXPECT_TRUE(c.MissingAt(3));
}

}  // namespace
}  // namespace seagull
