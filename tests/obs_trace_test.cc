/// \file obs_trace_test.cc
/// \brief Tracing substrate: span nesting via the thread-local cursor,
/// explicit cross-thread parenting, bounded-capacity dropping, args,
/// the structural TreeDigest, and the Chrome trace_event JSON exporter
/// (round-tripped through common/json the way chrome://tracing would
/// parse it).

#include "common/obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/clock.h"

namespace seagull {
namespace {

const TraceEvent* FindByName(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(TraceTest, DisabledSinkCostsNothingAndRecordsNothing) {
  TraceSink::Global().Disable();
  TraceSink::Global().Clear();
  {
    ScopedSpan span("trace.disabled");
    EXPECT_EQ(span.id(), 0);
    span.AddArg("k", "v");  // safe no-op
    EXPECT_EQ(ScopedSpan::Current(), 0);
  }
  EXPECT_EQ(TraceSink::Global().EventCount(), 0);
}

TEST(TraceTest, NestsUnderThreadLocalCursor) {
  ScopedTracing tracing;
  int64_t outer_id = 0, inner_id = 0;
  {
    ScopedSpan outer("trace.outer");
    outer_id = outer.id();
    EXPECT_GT(outer_id, 0);
    EXPECT_EQ(ScopedSpan::Current(), outer_id);
    {
      ScopedSpan inner("trace.inner", "test");
      inner_id = inner.id();
      EXPECT_EQ(ScopedSpan::Current(), inner_id);
    }
    // The cursor restores to the enclosing span after a child closes.
    EXPECT_EQ(ScopedSpan::Current(), outer_id);
  }
  EXPECT_EQ(ScopedSpan::Current(), 0);

  std::vector<TraceEvent> events = tracing.sink().Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = FindByName(events, "trace.outer");
  const TraceEvent* inner = FindByName(events, "trace.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0);
  EXPECT_EQ(outer->root_id, outer->id);
  EXPECT_EQ(inner->parent_id, outer->id);
  EXPECT_EQ(inner->root_id, outer->id);
  EXPECT_EQ(inner->category, "test");
}

TEST(TraceTest, ExplicitParentStitchesAcrossThreads) {
  ScopedTracing tracing;
  int64_t parent_id = 0;
  {
    ScopedSpan parent("trace.fleet");
    parent_id = parent.id();
    std::thread worker([parent_id] {
      // Fresh thread: the TLS cursor is empty, so only the explicit id
      // can connect this span to the tree.
      EXPECT_EQ(ScopedSpan::Current(), 0);
      ScopedSpan child("trace.region", "fleet", parent_id);
      EXPECT_GT(child.id(), 0);
    });
    worker.join();
  }
  std::vector<TraceEvent> events = tracing.sink().Events();
  const TraceEvent* child = FindByName(events, "trace.region");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->parent_id, parent_id);
  EXPECT_EQ(child->root_id, parent_id);
}

TEST(TraceTest, ClosedParentDegradesToRoot) {
  ScopedTracing tracing;
  int64_t stale_id = 0;
  { ScopedSpan ephemeral("trace.gone"); stale_id = ephemeral.id(); }
  {
    ScopedSpan orphan("trace.orphan", "test", stale_id);
    EXPECT_GT(orphan.id(), 0);
  }
  std::vector<TraceEvent> events = tracing.sink().Events();
  const TraceEvent* orphan = FindByName(events, "trace.orphan");
  ASSERT_NE(orphan, nullptr);
  EXPECT_EQ(orphan->parent_id, 0);  // not a dangling edge
  EXPECT_EQ(orphan->root_id, orphan->id);
}

TEST(TraceTest, ArgsTravelToTheCompletedEvent) {
  ScopedTracing tracing;
  {
    ScopedSpan span("trace.args");
    span.AddArg("attempts", "3");
    span.AddArg("failed", "true");
  }
  std::vector<TraceEvent> events = tracing.sink().Events();
  const TraceEvent* e = FindByName(events, "trace.args");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->args.size(), 2u);
  EXPECT_EQ(e->args[0].first, "attempts");
  EXPECT_EQ(e->args[0].second, "3");
}

TEST(TraceTest, SinkIsBoundedAndCountsDrops) {
  ScopedTracing tracing;
  constexpr int64_t kCapacity = 1 << 16;
  constexpr int64_t kExtra = 100;
  for (int64_t i = 0; i < kCapacity + kExtra; ++i) {
    ScopedSpan span("trace.flood");
  }
  EXPECT_EQ(tracing.sink().EventCount(), kCapacity);
  EXPECT_EQ(tracing.sink().dropped(), kExtra);
  tracing.sink().Clear();
  EXPECT_EQ(tracing.sink().EventCount(), 0);
  EXPECT_EQ(tracing.sink().dropped(), 0);
}

TEST(TraceTest, ChromeTraceJsonRoundTrip) {
  ScopedFrozenClock frozen(1000);  // stable ts/dur in the output
  ScopedTracing tracing;
  {
    ScopedSpan root("trace.root", "fleet");
    ScopedSpan child("trace.child", "pipeline");
    child.AddArg("attempts", "1");
  }
  auto parsed = Json::Parse(tracing.sink().ToChromeTrace().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("displayTimeUnit").ValueOr(""), "ms");
  ASSERT_TRUE(parsed->Contains("traceEvents"));
  const auto& events = (*parsed)["traceEvents"].AsArray();
  // One thread_name metadata record for the tree plus two X events.
  ASSERT_EQ(events.size(), 3u);

  std::map<std::string, const Json*> by_name;
  int metadata = 0;
  for (const auto& e : events) {
    const std::string ph = e.GetString("ph").ValueOr("");
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.GetString("name").ValueOr(""), "thread_name");
      EXPECT_EQ(e["args"].GetString("name").ValueOr(""), "trace.root");
      continue;
    }
    EXPECT_EQ(ph, "X");
    EXPECT_DOUBLE_EQ(e.GetNumber("ts").ValueOr(-1), 0.0);   // rebased
    EXPECT_DOUBLE_EQ(e.GetNumber("dur").ValueOr(-1), 0.0);  // frozen clock
    by_name[e.GetString("name").ValueOr("")] = &e;
  }
  EXPECT_EQ(metadata, 1);
  ASSERT_TRUE(by_name.count("trace.root"));
  ASSERT_TRUE(by_name.count("trace.child"));
  const Json& root = *by_name["trace.root"];
  const Json& child = *by_name["trace.child"];
  // Both events render on the root's track; parentage rides in args.
  EXPECT_DOUBLE_EQ(root.GetNumber("tid").ValueOr(-1),
                   child.GetNumber("tid").ValueOr(-2));
  EXPECT_DOUBLE_EQ(child["args"].GetNumber("parent_id").ValueOr(-1),
                   root["args"].GetNumber("span_id").ValueOr(-2));
  EXPECT_EQ(child.GetString("cat").ValueOr(""), "pipeline");
  EXPECT_EQ(child["args"].GetString("attempts").ValueOr(""), "1");
}

TEST(TraceTest, TreeDigestIsStructuralAndSorted) {
  auto build = [] {
    ScopedTracing tracing;
    {
      ScopedSpan root("d.root");
      { ScopedSpan a("d.a"); }
      { ScopedSpan b("d.b"); b.AddArg("failed", "true"); }
    }
    return TraceSink::Global().TreeDigest();
  };
  std::vector<std::string> first = build();
  std::vector<std::string> second = build();
  // Identical structure (different span ids each time) digests equal.
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], "- > d.root");
  EXPECT_EQ(first[1], "d.root > d.a");
  EXPECT_EQ(first[2], "d.root > d.b failed=true");
}

}  // namespace
}  // namespace seagull
