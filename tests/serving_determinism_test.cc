/// \file serving_determinism_test.cc
/// \brief The serving engine's determinism contract, with and without
/// fault injection.
///
/// With a frozen clock and a fixed request schedule, the response set
/// (FNV digest over (seq, response) pairs in schedule order) and the
/// final fleet snapshot must be byte-identical at jobs=1 and jobs=8:
/// responses depend only on (request, tick epoch), pending increments
/// merge in explicit seq order, and refits write only their own
/// server's state. The chaos variant layers the `serving.refit` fault
/// point on top — fault decisions key on the server id, so the injected
/// failure set is equally schedule-independent.

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/obs/clock.h"
#include "serving/loadgen.h"
#include "serving_test_util.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

std::vector<ServerTelemetry> GeneratedTails(int servers, uint64_t seed) {
  RegionConfig config;
  config.name = "det";
  config.num_servers = servers;
  config.weeks = 1;
  config.seed = seed;
  Fleet fleet = Fleet::Generate(config);
  std::vector<ServerTelemetry> tails;
  for (const auto& profile : fleet.servers()) {
    tails.push_back(MakeTail(profile.server_id,
                             fleet.ObservedLoad(profile, 0,
                                                kMinutesPerWeek)));
  }
  return tails;
}

struct RunOutcome {
  LoadgenReport report;
  std::string snapshot;
};

/// One full load-test run at the given concurrency. `fault_rate > 0`
/// enables the serving.refit fault point for the run's duration;
/// `mixed_verbs` turns on the PR 8 verbs (batch predict + subscription
/// churn) so the digest also covers snapshot reads and notifications.
RunOutcome RunOnce(DriverMode mode, int jobs, double fault_rate,
                   bool mixed_verbs = false) {
  ScopedFrozenClock frozen;
  std::unique_ptr<ScopedFaultInjection> faults;
  if (fault_rate > 0.0) {
    FaultConfig config;
    config.seed = 5;
    config.rate = 0.0;  // only the serving.refit point faults
    faults = std::make_unique<ScopedFaultInjection>(config);
    faults->registry().SetPointRate("serving.refit", fault_rate);
  }

  const std::vector<ServerTelemetry> tails = GeneratedTails(60, 11);
  std::vector<std::string> ids;
  for (const auto& st : tails) ids.push_back(st.server_id);

  std::unique_ptr<ThreadPool> pool;
  ServingOptions serving;
  if (jobs > 1) {
    pool = std::make_unique<ThreadPool>(jobs);
    serving.pool = pool.get();
  }
  ServingEngine engine(MakePrevDayEndpoint(), serving);
  engine.Bootstrap(tails).Abort();
  engine.Tick();

  LoadgenOptions options;
  options.profile = LoadProfile::kSoak;
  options.mode = mode;
  options.seed = 9;
  options.ticks = 6;
  options.base_requests_per_tick =
      mode == DriverMode::kOpenLoop ? 120 : 30;
  options.closed_loop_clients = 4;
  options.epoch_start = kMinutesPerWeek;
  options.jobs = jobs;
  if (mixed_verbs) {
    options.predict_fraction = 0.45;
    options.ll_window_fraction = 0.15;
    options.batch_fraction = 0.10;
    options.batch_size = 6;
    options.subscribe_fraction = 0.10;
  }

  RunOutcome outcome;
  outcome.report =
      RunLoadTest(&engine, options, BuildSchedule(options, ids));
  outcome.snapshot = engine.SnapshotText();
  return outcome;
}

TEST(ServingDeterminismTest, OpenLoopIdenticalAcrossJobs) {
  RunOutcome sequential = RunOnce(DriverMode::kOpenLoop, 1, 0.0);
  RunOutcome parallel = RunOnce(DriverMode::kOpenLoop, 8, 0.0);
  EXPECT_EQ(sequential.report.response_digest,
            parallel.report.response_digest);
  EXPECT_EQ(sequential.snapshot, parallel.snapshot);
  EXPECT_EQ(sequential.report.errors, parallel.report.errors);
  EXPECT_GT(sequential.report.requests, 0);
}

TEST(ServingDeterminismTest, ClosedLoopIdenticalAcrossJobs) {
  RunOutcome sequential = RunOnce(DriverMode::kClosedLoop, 1, 0.0);
  RunOutcome parallel = RunOnce(DriverMode::kClosedLoop, 8, 0.0);
  EXPECT_EQ(sequential.report.response_digest,
            parallel.report.response_digest);
  EXPECT_EQ(sequential.snapshot, parallel.snapshot);
}

TEST(ServingDeterminismTest, IdenticalUnderFaultInjection) {
  RunOutcome sequential = RunOnce(DriverMode::kOpenLoop, 1, 0.10);
  RunOutcome parallel = RunOnce(DriverMode::kOpenLoop, 8, 0.10);
  // The faults actually fired, and fired identically: failed refits
  // keep the stale forecast, so divergent fault sets would diverge the
  // snapshots (and any response served off a wrongly-stale forecast).
  EXPECT_GT(sequential.report.refit_failures, 0);
  EXPECT_EQ(sequential.report.refit_failures,
            parallel.report.refit_failures);
  EXPECT_EQ(sequential.report.response_digest,
            parallel.report.response_digest);
  EXPECT_EQ(sequential.snapshot, parallel.snapshot);
}

TEST(ServingDeterminismTest, MixedVerbsIdenticalAcrossJobs) {
  // The PR 8 verbs ride the same contract: batch predicts answer from
  // one published snapshot and subscription records fire on the tick
  // thread, so the folded notification digest must also match.
  RunOutcome sequential =
      RunOnce(DriverMode::kOpenLoop, 1, 0.0, /*mixed_verbs=*/true);
  RunOutcome parallel =
      RunOnce(DriverMode::kOpenLoop, 8, 0.0, /*mixed_verbs=*/true);
  EXPECT_EQ(sequential.report.response_digest,
            parallel.report.response_digest);
  EXPECT_EQ(sequential.snapshot, parallel.snapshot);
  EXPECT_EQ(sequential.report.predictions, parallel.report.predictions);
  EXPECT_EQ(sequential.report.notifications,
            parallel.report.notifications);
  // The mixed schedule actually exercised the new verbs.
  EXPECT_GT(sequential.report.latency.count("batch_predict"), 0u);
  EXPECT_GT(sequential.report.latency.count("subscribe_ll"), 0u);
  EXPECT_GT(sequential.report.predictions, sequential.report.requests);
}

TEST(ServingDeterminismTest, MixedVerbsIdenticalUnderFaultInjection) {
  RunOutcome sequential =
      RunOnce(DriverMode::kOpenLoop, 1, 0.10, /*mixed_verbs=*/true);
  RunOutcome parallel =
      RunOnce(DriverMode::kOpenLoop, 8, 0.10, /*mixed_verbs=*/true);
  EXPECT_GT(sequential.report.refit_failures, 0);
  EXPECT_EQ(sequential.report.refit_failures,
            parallel.report.refit_failures);
  EXPECT_EQ(sequential.report.response_digest,
            parallel.report.response_digest);
  EXPECT_EQ(sequential.snapshot, parallel.snapshot);
  EXPECT_EQ(sequential.report.notifications,
            parallel.report.notifications);
}

TEST(ServingDeterminismTest, FaultFreeAndFaultedRunsDiverge) {
  // Sanity check that the digest is sensitive at all: the chaos run
  // must not accidentally equal the clean run.
  RunOutcome clean = RunOnce(DriverMode::kOpenLoop, 1, 0.0);
  RunOutcome faulted = RunOnce(DriverMode::kOpenLoop, 1, 0.10);
  EXPECT_NE(clean.snapshot, faulted.snapshot);
}

}  // namespace
}  // namespace seagull
