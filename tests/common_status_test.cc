#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::Invalid("x").IsInvalid());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::Invalid("bad arg").message(), "bad arg");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("blob missing").ToString(),
            "NotFound: blob missing");
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IOError("disk full").WithContext("writing snapshot");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "writing snapshot: disk full");
  // No-op on OK.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::NotFound("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // shares state
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::Invalid("negative");
  return Status::OK();
}

Status Chain(int x) {
  SEAGULL_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalid());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueUnsafe();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SEAGULL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalid());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalid());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace seagull
