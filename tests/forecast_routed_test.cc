#include "forecast/routed.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

LoadSeries FlatWeek(double level, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    values.push_back(level + rng.Gaussian(0.0, noise));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

LoadSeries DailyWeek(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    values.push_back(15.0 +
                     30.0 * std::exp(-std::pow((phase - 0.45) * 8, 2)) +
                     rng.Gaussian(0.0, 1.0));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

LoadSeries ChaoticWeek(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  double level = 25.0;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    if (i % 288 == 0) level = rng.Uniform(5.0, 55.0);
    values.push_back(level + rng.Gaussian(0.0, 2.0));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(RoutedTest, StableSeriesRoutesToWeekAverage) {
  RoutedForecast model;
  ASSERT_TRUE(model.Fit(FlatWeek(20.0, 1.0, 1)).ok());
  EXPECT_EQ(model.routed_class(), ServerClass::kStable);
  EXPECT_EQ(model.delegate_family(), "persistent_week_avg");
}

TEST(RoutedTest, DailyPatternRoutesToPreviousDay) {
  RoutedForecast model;
  ASSERT_TRUE(model.Fit(DailyWeek(2)).ok());
  EXPECT_EQ(model.routed_class(), ServerClass::kDailyPattern);
  EXPECT_EQ(model.delegate_family(), "persistent_prev_day");
}

TEST(RoutedTest, ChaoticSeriesRoutesToUnstableFamily) {
  RoutedForecast model;
  ASSERT_TRUE(model.Fit(ChaoticWeek(3)).ok());
  EXPECT_EQ(model.routed_class(), ServerClass::kNoPattern);
  EXPECT_EQ(model.delegate_family(), "ssa");
}

TEST(RoutedTest, ForecastDelegates) {
  RoutedForecast model;
  LoadSeries train = FlatWeek(25.0, 0.8, 4);
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  // Week-average delegate: flat forecast at the mean.
  for (int64_t i = 0; i < forecast->size(); i += 17) {
    EXPECT_NEAR(forecast->ValueAt(i), 25.0, 1.0);
  }
}

TEST(RoutedTest, ForecastBeforeFitFails) {
  RoutedForecast model;
  LoadSeries any = FlatWeek(10.0, 1.0, 5);
  EXPECT_TRUE(model.Forecast(any, 0, kMinutesPerDay)
                  .status()
                  .IsFailedPrecondition());
}

TEST(RoutedTest, CustomRoutingTable) {
  RoutedOptions options;
  options.stable_family = "persistent_prev_day";
  RoutedForecast model(options);
  ASSERT_TRUE(model.Fit(FlatWeek(20.0, 1.0, 6)).ok());
  EXPECT_EQ(model.delegate_family(), "persistent_prev_day");
}

TEST(RoutedTest, SerializationRoundTripKeepsDelegate) {
  RoutedForecast model;
  LoadSeries train = ChaoticWeek(7);
  ASSERT_TRUE(model.Fit(train).ok());
  Json doc = std::move(model.Serialize()).ValueOrDie();
  EXPECT_EQ(doc["model"].AsString(), "routed");

  auto restored = ModelFactory::Global().Restore(doc);
  ASSERT_TRUE(restored.ok());
  auto f1 = model.Forecast(train, 7 * kMinutesPerDay, 120);
  auto f2 = (*restored)->Forecast(train, 7 * kMinutesPerDay, 120);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9);
  }
}

TEST(RoutedTest, DeserializeRejectsCorruptDocs) {
  RoutedForecast model;
  Json bad = Json::MakeObject();
  bad["routed_class"] = 99;
  EXPECT_FALSE(model.Deserialize(bad).ok());
  Json no_delegate = Json::MakeObject();
  no_delegate["routed_class"] = 1;
  EXPECT_FALSE(model.Deserialize(no_delegate).ok());
}

TEST(RoutedTest, RegisteredInGlobalFactory) {
  auto model = ModelFactory::Global().Create("routed");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "routed");
  EXPECT_TRUE((*model)->requires_training());
}

TEST(RoutedTest, TooLittleHistoryFails) {
  RoutedForecast model;
  auto tiny = LoadSeries::Make(0, 5, {1.0, 2.0});
  EXPECT_FALSE(model.Fit(*tiny).ok());
}

}  // namespace
}  // namespace seagull
