#include "scheduling/backup_engine.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

LoadSeries FlatLoad(double level, int64_t ticks, MinuteStamp start = 0) {
  return std::move(LoadSeries::Make(
                       start, 5,
                       std::vector<double>(static_cast<size_t>(ticks),
                                           level)))
      .ValueOrDie();
}

TEST(BackupEngineTest, IdleServerRunsAtPlannedSpeed) {
  LoadSeries idle = FlatLoad(0.0, 288);
  // 6000 MB at 100 MB/min = 60 minutes planned.
  auto run = SimulateBackup(idle, 0, 6000.0);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->completed);
  EXPECT_DOUBLE_EQ(run->planned_minutes, 60.0);
  EXPECT_NEAR(run->actual_minutes(), 60.0, 5.0);
  EXPECT_NEAR(run->Stretch(), 1.0, 0.1);
  EXPECT_NEAR(run->avg_overlapped_load, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(run->contended_minutes, 0.0);
}

TEST(BackupEngineTest, BusyServerStretchesBackup) {
  LoadSeries busy = FlatLoad(70.0, 288);
  auto run = SimulateBackup(busy, 0, 6000.0);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->completed);
  // At 70% load the backup gets a 30% share: ~3.3x stretch.
  EXPECT_GT(run->Stretch(), 2.5);
  EXPECT_LT(run->Stretch(), 4.5);
  EXPECT_NEAR(run->avg_overlapped_load, 70.0, 1.0);
  EXPECT_GT(run->contended_minutes, 100.0);
}

TEST(BackupEngineTest, MinShareBoundsStarvation) {
  LoadSeries pegged = FlatLoad(100.0, 2000);
  BackupEngineConfig config;
  config.min_share = 0.25;
  auto run = SimulateBackup(pegged, 0, 6000.0, config);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->completed);
  EXPECT_NEAR(run->Stretch(), 4.0, 0.5);  // 1/0.25
}

TEST(BackupEngineTest, TimesOutOnEndlessContention) {
  LoadSeries pegged = FlatLoad(100.0, 30 * 288);
  BackupEngineConfig config;
  config.min_share = 0.01;
  config.max_duration_minutes = 600;
  // 60000 MB at 1 MB/min effective would need 60000 minutes.
  auto run = SimulateBackup(pegged, 0, 60000.0, config);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->completed);
  EXPECT_EQ(run->end - run->start, 600);
}

TEST(BackupEngineTest, ValleyPlacementBeatsPeakPlacement) {
  // Day with an idle night and a busy afternoon.
  std::vector<double> day(288);
  for (int64_t i = 0; i < 288; ++i) {
    day[static_cast<size_t>(i)] = (i < 60) ? 3.0 : 75.0;
  }
  LoadSeries load =
      std::move(LoadSeries::Make(0, 5, std::move(day))).ValueOrDie();
  auto night = SimulateBackup(load, 0, 4000.0);
  auto afternoon = SimulateBackup(load, 14 * 60, 4000.0);
  ASSERT_TRUE(night.ok());
  ASSERT_TRUE(afternoon.ok());
  EXPECT_LT(night->Stretch(), 1.2);
  EXPECT_GT(afternoon->Stretch(), 2.0);
  EXPECT_LT(night->contended_minutes, 1.0);
  EXPECT_GT(afternoon->contended_minutes, 60.0);
}

TEST(BackupEngineTest, MissingTelemetryTreatedAsIdle) {
  auto gaps = LoadSeries::MakeEmpty(0, 5, 288);
  auto run = SimulateBackup(*gaps, 0, 3000.0);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->completed);
  EXPECT_NEAR(run->Stretch(), 1.0, 0.2);
}

TEST(BackupEngineTest, InvalidInputsRejected) {
  LoadSeries idle = FlatLoad(0.0, 288);
  EXPECT_TRUE(SimulateBackup(idle, 0, -5.0).status().IsInvalid());
  EXPECT_TRUE(SimulateBackup(idle, 3, 100.0).status().IsInvalid());
  BackupEngineConfig bad;
  bad.idle_throughput_mb_per_min = 0.0;
  EXPECT_TRUE(SimulateBackup(idle, 0, 100.0, bad).status().IsInvalid());
}

TEST(BackupEngineTest, PlannedMinutes) {
  BackupEngineConfig config;
  EXPECT_DOUBLE_EQ(PlannedMinutes(6000.0, config), 60.0);
  config.idle_throughput_mb_per_min = 0.0;
  EXPECT_DOUBLE_EQ(PlannedMinutes(6000.0, config), 0.0);
}

}  // namespace
}  // namespace seagull
