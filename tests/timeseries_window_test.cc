#include "timeseries/window.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

LoadSeries MakeSeries(std::vector<double> values) {
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(WindowTest, FindsObviousValley) {
  // Valley of 0s at indices 4..5.
  LoadSeries s = MakeSeries({9, 9, 9, 9, 0, 0, 9, 9});
  WindowResult w = FindMinAverageWindow(s, 10);  // 2 ticks
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.start, 20);
  EXPECT_DOUBLE_EQ(w.average_load, 0.0);
  EXPECT_EQ(w.end(), 30);
}

TEST(WindowTest, TieResolvesToEarliest) {
  LoadSeries s = MakeSeries({1, 1, 5, 1, 1});
  WindowResult w = FindMinAverageWindow(s, 10);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.start, 0);
}

TEST(WindowTest, WholeSeriesWindow) {
  LoadSeries s = MakeSeries({1, 2, 3});
  WindowResult w = FindMinAverageWindow(s, 15);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.start, 0);
  EXPECT_DOUBLE_EQ(w.average_load, 2.0);
}

TEST(WindowTest, WindowLongerThanSeriesNotFound) {
  LoadSeries s = MakeSeries({1, 2});
  EXPECT_FALSE(FindMinAverageWindow(s, 15).found);
}

TEST(WindowTest, ZeroOrMisalignedDurationNotFound) {
  LoadSeries s = MakeSeries({1, 2, 3});
  EXPECT_FALSE(FindMinAverageWindow(s, 0).found);
  EXPECT_FALSE(FindMinAverageWindow(s, 7).found);  // not multiple of 5
}

TEST(WindowTest, MissingSamplesSkipWindowByDefault) {
  LoadSeries s = MakeSeries({9, kMissingValue, 0, 0, 9});
  // Default max_missing_fraction=0: windows containing index 1 skipped.
  WindowResult w = FindMinAverageWindow(s, 10);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.start, 10);  // the {0,0} window
}

TEST(WindowTest, MissingToleranceAllowsPartialWindows) {
  LoadSeries s = MakeSeries({0, kMissingValue, 9, 9});
  WindowResult strict = FindMinAverageWindow(s, 10, 0.0);
  ASSERT_TRUE(strict.found);
  EXPECT_EQ(strict.start, 10);  // only complete window is {9,9}
  WindowResult loose = FindMinAverageWindow(s, 10, 0.5);
  ASSERT_TRUE(loose.found);
  EXPECT_EQ(loose.start, 0);  // {0,missing} averages to 0 over present
  EXPECT_DOUBLE_EQ(loose.average_load, 0.0);
}

TEST(WindowTest, RangeRestriction) {
  LoadSeries s = MakeSeries({0, 0, 9, 9, 1, 1, 9});
  WindowResult w = FindMinAverageWindowInRange(s, 10, 35, 10);
  ASSERT_TRUE(w.found);
  EXPECT_GE(w.start, 10);
  EXPECT_LE(w.end(), 35);
  EXPECT_DOUBLE_EQ(w.average_load, 1.0);  // {1,1}, the best inside range
}

TEST(WindowTest, RangeOutsideSeriesNotFound) {
  LoadSeries s = MakeSeries({1, 2});
  EXPECT_FALSE(FindMinAverageWindowInRange(s, 100, 200, 10).found);
}

TEST(WindowTest, WindowAverage) {
  LoadSeries s = MakeSeries({2, 4, 6});
  EXPECT_DOUBLE_EQ(WindowAverage(s, 0, 10), 3.0);
  EXPECT_DOUBLE_EQ(WindowAverage(s, 5, 10), 5.0);
  EXPECT_TRUE(IsMissing(WindowAverage(s, 100, 10)));
}

TEST(WindowTest, AllMissingSeriesNotFound) {
  auto s = LoadSeries::MakeEmpty(0, 5, 10);
  EXPECT_FALSE(FindMinAverageWindow(*s, 10).found);
}

}  // namespace
}  // namespace seagull
