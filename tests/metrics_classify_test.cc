#include "metrics/classify.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;
constexpr int64_t kFourWeeks = 4 * kMinutesPerWeek;

// Four weeks of synthetic load with configurable per-day shape.
template <typename Fn>
LoadSeries BuildLoad(Fn&& value_at_tick, int64_t weeks = 4) {
  std::vector<double> values;
  const int64_t n = weeks * 7 * 288;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(value_at_tick(i));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(ClassifyTest, ShortLivedByLifespan) {
  LoadSeries load = BuildLoad([](int64_t) { return 10.0; }, 1);
  ClassificationResult r =
      ClassifyServer(load, 0, 2 * kMinutesPerWeek, 0, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kShortLived);
}

TEST(ClassifyTest, StableFlatLoad) {
  Rng rng(1);
  LoadSeries load = BuildLoad([&rng](int64_t) {
    return 20.0 + rng.Gaussian(0.0, 1.0);
  });
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kStable);
  EXPECT_GT(r.stable_ratio, 0.95);
}

TEST(ClassifyTest, DailyPattern) {
  Rng rng(2);
  LoadSeries load = BuildLoad([&rng](int64_t i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    return 20.0 + 30.0 * std::exp(-std::pow((phase - 0.4) * 10, 2)) +
           rng.Gaussian(0.0, 1.0);
  });
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kDailyPattern);
  EXPECT_GT(r.daily_worst_ratio, 0.9);
  EXPECT_LT(r.stable_ratio, 0.9);  // the bump breaks the stable test
}

TEST(ClassifyTest, WeeklyPattern) {
  Rng rng(3);
  LoadSeries load = BuildLoad([&rng](int64_t i) {
    int64_t day = i / 288;
    bool weekend = (day % 7) >= 5;
    double phase = static_cast<double>(i % 288) / 288.0;
    double bump = weekend
                      ? 0.0
                      : 35.0 * std::exp(-std::pow((phase - 0.45) * 9, 2));
    return 15.0 + bump + rng.Gaussian(0.0, 1.0);
  });
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  // Friday -> Saturday breaks the daily test; week-over-week holds.
  EXPECT_EQ(r.server_class, ServerClass::kWeeklyPattern);
  EXPECT_LT(r.daily_worst_ratio, 0.9);
  EXPECT_GT(r.weekly_worst_ratio, 0.9);
}

TEST(ClassifyTest, NoPatternRandomWalk) {
  Rng rng(4);
  double level = 30.0;
  LoadSeries load = BuildLoad([&](int64_t i) {
    if (i % 288 == 0) level = rng.Uniform(5.0, 60.0);  // daily regime jump
    return level + rng.Gaussian(0.0, 2.0);
  });
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kNoPattern);
}

TEST(ClassifyTest, PatternMustHoldEveryDay) {
  // A daily pattern that breaks for one day is not a daily pattern
  // (Definition 5: "on each day during the whole time period").
  Rng rng(5);
  LoadSeries load = BuildLoad([&rng](int64_t i) {
    int64_t day = i / 288;
    double phase = static_cast<double>(i % 288) / 288.0;
    double bump = 30.0 * std::exp(-std::pow((phase - 0.4) * 10, 2));
    if (day == 10) bump = 0.0;  // one anomalous day
    return 20.0 + bump + rng.Gaussian(0.0, 1.0);
  });
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  EXPECT_NE(r.server_class, ServerClass::kDailyPattern);
}

TEST(ClassifyTest, StableTakesPrecedenceOverDaily) {
  // A flat series trivially satisfies the daily test too, but stable is
  // checked first (it subsumes the patterns, Figure 3).
  LoadSeries load = BuildLoad([](int64_t) { return 25.0; });
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kStable);
}

TEST(ClassifyTest, ObservationWindowRestricts) {
  // Load that was patterned early but is only observed in its last flat
  // week classifies from what is observed.
  LoadSeries load = BuildLoad([](int64_t i) {
    int64_t day = i / 288;
    if (day < 21) {
      double phase = static_cast<double>(i % 288) / 288.0;
      return 20.0 + 30.0 * std::exp(-std::pow((phase - 0.4) * 10, 2));
    }
    return 20.0;
  });
  ClassificationResult r = ClassifyServer(
      load, 0, kFourWeeks, 3 * kMinutesPerWeek, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kStable);
}

TEST(ClassifyTest, MissingDaysDoNotBreakPatternTest) {
  Rng rng(6);
  LoadSeries load = BuildLoad([&rng](int64_t i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    return 20.0 + 30.0 * std::exp(-std::pow((phase - 0.4) * 10, 2)) +
           rng.Gaussian(0.0, 1.0);
  });
  // Blank out one full day: days adjacent to the gap skip the daily test.
  for (int64_t i = 12 * 288; i < 13 * 288; ++i) {
    load.SetValue(i, kMissingValue);
  }
  ClassificationResult r = ClassifyServer(load, 0, kFourWeeks, 0, kFourWeeks);
  EXPECT_EQ(r.server_class, ServerClass::kDailyPattern);
}

TEST(ClassCountsTest, AddAndFractions) {
  ClassCounts counts;
  counts.Add(ServerClass::kStable);
  counts.Add(ServerClass::kStable);
  counts.Add(ServerClass::kShortLived);
  counts.Add(ServerClass::kNoPattern);
  EXPECT_EQ(counts.total, 4);
  EXPECT_DOUBLE_EQ(counts.Fraction(ServerClass::kStable), 0.5);
  EXPECT_DOUBLE_EQ(counts.Fraction(ServerClass::kShortLived), 0.25);
  EXPECT_DOUBLE_EQ(counts.Fraction(ServerClass::kDailyPattern), 0.0);
  EXPECT_DOUBLE_EQ(ClassCounts{}.Fraction(ServerClass::kStable), 0.0);
}

TEST(ClassifyTest, NamesAllClasses) {
  EXPECT_STREQ(ServerClassName(ServerClass::kShortLived), "short_lived");
  EXPECT_STREQ(ServerClassName(ServerClass::kStable), "stable");
  EXPECT_STREQ(ServerClassName(ServerClass::kDailyPattern), "daily_pattern");
  EXPECT_STREQ(ServerClassName(ServerClass::kWeeklyPattern),
               "weekly_pattern");
  EXPECT_STREQ(ServerClassName(ServerClass::kNoPattern), "no_pattern");
}

}  // namespace
}  // namespace seagull
