/// \file perf_budget_test.cc
/// \brief Perf-regression harness over op-count metrics: a fixed-seed,
/// jobs=1, frozen-clock fleet run is fully deterministic, so every op
/// counter (lake reads, doc upserts, module runs, forecasts) has an
/// exact expected value. `tests/budgets.json` checks in ceilings with
/// headroom; a change that, say, doubles doc-store queries per region
/// trips the budget here instead of surfacing as a production
/// regression three PRs later.
///
/// Runs under the `perf` ctest label (`tools/check.sh obs` slices
/// unit+perf). To re-baseline after an intentional op-count change, run
/// this binary with --gtest_also_run_disabled_tests and copy the
/// printed measured table into budgets.json (keep the ~1.5x headroom).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/obs/clock.h"
#include "common/obs/metrics.h"
#include "pipeline/fleet_runner.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

#ifndef SEAGULL_TEST_DATA_DIR
#define SEAGULL_TEST_DATA_DIR "tests"
#endif

namespace seagull {
namespace {

constexpr int64_t kWeek = 3;
const char* const kRegions[] = {"bud-a", "bud-b"};

/// The measured workload: 2 regions x 25 servers, schema-pre-warmed,
/// persistent_prev_day (no training fan-out noise), jobs=1. Everything
/// is fixed-seed so the counter values are exact, not statistical. The
/// lake runs with its blob cache on and one region staged per telemetry
/// format, so the data-plane counters (cache hits, get_blob ops, and
/// both ingest_rows formats) are part of the budgeted surface.
std::map<std::string, int64_t> MeasuredCounters() {
  static const std::map<std::string, int64_t>* counters = [] {
    auto opened = LakeStore::OpenTemporary("perf_budget");
    opened.status().Abort();
    auto* lake = new LakeStore(std::move(opened).ValueUnsafe());
    lake->ConfigureCache(256 << 20);
    uint64_t seed = 8200;
    for (const char* region : kRegions) {
      RegionConfig config;
      config.name = region;
      config.num_servers = 25;
      config.weeks = 5;
      config.seed = seed++;
      Fleet fleet = Fleet::Generate(config);
      const bool binary = region == kRegions[0];
      lake->Put(LakeStore::TelemetryKey(region, kWeek),
                binary ? ExtractWeekBlock(fleet, kWeek)
                       : ExtractWeekCsvText(fleet, kWeek))
          .Abort();
    }
    {
      DocStore scratch;
      FleetRunner warmup(lake, &scratch);
      std::vector<FleetJob> jobs;
      for (const char* region : kRegions) jobs.push_back({region, kWeek});
      PipelineContext config;
      warmup.Run(jobs, config);
    }

    ScopedFrozenClock frozen;
    MetricsRegistry::Global().Reset();
    DocStore docs;
    FleetRunner runner(lake, &docs);
    std::vector<FleetJob> jobs;
    for (const char* region : kRegions) jobs.push_back({region, kWeek});
    PipelineContext config;
    FleetRunResult result = runner.Run(jobs, config);
    EXPECT_EQ(result.SuccessCount(), 2);
    return new std::map<std::string, int64_t>(
        MetricsRegistry::Global().Snapshot().CounterValues());
  }();
  return *counters;
}

Json LoadBudgets() {
  const std::string path =
      std::string(SEAGULL_TEST_DATA_DIR) + "/budgets.json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::Parse(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : Json::MakeObject();
}

TEST(PerfBudgetTest, OpCountsStayWithinCheckedInBudgets) {
  const auto counters = MeasuredCounters();
  Json budgets = LoadBudgets();
  ASSERT_TRUE(budgets.Contains("budgets"));
  const auto& entries = budgets["budgets"].AsObject();
  ASSERT_FALSE(entries.empty());
  for (const auto& [key, ceiling] : entries) {
    const int64_t max = ceiling.AsInt();
    auto it = counters.find(key);
    ASSERT_NE(it, counters.end())
        << "budgeted counter vanished (dead instrumentation?): " << key;
    EXPECT_GT(it->second, 0)
        << "budgeted counter is zero — the layer stopped reporting: "
        << key;
    EXPECT_LE(it->second, max)
        << "op-count budget exceeded for " << key << ": measured "
        << it->second << " > budget " << max
        << " (if intentional, re-baseline tests/budgets.json)";
  }
}

TEST(PerfBudgetTest, EveryHotLayerIsBudgeted) {
  // The budget file must keep covering each instrumented layer — a
  // budget that silently shrinks to one counter is no budget at all.
  Json budgets = LoadBudgets();
  const auto& entries = budgets["budgets"].AsObject();
  const char* const kRequiredPrefixes[] = {
      "seagull.lake.", "seagull.doc.", "seagull.pipeline.",
      "seagull.forecast.", "seagull.fleet."};
  for (const char* prefix : kRequiredPrefixes) {
    bool covered = false;
    for (const auto& [key, unused] : entries) {
      if (key.rfind(prefix, 0) == 0) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "no budget entry covers layer " << prefix;
  }
}

/// Re-baselining aid, excluded from normal runs: prints the measured
/// counters as a ready-to-paste budgets object with 1.5x headroom.
TEST(PerfBudgetTest, DISABLED_PrintMeasuredBudgets) {
  for (const auto& [key, value] : MeasuredCounters()) {
    if (value <= 0) continue;
    std::printf("    \"%s\": %lld,\n", key.c_str(),
                static_cast<long long>(value + (value + 1) / 2));
  }
}

}  // namespace
}  // namespace seagull
