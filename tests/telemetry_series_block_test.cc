#include "telemetry/series_block.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

std::vector<TelemetryRecord> SampleRecords() {
  std::vector<TelemetryRecord> records;
  for (int64_t t = 0; t < 30; t += 5) {
    TelemetryRecord r;
    r.server_id = "srv-a";
    r.timestamp = t;
    r.avg_cpu = 10.0 + static_cast<double>(t);
    r.default_backup_start = 120;
    r.default_backup_end = 180;
    records.push_back(r);
  }
  TelemetryRecord b;
  b.server_id = "srv-b";
  b.timestamp = 10;
  b.avg_cpu = 55.5;
  b.default_backup_start = 600;
  b.default_backup_end = 660;
  records.push_back(b);
  return records;
}

/// Random rows with gaps, several servers, quantized values — the data
/// shape the emitter produces, but adversarially scrambled per seed.
std::vector<TelemetryRecord> RandomRecords(uint64_t seed) {
  Rng rng(seed);
  std::vector<TelemetryRecord> records;
  const int servers = static_cast<int>(rng.UniformInt(1, 6));
  for (int s = 0; s < servers; ++s) {
    TelemetryRecord base;
    base.server_id = StringPrintf("srv-%02d", s);
    base.default_backup_start = rng.UniformInt(0, 1000) * 5;
    base.default_backup_end =
        base.default_backup_start + rng.UniformInt(1, 24) * 5;
    const int64_t start = rng.UniformInt(0, 100) * 5;
    const int samples = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < samples; ++i) {
      if (rng.Chance(0.15)) continue;  // missing sample -> absent row
      TelemetryRecord r = base;
      r.timestamp = start + i * 5;
      r.avg_cpu = QuantizeCpuForStorage(rng.Uniform(0.0, 100.0));
      records.push_back(std::move(r));
    }
  }
  return records;
}

TEST(SeriesBlockTest, SniffsMagic) {
  auto records = SampleRecords();
  EXPECT_TRUE(IsSeriesBlock(EncodeSeriesBlock(records)));
  EXPECT_FALSE(IsSeriesBlock(RecordsToCsvText(records)));
  EXPECT_FALSE(IsSeriesBlock(""));
  EXPECT_FALSE(IsSeriesBlock("SGB"));
}

TEST(SeriesBlockTest, PeekReadsHeader) {
  auto records = SampleRecords();
  auto info = PeekSeriesBlock(EncodeSeriesBlock(records));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1u);
  EXPECT_EQ(info->interval_minutes, kServerIntervalMinutes);
  EXPECT_EQ(info->server_count, 2);
  EXPECT_EQ(info->total_samples, static_cast<int64_t>(records.size()));
}

TEST(SeriesBlockTest, RecordRoundTripIsExact) {
  auto records = SampleRecords();
  auto back = DecodeSeriesBlock(EncodeSeriesBlock(records));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].server_id, records[i].server_id);
    EXPECT_EQ((*back)[i].timestamp, records[i].timestamp);
    // Values were integral+fraction representable at 1e-4; quantization
    // through "%.4f" reproduces them bit-exactly.
    EXPECT_EQ((*back)[i].avg_cpu, QuantizeCpuForStorage(records[i].avg_cpu));
    EXPECT_EQ((*back)[i].default_backup_start,
              records[i].default_backup_start);
    EXPECT_EQ((*back)[i].default_backup_end, records[i].default_backup_end);
  }
}

TEST(SeriesBlockTest, PropertyRandomFleetsRoundTripByteIdentically) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto records = RandomRecords(seed);
    if (records.empty()) continue;
    const std::string blob = EncodeSeriesBlock(records);
    auto decoded = DecodeSeriesBlock(blob);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed;
    // Re-encoding the decoded rows must reproduce the exact bytes:
    // the format is canonical for server-major row order.
    EXPECT_EQ(EncodeSeriesBlock(*decoded), blob) << "seed " << seed;
    // And the CSV written from the decoded rows parses back to rows
    // that encode to the same block: CSV <-> block is lossless.
    auto via_csv = ParseTelemetryCsv(RecordsToCsvText(*decoded));
    ASSERT_TRUE(via_csv.ok()) << "seed " << seed;
    EXPECT_EQ(EncodeSeriesBlock(*via_csv), blob) << "seed " << seed;
  }
}

TEST(SeriesBlockTest, DecodeToServersMatchesGroupByServer) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto records = RandomRecords(seed);
    if (records.empty()) continue;
    auto grouped = GroupByServer(records);
    ASSERT_TRUE(grouped.ok()) << "seed " << seed;
    auto direct = DecodeSeriesBlockToServers(EncodeSeriesBlock(records));
    ASSERT_TRUE(direct.ok()) << "seed " << seed;
    ASSERT_EQ(direct->size(), grouped->size()) << "seed " << seed;
    for (size_t i = 0; i < grouped->size(); ++i) {
      const auto& g = (*grouped)[i];
      const auto& d = (*direct)[i];
      EXPECT_EQ(d.server_id, g.server_id);
      EXPECT_EQ(d.default_backup_start, g.default_backup_start);
      EXPECT_EQ(d.default_backup_end, g.default_backup_end);
      EXPECT_EQ(d.load.start(), g.load.start());
      ASSERT_EQ(d.load.size(), g.load.size());
      for (int64_t j = 0; j < g.load.size(); ++j) {
        if (g.load.MissingAt(j)) {
          EXPECT_TRUE(d.load.MissingAt(j));
        } else {
          // Bit-exact: both paths carry the quantized value.
          EXPECT_EQ(d.load.ValueAt(j),
                    QuantizeCpuForStorage(g.load.ValueAt(j)));
        }
      }
    }
  }
}

TEST(SeriesBlockTest, EmitterBlockMatchesEmitterCsv) {
  RegionConfig config;
  config.name = "blk";
  config.num_servers = 8;
  config.weeks = 4;
  config.seed = 11;
  config.telemetry.missing_sample_rate = 0.05;
  Fleet fleet = Fleet::Generate(config);
  const std::string block = ExtractWeekBlock(fleet, 3);
  auto from_block = DecodeSeriesBlockToServers(block);
  ASSERT_TRUE(from_block.ok());
  auto from_csv = ParseTelemetryCsv(ExtractWeekCsvText(fleet, 3));
  ASSERT_TRUE(from_csv.ok());
  auto grouped = GroupByServer(*from_csv);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(from_block->size(), grouped->size());
  for (size_t i = 0; i < grouped->size(); ++i) {
    const auto& c = (*grouped)[i];
    const auto& b = (*from_block)[i];
    EXPECT_EQ(b.server_id, c.server_id);
    ASSERT_EQ(b.load.size(), c.load.size());
    for (int64_t j = 0; j < c.load.size(); ++j) {
      if (c.load.MissingAt(j)) {
        EXPECT_TRUE(b.load.MissingAt(j));
      } else {
        // The CSV parse quantizes; the block stores pre-quantized.
        EXPECT_EQ(b.load.ValueAt(j), c.load.ValueAt(j));
      }
    }
  }
}

TEST(SeriesBlockTest, DuplicateTimestampsKeepLastValue) {
  std::vector<TelemetryRecord> records = SampleRecords();
  TelemetryRecord dup = records[1];  // srv-a, t=5
  dup.avg_cpu = 99.0;
  records.push_back(dup);
  auto direct = DecodeSeriesBlockToServers(EncodeSeriesBlock(records));
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ((*direct)[0].load.ValueAtTime(5), 99.0);
}

TEST(SeriesBlockTest, RejectsOffGridTimestamps) {
  TelemetryRecord r;
  r.server_id = "s";
  r.timestamp = 7;
  r.avg_cpu = 1.0;
  auto decoded = DecodeSeriesBlockToServers(EncodeSeriesBlock({r}));
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("off the"), std::string::npos);
}

TEST(SeriesBlockTest, RejectsCorruptAndTruncatedBlobs) {
  const std::string blob = EncodeSeriesBlock(SampleRecords());

  // Truncation at every interesting boundary.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{10}, size_t{35},
                     blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(PeekSeriesBlock(blob.substr(0, cut)).ok()) << cut;
    EXPECT_FALSE(DecodeSeriesBlock(blob.substr(0, cut)).ok()) << cut;
    EXPECT_FALSE(DecodeSeriesBlockToServers(blob.substr(0, cut)).ok()) << cut;
  }

  // Any single flipped byte breaks either the magic or the checksum.
  for (size_t at : {size_t{0}, size_t{5}, size_t{20}, blob.size() / 2,
                    blob.size() - 1}) {
    std::string bad = blob;
    bad[at] = static_cast<char>(bad[at] ^ 0x5a);
    EXPECT_FALSE(DecodeSeriesBlock(bad).ok()) << at;
  }

  // Bad version: patch byte 4 and re-stamp... without a valid checksum
  // it must be rejected either way.
  std::string bad_version = blob;
  bad_version[4] = 9;
  EXPECT_FALSE(PeekSeriesBlock(bad_version).ok());

  // Not a block at all.
  EXPECT_FALSE(DecodeSeriesBlock("hello world, not a block").ok());
}

TEST(SeriesBlockTest, QuantizerIsIdempotent) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(0.0, 100.0);
    const double q = QuantizeCpuForStorage(v);
    EXPECT_EQ(q, QuantizeCpuForStorage(q));
    EXPECT_NEAR(q, v, 5e-5);
  }
}

TEST(SeriesBlockTest, DecodeTelemetryBlobSniffsBothFormats) {
  auto records = SampleRecords();
  auto from_block = DecodeTelemetryBlob(EncodeSeriesBlock(records));
  ASSERT_TRUE(from_block.ok());
  auto from_csv = DecodeTelemetryBlob(RecordsToCsvText(records));
  ASSERT_TRUE(from_csv.ok());
  ASSERT_EQ(from_block->size(), from_csv->size());
  for (size_t i = 0; i < from_csv->size(); ++i) {
    EXPECT_EQ((*from_block)[i].server_id, (*from_csv)[i].server_id);
  }
  EXPECT_FALSE(DecodeTelemetryBlob("garbage").ok());
}

}  // namespace
}  // namespace seagull
