#include "telemetry/series_block.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

std::vector<TelemetryRecord> SampleRecords() {
  std::vector<TelemetryRecord> records;
  for (int64_t t = 0; t < 30; t += 5) {
    TelemetryRecord r;
    r.server_id = "srv-a";
    r.timestamp = t;
    r.avg_cpu = 10.0 + static_cast<double>(t);
    r.default_backup_start = 120;
    r.default_backup_end = 180;
    records.push_back(r);
  }
  TelemetryRecord b;
  b.server_id = "srv-b";
  b.timestamp = 10;
  b.avg_cpu = 55.5;
  b.default_backup_start = 600;
  b.default_backup_end = 660;
  records.push_back(b);
  return records;
}

/// Random rows with gaps, several servers, quantized values — the data
/// shape the emitter produces, but adversarially scrambled per seed.
std::vector<TelemetryRecord> RandomRecords(uint64_t seed) {
  Rng rng(seed);
  std::vector<TelemetryRecord> records;
  const int servers = static_cast<int>(rng.UniformInt(1, 6));
  for (int s = 0; s < servers; ++s) {
    TelemetryRecord base;
    base.server_id = StringPrintf("srv-%02d", s);
    base.default_backup_start = rng.UniformInt(0, 1000) * 5;
    base.default_backup_end =
        base.default_backup_start + rng.UniformInt(1, 24) * 5;
    const int64_t start = rng.UniformInt(0, 100) * 5;
    const int samples = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < samples; ++i) {
      if (rng.Chance(0.15)) continue;  // missing sample -> absent row
      TelemetryRecord r = base;
      r.timestamp = start + i * 5;
      r.avg_cpu = QuantizeCpuForStorage(rng.Uniform(0.0, 100.0));
      records.push_back(std::move(r));
    }
  }
  return records;
}

TEST(SeriesBlockTest, SniffsMagic) {
  auto records = SampleRecords();
  EXPECT_TRUE(IsSeriesBlock(EncodeSeriesBlock(records)));
  EXPECT_FALSE(IsSeriesBlock(RecordsToCsvText(records)));
  EXPECT_FALSE(IsSeriesBlock(""));
  EXPECT_FALSE(IsSeriesBlock("SGB"));
}

TEST(SeriesBlockTest, PeekReadsHeader) {
  auto records = SampleRecords();
  auto info = PeekSeriesBlock(EncodeSeriesBlock(records));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1u);
  EXPECT_EQ(info->interval_minutes, kServerIntervalMinutes);
  EXPECT_EQ(info->server_count, 2);
  EXPECT_EQ(info->total_samples, static_cast<int64_t>(records.size()));
}

TEST(SeriesBlockTest, RecordRoundTripIsExact) {
  auto records = SampleRecords();
  auto back = DecodeSeriesBlock(EncodeSeriesBlock(records));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].server_id, records[i].server_id);
    EXPECT_EQ((*back)[i].timestamp, records[i].timestamp);
    // Values were integral+fraction representable at 1e-4; quantization
    // through "%.4f" reproduces them bit-exactly.
    EXPECT_EQ((*back)[i].avg_cpu, QuantizeCpuForStorage(records[i].avg_cpu));
    EXPECT_EQ((*back)[i].default_backup_start,
              records[i].default_backup_start);
    EXPECT_EQ((*back)[i].default_backup_end, records[i].default_backup_end);
  }
}

TEST(SeriesBlockTest, PropertyRandomFleetsRoundTripByteIdentically) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto records = RandomRecords(seed);
    if (records.empty()) continue;
    const std::string blob = EncodeSeriesBlock(records);
    auto decoded = DecodeSeriesBlock(blob);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed;
    // Re-encoding the decoded rows must reproduce the exact bytes:
    // the format is canonical for server-major row order.
    EXPECT_EQ(EncodeSeriesBlock(*decoded), blob) << "seed " << seed;
    // And the CSV written from the decoded rows parses back to rows
    // that encode to the same block: CSV <-> block is lossless.
    auto via_csv = ParseTelemetryCsv(RecordsToCsvText(*decoded));
    ASSERT_TRUE(via_csv.ok()) << "seed " << seed;
    EXPECT_EQ(EncodeSeriesBlock(*via_csv), blob) << "seed " << seed;
  }
}

TEST(SeriesBlockTest, DecodeToServersMatchesGroupByServer) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto records = RandomRecords(seed);
    if (records.empty()) continue;
    auto grouped = GroupByServer(records);
    ASSERT_TRUE(grouped.ok()) << "seed " << seed;
    auto direct = DecodeSeriesBlockToServers(EncodeSeriesBlock(records));
    ASSERT_TRUE(direct.ok()) << "seed " << seed;
    ASSERT_EQ(direct->size(), grouped->size()) << "seed " << seed;
    for (size_t i = 0; i < grouped->size(); ++i) {
      const auto& g = (*grouped)[i];
      const auto& d = (*direct)[i];
      EXPECT_EQ(d.server_id, g.server_id);
      EXPECT_EQ(d.default_backup_start, g.default_backup_start);
      EXPECT_EQ(d.default_backup_end, g.default_backup_end);
      EXPECT_EQ(d.load.start(), g.load.start());
      ASSERT_EQ(d.load.size(), g.load.size());
      for (int64_t j = 0; j < g.load.size(); ++j) {
        if (g.load.MissingAt(j)) {
          EXPECT_TRUE(d.load.MissingAt(j));
        } else {
          // Bit-exact: both paths carry the quantized value.
          EXPECT_EQ(d.load.ValueAt(j),
                    QuantizeCpuForStorage(g.load.ValueAt(j)));
        }
      }
    }
  }
}

TEST(SeriesBlockTest, EmitterBlockMatchesEmitterCsv) {
  RegionConfig config;
  config.name = "blk";
  config.num_servers = 8;
  config.weeks = 4;
  config.seed = 11;
  config.telemetry.missing_sample_rate = 0.05;
  Fleet fleet = Fleet::Generate(config);
  const std::string block = ExtractWeekBlock(fleet, 3);
  auto from_block = DecodeSeriesBlockToServers(block);
  ASSERT_TRUE(from_block.ok());
  auto from_csv = ParseTelemetryCsv(ExtractWeekCsvText(fleet, 3));
  ASSERT_TRUE(from_csv.ok());
  auto grouped = GroupByServer(*from_csv);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(from_block->size(), grouped->size());
  for (size_t i = 0; i < grouped->size(); ++i) {
    const auto& c = (*grouped)[i];
    const auto& b = (*from_block)[i];
    EXPECT_EQ(b.server_id, c.server_id);
    ASSERT_EQ(b.load.size(), c.load.size());
    for (int64_t j = 0; j < c.load.size(); ++j) {
      if (c.load.MissingAt(j)) {
        EXPECT_TRUE(b.load.MissingAt(j));
      } else {
        // The CSV parse quantizes; the block stores pre-quantized.
        EXPECT_EQ(b.load.ValueAt(j), c.load.ValueAt(j));
      }
    }
  }
}

TEST(SeriesBlockTest, DuplicateTimestampsKeepLastValue) {
  std::vector<TelemetryRecord> records = SampleRecords();
  TelemetryRecord dup = records[1];  // srv-a, t=5
  dup.avg_cpu = 99.0;
  records.push_back(dup);
  auto direct = DecodeSeriesBlockToServers(EncodeSeriesBlock(records));
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ((*direct)[0].load.ValueAtTime(5), 99.0);
}

TEST(SeriesBlockTest, RejectsOffGridTimestamps) {
  TelemetryRecord r;
  r.server_id = "s";
  r.timestamp = 7;
  r.avg_cpu = 1.0;
  auto decoded = DecodeSeriesBlockToServers(EncodeSeriesBlock({r}));
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("off the"), std::string::npos);
}

TEST(SeriesBlockTest, RejectsCorruptAndTruncatedBlobs) {
  const std::string blob = EncodeSeriesBlock(SampleRecords());

  // Truncation at every interesting boundary.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{10}, size_t{35},
                     blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(PeekSeriesBlock(blob.substr(0, cut)).ok()) << cut;
    EXPECT_FALSE(DecodeSeriesBlock(blob.substr(0, cut)).ok()) << cut;
    EXPECT_FALSE(DecodeSeriesBlockToServers(blob.substr(0, cut)).ok()) << cut;
  }

  // Any single flipped byte breaks either the magic or the checksum.
  for (size_t at : {size_t{0}, size_t{5}, size_t{20}, blob.size() / 2,
                    blob.size() - 1}) {
    std::string bad = blob;
    bad[at] = static_cast<char>(bad[at] ^ 0x5a);
    EXPECT_FALSE(DecodeSeriesBlock(bad).ok()) << at;
  }

  // Bad version: patch byte 4 and re-stamp... without a valid checksum
  // it must be rejected either way.
  std::string bad_version = blob;
  bad_version[4] = 9;
  EXPECT_FALSE(PeekSeriesBlock(bad_version).ok());

  // Not a block at all.
  EXPECT_FALSE(DecodeSeriesBlock("hello world, not a block").ok());
}

TEST(SeriesBlockTest, QuantizerIsIdempotent) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(0.0, 100.0);
    const double q = QuantizeCpuForStorage(v);
    EXPECT_EQ(q, QuantizeCpuForStorage(q));
    EXPECT_NEAR(q, v, 5e-5);
  }
}

/// Streams a blob through the cursor into the same grouped form the
/// materializing decoder returns — the equivalence oracle's subject.
Result<std::vector<ServerTelemetry>> StreamAll(const std::string& blob) {
  SEAGULL_ASSIGN_OR_RETURN(SeriesBlockCursor cursor,
                           SeriesBlockCursor::Open(std::string_view(blob)));
  std::vector<ServerTelemetry> out;
  SEAGULL_RETURN_NOT_OK(
      StreamSeriesBlockServers(cursor, [&](ServerTelemetry&& st) {
        out.push_back(std::move(st));
        return Status::OK();
      }));
  return out;
}

/// Bit-exact comparison of two grouped decodes (NaN missing slots
/// compare via MissingAt, present values via exact equality).
void ExpectSameServers(const std::vector<ServerTelemetry>& a,
                       const std::vector<ServerTelemetry>& b,
                       uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].server_id, b[i].server_id) << "seed " << seed;
    EXPECT_EQ(a[i].default_backup_start, b[i].default_backup_start);
    EXPECT_EQ(a[i].default_backup_end, b[i].default_backup_end);
    EXPECT_EQ(a[i].load.start(), b[i].load.start());
    ASSERT_EQ(a[i].load.size(), b[i].load.size()) << "seed " << seed;
    for (int64_t j = 0; j < a[i].load.size(); ++j) {
      if (a[i].load.MissingAt(j)) {
        EXPECT_TRUE(b[i].load.MissingAt(j)) << "seed " << seed;
      } else {
        EXPECT_EQ(a[i].load.ValueAt(j), b[i].load.ValueAt(j))
            << "seed " << seed;
      }
    }
  }
}

TEST(SeriesBlockCursorTest, PropertyStreamMatchesMaterializingDecode) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto records = RandomRecords(seed);
    if (records.empty()) continue;
    const std::string blob = EncodeSeriesBlock(records);
    auto reference = DecodeSeriesBlockToServers(blob);
    ASSERT_TRUE(reference.ok()) << "seed " << seed;
    auto streamed = StreamAll(blob);
    ASSERT_TRUE(streamed.ok()) << "seed " << seed;
    ExpectSameServers(*reference, *streamed, seed);
  }
}

TEST(SeriesBlockCursorTest, TruncatedAndCorruptBlobsMatchReferenceStatus) {
  // On every mutilated input the cursor path must fail exactly when the
  // materializing decoder fails, with the same status text — error
  // parity is part of the equivalence contract.
  const std::string blob = EncodeSeriesBlock(SampleRecords());
  auto status_of = [](const Result<std::vector<ServerTelemetry>>& r) {
    return r.ok() ? std::string("ok") : r.status().ToString();
  };
  for (size_t cut : {size_t{0}, size_t{3}, size_t{10}, size_t{35},
                     blob.size() / 2, blob.size() - 1}) {
    const std::string bad = blob.substr(0, cut);
    EXPECT_EQ(status_of(DecodeSeriesBlockToServers(bad)),
              status_of(StreamAll(bad)))
        << "cut " << cut;
    EXPECT_FALSE(StreamAll(bad).ok()) << "cut " << cut;
  }
  for (size_t at = 0; at < blob.size(); at += 7) {
    std::string bad = blob;
    bad[at] = static_cast<char>(bad[at] ^ 0x5a);
    EXPECT_EQ(status_of(DecodeSeriesBlockToServers(bad)),
              status_of(StreamAll(bad)))
        << "flip " << at;
  }
}

TEST(SeriesBlockCursorTest, OffGridTimestampFailsLikeReference) {
  TelemetryRecord r;
  r.server_id = "s";
  r.timestamp = 7;
  r.avg_cpu = 1.0;
  const std::string blob = EncodeSeriesBlock({r});
  auto reference = DecodeSeriesBlockToServers(blob);
  auto streamed = StreamAll(blob);
  ASSERT_FALSE(reference.ok());
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(reference.status().ToString(), streamed.status().ToString());
}

TEST(SeriesBlockCursorTest, DuplicateTimestampsKeepLastValueWhenStreamed) {
  std::vector<TelemetryRecord> records = SampleRecords();
  TelemetryRecord dup = records[1];  // srv-a, t=5
  dup.avg_cpu = 99.0;
  records.push_back(dup);
  // Interleave a second server between the duplicates so the directory
  // carries srv-a out of contiguous row order.
  auto streamed = StreamAll(EncodeSeriesBlock(records));
  ASSERT_TRUE(streamed.ok());
  EXPECT_DOUBLE_EQ((*streamed)[0].load.ValueAtTime(5), 99.0);
  auto reference = DecodeSeriesBlockToServers(EncodeSeriesBlock(records));
  ASSERT_TRUE(reference.ok());
  ExpectSameServers(*reference, *streamed, 0);
}

TEST(SeriesBlockCursorTest, ColumnsAliasTheBlobBytes) {
  // Zero-copy means the views point INTO the blob: every column's
  // backing bytes must lie inside [data, data+size) of the very string
  // the cursor was opened on.
  auto records = SampleRecords();
  const std::string blob = EncodeSeriesBlock(records);
  auto cursor = SeriesBlockCursor::Open(std::string_view(blob));
  ASSERT_TRUE(cursor.ok());
  ASSERT_GT(cursor->size(), 0);
  for (int64_t i = 0; i < cursor->size(); ++i) {
    SeriesBlockServerView view = cursor->Entry(i);
    const char* begin = blob.data();
    const char* end = blob.data() + blob.size();
    EXPECT_GE(view.timestamps.bytes(), begin);
    EXPECT_LE(view.timestamps.bytes() + view.timestamps.size() * 8, end);
    EXPECT_GE(view.values.bytes(), begin);
    EXPECT_LE(view.values.bytes() + view.values.size() * 8, end);
    EXPECT_GE(view.server_id.data(), begin);
    EXPECT_LE(view.server_id.data() + view.server_id.size(), end);
  }
}

TEST(SeriesBlockCursorTest, SharedOpenPinsTheBlobPastCallerRelease) {
  // The blob-cache contract: a cursor opened on the cache's shared_ptr
  // keeps the bytes alive even after the cache (and every other owner)
  // drops its reference — eviction mid-decode must be harmless.
  auto records = SampleRecords();
  auto blob = std::make_shared<const std::string>(
      EncodeSeriesBlock(records));
  auto cursor = SeriesBlockCursor::Open(blob);
  ASSERT_TRUE(cursor.ok());
  std::weak_ptr<const std::string> watch = blob;
  blob.reset();  // simulate cache eviction: cursor is now sole owner
  EXPECT_FALSE(watch.expired());
  std::vector<ServerTelemetry> out;
  ASSERT_TRUE(StreamSeriesBlockServers(*cursor, [&](ServerTelemetry&& st) {
                out.push_back(std::move(st));
                return Status::OK();
              }).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].server_id, "srv-a");
}

TEST(SeriesBlockCursorTest, OpenRejectsNullSharedBlob) {
  std::shared_ptr<const std::string> null_blob;
  EXPECT_FALSE(SeriesBlockCursor::Open(null_blob).ok());
}

TEST(SeriesBlockCursorTest, NextWalksDirectoryOrderAndRewinds) {
  auto records = SampleRecords();
  const std::string blob = EncodeSeriesBlock(records);
  auto cursor = SeriesBlockCursor::Open(std::string_view(blob));
  ASSERT_TRUE(cursor.ok());
  std::vector<std::string> first_pass, second_pass;
  SeriesBlockServerView view;
  while (cursor->Next(&view)) {
    first_pass.emplace_back(view.server_id);
  }
  EXPECT_EQ(first_pass.size(), static_cast<size_t>(cursor->size()));
  cursor->Rewind();
  while (cursor->Next(&view)) {
    second_pass.emplace_back(view.server_id);
  }
  EXPECT_EQ(first_pass, second_pass);
}

TEST(SeriesBlockCursorTest, CallbackErrorStopsTheStream) {
  auto records = SampleRecords();  // two servers
  const std::string blob = EncodeSeriesBlock(records);
  auto cursor = SeriesBlockCursor::Open(std::string_view(blob));
  ASSERT_TRUE(cursor.ok());
  int delivered = 0;
  Status st = StreamSeriesBlockServers(*cursor, [&](ServerTelemetry&&) {
    ++delivered;
    return Status::Invalid("stop here");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("stop here"), std::string::npos);
  EXPECT_EQ(delivered, 1);
}

TEST(SeriesBlockTest, DecodeTelemetryBlobSniffsBothFormats) {
  auto records = SampleRecords();
  auto from_block = DecodeTelemetryBlob(EncodeSeriesBlock(records));
  ASSERT_TRUE(from_block.ok());
  auto from_csv = DecodeTelemetryBlob(RecordsToCsvText(records));
  ASSERT_TRUE(from_csv.ok());
  ASSERT_EQ(from_block->size(), from_csv->size());
  for (size_t i = 0; i < from_csv->size(); ++i) {
    EXPECT_EQ((*from_block)[i].server_id, (*from_csv)[i].server_id);
  }
  EXPECT_FALSE(DecodeTelemetryBlob("garbage").ok());
}

}  // namespace
}  // namespace seagull
