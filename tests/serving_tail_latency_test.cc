/// \file serving_tail_latency_test.cc
/// \brief Predict latency must be independent of refit cost.
///
/// The double-buffered engine's core promise: a query that interleaves
/// with a running `Tick()` is answered from the published (old) epoch
/// without waiting for the refit fan-out. The suite proves it two ways:
///  - logically, with a gate-blocked model family — while `Tick()` is
///    parked inside a refit, queries return the previous epoch's bytes
///    (correct `epoch` field, stale forecast) instead of blocking;
///  - by wall clock, with a sleeping model — queries issued mid-tick
///    complete orders of magnitude faster than the refit they overlap.
/// A third case drives the `serving.refit` fault point at rate 1.0 and
/// checks the stale-but-consistent contract under failed refits.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/fault.h"
#include "common/obs/clock.h"
#include "forecast/model.h"
#include "pipeline/deployment.h"
#include "serving/engine.h"
#include "serving_test_util.h"

namespace seagull {
namespace {

/// Process-wide refit gate every GatedModel::Forecast passes through.
struct RefitGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = true;
  std::atomic<int64_t> entered{0};
  std::atomic<int64_t> sleep_millis{0};

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    open = false;
  }
  void OpenUp() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void Pass() {
    entered.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return open; });
    }
    const int64_t ms = sleep_millis.load(std::memory_order_relaxed);
    if (ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  void Reset() {
    OpenUp();
    entered.store(0, std::memory_order_relaxed);
    sleep_millis.store(0, std::memory_order_relaxed);
  }
};

RefitGate* Gate() {
  static RefitGate gate;
  return &gate;
}

/// Heuristic model whose Forecast blocks on the gate (and optionally
/// sleeps): an arbitrarily expensive refit. The forecast value encodes
/// the tail's end so each refit produces observably fresh bytes.
class GatedModel : public ForecastModel {
 public:
  std::string name() const override { return "gated_slow"; }
  bool requires_training() const override { return false; }
  Status Fit(const LoadSeries&) override { return Status::OK(); }

  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override {
    Gate()->Pass();
    const int64_t interval = recent.interval_minutes();
    std::vector<double> values(
        static_cast<size_t>(horizon_minutes / interval),
        static_cast<double>(recent.end()));
    return LoadSeries::Make(start, interval, std::move(values));
  }

  Result<Json> Serialize() const override {
    Json doc = Json::MakeObject();
    doc["model"] = name();
    return doc;
  }
  Status Deserialize(const Json&) override { return Status::OK(); }
};

ModelEndpoint MakeGatedEndpoint() {
  ModelFactory::Global().Register(
      "gated_slow", [] { return std::make_unique<GatedModel>(); });
  GatedModel model;
  Json body = Json::MakeObject();
  body["family"] = "gated_slow";
  body["version"] = 3;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  return std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();
}

std::string PredictRequest(const std::string& server_id) {
  Json doc = Json::MakeObject();
  doc["verb"] = "predict";
  doc["server_id"] = server_id;
  return doc.Dump();
}

Json MustParse(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.ok() ? *parsed : Json();
}

class ServingTailLatencyTest : public ::testing::Test {
 protected:
  ServingTailLatencyTest() : engine_(MakeGatedEndpoint()) {
    Gate()->Reset();
    std::vector<ServerTelemetry> fleet;
    fleet.push_back(MakeTail("srv-a", DayOfLoad()));
    fleet.push_back(MakeTail("srv-b", DayOfLoad()));
    fleet.push_back(MakeTail("srv-c", DayOfLoad()));
    engine_.Bootstrap(fleet).Abort();
    engine_.Tick();  // epoch 1: every server gets its first forecast
  }
  ~ServingTailLatencyTest() override { Gate()->Reset(); }

  /// Spins (real clock — works under ScopedFrozenClock) until at least
  /// `n` refits entered the gate, i.e. the tick is provably mid-refit.
  void AwaitRefitsEntered(int64_t n) {
    while (Gate()->entered.load(std::memory_order_acquire) < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ServingEngine engine_;
};

TEST_F(ServingTailLatencyTest, MidTickQueriesAnswerFromOldEpoch) {
  ScopedFrozenClock frozen;  // latencies collapse: pure logic test

  const std::string before = engine_.Handle(PredictRequest("srv-a"));
  EXPECT_EQ(MustParse(before)["epoch"].AsInt(), 1);

  // Dirty two servers, then park the tick inside their refits.
  engine_.Handle(
      "{\"verb\":\"ingest\",\"server_id\":\"srv-a\",\"seq\":0,"
      "\"series\":{\"start\":1440,\"interval\":5,\"values\":[50]}}");
  engine_.Handle(
      "{\"verb\":\"ingest\",\"server_id\":\"srv-b\",\"seq\":1,"
      "\"series\":{\"start\":1440,\"interval\":5,\"values\":[60]}}");
  Gate()->Close();
  Gate()->entered.store(0);
  TickResult tick;
  std::thread ticker([&] { tick = engine_.Tick(); });
  AwaitRefitsEntered(1);

  // The tick is provably inside a refit. Queries must complete NOW,
  // from the old epoch, byte-identical to the pre-tick response.
  EXPECT_EQ(engine_.Handle(PredictRequest("srv-a")), before);
  Json mid = MustParse(engine_.Handle(PredictRequest("srv-b")));
  EXPECT_TRUE(mid["ok"].AsBool());
  EXPECT_EQ(mid["epoch"].AsInt(), 1);
  EXPECT_EQ(mid["tick"].AsInt(), 1);

  // Batch predicts observe one (old) snapshot mid-tick too.
  Json batch = MustParse(engine_.Handle(
      "{\"verb\":\"predict\",\"servers\":[\"srv-a\",\"srv-b\"]}"));
  EXPECT_TRUE(batch["ok"].AsBool());
  EXPECT_EQ(batch["epoch"].AsInt(), 1);

  // Release the refits: the swap publishes epoch 2 with fresh bytes.
  Gate()->OpenUp();
  ticker.join();
  EXPECT_EQ(tick.tick, 2);
  EXPECT_EQ(tick.refits, 2);
  Json after = MustParse(engine_.Handle(PredictRequest("srv-a")));
  EXPECT_TRUE(after["ok"].AsBool());
  EXPECT_EQ(after["epoch"].AsInt(), 2);
  EXPECT_EQ(after["tick"].AsInt(), 2);
  EXPECT_NE(after["forecast"].Dump(), MustParse(before)["forecast"].Dump());
}

TEST_F(ServingTailLatencyTest, MidTickLatencyBoundedUnderSlowRefits) {
  // Each refit sleeps 150 ms; the tick refits three servers. Queries
  // issued while it runs must not inherit any of that cost. The bound
  // is 100 ms — ~500x the typical answer time, far under one refit —
  // so the assertion survives arbitrary scheduler noise.
  engine_.Handle(
      "{\"verb\":\"ingest\",\"server_id\":\"srv-a\",\"seq\":0,"
      "\"series\":{\"start\":1440,\"interval\":5,\"values\":[50]}}");
  engine_.Handle(
      "{\"verb\":\"ingest\",\"server_id\":\"srv-b\",\"seq\":1,"
      "\"series\":{\"start\":1440,\"interval\":5,\"values\":[60]}}");
  engine_.Handle(
      "{\"verb\":\"ingest\",\"server_id\":\"srv-c\",\"seq\":2,"
      "\"series\":{\"start\":1440,\"interval\":5,\"values\":[70]}}");
  Gate()->entered.store(0);
  Gate()->sleep_millis.store(150);
  std::thread ticker([&] { engine_.Tick(); });
  AwaitRefitsEntered(1);

  double worst_micros = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    Json response = MustParse(engine_.Handle(PredictRequest("srv-a")));
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(response["ok"].AsBool());
    EXPECT_EQ(response["epoch"].AsInt(), 1);  // old epoch, every time
    worst_micros = std::max(
        worst_micros,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
  }
  ticker.join();
  EXPECT_LT(worst_micros, 100000.0)
      << "a mid-tick predict waited on the refit fan-out";
}

TEST_F(ServingTailLatencyTest, FaultedRefitKeepsStaleForecast) {
  ScopedFrozenClock frozen;
  const Json before = MustParse(engine_.Handle(PredictRequest("srv-a")));

  FaultConfig config;
  config.seed = 11;
  config.rate = 0.0;
  ScopedFaultInjection faults(config);
  faults.registry().SetPointRate("serving.refit", 1.0);

  engine_.Handle(
      "{\"verb\":\"ingest\",\"server_id\":\"srv-a\",\"seq\":0,"
      "\"series\":{\"start\":1440,\"interval\":5,\"values\":[50]}}");
  TickResult tick = engine_.Tick();
  EXPECT_EQ(tick.refits, 1);
  EXPECT_EQ(tick.refit_failures, 1);

  // The failed refit publishes a new epoch that retains the old
  // forecast: same bytes, same refit tick, advanced epoch stamp.
  Json after = MustParse(engine_.Handle(PredictRequest("srv-a")));
  EXPECT_TRUE(after["ok"].AsBool());
  EXPECT_EQ(after["forecast"].Dump(), before["forecast"].Dump());
  EXPECT_EQ(after["tick"].AsInt(), before["tick"].AsInt());
  EXPECT_EQ(after["epoch"].AsInt(), 2);
}

}  // namespace
}  // namespace seagull
