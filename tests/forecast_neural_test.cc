#include "forecast/feedforward.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/standard.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

LoadSeries DailyBumps(int64_t days) {
  std::vector<double> values;
  for (int64_t i = 0; i < days * 288; ++i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    double v = 20.0 + 15.0 * std::sin(kTwoPi * phase) +
               8.0 * std::sin(2 * kTwoPi * phase);
    values.push_back(std::max(0.0, v));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

FeedForwardOptions FastOptions() {
  FeedForwardOptions o;
  o.epochs = 120;
  o.hidden = 24;
  return o;
}

TEST(FeedForwardTest, LearnsRepeatingDailyShape) {
  LoadSeries train = DailyBumps(7);
  FeedForwardForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  LoadSeries truth =
      DailyBumps(8).Slice(7 * kMinutesPerDay, 8 * kMinutesPerDay);
  // Pooled prediction is a step function; compare on hourly averages.
  double mae = MeanAbsoluteError(*forecast, truth);
  EXPECT_LT(mae, 5.0);
}

TEST(FeedForwardTest, TrainingLossDecreasesToSmall) {
  LoadSeries train = DailyBumps(7);
  FeedForwardForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_LT(model.train_loss(), 0.01);  // normalized units
}

TEST(FeedForwardTest, NeedsTwoDays) {
  LoadSeries short_series = DailyBumps(1);
  FeedForwardForecast model(FastOptions());
  EXPECT_TRUE(model.Fit(short_series).IsFailedPrecondition());
}

TEST(FeedForwardTest, ForecastBeforeFitFails) {
  FeedForwardForecast model(FastOptions());
  LoadSeries any = DailyBumps(2);
  EXPECT_TRUE(model.Forecast(any, 0, kMinutesPerDay)
                  .status()
                  .IsFailedPrecondition());
}

TEST(FeedForwardTest, MultiDayHorizon) {
  LoadSeries train = DailyBumps(7);
  FeedForwardForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast =
      model.Forecast(train, 7 * kMinutesPerDay, 2 * kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 2 * 288);
  EXPECT_EQ(forecast->CountMissing(), 0);
}

TEST(FeedForwardTest, OutputsBounded) {
  LoadSeries train = DailyBumps(7);
  FeedForwardForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_GE(forecast->ValueAt(i), 0.0);
    EXPECT_LE(forecast->ValueAt(i), 200.0);
  }
}

TEST(FeedForwardTest, DeterministicGivenSeed) {
  LoadSeries train = DailyBumps(4);
  FeedForwardForecast a(FastOptions()), b(FastOptions());
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  auto fa = a.Forecast(train, 4 * kMinutesPerDay, 60);
  auto fb = b.Forecast(train, 4 * kMinutesPerDay, 60);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  for (int64_t i = 0; i < fa->size(); ++i) {
    EXPECT_DOUBLE_EQ(fa->ValueAt(i), fb->ValueAt(i));
  }
}

TEST(FeedForwardTest, SerializationRoundTrip) {
  LoadSeries train = DailyBumps(4);
  FeedForwardForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto doc = model.Serialize();
  ASSERT_TRUE(doc.ok());
  FeedForwardForecast restored;
  ASSERT_TRUE(restored.Deserialize(*doc).ok());
  auto f1 = model.Forecast(train, 4 * kMinutesPerDay, 120);
  auto f2 = restored.Forecast(train, 4 * kMinutesPerDay, 120);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9);
  }
}

TEST(FeedForwardTest, ToleratesMissingTrainingSamples) {
  LoadSeries train = DailyBumps(7);
  for (int64_t i = 500; i < 560; ++i) train.SetValue(i, kMissingValue);
  FeedForwardForecast model(FastOptions());
  EXPECT_TRUE(model.Fit(train).ok());
}

TEST(FeedForwardTest, WorksOn15MinuteGrid) {
  // SQL-database granularity (Appendix A).
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 96; ++i) {
    double phase = static_cast<double>(i % 96) / 96.0;
    values.push_back(20.0 + 10.0 * std::sin(kTwoPi * phase));
  }
  LoadSeries train =
      std::move(LoadSeries::Make(0, 15, std::move(values))).ValueOrDie();
  FeedForwardForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 96);
}

}  // namespace
}  // namespace seagull
