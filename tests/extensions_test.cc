/// \file extensions_test.cc
/// \brief Tests for the paper's follow-up features: backup-day
/// optimization (§6.1), the customer window advisor (§6.2), and the
/// overbooking analysis (§6.2).

#include <gtest/gtest.h>

#include "autoscale/overbooking.h"
#include "forecast/persistent.h"
#include "scheduling/day_optimizer.h"
#include "scheduling/window_advisor.h"

namespace seagull {
namespace {

/// Builds an endpoint serving a fleet-wide previous-equivalent-day
/// persistent model (weekly structure, so day choice is meaningful).
ModelEndpoint WeeklyEndpoint() {
  PersistentForecast model(PersistentVariant::kPreviousEquivalentDay);
  Json params = std::move(model.Serialize()).ValueOrDie();
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_eq_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  models[""] = params;
  body["models"] = std::move(models);
  return std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();
}

/// Two weeks of history where weekdays are busy all day and Sunday is
/// idle; backups should move to Sunday.
LoadSeries WeeklyHistory() {
  std::vector<double> values;
  for (int64_t i = 0; i < 2 * 7 * 288; ++i) {
    int64_t day = (i / 288) % 7;
    bool sunday = day == 6;
    values.push_back(sunday ? 3.0 : 55.0);
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(DayOptimizerTest, MovesToTheIdleDay) {
  ModelEndpoint endpoint = WeeklyEndpoint();
  LoadSeries history = WeeklyHistory();
  auto plan = PlanBackupDay(endpoint, "srv", history, /*week=*/2,
                            DayOfWeek::kWednesday, 120);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->moved_day);
  EXPECT_EQ(DayOfWeekOf(plan->chosen.day_index * kMinutesPerDay),
            DayOfWeek::kSunday);
  EXPECT_NEAR(plan->chosen.window.average_load, 3.0, 1.0);
  EXPECT_GT(plan->predicted_saving, 40.0);
  EXPECT_EQ(plan->candidates.size(), 7u);
}

TEST(DayOptimizerTest, StaysOnDefaultWhenSavingSmall) {
  ModelEndpoint endpoint = WeeklyEndpoint();
  // Flat history: every day looks the same.
  std::vector<double> flat(2 * 7 * 288, 20.0);
  LoadSeries history =
      std::move(LoadSeries::Make(0, 5, std::move(flat))).ValueOrDie();
  auto plan = PlanBackupDay(endpoint, "srv", history, 2,
                            DayOfWeek::kFriday, 120);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->moved_day);
  EXPECT_EQ(DayOfWeekOf(plan->chosen.day_index * kMinutesPerDay),
            DayOfWeek::kFriday);
  EXPECT_DOUBLE_EQ(plan->predicted_saving, 0.0);
}

TEST(DayOptimizerTest, MinSavingThresholdConfigurable) {
  ModelEndpoint endpoint = WeeklyEndpoint();
  // Sunday saves ~8 points: below the default threshold of 5? Above it.
  std::vector<double> values;
  for (int64_t i = 0; i < 2 * 7 * 288; ++i) {
    int64_t day = (i / 288) % 7;
    values.push_back(day == 6 ? 12.0 : 20.0);
  }
  LoadSeries history =
      std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
  DayOptimizerOptions strict;
  strict.min_saving = 20.0;  // 8-point saving is not worth it
  auto plan = PlanBackupDay(endpoint, "srv", history, 2,
                            DayOfWeek::kMonday, 120, strict);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->moved_day);
  DayOptimizerOptions loose;
  loose.min_saving = 2.0;
  auto plan2 = PlanBackupDay(endpoint, "srv", history, 2,
                             DayOfWeek::kMonday, 120, loose);
  ASSERT_TRUE(plan2.ok());
  EXPECT_TRUE(plan2->moved_day);
}

TEST(DayOptimizerTest, UnknownServerFails) {
  // Endpoint with only a per-server model for someone else.
  PersistentForecast model;
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  models["other"] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  ModelEndpoint endpoint =
      std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();
  LoadSeries history = WeeklyHistory();
  EXPECT_TRUE(PlanBackupDay(endpoint, "srv", history, 2,
                            DayOfWeek::kMonday, 120)
                  .status()
                  .IsNotFound());
}

TEST(WindowAdvisorTest, FlagsBadCustomerWindow) {
  ModelEndpoint endpoint = WeeklyEndpoint();
  // History: nights idle, days busy.
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    values.push_back(i % 288 < 60 ? 4.0 : 50.0);
  }
  LoadSeries history =
      std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
  // Customer picked 14:00 on day 7 (same weekday as day 0).
  MinuteStamp customer = 7 * kMinutesPerDay + 14 * 60;
  auto advice = AdviseCustomerWindow(endpoint, "srv", history, customer, 60);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_FALSE(advice->customer_window_ok);
  EXPECT_GT(advice->predicted_saving, 30.0);
  EXPECT_LT(MinuteOfDay(advice->suggested.start), 5 * 60);
}

TEST(WindowAdvisorTest, AcceptsGoodCustomerWindow) {
  ModelEndpoint endpoint = WeeklyEndpoint();
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    values.push_back(i % 288 < 60 ? 4.0 : 50.0);
  }
  LoadSeries history =
      std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
  MinuteStamp customer = 7 * kMinutesPerDay + 60;  // 01:00, in the valley
  auto advice = AdviseCustomerWindow(endpoint, "srv", history, customer, 60);
  ASSERT_TRUE(advice.ok());
  EXPECT_TRUE(advice->customer_window_ok);
}

TEST(WindowAdvisorTest, RejectsCrossDayWindow) {
  ModelEndpoint endpoint = WeeklyEndpoint();
  LoadSeries history = WeeklyHistory();
  MinuteStamp customer = 7 * kMinutesPerDay + 23 * 60 + 30;
  EXPECT_TRUE(AdviseCustomerWindow(endpoint, "srv", history, customer, 120)
                  .status()
                  .IsInvalid());
}

TEST(OverbookingTest, ReportShapes) {
  RegionConfig config;
  config.name = "overbook";
  config.num_servers = 120;
  config.weeks = 4;
  config.seed = 64;
  Fleet fleet = Fleet::Generate(config);
  OverbookingReport report = AnalyzeOverbooking(fleet, 3);
  EXPECT_GT(report.servers, 50);
  EXPECT_GT(report.provisioned, 0.0);
  // Demand ordering: mean <= p95 <= peak <= provisioned.
  EXPECT_LE(report.mean_demand, report.p95_demand + 1e-9);
  EXPECT_LE(report.p95_demand, report.peak_demand + 1e-9);
  EXPECT_LE(report.peak_demand, report.provisioned);
  // The headline: most capacity is idle even at per-server peaks.
  EXPECT_GT(report.PeakHeadroom(), 0.3);
  EXPECT_GT(report.PackingFactor(), 1.5);
}

TEST(OverbookingTest, PackingFitsMultipleServersWithFewViolations) {
  RegionConfig config;
  config.name = "packing";
  config.num_servers = 100;
  config.weeks = 4;
  config.seed = 65;
  Fleet fleet = Fleet::Generate(config);
  PackingOutcome outcome = SimulatePacking(fleet, 3, 10.0);
  EXPECT_GE(outcome.servers_per_host, 2);
  EXPECT_LT(outcome.violation_rate, 0.05);
}

TEST(OverbookingTest, HigherMarginPacksFewer) {
  RegionConfig config;
  config.name = "margin";
  config.num_servers = 100;
  config.weeks = 4;
  config.seed = 66;
  Fleet fleet = Fleet::Generate(config);
  PackingOutcome tight = SimulatePacking(fleet, 3, 5.0);
  PackingOutcome safe = SimulatePacking(fleet, 3, 60.0);
  EXPECT_GE(tight.servers_per_host, safe.servers_per_host);
}

}  // namespace
}  // namespace seagull
