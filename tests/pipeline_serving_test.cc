#include "pipeline/serving.h"

#include <gtest/gtest.h>

#include "serving_test_util.h"

namespace seagull {
namespace {

TEST(SeriesWireTest, RoundTripWithMissing) {
  LoadSeries s = DayOfLoad();
  s.SetValue(10, kMissingValue);
  Json doc = SeriesToJson(s);
  auto back = SeriesFromJson(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->start(), s.start());
  EXPECT_EQ(back->interval_minutes(), s.interval_minutes());
  ASSERT_EQ(back->size(), s.size());
  EXPECT_TRUE(back->MissingAt(10));
  EXPECT_DOUBLE_EQ(back->ValueAt(100), 40.0);
}

TEST(SeriesWireTest, RejectsMalformed) {
  Json bad = Json::MakeObject();
  bad["start"] = 0;
  EXPECT_FALSE(SeriesFromJson(bad).ok());  // no interval/values
  bad["interval"] = 5;
  bad["values"] = Json::MakeArray();
  bad["values"].Append("text");
  EXPECT_FALSE(SeriesFromJson(bad).ok());
}

TEST(ForecastRequestTest, RoundTrip) {
  ForecastRequest req;
  req.server_id = "srv-1";
  req.start = kMinutesPerDay;
  req.horizon_minutes = kMinutesPerDay;
  req.recent = DayOfLoad();
  auto back = ForecastRequest::FromJson(req.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->server_id, "srv-1");
  EXPECT_EQ(back->start, kMinutesPerDay);
  EXPECT_EQ(back->recent.size(), 288);
}

/// The wire contract runs against two handler paths: the stateless
/// `ForecastService` and the streaming `ServingEngine`, whose
/// verb-defaulting predict path accepts the exact same request form
/// (the "recent" series routes it through the endpoint directly). Both
/// must produce the same success shape, the same structured errors, and
/// the same served/failed accounting.
class ServingContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  ServingContractTest()
      : service_(MakePrevDayEndpoint()), engine_(MakePrevDayEndpoint()) {}

  bool UsesEngine() const { return std::string(GetParam()) == "engine"; }

  std::string Handle(const std::string& request_text) {
    return UsesEngine() ? engine_.Handle(request_text)
                        : service_.HandleRequest(request_text);
  }

  int64_t served() const {
    return UsesEngine() ? engine_.requests_served()
                        : service_.requests_served();
  }
  int64_t failed() const {
    return UsesEngine() ? engine_.requests_failed()
                        : service_.requests_failed();
  }

  ForecastService service_;
  ServingEngine engine_;
};

TEST_P(ServingContractTest, ServesForecast) {
  ForecastRequest req;
  req.server_id = "srv-1";
  req.start = kMinutesPerDay;
  req.horizon_minutes = kMinutesPerDay;
  req.recent = DayOfLoad();
  std::string response_text = Handle(req.ToJson().Dump());

  auto response = Json::Parse(response_text);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE((*response)["ok"].AsBool());
  EXPECT_EQ((*response)["model_version"].AsInt(), 7);
  auto forecast = SeriesFromJson((*response)["forecast"]);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 288);
  // Previous-day forecast replicates the valley.
  EXPECT_DOUBLE_EQ(forecast->ValueAt(0), 5.0);
  EXPECT_DOUBLE_EQ(forecast->ValueAt(100), 40.0);
  EXPECT_EQ(served(), 1);
  EXPECT_EQ(failed(), 0);
}

TEST_P(ServingContractTest, StructuredErrors) {
  // Not JSON.
  auto r1 = Json::Parse(Handle("not json at all"));
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE((*r1)["ok"].AsBool());
  EXPECT_EQ((*r1)["code"].AsString(), "Invalid");
  // JSON but missing fields.
  auto r2 = Json::Parse(Handle("{}"));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE((*r2)["ok"].AsBool());
  // Valid shape but misaligned range -> model error surfaces.
  ForecastRequest req;
  req.server_id = "srv";
  req.start = kMinutesPerDay + 2;
  req.horizon_minutes = 60;
  req.recent = DayOfLoad();
  auto r3 = Json::Parse(Handle(req.ToJson().Dump()));
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE((*r3)["ok"].AsBool());
  EXPECT_EQ(served(), 0);
  EXPECT_EQ(failed(), 3);
}

TEST_P(ServingContractTest, NegativeHorizonRejected) {
  ForecastRequest req;
  req.server_id = "srv";
  req.start = 0;
  req.horizon_minutes = 60;
  req.recent = DayOfLoad();
  Json doc = req.ToJson();
  doc["horizon_minutes"] = -5;
  auto response = Json::Parse(Handle(doc.Dump()));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE((*response)["ok"].AsBool());
}

TEST_P(ServingContractTest, EmptyServerIdRejected) {
  ForecastRequest req;
  req.server_id = "";
  req.start = kMinutesPerDay;
  req.horizon_minutes = 60;
  req.recent = DayOfLoad();
  auto response = Json::Parse(Handle(req.ToJson().Dump()));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE((*response)["ok"].AsBool());
  EXPECT_EQ((*response)["code"].AsString(), "Invalid");
  EXPECT_EQ((*response)["error"].AsString(), "server id must not be empty");
}

INSTANTIATE_TEST_SUITE_P(Backends, ServingContractTest,
                         ::testing::Values("service", "engine"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

/// Negative-path parity: the two backends must emit the exact same
/// {ok,error,code} bytes for malformed traffic, so callers can switch
/// between them without re-learning error handling. (The PR 6 suite
/// only checked each backend's shape, not cross-backend equality.)
TEST(ServingContractParityTest, MalformedRequestsMatchByteForByte) {
  ForecastService service(MakePrevDayEndpoint());
  ServingEngine engine(MakePrevDayEndpoint());

  ForecastRequest empty_id;
  empty_id.server_id = "";
  empty_id.start = kMinutesPerDay;
  empty_id.horizon_minutes = 60;
  empty_id.recent = DayOfLoad();

  const std::string cases[] = {
      "not json at all",           // bad JSON
      "{}",                        // missing verb and every field
      "{\"verb\": \"predict\"}",   // explicit verb, no server id
      empty_id.ToJson().Dump(),    // empty server id
  };
  for (const std::string& request : cases) {
    const std::string from_service = service.HandleRequest(request);
    const std::string from_engine = engine.Handle(request);
    EXPECT_EQ(from_service, from_engine) << request;
    auto parsed = Json::Parse(from_service);
    ASSERT_TRUE(parsed.ok()) << request;
    EXPECT_FALSE((*parsed)["ok"].AsBool()) << request;
    EXPECT_TRUE((*parsed)["error"].is_string()) << request;
    EXPECT_TRUE((*parsed)["code"].is_string()) << request;
  }
  EXPECT_EQ(service.requests_failed(), engine.requests_failed());
  EXPECT_EQ(service.requests_served(), engine.requests_served());
}

TEST(ForecastServiceTest, EndToEndThroughDeployedRegistry) {
  // Deploy through the registry, load the active endpoint, serve.
  DocStore docs;
  PersistentForecast model;
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  Document doc;
  doc.partition_key = "region";
  doc.id = "v000001";
  doc.body = std::move(body);
  docs.GetContainer(kModelRegistryContainer)->Upsert(doc).Abort();
  SetActiveVersion(&docs, "region", 1, "test").Abort();

  auto endpoint = LoadActiveEndpoint(&docs, "region");
  ASSERT_TRUE(endpoint.ok());
  ForecastService service(std::move(endpoint).ValueUnsafe());
  ForecastRequest req;
  req.server_id = "any";
  req.start = kMinutesPerDay;
  req.horizon_minutes = 120;
  req.recent = DayOfLoad();
  auto response = Json::Parse(service.HandleRequest(req.ToJson().Dump()));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE((*response)["ok"].AsBool());
}

}  // namespace
}  // namespace seagull
