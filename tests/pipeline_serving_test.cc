#include "pipeline/serving.h"

#include <gtest/gtest.h>

#include "forecast/persistent.h"

namespace seagull {
namespace {

ModelEndpoint MakeEndpoint() {
  PersistentForecast model(PersistentVariant::kPreviousDay);
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = 7;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  return std::move(ModelEndpoint::FromVersionDoc(body)).ValueOrDie();
}

LoadSeries DayOfLoad() {
  std::vector<double> values(288);
  for (int64_t i = 0; i < 288; ++i) {
    values[static_cast<size_t>(i)] = i < 48 ? 5.0 : 40.0;
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(SeriesWireTest, RoundTripWithMissing) {
  LoadSeries s = DayOfLoad();
  s.SetValue(10, kMissingValue);
  Json doc = SeriesToJson(s);
  auto back = SeriesFromJson(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->start(), s.start());
  EXPECT_EQ(back->interval_minutes(), s.interval_minutes());
  ASSERT_EQ(back->size(), s.size());
  EXPECT_TRUE(back->MissingAt(10));
  EXPECT_DOUBLE_EQ(back->ValueAt(100), 40.0);
}

TEST(SeriesWireTest, RejectsMalformed) {
  Json bad = Json::MakeObject();
  bad["start"] = 0;
  EXPECT_FALSE(SeriesFromJson(bad).ok());  // no interval/values
  bad["interval"] = 5;
  bad["values"] = Json::MakeArray();
  bad["values"].Append("text");
  EXPECT_FALSE(SeriesFromJson(bad).ok());
}

TEST(ForecastRequestTest, RoundTrip) {
  ForecastRequest req;
  req.server_id = "srv-1";
  req.start = kMinutesPerDay;
  req.horizon_minutes = kMinutesPerDay;
  req.recent = DayOfLoad();
  auto back = ForecastRequest::FromJson(req.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->server_id, "srv-1");
  EXPECT_EQ(back->start, kMinutesPerDay);
  EXPECT_EQ(back->recent.size(), 288);
}

TEST(ForecastServiceTest, ServesForecast) {
  ForecastService service(MakeEndpoint());
  ForecastRequest req;
  req.server_id = "srv-1";
  req.start = kMinutesPerDay;
  req.horizon_minutes = kMinutesPerDay;
  req.recent = DayOfLoad();
  std::string response_text = service.HandleRequest(req.ToJson().Dump());

  auto response = Json::Parse(response_text);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE((*response)["ok"].AsBool());
  EXPECT_EQ((*response)["model_version"].AsInt(), 7);
  auto forecast = SeriesFromJson((*response)["forecast"]);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 288);
  // Previous-day forecast replicates the valley.
  EXPECT_DOUBLE_EQ(forecast->ValueAt(0), 5.0);
  EXPECT_DOUBLE_EQ(forecast->ValueAt(100), 40.0);
  EXPECT_EQ(service.requests_served(), 1);
  EXPECT_EQ(service.requests_failed(), 0);
}

TEST(ForecastServiceTest, StructuredErrors) {
  ForecastService service(MakeEndpoint());
  // Not JSON.
  auto r1 = Json::Parse(service.HandleRequest("not json at all"));
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE((*r1)["ok"].AsBool());
  EXPECT_EQ((*r1)["code"].AsString(), "Invalid");
  // JSON but missing fields.
  auto r2 = Json::Parse(service.HandleRequest("{}"));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE((*r2)["ok"].AsBool());
  // Valid shape but misaligned range -> model error surfaces.
  ForecastRequest req;
  req.server_id = "srv";
  req.start = kMinutesPerDay + 2;
  req.horizon_minutes = 60;
  req.recent = DayOfLoad();
  auto r3 = Json::Parse(service.HandleRequest(req.ToJson().Dump()));
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE((*r3)["ok"].AsBool());
  EXPECT_EQ(service.requests_served(), 0);
  EXPECT_EQ(service.requests_failed(), 3);
}

TEST(ForecastServiceTest, NegativeHorizonRejected) {
  ForecastService service(MakeEndpoint());
  ForecastRequest req;
  req.server_id = "srv";
  req.start = 0;
  req.horizon_minutes = 60;
  req.recent = DayOfLoad();
  Json doc = req.ToJson();
  doc["horizon_minutes"] = -5;
  auto response = Json::Parse(service.HandleRequest(doc.Dump()));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE((*response)["ok"].AsBool());
}

TEST(ForecastServiceTest, EndToEndThroughDeployedRegistry) {
  // Deploy through the registry, load the active endpoint, serve.
  DocStore docs;
  PersistentForecast model;
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  models[""] = std::move(model.Serialize()).ValueOrDie();
  body["models"] = std::move(models);
  Document doc;
  doc.partition_key = "region";
  doc.id = "v000001";
  doc.body = std::move(body);
  docs.GetContainer(kModelRegistryContainer)->Upsert(doc).Abort();
  SetActiveVersion(&docs, "region", 1, "test").Abort();

  auto endpoint = LoadActiveEndpoint(&docs, "region");
  ASSERT_TRUE(endpoint.ok());
  ForecastService service(std::move(endpoint).ValueUnsafe());
  ForecastRequest req;
  req.server_id = "any";
  req.start = kMinutesPerDay;
  req.horizon_minutes = 120;
  req.recent = DayOfLoad();
  auto response = Json::Parse(service.HandleRequest(req.ToJson().Dump()));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE((*response)["ok"].AsBool());
}

}  // namespace
}  // namespace seagull
