#include "forecast/model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "forecast/persistent.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

LoadSeries TrainingSeries() {
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    values.push_back(25.0 + 10.0 * std::sin(kTwoPi * phase));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(ModelFactoryTest, AllBuiltInFamiliesRegistered) {
  auto names = ModelFactory::Global().Names();
  for (const char* expected :
       {"persistent_prev_day", "persistent_prev_eq_day",
        "persistent_week_avg", "ssa", "feedforward", "additive", "arima"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ModelFactoryTest, CreateUnknownFails) {
  EXPECT_TRUE(
      ModelFactory::Global().Create("prophet9000").status().IsNotFound());
}

TEST(ModelFactoryTest, CreatedModelReportsItsName) {
  for (const auto& name : ModelFactory::Global().Names()) {
    auto model = ModelFactory::Global().Create(name);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ((*model)->name(), name);
  }
}

TEST(ModelFactoryTest, OnlyPersistentSkipsTraining) {
  for (const auto& name : ModelFactory::Global().Names()) {
    auto model = std::move(ModelFactory::Global().Create(name)).ValueOrDie();
    bool is_persistent = name.rfind("persistent", 0) == 0;
    EXPECT_EQ(model->requires_training(), !is_persistent) << name;
  }
}

TEST(ModelFactoryTest, RestoreRoundTripsEveryTrainableFamily) {
  LoadSeries train = TrainingSeries();
  // Keep the expensive families fast by restricting to the cheap ones
  // plus SSA; the per-family tests cover the rest.
  for (const std::string name :
       {"persistent_prev_day", "persistent_week_avg", "ssa"}) {
    auto model = std::move(ModelFactory::Global().Create(name)).ValueOrDie();
    ASSERT_TRUE(model->Fit(train).ok()) << name;
    Json doc = std::move(model->Serialize()).ValueOrDie();
    auto restored = ModelFactory::Global().Restore(doc);
    ASSERT_TRUE(restored.ok()) << name;
    EXPECT_EQ((*restored)->name(), name);
    auto f1 = model->Forecast(train, train.end(), 60);
    auto f2 = (*restored)->Forecast(train, train.end(), 60);
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f2.ok());
    for (int64_t i = 0; i < f1->size(); ++i) {
      EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9) << name;
    }
  }
}

TEST(ModelFactoryTest, RestoreRejectsMissingModelField) {
  Json doc = Json::MakeObject();
  doc["variant"] = 0;
  EXPECT_FALSE(ModelFactory::Global().Restore(doc).ok());
}

TEST(ModelFactoryTest, RestoreRejectsCorruptParams) {
  Json doc = Json::MakeObject();
  doc["model"] = "ssa";  // but no lrf/mean fields
  EXPECT_FALSE(ModelFactory::Global().Restore(doc).ok());
}

TEST(ModelFactoryTest, CustomRegistration) {
  ModelFactory factory;
  factory.Register("custom", [] {
    return std::make_unique<PersistentForecast>(
        PersistentVariant::kPreviousDay);
  });
  auto model = factory.Create("custom");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(factory.Names(), (std::vector<std::string>{"custom"}));
}

TEST(WrapModelDocTest, AddsFamilyName) {
  PersistentForecast model;
  Json params = Json::MakeObject();
  params["x"] = 1;
  Json doc = WrapModelDoc(model, params);
  EXPECT_EQ(doc["model"].AsString(), model.name());
  EXPECT_DOUBLE_EQ(doc["x"].AsDouble(), 1.0);
}

}  // namespace
}  // namespace seagull
