#include "serving/engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "serving_test_util.h"

namespace seagull {
namespace {

/// Parses a handler response, asserting it is valid JSON.
Json MustParse(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.ok() ? *parsed : Json();
}

std::string PredictRequest(const std::string& server_id) {
  Json doc = Json::MakeObject();
  doc["verb"] = "predict";
  doc["server_id"] = server_id;
  return doc.Dump();
}

std::string IngestRequest(const std::string& server_id, int64_t seq,
                          const LoadSeries& increment) {
  Json doc = Json::MakeObject();
  doc["verb"] = "ingest";
  doc["server_id"] = server_id;
  doc["seq"] = seq;
  doc["series"] = SeriesToJson(increment);
  return doc.Dump();
}

/// One 5-minute sample extending a tail that ends at `start`.
LoadSeries OneSample(MinuteStamp start, double value) {
  return std::move(LoadSeries::Make(start, 5, {value})).ValueOrDie();
}

class ServingEngineTest : public ::testing::Test {
 protected:
  ServingEngineTest() : engine_(MakePrevDayEndpoint()) {}

  void BootstrapThree() {
    std::vector<ServerTelemetry> fleet;
    fleet.push_back(MakeTail("srv-a", DayOfLoad()));
    fleet.push_back(MakeTail("srv-b", DayOfLoad()));
    fleet.push_back(MakeTail("srv-c", DayOfLoad()));
    ASSERT_TRUE(engine_.Bootstrap(fleet).ok());
  }

  ServingEngine engine_;
};

TEST_F(ServingEngineTest, BootstrapAndFirstTick) {
  BootstrapThree();
  EXPECT_EQ(engine_.server_count(), 3);

  // Before the first tick there is no forecast to serve.
  Json early = MustParse(engine_.Handle(PredictRequest("srv-a")));
  EXPECT_FALSE(early["ok"].AsBool());
  EXPECT_EQ(early["code"].AsString(), "FailedPrecondition");

  TickResult tick = engine_.Tick();
  EXPECT_EQ(tick.tick, 1);
  EXPECT_EQ(tick.refits, 3);
  EXPECT_EQ(tick.refit_failures, 0);
  EXPECT_EQ(tick.clean_skips, 0);

  // The cached forecast replicates the previous day from the tail's end.
  Json response = MustParse(engine_.Handle(PredictRequest("srv-a")));
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["model_version"].AsInt(), 7);
  EXPECT_EQ(response["tick"].AsInt(), 1);
  auto forecast = SeriesFromJson(response["forecast"]);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->start(), kMinutesPerDay);
  EXPECT_EQ(forecast->size(), 288);
  EXPECT_DOUBLE_EQ(forecast->ValueAt(0), 5.0);
  EXPECT_DOUBLE_EQ(forecast->ValueAt(100), 40.0);
}

TEST_F(ServingEngineTest, DirtySetTracking) {
  BootstrapThree();
  engine_.Tick();

  // Nothing changed: the second tick refits nobody.
  TickResult idle = engine_.Tick();
  EXPECT_EQ(idle.refits, 0);
  EXPECT_EQ(idle.clean_skips, 3);

  // One ingest dirties exactly one server.
  Json ack = MustParse(engine_.Handle(
      IngestRequest("srv-a", 0, OneSample(kMinutesPerDay, 12.5))));
  ASSERT_TRUE(ack["ok"].AsBool());
  EXPECT_EQ(engine_.pending_ingests(), 1);

  const std::string untouched_before = engine_.Handle(PredictRequest("srv-b"));
  TickResult tick = engine_.Tick();
  EXPECT_EQ(tick.ingests_applied, 1);
  EXPECT_EQ(tick.refits, 1);
  EXPECT_EQ(tick.clean_skips, 2);
  EXPECT_EQ(engine_.pending_ingests(), 0);

  // The dirty server re-forecast on this tick; the clean one still
  // serves the forecast installed by tick 1, byte for byte — only the
  // response's epoch stamp advances with the snapshot that answered.
  Json refreshed = MustParse(engine_.Handle(PredictRequest("srv-a")));
  EXPECT_EQ(refreshed["tick"].AsInt(), 3);
  Json stale_before = MustParse(untouched_before);
  Json stale_after = MustParse(engine_.Handle(PredictRequest("srv-b")));
  EXPECT_EQ(stale_after["forecast"].Dump(), stale_before["forecast"].Dump());
  EXPECT_EQ(stale_after["tick"].AsInt(), stale_before["tick"].AsInt());
  EXPECT_EQ(stale_before["epoch"].AsInt(), 2);
  EXPECT_EQ(stale_after["epoch"].AsInt(), 3);
}

TEST_F(ServingEngineTest, StaleReadsBetweenTicks) {
  BootstrapThree();
  engine_.Tick();

  // An ingest only enqueues: queries keep observing the last tick's
  // forecast until the next tick applies the increment.
  const std::string before = engine_.Handle(PredictRequest("srv-a"));
  engine_.Handle(IngestRequest("srv-a", 0, OneSample(kMinutesPerDay, 99.0)));
  EXPECT_EQ(engine_.Handle(PredictRequest("srv-a")), before);
  EXPECT_EQ(engine_.pending_ingests(), 1);

  engine_.Tick();
  const std::string after = engine_.Handle(PredictRequest("srv-a"));
  EXPECT_NE(after, before);  // refit moved the forecast window forward
  EXPECT_EQ(MustParse(after)["tick"].AsInt(), 2);
}

TEST_F(ServingEngineTest, UnknownServerStructuredErrors) {
  BootstrapThree();
  engine_.Tick();
  for (const char* verb : {"predict", "ll_window"}) {
    Json doc = Json::MakeObject();
    doc["verb"] = verb;
    doc["server_id"] = "ghost";
    Json response = MustParse(engine_.Handle(doc.Dump()));
    EXPECT_FALSE(response["ok"].AsBool());
    EXPECT_EQ(response["code"].AsString(), "NotFound") << verb;
  }
  EXPECT_EQ(engine_.requests_failed(), 2);
}

TEST_F(ServingEngineTest, MalformedAndUnknownVerbs) {
  Json r1 = MustParse(engine_.Handle("not json at all"));
  EXPECT_FALSE(r1["ok"].AsBool());
  EXPECT_EQ(r1["code"].AsString(), "Invalid");

  Json doc = Json::MakeObject();
  doc["verb"] = "explode";
  doc["server_id"] = "srv-a";
  Json r2 = MustParse(engine_.Handle(doc.Dump()));
  EXPECT_FALSE(r2["ok"].AsBool());
  EXPECT_EQ(r2["code"].AsString(), "Invalid");
  EXPECT_EQ(engine_.requests_failed(), 2);
  EXPECT_EQ(engine_.requests_served(), 0);
}

TEST_F(ServingEngineTest, IngestAutoRegistersNewServers) {
  BootstrapThree();
  engine_.Tick();
  Json ack = MustParse(
      engine_.Handle(IngestRequest("srv-new", 0, DayOfLoad())));
  ASSERT_TRUE(ack["ok"].AsBool());
  EXPECT_EQ(engine_.server_count(), 4);

  TickResult tick = engine_.Tick();
  EXPECT_EQ(tick.refits, 1);
  Json response = MustParse(engine_.Handle(PredictRequest("srv-new")));
  EXPECT_TRUE(response["ok"].AsBool());
}

TEST_F(ServingEngineTest, IngestValidation) {
  BootstrapThree();
  // Interval mismatch with the server's 5-minute grid.
  Json bad = MustParse(engine_.Handle(IngestRequest(
      "srv-a", 0,
      std::move(LoadSeries::Make(kMinutesPerDay, 10, {1.0})).ValueOrDie())));
  EXPECT_FALSE(bad["ok"].AsBool());
  EXPECT_EQ(bad["code"].AsString(), "Invalid");

  // No series object at all.
  Json doc = Json::MakeObject();
  doc["verb"] = "ingest";
  doc["server_id"] = "srv-a";
  Json no_series = MustParse(engine_.Handle(doc.Dump()));
  EXPECT_FALSE(no_series["ok"].AsBool());
  EXPECT_EQ(engine_.pending_ingests(), 0);
}

TEST_F(ServingEngineTest, PredictSliceAndLLWindow) {
  BootstrapThree();
  engine_.Tick();

  // Slice the cached forecast to the valley only.
  Json doc = Json::MakeObject();
  doc["verb"] = "predict";
  doc["server_id"] = "srv-a";
  doc["start"] = kMinutesPerDay;
  doc["horizon_minutes"] = 240;
  Json sliced = MustParse(engine_.Handle(doc.Dump()));
  ASSERT_TRUE(sliced["ok"].AsBool());
  auto forecast = SeriesFromJson(sliced["forecast"]);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 48);
  EXPECT_DOUBLE_EQ(forecast->ValueAt(47), 5.0);

  // A slice outside the cached range is a structured error.
  doc["start"] = 10 * kMinutesPerDay;
  Json outside = MustParse(engine_.Handle(doc.Dump()));
  EXPECT_FALSE(outside["ok"].AsBool());
  EXPECT_EQ(outside["code"].AsString(), "FailedPrecondition");

  // The lowest-load window lands in the replicated valley.
  Json ll = Json::MakeObject();
  ll["verb"] = "ll_window";
  ll["server_id"] = "srv-a";
  Json window = MustParse(engine_.Handle(ll.Dump()));
  ASSERT_TRUE(window["ok"].AsBool());
  EXPECT_DOUBLE_EQ(window["window"]["average_load"].AsDouble(), 5.0);
  EXPECT_LT(window["window"]["start"].AsInt(), kMinutesPerDay + 240);
  EXPECT_EQ(window["window"]["duration_minutes"].AsInt(), 60);

  ll["duration_minutes"] = -5;
  Json bad = MustParse(engine_.Handle(ll.Dump()));
  EXPECT_FALSE(bad["ok"].AsBool());
  EXPECT_EQ(bad["code"].AsString(), "Invalid");
}

std::string BatchPredictRequest(const std::vector<std::string>& servers) {
  Json doc = Json::MakeObject();
  doc["verb"] = "predict";
  Json list = Json::MakeArray();
  for (const auto& id : servers) list.Append(Json(id));
  doc["servers"] = std::move(list);
  return doc.Dump();
}

std::string SubscribeRequest(const std::string& id,
                             const std::string& server_id) {
  Json doc = Json::MakeObject();
  doc["verb"] = "subscribe_ll";
  doc["id"] = id;
  doc["server_id"] = server_id;
  return doc.Dump();
}

TEST_F(ServingEngineTest, BatchPredictOneSnapshot) {
  BootstrapThree();
  engine_.Tick();

  Json response =
      MustParse(engine_.Handle(BatchPredictRequest({"srv-a", "srv-b"})));
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["epoch"].AsInt(), 1);
  EXPECT_EQ(response["served"].AsInt(), 2);
  EXPECT_EQ(response["failed"].AsInt(), 0);
  const auto& results = response["results"].AsArray();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0]["server_id"].AsString(), "srv-a");
  EXPECT_EQ(results[1]["server_id"].AsString(), "srv-b");
  EXPECT_TRUE(results[0]["ok"].AsBool());
  // The whole batch is one request for accounting purposes.
  EXPECT_EQ(engine_.requests_served(), 1);
}

TEST_F(ServingEngineTest, BatchPredictDuplicateIds) {
  BootstrapThree();
  engine_.Tick();
  // Duplicates are answered independently — and identically, because
  // both entries read the same snapshot.
  Json response =
      MustParse(engine_.Handle(BatchPredictRequest({"srv-a", "srv-a"})));
  ASSERT_TRUE(response["ok"].AsBool());
  const auto& results = response["results"].AsArray();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].Dump(), results[1].Dump());
}

TEST_F(ServingEngineTest, BatchPredictUnknownMixedWithKnown) {
  BootstrapThree();
  engine_.Tick();
  Json response = MustParse(
      engine_.Handle(BatchPredictRequest({"srv-a", "ghost", "srv-c"})));
  // Per-server failures do not fail the batch.
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["served"].AsInt(), 2);
  EXPECT_EQ(response["failed"].AsInt(), 1);
  const auto& results = response["results"].AsArray();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0]["ok"].AsBool());
  EXPECT_FALSE(results[1]["ok"].AsBool());
  EXPECT_EQ(results[1]["server_id"].AsString(), "ghost");
  EXPECT_EQ(results[1]["code"].AsString(), "NotFound");
  EXPECT_TRUE(results[2]["ok"].AsBool());
  EXPECT_EQ(engine_.requests_failed(), 0);
}

TEST_F(ServingEngineTest, BatchPredictValidation) {
  BootstrapThree();
  engine_.Tick();
  // An empty batch is a request-level error.
  Json empty = MustParse(engine_.Handle(BatchPredictRequest({})));
  EXPECT_FALSE(empty["ok"].AsBool());
  EXPECT_EQ(empty["code"].AsString(), "Invalid");

  // Oversized batches are rejected whole (engine with a tiny cap).
  ServingOptions options;
  options.max_batch_servers = 2;
  ServingEngine small(MakePrevDayEndpoint(), options);
  std::vector<ServerTelemetry> fleet;
  fleet.push_back(MakeTail("srv-a", DayOfLoad()));
  ASSERT_TRUE(small.Bootstrap(fleet).ok());
  small.Tick();
  Json over = MustParse(
      small.Handle(BatchPredictRequest({"srv-a", "srv-a", "srv-a"})));
  EXPECT_FALSE(over["ok"].AsBool());
  EXPECT_EQ(over["code"].AsString(), "Invalid");
}

TEST_F(ServingEngineTest, SubscriptionFiresOncePerWindowMove) {
  BootstrapThree();
  engine_.Tick();

  Json ack = MustParse(engine_.Handle(SubscribeRequest("watch-a", "srv-a")));
  ASSERT_TRUE(ack["ok"].AsBool());
  EXPECT_TRUE(ack["armed"].AsBool());  // forecast published → armed at once
  EXPECT_EQ(engine_.subscription_count(), 1);
  const int64_t armed_start = ack["window"]["start"].AsInt();

  // A clean tick refits nothing, so the window cannot move.
  EXPECT_TRUE(engine_.Tick().notifications.empty());

  // An ingest slides the tail (and so the replicated forecast) forward
  // 5 minutes: the lowest-load window moves, firing exactly one record.
  engine_.Handle(IngestRequest("srv-a", 0, OneSample(kMinutesPerDay, 40.0)));
  TickResult moved = engine_.Tick();
  ASSERT_EQ(moved.notifications.size(), 1u);
  EXPECT_EQ(moved.notifications[0].subscription_id, "watch-a");
  EXPECT_EQ(moved.notifications[0].server_id, "srv-a");
  EXPECT_EQ(moved.notifications[0].previous_start, armed_start);
  EXPECT_EQ(moved.notifications[0].window.start, armed_start + 5);
  EXPECT_EQ(moved.notifications[0].tick, 3);

  // No further movement, no further records — even across refits of
  // other servers.
  engine_.Handle(IngestRequest("srv-b", 0, OneSample(kMinutesPerDay, 1.0)));
  EXPECT_TRUE(engine_.Tick().notifications.empty());
  EXPECT_TRUE(engine_.Tick().notifications.empty());
}

TEST_F(ServingEngineTest, SubscribeBeforeFirstTickArmsSilently) {
  BootstrapThree();
  // No forecast yet: the subscription registers unarmed.
  Json ack = MustParse(engine_.Handle(SubscribeRequest("early", "srv-a")));
  ASSERT_TRUE(ack["ok"].AsBool());
  EXPECT_FALSE(ack["armed"].AsBool());

  // The first window the subscription observes arms it without firing.
  EXPECT_TRUE(engine_.Tick().notifications.empty());

  // Unknown servers cannot be subscribed to at all.
  Json ghost = MustParse(engine_.Handle(SubscribeRequest("g", "ghost")));
  EXPECT_FALSE(ghost["ok"].AsBool());
  EXPECT_EQ(ghost["code"].AsString(), "NotFound");
}

TEST_F(ServingEngineTest, UnsubscribeStopsRecordsAndRacesTick) {
  BootstrapThree();
  engine_.Tick();
  engine_.Handle(SubscribeRequest("watch-a", "srv-a"));

  // Removing the subscription before the window moves silences it.
  Json doc = Json::MakeObject();
  doc["verb"] = "unsubscribe";
  doc["id"] = "watch-a";
  Json ack = MustParse(engine_.Handle(doc.Dump()));
  ASSERT_TRUE(ack["ok"].AsBool());
  EXPECT_EQ(engine_.subscription_count(), 0);
  engine_.Handle(IngestRequest("srv-a", 0, OneSample(kMinutesPerDay, 40.0)));
  EXPECT_TRUE(engine_.Tick().notifications.empty());

  // Unknown ids are structured NotFound errors.
  Json missing = MustParse(engine_.Handle(doc.Dump()));
  EXPECT_FALSE(missing["ok"].AsBool());
  EXPECT_EQ(missing["code"].AsString(), "NotFound");

  // A tick may run concurrently with (un)subscribes: exercise the race
  // a few times — the subscription either sees the tick or it doesn't,
  // but the engine must stay consistent either way.
  for (int round = 0; round < 8; ++round) {
    engine_.Handle(SubscribeRequest("racer", "srv-a"));
    engine_.Handle(IngestRequest("srv-a", round + 1,
                                 OneSample(kMinutesPerDay + 5 * (round + 1),
                                           40.0)));
    std::thread ticker([&] { engine_.Tick(); });
    Json gone = MustParse(engine_.Handle(
        std::string("{\"verb\":\"unsubscribe\",\"id\":\"racer\"}")));
    EXPECT_TRUE(gone["ok"].AsBool());
    ticker.join();
    EXPECT_EQ(engine_.subscription_count(), 0);
  }
}

TEST_F(ServingEngineTest, SeqOrderControlsMergeNotArrival) {
  BootstrapThree();
  engine_.Tick();
  // Two increments for the same slot arrive out of seq order; the
  // higher seq must win the merge regardless of arrival order.
  engine_.Handle(IngestRequest("srv-a", 5, OneSample(kMinutesPerDay, 70.0)));
  engine_.Handle(IngestRequest("srv-a", 2, OneSample(kMinutesPerDay, 30.0)));
  TickResult tick = engine_.Tick();
  EXPECT_EQ(tick.ingests_applied, 2);

  Json doc = Json::MakeObject();
  doc["verb"] = "predict";
  doc["server_id"] = "srv-a";
  doc["start"] = 2 * kMinutesPerDay;
  doc["horizon_minutes"] = 5;
  Json response = MustParse(engine_.Handle(doc.Dump()));
  ASSERT_TRUE(response["ok"].AsBool());
  auto forecast = SeriesFromJson(response["forecast"]);
  ASSERT_TRUE(forecast.ok());
  // Prev-day forecast of the slot one day after the merged sample.
  EXPECT_DOUBLE_EQ(forecast->ValueAt(0), 70.0);
}

}  // namespace
}  // namespace seagull
