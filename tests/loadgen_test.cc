#include "serving/loadgen.h"

#include <gtest/gtest.h>

#include "serving_test_util.h"

namespace seagull {
namespace {

std::vector<std::string> Ids(int n) {
  std::vector<std::string> ids;
  for (int i = 0; i < n; ++i) ids.push_back("srv-" + std::to_string(i));
  return ids;
}

TEST(LoadProfileTest, ShapesMatchTheirNames) {
  const int64_t base = 100, ticks = 10;
  // Ramp: non-decreasing, ends at the full base rate.
  int64_t prev = 0;
  for (int64_t t = 0; t < ticks; ++t) {
    int64_t now = ProfileRequestsAtTick(LoadProfile::kRamp, base, t, ticks);
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_EQ(ProfileRequestsAtTick(LoadProfile::kRamp, base, ticks - 1, ticks),
            base);
  // Spike: quiet baseline except a 3x burst in the middle.
  EXPECT_EQ(ProfileRequestsAtTick(LoadProfile::kSpike, base, 0, ticks),
            base / 4);
  EXPECT_EQ(ProfileRequestsAtTick(LoadProfile::kSpike, base, ticks / 2, ticks),
            base * 3);
  // Soak: flat.
  for (int64_t t = 0; t < ticks; ++t) {
    EXPECT_EQ(ProfileRequestsAtTick(LoadProfile::kSoak, base, t, ticks), base);
  }
  // Out-of-range ticks prescribe nothing.
  EXPECT_EQ(ProfileRequestsAtTick(LoadProfile::kSoak, base, -1, ticks), 0);
  EXPECT_EQ(ProfileRequestsAtTick(LoadProfile::kSoak, base, ticks, ticks), 0);
}

TEST(LoadProfileTest, ParseRoundTrip) {
  for (LoadProfile p :
       {LoadProfile::kRamp, LoadProfile::kSpike, LoadProfile::kSoak}) {
    auto back = ParseLoadProfile(LoadProfileName(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
  for (DriverMode m : {DriverMode::kOpenLoop, DriverMode::kClosedLoop}) {
    auto back = ParseDriverMode(DriverModeName(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(ParseLoadProfile("tsunami").ok());
  EXPECT_FALSE(ParseDriverMode("ajar").ok());
}

TEST(BuildScheduleTest, ProfilesProduceDeclaredCounts) {
  for (LoadProfile profile :
       {LoadProfile::kRamp, LoadProfile::kSpike, LoadProfile::kSoak}) {
    LoadgenOptions options;
    options.profile = profile;
    options.ticks = 9;
    options.base_requests_per_tick = 50;

    // Open loop: schedule size is exactly the profile's total.
    options.mode = DriverMode::kOpenLoop;
    auto open = BuildSchedule(options, Ids(10));
    EXPECT_EQ(static_cast<int64_t>(open.size()),
              ProfileTotalRequests(profile, 50, 9));

    // Closed loop: one profile's worth per virtual client.
    options.mode = DriverMode::kClosedLoop;
    options.closed_loop_clients = 3;
    auto closed = BuildSchedule(options, Ids(10));
    EXPECT_EQ(static_cast<int64_t>(closed.size()),
              3 * ProfileTotalRequests(profile, 50, 9));

    // Per-tick counts match the profile's prescription.
    std::map<int64_t, int64_t> per_tick;
    for (const auto& req : open) ++per_tick[req.tick];
    for (int64_t t = 0; t < 9; ++t) {
      EXPECT_EQ(per_tick[t], ProfileRequestsAtTick(profile, 50, t, 9))
          << LoadProfileName(profile) << " tick " << t;
    }
  }
}

TEST(BuildScheduleTest, SeedDeterminesTheSchedule) {
  LoadgenOptions options;
  options.profile = LoadProfile::kSpike;
  options.ticks = 8;
  options.base_requests_per_tick = 40;
  options.seed = 123;
  auto a = BuildSchedule(options, Ids(20));
  auto b = BuildSchedule(options, Ids(20));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].tick, b[i].tick);
    EXPECT_EQ(a[i].offset_micros, b[i].offset_micros);
    EXPECT_EQ(a[i].body, b[i].body);
  }

  options.seed = 124;
  auto c = BuildSchedule(options, Ids(20));
  ASSERT_EQ(a.size(), c.size());  // counts are profile-, not seed-, driven
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_differs = any_differs || a[i].body != c[i].body;
  }
  EXPECT_TRUE(any_differs);
}

TEST(BuildScheduleTest, ScheduleInvariants) {
  LoadgenOptions options;
  options.profile = LoadProfile::kRamp;
  options.ticks = 6;
  options.base_requests_per_tick = 30;
  auto schedule = BuildSchedule(options, Ids(5));
  int64_t prev_offset = 0, prev_tick = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    // Seqs are the global arrival order.
    EXPECT_EQ(schedule[i].seq, static_cast<int64_t>(i));
    // Open-loop offsets are monotone within each tick.
    if (schedule[i].tick != prev_tick) prev_offset = 0;
    EXPECT_GE(schedule[i].offset_micros, prev_offset);
    prev_offset = schedule[i].offset_micros;
    prev_tick = schedule[i].tick;
    // Every body is parseable JSON with a known verb.
    auto body = Json::Parse(schedule[i].body);
    ASSERT_TRUE(body.ok());
    EXPECT_TRUE(schedule[i].verb == "predict" ||
                schedule[i].verb == "ll_window" ||
                schedule[i].verb == "ingest");
  }
}

TEST(BuildScheduleTest, MixedVerbScheduleIsDeterministic) {
  LoadgenOptions options;
  options.profile = LoadProfile::kSoak;
  options.ticks = 8;
  options.base_requests_per_tick = 60;
  options.seed = 42;
  options.predict_fraction = 0.4;
  options.ll_window_fraction = 0.15;
  options.batch_fraction = 0.15;
  options.batch_size = 5;
  options.subscribe_fraction = 0.15;

  auto a = BuildSchedule(options, Ids(12));
  auto b = BuildSchedule(options, Ids(12));
  ASSERT_EQ(a.size(), b.size());
  std::map<std::string, int64_t> verbs;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verb, b[i].verb);
    EXPECT_EQ(a[i].body, b[i].body);
    ++verbs[a[i].verb];
  }
  // Every verb class is represented at this size and mix.
  for (const char* verb : {"predict", "batch_predict", "ll_window",
                           "subscribe_ll", "unsubscribe", "ingest"}) {
    EXPECT_GT(verbs[verb], 0) << verb;
  }

  // Structural invariants of the new verbs: every batch body carries
  // exactly batch_size servers, and every unsubscribe targets a
  // subscription registered in an *earlier* tick (same-tick pairs could
  // race across workers and break response determinism).
  std::map<std::string, int64_t> sub_birth_tick;
  for (const auto& req : a) {
    auto body = Json::Parse(req.body);
    ASSERT_TRUE(body.ok()) << req.body;
    if (req.verb == "batch_predict") {
      ASSERT_TRUE((*body)["servers"].is_array());
      EXPECT_EQ(static_cast<int64_t>((*body)["servers"].AsArray().size()),
                options.batch_size);
    } else if (req.verb == "subscribe_ll") {
      sub_birth_tick[(*body)["id"].AsString()] = req.tick;
    } else if (req.verb == "unsubscribe") {
      const std::string id = (*body)["id"].AsString();
      ASSERT_TRUE(sub_birth_tick.count(id)) << id;
      EXPECT_LT(sub_birth_tick[id], req.tick) << id;
    }
  }
}

TEST(BuildScheduleTest, DefaultMixIsByteCompatibleWithOldVerbSet) {
  // The batch/subscribe fractions default to zero and a zero-width verb
  // range draws no RNG, so the default-mix schedule must contain only
  // the PR 6 verbs — the determinism currency of earlier baselines.
  LoadgenOptions options;
  options.profile = LoadProfile::kSpike;
  options.ticks = 8;
  options.base_requests_per_tick = 40;
  options.seed = 123;
  for (const auto& req : BuildSchedule(options, Ids(20))) {
    EXPECT_TRUE(req.verb == "predict" || req.verb == "ll_window" ||
                req.verb == "ingest")
        << req.verb;
  }
}

TEST(RunLoadTestTest, ClosedLoopNeverExceedsClientBound) {
  const std::vector<ServerTelemetry> tails = {
      MakeTail("srv-0", DayOfLoad()), MakeTail("srv-1", DayOfLoad()),
      MakeTail("srv-2", DayOfLoad())};
  ServingEngine engine(MakePrevDayEndpoint());
  engine.Bootstrap(tails).Abort();
  engine.Tick();

  LoadgenOptions options;
  options.profile = LoadProfile::kSoak;
  options.mode = DriverMode::kClosedLoop;
  options.ticks = 4;
  options.base_requests_per_tick = 25;
  options.closed_loop_clients = 3;
  options.jobs = 8;  // more workers than clients: the bound must hold
  options.epoch_start = kMinutesPerDay;
  std::vector<std::string> ids = {"srv-0", "srv-1", "srv-2"};

  LoadgenReport report =
      RunLoadTest(&engine, options, BuildSchedule(options, ids));
  EXPECT_EQ(report.requests, 4 * 25 * 3);
  EXPECT_GT(report.max_in_flight, 0);
  EXPECT_LE(report.max_in_flight, 3);
  EXPECT_EQ(report.ok + report.errors, report.requests);
}

TEST(RunLoadTestTest, ClosedLoopBoundHoldsWithNotificationsInterleaved) {
  // Subscription churn in a closed-loop run: notification records land
  // between ticks while clients hold the in-flight bound, and the
  // per-prediction accounting counts batch entries individually.
  const std::vector<ServerTelemetry> tails = {
      MakeTail("srv-0", DayOfLoad()), MakeTail("srv-1", DayOfLoad()),
      MakeTail("srv-2", DayOfLoad())};
  ServingEngine engine(MakePrevDayEndpoint());
  engine.Bootstrap(tails).Abort();
  engine.Tick();

  LoadgenOptions options;
  options.profile = LoadProfile::kSoak;
  options.mode = DriverMode::kClosedLoop;
  options.ticks = 6;
  options.base_requests_per_tick = 20;
  options.closed_loop_clients = 3;
  options.jobs = 8;
  options.epoch_start = kMinutesPerDay;
  options.predict_fraction = 0.35;
  options.ll_window_fraction = 0.15;
  options.batch_fraction = 0.15;
  options.batch_size = 4;
  options.subscribe_fraction = 0.20;
  std::vector<std::string> ids = {"srv-0", "srv-1", "srv-2"};

  LoadgenReport report =
      RunLoadTest(&engine, options, BuildSchedule(options, ids));
  EXPECT_EQ(report.requests, 6 * 20 * 3);
  EXPECT_GT(report.max_in_flight, 0);
  EXPECT_LE(report.max_in_flight, 3);
  EXPECT_EQ(report.ok + report.errors, report.requests);
  EXPECT_GE(report.notifications, 0);
  // Batch entries count per prediction, so the mixed run answers more
  // predictions than it issued requests.
  EXPECT_GT(report.predictions, 0);
  EXPECT_GT(report.latency["batch_predict"].count, 0);
  EXPECT_GT(report.latency["subscribe_ll"].count, 0);
  Json doc = report.ToJson();
  EXPECT_EQ(doc["notifications"].AsInt(), report.notifications);
  EXPECT_EQ(doc["predictions"].AsInt(), report.predictions);
}

TEST(RunLoadTestTest, ReportAccountingAddsUp) {
  const std::vector<ServerTelemetry> tails = {
      MakeTail("srv-0", DayOfLoad()), MakeTail("srv-1", DayOfLoad())};
  ServingEngine engine(MakePrevDayEndpoint());
  engine.Bootstrap(tails).Abort();
  engine.Tick();

  LoadgenOptions options;
  options.profile = LoadProfile::kRamp;
  options.ticks = 5;
  options.base_requests_per_tick = 40;
  options.epoch_start = kMinutesPerDay;
  std::vector<std::string> ids = {"srv-0", "srv-1"};
  LoadgenReport report =
      RunLoadTest(&engine, options, BuildSchedule(options, ids));

  EXPECT_EQ(report.ticks, 5);
  int64_t latency_count = 0;
  for (const auto& [verb, summary] : report.latency) {
    latency_count += summary.count;
    EXPECT_GE(summary.p95, summary.p50);
    EXPECT_GE(summary.p99, summary.p95);
  }
  EXPECT_EQ(latency_count, report.requests);
  EXPECT_NE(report.response_digest, 0u);
  // Dirty-set tracking amortizes: with 2 servers and many queries,
  // refits per query stay well below 1.
  EXPECT_LT(report.refit_per_query, 1.0);
  Json doc = report.ToJson();
  EXPECT_EQ(doc["requests"].AsInt(), report.requests);
  EXPECT_TRUE(doc["latency_micros"].is_object());
}

}  // namespace
}  // namespace seagull
