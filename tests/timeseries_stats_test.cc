#include "timeseries/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace seagull {
namespace {

LoadSeries MakeSeries(std::vector<double> values) {
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(StatsTest, SummarizeBasics) {
  SeriesSummary s = Summarize(MakeSeries({2, 4, 6, kMissingValue}));
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.missing, 1);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(StatsTest, SummarizeEmpty) {
  SeriesSummary s = Summarize(*LoadSeries::MakeEmpty(0, 5, 3));
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.missing, 3);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1}), 0.0);  // < 2 samples
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(StatsTest, StdDevIgnoresMissing) {
  EXPECT_DOUBLE_EQ(StdDev({2, kMissingValue, 4}), 1.0);
}

TEST(StatsTest, MeanOf) {
  EXPECT_DOUBLE_EQ(MeanOf({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(MeanOf({1, kMissingValue, 3}), 2.0);
  EXPECT_TRUE(IsMissing(MeanOf({})));
  EXPECT_TRUE(IsMissing(MeanOf({kMissingValue})));
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({7}, 0.3), 7.0);
  EXPECT_TRUE(IsMissing(Quantile({}, 0.5)));
}

TEST(StatsTest, QuantileClampsAndSkipsMissing) {
  EXPECT_DOUBLE_EQ(Quantile({1, kMissingValue, 3}, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({1, kMissingValue, 3}, -1.0), 1.0);
}

TEST(StatsTest, ElementwiseMeanAverages) {
  std::vector<LoadSeries> days = {MakeSeries({1, 2}), MakeSeries({3, 4}),
                                  MakeSeries({5, 6})};
  auto mean = ElementwiseMean(days, 100 * 5);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean->start(), 500);
  EXPECT_DOUBLE_EQ(mean->ValueAt(0), 3.0);
  EXPECT_DOUBLE_EQ(mean->ValueAt(1), 4.0);
}

TEST(StatsTest, ElementwiseMeanSkipsMissingPerSlot) {
  std::vector<LoadSeries> days = {MakeSeries({1, kMissingValue}),
                                  MakeSeries({3, 8})};
  auto mean = ElementwiseMean(days, 0);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean->ValueAt(0), 2.0);
  EXPECT_DOUBLE_EQ(mean->ValueAt(1), 8.0);
}

TEST(StatsTest, ElementwiseMeanValidatesShape) {
  EXPECT_FALSE(ElementwiseMean({}, 0).ok());
  std::vector<LoadSeries> mismatched = {MakeSeries({1, 2}), MakeSeries({1})};
  EXPECT_FALSE(ElementwiseMean(mismatched, 0).ok());
}

}  // namespace
}  // namespace seagull
