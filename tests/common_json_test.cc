#include "common/json.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

TEST(JsonTest, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json(7).is_number());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_TRUE(Json::MakeArray().is_array());
  EXPECT_TRUE(Json::MakeObject().is_object());
  EXPECT_EQ(Json(int64_t{9}).AsInt(), 9);
  EXPECT_DOUBLE_EQ(Json(2.25).AsDouble(), 2.25);
}

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, DumpEscapes) {
  EXPECT_EQ(Json("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").Dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("tab\t").Dump(), "\"tab\\t\"");
  EXPECT_EQ(Json("back\\slash").Dump(), "\"back\\\\slash\"");
}

TEST(JsonTest, ObjectAndArrayDump) {
  Json obj = Json::MakeObject();
  obj["b"] = 1;
  obj["a"] = Json::MakeArray();
  obj["a"].Append(1);
  obj["a"].Append("two");
  // std::map orders keys.
  EXPECT_EQ(obj.Dump(), "{\"a\":[1,\"two\"],\"b\":1}");
}

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_DOUBLE_EQ(Json::Parse("-2.5e2")->AsDouble(), -250.0);
  EXPECT_EQ(Json::Parse("\"x\"")->AsString(), "x");
}

TEST(JsonTest, ParseNested) {
  auto v = Json::Parse(R"({"a": [1, {"b": true}], "c": "s"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)["a"].AsArray()[1]["b"].AsBool(), true);
  EXPECT_EQ((*v)["c"].AsString(), "s");
}

TEST(JsonTest, ParseStringEscapes) {
  auto v = Json::Parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c\nd" "A");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, RoundTrip) {
  Json doc = Json::MakeObject();
  doc["model"] = "ssa";
  doc["coeffs"] = Json::MakeArray();
  for (int i = 0; i < 5; ++i) doc["coeffs"].Append(i * 0.5);
  doc["nested"] = Json::MakeObject();
  doc["nested"]["flag"] = true;
  doc["nothing"] = Json();
  auto back = Json::Parse(doc.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, doc);
}

TEST(JsonTest, PrettyRoundTrip) {
  Json doc = Json::MakeObject();
  doc["a"] = Json::MakeArray();
  doc["a"].Append(1);
  doc["b"] = "x";
  auto back = Json::Parse(doc.DumpPretty());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, doc);
}

TEST(JsonTest, MissingKeyReturnsNull) {
  Json obj = Json::MakeObject();
  obj["present"] = 1;
  // Const access does not insert; mutable operator[] (like std::map) does.
  const Json& view = obj;
  EXPECT_TRUE(view["absent"].is_null());
  EXPECT_TRUE(view.Contains("present"));
  EXPECT_FALSE(view.Contains("absent"));
  obj["inserted"];
  EXPECT_TRUE(obj.Contains("inserted"));
}

TEST(JsonTest, CheckedGetters) {
  Json obj = Json::MakeObject();
  obj["n"] = 5;
  obj["s"] = "str";
  obj["b"] = true;
  EXPECT_DOUBLE_EQ(*obj.GetNumber("n"), 5.0);
  EXPECT_EQ(*obj.GetString("s"), "str");
  EXPECT_EQ(*obj.GetBool("b"), true);
  EXPECT_FALSE(obj.GetNumber("s").ok());
  EXPECT_FALSE(obj.GetString("missing").ok());
}

TEST(JsonTest, LargeIntegersDumpWithoutScientific) {
  EXPECT_EQ(Json(int64_t{10080000}).Dump(), "10080000");
}

TEST(JsonTest, NonAsciiUnicodeEscapeRejected) {
  EXPECT_FALSE(Json::Parse("\"\\u00e9\"").ok());
}

}  // namespace
}  // namespace seagull
