#include "metrics/bucket_ratio.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

LoadSeries MakeSeries(std::vector<double> values, MinuteStamp start = 0) {
  return std::move(LoadSeries::Make(start, 5, std::move(values)))
      .ValueOrDie();
}

TEST(BucketRatioTest, AsymmetricBoundPerPoint) {
  AccuracyConfig config;  // +10 / -5
  EXPECT_TRUE(InBound(50.0, 50.0, config));
  EXPECT_TRUE(InBound(60.0, 50.0, config));   // +10 exactly
  EXPECT_FALSE(InBound(60.1, 50.0, config));  // just over
  EXPECT_TRUE(InBound(45.0, 50.0, config));   // -5 exactly
  EXPECT_FALSE(InBound(44.9, 50.0, config));  // under-prediction stricter
}

TEST(BucketRatioTest, PerfectPredictionIsOne) {
  LoadSeries truth = MakeSeries({10, 20, 30, 40});
  BucketRatioResult r = BucketRatio(truth, truth);
  EXPECT_EQ(r.compared, 4);
  EXPECT_EQ(r.in_bound, 4);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST(BucketRatioTest, CountsOutOfBoundPoints) {
  LoadSeries truth = MakeSeries({10, 10, 10, 10});
  LoadSeries pred = MakeSeries({10, 25, 10, 4});  // +15 and -6 are out
  BucketRatioResult r = BucketRatio(pred, truth);
  EXPECT_EQ(r.compared, 4);
  EXPECT_EQ(r.in_bound, 2);
  EXPECT_DOUBLE_EQ(r.ratio, 0.5);
}

TEST(BucketRatioTest, SkipsMissingInEitherSeries) {
  LoadSeries truth = MakeSeries({10, kMissingValue, 10, 10});
  LoadSeries pred = MakeSeries({10, 10, kMissingValue, 10});
  BucketRatioResult r = BucketRatio(pred, truth);
  EXPECT_EQ(r.compared, 2);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST(BucketRatioTest, UsesIntersectionOfRanges) {
  LoadSeries truth = MakeSeries({10, 10, 10, 10}, 0);
  LoadSeries pred = MakeSeries({10, 10}, 10);  // covers [10, 20)
  BucketRatioResult r = BucketRatio(pred, truth);
  EXPECT_EQ(r.compared, 2);
}

TEST(BucketRatioTest, DisjointRangesCompareNothing) {
  LoadSeries truth = MakeSeries({10, 10}, 0);
  LoadSeries pred = MakeSeries({10, 10}, 100);
  BucketRatioResult r = BucketRatio(pred, truth);
  EXPECT_EQ(r.compared, 0);
  EXPECT_DOUBLE_EQ(r.ratio, 0.0);
  EXPECT_FALSE(r.IsAccurate(AccuracyConfig{}));
}

TEST(BucketRatioTest, IntervalMismatchComparesNothing) {
  LoadSeries truth = MakeSeries({10, 10});
  auto pred15 = LoadSeries::Make(0, 15, {10.0});
  BucketRatioResult r = BucketRatio(*pred15, truth);
  EXPECT_EQ(r.compared, 0);
}

TEST(BucketRatioTest, RangeRestriction) {
  LoadSeries truth = MakeSeries({10, 10, 10, 10});
  LoadSeries pred = MakeSeries({99, 10, 10, 99});
  BucketRatioResult r = BucketRatioInRange(pred, truth, 5, 15);
  EXPECT_EQ(r.compared, 2);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST(BucketRatioTest, Definition2Threshold) {
  AccuracyConfig config;
  // 20 points, 18 in bound = 90% -> accurate; 17 -> inaccurate.
  std::vector<double> truth_v(20, 10.0);
  std::vector<double> pred_18(20, 10.0);
  pred_18[0] = pred_18[1] = 99.0;
  std::vector<double> pred_17 = pred_18;
  pred_17[2] = 99.0;
  LoadSeries truth = MakeSeries(truth_v);
  EXPECT_TRUE(IsAccuratePrediction(MakeSeries(pred_18), truth, config));
  EXPECT_FALSE(IsAccuratePrediction(MakeSeries(pred_17), truth, config));
}

TEST(BucketRatioTest, PaperFigure2Semantics) {
  // A prediction that looks "close enough" can still be inaccurate: 75%
  // of points in bound is below the 90% bar.
  std::vector<double> truth_v(100, 50.0);
  std::vector<double> pred_v(100, 50.0);
  for (int i = 0; i < 25; ++i) pred_v[static_cast<size_t>(i)] = 38.0;  // -12
  BucketRatioResult r = BucketRatio(MakeSeries(pred_v), MakeSeries(truth_v));
  EXPECT_DOUBLE_EQ(r.ratio, 0.75);
  EXPECT_FALSE(r.IsAccurate(AccuracyConfig{}));
}

TEST(BucketRatioTest, CustomBoundsPluggable) {
  // §3.1: "Other constants can be plugged in for other scenarios."
  AccuracyConfig loose;
  loose.over_bound = 50.0;
  loose.under_bound = 50.0;
  LoadSeries truth = MakeSeries({10, 10});
  LoadSeries pred = MakeSeries({40, -20});
  EXPECT_DOUBLE_EQ(BucketRatio(pred, truth, loose).ratio, 1.0);
}

TEST(BucketRatioTest, EmptySeries) {
  LoadSeries empty;
  LoadSeries truth = MakeSeries({1.0});
  EXPECT_EQ(BucketRatio(empty, truth).compared, 0);
  EXPECT_EQ(BucketRatio(truth, empty).compared, 0);
}

}  // namespace
}  // namespace seagull
