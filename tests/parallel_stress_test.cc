/// \file parallel_stress_test.cc
/// \brief Stress and failure-mode coverage for the work-stealing pool:
/// contention, exception propagation, nested submission, cancellation,
/// WaitIdle under load, and the hardware-concurrency fallback. The whole
/// binary also runs under -fsanitize=thread via tools/check.sh, which is
/// what makes the "TSan-clean ParallelFor" claim enforceable.

#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"

namespace seagull {
namespace {

TEST(ThreadPoolStressTest, ManySubmittersUnderContention) {
  ThreadPool pool(4);
  std::atomic<int64_t> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      futures[s].reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures[s].push_back(
            pool.Submit([&counter] { counter.fetch_add(1); }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  std::atomic<int> after{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&after] { after.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(after.load(), 20);
}

TEST(ThreadPoolStressTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int64_t> visited{0};
  EXPECT_THROW(
      ParallelFor(&pool, 10000,
                  [&](int64_t i) {
                    if (i == 137) throw std::runtime_error("index 137");
                    visited.fetch_add(1);
                  }),
      std::runtime_error);
  // The loop stopped early rather than visiting everything.
  EXPECT_LT(visited.load(), 10000);
  // The pool survives and later loops complete normally.
  std::atomic<int64_t> clean{0};
  ParallelFor(&pool, 1000, [&](int64_t) { clean.fetch_add(1); });
  EXPECT_EQ(clean.load(), 1000);
}

TEST(ThreadPoolStressTest, NestedSubmitDoesNotDeadlock) {
  // One worker: an outer task waiting naively on an inner task would
  // deadlock. HelpWhileWaiting executes queued tasks on the waiting
  // thread instead.
  ThreadPool pool(1);
  std::atomic<int> inner_ran{0};
  auto outer = pool.Submit([&] {
    auto inner = pool.Submit([&] { inner_ran.fetch_add(1); });
    pool.HelpWhileWaiting(inner);
    inner.get();
  });
  outer.get();
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPoolStressTest, NestedParallelForDoesNotDeadlock) {
  // Region-level and server-level loops share one pool in FleetRunner;
  // caller participation must make the nesting safe even with a single
  // worker and the caller's own thread saturated.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  ParallelForChunked(&pool, 8, /*grain=*/1,
                     [&](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         ParallelFor(&pool, 50,
                                     [&](int64_t) { total.fetch_add(1); });
                       }
                     });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPoolStressTest, WaitIdleUnderLoad) {
  ThreadPool pool(4);
  std::atomic<int64_t> done{0};
  constexpr int kTasks = 300;
  std::thread submitter([&] {
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        done.fetch_add(1);
      });
    }
  });
  submitter.join();
  pool.WaitIdle();
  EXPECT_EQ(done.load(), kTasks);

  // Repeated WaitIdle on an already-idle pool returns immediately.
  pool.WaitIdle();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStressTest, ZeroAndNegativeThreadsFallBackToHardware) {
  ThreadPool zero(0);
  EXPECT_GE(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_GE(negative.num_threads(), 1);
  std::atomic<int> counter{0};
  ParallelFor(&zero, 100, [&](int64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolStressTest, CancellationStopsClaimingChunks) {
  ThreadPool pool(4);
  CancellationToken cancel;
  std::atomic<int64_t> visited{0};
  constexpr int64_t kN = 1000000;
  ParallelForChunked(&pool, kN, /*grain=*/1,
                     [&](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         visited.fetch_add(1);
                       }
                       if (begin == 0) cancel.Cancel();
                     },
                     &cancel);
  EXPECT_TRUE(cancel.cancelled());
  // Chunks already claimed finish; the vast tail is skipped.
  EXPECT_LT(visited.load(), kN);
}

TEST(ThreadPoolStressTest, ChunkedCoversEveryIndexOnceWithGrainCap) {
  ThreadPool pool(4);
  constexpr int64_t kN = 25000;
  constexpr int64_t kGrain = 64;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForChunked(&pool, kN, kGrain, [&](int64_t begin, int64_t end) {
    EXPECT_LE(end - begin, kGrain);
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, ParallelForMatchesSequentialReduction) {
  ThreadPool pool(8);
  constexpr int64_t kN = 20000;
  std::vector<int64_t> values(kN);
  ParallelFor(&pool, kN,
              [&](int64_t i) { values[static_cast<size_t>(i)] = i * 3; });
  int64_t parallel_sum =
      std::accumulate(values.begin(), values.end(), int64_t{0});
  int64_t expected = 0;
  SequentialFor(kN, [&](int64_t i) { expected += i * 3; });
  EXPECT_EQ(parallel_sum, expected);
}

TEST(ThreadPoolStressTest, InjectedFaultMidChunkedLoopPropagates) {
  // Drive the loop-body failure through the fault registry instead of a
  // hard-coded index: the registry decides which task dies, the loop
  // converts the injected Status into the exception the pool must carry
  // back to the caller.
  ThreadPool pool(4);
  ScopedFaultInjection fault({/*seed=*/1, /*rate=*/0.0});
  fault.registry().AddOutage("stress.task", "chunk", /*count=*/1);
  std::atomic<int64_t> visited{0};
  constexpr int64_t kN = 100000;
  EXPECT_THROW(
      ParallelForChunked(&pool, kN, /*grain=*/16,
                         [&](int64_t begin, int64_t end) {
                           Status st = FaultRegistry::Global().Inject(
                               "stress.task", "chunk");
                           if (!st.ok()) {
                             throw std::runtime_error(st.ToString());
                           }
                           for (int64_t i = begin; i < end; ++i) {
                             visited.fetch_add(1);
                           }
                         }),
      std::runtime_error);
  EXPECT_EQ(fault.registry().InjectedCount("stress.task"), 1);
  // The faulted chunk's indices were skipped.
  EXPECT_LT(visited.load(), kN);

  // The pool is reusable after the failed loop: workers survived, the
  // queue drained, and a clean loop covers every index exactly once.
  std::atomic<int64_t> clean{0};
  ParallelForChunked(&pool, 5000, /*grain=*/16,
                     [&](int64_t begin, int64_t end) {
                       clean.fetch_add(end - begin);
                     });
  EXPECT_EQ(clean.load(), 5000);
}

TEST(ThreadPoolStressTest, RepeatedInjectedFaultsNeverWedgeThePool) {
  // Several consecutive loops each lose a different chunk to an injected
  // fault; every failure must propagate and the pool must stay usable.
  ThreadPool pool(4);
  ScopedFaultInjection fault({/*seed=*/3, /*rate=*/0.0});
  for (int round = 0; round < 5; ++round) {
    const std::string key = "round-" + std::to_string(round);
    fault.registry().AddOutage("stress.round", key, /*count=*/1);
    EXPECT_THROW(
        ParallelForChunked(&pool, 20000, /*grain=*/8,
                           [&](int64_t begin, int64_t) {
                             Status st = FaultRegistry::Global().Inject(
                                 "stress.round", key);
                             if (!st.ok()) {
                               throw std::runtime_error(st.ToString());
                             }
                             (void)begin;
                           }),
        std::runtime_error);
  }
  EXPECT_EQ(fault.registry().InjectedCount("stress.round"), 5);
  std::atomic<int64_t> total{0};
  ParallelFor(&pool, 1000, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolStressTest, RunOneTaskDrainsQueue) {
  ThreadPool pool(1);
  // Saturate the single worker so tasks stay queued, then drain from
  // this thread.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.Submit([&] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  // Wait for the worker to own the blocker; otherwise this thread's
  // RunOneTask below could pop the blocker itself and spin forever.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  while (pool.RunOneTask()) {
  }
  EXPECT_EQ(ran.load(), 10);
  release.store(true);
  blocker.get();
}

}  // namespace
}  // namespace seagull
