/// \file forecast_linalg_kernel_test.cc
/// \brief Property tests for the forecast kernel engine: every tuned
/// kernel is cross-checked against its scalar reference implementation
/// on randomized inputs, and the mode-independent invariants
/// (orthogonality, reconstruction, determinism, layout) are asserted
/// directly. The determinism contract (DESIGN.md §"Forecast kernel
/// engine") is: within one mode every kernel is bit-stable run to run;
/// kernels whose fast path keeps the scalar accumulation order
/// (MatMul, CholeskySolve, JacobiSvd) agree bit-for-bit across modes;
/// the rest (Dot, AtA, BuildLagGram, SymmetricEigen) agree to far
/// tighter than forecast-relevant tolerances.

#include "forecast/linalg.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "forecast/scratch.h"
#include "gtest/gtest.h"

namespace seagull {
namespace {

Matrix RandomMatrix(Rng* rng, int64_t rows, int64_t cols) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) m.At(i, j) = rng->Gaussian(0.0, 1.0);
  }
  return m;
}

std::vector<double> RandomVector(Rng* rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng->Gaussian(0.0, 1.0);
  return v;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::fabs(a.At(i, j) - b.At(i, j)));
    }
  }
  return worst;
}

TEST(KernelMatrixTest, RowPointersAreContiguous) {
  Matrix m(5, 7);
  for (int64_t r = 0; r < 5; ++r) {
    EXPECT_EQ(m.Row(r), m.Row(0) + r * 7) << "row " << r;
  }
  // Resize within capacity must keep the allocation (the scratch-arena
  // reuse path) and zero-fill.
  const double* before = m.Row(0);
  m.Resize(4, 6);
  EXPECT_EQ(m.Row(0), before);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 6; ++c) EXPECT_EQ(m.At(r, c), 0.0);
  }
}

TEST(KernelScratchTest, SlotsReuseStorageAtSteadyState) {
  KernelScratch& scratch = KernelScratch::Local();
  constexpr int kSlot = KernelScratch::kVecSlots - 1;  // test-only slot
  std::vector<double>& first = scratch.Vec(kSlot, 512);
  const double* data = first.data();
  first.assign(512, 3.5);
  // Re-acquiring at the same or smaller size must not reallocate.
  EXPECT_EQ(scratch.Vec(kSlot, 512).data(), data);
  EXPECT_EQ(scratch.Vec(kSlot, 100).data(), data);
  EXPECT_GE(scratch.RetainedBytes(), 512 * sizeof(double));
}

TEST(KernelModeTest, ScopedGuardRestoresMode) {
  ASSERT_EQ(GetKernelMode(), KernelMode::kFast);
  {
    ScopedScalarKernels guard;
    EXPECT_EQ(GetKernelMode(), KernelMode::kScalar);
  }
  EXPECT_EQ(GetKernelMode(), KernelMode::kFast);
}

TEST(KernelCrossCheckTest, BlockedMatMulIsBitIdenticalToScalar) {
  Rng rng(101);
  // Shapes straddling the 64/256 block boundaries, plus small odd ones.
  const int64_t shapes[][3] = {
      {3, 5, 4}, {17, 33, 9}, {70, 130, 65}, {96, 257, 80}};
  for (const auto& s : shapes) {
    Matrix a = RandomMatrix(&rng, s[0], s[1]);
    Matrix b = RandomMatrix(&rng, s[1], s[2]);
    auto fast = MatMul(a, b);
    ASSERT_TRUE(fast.ok());
    ScopedScalarKernels guard;
    auto scalar = MatMul(a, b);
    ASSERT_TRUE(scalar.ok());
    // Same reduction order in both paths -> exactly equal, not just
    // close.
    EXPECT_EQ(MaxAbsDiff(*fast, *scalar), 0.0)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(KernelCrossCheckTest, SyrkAtAMatchesScalarWithinTolerance) {
  Rng rng(102);
  for (int64_t cols : {3, 24, 61}) {
    Matrix a = RandomMatrix(&rng, 211, cols);
    Matrix fast = AtA(a, 0.5);
    ScopedScalarKernels guard;
    Matrix scalar = AtA(a, 0.5);
    EXPECT_LT(MaxAbsDiff(fast, scalar), 1e-9) << "cols=" << cols;
  }
}

TEST(KernelCrossCheckTest, TransposeMatVecMatchesScalar) {
  Rng rng(103);
  Matrix a = RandomMatrix(&rng, 187, 29);
  std::vector<double> b = RandomVector(&rng, 187);
  std::vector<double> fast = TransposeMatVec(a, b);
  ScopedScalarKernels guard;
  std::vector<double> scalar = TransposeMatVec(a, b);
  ASSERT_EQ(fast.size(), scalar.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], scalar[i], 1e-9) << i;
  }
}

TEST(KernelCrossCheckTest, UnrolledDotMatchesScalar) {
  Rng rng(104);
  for (int64_t n : {0, 1, 3, 4, 7, 1024, 4097}) {
    std::vector<double> a = RandomVector(&rng, n);
    std::vector<double> b = RandomVector(&rng, n);
    const double fast = Dot(a, b);
    const double fast_raw = Dot(a.data(), b.data(), n);
    EXPECT_EQ(fast, fast_raw) << n;
    ScopedScalarKernels guard;
    const double scalar = Dot(a, b);
    EXPECT_NEAR(fast, scalar, 1e-9 * (1.0 + std::fabs(scalar))) << n;
  }
}

TEST(KernelCrossCheckTest, DotShapeMismatchAborts) {
  std::vector<double> a(4, 1.0), b(5, 1.0);
  EXPECT_DEATH(Dot(a, b), "shape mismatch");
}

TEST(KernelCrossCheckTest, LagGramMatchesScalarAndExplicitHankelProduct) {
  Rng rng(105);
  const int64_t n = 500, L = 37;
  std::vector<double> x = RandomVector(&rng, n);

  Matrix fast;
  BuildLagGram(x.data(), n, L, &fast);
  ASSERT_EQ(fast.rows(), L);
  ASSERT_EQ(fast.cols(), L);

  // Reference 1: the scalar triple loop.
  Matrix scalar;
  {
    ScopedScalarKernels guard;
    BuildLagGram(x.data(), n, L, &scalar);
  }
  // Reference 2: materialize the Hankel trajectory matrix and multiply.
  const int64_t k = n - L + 1;
  Matrix traj(k, L);
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < L; ++j) {
      traj.At(i, j) = x[static_cast<size_t>(i + j)];
    }
  }
  auto explicit_gram = MatMul(Transpose(traj), traj);
  ASSERT_TRUE(explicit_gram.ok());

  const double scale = 1.0 + std::fabs(fast.At(0, 0));
  EXPECT_LT(MaxAbsDiff(fast, scalar), 1e-9 * scale);
  EXPECT_LT(MaxAbsDiff(fast, *explicit_gram), 1e-9 * scale);
  // Symmetry must be exact (the builder mirrors the upper triangle).
  for (int64_t i = 0; i < L; ++i) {
    for (int64_t j = 0; j < L; ++j) {
      EXPECT_EQ(fast.At(i, j), fast.At(j, i));
    }
  }
}

/// Shared checks for an eigendecomposition of symmetric `a`.
void CheckEigenProperties(const Matrix& a, const EigenResult& eig,
                          double tol) {
  const int64_t n = a.rows();
  // Eigenvalues descending.
  for (int64_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.values[static_cast<size_t>(i - 1)],
              eig.values[static_cast<size_t>(i)]);
  }
  // VᵀV = I.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        dot += eig.vectors.At(r, i) * eig.vectors.At(r, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, tol) << i << "," << j;
    }
  }
  // A V = V diag(λ).
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t r = 0; r < n; ++r) {
      double av = 0.0;
      for (int64_t c = 0; c < n; ++c) {
        av += a.At(r, c) * eig.vectors.At(c, j);
      }
      EXPECT_NEAR(av,
                  eig.values[static_cast<size_t>(j)] * eig.vectors.At(r, j),
                  tol * (1.0 + std::fabs(eig.values[0])))
          << r << "," << j;
    }
  }
}

TEST(KernelEigenTest, TridiagonalSolverSatisfiesEigenProperties) {
  Rng rng(106);
  const int64_t n = 40;
  Matrix b = RandomMatrix(&rng, n, n);
  Matrix a = AtA(b);  // symmetric positive semi-definite
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  CheckEigenProperties(a, *eig, 1e-8);
}

TEST(KernelEigenTest, FastEigenvaluesMatchJacobiReference) {
  Rng rng(107);
  const int64_t n = 48;
  Matrix b = RandomMatrix(&rng, n, n);
  Matrix a = AtA(b);
  auto fast = SymmetricEigen(a);
  ASSERT_TRUE(fast.ok());
  ScopedScalarKernels guard;
  auto scalar = SymmetricEigen(a);
  ASSERT_TRUE(scalar.ok());
  CheckEigenProperties(a, *scalar, 1e-8);
  const double scale = 1.0 + std::fabs(scalar->values[0]);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast->values[static_cast<size_t>(i)],
                scalar->values[static_cast<size_t>(i)], 1e-7 * scale)
        << i;
  }
}

TEST(KernelEigenTest, FastEigenIsBitStableRunToRun) {
  Rng rng(108);
  const int64_t n = 33;
  Matrix b = RandomMatrix(&rng, n, n);
  Matrix a = AtA(b);
  auto first = SymmetricEigen(a);
  auto second = SymmetricEigen(a);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Same input, same thread-deterministic kernel -> byte-identical
  // output, which is what lets fleet determinism extend through SSA.
  EXPECT_EQ(first->values, second->values);
  EXPECT_EQ(MaxAbsDiff(first->vectors, second->vectors), 0.0);
}

TEST(KernelEigenTest, ZeroMatrixYieldsZeroSpectrum) {
  Matrix a(9, 9);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (double v : eig->values) EXPECT_EQ(v, 0.0);
}

TEST(KernelSvdTest, JacobiSvdIsBitIdenticalAcrossModesAndWellFormed) {
  Rng rng(109);
  Matrix a = RandomMatrix(&rng, 25, 9);
  auto fast = JacobiSvd(a);
  ASSERT_TRUE(fast.ok());
  SvdResult scalar;
  {
    ScopedScalarKernels guard;
    auto s = JacobiSvd(a);
    ASSERT_TRUE(s.ok());
    scalar = std::move(*s);
  }
  // The one-sided rotation sequence is mode-independent.
  EXPECT_EQ(fast->s, scalar.s);
  EXPECT_EQ(MaxAbsDiff(fast->u, scalar.u), 0.0);
  EXPECT_EQ(MaxAbsDiff(fast->v, scalar.v), 0.0);

  // Reconstruction: A = U diag(S) Vᵀ.
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      double sum = 0.0;
      for (int64_t r = 0; r < a.cols(); ++r) {
        sum += fast->u.At(i, r) * fast->s[static_cast<size_t>(r)] *
               fast->v.At(j, r);
      }
      EXPECT_NEAR(sum, a.At(i, j), 1e-9);
    }
  }
}

TEST(KernelCrossCheckTest, LeastSquaresSolutionsAgreeAcrossModes) {
  Rng rng(110);
  Matrix a = RandomMatrix(&rng, 120, 11);
  std::vector<double> x_true = RandomVector(&rng, 11);
  auto b = MatVec(a, x_true);
  ASSERT_TRUE(b.ok());
  auto fast = SolveLeastSquares(a, *b, 1e-8);
  ASSERT_TRUE(fast.ok());
  ScopedScalarKernels guard;
  auto scalar = SolveLeastSquares(a, *b, 1e-8);
  ASSERT_TRUE(scalar.ok());
  for (size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR((*fast)[i], x_true[i], 1e-6) << i;
    EXPECT_NEAR((*fast)[i], (*scalar)[i], 1e-8) << i;
  }
}

}  // namespace
}  // namespace seagull
