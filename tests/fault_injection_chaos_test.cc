/// \file fault_injection_chaos_test.cc
/// \brief Chaos suite: the fleet under deterministic fault injection.
///
/// Three contracts from the fault model (DESIGN.md):
///  1. a fixed fault seed produces byte-identical document-store state
///     whether the fleet runs sequentially or eight-wide;
///  2. a region whose telemetry reads never recover is quarantined —
///     incident + alert recorded — while every healthy region completes
///     and can still schedule its backup windows;
///  3. retry counters in run reports match the injected fault schedule
///     exactly, down to per-module attempt counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/obs/metrics.h"
#include "common/retry.h"
#include "common/time.h"
#include "pipeline/dashboard.h"
#include "pipeline/fleet_runner.h"
#include "pipeline/incidents.h"
#include "pipeline/inference.h"
#include "scheduling/backup_scheduler.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"
#include "telemetry/records.h"

namespace seagull {
namespace {

constexpr int64_t kWeek = 3;
const char* const kRegions[] = {"chaos-a", "chaos-b", "chaos-c"};

/// One lake shared by every test, built before any fault scope exists so
/// setup writes cannot be injected.
const LakeStore& SharedLake() {
  static const LakeStore* lake = [] {
    auto opened = LakeStore::OpenTemporary("fault_chaos");
    opened.status().Abort();
    auto* owned = new LakeStore(std::move(opened).ValueUnsafe());
    uint64_t seed = 1300;
    for (const char* region : kRegions) {
      RegionConfig config;
      config.name = region;
      config.num_servers = 40;
      config.weeks = 5;
      config.seed = seed++;
      Fleet fleet = Fleet::Generate(config);
      owned->Put(LakeStore::TelemetryKey(region, kWeek),
                 ExtractWeekCsvText(fleet, kWeek))
          .Abort();
    }
    // Pre-warm region schemas: the validation module writes a schema
    // blob on a region's first-ever run and reads it on every later
    // one. One throwaway fleet run (faults disabled — no scope exists
    // yet) makes every measured run below see identical lake bytes;
    // otherwise the first run's fault schedule would differ from every
    // subsequent one.
    DocStore scratch;
    FleetRunner warmup(owned, &scratch);
    std::vector<FleetJob> jobs;
    for (const char* region : kRegions) jobs.push_back({region, kWeek});
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    warmup.Run(jobs, config);
    return owned;
  }();
  return *lake;
}

RetryPolicy ChaosRetry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_backoff_millis = 0.0;  // retry immediately; tests need no pacing
  return policy;
}

struct ChaosOutcome {
  std::unique_ptr<DocStore> docs;
  FleetRunResult result;
  int64_t injected = 0;
};

ChaosOutcome RunFleet(int jobs, const FaultConfig& faults) {
  const LakeStore& lake = SharedLake();  // materialize outside the scope
  ScopedFaultInjection fault(faults);
  ChaosOutcome out;
  out.docs = std::make_unique<DocStore>();
  FleetOptions options;
  options.jobs = jobs;
  options.retry = ChaosRetry(4);
  FleetRunner runner(&lake, out.docs.get(), options);
  std::vector<FleetJob> fleet_jobs;
  for (const char* region : kRegions) fleet_jobs.push_back({region, kWeek});
  PipelineContext config;
  config.model_name = "persistent_prev_day";
  out.result = runner.Run(fleet_jobs, config);
  out.injected = fault.registry().TotalInjected();
  return out;
}

/// Snapshot text with wall-clock fields zeroed — the only part of the
/// store the determinism contract does not cover.
std::string CanonicalSnapshot(const DocStore& docs) {
  Json snapshot = docs.Snapshot();
  if (snapshot.Contains(kRunsContainer)) {
    for (Json& doc : snapshot[kRunsContainer].AsArray()) {
      Json& body = doc["body"];
      body["total_millis"] = 0.0;
      body["timings"] = Json::MakeObject();
    }
  }
  return snapshot.Dump();
}

TEST(FaultInjectionChaosTest, SameFaultSeedSameBytesAcrossJobCounts) {
  const FaultConfig faults{/*seed=*/7, /*rate=*/0.05};
  ChaosOutcome sequential = RunFleet(1, faults);
  ChaosOutcome parallel = RunFleet(8, faults);

  ASSERT_EQ(sequential.result.runs.size(), 3u);
  ASSERT_EQ(parallel.result.runs.size(), 3u);

  // The fault schedule is a function of (seed, point, op key), never of
  // thread interleaving: both executions inject the same faults, spend
  // the same retries, and land on identical store bytes.
  EXPECT_GT(sequential.injected, 0);
  EXPECT_EQ(sequential.injected, parallel.injected);
  EXPECT_GT(sequential.result.TotalRetries(), 0);
  EXPECT_EQ(sequential.result.TotalRetries(), parallel.result.TotalRetries());
  ASSERT_EQ(sequential.result.quarantined.size(),
            parallel.result.quarantined.size());
  for (size_t i = 0; i < sequential.result.quarantined.size(); ++i) {
    EXPECT_EQ(sequential.result.quarantined[i].region,
              parallel.result.quarantined[i].region);
    EXPECT_EQ(sequential.result.quarantined[i].reason,
              parallel.result.quarantined[i].reason);
  }
  EXPECT_EQ(CanonicalSnapshot(*sequential.docs),
            CanonicalSnapshot(*parallel.docs));
}

TEST(FaultInjectionChaosTest, RepeatedChaosRunsAreStable) {
  const FaultConfig faults{/*seed=*/7, /*rate=*/0.05};
  ChaosOutcome first = RunFleet(8, faults);
  ChaosOutcome second = RunFleet(8, faults);
  EXPECT_EQ(first.injected, second.injected);
  EXPECT_EQ(CanonicalSnapshot(*first.docs), CanonicalSnapshot(*second.docs));
}

TEST(FaultInjectionChaosTest, QuarantinedRegionDoesNotSinkTheFleet) {
  const LakeStore& lake = SharedLake();
  auto docs = std::make_unique<DocStore>();
  FleetRunResult result;
  {
    ScopedFaultInjection fault({/*seed=*/1, /*rate=*/0.0});
    // chaos-b's telemetry blob is down for good; retries must exhaust.
    fault.registry().AddOutage("lake.get", "telemetry/chaos-b", -1);
    FleetOptions options;
    options.jobs = 4;
    options.retry = ChaosRetry(3);
    FleetRunner runner(&lake, docs.get(), options);
    std::vector<FleetJob> jobs;
    for (const char* region : kRegions) jobs.push_back({region, kWeek});
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    result = runner.Run(jobs, config);
  }

  // Healthy regions completed; the fleet did not fail wholesale.
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_TRUE(result.runs[0].report.success)
      << result.runs[0].report.failure;
  EXPECT_FALSE(result.runs[1].report.success);
  EXPECT_TRUE(result.runs[2].report.success)
      << result.runs[2].report.failure;

  // The outage region is quarantined with an incident and an alert.
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].region, "chaos-b");
  EXPECT_EQ(result.quarantined[0].week, kWeek);
  EXPECT_NE(result.quarantined[0].reason.find("injected"), std::string::npos);
  auto incident = docs->GetContainer(kIncidentContainer)
                      ->Get("chaos-b", "w0003:quarantine");
  ASSERT_TRUE(incident.ok()) << incident.status().ToString();
  EXPECT_EQ(incident->body.GetString("module").ValueOr(""), "fleet");
  bool saw_quarantine_alert = false;
  for (const auto& alert : result.AllAlerts()) {
    if (alert.rule == "region_quarantined" && alert.region == "chaos-b") {
      saw_quarantine_alert = true;
    }
  }
  EXPECT_TRUE(saw_quarantine_alert);

  // Healthy regions produced predictions; the quarantined one did not.
  Container* predictions = docs->GetContainer(kPredictionsContainer);
  auto by_region = [&](const char* region) {
    return predictions
        ->Query([&](const Document& d) { return d.partition_key == region; })
        .size();
  };
  EXPECT_GT(by_region("chaos-a"), 0u);
  EXPECT_EQ(by_region("chaos-b"), 0u);
  EXPECT_GT(by_region("chaos-c"), 0u);

  // And their pipeline outputs still drive backup scheduling: every due
  // server of a healthy region gets a window for the first day of the
  // week the run just produced verdicts for (accuracy docs cover
  // `week + 1`).
  const int64_t day = (kWeek + 1) * 7;
  auto text = lake.Get(LakeStore::TelemetryKey("chaos-a", kWeek));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto records = ParseTelemetryCsv(*text);
  ASSERT_TRUE(records.ok());
  auto telemetry = GroupByServer(*records);
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().ToString();
  std::vector<DueServer> due;
  for (const auto& st : *telemetry) {
    DueServer d;
    d.server_id = st.server_id;
    d.recent_load = st.load.Slice(st.load.start(), day * kMinutesPerDay);
    d.default_start =
        day * kMinutesPerDay + MinuteOfDay(st.default_backup_start);
    d.default_end = d.default_start + st.backup_duration_minutes();
    d.backup_duration_minutes = st.backup_duration_minutes();
    due.push_back(std::move(d));
  }
  ASSERT_FALSE(due.empty());
  ServiceFabricProperties properties;
  BackupScheduler backup_scheduler(docs.get(), &properties);
  auto schedules = backup_scheduler.ScheduleDay("chaos-a", day, due);
  ASSERT_EQ(schedules.size(), due.size());
  int64_t low_load = 0;
  for (const auto& s : schedules) {
    EXPECT_GT(s.window_end, s.window_start);
    if (s.decision == ScheduleDecision::kScheduledLowLoad) ++low_load;
  }
  EXPECT_GT(low_load, 0);
}

TEST(FaultInjectionChaosTest, CachedReadsDeterministicAcrossJobsUnderFaults) {
  // The lake cache must not perturb the determinism contract: with a
  // fixed --fault-seed, a cache-enabled fleet lands on identical store
  // bytes at jobs=1 and jobs=8 — including the second, cache-served
  // run, whose telemetry reads skip the fault points entirely.
  const FaultConfig faults{/*seed=*/11, /*rate=*/0.05};
  struct PairOutcome {
    std::string cold;  // canonical snapshot of the first (miss) run
    std::string warm;  // canonical snapshot of the second run
    int64_t warm_hits = 0;
  };
  auto run_pair = [&](int jobs, bool cached) -> PairOutcome {
    // Every compared execution gets its own cold cache: a pre-warmed
    // cache would change which reads fire fault points and thereby the
    // fault schedule itself. 256 MB keeps one shard slice (capacity/8)
    // above the ~10 MB regional CSV blobs — smaller and they would all
    // take the oversized-blob bypass and never cache.
    auto opened = LakeStore::Open(SharedLake().root());
    opened.status().Abort();
    LakeStore lake = std::move(opened).ValueUnsafe();
    if (cached) lake.ConfigureCache(256 << 20);
    ScopedFaultInjection fault(faults);
    FleetOptions options;
    options.jobs = jobs;
    options.retry = ChaosRetry(4);
    std::vector<FleetJob> fleet_jobs;
    for (const char* region : kRegions) fleet_jobs.push_back({region, kWeek});
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    PairOutcome out;
    {
      DocStore docs;
      FleetRunner runner(&lake, &docs, options);
      runner.Run(fleet_jobs, config);
      out.cold = CanonicalSnapshot(docs);
    }
    auto* hit_counter = MetricsRegistry::Global().GetCounter(
        "seagull.lake.cache_events", {{"event", "hit"}});
    const int64_t hits_before = hit_counter->Value();
    {
      DocStore docs;  // fresh docs: the scheduler sees the week as due
      FleetRunner runner(&lake, &docs, options);
      runner.Run(fleet_jobs, config);
      out.warm = CanonicalSnapshot(docs);
    }
    out.warm_hits = hit_counter->Value() - hits_before;
    return out;
  };

  PairOutcome cached_seq = run_pair(1, /*cached=*/true);
  PairOutcome cached_par = run_pair(8, /*cached=*/true);
  PairOutcome uncached_seq = run_pair(1, /*cached=*/false);

  // The warm runs really were served from memory.
  EXPECT_GT(cached_seq.warm_hits, 0);
  EXPECT_GT(cached_par.warm_hits, 0);
  EXPECT_EQ(uncached_seq.warm_hits, 0);

  // jobs=1 vs jobs=8, both cache-enabled: byte-identical, cold and warm.
  EXPECT_EQ(cached_seq.cold, cached_par.cold);
  EXPECT_EQ(cached_seq.warm, cached_par.warm);

  // A cold cache is byte-equivalent to no cache: every read misses and
  // fires the same fault points in the same order.
  EXPECT_EQ(cached_seq.cold, uncached_seq.cold);
}

TEST(FaultInjectionChaosTest, RetryCountersMatchInjectedSchedule) {
  const LakeStore& lake = SharedLake();
  auto docs = std::make_unique<DocStore>();
  FleetRunResult result;
  int64_t injected = 0;
  int64_t injected_calls = 0;
  {
    ScopedFaultInjection fault({/*seed=*/1, /*rate=*/0.0});
    // Exactly two transient failures on chaos-a's telemetry blob: the
    // ingestion module must fail twice and succeed on its third attempt.
    fault.registry().AddOutage("lake.get", "telemetry/chaos-a", 2);
    FleetOptions options;
    options.jobs = 1;
    options.retry = ChaosRetry(4);
    FleetRunner runner(&lake, docs.get(), options);
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    result = runner.Run({{"chaos-a", kWeek}}, config);
    injected = fault.registry().InjectedCount("lake.get");
    injected_calls = fault.registry().TotalInjected();
  }

  ASSERT_EQ(result.runs.size(), 1u);
  const PipelineRunReport& report = result.runs[0].report;
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_EQ(injected, 2);
  EXPECT_EQ(injected_calls, 2);

  // Report-level counters mirror the schedule: two retries, no quarantine.
  EXPECT_EQ(report.retries, 2);
  EXPECT_FALSE(report.retries_exhausted);
  EXPECT_EQ(result.TotalRetries(), 2);
  EXPECT_TRUE(result.quarantined.empty());

  // Per-module attempt counts: ingestion ran three times, the rest once.
  bool saw_ingestion = false;
  for (const auto& timing : report.timings) {
    if (timing.module == "ingestion") {
      saw_ingestion = true;
      EXPECT_EQ(timing.attempts, 3);
    } else {
      EXPECT_EQ(timing.attempts, 1) << timing.module;
    }
  }
  EXPECT_TRUE(saw_ingestion);

  // The persisted run document and incident trail agree with the report.
  auto run_doc = docs->GetContainer(kRunsContainer)->Get("chaos-a", "w0003");
  ASSERT_TRUE(run_doc.ok()) << run_doc.status().ToString();
  EXPECT_EQ(run_doc->body.GetNumber("retries").ValueOr(-1.0), 2.0);
  EXPECT_FALSE(run_doc->body.GetBool("quarantined").ValueOr(true));
  auto retry_incidents = docs->GetContainer(kIncidentContainer)
                             ->Query([](const Document& d) {
                               return d.body.GetString("message")
                                          .ValueOr("")
                                          .find("transient failure") !=
                                      std::string::npos;
                             });
  EXPECT_EQ(retry_incidents.size(), 2u);
}

}  // namespace
}  // namespace seagull
