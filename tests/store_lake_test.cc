#include "store/lake_store.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

class LakeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto lake = LakeStore::OpenTemporary("test");
    ASSERT_TRUE(lake.ok());
    lake_ = std::make_unique<LakeStore>(std::move(lake).ValueUnsafe());
  }

  std::unique_ptr<LakeStore> lake_;
};

TEST_F(LakeStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(lake_->Put("a/b/c.txt", "payload").ok());
  auto got = lake_->Get("a/b/c.txt");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "payload");
}

TEST_F(LakeStoreTest, GetMissingIsNotFound) {
  EXPECT_TRUE(lake_->Get("nope.txt").status().IsNotFound());
}

TEST_F(LakeStoreTest, ExistsAndDelete) {
  ASSERT_TRUE(lake_->Put("x.txt", "1").ok());
  EXPECT_TRUE(lake_->Exists("x.txt"));
  ASSERT_TRUE(lake_->Delete("x.txt").ok());
  EXPECT_FALSE(lake_->Exists("x.txt"));
  EXPECT_FALSE(lake_->Delete("x.txt").ok());
}

TEST_F(LakeStoreTest, OverwriteReplaces) {
  ASSERT_TRUE(lake_->Put("k", "v1").ok());
  ASSERT_TRUE(lake_->Put("k", "v2").ok());
  EXPECT_EQ(*lake_->Get("k"), "v2");
}

TEST_F(LakeStoreTest, ListByPrefixSorted) {
  ASSERT_TRUE(lake_->Put("telemetry/r1/week-0001.csv", "a").ok());
  ASSERT_TRUE(lake_->Put("telemetry/r1/week-0002.csv", "b").ok());
  ASSERT_TRUE(lake_->Put("telemetry/r2/week-0001.csv", "c").ok());
  ASSERT_TRUE(lake_->Put("schema/r1.json", "d").ok());
  auto keys = lake_->List("telemetry/r1/");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 2u);
  EXPECT_EQ((*keys)[0], "telemetry/r1/week-0001.csv");
  auto all = lake_->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);
}

TEST_F(LakeStoreTest, SizeOf) {
  ASSERT_TRUE(lake_->Put("s.bin", "12345").ok());
  auto size = lake_->SizeOf("s.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5);
  EXPECT_FALSE(lake_->SizeOf("missing").ok());
}

TEST_F(LakeStoreTest, RejectsUnsafeKeys) {
  EXPECT_FALSE(lake_->Put("", "x").ok());
  EXPECT_FALSE(lake_->Put("/abs/path", "x").ok());
  EXPECT_FALSE(lake_->Put("../escape", "x").ok());
  EXPECT_FALSE(lake_->Get("a/../../etc/passwd").ok());
}

TEST_F(LakeStoreTest, CsvConvenience) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1", "2"}};
  ASSERT_TRUE(lake_->PutCsv("table.csv", t).ok());
  auto back = lake_->GetCsv("table.csv");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, t.rows);
}

TEST_F(LakeStoreTest, TelemetryKeyFormat) {
  EXPECT_EQ(LakeStore::TelemetryKey("west-eu", 3),
            "telemetry/west-eu/week-0003.csv");
}

TEST_F(LakeStoreTest, BinaryContentSurvives) {
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  ASSERT_TRUE(lake_->Put("bin", blob).ok());
  EXPECT_EQ(*lake_->Get("bin"), blob);
}

TEST(LakeStoreOpenTest, TemporaryStoresAreDistinct) {
  auto a = LakeStore::OpenTemporary("x");
  auto b = LakeStore::OpenTemporary("x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->root(), b->root());
}

}  // namespace
}  // namespace seagull
