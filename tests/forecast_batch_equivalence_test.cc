/// \file forecast_batch_equivalence_test.cc
/// \brief Property suite for the batched cross-server training engine:
/// batched fits must be byte-identical to per-server fits for every
/// model family, across input orders, shape groups, seeds, and pool
/// widths, in both kernel modes — and each model's fast path must agree
/// with its scalar reference within forecast tolerance on well-behaved
/// fixtures.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "forecast/arima.h"
#include "forecast/batch.h"
#include "forecast/feedforward.h"
#include "forecast/linalg.h"
#include "forecast/model.h"
#include "parallel/thread_pool.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Registers down-sized ARIMA/feed-forward families so the sweep stays
/// fast (the default ARIMA grid is the model this PR makes usable, but
/// a full grid per property case is still overkill for a unit test).
void RegisterQuickFamilies() {
  static const bool registered = [] {
    ModelFactory::Global().Register("arima_quick", [] {
      ArimaOptions opt;
      opt.max_p = 1;
      opt.max_d = 1;
      opt.max_q = 1;
      opt.iterations = 40;
      return std::make_unique<ArimaForecast>(opt);
    });
    ModelFactory::Global().Register("feedforward_quick", [] {
      FeedForwardOptions opt;
      opt.epochs = 30;
      return std::make_unique<FeedForwardForecast>(opt);
    });
    return true;
  }();
  (void)registered;
}

/// Server-load style series: daily shape, drift, noise; `days` and
/// `start_day` vary the shape-group key, and every third sample of one
/// day is dropped when `with_missing` so the InterpolateMissing path is
/// exercised.
LoadSeries MakeSeries(uint64_t seed, int64_t days, int64_t start_day,
                      bool with_missing) {
  Rng rng(seed);
  std::vector<double> values;
  const int64_t ticks = days * 288;
  double level = 25.0 + rng.Uniform() * 20.0;
  for (int64_t i = 0; i < ticks; ++i) {
    const double phase = static_cast<double>(i % 288) / 288.0;
    level = std::clamp(level + rng.Gaussian(0.0, 0.6), 5.0, 90.0);
    double v = level + 14.0 * std::sin(kTwoPi * phase) +
               4.0 * std::sin(kTwoPi * 2.0 * phase) + rng.Gaussian(0.0, 1.0);
    if (with_missing && i >= 288 && i < 2 * 288 && i % 3 == 0) {
      values.push_back(kMissingValue);
    } else {
      values.push_back(std::clamp(v, 0.0, 100.0));
    }
  }
  return std::move(LoadSeries::Make(start_day * kMinutesPerDay, 5,
                                    std::move(values)))
      .ValueOrDie();
}

/// A mixed bag of shapes/seeds: two grids (7-day at day 0, 5-day at
/// day 2), clean and missing-sample variants, in interleaved order.
std::vector<LoadSeries> MakeFleet() {
  std::vector<LoadSeries> fleet;
  for (uint64_t s = 0; s < 4; ++s) {
    fleet.push_back(MakeSeries(100 + s, 7, 0, s % 2 == 1));
    fleet.push_back(MakeSeries(200 + s, 5, 2, s % 2 == 0));
  }
  return fleet;
}

/// The per-server reference: factory-create, fit, serialize.
std::vector<std::string> PerServerDocs(const std::string& name,
                                       const std::vector<LoadSeries>& fleet) {
  std::vector<std::string> docs;
  for (const LoadSeries& series : fleet) {
    auto model = std::move(ModelFactory::Global().Create(name)).ValueOrDie();
    Status fit = model->Fit(series);
    if (!fit.ok()) {
      docs.push_back("ERROR: " + fit.ToString());
      continue;
    }
    docs.push_back(std::move(model->Serialize()).ValueOrDie().Dump());
  }
  return docs;
}

std::vector<std::string> BatchDocs(const std::string& name,
                                   const std::vector<LoadSeries>& fleet,
                                   ThreadPool* pool) {
  std::vector<BatchTrainItem> items(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) items[i].train = &fleet[i];
  auto results =
      std::move(BatchTrainer::Fit(name, items, pool)).ValueOrDie();
  std::vector<std::string> docs;
  for (const BatchTrainResult& r : results) {
    if (!r.status.ok()) {
      docs.push_back("ERROR: " + r.status.ToString());
      continue;
    }
    docs.push_back(r.doc.Dump());
  }
  return docs;
}

class BatchEquivalence : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { RegisterQuickFamilies(); }
};

TEST_P(BatchEquivalence, BatchedMatchesPerServerByteForByte) {
  const std::vector<LoadSeries> fleet = MakeFleet();
  const std::vector<std::string> expected = PerServerDocs(GetParam(), fleet);
  const std::vector<std::string> batched = BatchDocs(GetParam(), fleet,
                                                     /*pool=*/nullptr);
  ASSERT_EQ(expected.size(), batched.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], batched[i]) << GetParam() << " item " << i;
  }
}

TEST_P(BatchEquivalence, PoolWidthAndOrderDoNotChangeResults) {
  std::vector<LoadSeries> fleet = MakeFleet();
  // Deterministic shuffle so results must follow items, not grids.
  std::reverse(fleet.begin() + 2, fleet.end());
  const std::vector<std::string> expected = PerServerDocs(GetParam(), fleet);
  const std::vector<std::string> seq = BatchDocs(GetParam(), fleet, nullptr);
  ThreadPool pool(8);
  const std::vector<std::string> par = BatchDocs(GetParam(), fleet, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], expected[i]) << GetParam() << " item " << i;
    EXPECT_EQ(seq[i], par[i]) << GetParam() << " jobs-8 item " << i;
  }
}

TEST_P(BatchEquivalence, ScalarKernelsPreserveEquivalence) {
  ScopedScalarKernels scalar;
  const std::vector<LoadSeries> fleet = MakeFleet();
  const std::vector<std::string> expected = PerServerDocs(GetParam(), fleet);
  ThreadPool pool(8);
  const std::vector<std::string> batched = BatchDocs(GetParam(), fleet, &pool);
  ASSERT_EQ(expected.size(), batched.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], batched[i]) << GetParam() << " item " << i;
  }
}

TEST_P(BatchEquivalence, FastAndScalarAgreeWithinForecastTolerance) {
  // Clean, strongly periodic fixture: both modes must land on models
  // whose next-day forecasts agree within a few load units RMS (the
  // fast paths associate differently, so byte equality is out of scope
  // across modes — DESIGN.md §"Forecast kernel engine").
  const LoadSeries series = MakeSeries(7, 7, 0, /*with_missing=*/false);
  auto fit_forecast = [&](KernelMode mode) {
    SetKernelMode(mode);
    auto model =
        std::move(ModelFactory::Global().Create(GetParam())).ValueOrDie();
    model->Fit(series).Abort();
    return std::move(model->Forecast(series, series.end(), kMinutesPerDay))
        .ValueOrDie();
  };
  const LoadSeries fast = fit_forecast(KernelMode::kFast);
  const LoadSeries scalar = fit_forecast(KernelMode::kScalar);
  SetKernelMode(KernelMode::kFast);
  ASSERT_EQ(fast.size(), scalar.size());
  double sq = 0.0;
  for (int64_t i = 0; i < fast.size(); ++i) {
    const double d = fast.ValueAt(i) - scalar.ValueAt(i);
    sq += d * d;
  }
  const double rms = std::sqrt(sq / static_cast<double>(fast.size()));
  // The feedforward fast path takes mini-batch Adam steps, which
  // converge well past what the full-batch scalar reference reaches on
  // the quick family's 30-epoch budget — the cross-mode gap there is
  // bounded by the scalar model's undertraining, not kernel rounding.
  const double tol =
      std::string(GetParam()) == "feedforward_quick" ? 10.0 : 4.0;
  EXPECT_LE(rms, tol) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Models, BatchEquivalence,
                         ::testing::Values("ssa", "additive",
                                           "feedforward_quick",
                                           "arima_quick"));

/// The ARIMA fast path must still pick a sensible structure: on a
/// synthetic ARMA(1,0) process both modes should select d and p
/// consistently (structure exactness on a well-behaved fixture).
TEST(BatchEquivalenceStructure, ArimaOrderStableAcrossModes) {
  RegisterQuickFamilies();
  Rng rng(42);
  std::vector<double> values;
  double z = 0.0;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    z = 0.6 * z + rng.Gaussian(0.0, 2.0);
    values.push_back(std::clamp(30.0 + z, 0.0, 100.0));
  }
  const LoadSeries series =
      std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
  auto fit_doc = [&](KernelMode mode) {
    SetKernelMode(mode);
    auto model =
        std::move(ModelFactory::Global().Create("arima_quick")).ValueOrDie();
    model->Fit(series).Abort();
    return std::move(model->Serialize()).ValueOrDie();
  };
  const Json fast = fit_doc(KernelMode::kFast);
  const Json scalar = fit_doc(KernelMode::kScalar);
  SetKernelMode(KernelMode::kFast);
  EXPECT_EQ(std::move(fast.GetNumber("d")).ValueOrDie(),
            std::move(scalar.GetNumber("d")).ValueOrDie());
  EXPECT_EQ(std::move(fast.GetNumber("p")).ValueOrDie(),
            std::move(scalar.GetNumber("p")).ValueOrDie());
}

}  // namespace
}  // namespace seagull
