/// \file integration_test.cc
/// \brief End-to-end assertions on the full simulation: the pipeline, the
/// scheduler, and the paper's fleet-level shapes (Figure 3, §5.4,
/// Figure 13) on a scaled-down fleet.

#include <gtest/gtest.h>

#include "scheduling/simulation.h"

namespace seagull {
namespace {

class SimulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegionConfig region;
    region.name = "integration";
    region.num_servers = 400;
    region.weeks = 4;
    region.seed = 777;
    SimulationOptions options;
    options.regions = {region};
    options.threads = 4;
    auto result = RunSimulation(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = new SimulationResult(std::move(result).ValueUnsafe());
  }

  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static SimulationResult* result_;
};

SimulationResult* SimulationTest::result_ = nullptr;

TEST_F(SimulationTest, PipelineRunsSucceed) {
  ASSERT_EQ(result_->regions.size(), 1u);
  const auto& region = result_->regions[0];
  ASSERT_FALSE(region.runs.empty());
  for (const auto& run : region.runs) {
    EXPECT_TRUE(run.success) << run.failure;
  }
  EXPECT_TRUE(region.alerts.empty());
}

TEST_F(SimulationTest, BackupsWereScheduled) {
  const auto& region = result_->regions[0];
  // Roughly one backup per alive long-lived server in the scheduled week.
  EXPECT_GT(region.backups_scheduled, 150);
  EXPECT_GT(region.backups_moved, 0);
  EXPECT_LT(region.backups_moved, region.backups_scheduled);
}

TEST_F(SimulationTest, ImpactAccountingConsistent) {
  const ImpactReport& impact = result_->impact;
  EXPECT_EQ(impact.backups, result_->regions[0].backups_scheduled);
  EXPECT_EQ(impact.backups, impact.moved_to_ll + impact.default_already_ll +
                                impact.incorrect + impact.moved_neutral);
  // The large majority of placements land in (or tie with) LL windows.
  EXPECT_LT(impact.FractionIncorrect(), 0.15);
}

TEST_F(SimulationTest, CapacityTailMatchesPaperShape) {
  // Figure 13(b): only a small tail (paper: 3.7%) reaches capacity.
  const CapacityReport& cap = result_->capacity;
  EXPECT_GT(cap.servers, 200);
  EXPECT_GT(cap.FractionAtCapacity(), 0.005);
  EXPECT_LT(cap.FractionAtCapacity(), 0.10);
  int64_t histogram_total = 0;
  for (int64_t count : cap.histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, cap.servers);
}

TEST_F(SimulationTest, DashboardRendered) {
  EXPECT_NE(result_->dashboard_text.find("integration"), std::string::npos);
  EXPECT_NE(result_->dashboard_text.find("Backups:"), std::string::npos);
}

TEST(SimulationSmallTest, MultiRegionRuns) {
  RegionConfig r1, r2;
  r1.name = "alpha";
  r1.num_servers = 60;
  r1.weeks = 4;
  r1.seed = 1;
  r2.name = "beta";
  r2.num_servers = 80;
  r2.weeks = 4;
  r2.seed = 2;
  SimulationOptions options;
  options.regions = {r1, r2};
  auto result = RunSimulation(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->regions.size(), 2u);
  EXPECT_NE(result->dashboard_text.find("alpha"), std::string::npos);
  EXPECT_NE(result->dashboard_text.find("beta"), std::string::npos);
}

TEST(SimulationSmallTest, MoreWeeksMoreRuns) {
  RegionConfig region;
  region.name = "longer";
  region.num_servers = 40;
  region.weeks = 6;
  region.seed = 3;
  SimulationOptions options;
  options.regions = {region};
  auto result = RunSimulation(options);
  ASSERT_TRUE(result.ok());
  // Pipeline runs at weeks 2,3,4 (schedules weeks 3,4,5).
  EXPECT_EQ(result->regions[0].runs.size(), 3u);
}

TEST(SimulationSmallTest, SsaModelAlsoWorksEndToEnd) {
  RegionConfig region;
  region.name = "ssa-e2e";
  region.num_servers = 25;
  region.weeks = 4;
  region.seed = 4;
  SimulationOptions options;
  options.regions = {region};
  options.model_name = "ssa";
  options.threads = 4;
  auto result = RunSimulation(options);
  ASSERT_TRUE(result.ok());
  for (const auto& run : result->regions[0].runs) {
    EXPECT_TRUE(run.success) << run.failure;
  }
  EXPECT_GT(result->regions[0].backups_scheduled, 0);
}

}  // namespace
}  // namespace seagull
