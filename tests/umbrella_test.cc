/// \file umbrella_test.cc
/// \brief Compile-level check that the umbrella header exposes the whole
/// public API in one include.

#include "seagull.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

TEST(UmbrellaTest, EverySubsystemReachable) {
  // Touch one symbol from each subsystem.
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(LoadSeries::MakeEmpty(0, 5, 1).ok());
  EXPECT_TRUE(ArchetypeMix{}.IsValid());
  EXPECT_FALSE(ModelFactory::Global().Names().empty());
  AccuracyConfig accuracy;
  EXPECT_DOUBLE_EQ(accuracy.over_bound, 10.0);
  FleetConfig fleet;
  EXPECT_EQ(fleet.long_lived_weeks, 3);
  DocStore docs;
  EXPECT_TRUE(docs.ContainerNames().empty());
  ServiceFabricProperties properties;
  EXPECT_EQ(properties.Count(), 0);
  SqlFleetConfig sql;
  EXPECT_GT(sql.stable_fraction, 0.0);
}

}  // namespace
}  // namespace seagull
