/// \file obs_metrics_test.cc
/// \brief Registry semantics of the typed metrics layer: instrument
/// identity, label canonicalization, cardinality capping, histogram
/// bucket edges and quantiles, snapshot/reset behavior under concurrent
/// writers, and both exporters (JSON round-trip through common/json,
/// Prometheus text exposition).

#include "common/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace seagull {
namespace {

TEST(CounterTest, IncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 5.0);
  g.Max(4.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.Value(), 5.0);
  g.Max(9.0);
  EXPECT_DOUBLE_EQ(g.Value(), 9.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({10.0, 20.0, 30.0});
  h.Observe(5.0);    // <= 10 -> bucket 0
  h.Observe(10.0);   // == edge: its own bucket (le semantics)
  h.Observe(10.5);   // first edge >= value is 20 -> bucket 1
  h.Observe(30.0);   // bucket 2
  h.Observe(31.0);   // beyond the last edge -> +inf bucket
  EXPECT_EQ(h.Count(), 5);
  EXPECT_DOUBLE_EQ(h.Sum(), 5.0 + 10.0 + 10.5 + 30.0 + 31.0);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1);  // +inf
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Observe(5.0);
  h.Observe(15.0);
  h.Observe(25.0);
  h.Observe(35.0);
  // rank 2 falls at the top of bucket [10, 20].
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 20.0);
  // The +inf bucket reports its lower edge rather than inventing a bound.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 30.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
}

TEST(HistogramTest, DefaultLatencyEdgesSpanMicrosecondsToSeconds) {
  const auto& edges = Histogram::DefaultLatencyEdgesMicros();
  ASSERT_FALSE(edges.empty());
  EXPECT_DOUBLE_EQ(edges.front(), 50.0);        // 50us floor
  EXPECT_DOUBLE_EQ(edges.back(), 10000000.0);   // 10s ceiling
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(RegistryTest, InstrumentPointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("obs.test.stable");
  Counter* b = registry.GetCounter("obs.test.stable");
  EXPECT_EQ(a, b);
  a->Increment(7);
  registry.Reset();  // zeroes values, never invalidates pointers
  EXPECT_EQ(b->Value(), 0);
  b->Increment();
  EXPECT_EQ(a->Value(), 1);
}

TEST(RegistryTest, LabelsAreCanonicalizedByKey) {
  MetricsRegistry registry;
  Counter* ab = registry.GetCounter("obs.test.labels",
                                    {{"a", "1"}, {"b", "2"}});
  Counter* ba = registry.GetCounter("obs.test.labels",
                                    {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);  // key order must not matter
  Counter* other = registry.GetCounter("obs.test.labels", {{"a", "2"}});
  EXPECT_NE(ab, other);
}

TEST(RegistryTest, DifferentKindsKeepDistinctNamespacesPerLabels) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("obs.test.kinds", {{"op", "put"}});
  Gauge* g = registry.GetGauge("obs.test.kinds.gauge");
  Histogram* h = registry.GetHistogram("obs.test.kinds.hist");
  c->Increment();
  g->Set(2.0);
  h->Observe(1.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
}

TEST(RegistryTest, CardinalityCapRoutesToOverflowChild) {
  MetricsRegistry registry;
  registry.SetMaxCardinality(2);
  Counter* v1 = registry.GetCounter("obs.test.card", {{"v", "1"}});
  Counter* v2 = registry.GetCounter("obs.test.card", {{"v", "2"}});
  EXPECT_NE(v1, v2);
  EXPECT_EQ(registry.OverflowCount(), 0);
  // Third label set exceeds the cap: both lookups land on one
  // {overflow="true"} child instead of growing the label space.
  Counter* v3 = registry.GetCounter("obs.test.card", {{"v", "3"}});
  Counter* v4 = registry.GetCounter("obs.test.card", {{"v", "4"}});
  EXPECT_EQ(v3, v4);
  EXPECT_EQ(v3, registry.GetCounter("obs.test.card", {{"overflow", "true"}}));
  EXPECT_EQ(registry.OverflowCount(), 2);
  // The unlabeled instrument always fits, cap or not.
  EXPECT_NE(registry.GetCounter("obs.test.card"), v3);
  // Other names are unaffected by this name's cardinality.
  registry.GetCounter("obs.test.card2", {{"v", "9"}})->Increment();
  EXPECT_EQ(registry.OverflowCount(), 2);
}

TEST(RegistryTest, HistogramEdgesHonoredOnFirstRegistrationOnly) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("obs.test.edges", {}, {1.0, 2.0});
  ASSERT_EQ(h->edges().size(), 2u);
  // Later lookups return the existing instrument; new edges are ignored.
  Histogram* again =
      registry.GetHistogram("obs.test.edges", {}, {5.0, 6.0, 7.0});
  EXPECT_EQ(h, again);
  EXPECT_EQ(again->edges().size(), 2u);
  // Empty edges mean the default latency layout.
  Histogram* dflt = registry.GetHistogram("obs.test.edges.default");
  EXPECT_EQ(dflt->edges(), Histogram::DefaultLatencyEdgesMicros());
}

TEST(SnapshotTest, SortedKeysAndJsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("obs.z.last")->Increment(3);
  registry.GetCounter("obs.a.first", {{"op", "get"}})->Increment(1);
  registry.GetGauge("obs.m.gauge")->Set(2.5);
  Histogram* h = registry.GetHistogram("obs.m.hist", {}, {10.0, 20.0});
  h->Observe(5.0);
  h->Observe(15.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 4u);
  for (size_t i = 1; i < snapshot.samples.size(); ++i) {
    EXPECT_LT(snapshot.samples[i - 1].Key(), snapshot.samples[i].Key());
  }
  EXPECT_EQ(snapshot.samples[0].Key(), "obs.a.first{op=get}");

  auto parsed = Json::Parse(snapshot.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(
      (*parsed)["counters"].GetNumber("obs.a.first{op=get}").ValueOr(-1), 1.0);
  EXPECT_DOUBLE_EQ((*parsed)["gauges"].GetNumber("obs.m.gauge").ValueOr(-1),
                   2.5);
  const Json& hist = (*parsed)["histograms"]["obs.m.hist"];
  EXPECT_DOUBLE_EQ(hist.GetNumber("count").ValueOr(-1), 2.0);
  EXPECT_DOUBLE_EQ(hist.GetNumber("sum").ValueOr(-1), 20.0);
  ASSERT_EQ(hist["buckets"].AsArray().size(), 3u);  // 2 edges + inf
  EXPECT_EQ(hist["buckets"].AsArray()[2].GetString("le").ValueOr(""), "inf");
}

TEST(SnapshotTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("obs.prom.ops", {{"op", "get"}})->Increment(4);
  Histogram* h = registry.GetHistogram("obs.prom.micros", {}, {10.0, 20.0});
  h->Observe(5.0);
  h->Observe(15.0);
  h->Observe(99.0);
  std::string text = registry.Snapshot().ToPrometheusText();
  // Names sanitized to [a-zA-Z0-9_]; buckets are cumulative with +Inf.
  EXPECT_NE(text.find("# TYPE obs_prom_ops counter"), std::string::npos);
  EXPECT_NE(text.find("obs_prom_ops{op=\"get\"} 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_prom_micros histogram"), std::string::npos);
  EXPECT_NE(text.find("obs_prom_micros_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_prom_micros_bucket{le=\"20\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_prom_micros_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_prom_micros_count 3"), std::string::npos);
}

TEST(SnapshotTest, WithoutDropsPrefixesAndCounterValuesFlattens) {
  MetricsRegistry registry;
  registry.GetCounter("seagull.pool.stolen")->Increment(5);
  registry.GetCounter("seagull.lake.ops", {{"op", "get"}})->Increment(2);
  registry.GetGauge("seagull.pool.workers")->Set(8.0);
  MetricsSnapshot snapshot =
      registry.Snapshot().Without({"seagull.pool."});
  ASSERT_EQ(snapshot.samples.size(), 1u);
  auto counters = snapshot.CounterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters["seagull.lake.ops{op=get}"], 2);
}

TEST(RegistryTest, SnapshotAndResetRaceWithWriters) {
  // 8 writer threads hammer one counter + one histogram while the main
  // thread interleaves Snapshot() and Reset(). The assertion is
  // structural (no torn reads, monotonically sane values); tsan turns
  // this into a data-race detector for the whole lookup/update path.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      Counter* c = registry.GetCounter("obs.race.ops",
                                       {{"writer", std::to_string(t % 2)}});
      Histogram* h = registry.GetHistogram("obs.race.micros");
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snapshot = registry.Snapshot();
    for (const auto& s : snapshot.samples) {
      EXPECT_GE(s.counter_value, 0);
      EXPECT_GE(s.count, 0);
    }
    if (i % 10 == 9) registry.Reset();
  }
  for (auto& w : writers) w.join();
  // After the final reset + remaining writes, totals are bounded by what
  // the writers could have produced.
  auto counters = registry.Snapshot().CounterValues();
  int64_t total = 0;
  for (const auto& [key, value] : counters) total += value;
  EXPECT_GE(total, 0);
  EXPECT_LE(total, static_cast<int64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace seagull
