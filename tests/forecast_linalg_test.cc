#include "forecast/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace seagull {
namespace {

TEST(MatrixTest, Basics) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(1, 2) = 5;
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  auto col = m.Column(2);
  EXPECT_DOUBLE_EQ(col[1], 5.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatMulTest, KnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c->At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c->At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c->At(1, 1), 50.0);
}

TEST(MatMulTest, ShapeMismatch) {
  EXPECT_FALSE(MatMul(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(TransposeTest, RoundTrip) {
  Matrix a(2, 3);
  a.At(0, 2) = 7;
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 7.0);
  Matrix back = Transpose(t);
  EXPECT_DOUBLE_EQ(back.At(0, 2), 7.0);
}

TEST(MatVecTest, Known) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  auto y = MatVec(a, {1, 1});
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)[0], 3.0);
  EXPECT_DOUBLE_EQ((*y)[1], 7.0);
  EXPECT_FALSE(MatVec(a, {1, 2, 3}).ok());
}

TEST(DotTest, Basics) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  Matrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  auto x = CholeskySolve(a, {10, 9});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a.At(0, 0) = 0;  // singular
  a.At(1, 1) = 1;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
  Matrix neg(1, 1);
  neg.At(0, 0) = -1;
  EXPECT_FALSE(CholeskySolve(neg, {1}).ok());
}

TEST(LeastSquaresTest, ExactFit) {
  // y = 2x + 1 through 3 points; design [1, x].
  Matrix a(3, 2);
  std::vector<double> b(3);
  for (int i = 0; i < 3; ++i) {
    a.At(i, 0) = 1.0;
    a.At(i, 1) = i;
    b[static_cast<size_t>(i)] = 2.0 * i + 1.0;
  }
  auto x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(LeastSquaresTest, RidgeShrinks) {
  Matrix a(4, 1);
  std::vector<double> b = {2, 2, 2, 2};
  for (int i = 0; i < 4; ++i) a.At(i, 0) = 1.0;
  auto no_ridge = SolveLeastSquares(a, b, 0.0);
  auto ridge = SolveLeastSquares(a, b, 4.0);
  ASSERT_TRUE(no_ridge.ok());
  ASSERT_TRUE(ridge.ok());
  EXPECT_NEAR((*no_ridge)[0], 2.0, 1e-10);
  EXPECT_NEAR((*ridge)[0], 1.0, 1e-10);  // 4/(4+4) * 2
}

TEST(SvdTest, DiagonalMatrix) {
  Matrix a(3, 2);
  a.At(0, 0) = 3;
  a.At(1, 1) = 2;
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[0], 3.0, 1e-10);
  EXPECT_NEAR(svd->s[1], 2.0, 1e-10);
}

TEST(SvdTest, SingularValuesDescending) {
  Rng rng(5);
  Matrix a(10, 6);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 6; ++j) a.At(i, j) = rng.Gaussian();
  }
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t k = 1; k < svd->s.size(); ++k) {
    EXPECT_GE(svd->s[k - 1], svd->s[k]);
  }
}

TEST(SvdTest, Reconstruction) {
  Rng rng(9);
  Matrix a(12, 5);
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 5; ++j) a.At(i, j) = rng.Gaussian();
  }
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  // Reconstruct A = U S V^T and compare.
  Matrix us = svd->u;
  for (int64_t i = 0; i < us.rows(); ++i) {
    for (int64_t j = 0; j < us.cols(); ++j) {
      us.At(i, j) *= svd->s[static_cast<size_t>(j)];
    }
  }
  auto recon = MatMul(us, Transpose(svd->v));
  ASSERT_TRUE(recon.ok());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(recon->At(i, j), a.At(i, j), 1e-8);
    }
  }
}

TEST(SvdTest, OrthonormalFactors) {
  Rng rng(11);
  Matrix a(8, 4);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 4; ++j) a.At(i, j) = rng.Gaussian();
  }
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  auto utu = MatMul(Transpose(svd->u), svd->u);
  auto vtv = MatMul(Transpose(svd->v), svd->v);
  ASSERT_TRUE(utu.ok());
  ASSERT_TRUE(vtv.ok());
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(utu->At(i, j), expected, 1e-8);
      EXPECT_NEAR(vtv->At(i, j), expected, 1e-8);
    }
  }
}

TEST(SvdTest, RequiresTallMatrix) {
  EXPECT_FALSE(JacobiSvd(Matrix(2, 3)).ok());
}

TEST(EigenTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 2;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(EigenTest, RequiresSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(EigenTest, ReconstructsRandomSymmetric) {
  Rng rng(21);
  const int64_t n = 12;
  Matrix a(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      double v = rng.Gaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(lambda) V^T.
  Matrix vl = eig->vectors;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      vl.At(i, j) *= eig->values[static_cast<size_t>(j)];
    }
  }
  auto recon = MatMul(vl, Transpose(eig->vectors));
  ASSERT_TRUE(recon.ok());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(recon->At(i, j), a.At(i, j), 1e-8);
    }
  }
  // Eigenvalues descending, eigenvectors orthonormal.
  for (size_t k = 1; k < eig->values.size(); ++k) {
    EXPECT_GE(eig->values[k - 1], eig->values[k]);
  }
  auto vtv = MatMul(Transpose(eig->vectors), eig->vectors);
  ASSERT_TRUE(vtv.ok());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(vtv->At(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(EigenTest, AgreesWithSvdOnGramMatrix) {
  Rng rng(33);
  Matrix a(20, 6);
  for (int64_t i = 0; i < 20; ++i) {
    for (int64_t j = 0; j < 6; ++j) a.At(i, j) = rng.Gaussian();
  }
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  auto gram = MatMul(Transpose(a), a);
  ASSERT_TRUE(gram.ok());
  auto eig = SymmetricEigen(*gram);
  ASSERT_TRUE(eig.ok());
  for (size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(eig->values[k], svd->s[k] * svd->s[k], 1e-7);
  }
}

TEST(SvdTest, RankDeficient) {
  // Two identical columns -> one zero singular value.
  Matrix a(4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    a.At(i, 0) = static_cast<double>(i + 1);
    a.At(i, 1) = static_cast<double>(i + 1);
  }
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->s[0], 1.0);
  EXPECT_NEAR(svd->s[1], 0.0, 1e-8);
}

}  // namespace
}  // namespace seagull
