#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace seagull {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(&pool, n, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, MatchesSequentialSum) {
  ThreadPool pool(8);
  const int64_t n = 5000;
  std::vector<int64_t> values(n);
  ParallelFor(&pool, n, [&](int64_t i) {
    values[static_cast<size_t>(i)] = i * i;
  });
  int64_t parallel_sum = std::accumulate(values.begin(), values.end(),
                                         int64_t{0});
  int64_t expected = 0;
  SequentialFor(n, [&](int64_t i) { expected += i * i; });
  EXPECT_EQ(parallel_sum, expected);
}

TEST(ParallelForTest, HandlesEmptyAndSingle) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SmallNLargePool) {
  ThreadPool pool(16);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 3, [&](int64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(SequentialForTest, InOrder) {
  std::vector<int64_t> order;
  SequentialFor(5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace seagull
