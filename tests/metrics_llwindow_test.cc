#include "metrics/ll_window.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

// Builds a full day (288 ticks) with a given base load and a valley of
// `valley_ticks` at `valley_start_tick` with the given load.
LoadSeries DayWithValley(double base, int64_t valley_start_tick,
                         int64_t valley_ticks, double valley_load,
                         int64_t day_index = 0) {
  std::vector<double> values(288, base);
  for (int64_t i = 0; i < valley_ticks; ++i) {
    values[static_cast<size_t>(valley_start_tick + i)] = valley_load;
  }
  return std::move(LoadSeries::Make(day_index * kMinutesPerDay, 5,
                                    std::move(values)))
      .ValueOrDie();
}

TEST(LowestLoadWindowTest, FindsTheValley) {
  LoadSeries day = DayWithValley(50, 100, 12, 5);  // 1h valley at tick 100
  WindowResult w = LowestLoadWindow(day, 0, 60);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.start, 100 * 5);
  EXPECT_DOUBLE_EQ(w.average_load, 5.0);
}

TEST(LowestLoadWindowTest, RespectsBackupDuration) {
  // Valley shorter than the backup: the best window must include some
  // base-load ticks.
  LoadSeries day = DayWithValley(50, 100, 6, 5);  // 30-min valley
  WindowResult w = LowestLoadWindow(day, 0, 60);  // 1h backup
  ASSERT_TRUE(w.found);
  EXPECT_GT(w.average_load, 5.0);
  EXPECT_LT(w.average_load, 50.0);
}

TEST(LowestLoadWindowTest, WorksOnNonZeroDay) {
  LoadSeries day = DayWithValley(50, 30, 12, 2, /*day_index=*/5);
  WindowResult w = LowestLoadWindow(day, 5, 60);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.start, 5 * kMinutesPerDay + 30 * 5);
}

TEST(LowestLoadWindowTest, NotFoundOffDay) {
  LoadSeries day = DayWithValley(50, 0, 1, 5, 0);
  EXPECT_FALSE(LowestLoadWindow(day, 3, 60).found);
}

TEST(WindowChosenCorrectlyTest, ExactMatchIsCorrect) {
  LoadSeries day = DayWithValley(50, 100, 24, 5);
  WindowResult true_w = LowestLoadWindow(day, 0, 60);
  EXPECT_TRUE(IsWindowChosenCorrectly(day, true_w, true_w));
}

TEST(WindowChosenCorrectlyTest, Figure8NonOverlappingButClose) {
  // Two valleys with nearly equal load: picking the "wrong" one is still
  // correct because the true LL window is not significantly better.
  std::vector<double> values(288, 50.0);
  for (int64_t i = 40; i < 52; ++i) values[static_cast<size_t>(i)] = 6.0;
  for (int64_t i = 200; i < 212; ++i) values[static_cast<size_t>(i)] = 5.0;
  LoadSeries day =
      std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
  WindowResult true_w = LowestLoadWindow(day, 0, 60);
  EXPECT_EQ(true_w.start, 200 * 5);
  WindowResult predicted;
  predicted.found = true;
  predicted.start = 40 * 5;
  predicted.duration_minutes = 60;
  EXPECT_TRUE(IsWindowChosenCorrectly(day, predicted, true_w));
}

TEST(WindowChosenCorrectlyTest, Figure9SignificantlyWorseWindow) {
  // The predicted window sits on base load 50 while the true valley is 5:
  // far outside the 10-point tolerance.
  LoadSeries day = DayWithValley(50, 200, 24, 5);
  WindowResult true_w = LowestLoadWindow(day, 0, 60);
  WindowResult predicted;
  predicted.found = true;
  predicted.start = 0;
  predicted.duration_minutes = 60;
  EXPECT_FALSE(IsWindowChosenCorrectly(day, predicted, true_w));
}

TEST(WindowChosenCorrectlyTest, UnfoundWindowsIncorrect) {
  LoadSeries day = DayWithValley(50, 0, 1, 5);
  WindowResult found = LowestLoadWindow(day, 0, 60);
  WindowResult not_found;
  EXPECT_FALSE(IsWindowChosenCorrectly(day, not_found, found));
  EXPECT_FALSE(IsWindowChosenCorrectly(day, found, not_found));
}

TEST(EvaluateLowLoadTest, PerfectForecastPassesBoth) {
  LoadSeries truth = DayWithValley(50, 100, 24, 5);
  LowLoadEvaluation eval = EvaluateLowLoad(truth, truth, 0, 60);
  ASSERT_TRUE(eval.evaluable);
  EXPECT_TRUE(eval.window_correct);
  EXPECT_TRUE(eval.load_accurate);
  EXPECT_DOUBLE_EQ(eval.window_bucket.ratio, 1.0);
  EXPECT_DOUBLE_EQ(eval.day_bucket.ratio, 1.0);
}

TEST(EvaluateLowLoadTest, Figure10WindowRightLoadWrong) {
  // Predicted and true LL windows coincide, but the predicted load inside
  // the window is far too low (under-prediction beyond -5).
  LoadSeries truth = DayWithValley(50, 100, 24, 20);
  LoadSeries predicted = DayWithValley(50, 100, 24, 5);
  LowLoadEvaluation eval = EvaluateLowLoad(predicted, truth, 0, 60);
  ASSERT_TRUE(eval.evaluable);
  EXPECT_TRUE(eval.window_correct);
  EXPECT_FALSE(eval.load_accurate);
}

TEST(EvaluateLowLoadTest, Figure9LoadRightWindowWrong) {
  // Truth has its valley at tick 200; the forecast predicts the load well
  // everywhere except it invents a deeper valley at tick 40, so the
  // predicted LL window lands on base-load territory.
  std::vector<double> truth_v(288, 50.0);
  for (int64_t i = 200; i < 224; ++i) truth_v[static_cast<size_t>(i)] = 5.0;
  std::vector<double> pred_v = truth_v;  // accurate at the chosen window...
  for (int64_t i = 40; i < 64; ++i) pred_v[static_cast<size_t>(i)] = 2.0;
  LoadSeries truth =
      std::move(LoadSeries::Make(0, 5, std::move(truth_v))).ValueOrDie();
  LoadSeries predicted =
      std::move(LoadSeries::Make(0, 5, std::move(pred_v))).ValueOrDie();
  LowLoadEvaluation eval = EvaluateLowLoad(predicted, truth, 0, 60);
  ASSERT_TRUE(eval.evaluable);
  EXPECT_FALSE(eval.window_correct);
}

TEST(EvaluateLowLoadTest, NotEvaluableWithoutData) {
  LoadSeries truth = DayWithValley(50, 100, 24, 5);
  LoadSeries empty;
  LowLoadEvaluation eval = EvaluateLowLoad(empty, truth, 0, 60);
  EXPECT_FALSE(eval.evaluable);
  EXPECT_FALSE(eval.window_correct);
}

TEST(EvaluateLowLoadTest, OrthogonalMetricsBothFail) {
  // Wrong window and wrong load.
  LoadSeries truth = DayWithValley(50, 200, 24, 5);
  LoadSeries predicted = DayWithValley(80, 40, 24, 30);
  LowLoadEvaluation eval = EvaluateLowLoad(predicted, truth, 0, 60);
  ASSERT_TRUE(eval.evaluable);
  EXPECT_FALSE(eval.window_correct);
  EXPECT_FALSE(eval.load_accurate);
}

}  // namespace
}  // namespace seagull
