#include "telemetry/records.h"

#include <gtest/gtest.h>

#include "telemetry/emitter.h"

namespace seagull {
namespace {

std::vector<TelemetryRecord> SampleRecords() {
  std::vector<TelemetryRecord> records;
  for (int64_t t = 0; t < 30; t += 5) {
    TelemetryRecord r;
    r.server_id = "srv-a";
    r.timestamp = t;
    r.avg_cpu = 10.0 + static_cast<double>(t);
    r.default_backup_start = 120;
    r.default_backup_end = 180;
    records.push_back(r);
  }
  TelemetryRecord b;
  b.server_id = "srv-b";
  b.timestamp = 10;
  b.avg_cpu = 55.5;
  b.default_backup_start = 600;
  b.default_backup_end = 660;
  records.push_back(b);
  return records;
}

TEST(RecordsTest, CsvTableRoundTrip) {
  auto records = SampleRecords();
  CsvTable table = RecordsToCsv(records);
  EXPECT_EQ(table.header.size(), 5u);
  auto back = CsvToRecords(table);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  EXPECT_EQ((*back)[0].server_id, "srv-a");
  EXPECT_NEAR((*back)[2].avg_cpu, records[2].avg_cpu, 1e-4);
  EXPECT_EQ((*back)[6].default_backup_start, 600);
}

TEST(RecordsTest, StreamingTextRoundTrip) {
  auto records = SampleRecords();
  std::string text = RecordsToCsvText(records);
  auto back = ParseTelemetryCsv(text);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].server_id, records[i].server_id);
    EXPECT_EQ((*back)[i].timestamp, records[i].timestamp);
    EXPECT_NEAR((*back)[i].avg_cpu, records[i].avg_cpu, 1e-4);
  }
}

TEST(RecordsTest, StreamingAndTableFormatsAgree) {
  auto records = SampleRecords();
  std::string streamed = RecordsToCsvText(records);
  auto parsed_table = ParseCsv(streamed);
  ASSERT_TRUE(parsed_table.ok());
  auto via_table = CsvToRecords(*parsed_table);
  ASSERT_TRUE(via_table.ok());
  EXPECT_EQ(via_table->size(), records.size());
}

TEST(RecordsTest, ParseRejectsBadHeader) {
  EXPECT_FALSE(ParseTelemetryCsv("a,b,c,d,e\n").ok());
  EXPECT_FALSE(ParseTelemetryCsv("").ok());
}

TEST(RecordsTest, ParseRejectsWrongArity) {
  std::string text = RecordsToCsvText({});
  text += "srv,5,1.0,0\n";  // 4 fields
  EXPECT_FALSE(ParseTelemetryCsv(text).ok());
  std::string text2 = RecordsToCsvText({});
  text2 += "srv,5,1.0,0,10,extra\n";
  EXPECT_FALSE(ParseTelemetryCsv(text2).ok());
}

TEST(RecordsTest, ParseRejectsMalformedNumbers) {
  std::string text = RecordsToCsvText({});
  text += "srv,notanumber,1.0,0,10\n";
  EXPECT_FALSE(ParseTelemetryCsv(text).ok());
}

TEST(RecordsTest, CsvToRecordsRejectsWrongColumns) {
  CsvTable t;
  t.header = {"server_id", "timestamp_minutes", "avg_cpu_pct", "x", "y"};
  EXPECT_FALSE(CsvToRecords(t).ok());
}

TEST(RecordsTest, GroupByServerBuildsAlignedSeries) {
  auto grouped = GroupByServer(SampleRecords());
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->size(), 2u);
  const ServerTelemetry& a = (*grouped)[0];
  EXPECT_EQ(a.server_id, "srv-a");
  EXPECT_EQ(a.load.start(), 0);
  EXPECT_EQ(a.load.size(), 6);
  EXPECT_DOUBLE_EQ(a.load.ValueAt(0), 10.0);
  EXPECT_EQ(a.default_backup_start, 120);
  EXPECT_EQ(a.backup_duration_minutes(), 60);
  const ServerTelemetry& b = (*grouped)[1];
  EXPECT_EQ(b.load.size(), 1);
}

TEST(RecordsTest, GroupByServerHandlesGapsAndOrder) {
  std::vector<TelemetryRecord> records;
  for (int64_t t : {20, 0, 10}) {  // out of order, gap at 5 and 15
    TelemetryRecord r;
    r.server_id = "s";
    r.timestamp = t;
    r.avg_cpu = static_cast<double>(t);
    r.default_backup_start = 0;
    r.default_backup_end = 60;
    records.push_back(r);
  }
  auto grouped = GroupByServer(records);
  ASSERT_TRUE(grouped.ok());
  const LoadSeries& load = (*grouped)[0].load;
  EXPECT_EQ(load.size(), 5);
  EXPECT_DOUBLE_EQ(load.ValueAtTime(0), 0.0);
  EXPECT_TRUE(IsMissing(load.ValueAtTime(5)));
  EXPECT_DOUBLE_EQ(load.ValueAtTime(20), 20.0);
}

TEST(RecordsTest, GroupByServerRejectsOffGrid) {
  TelemetryRecord r;
  r.server_id = "s";
  r.timestamp = 7;
  EXPECT_FALSE(GroupByServer({r}).ok());
}

TEST(EmitterTest, DefaultBackupWindowInsideDay) {
  ServerProfile p;
  p.backup_day = DayOfWeek::kWednesday;
  p.default_backup_start_minute = 23 * 60;  // would overflow the day
  p.backup_duration_minutes = 120;
  MinuteStamp start = 0, end = 0;
  DefaultBackupWindow(p, 1, &start, &end);
  MinuteStamp day_start = kMinutesPerWeek + 2 * kMinutesPerDay;
  EXPECT_GE(start, day_start);
  EXPECT_LE(end, day_start + kMinutesPerDay);
  EXPECT_EQ(end - start, 120);
}

TEST(EmitterTest, ExtractWeekEmitsOnlyPresentSamples) {
  RegionConfig config;
  config.name = "emit";
  config.num_servers = 5;
  config.weeks = 4;
  config.seed = 7;
  config.telemetry.missing_sample_rate = 0.1;
  Fleet fleet = Fleet::Generate(config);
  auto records = ExtractWeek(fleet, 3);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_GE(r.avg_cpu, 0.0);
    EXPECT_LE(r.avg_cpu, 100.0);
    EXPECT_EQ(r.timestamp % kServerIntervalMinutes, 0);
    EXPECT_LT(r.timestamp, 4 * kMinutesPerWeek);
    EXPECT_GT(r.default_backup_end, r.default_backup_start);
  }
}

TEST(EmitterTest, ExtractedTextParsesAndGroups) {
  RegionConfig config;
  config.name = "emit2";
  config.num_servers = 3;
  config.weeks = 4;
  Fleet fleet = Fleet::Generate(config);
  std::string text = ExtractWeekCsvText(fleet, 3);
  auto records = ParseTelemetryCsv(text);
  ASSERT_TRUE(records.ok());
  auto grouped = GroupByServer(*records);
  ASSERT_TRUE(grouped.ok());
  EXPECT_LE(grouped->size(), 3u);
  EXPECT_GE(grouped->size(), 1u);
}

}  // namespace
}  // namespace seagull
