#include "forecast/additive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/standard.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

AdditiveOptions FastOptions() {
  AdditiveOptions o;
  o.iterations = 300;
  o.uncertainty_samples = 20;
  return o;
}

LoadSeries SeasonalSeries(int64_t days, double trend_per_day = 0.0) {
  std::vector<double> values;
  for (int64_t i = 0; i < days * 288; ++i) {
    double day_phase = static_cast<double>(i % 288) / 288.0;
    double week_phase = static_cast<double>(i % 2016) / 2016.0;
    double v = 30.0 + 10.0 * std::sin(kTwoPi * day_phase) +
               5.0 * std::cos(kTwoPi * week_phase) +
               trend_per_day * static_cast<double>(i) / 288.0;
    values.push_back(std::max(0.0, v));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(AdditiveTest, FitsDailySeasonality) {
  LoadSeries train = SeasonalSeries(7);
  AdditiveForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  LoadSeries truth =
      SeasonalSeries(8).Slice(7 * kMinutesPerDay, 8 * kMinutesPerDay);
  double mae = MeanAbsoluteError(*forecast, truth);
  EXPECT_LT(mae, 4.0);
}

TEST(AdditiveTest, CapturesLinearTrend) {
  LoadSeries train = SeasonalSeries(7, 1.0);  // +1 point per day
  AdditiveForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  // Mean of the forecast day should be near the trend-extrapolated level.
  LoadSeries truth =
      SeasonalSeries(8, 1.0).Slice(7 * kMinutesPerDay, 8 * kMinutesPerDay);
  EXPECT_NEAR(forecast->Mean(), truth.Mean(), 5.0);
}

TEST(AdditiveTest, ForecastBeforeFitFails) {
  AdditiveForecast model(FastOptions());
  LoadSeries any = SeasonalSeries(1);
  EXPECT_TRUE(
      model.Forecast(any, 0, kMinutesPerDay).status().IsFailedPrecondition());
}

TEST(AdditiveTest, TooLittleHistoryFails) {
  auto tiny = LoadSeries::Make(0, 5, {1, 2, 3});
  AdditiveForecast model(FastOptions());
  EXPECT_FALSE(model.Fit(*tiny).ok());
}

TEST(AdditiveTest, OutputsBoundedNonNegative) {
  LoadSeries train = SeasonalSeries(7);
  AdditiveForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_GE(forecast->ValueAt(i), 0.0);
    EXPECT_LE(forecast->ValueAt(i), 200.0);
  }
}

TEST(AdditiveTest, ToleratesMissingSamples) {
  LoadSeries train = SeasonalSeries(7);
  for (int64_t i = 1000; i < 1100; ++i) train.SetValue(i, kMissingValue);
  AdditiveForecast model(FastOptions());
  EXPECT_TRUE(model.Fit(train).ok());
}

TEST(AdditiveTest, SerializationRoundTrip) {
  LoadSeries train = SeasonalSeries(7);
  AdditiveForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto doc = model.Serialize();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->GetString("model"), "additive");

  AdditiveForecast restored;
  ASSERT_TRUE(restored.Deserialize(*doc).ok());
  auto f1 = model.Forecast(train, 7 * kMinutesPerDay, 60);
  auto f2 = restored.Forecast(train, 7 * kMinutesPerDay, 60);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  // Monte-Carlo uncertainty is seeded identically, so forecasts agree.
  for (int64_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9);
  }
}

TEST(AdditiveTest, DeserializeRejectsCoefficientMismatch) {
  LoadSeries train = SeasonalSeries(7);
  AdditiveForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  Json doc = std::move(model.Serialize()).ValueOrDie();
  doc["coef"].AsArray().pop_back();
  AdditiveForecast restored;
  EXPECT_FALSE(restored.Deserialize(doc).ok());
}

TEST(AdditiveTest, HolidayEffectLearnedAndApplied) {
  // Days 2 and 5 carry a +20 batch-job offset; day 7 (the forecast day)
  // is also a configured holiday. Weekly seasonality is disabled in both
  // models: with one week of training, day-of-week Fourier terms could
  // explain the elevated days equally well and the (collinear) holiday
  // coefficient would not be identifiable.
  AdditiveOptions options = FastOptions();
  options.weekly_order = 0;
  options.changepoints = 0;
  options.iterations = 1500;
  options.holidays = {2, 5, 7};
  std::vector<double> values;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    int64_t day = i / 288;
    double v = 20.0 + ((day == 2 || day == 5) ? 20.0 : 0.0);
    values.push_back(v);
  }
  LoadSeries train =
      std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
  AdditiveForecast with(options);
  ASSERT_TRUE(with.Fit(train).ok());
  AdditiveOptions plain = options;
  plain.holidays.clear();
  AdditiveForecast without(plain);
  ASSERT_TRUE(without.Fit(train).ok());
  auto f_with = with.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  auto f_without =
      without.Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(f_with.ok());
  ASSERT_TRUE(f_without.ok());
  // The holiday-aware model predicts the elevated level on day 7; the
  // plain model predicts near the weekday baseline.
  EXPECT_GT(f_with->Mean(), f_without->Mean() + 10.0);
  EXPECT_NEAR(f_with->Mean(), 40.0, 6.0);
}

TEST(AdditiveTest, HolidaysSurviveSerialization) {
  AdditiveOptions options = FastOptions();
  options.holidays = {3, 9};
  LoadSeries train = SeasonalSeries(7);
  AdditiveForecast model(options);
  ASSERT_TRUE(model.Fit(train).ok());
  Json doc = std::move(model.Serialize()).ValueOrDie();
  AdditiveForecast restored;
  ASSERT_TRUE(restored.Deserialize(doc).ok());
  auto f1 = model.Forecast(train, 9 * kMinutesPerDay, 60);
  auto f2 = restored.Forecast(train, 9 * kMinutesPerDay, 60);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9);
  }
}

TEST(AdditiveTest, UncertaintySamplesOnlyAffectBeyondTraining) {
  // Inside the trained range the drift term is zero, so the forecast is
  // the deterministic curve regardless of the sample count.
  LoadSeries train = SeasonalSeries(7);
  AdditiveOptions few = FastOptions();
  few.uncertainty_samples = 1;
  AdditiveOptions many = FastOptions();
  many.uncertainty_samples = 50;
  AdditiveForecast a(few), b(many);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  auto fa = a.Forecast(train, 3 * kMinutesPerDay, 60);
  auto fb = b.Forecast(train, 3 * kMinutesPerDay, 60);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  for (int64_t i = 0; i < fa->size(); ++i) {
    EXPECT_NEAR(fa->ValueAt(i), fb->ValueAt(i), 1e-9);
  }
}

}  // namespace
}  // namespace seagull
