/// \file fleet_determinism_test.cc
/// \brief Enforces the fleet engine's determinism contract: a fixed-seed
/// 3-region fleet produces byte-identical forecasts, low-load window
/// choices, and document-store contents whether regions run strictly
/// sequentially (jobs=1) or concurrently (jobs=8) with per-server
/// fan-out. Wall-clock telemetry (run timings) is the one documented
/// exception and is canonicalized before snapshot comparison.

#include "pipeline/fleet_runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/obs/clock.h"
#include "common/obs/metrics.h"
#include "forecast/arima.h"
#include "forecast/feedforward.h"
#include "pipeline/accuracy.h"
#include "pipeline/dashboard.h"
#include "pipeline/deployment.h"
#include "pipeline/inference.h"
#include "store/lake_store.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

constexpr int64_t kWeek = 3;
const char* const kRegions[] = {"det-a", "det-b", "det-c"};

/// One lake shared by every run: 3 regions, 40 servers each, seeds fixed
/// per region so any nondeterminism must come from execution order.
const LakeStore& SharedLake() {
  static const LakeStore* lake = [] {
    auto opened = LakeStore::OpenTemporary("fleet_det");
    opened.status().Abort();
    auto* owned = new LakeStore(std::move(opened).ValueUnsafe());
    uint64_t seed = 900;
    for (const char* region : kRegions) {
      RegionConfig config;
      config.name = region;
      config.num_servers = 40;
      config.weeks = 5;
      config.seed = seed++;
      Fleet fleet = Fleet::Generate(config);
      owned->Put(LakeStore::TelemetryKey(region, kWeek),
                 ExtractWeekCsvText(fleet, kWeek))
          .Abort();
    }
    // Pre-warm region schemas: the validation module writes a schema
    // blob on a region's first-ever run and reads it on every later
    // one, so the very first fleet run against a fresh lake produces a
    // "deduced schema" incident no later run repeats. One throwaway
    // run makes every compared run see identical lake state instead of
    // relying on test execution order to absorb the asymmetry.
    DocStore scratch;
    FleetRunner warmup(owned, &scratch);
    std::vector<FleetJob> jobs;
    for (const char* region : kRegions) jobs.push_back({region, kWeek});
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    warmup.Run(jobs, config);
    return owned;
  }();
  return *lake;
}

/// A second lake holding the same fleets stored as binary SeriesBlock
/// blobs instead of CSV — the data-plane equivalence tests run the same
/// fleet off both and require byte-identical results.
const LakeStore& BlockLake() {
  static const LakeStore* lake = [] {
    auto opened = LakeStore::OpenTemporary("fleet_det_block");
    opened.status().Abort();
    auto* owned = new LakeStore(std::move(opened).ValueUnsafe());
    uint64_t seed = 900;  // identical fleets to SharedLake()
    for (const char* region : kRegions) {
      RegionConfig config;
      config.name = region;
      config.num_servers = 40;
      config.weeks = 5;
      config.seed = seed++;
      Fleet fleet = Fleet::Generate(config);
      owned->Put(LakeStore::TelemetryKey(region, kWeek),
                 ExtractWeekBlock(fleet, kWeek))
          .Abort();
    }
    DocStore scratch;
    FleetRunner warmup(owned, &scratch);
    std::vector<FleetJob> jobs;
    for (const char* region : kRegions) jobs.push_back({region, kWeek});
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    warmup.Run(jobs, config);
    return owned;
  }();
  return *lake;
}

struct FleetOutcome {
  std::unique_ptr<DocStore> docs;
  FleetRunResult result;
};

/// Down-sized ARIMA/feed-forward families: the full configurations are
/// too slow to sweep 40 servers × 3 regions × many runs, but the quick
/// variants exercise the same batched optimizer cores, warm-start
/// lattice, and shared-design grouping the production settings use.
/// Registered before any parallel execution (ModelFactory contract).
void RegisterQuickFamilies() {
  static const bool registered = [] {
    ModelFactory::Global().Register("arima_quick", [] {
      ArimaOptions opt;
      opt.max_p = 1;
      opt.max_d = 1;
      opt.max_q = 1;
      opt.iterations = 40;
      return std::make_unique<ArimaForecast>(opt);
    });
    ModelFactory::Global().Register("feedforward_quick", [] {
      FeedForwardOptions opt;
      opt.epochs = 30;
      return std::make_unique<FeedForwardForecast>(opt);
    });
    return true;
  }();
  (void)registered;
}

FleetOutcome RunFleetOn(const LakeStore& lake, int jobs,
                        const std::string& model) {
  RegisterQuickFamilies();
  FleetOutcome out;
  out.docs = std::make_unique<DocStore>();
  FleetOptions options;
  options.jobs = jobs;
  FleetRunner runner(&lake, out.docs.get(), options);
  std::vector<FleetJob> fleet_jobs;
  for (const char* region : kRegions) fleet_jobs.push_back({region, kWeek});
  PipelineContext config;
  config.model_name = model;
  out.result = runner.Run(fleet_jobs, config);
  return out;
}

FleetOutcome RunFleet(int jobs, const std::string& model) {
  return RunFleetOn(SharedLake(), jobs, model);
}

/// Snapshot text with wall-clock fields zeroed — the only part of the
/// store the determinism contract does not cover. With
/// `canonical_bytes` set, the `ingestion.bytes` stat is zeroed too: it
/// reports the stored blob's size, which legitimately differs between
/// the CSV and SeriesBlock representations of the same telemetry.
std::string CanonicalSnapshot(const DocStore& docs,
                              bool canonical_bytes = false) {
  Json snapshot = docs.Snapshot();
  if (snapshot.Contains(kRunsContainer)) {
    for (Json& doc : snapshot[kRunsContainer].AsArray()) {
      Json& body = doc["body"];
      body["total_millis"] = 0.0;
      body["timings"] = Json::MakeObject();
      if (canonical_bytes && body.Contains("stats")) {
        // Both report sizes of the stored/decoded representation, which
        // legitimately differs between CSV and SeriesBlock forms of the
        // same telemetry (flat records vs grouped series).
        for (const char* stat : {"ingestion.bytes",
                                 "ingestion.resident_bytes"}) {
          if (body["stats"].Contains(stat)) body["stats"][stat] = 0.0;
        }
      }
    }
  }
  return snapshot.Dump();
}

std::string ContainerDump(DocStore& docs, const std::string& name) {
  Json arr = Json::MakeArray();
  for (const auto& doc :
       docs.GetContainer(name)->Query([](const Document&) { return true; })) {
    Json d = Json::MakeObject();
    d["pk"] = doc.partition_key;
    d["id"] = doc.id;
    d["body"] = doc.body;
    arr.Append(std::move(d));
  }
  return arr.Dump();
}

class FleetDeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FleetDeterminismTest, ParallelMatchesSequentialByteForByte) {
  const std::string model = GetParam();
  FleetOutcome sequential = RunFleet(1, model);
  FleetOutcome parallel = RunFleet(8, model);

  ASSERT_EQ(sequential.result.runs.size(), 3u);
  ASSERT_EQ(parallel.result.runs.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(sequential.result.runs[i].report.success)
        << sequential.result.runs[i].report.failure;
    ASSERT_TRUE(parallel.result.runs[i].report.success)
        << parallel.result.runs[i].report.failure;
  }

  // Forecasts + low-load window choices (the inference module's stored
  // predictions) must match exactly.
  EXPECT_EQ(ContainerDump(*sequential.docs, kPredictionsContainer),
            ContainerDump(*parallel.docs, kPredictionsContainer));
  // Trained model parameters (the registry the endpoint serves from).
  EXPECT_EQ(ContainerDump(*sequential.docs, kModelRegistryContainer),
            ContainerDump(*parallel.docs, kModelRegistryContainer));
  // Per-server predictability verdicts.
  EXPECT_EQ(ContainerDump(*sequential.docs, kAccuracyContainer),
            ContainerDump(*parallel.docs, kAccuracyContainer));
  // The whole store, modulo wall-clock telemetry.
  EXPECT_EQ(CanonicalSnapshot(*sequential.docs),
            CanonicalSnapshot(*parallel.docs));
}

TEST_P(FleetDeterminismTest, RepeatedParallelRunsAreStable) {
  const std::string model = GetParam();
  FleetOutcome first = RunFleet(8, model);
  FleetOutcome second = RunFleet(8, model);
  EXPECT_EQ(CanonicalSnapshot(*first.docs), CanonicalSnapshot(*second.docs));
}

TEST_P(FleetDeterminismTest, BinaryTelemetryMatchesCsvByteForByte) {
  // The same fleet stored as CSV and as SeriesBlock must produce
  // byte-identical pipeline results — the binary path skips the flat
  // records intermediate entirely, so this pins the whole grouped
  // validation/ingestion equivalence. Only the `ingestion.bytes` stat
  // (the stored blob's size) may differ and is canonicalized.
  const std::string model = GetParam();
  FleetOutcome csv = RunFleetOn(SharedLake(), 1, model);
  FleetOutcome block = RunFleetOn(BlockLake(), 1, model);
  FleetOutcome block_par = RunFleetOn(BlockLake(), 8, model);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(block.result.runs[i].report.success)
        << block.result.runs[i].report.failure;
  }
  EXPECT_EQ(ContainerDump(*csv.docs, kPredictionsContainer),
            ContainerDump(*block.docs, kPredictionsContainer));
  EXPECT_EQ(CanonicalSnapshot(*csv.docs, /*canonical_bytes=*/true),
            CanonicalSnapshot(*block.docs, /*canonical_bytes=*/true));
  EXPECT_EQ(CanonicalSnapshot(*block.docs),
            CanonicalSnapshot(*block_par.docs));
}

TEST_P(FleetDeterminismTest, CacheOnMatchesCacheOff) {
  // Enabling the lake blob cache must be invisible in the results: the
  // cold (filling) run, a warm (fully cache-served) run, and a cache-
  // less run all land on the same bytes.
  const std::string model = GetParam();
  auto opened = LakeStore::Open(SharedLake().root());
  ASSERT_TRUE(opened.ok());
  LakeStore cached_lake = std::move(opened).ValueUnsafe();
  cached_lake.ConfigureCache(64 << 20);

  FleetOutcome uncached = RunFleet(8, model);
  FleetOutcome cold = RunFleetOn(cached_lake, 8, model);
  FleetOutcome warm = RunFleetOn(cached_lake, 8, model);
  EXPECT_EQ(CanonicalSnapshot(*uncached.docs), CanonicalSnapshot(*cold.docs));
  EXPECT_EQ(CanonicalSnapshot(*uncached.docs), CanonicalSnapshot(*warm.docs));
}

// One heuristic family (no training), the additive family (RNG-seeded
// inference + Gram-space batched training), SSA (tuned linalg kernels —
// Gram builder, tridiagonal eigensolver, unrolled dot), and the quick
// ARIMA/feed-forward variants (warm-start CSS lattice and batched-matmul
// epochs through the BatchTrainer's shared-group fan-out) — so every
// batched training path is pinned parallel==sequential end-to-end.
INSTANTIATE_TEST_SUITE_P(Models, FleetDeterminismTest,
                         ::testing::Values("persistent_prev_day",
                                           "additive", "ssa",
                                           "arima_quick",
                                           "feedforward_quick"));

TEST_P(FleetDeterminismTest, MetricsSnapshotsMatchAcrossJobs) {
  // The observability layer must observe the same fleet identically at
  // jobs=1 and jobs=8: with the clock frozen every duration is zero, so
  // even histogram bucket contents are comparable byte for byte. Only
  // `seagull.pool.*` (steal counts, queue peaks) is schedule-dependent
  // by design and excluded, as is `seagull.process.*` (kernel RSS
  // accounting — physical-memory telemetry, like wall clock). Deeper
  // coverage lives in obs_determinism_test.cc; this keeps the metrics
  // diff inside the fleet contract's own suite.
  const std::string model = GetParam();
  ScopedFrozenClock frozen;
  MetricsRegistry::Global().Reset();
  RunFleet(1, model);
  MetricsSnapshot sequential = MetricsRegistry::Global().Snapshot().Without(
      {"seagull.pool.", "seagull.process."});
  MetricsRegistry::Global().Reset();
  RunFleet(8, model);
  MetricsSnapshot parallel = MetricsRegistry::Global().Snapshot().Without(
      {"seagull.pool.", "seagull.process."});
  EXPECT_EQ(sequential.ToJson().Dump(), parallel.ToJson().Dump());
  EXPECT_GT(sequential.CounterValues()
                .at("seagull.pipeline.module_runs{module=ingestion}"),
            0);
}

FleetOutcome RunFleetSharded(int jobs, int64_t max_resident,
                             const std::string& model,
                             FleetOptions extra = {}) {
  RegisterQuickFamilies();
  FleetOutcome out;
  out.docs = std::make_unique<DocStore>();
  FleetOptions options = std::move(extra);
  options.jobs = jobs;
  options.max_resident_regions = max_resident;
  FleetRunner runner(&SharedLake(), out.docs.get(), options);
  std::vector<FleetJob> fleet_jobs;
  for (const char* region : kRegions) fleet_jobs.push_back({region, kWeek});
  PipelineContext config;
  config.model_name = model;
  out.result = runner.Run(fleet_jobs, config);
  return out;
}

TEST(FleetRunnerTest, ShardedRunMatchesUnshardedByteForByte) {
  // The memory plane must be invisible in the results: running the
  // fleet one region at a time (shard barriers between every region),
  // sequentially or with per-server fan-out, lands on the same bytes
  // as the unsharded run.
  FleetOutcome unsharded = RunFleet(1, "persistent_prev_day");
  FleetOutcome sharded_seq = RunFleetSharded(1, 1, "persistent_prev_day");
  FleetOutcome sharded_par = RunFleetSharded(8, 2, "persistent_prev_day");
  EXPECT_EQ(CanonicalSnapshot(*unsharded.docs),
            CanonicalSnapshot(*sharded_seq.docs));
  EXPECT_EQ(CanonicalSnapshot(*unsharded.docs),
            CanonicalSnapshot(*sharded_par.docs));
}

TEST(FleetRunnerTest, RetireRunsInJobOrderAndCanDropPartitions) {
  // The retire hook fires once per region, in job order even when the
  // shard executed its regions concurrently, and dropping the retired
  // region's partitions releases its documents before the run ends.
  std::vector<std::string> retired;
  FleetOptions extra;
  FleetOutcome out;
  out.docs = std::make_unique<DocStore>();
  extra.jobs = 8;
  extra.max_resident_regions = 2;
  DocStore* docs = out.docs.get();
  extra.retire = [&retired, docs](
                     const FleetJob& job,
                     const PipelineScheduler::ScheduledRun& run) {
    EXPECT_TRUE(run.report.success) << run.report.failure;
    retired.push_back(job.region);
    EXPECT_GT(docs->DropPartition(job.region), 0);
  };
  FleetRunner runner(&SharedLake(), docs, extra);
  std::vector<FleetJob> fleet_jobs;
  for (const char* region : kRegions) fleet_jobs.push_back({region, kWeek});
  PipelineContext config;
  config.model_name = "persistent_prev_day";
  out.result = runner.Run(fleet_jobs, config);
  ASSERT_EQ(retired.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(retired[i], kRegions[i]);
  // Every region was dropped at its shard boundary, so the store holds
  // no predictions at the end.
  EXPECT_EQ(out.docs->GetContainer(kPredictionsContainer)->Count(), 0);
  // A second drop of an already-released partition is a harmless no-op.
  EXPECT_EQ(out.docs->DropPartition(kRegions[0]), 0);
}

TEST(FleetRunnerTest, AggregatesReportsInJobOrder) {
  FleetOutcome outcome = RunFleet(4, "persistent_prev_day");
  ASSERT_EQ(outcome.result.runs.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(outcome.result.runs[i].report.region, kRegions[i]);
  }
  EXPECT_EQ(outcome.result.SuccessCount(), 3);
  EXPECT_EQ(outcome.result.FailureCount(), 0);
  EXPECT_GT(outcome.result.wall_millis, 0.0);
}

TEST(FleetRunnerTest, RespectsSchedulerCadence) {
  // Running the same fleet twice against one store: the second pass is
  // not due and must produce empty no-op reports, in parallel too.
  auto docs = std::make_unique<DocStore>();
  FleetOptions options;
  options.jobs = 4;
  FleetRunner runner(&SharedLake(), docs.get(), options);
  std::vector<FleetJob> jobs;
  for (const char* region : kRegions) jobs.push_back({region, kWeek});
  PipelineContext config;
  FleetRunResult first = runner.Run(jobs, config);
  EXPECT_EQ(first.SuccessCount(), 3);
  FleetRunResult second = runner.Run(jobs, config);
  EXPECT_EQ(second.SuccessCount(), 3);  // no-op reports count as success
  for (const auto& run : second.runs) {
    EXPECT_TRUE(run.report.timings.empty());  // nothing actually ran
  }
}

TEST(FleetRunnerTest, MissingRegionFailsOnlyThatJob) {
  auto docs = std::make_unique<DocStore>();
  FleetOptions options;
  options.jobs = 4;
  FleetRunner runner(&SharedLake(), docs.get(), options);
  std::vector<FleetJob> jobs = {{kRegions[0], kWeek},
                                {"no-such-region", kWeek},
                                {kRegions[2], kWeek}};
  PipelineContext config;
  FleetRunResult result = runner.Run(jobs, config);
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_TRUE(result.runs[0].report.success);
  EXPECT_FALSE(result.runs[1].report.success);
  EXPECT_TRUE(result.runs[2].report.success);
  EXPECT_EQ(result.FailureCount(), 1);
  // The failed region raised an ingestion alert.
  EXPECT_FALSE(result.runs[1].alerts.empty());
}

}  // namespace
}  // namespace seagull
