#include "store/doc_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

namespace seagull {
namespace {

Document MakeDoc(const std::string& pk, const std::string& id, double value) {
  Document d;
  d.partition_key = pk;
  d.id = id;
  d.body = Json::MakeObject();
  d.body["value"] = value;
  return d;
}

TEST(ContainerTest, UpsertAndGet) {
  Container c("test");
  ASSERT_TRUE(c.Upsert(MakeDoc("p1", "a", 1.0)).ok());
  auto got = c.Get("p1", "a");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(*got->body.GetNumber("value"), 1.0);
  EXPECT_TRUE(c.Get("p1", "missing").status().IsNotFound());
  EXPECT_TRUE(c.Get("p2", "a").status().IsNotFound());
}

TEST(ContainerTest, UpsertReplaces) {
  Container c("test");
  ASSERT_TRUE(c.Upsert(MakeDoc("p", "x", 1.0)).ok());
  ASSERT_TRUE(c.Upsert(MakeDoc("p", "x", 2.0)).ok());
  EXPECT_DOUBLE_EQ(*c.Get("p", "x")->body.GetNumber("value"), 2.0);
  EXPECT_EQ(c.Count(), 1);
}

TEST(ContainerTest, InsertFailsOnDuplicate) {
  Container c("test");
  ASSERT_TRUE(c.Insert(MakeDoc("p", "x", 1.0)).ok());
  EXPECT_TRUE(c.Insert(MakeDoc("p", "x", 2.0)).IsAlreadyExists());
}

TEST(ContainerTest, DeleteRemoves) {
  Container c("test");
  ASSERT_TRUE(c.Upsert(MakeDoc("p", "x", 1.0)).ok());
  ASSERT_TRUE(c.Delete("p", "x").ok());
  EXPECT_TRUE(c.Get("p", "x").status().IsNotFound());
  EXPECT_TRUE(c.Delete("p", "x").IsNotFound());
}

TEST(ContainerTest, ReadPartitionOrderedAndIsolated) {
  Container c("test");
  c.Upsert(MakeDoc("p1", "b", 2.0)).Abort();
  c.Upsert(MakeDoc("p1", "a", 1.0)).Abort();
  c.Upsert(MakeDoc("p2", "z", 9.0)).Abort();
  auto docs = c.ReadPartition("p1");
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].id, "a");
  EXPECT_EQ(docs[1].id, "b");
  EXPECT_TRUE(c.ReadPartition("p3").empty());
}

TEST(ContainerTest, QueryFilters) {
  Container c("test");
  for (int i = 0; i < 10; ++i) {
    c.Upsert(MakeDoc("p", "id" + std::to_string(i), i)).Abort();
  }
  auto big = c.Query([](const Document& d) {
    return d.body.GetNumber("value").ValueOr(0) >= 7.0;
  });
  EXPECT_EQ(big.size(), 3u);
}

TEST(DocStoreTest, GetContainerCreatesOnce) {
  DocStore store;
  Container* a = store.GetContainer("accuracy");
  Container* b = store.GetContainer("accuracy");
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.ContainerNames(),
            (std::vector<std::string>{"accuracy"}));
}

TEST(DocStoreTest, SnapshotRestoreRoundTrip) {
  DocStore store;
  store.GetContainer("c1")->Upsert(MakeDoc("p", "a", 1.5)).Abort();
  store.GetContainer("c2")->Upsert(MakeDoc("q", "b", 2.5)).Abort();
  Json snapshot = store.Snapshot();

  DocStore restored;
  ASSERT_TRUE(restored.Restore(snapshot).ok());
  auto doc = restored.GetContainer("c1")->Get("p", "a");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(*doc->body.GetNumber("value"), 1.5);
  EXPECT_EQ(restored.ContainerNames().size(), 2u);
}

TEST(DocStoreTest, RestoreRejectsMalformed) {
  DocStore store;
  EXPECT_FALSE(store.Restore(Json(3.0)).ok());
  Json bad = Json::MakeObject();
  bad["c"] = "not an array";
  EXPECT_FALSE(store.Restore(bad).ok());
}

TEST(DocStoreTest, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "seagull_docstore.json")
          .string();
  DocStore store;
  store.GetContainer("runs")->Upsert(MakeDoc("region", "w1", 3.0)).Abort();
  ASSERT_TRUE(store.SaveToFile(path).ok());
  DocStore loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.GetContainer("runs")->Count(), 1);
  std::filesystem::remove(path);
  EXPECT_TRUE(loaded.LoadFromFile(path).IsNotFound());
}

TEST(DocStoreTest, ConcurrentUpserts) {
  DocStore store;
  Container* c = store.GetContainer("parallel");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([c, t] {
      for (int i = 0; i < 200; ++i) {
        c->Upsert(MakeDoc("p" + std::to_string(t), std::to_string(i), i))
            .Abort();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Count(), 8 * 200);
}

}  // namespace
}  // namespace seagull
