#include "forecast/arima.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "metrics/standard.h"

namespace seagull {
namespace {

ArimaOptions FastOptions() {
  ArimaOptions o;
  o.max_p = 2;
  o.max_q = 1;
  o.max_d = 1;
  o.iterations = 60;
  return o;
}

// AR(1) process x_t = c + phi x_{t-1} + eps around a mean level.
LoadSeries Ar1Series(double phi, double mean, double sigma, int64_t n,
                     uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  double x = mean;
  for (int64_t i = 0; i < n; ++i) {
    x = mean * (1 - phi) + phi * x + rng.Gaussian(0.0, sigma);
    values.push_back(std::max(0.0, x));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

TEST(ArimaTest, FitsAr1AndBeatsNaiveMean) {
  LoadSeries train = Ar1Series(0.8, 30.0, 2.0, 1000);
  ArimaForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GE(model.order_p() + model.order_q() + model.order_d(), 1);
  EXPECT_TRUE(std::isfinite(model.aic()));
}

TEST(ArimaTest, ForecastConvergesTowardMeanLevel) {
  LoadSeries train = Ar1Series(0.7, 40.0, 1.0, 1500);
  ArimaForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast =
      model.Forecast(train, train.end(), kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  // Long-horizon AR forecasts revert toward the process mean.
  double tail_mean = forecast->MeanInRange(
      forecast->end() - 4 * 60, forecast->end());
  EXPECT_NEAR(tail_mean, 40.0, 8.0);
}

TEST(ArimaTest, TooLittleHistoryFails) {
  auto tiny = LoadSeries::Make(0, 5, std::vector<double>(10, 1.0));
  ArimaForecast model(FastOptions());
  EXPECT_FALSE(model.Fit(*tiny).ok());
}

TEST(ArimaTest, ForecastBeforeFitFails) {
  ArimaForecast model(FastOptions());
  LoadSeries any = Ar1Series(0.5, 10, 1, 100);
  EXPECT_TRUE(model.Forecast(any, any.end(), 60)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ArimaTest, OutputsBounded) {
  LoadSeries train = Ar1Series(0.9, 20.0, 3.0, 1000);
  ArimaForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto forecast = model.Forecast(train, train.end(), kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    EXPECT_GE(forecast->ValueAt(i), 0.0);
    EXPECT_LE(forecast->ValueAt(i), 200.0);
  }
}

TEST(ArimaTest, SerializationRoundTrip) {
  LoadSeries train = Ar1Series(0.8, 30.0, 2.0, 800);
  ArimaForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  auto doc = model.Serialize();
  ASSERT_TRUE(doc.ok());
  ArimaForecast restored;
  ASSERT_TRUE(restored.Deserialize(*doc).ok());
  EXPECT_EQ(restored.order_p(), model.order_p());
  EXPECT_EQ(restored.order_d(), model.order_d());
  EXPECT_EQ(restored.order_q(), model.order_q());
  auto f1 = model.Forecast(train, train.end(), 60);
  auto f2 = restored.Forecast(train, train.end(), 60);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR(f1->ValueAt(i), f2->ValueAt(i), 1e-9);
  }
}

TEST(ArimaTest, DeserializeRejectsOrderMismatch) {
  LoadSeries train = Ar1Series(0.8, 30.0, 2.0, 800);
  ArimaForecast model(FastOptions());
  ASSERT_TRUE(model.Fit(train).ok());
  Json doc = std::move(model.Serialize()).ValueOrDie();
  doc["p"] = 5;  // now phi array length mismatches
  ArimaForecast restored;
  EXPECT_FALSE(restored.Deserialize(doc).ok());
}

TEST(ArimaTest, ToleratesMissingSamples) {
  LoadSeries train = Ar1Series(0.8, 30.0, 2.0, 800);
  for (int64_t i = 100; i < 130; ++i) train.SetValue(i, kMissingValue);
  ArimaForecast model(FastOptions());
  EXPECT_TRUE(model.Fit(train).ok());
}

}  // namespace
}  // namespace seagull
