#include "metrics/predictable.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

constexpr int64_t kFourWeeks = 4 * kMinutesPerWeek;

// Four weeks of load with a nightly valley.
LoadSeries NightlyValleyLoad() {
  std::vector<double> values;
  for (int64_t i = 0; i < 4 * 7 * 288; ++i) {
    int64_t tick = i % 288;
    values.push_back(tick < 48 ? 5.0 : 40.0);  // low before 04:00
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

// Forecaster that replays the true load (perfect oracle).
DayForecaster Oracle(const LoadSeries& truth) {
  return [&truth](int64_t day) -> Result<LoadSeries> {
    return truth.SliceDay(day);
  };
}

// Forecaster that always fails.
DayForecaster Broken() {
  return [](int64_t) -> Result<LoadSeries> {
    return Status::Internal("no forecast");
  };
}

TEST(PredictableTest, OraclePerfectForecastIsPredictable) {
  LoadSeries truth = NightlyValleyLoad();
  PredictabilityResult r = EvaluatePredictability(
      Oracle(truth), truth, 0, kFourWeeks, /*target_week=*/3,
      DayOfWeek::kWednesday, 60);
  EXPECT_TRUE(r.long_lived);
  EXPECT_TRUE(r.predictable);
  ASSERT_EQ(r.evidence.size(), 3u);
  for (const auto& ev : r.evidence) {
    EXPECT_TRUE(ev.Good());
  }
}

TEST(PredictableTest, EvidenceDaysAreTheBackupDays) {
  LoadSeries truth = NightlyValleyLoad();
  PredictabilityResult r = EvaluatePredictability(
      Oracle(truth), truth, 0, kFourWeeks, 3, DayOfWeek::kFriday, 60);
  ASSERT_EQ(r.evidence.size(), 3u);
  EXPECT_EQ(r.evidence[0].day_index, 0 * 7 + 4);
  EXPECT_EQ(r.evidence[1].day_index, 1 * 7 + 4);
  EXPECT_EQ(r.evidence[2].day_index, 2 * 7 + 4);
}

TEST(PredictableTest, ShortLivedIsNotPredictable) {
  LoadSeries truth = NightlyValleyLoad();
  PredictabilityResult r = EvaluatePredictability(
      Oracle(truth), truth, 0, 2 * kMinutesPerWeek, 3, DayOfWeek::kMonday,
      60);
  EXPECT_FALSE(r.long_lived);
  EXPECT_FALSE(r.predictable);
  EXPECT_TRUE(r.evidence.empty());
}

TEST(PredictableTest, LateCreationFailsTheGate) {
  // Long lifespan but created after the evidence window started:
  // "servers that did not exist ... for the last three weeks" (§2.3).
  LoadSeries truth = NightlyValleyLoad();
  PredictabilityResult r = EvaluatePredictability(
      Oracle(truth), truth, kMinutesPerWeek, kMinutesPerWeek + 3 *
      kMinutesPerWeek, 3, DayOfWeek::kMonday, 60);
  EXPECT_FALSE(r.long_lived);
}

TEST(PredictableTest, BrokenForecasterIsUnpredictable) {
  LoadSeries truth = NightlyValleyLoad();
  PredictabilityResult r = EvaluatePredictability(
      Broken(), truth, 0, kFourWeeks, 3, DayOfWeek::kMonday, 60);
  EXPECT_TRUE(r.long_lived);
  EXPECT_FALSE(r.predictable);
  for (const auto& ev : r.evidence) {
    EXPECT_FALSE(ev.evaluable);
  }
}

TEST(PredictableTest, OneBadWeekSpoilsIt) {
  LoadSeries truth = NightlyValleyLoad();
  // Oracle everywhere except week 1's backup day, where the forecast
  // points at the wrong valley.
  DayForecaster mostly_oracle =
      [&truth](int64_t day) -> Result<LoadSeries> {
    if (day == 7 + 2) {  // week 1, Wednesday
      std::vector<double> wrong(288, 40.0);
      for (int64_t i = 200; i < 260; ++i) wrong[static_cast<size_t>(i)] = 0.0;
      return LoadSeries::Make(day * kMinutesPerDay, 5, std::move(wrong));
    }
    return truth.SliceDay(day);
  };
  PredictabilityResult r = EvaluatePredictability(
      mostly_oracle, truth, 0, kFourWeeks, 3, DayOfWeek::kWednesday, 60);
  EXPECT_FALSE(r.predictable);
  EXPECT_TRUE(r.evidence[0].Good());
  EXPECT_FALSE(r.evidence[1].Good());
  EXPECT_TRUE(r.evidence[2].Good());
}

TEST(PredictableTest, ConfigurableWeeks) {
  LoadSeries truth = NightlyValleyLoad();
  FleetConfig fleet;
  fleet.long_lived_weeks = 2;
  PredictabilityResult r = EvaluatePredictability(
      Oracle(truth), truth, 0, kFourWeeks, 3, DayOfWeek::kMonday, 60,
      AccuracyConfig{}, fleet);
  EXPECT_EQ(r.evidence.size(), 2u);
  EXPECT_TRUE(r.predictable);
}

}  // namespace
}  // namespace seagull
