/// \file store_lake_cache_test.cc
/// \brief The shared-buffer lake cache: hit/miss/eviction accounting,
/// writer- and fingerprint-driven invalidation, the mmap read path
/// (mapping lifetime past eviction, staleness detection by inode and
/// ctime), and the fleet-level contract that a second identical run is
/// served from memory.

#include "store/blob_cache.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "common/obs/metrics.h"
#include "pipeline/fleet_runner.h"
#include "store/lake_store.h"
#include "store/mmap_blob.h"
#include "telemetry/emitter.h"
#include "telemetry/fleet.h"

namespace seagull {
namespace {

int64_t CacheEvents(const char* event) {
  return MetricsRegistry::Global()
      .GetCounter("seagull.lake.cache_events", {{"event", event}})
      ->Value();
}

struct EventDeltas {
  int64_t hit0 = CacheEvents("hit");
  int64_t miss0 = CacheEvents("miss");
  int64_t evict0 = CacheEvents("evict");
  int64_t invalidate0 = CacheEvents("invalidate");
  int64_t hits() const { return CacheEvents("hit") - hit0; }
  int64_t misses() const { return CacheEvents("miss") - miss0; }
  int64_t evictions() const { return CacheEvents("evict") - evict0; }
  int64_t invalidations() const {
    return CacheEvents("invalidate") - invalidate0;
  }
};

TEST(LakeCacheTest, GetSharedWorksWithoutCache) {
  auto lake = LakeStore::OpenTemporary("cache_off");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake->Put("a/blob.txt", "hello").ok());
  auto blob = lake->GetShared("a/blob.txt");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(**blob, "hello");
  EXPECT_EQ(lake->cache(), nullptr);
  EXPECT_TRUE(lake->GetShared("a/missing").status().IsNotFound());
}

TEST(LakeCacheTest, RepeatReadsShareOneBuffer) {
  auto lake = LakeStore::OpenTemporary("cache_hit");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "payload").ok());
  EventDeltas d;
  auto first = lake->GetShared("k");
  ASSERT_TRUE(first.ok());
  auto second = lake->GetShared("k");
  ASSERT_TRUE(second.ok());
  // Same immutable buffer, not an equal copy.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(d.hits(), 1);
  EXPECT_EQ(d.misses(), 1);
  EXPECT_EQ(lake->cache()->entry_count(), 1);
  EXPECT_EQ(lake->cache()->size_bytes(), 7);
}

TEST(LakeCacheTest, PutThroughStoreInvalidates) {
  auto lake = LakeStore::OpenTemporary("cache_put");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "one").ok());
  ASSERT_TRUE(lake->GetShared("k").ok());  // warm
  EventDeltas d;
  ASSERT_TRUE(lake->Put("k", "two").ok());
  EXPECT_EQ(d.invalidations(), 1);
  auto blob = lake->GetShared("k");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(**blob, "two");
  EXPECT_EQ(d.misses(), 1);  // re-read after the overwrite
}

TEST(LakeCacheTest, DeleteThroughStoreInvalidates) {
  auto lake = LakeStore::OpenTemporary("cache_del");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "one").ok());
  ASSERT_TRUE(lake->GetShared("k").ok());
  ASSERT_TRUE(lake->Delete("k").ok());
  EXPECT_EQ(lake->cache()->entry_count(), 0);
  EXPECT_TRUE(lake->GetShared("k").status().IsNotFound());
}

TEST(LakeCacheTest, ExternalWriteCaughtByFingerprint) {
  auto cached = LakeStore::OpenTemporary("cache_ext");
  ASSERT_TRUE(cached.ok());
  cached->ConfigureCache(16 << 20);
  ASSERT_TRUE(cached->Put("k", "original").ok());
  ASSERT_TRUE(cached->GetShared("k").ok());  // warm

  // A second store handle over the same directory bypasses the cache —
  // the moral equivalent of another process writing the blob. The new
  // content has a different size, so the (size, mtime) fingerprint
  // cannot collide even on coarse-mtime filesystems.
  auto writer = LakeStore::Open(cached->root());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Put("k", "rewritten elsewhere").ok());

  EventDeltas d;
  auto blob = cached->GetShared("k");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(**blob, "rewritten elsewhere");
  EXPECT_EQ(d.invalidations(), 1);  // stale entry dropped on lookup
  EXPECT_EQ(d.misses(), 1);
}

TEST(LakeCacheTest, EvictsLeastRecentlyUsedWithinCapacity) {
  BlobCache cache(/*capacity_bytes=*/8 * 100);  // 100 bytes per shard
  EventDeltas d;
  const std::string payload(60, 'x');
  auto blob = std::make_shared<const std::string>(payload);
  // Two 60-byte blobs cannot share one 100-byte shard; hammering many
  // keys must keep every shard within its slice and count evictions.
  for (int i = 0; i < 64; ++i) {
    cache.Insert("key-" + std::to_string(i), {60, i}, blob);
  }
  EXPECT_GT(d.evictions(), 0);
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
  EXPECT_LE(cache.entry_count(), 8);  // one 60-byte entry per shard
}

TEST(LakeCacheTest, OversizedBlobIsServedUncached) {
  auto lake = LakeStore::OpenTemporary("cache_big");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(8 * 16);  // 16-byte shards
  ASSERT_TRUE(lake->Put("big", std::string(1024, 'y')).ok());
  auto blob = lake->GetShared("big");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ((*blob)->size(), 1024u);
  EXPECT_EQ(lake->cache()->entry_count(), 0);
}

TEST(LakeCacheTest, StoreCopiesShareTheCache) {
  auto lake = LakeStore::OpenTemporary("cache_copy");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "shared").ok());
  LakeStore copy = *lake;  // how FleetRunner-style borrowers hold it
  ASSERT_TRUE(copy.GetShared("k").ok());  // warm through the copy
  EventDeltas d;
  auto blob = lake->GetShared("k");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(d.hits(), 1);
  EXPECT_EQ(d.misses(), 0);
}

TEST(LakeCacheTest, GetBlobMapsByDefaultAndHeapWhenDisabled) {
  auto lake = LakeStore::OpenTemporary("mmap_default");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake->Put("k", "mapped payload").ok());
  ASSERT_TRUE(lake->mmap_enabled());
  auto mapped = lake->GetBlob("k");
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->mapped());
  EXPECT_EQ(mapped->heap(), nullptr);
  EXPECT_EQ(mapped->view(), "mapped payload");

  lake->ConfigureMmap(false);
  auto heap = lake->GetBlob("k");
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->mapped());
  ASSERT_NE(heap->heap(), nullptr);
  EXPECT_EQ(*heap->heap(), "mapped payload");
  EXPECT_TRUE(lake->GetBlob("missing").status().IsNotFound());
}

TEST(LakeCacheTest, MappedCacheEntryChargesResidentEstimate) {
  auto lake = LakeStore::OpenTemporary("mmap_charge");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", std::string(10, 'p')).ok());
  EventDeltas d;
  auto first = lake->GetBlob("k");
  ASSERT_TRUE(first.ok());
  auto second = lake->GetBlob("k");
  ASSERT_TRUE(second.ok());
  // Same mapping served twice, charged at page granularity: a mapped
  // page is resident memory whether 10 bytes or 4096 are used.
  EXPECT_EQ(first->data(), second->data());
  EXPECT_EQ(d.hits(), 1);
  EXPECT_EQ(d.misses(), 1);
  EXPECT_EQ(lake->cache()->entry_count(), 1);
  EXPECT_EQ(lake->cache()->size_bytes(), MmapBlob::ResidentEstimate(10));
}

TEST(LakeCacheTest, MappedPinOutlivesEvictionAndInvalidation) {
  auto lake = LakeStore::OpenTemporary("mmap_pin");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "generation one").ok());
  auto pinned = lake->GetBlob("k");
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned->mapped());
  std::string_view view = pinned->view();

  // Overwrite (tmp + rename: the mapped inode stays alive), then
  // delete. Both invalidate the cache entry; neither may disturb the
  // outstanding mapping — this is the pin contract SeriesBlockCursor
  // relies on when decoding straight out of the lake.
  ASSERT_TRUE(lake->Put("k", "generation two").ok());
  auto fresh = lake->GetBlob("k");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->view(), "generation two");
  ASSERT_TRUE(lake->Delete("k").ok());
  EXPECT_EQ(view, "generation one");  // old pages still readable
  EXPECT_EQ(pinned->view(), "generation one");
}

TEST(LakeCacheTest, RenameReplaceSameSizeCaughtByInode) {
  auto cached = LakeStore::OpenTemporary("mmap_inode");
  ASSERT_TRUE(cached.ok());
  cached->ConfigureCache(16 << 20);
  ASSERT_TRUE(cached->Put("k", "AAAA").ok());
  ASSERT_TRUE(cached->GetBlob("k").ok());  // warm

  // Same-size replacement through a second handle: every store write is
  // tmp + rename, so the file keeps its size but changes inode. On
  // filesystems with coarse timestamps size+mtime alone could collide;
  // the inode field cannot.
  auto writer = LakeStore::Open(cached->root());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Put("k", "BBBB").ok());

  EventDeltas d;
  auto blob = cached->GetBlob("k");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->view(), "BBBB");
  EXPECT_EQ(d.invalidations(), 1);
}

TEST(LakeCacheTest, InPlaceSameSizeRewriteCaughtByCtime) {
  auto lake = LakeStore::OpenTemporary("mmap_ctime");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "AAAA").ok());
  ASSERT_TRUE(lake->GetBlob("k").ok());  // warm

  // Adversarial external writer: rewrite the file in place (same
  // inode, same size) and restore the original mtime. Only st_ctime —
  // which no userspace call can set — still witnesses the change.
  const std::string path = lake->root() + "/k";
  struct stat before {};
  ASSERT_EQ(::stat(path.c_str(), &before), 0);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "BBBB";
    ASSERT_TRUE(out.good());
  }
  const struct timespec times[2] = {before.st_atim, before.st_mtim};
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);

  EventDeltas d;
  auto blob = lake->GetBlob("k");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->view(), "BBBB");
  EXPECT_EQ(d.invalidations(), 1);
}

TEST(LakeCacheTest, GetSharedCopiesOutOfMappedCacheEntry) {
  auto lake = LakeStore::OpenTemporary("mmap_compat");
  ASSERT_TRUE(lake.ok());
  lake->ConfigureCache(16 << 20);
  ASSERT_TRUE(lake->Put("k", "compat bytes").ok());
  auto mapped = lake->GetBlob("k");
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped->mapped());
  // The legacy heap API stays heap: a caller holding the returned
  // string must not be handed a disguised mapping.
  auto shared = lake->GetShared("k");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(**shared, "compat bytes");
}

TEST(LakeCacheTest, EmptyBlobMapsToEmptyView) {
  auto lake = LakeStore::OpenTemporary("mmap_empty");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake->Put("empty", "").ok());
  auto blob = lake->GetBlob("empty");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->size(), 0);
  EXPECT_TRUE(blob->view().empty());
}

TEST(LakeCacheTest, PutStreamedWritesAtomicallyAndHidesTmpFiles) {
  auto lake = LakeStore::OpenTemporary("streamed");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake
                  ->PutStreamed("dir/streamed.bin",
                                [](std::ostream& out) {
                                  out << "part one,";
                                  out << "part two";
                                  return Status::OK();
                                })
                  .ok());
  auto blob = lake->GetBlob("dir/streamed.bin");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->view(), "part one,part two");

  // A failing writer must leave no blob and no staging debris behind.
  EXPECT_FALSE(lake
                   ->PutStreamed("dir/failed.bin",
                                 [](std::ostream& out) {
                                   out << "half-written";
                                   return Status::IOError("writer gave up");
                                 })
                   .ok());
  EXPECT_FALSE(lake->Exists("dir/failed.bin"));
  auto keys = lake->List("");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0], "dir/streamed.bin");
}

TEST(LakeCacheTest, SecondIdenticalFleetRunIsServedFromCache) {
  // The tentpole's throughput claim at test scale: two identical fleet
  // runs against one cache-enabled lake; the second run's telemetry
  // reads must be >= 90% cache hits (here: all of them).
  auto opened = LakeStore::OpenTemporary("cache_fleet");
  ASSERT_TRUE(opened.ok());
  LakeStore lake = std::move(opened).ValueUnsafe();
  lake.ConfigureCache(64 << 20);
  const char* const regions[] = {"hit-a", "hit-b"};
  uint64_t seed = 70;
  for (const char* region : regions) {
    RegionConfig config;
    config.name = region;
    config.num_servers = 10;
    config.weeks = 4;
    config.seed = seed++;
    Fleet fleet = Fleet::Generate(config);
    ASSERT_TRUE(lake.Put(LakeStore::TelemetryKey(region, 3),
                         ExtractWeekBlock(fleet, 3))
                    .ok());
  }

  auto run_once = [&] {
    DocStore docs;  // fresh docs: the scheduler sees the week as due
    FleetRunner runner(&lake, &docs);
    std::vector<FleetJob> jobs;
    for (const char* region : regions) jobs.push_back({region, 3});
    PipelineContext config;
    config.model_name = "persistent_prev_day";
    FleetRunResult result = runner.Run(jobs, config);
    ASSERT_EQ(result.SuccessCount(), 2);
  };

  run_once();  // cold: misses fill the cache
  EventDeltas d;
  run_once();  // warm: every telemetry read hits
  const int64_t hits = d.hits();
  const int64_t misses = d.misses();
  ASSERT_GT(hits, 0);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.9);
}

}  // namespace
}  // namespace seagull
