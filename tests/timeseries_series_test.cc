#include "timeseries/series.h"

#include <gtest/gtest.h>

namespace seagull {
namespace {

LoadSeries MakeSeries(MinuteStamp start, std::vector<double> values,
                      int64_t interval = kServerIntervalMinutes) {
  auto r = LoadSeries::Make(start, interval, std::move(values));
  r.status().Abort();
  return std::move(r).ValueUnsafe();
}

TEST(SeriesTest, MakeValidatesAlignment) {
  EXPECT_TRUE(LoadSeries::Make(0, 5, {1, 2}).ok());
  EXPECT_FALSE(LoadSeries::Make(3, 5, {1}).ok());   // unaligned start
  EXPECT_FALSE(LoadSeries::Make(0, 7, {1}).ok());   // 7 doesn't divide a day
  EXPECT_FALSE(LoadSeries::Make(0, 0, {1}).ok());   // zero interval
  EXPECT_FALSE(LoadSeries::Make(0, -5, {1}).ok());  // negative interval
}

TEST(SeriesTest, BasicAccessors) {
  LoadSeries s = MakeSeries(100, {1, 2, 3});
  EXPECT_EQ(s.start(), 100);
  EXPECT_EQ(s.end(), 115);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.TimeAt(2), 110);
  EXPECT_EQ(s.ticks_per_day(), 288);
  EXPECT_DOUBLE_EQ(s.ValueAt(1), 2.0);
}

TEST(SeriesTest, IndexOf) {
  LoadSeries s = MakeSeries(100, {1, 2, 3});
  EXPECT_EQ(s.IndexOf(100), 0);
  EXPECT_EQ(s.IndexOf(110), 2);
  EXPECT_EQ(s.IndexOf(115), -1);  // one past end
  EXPECT_EQ(s.IndexOf(95), -1);   // before start
  EXPECT_EQ(s.IndexOf(102), -1);  // off the grid
}

TEST(SeriesTest, ValueAtTimeOutOfRangeIsMissing) {
  LoadSeries s = MakeSeries(0, {1.0});
  EXPECT_TRUE(IsMissing(s.ValueAtTime(500)));
  EXPECT_DOUBLE_EQ(s.ValueAtTime(0), 1.0);
}

TEST(SeriesTest, MissingValues) {
  LoadSeries s = MakeSeries(0, {1, kMissingValue, 3});
  EXPECT_TRUE(s.MissingAt(1));
  EXPECT_FALSE(s.MissingAt(0));
  EXPECT_EQ(s.CountPresent(), 2);
  EXPECT_EQ(s.CountMissing(), 1);
}

TEST(SeriesTest, MakeEmptyIsAllMissing) {
  auto s = LoadSeries::MakeEmpty(0, 5, 4);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 4);
  EXPECT_EQ(s->CountPresent(), 0);
  EXPECT_FALSE(LoadSeries::MakeEmpty(0, 5, -1).ok());
}

TEST(SeriesTest, SliceWithinBounds) {
  LoadSeries s = MakeSeries(0, {0, 1, 2, 3, 4, 5});
  LoadSeries slice = s.Slice(10, 25);
  EXPECT_EQ(slice.start(), 10);
  EXPECT_EQ(slice.size(), 3);
  EXPECT_DOUBLE_EQ(slice.ValueAt(0), 2.0);
  EXPECT_DOUBLE_EQ(slice.ValueAt(2), 4.0);
}

TEST(SeriesTest, SliceClampsToBounds) {
  LoadSeries s = MakeSeries(0, {0, 1, 2});
  LoadSeries slice = s.Slice(-100, 1000);
  EXPECT_EQ(slice.size(), 3);
  EXPECT_EQ(slice.start(), 0);
}

TEST(SeriesTest, SliceEmptyRange) {
  LoadSeries s = MakeSeries(0, {0, 1, 2});
  EXPECT_TRUE(s.Slice(10, 10).empty());
  EXPECT_TRUE(s.Slice(100, 200).empty());
}

TEST(SeriesTest, SliceDay) {
  std::vector<double> two_days(2 * 288);
  for (size_t i = 0; i < two_days.size(); ++i) {
    two_days[i] = static_cast<double>(i);
  }
  LoadSeries s = MakeSeries(0, two_days);
  LoadSeries day1 = s.SliceDay(1);
  EXPECT_EQ(day1.size(), 288);
  EXPECT_EQ(day1.start(), kMinutesPerDay);
  EXPECT_DOUBLE_EQ(day1.ValueAt(0), 288.0);
}

TEST(SeriesTest, ShiftedToKeepsValues) {
  LoadSeries s = MakeSeries(0, {7, 8, 9});
  LoadSeries shifted = s.ShiftedTo(kMinutesPerDay);
  EXPECT_EQ(shifted.start(), kMinutesPerDay);
  EXPECT_DOUBLE_EQ(shifted.ValueAt(0), 7.0);
  EXPECT_EQ(shifted.size(), 3);
}

TEST(SeriesTest, MeanSkipsMissing) {
  LoadSeries s = MakeSeries(0, {2, kMissingValue, 4});
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(SeriesTest, MeanOfAllMissingIsMissing) {
  auto s = LoadSeries::MakeEmpty(0, 5, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(IsMissing(s->Mean()));
  EXPECT_TRUE(IsMissing(s->Min()));
  EXPECT_TRUE(IsMissing(s->Max()));
}

TEST(SeriesTest, MeanInRange) {
  LoadSeries s = MakeSeries(0, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.MeanInRange(5, 15), 2.5);
  EXPECT_DOUBLE_EQ(s.MeanInRange(0, 20), 2.5);
  EXPECT_TRUE(IsMissing(s.MeanInRange(100, 200)));
}

TEST(SeriesTest, CoversComplete) {
  LoadSeries s = MakeSeries(0, {1, 2, kMissingValue, 4});
  EXPECT_TRUE(s.CoversComplete(0, 10));
  EXPECT_FALSE(s.CoversComplete(0, 20));  // missing at index 2
  EXPECT_FALSE(s.CoversComplete(0, 25));  // beyond end
}

TEST(SeriesTest, MergeExtendsRange) {
  LoadSeries a = MakeSeries(0, {1, 2});
  LoadSeries b = MakeSeries(20, {5, 6});
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.start(), 0);
  EXPECT_EQ(a.end(), 30);
  EXPECT_DOUBLE_EQ(a.ValueAt(0), 1.0);
  EXPECT_TRUE(a.MissingAt(2));  // the gap
  EXPECT_DOUBLE_EQ(a.ValueAtTime(20), 5.0);
}

TEST(SeriesTest, MergePresentWins) {
  LoadSeries a = MakeSeries(0, {1, kMissingValue});
  LoadSeries b = MakeSeries(0, {kMissingValue, 9});
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_DOUBLE_EQ(a.ValueAt(0), 1.0);  // b missing does not clobber
  EXPECT_DOUBLE_EQ(a.ValueAt(1), 9.0);
}

TEST(SeriesTest, MergeIntervalMismatchFails) {
  LoadSeries a = MakeSeries(0, {1});
  LoadSeries b = MakeSeries(0, {1}, 15);
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

}  // namespace
}  // namespace seagull
