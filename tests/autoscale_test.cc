#include <gtest/gtest.h>

#include <cmath>

#include "autoscale/classify.h"
#include "autoscale/eval.h"
#include "autoscale/policy.h"
#include "autoscale/sql_fleet.h"
#include "forecast/persistent.h"

namespace seagull {
namespace {

TEST(SqlFleetTest, GeneratesOn15MinuteGrid) {
  SqlFleetConfig config;
  config.num_databases = 10;
  config.weeks = 2;
  SqlFleet fleet = SqlFleet::Generate(config);
  ASSERT_EQ(fleet.size(), 10);
  LoadSeries load =
      fleet.Load(fleet.databases()[0], 0, kMinutesPerDay);
  EXPECT_EQ(load.interval_minutes(), kSqlIntervalMinutes);
  EXPECT_EQ(load.size(), 96);
  for (int64_t i = 0; i < load.size(); ++i) {
    EXPECT_FALSE(load.MissingAt(i));
    EXPECT_GE(load.ValueAt(i), 0.0);
    EXPECT_LE(load.ValueAt(i), 100.0);
  }
}

TEST(SqlFleetTest, Deterministic) {
  SqlFleetConfig config;
  config.num_databases = 5;
  SqlFleet a = SqlFleet::Generate(config);
  SqlFleet b = SqlFleet::Generate(config);
  LoadSeries la = a.Load(a.databases()[2], 0, kMinutesPerDay);
  LoadSeries lb = b.Load(b.databases()[2], 0, kMinutesPerDay);
  EXPECT_EQ(la.values(), lb.values());
}

TEST(SqlClassifyTest, FlatDatabaseIsStable) {
  Rng rng(1);
  std::vector<double> values;
  for (int64_t i = 0; i < 28 * 96; ++i) {
    values.push_back(20.0 + rng.Gaussian(0.0, 1.0));
  }
  LoadSeries load =
      std::move(LoadSeries::Make(0, 15, std::move(values))).ValueOrDie();
  SqlStability s = ClassifySqlDatabase(load, 0, 28 * kMinutesPerDay);
  EXPECT_TRUE(s.stable);
  EXPECT_NEAR(s.period_mean, 20.0, 0.2);
}

TEST(SqlClassifyTest, RegimeShiftIsUnstable) {
  Rng rng(2);
  std::vector<double> values;
  for (int64_t i = 0; i < 28 * 96; ++i) {
    double level = (i / 96) % 2 == 0 ? 10.0 : 55.0;  // alternating days
    values.push_back(level + rng.Gaussian(0.0, 1.0));
  }
  LoadSeries load =
      std::move(LoadSeries::Make(0, 15, std::move(values))).ValueOrDie();
  SqlStability s = ClassifySqlDatabase(load, 0, 28 * kMinutesPerDay);
  EXPECT_FALSE(s.stable);
}

TEST(SqlClassifyTest, EmptyLoadIsNotStable) {
  auto load = LoadSeries::MakeEmpty(0, 15, 96);
  SqlStability s = ClassifySqlDatabase(*load, 0, kMinutesPerDay);
  EXPECT_FALSE(s.stable);
}

TEST(SqlClassifyTest, FleetStableFractionNearPaper) {
  // §A.1: 19.36% of sampled SQL databases are stable.
  SqlFleetConfig config;
  config.num_databases = 300;
  config.weeks = 4;
  SqlFleet fleet = SqlFleet::Generate(config);
  int64_t stable = 0;
  for (const auto& db : fleet.databases()) {
    LoadSeries load = fleet.Load(db, 0, 4 * kMinutesPerWeek);
    if (ClassifySqlDatabase(load, 0, 4 * kMinutesPerWeek).stable) {
      ++stable;
    }
  }
  double fraction =
      static_cast<double>(stable) / static_cast<double>(fleet.size());
  EXPECT_GT(fraction, 0.08);
  EXPECT_LT(fraction, 0.40);
}

TEST(AutoscaleEvalTest, PersistentForecastScoresReasonably) {
  SqlFleetConfig config;
  config.num_databases = 20;
  config.weeks = 4;
  SqlFleet fleet = SqlFleet::Generate(config);
  AutoscaleEvalOptions options;
  options.models = {"persistent_prev_day"};
  auto results = EvaluateAutoscaleModels(fleet, options);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  const AutoscaleModelResult& r = (*results)[0];
  EXPECT_GT(r.databases_evaluated, 10);
  EXPECT_GT(r.mean_nrmse, 0.0);
  EXPECT_LT(r.mean_nrmse, 2.0);
  EXPECT_GT(r.mean_mase, 0.0);
  // Persistent forecast has no training cost.
  EXPECT_LT(r.train_millis, 50.0);
}

TEST(AutoscaleEvalTest, MaxDatabasesCapsWork) {
  SqlFleetConfig config;
  config.num_databases = 20;
  SqlFleet fleet = SqlFleet::Generate(config);
  AutoscaleEvalOptions options;
  options.models = {"persistent_prev_day"};
  options.max_databases = 5;
  auto results = EvaluateAutoscaleModels(fleet, options);
  ASSERT_TRUE(results.ok());
  EXPECT_LE((*results)[0].databases_evaluated, 5);
}

TEST(AutoscalePolicyTest, ForecastDrivenBeatsStaticOnWaste) {
  // A database with a strong daily pattern: forecast-driven provisioning
  // tracks the valley, static provisioning pays for the peak all day.
  std::vector<double> values;
  for (int64_t i = 0; i < 8 * 96; ++i) {
    double phase = static_cast<double>(i % 96) / 96.0;
    values.push_back(10.0 + 50.0 * std::exp(-std::pow((phase - 0.5) * 6, 2)));
  }
  LoadSeries all =
      std::move(LoadSeries::Make(0, 15, std::move(values))).ValueOrDie();
  LoadSeries history = all.Slice(0, 7 * kMinutesPerDay);
  LoadSeries truth = all.Slice(7 * kMinutesPerDay, 8 * kMinutesPerDay);

  PersistentForecast model(PersistentVariant::kPreviousDay);
  AutoscalePolicy policy;
  auto dynamic = SimulateAutoscaleDay(model, history, truth,
                                      7 * kMinutesPerDay, policy, "db");
  ASSERT_TRUE(dynamic.ok());
  AutoscaleOutcome fixed =
      StaticProvisionDay(history, truth, 7 * kMinutesPerDay, policy, "db");
  EXPECT_LT(dynamic->mean_waste, fixed.mean_waste);
  EXPECT_LT(dynamic->ViolationRate(), 0.05);
  EXPECT_EQ(fixed.violations, 0);
}

TEST(AutoscalePolicyTest, HeadroomControlsViolations) {
  std::vector<double> values;
  Rng rng(7);
  for (int64_t i = 0; i < 8 * 96; ++i) {
    values.push_back(30.0 + rng.Gaussian(0.0, 4.0));
  }
  LoadSeries all =
      std::move(LoadSeries::Make(0, 15, std::move(values))).ValueOrDie();
  LoadSeries history = all.Slice(0, 7 * kMinutesPerDay);
  LoadSeries truth = all.Slice(7 * kMinutesPerDay, 8 * kMinutesPerDay);
  PersistentForecast model(PersistentVariant::kPreviousWeekAverage);
  AutoscalePolicy tight;
  tight.headroom = 1.0;
  AutoscalePolicy generous;
  generous.headroom = 20.0;
  auto risky = SimulateAutoscaleDay(model, history, truth,
                                    7 * kMinutesPerDay, tight, "db");
  auto safe = SimulateAutoscaleDay(model, history, truth,
                                   7 * kMinutesPerDay, generous, "db");
  ASSERT_TRUE(risky.ok());
  ASSERT_TRUE(safe.ok());
  EXPECT_GT(risky->violations, safe->violations);
  EXPECT_EQ(safe->violations, 0);
  EXPECT_LT(risky->mean_capacity, safe->mean_capacity);
}

TEST(AutoscalePolicyTest, MinCapacityFloor) {
  std::vector<double> zeros(8 * 96, 0.0);
  LoadSeries all =
      std::move(LoadSeries::Make(0, 15, std::move(zeros))).ValueOrDie();
  LoadSeries history = all.Slice(0, 7 * kMinutesPerDay);
  LoadSeries truth = all.Slice(7 * kMinutesPerDay, 8 * kMinutesPerDay);
  PersistentForecast model(PersistentVariant::kPreviousDay);
  AutoscalePolicy policy;
  policy.min_capacity = 5.0;
  policy.headroom = 0.0;
  auto outcome = SimulateAutoscaleDay(model, history, truth,
                                      7 * kMinutesPerDay, policy, "db");
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->mean_capacity, 5.0);
}

}  // namespace
}  // namespace seagull
