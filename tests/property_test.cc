/// \file property_test.cc
/// \brief Parameterized property suites over randomized inputs: invariants
/// that must hold for any series, not just hand-picked examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "forecast/linalg.h"
#include "forecast/persistent.h"
#include "metrics/bucket_ratio.h"
#include "metrics/ll_window.h"
#include "metrics/standard.h"
#include "timeseries/resample.h"
#include "timeseries/window.h"

namespace seagull {
namespace {

LoadSeries RandomSeries(uint64_t seed, int64_t n, double missing_rate = 0.0) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  double level = rng.Uniform(5.0, 60.0);
  for (int64_t i = 0; i < n; ++i) {
    level += rng.Gaussian(0.0, 1.0);
    level = std::clamp(level, 0.0, 100.0);
    if (rng.Chance(missing_rate)) {
      values.push_back(kMissingValue);
    } else {
      values.push_back(level);
    }
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Window search vs brute force.

class WindowProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowProperty, MatchesBruteForce) {
  LoadSeries s = RandomSeries(GetParam(), 288, 0.1);
  const int64_t duration = 60;  // 12 ticks
  WindowResult fast = FindMinAverageWindow(s, duration, 0.25);
  // Brute force.
  bool found = false;
  MinuteStamp best_start = 0;
  double best_avg = 0.0;
  const int64_t w = duration / 5;
  for (int64_t i = 0; i + w <= s.size(); ++i) {
    double sum = 0;
    int64_t cnt = 0;
    for (int64_t k = 0; k < w; ++k) {
      double v = s.ValueAt(i + k);
      if (IsMissing(v)) continue;
      sum += v;
      ++cnt;
    }
    int64_t min_present =
        w - static_cast<int64_t>(0.25 * static_cast<double>(w));
    if (cnt < min_present || cnt == 0) continue;
    double avg = sum / static_cast<double>(cnt);
    if (!found || avg < best_avg) {
      found = true;
      best_avg = avg;
      best_start = s.TimeAt(i);
    }
  }
  ASSERT_EQ(fast.found, found);
  if (found) {
    EXPECT_EQ(fast.start, best_start);
    EXPECT_NEAR(fast.average_load, best_avg, 1e-9);
  }
}

TEST_P(WindowProperty, FoundWindowIsOptimal) {
  LoadSeries s = RandomSeries(GetParam() ^ 0xABCD, 288);
  WindowResult w = FindMinAverageWindow(s, 90);
  ASSERT_TRUE(w.found);
  for (int64_t start = 0; start + 90 <= s.end(); start += 5) {
    double avg = WindowAverage(s, start, 90);
    if (IsMissing(avg)) continue;
    EXPECT_GE(avg + 1e-9, w.average_load);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowProperty,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Bucket ratio invariants.

class BucketProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BucketProperty, SelfComparisonIsPerfect) {
  LoadSeries s = RandomSeries(GetParam(), 500, 0.05);
  BucketRatioResult r = BucketRatio(s, s);
  EXPECT_EQ(r.compared, s.CountPresent());
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST_P(BucketProperty, WideningBoundsNeverLowersRatio) {
  LoadSeries truth = RandomSeries(GetParam(), 400);
  LoadSeries pred = RandomSeries(GetParam() + 1000, 400);
  AccuracyConfig narrow;
  AccuracyConfig wide;
  wide.over_bound = narrow.over_bound * 2;
  wide.under_bound = narrow.under_bound * 2;
  EXPECT_LE(BucketRatio(pred, truth, narrow).ratio,
            BucketRatio(pred, truth, wide).ratio + 1e-12);
}

TEST_P(BucketProperty, RatioIsInUnitInterval) {
  LoadSeries truth = RandomSeries(GetParam(), 300, 0.2);
  LoadSeries pred = RandomSeries(GetParam() + 7, 300, 0.2);
  BucketRatioResult r = BucketRatio(pred, truth);
  EXPECT_GE(r.ratio, 0.0);
  EXPECT_LE(r.ratio, 1.0);
  EXPECT_LE(r.in_bound, r.compared);
}

TEST_P(BucketProperty, AsymmetryFavorsOverPrediction) {
  // Shifting the prediction up by +8 stays in bound; down by -8 does not.
  LoadSeries truth = RandomSeries(GetParam(), 300);
  std::vector<double> up_v, down_v;
  for (int64_t i = 0; i < truth.size(); ++i) {
    up_v.push_back(truth.ValueAt(i) + 8.0);
    down_v.push_back(truth.ValueAt(i) - 8.0);
  }
  LoadSeries up =
      std::move(LoadSeries::Make(0, 5, std::move(up_v))).ValueOrDie();
  LoadSeries down =
      std::move(LoadSeries::Make(0, 5, std::move(down_v))).ValueOrDie();
  EXPECT_DOUBLE_EQ(BucketRatio(up, truth).ratio, 1.0);
  EXPECT_DOUBLE_EQ(BucketRatio(down, truth).ratio, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BucketProperty,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Persistent forecast replication property.

class PersistentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistentProperty, PrevDayForecastEqualsShiftedHistory) {
  LoadSeries history = RandomSeries(GetParam(), 7 * 288, 0.05);
  PersistentForecast model(PersistentVariant::kPreviousDay);
  auto forecast =
      model.Forecast(history, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    double expected = history.ValueAtTime(forecast->TimeAt(i) -
                                          kMinutesPerDay);
    double actual = forecast->ValueAt(i);
    if (IsMissing(expected)) {
      EXPECT_TRUE(IsMissing(actual));
    } else {
      EXPECT_DOUBLE_EQ(actual, expected);
    }
  }
}

TEST_P(PersistentProperty, WeekAverageForecastIsConstant) {
  LoadSeries history = RandomSeries(GetParam(), 7 * 288);
  PersistentForecast model(PersistentVariant::kPreviousWeekAverage);
  auto forecast =
      model.Forecast(history, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  double first = forecast->ValueAt(0);
  for (int64_t i = 1; i < forecast->size(); ++i) {
    EXPECT_DOUBLE_EQ(forecast->ValueAt(i), first);
  }
  EXPECT_NEAR(first, history.Mean(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistentProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Resampling invariants.

class ResampleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResampleProperty, DownsamplePreservesMeanOnCompleteDays) {
  LoadSeries s = RandomSeries(GetParam(), 288);
  auto d = Downsample(s, 15);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Mean(), s.Mean(), 1e-9);
  auto h = Downsample(s, 60);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->Mean(), s.Mean(), 1e-9);
}

TEST_P(ResampleProperty, InterpolationFixedPoint) {
  LoadSeries s = RandomSeries(GetParam(), 288, 0.3);
  LoadSeries once = InterpolateMissing(s);
  EXPECT_EQ(once.CountMissing(), 0);
  LoadSeries twice = InterpolateMissing(once);
  EXPECT_EQ(once.values(), twice.values());
  // Present samples are untouched.
  for (int64_t i = 0; i < s.size(); ++i) {
    if (!s.MissingAt(i)) {
      EXPECT_DOUBLE_EQ(once.ValueAt(i), s.ValueAt(i));
    }
  }
}

TEST_P(ResampleProperty, InterpolationStaysWithinEnvelope) {
  LoadSeries s = RandomSeries(GetParam(), 288, 0.3);
  if (s.CountPresent() == 0) return;
  LoadSeries filled = InterpolateMissing(s);
  double lo = s.Min(), hi = s.Max();
  for (int64_t i = 0; i < filled.size(); ++i) {
    EXPECT_GE(filled.ValueAt(i), lo - 1e-9);
    EXPECT_LE(filled.ValueAt(i), hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResampleProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// SVD reconstruction across random shapes.

struct SvdShape {
  int64_t rows;
  int64_t cols;
};

class SvdProperty : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdProperty, ReconstructsWithinTolerance) {
  SvdShape shape = GetParam();
  Rng rng(shape.rows * 131 + shape.cols);
  Matrix a(shape.rows, shape.cols);
  for (int64_t i = 0; i < shape.rows; ++i) {
    for (int64_t j = 0; j < shape.cols; ++j) {
      a.At(i, j) = rng.Gaussian(0.0, 3.0);
    }
  }
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  Matrix us = svd->u;
  for (int64_t i = 0; i < us.rows(); ++i) {
    for (int64_t j = 0; j < us.cols(); ++j) {
      us.At(i, j) *= svd->s[static_cast<size_t>(j)];
    }
  }
  auto recon = MatMul(us, Transpose(svd->v));
  ASSERT_TRUE(recon.ok());
  double max_err = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      max_err = std::max(max_err, std::fabs(recon->At(i, j) - a.At(i, j)));
    }
  }
  EXPECT_LT(max_err, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdProperty,
                         ::testing::Values(SvdShape{4, 4}, SvdShape{8, 3},
                                           SvdShape{16, 16}, SvdShape{40, 10},
                                           SvdShape{64, 24}));

// ---------------------------------------------------------------------------
// Standard metric invariants.

class MetricProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricProperty, ErrorsAreNonNegativeAndZeroOnSelf) {
  LoadSeries truth = RandomSeries(GetParam(), 400, 0.1);
  LoadSeries pred = RandomSeries(GetParam() + 99, 400, 0.1);
  double mae = MeanAbsoluteError(pred, truth);
  double rmse = RootMeanSquaredError(pred, truth);
  if (!IsMissing(mae)) {
    EXPECT_GE(mae, 0.0);
    EXPECT_GE(rmse, mae - 1e-9);  // RMSE >= MAE always
  }
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, truth), 0.0);
}

TEST_P(MetricProperty, LowestLoadWindowIsBelowDayMean) {
  LoadSeries day = RandomSeries(GetParam() + 31, 288);
  WindowResult w = LowestLoadWindow(day, 0, 120);
  ASSERT_TRUE(w.found);
  EXPECT_LE(w.average_load, day.Mean() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace seagull
