#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace seagull {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of {3,4,5} appear
}

TEST(RngTest, GaussianMomentsApproximate) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  Rng rng2(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.Chance(0.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double e = rng.Exponential(5.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng base(42);
  Rng child1 = base.Fork(1);
  Rng child2 = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.Next() == child2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
  // Fork is deterministic: the same salt yields the same stream.
  Rng again(42);
  Rng child1b = again.Fork(1);
  Rng child1c = Rng(42).Fork(1);
  EXPECT_EQ(child1b.Next(), child1c.Next());
}

TEST(RngTest, HashStringStableAndSpread) {
  EXPECT_EQ(Rng::HashString("server-1"), Rng::HashString("server-1"));
  EXPECT_NE(Rng::HashString("server-1"), Rng::HashString("server-2"));
  EXPECT_NE(Rng::HashString(""), Rng::HashString("a"));
}

}  // namespace
}  // namespace seagull
