/// \file forecast_property_test.cc
/// \brief Parameterized invariants that every forecast-model family must
/// satisfy: grid alignment, horizon coverage, bounded non-negative
/// output, tolerance to missing samples, and serialize→restore fidelity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "forecast/model.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

/// One week of plausible server load: daily shape + noise + mild drift.
LoadSeries TrainingWeek(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  double drift = 0.0;
  for (int64_t i = 0; i < 7 * 288; ++i) {
    double phase = static_cast<double>(i % 288) / 288.0;
    drift += rng.Gaussian(0.0, 0.05);
    double v = 22.0 + 12.0 * std::sin(kTwoPi * phase) + drift +
               rng.Gaussian(0.0, 1.0);
    values.push_back(std::clamp(v, 0.0, 100.0));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

/// Families cheap enough for a parameterized sweep (ARIMA has its own
/// suite; its fit is too slow to sweep).
class ModelProperty : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<ForecastModel> FittedModel(const LoadSeries& train) {
    auto model =
        std::move(ModelFactory::Global().Create(GetParam())).ValueOrDie();
    Status st = model->Fit(train);
    st.Abort();
    return model;
  }
};

TEST_P(ModelProperty, ForecastCoversExactHorizonOnGrid) {
  LoadSeries train = TrainingWeek(1);
  auto model = FittedModel(train);
  for (int64_t horizon : {int64_t{60}, int64_t{6 * 60}, kMinutesPerDay}) {
    auto forecast = model->Forecast(train, 7 * kMinutesPerDay, horizon);
    ASSERT_TRUE(forecast.ok()) << GetParam() << " horizon " << horizon;
    EXPECT_EQ(forecast->start(), 7 * kMinutesPerDay);
    EXPECT_EQ(forecast->end(), 7 * kMinutesPerDay + horizon);
    EXPECT_EQ(forecast->interval_minutes(), 5);
  }
}

TEST_P(ModelProperty, OutputsBoundedNonNegative) {
  LoadSeries train = TrainingWeek(2);
  auto model = FittedModel(train);
  auto forecast =
      model->Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  for (int64_t i = 0; i < forecast->size(); ++i) {
    if (forecast->MissingAt(i)) continue;
    EXPECT_GE(forecast->ValueAt(i), 0.0) << GetParam();
    EXPECT_LE(forecast->ValueAt(i), 300.0) << GetParam();
  }
}

TEST_P(ModelProperty, MisalignedRequestsRejected) {
  LoadSeries train = TrainingWeek(3);
  auto model = FittedModel(train);
  EXPECT_FALSE(
      model->Forecast(train, 7 * kMinutesPerDay + 2, 60).ok());
  EXPECT_FALSE(
      model->Forecast(train, 7 * kMinutesPerDay, 61).ok());
}

TEST_P(ModelProperty, ToleratesMissingHistory) {
  LoadSeries train = TrainingWeek(4);
  Rng rng(99);
  for (int64_t i = 0; i < train.size(); ++i) {
    if (rng.Chance(0.1)) train.SetValue(i, kMissingValue);
  }
  auto model =
      std::move(ModelFactory::Global().Create(GetParam())).ValueOrDie();
  ASSERT_TRUE(model->Fit(train).ok()) << GetParam();
  auto forecast =
      model->Forecast(train, 7 * kMinutesPerDay, kMinutesPerDay);
  EXPECT_TRUE(forecast.ok()) << GetParam();
}

TEST_P(ModelProperty, SerializeRestoreProducesIdenticalForecasts) {
  LoadSeries train = TrainingWeek(5);
  auto model = FittedModel(train);
  Json doc = std::move(model->Serialize()).ValueOrDie();
  // The wire format survives a JSON round-trip (what the document store
  // actually persists).
  auto reparsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok()) << GetParam();
  auto restored = ModelFactory::Global().Restore(*reparsed);
  ASSERT_TRUE(restored.ok()) << GetParam();
  auto f1 = model->Forecast(train, 7 * kMinutesPerDay, 4 * 60);
  auto f2 = (*restored)->Forecast(train, 7 * kMinutesPerDay, 4 * 60);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    double a = f1->ValueAt(i);
    double b = f2->ValueAt(i);
    if (IsMissing(a)) {
      EXPECT_TRUE(IsMissing(b)) << GetParam();
    } else {
      EXPECT_NEAR(a, b, 1e-6) << GetParam() << " at " << i;
    }
  }
}

TEST_P(ModelProperty, RepeatedForecastsAreDeterministic) {
  LoadSeries train = TrainingWeek(6);
  auto model = FittedModel(train);
  auto f1 = model->Forecast(train, 7 * kMinutesPerDay, 2 * 60);
  auto f2 = model->Forecast(train, 7 * kMinutesPerDay, 2 * 60);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (int64_t i = 0; i < f1->size(); ++i) {
    double a = f1->ValueAt(i), b = f2->ValueAt(i);
    if (IsMissing(a)) {
      EXPECT_TRUE(IsMissing(b));
    } else {
      EXPECT_DOUBLE_EQ(a, b) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ModelProperty,
    ::testing::Values("persistent_prev_day", "persistent_prev_eq_day",
                      "persistent_week_avg", "ssa", "feedforward",
                      "additive", "routed"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
}  // namespace seagull
