#!/bin/sh
# Smoke test for the `seagull` CLI: generate -> pipeline -> schedule ->
# dashboard -> incidents -> advise against a scratch lake + doc store.
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$CLI" generate --lake lake --region smoke --servers 25 --weeks 5 --seed 5 \
  > generate.out
grep -q "generated 25 servers" generate.out

"$CLI" pipeline --lake lake --docs docs.json --region smoke --week 3 \
  > pipeline.out
grep -q "pipeline smoke week 3: ok" pipeline.out
test -f docs.json

# Re-running the same week is a no-op (the scheduler's cadence).
"$CLI" pipeline --lake lake --docs docs.json --region smoke --week 3 \
  > pipeline2.out
grep -q "not due" pipeline2.out

# Day 28 = first day of week 4, the scheduled week.
"$CLI" schedule --lake lake --docs docs.json --region smoke --day 28 \
  > schedule.out
grep -q "servers due" schedule.out

"$CLI" dashboard --docs docs.json > dashboard.out
grep -q "smoke" dashboard.out

"$CLI" incidents --docs docs.json --region smoke > incidents.out

# Advise on any server that has telemetry.
SERVER="smoke-srv-00000"
"$CLI" advise --lake lake --docs docs.json --region smoke \
  --server "$SERVER" --day 28 --start 12:00 --duration 60 > advise.out \
  || grep -q "no telemetry" advise.out

# Unknown command and missing flags fail with non-zero status.
if "$CLI" bogus > /dev/null 2>&1; then exit 1; fi
if "$CLI" pipeline --region smoke > /dev/null 2>&1; then exit 1; fi

echo "cli smoke test ok"
