#!/bin/sh
# Smoke test for the `seagull` CLI: generate -> pipeline -> schedule ->
# dashboard -> incidents -> advise against a scratch lake + doc store,
# plus a multi-region --jobs fleet run.
#
# This script must carry the executable bit: ctest invokes it directly,
# and a non-executable script fails as BAD_COMMAND with no output (the
# original seed failure mode). The checks below make every other failure
# mode loud instead of silent.
set -u

die() {
  echo "cli_smoke_test FAILED: $*" >&2
  for f in generate.out pipeline.out pipeline2.out fleet.out \
           transcode.out transcode2.out cached.out \
           schedule.out dashboard.out incidents.out advise.out; do
    if [ -f "$f" ]; then
      echo "--- $f ---" >&2
      cat "$f" >&2
    fi
  done
  exit 1
}

run() {
  step="$1"
  shift
  "$@" || die "step '$step' exited $? (command: $*)"
}

[ "$#" -ge 1 ] || die "usage: cli_smoke_test.sh /path/to/seagull_cli"
CLI="$1"
[ -e "$CLI" ] || die "CLI binary does not exist: $CLI"
[ -x "$CLI" ] || die "CLI binary is not executable: $CLI"

WORK="$(mktemp -d)" || die "mktemp failed"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || die "cd $WORK failed"

run generate "$CLI" generate --lake lake --region smoke --servers 25 \
  --weeks 5 --seed 5 > generate.out
grep -q "generated 25 servers" generate.out || die "generate output wrong"

run pipeline "$CLI" pipeline --lake lake --docs docs.json --region smoke \
  --week 3 > pipeline.out
grep -q "pipeline smoke week 3: ok" pipeline.out || die "pipeline not ok"
[ -f docs.json ] || die "docs.json was not written"

# Re-running the same week is a no-op (the scheduler's cadence).
run pipeline-rerun "$CLI" pipeline --lake lake --docs docs.json \
  --region smoke --week 3 > pipeline2.out
grep -q "not due" pipeline2.out || die "rerun was not a cadence no-op"

# Fleet mode: two more regions run concurrently through --jobs. fleet-a
# is staged in the binary SeriesBlock format, fleet-b as CSV — both run
# through the same pipeline, with the lake blob cache turned on.
run generate-f1 "$CLI" generate --lake lake --region fleet-a --servers 15 \
  --weeks 5 --seed 6 --format binary > /dev/null
run generate-f2 "$CLI" generate --lake lake --region fleet-b --servers 15 \
  --weeks 5 --seed 7 > /dev/null
run fleet "$CLI" pipeline --lake lake --docs docs.json \
  --region fleet-a,fleet-b --week 3 --jobs 2 --lake-cache-mb 64 > fleet.out
grep -q "pipeline fleet-a week 3: ok" fleet.out || die "fleet-a not ok"
grep -q "pipeline fleet-b week 3: ok" fleet.out || die "fleet-b not ok"
grep -q "fleet: 2 regions, 2 ok" fleet.out || die "fleet summary wrong"

# Transcode the smoke region's CSV week to binary in place, and back:
# the pipeline must keep accepting the key either way.
run transcode "$CLI" transcode --lake lake \
  --key telemetry/smoke/week-0003.csv > transcode.out
grep -q "csv.*-> .*binary" transcode.out || die "transcode to binary wrong"
run transcode-back "$CLI" transcode --lake lake \
  --key telemetry/smoke/week-0003.csv --to csv > transcode2.out
grep -q "binary.*-> .*csv" transcode2.out || die "transcode to csv wrong"

# A cached re-run of week 3 in a fresh doc store reads the transcoded
# blob through the blob cache and must still succeed.
run pipeline-cached "$CLI" pipeline --lake lake --docs docs-cached.json \
  --region smoke --week 3 --lake-cache-mb 64 > cached.out
grep -q "pipeline smoke week 3: ok" cached.out || die "cached run not ok"

# Day 28 = first day of week 4, the scheduled week.
run schedule "$CLI" schedule --lake lake --docs docs.json --region smoke \
  --day 28 > schedule.out
grep -q "servers due" schedule.out || die "schedule output wrong"

run dashboard "$CLI" dashboard --docs docs.json > dashboard.out
grep -q "smoke" dashboard.out || die "dashboard missing region"

run incidents "$CLI" incidents --docs docs.json --region smoke \
  > incidents.out

# Advise on any server that has telemetry.
SERVER="smoke-srv-00000"
"$CLI" advise --lake lake --docs docs.json --region smoke \
  --server "$SERVER" --day 28 --start 12:00 --duration 60 > advise.out \
  || grep -q "no telemetry" advise.out || die "advise failed"

# Unknown command and missing flags fail with non-zero status.
if "$CLI" bogus > /dev/null 2>&1; then die "bogus command succeeded"; fi
if "$CLI" pipeline --region smoke > /dev/null 2>&1; then
  die "pipeline without required flags succeeded"
fi

echo "cli smoke test ok"
