#include <gtest/gtest.h>

#include <algorithm>

#include "pipeline/accuracy.h"
#include "pipeline/deployment.h"
#include "pipeline/features.h"
#include "pipeline/ingestion.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "pipeline/validation.h"
#include "telemetry/emitter.h"

namespace seagull {
namespace {

class PipelineModulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto lake = LakeStore::OpenTemporary("modules");
    ASSERT_TRUE(lake.ok());
    lake_ = std::make_unique<LakeStore>(std::move(lake).ValueUnsafe());

    RegionConfig config;
    config.name = "modtest";
    config.num_servers = 40;
    config.weeks = 4;
    config.seed = 404;
    fleet_ = std::make_unique<Fleet>(Fleet::Generate(config));
    ASSERT_TRUE(lake_->Put(LakeStore::TelemetryKey("modtest", 2),
                           ExtractWeekCsvText(*fleet_, 2))
                    .ok());

    ctx_.region = "modtest";
    ctx_.week = 2;
    ctx_.lake = lake_.get();
    ctx_.docs = &docs_;
  }

  // Runs modules up to and including `n` stages of the standard chain.
  Status RunStages(int n) {
    std::vector<std::unique_ptr<PipelineModule>> modules;
    modules.push_back(std::make_unique<DataIngestionModule>());
    modules.push_back(std::make_unique<DataValidationModule>());
    modules.push_back(std::make_unique<FeatureExtractionModule>());
    modules.push_back(std::make_unique<ModelTrainingModule>());
    modules.push_back(std::make_unique<ModelDeploymentModule>());
    modules.push_back(std::make_unique<AccuracyEvaluationModule>());
    for (int i = 0; i < n; ++i) {
      SEAGULL_RETURN_NOT_OK(modules[static_cast<size_t>(i)]->Run(&ctx_));
    }
    return Status::OK();
  }

  std::unique_ptr<LakeStore> lake_;
  std::unique_ptr<Fleet> fleet_;
  DocStore docs_;
  PipelineContext ctx_;
};

TEST_F(PipelineModulesTest, IngestionReadsRecords) {
  ASSERT_TRUE(RunStages(1).ok());
  EXPECT_GT(ctx_.records.size(), 1000u);
  EXPECT_GT(ctx_.stats["ingestion.bytes"], 0);
}

TEST_F(PipelineModulesTest, IngestionMissingBlobRaisesIncident) {
  ctx_.week = 9;  // nothing extracted for week 9
  DataIngestionModule ingestion;
  Status st = ingestion.Run(&ctx_);
  EXPECT_TRUE(st.IsNotFound());
  ASSERT_FALSE(ctx_.incidents.empty());
  EXPECT_EQ(ctx_.incidents[0].severity, IncidentSeverity::kError);
}

TEST_F(PipelineModulesTest, ValidationGroupsServers) {
  ASSERT_TRUE(RunStages(2).ok());
  EXPECT_FALSE(ctx_.servers.empty());
  EXPECT_LE(ctx_.servers.size(), 40u);
  // Schema file was deduced and persisted.
  EXPECT_TRUE(lake_->Exists(DataValidationModule::SchemaKey("modtest")));
}

TEST_F(PipelineModulesTest, ValidationDropsBadRows) {
  ASSERT_TRUE(RunStages(1).ok());
  // Inject invalid rows.
  TelemetryRecord bad_cpu = ctx_.records[0];
  bad_cpu.avg_cpu = 250.0;
  TelemetryRecord off_grid = ctx_.records[0];
  off_grid.timestamp += 3;
  TelemetryRecord bad_window = ctx_.records[0];
  bad_window.default_backup_end = bad_window.default_backup_start - 5;
  ctx_.records.push_back(bad_cpu);
  ctx_.records.push_back(off_grid);
  ctx_.records.push_back(bad_window);

  DataValidationModule validation;
  ASSERT_TRUE(validation.Run(&ctx_).ok());
  EXPECT_DOUBLE_EQ(ctx_.stats["validation.dropped_bounds"], 1.0);
  EXPECT_DOUBLE_EQ(ctx_.stats["validation.dropped_grid"], 1.0);
  EXPECT_DOUBLE_EQ(ctx_.stats["validation.dropped_window"], 1.0);
  // A warning incident about dropped rows was raised.
  bool warned = false;
  for (const auto& incident : ctx_.incidents) {
    if (incident.severity == IncidentSeverity::kWarning) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST_F(PipelineModulesTest, ValidationDeduplicatesLastWins) {
  ASSERT_TRUE(RunStages(1).ok());
  TelemetryRecord dup = ctx_.records[0];
  dup.avg_cpu = 42.0;
  ctx_.records.push_back(dup);
  DataValidationModule validation;
  ASSERT_TRUE(validation.Run(&ctx_).ok());
  EXPECT_DOUBLE_EQ(ctx_.stats["validation.duplicates"], 1.0);
  // The duplicate's value won.
  for (const auto& s : ctx_.servers) {
    if (s.server_id == dup.server_id) {
      EXPECT_DOUBLE_EQ(s.load.ValueAtTime(dup.timestamp), 42.0);
    }
  }
}

TEST_F(PipelineModulesTest, ValidationRejectsMostlyInvalidFile) {
  ASSERT_TRUE(RunStages(1).ok());
  // Corrupt the majority of rows.
  for (size_t i = 0; i < ctx_.records.size() * 3 / 4; ++i) {
    ctx_.records[i].avg_cpu = 500.0;
  }
  DataValidationModule validation;
  EXPECT_TRUE(validation.Run(&ctx_).IsDataLoss());
}

TEST_F(PipelineModulesTest, ValidationDetectsSchemaBoundAnomaly) {
  // Build a region whose history sits in a narrow band, deduce its
  // schema, then feed data far outside that band.
  auto make_records = [](double level) {
    std::vector<TelemetryRecord> records;
    for (int64_t t = 0; t < kMinutesPerDay; t += kServerIntervalMinutes) {
      TelemetryRecord r;
      r.server_id = "bound-srv";
      r.timestamp = t;
      r.avg_cpu = level;
      r.default_backup_start = 0;
      r.default_backup_end = 60;
      records.push_back(r);
    }
    return records;
  };
  PipelineContext ctx;
  ctx.region = "bound-region";
  ctx.week = 0;
  ctx.lake = lake_.get();
  ctx.docs = &docs_;
  ctx.records = make_records(20.0);
  DataValidationModule validation;
  ASSERT_TRUE(validation.Run(&ctx).ok());  // deduces schema [20, 20]

  PipelineContext ctx2;
  ctx2.region = "bound-region";
  ctx2.week = 1;
  ctx2.lake = lake_.get();
  ctx2.docs = &docs_;
  ctx2.records = make_records(80.0);  // far above the historical band
  ASSERT_TRUE(validation.Run(&ctx2).ok());
  bool bound_anomaly = false;
  for (const auto& incident : ctx2.incidents) {
    if (incident.message.find("bound anomaly") != std::string::npos) {
      bound_anomaly = true;
    }
  }
  EXPECT_TRUE(bound_anomaly);
}

TEST_F(PipelineModulesTest, FeaturesClassifyFleet) {
  ASSERT_TRUE(RunStages(3).ok());
  ASSERT_EQ(ctx_.features.size(), ctx_.servers.size());
  int64_t classified = 0;
  for (const auto& f : ctx_.features) {
    EXPECT_FALSE(f.server_id.empty());
    EXPECT_GT(f.backup_duration_minutes, 0);
    ++classified;
  }
  EXPECT_GT(classified, 0);
  // Stats cover all classes.
  double total = ctx_.stats["features.short_lived"] +
                 ctx_.stats["features.stable"] + ctx_.stats["features.daily"] +
                 ctx_.stats["features.weekly"] +
                 ctx_.stats["features.no_pattern"];
  EXPECT_DOUBLE_EQ(total, static_cast<double>(ctx_.features.size()));
}

TEST_F(PipelineModulesTest, TrainingHeuristicFamilyIsSingleEntry) {
  ctx_.model_name = "persistent_prev_day";
  ASSERT_TRUE(RunStages(4).ok());
  EXPECT_EQ(ctx_.trained.size(), 1u);
  EXPECT_TRUE(ctx_.trained.count(""));
}

TEST_F(PipelineModulesTest, TrainingPerServerFamily) {
  ctx_.model_name = "ssa";
  ASSERT_TRUE(RunStages(4).ok());
  EXPECT_GT(ctx_.trained.size(), 1u);
  EXPECT_FALSE(ctx_.trained.count(""));
  for (const auto& [server_id, doc] : ctx_.trained) {
    EXPECT_EQ(doc["model"].AsString(), "ssa") << server_id;
  }
}

TEST_F(PipelineModulesTest, DeploymentCreatesVersionAndEndpoint) {
  ASSERT_TRUE(RunStages(5).ok());
  EXPECT_EQ(ctx_.deployed_version, 1);
  auto active = ActiveVersion(&docs_, "modtest");
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, 1);
  auto endpoint = LoadActiveEndpoint(&docs_, "modtest");
  ASSERT_TRUE(endpoint.ok());
  EXPECT_EQ(endpoint->family(), "persistent_prev_day");
  EXPECT_TRUE(endpoint->Serves("anything"));  // fleet-wide heuristic
}

TEST_F(PipelineModulesTest, DeploymentIncrementsVersions) {
  ASSERT_TRUE(RunStages(5).ok());
  PipelineContext ctx2 = ctx_;
  ModelDeploymentModule deployment;
  ASSERT_TRUE(deployment.Run(&ctx2).ok());
  EXPECT_EQ(ctx2.deployed_version, 2);
  EXPECT_EQ(*ActiveVersion(&docs_, "modtest"), 2);
}

TEST_F(PipelineModulesTest, EndpointPredictsFromRecentLoad) {
  ASSERT_TRUE(RunStages(5).ok());
  auto endpoint = LoadActiveEndpoint(&docs_, "modtest");
  ASSERT_TRUE(endpoint.ok());
  const ServerTelemetry& st = ctx_.servers[0];
  MinuteStamp day = st.load.end();
  auto forecast = endpoint->Predict(st.server_id, st.load, day,
                                    kMinutesPerDay);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 288);
}

TEST_F(PipelineModulesTest, AccuracyProducesRecordsAndDocs) {
  ASSERT_TRUE(RunStages(6).ok());
  ASSERT_EQ(ctx_.accuracy_records.size(), ctx_.servers.size());
  int64_t long_lived = 0, predictable = 0;
  for (const auto& rec : ctx_.accuracy_records) {
    if (rec.long_lived) ++long_lived;
    if (rec.predictable) ++predictable;
  }
  EXPECT_GT(long_lived, 0);
  EXPECT_GT(predictable, 0);
  EXPECT_LE(predictable, long_lived);
  // Documents were stored per server for week 3.
  Container* container = docs_.GetContainer(kAccuracyContainer);
  EXPECT_EQ(container->Count(),
            static_cast<int64_t>(ctx_.accuracy_records.size()));
}

TEST_F(PipelineModulesTest, MostStableServersArePredictable) {
  ASSERT_TRUE(RunStages(6).ok());
  int64_t stable_total = 0, stable_predictable = 0;
  for (size_t i = 0; i < ctx_.features.size(); ++i) {
    if (ctx_.features[i].classification.server_class !=
        ServerClass::kStable) {
      continue;
    }
    ++stable_total;
    if (ctx_.accuracy_records[i].predictable) ++stable_predictable;
  }
  ASSERT_GT(stable_total, 0);
  // Servers whose backup day falls on the very first simulated day have
  // no prior day to forecast from, so the ceiling here is ~6/7 even for
  // perfectly stable servers (the paper's production number is 75% of
  // all long-lived servers, §5.4).
  EXPECT_GT(static_cast<double>(stable_predictable) /
                static_cast<double>(stable_total),
            0.6);
}

}  // namespace
}  // namespace seagull
