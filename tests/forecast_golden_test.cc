/// \file forecast_golden_test.cc
/// \brief Frozen-fixture golden regression suite for the forecast
/// models: checked-in synthetic series per load archetype → expected
/// next-day forecasts and NRMSE at fixed tolerance, so future kernel
/// rewrites cannot silently drift model outputs.
///
/// Regenerating after an *intentional* output change:
///   ./forecast_golden_test --update-golden
/// rewrites tests/golden/forecast_golden.json in the source tree (the
/// binary knows the path via SEAGULL_TEST_DATA_DIR). Review the diff —
/// every changed number is a behavior change shipping to the fleet.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "forecast/arima.h"
#include "forecast/feedforward.h"
#include "forecast/model.h"

namespace seagull {
namespace {

constexpr double kTwoPi = 6.283185307179586;

bool g_update_golden = false;

std::string GoldenPath() {
  return std::string(SEAGULL_TEST_DATA_DIR) + "/golden/forecast_golden.json";
}

/// Down-sized ARIMA/feed-forward variants; the full configurations are
/// exercised (and timed) by the bench and fleet suites.
void RegisterQuickFamilies() {
  static const bool registered = [] {
    ModelFactory::Global().Register("arima_quick", [] {
      ArimaOptions opt;
      opt.max_p = 1;
      opt.max_d = 1;
      opt.max_q = 1;
      opt.iterations = 40;
      return std::make_unique<ArimaForecast>(opt);
    });
    ModelFactory::Global().Register("feedforward_quick", [] {
      FeedForwardOptions opt;
      opt.epochs = 30;
      return std::make_unique<FeedForwardForecast>(opt);
    });
    return true;
  }();
  (void)registered;
}

/// Eight days of one archetype: seven to train on, the eighth as the
/// held-out day the NRMSE is scored against. Everything is seeded —
/// the same bytes every run, on every machine.
LoadSeries ArchetypeSeries(const std::string& archetype) {
  Rng rng(archetype == "daily_cycle"     ? 11
          : archetype == "weekly_batch"  ? 23
                                         : 37);
  std::vector<double> values;
  for (int64_t i = 0; i < 8 * 288; ++i) {
    const double day_phase = static_cast<double>(i % 288) / 288.0;
    const double week_phase =
        static_cast<double>(i % (7 * 288)) / (7.0 * 288.0);
    double v = 0.0;
    if (archetype == "daily_cycle") {
      v = 40.0 + 18.0 * std::sin(kTwoPi * day_phase) +
          rng.Gaussian(0.0, 1.0);
    } else if (archetype == "weekly_batch") {
      v = 30.0 + 8.0 * std::sin(kTwoPi * day_phase) +
          12.0 * std::sin(kTwoPi * week_phase) + rng.Gaussian(0.0, 1.5);
    } else {  // "noisy_drift"
      v = 35.0 + 6.0 * std::sin(kTwoPi * day_phase) +
          10.0 * week_phase + rng.Gaussian(0.0, 3.0);
    }
    values.push_back(std::clamp(v, 0.0, 100.0));
  }
  return std::move(LoadSeries::Make(0, 5, std::move(values))).ValueOrDie();
}

const std::vector<std::string>& Models() {
  static const std::vector<std::string> models = {
      "persistent_prev_day", "ssa", "additive", "feedforward_quick",
      "arima_quick"};
  return models;
}

const std::vector<std::string>& Archetypes() {
  static const std::vector<std::string> archetypes = {
      "daily_cycle", "weekly_batch", "noisy_drift"};
  return archetypes;
}

struct GoldenCase {
  std::vector<double> forecast;  ///< next-day point forecast
  double nrmse = 0.0;            ///< vs the held-out eighth day
};

/// Fits `model` on days 1–7 and forecasts day 8 in the current kernel
/// mode (fast — the production configuration).
GoldenCase RunCase(const std::string& model_name,
                   const std::string& archetype) {
  const LoadSeries full = ArchetypeSeries(archetype);
  const MinuteStamp split = 7 * kMinutesPerDay;
  const LoadSeries train = full.Slice(0, split);
  auto model =
      std::move(ModelFactory::Global().Create(model_name)).ValueOrDie();
  model->Fit(train).Abort();
  const LoadSeries forecast =
      std::move(model->Forecast(train, split, kMinutesPerDay)).ValueOrDie();
  GoldenCase out;
  double sq = 0.0, mean = 0.0;
  for (int64_t i = 0; i < forecast.size(); ++i) {
    const double predicted = forecast.ValueAt(i);
    const double actual = full.ValueAtTime(split + i * 5);
    out.forecast.push_back(predicted);
    sq += (predicted - actual) * (predicted - actual);
    mean += actual;
  }
  mean /= static_cast<double>(forecast.size());
  out.nrmse =
      std::sqrt(sq / static_cast<double>(forecast.size())) / mean;
  return out;
}

std::string CaseKey(const std::string& model, const std::string& archetype) {
  return model + "/" + archetype;
}

Json LoadGoldenFile() {
  std::ifstream in(GoldenPath());
  EXPECT_TRUE(in.good()) << "cannot open " << GoldenPath()
                         << " — run with --update-golden to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::Parse(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : Json::MakeObject();
}

TEST(ForecastGolden, OutputsMatchCheckedInFixtures) {
  RegisterQuickFamilies();
  if (g_update_golden) {
    Json doc = Json::MakeObject();
    Json cases = Json::MakeObject();
    for (const std::string& model : Models()) {
      for (const std::string& archetype : Archetypes()) {
        const GoldenCase result = RunCase(model, archetype);
        Json entry = Json::MakeObject();
        Json fc = Json::MakeArray();
        for (double v : result.forecast) fc.Append(v);
        entry["forecast"] = std::move(fc);
        entry["nrmse"] = result.nrmse;
        cases[CaseKey(model, archetype)] = std::move(entry);
      }
    }
    doc["cases"] = std::move(cases);
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << doc.DumpPretty();
    GTEST_SKIP() << "golden file regenerated at " << GoldenPath();
  }

  const Json golden = LoadGoldenFile();
  ASSERT_TRUE(golden.Contains("cases"));
  const Json& cases = golden["cases"];
  // Doubles round-trip the JSON file losslessly (%.17g), so the
  // tolerance only absorbs libm variation across toolchains.
  const double tol = 1e-6;
  for (const std::string& model : Models()) {
    for (const std::string& archetype : Archetypes()) {
      SCOPED_TRACE(CaseKey(model, archetype));
      const GoldenCase result = RunCase(model, archetype);
      const Json& expected = cases[CaseKey(model, archetype)];
      ASSERT_TRUE(expected.is_object())
          << "missing golden case — rerun with --update-golden";
      const Json& fc = expected["forecast"];
      ASSERT_TRUE(fc.is_array());
      ASSERT_EQ(fc.AsArray().size(), result.forecast.size());
      for (size_t i = 0; i < result.forecast.size(); ++i) {
        const double want = fc.AsArray()[i].AsDouble();
        const double got = result.forecast[i];
        ASSERT_NEAR(got, want, tol + tol * std::fabs(want))
            << "forecast tick " << i;
      }
      const double want_nrmse =
          std::move(expected.GetNumber("nrmse")).ValueOrDie();
      EXPECT_NEAR(result.nrmse, want_nrmse, tol + tol * want_nrmse);
    }
  }
}

}  // namespace
}  // namespace seagull

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      seagull::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
