/// \file fault_retry_test.cc
/// \brief Unit coverage of the resilience substrate: the deterministic
/// `FaultRegistry`, the `RetryPolicy` classification/backoff/budget
/// behavior, and the `ResilientStore` wrapper that joins them.

#include <gtest/gtest.h>

#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "store/resilient_store.h"

namespace seagull {
namespace {

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_backoff_millis = 0.0;  // no sleeping in unit tests
  return policy;
}

TEST(FaultRegistryTest, DisabledRegistryInjectsNothing) {
  FaultRegistry& registry = FaultRegistry::Global();
  ASSERT_FALSE(registry.enabled());
  EXPECT_TRUE(registry.Inject("lake.get", "some/key").ok());
  EXPECT_EQ(registry.InjectedCount("lake.get"), 0);
  EXPECT_EQ(registry.CallCount("lake.get"), 0);
}

TEST(FaultRegistryTest, SameSeedSameDecisions) {
  auto decisions = [](uint64_t seed) {
    ScopedFaultInjection fault({seed, 0.3});
    std::vector<bool> out;
    for (int key = 0; key < 64; ++key) {
      for (int call = 0; call < 4; ++call) {
        out.push_back(FaultRegistry::Global()
                          .Inject("p", "key-" + std::to_string(key))
                          .ok());
      }
    }
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));
}

TEST(FaultRegistryTest, RateZeroNeverFiresRateOneAlwaysFires) {
  ScopedFaultInjection fault({1, 0.0});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(FaultRegistry::Global().Inject("p", "k").ok());
  }
  fault.registry().SetPointRate("q", 1.0);
  for (int i = 0; i < 50; ++i) {
    Status st = FaultRegistry::Global().Inject("q", "k");
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
  EXPECT_EQ(fault.registry().InjectedCount("p"), 0);
  EXPECT_EQ(fault.registry().InjectedCount("q"), 50);
  EXPECT_EQ(fault.registry().CallCount("p"), 50);
  EXPECT_EQ(fault.registry().TotalInjected(), 50);
}

TEST(FaultRegistryTest, OutageCountsDownThenClears) {
  ScopedFaultInjection fault({1, 0.0});
  fault.registry().AddOutage("lake.get", "region-b", 2);
  // Keys not matching the substring are unaffected.
  EXPECT_TRUE(FaultRegistry::Global().Inject("lake.get", "region-a/w1").ok());
  EXPECT_FALSE(FaultRegistry::Global().Inject("lake.get", "region-b/w1").ok());
  EXPECT_FALSE(FaultRegistry::Global().Inject("lake.get", "region-b/w1").ok());
  EXPECT_TRUE(FaultRegistry::Global().Inject("lake.get", "region-b/w1").ok());
  EXPECT_EQ(fault.registry().InjectedCount("lake.get"), 2);
}

TEST(FaultRegistryTest, UnlimitedOutageNeverClears) {
  ScopedFaultInjection fault({1, 0.0});
  fault.registry().AddOutage("doc.upsert", "", -1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(
        FaultRegistry::Global().Inject("doc.upsert", std::to_string(i)).ok());
  }
}

TEST(FaultRegistryTest, ScopeDisablesOnExit) {
  {
    ScopedFaultInjection fault({1, 1.0});
    EXPECT_FALSE(FaultRegistry::Global().Inject("p", "k").ok());
  }
  EXPECT_FALSE(FaultRegistry::Global().enabled());
  EXPECT_TRUE(FaultRegistry::Global().Inject("p", "k").ok());
}

TEST(RetryPolicyTest, ClassifiesRetryableStatuses) {
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("flaky disk")));
  EXPECT_TRUE(IsRetryableStatus(Status::ResourceExhausted("throttled")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("no blob")));
  EXPECT_FALSE(IsRetryableStatus(Status::Invalid("bad key")));
  EXPECT_FALSE(IsRetryableStatus(Status::DataLoss("empty")));
  EXPECT_FALSE(IsRetryableStatus(Status::Internal("bug")));
  EXPECT_FALSE(IsRetryableStatus(Status::FailedPrecondition("no store")));
}

TEST(RetryPolicyTest, BackoffGrowsAndCapsDeterministically) {
  RetryPolicy policy;
  policy.base_backoff_millis = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_millis = 9.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(BackoffMillis(policy, "op", 1), 2.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(policy, "op", 2), 4.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(policy, "op", 3), 8.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(policy, "op", 4), 9.0);  // capped

  policy.jitter_fraction = 0.25;
  const double jittered = BackoffMillis(policy, "op", 2);
  EXPECT_GE(jittered, 4.0 * 0.75);
  EXPECT_LT(jittered, 4.0 * 1.25);
  // Same inputs, same jitter — the schedule is reproducible.
  EXPECT_DOUBLE_EQ(jittered, BackoffMillis(policy, "op", 2));
  // Different op keys decorrelate their schedules.
  EXPECT_NE(jittered, BackoffMillis(policy, "other-op", 2));
}

TEST(RetryPolicyTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::vector<int> retry_attempts;
  RetryOutcome outcome = RunWithRetry(
      FastRetry(5), "op",
      [&] {
        ++calls;
        return calls < 3 ? Status::IOError("transient") : Status::OK();
      },
      [&](int attempt, const Status& status) {
        retry_attempts.push_back(attempt);
        EXPECT_TRUE(status.IsIOError());
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.retries(), 2);
  EXPECT_FALSE(outcome.exhausted);
  EXPECT_EQ(retry_attempts, (std::vector<int>{1, 2}));
}

TEST(RetryPolicyTest, NonRetryableFailsFast) {
  int calls = 0;
  RetryOutcome outcome = RunWithRetry(FastRetry(5), "op", [&] {
    ++calls;
    return Status::NotFound("gone");
  });
  EXPECT_TRUE(outcome.status.IsNotFound());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(RetryPolicyTest, ExhaustsAttemptBudget) {
  int calls = 0;
  RetryOutcome outcome = RunWithRetry(FastRetry(3), "op", [&] {
    ++calls;
    return Status::IOError("always down");
  });
  EXPECT_TRUE(outcome.status.IsIOError());
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(outcome.exhausted);
}

TEST(RetryPolicyTest, MaxAttemptsBelowOneStillRunsOnce) {
  int calls = 0;
  RetryPolicy policy = FastRetry(0);
  RetryOutcome outcome =
      RunWithRetry(policy, "op", [&] {
        ++calls;
        return Status::OK();
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(ResilientStoreTest, LakeGetRecoversFromTransientOutage) {
  auto lake = LakeStore::OpenTemporary("resilient");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake->Put("a/blob.txt", "payload").ok());

  ScopedFaultInjection fault({1, 0.0});
  fault.registry().AddOutage("lake.get", "a/blob", 2);
  ResilientStore store(&*lake, nullptr, FastRetry(4));
  auto value = store.LakeGet("a/blob.txt");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, "payload");
  EXPECT_EQ(store.total_retries(), 2);
}

TEST(ResilientStoreTest, ExhaustedOutageSurfacesFinalError) {
  auto lake = LakeStore::OpenTemporary("resilient");
  ASSERT_TRUE(lake.ok());
  ASSERT_TRUE(lake->Put("a/blob.txt", "payload").ok());

  ScopedFaultInjection fault({1, 0.0});
  fault.registry().AddOutage("lake.get", "", -1);
  ResilientStore store(&*lake, nullptr, FastRetry(3));
  auto value = store.LakeGet("a/blob.txt");
  EXPECT_TRUE(value.status().IsIOError());
  EXPECT_EQ(store.total_retries(), 2);  // 3 attempts = 2 retries
}

TEST(ResilientStoreTest, DocOpsRetryUpsertGetAndQuery) {
  DocStore docs;
  ScopedFaultInjection fault({1, 0.0});
  fault.registry().AddOutage("doc.upsert", "c/p/", 1);
  fault.registry().AddOutage("doc.get", "c/p/", 1);
  fault.registry().AddOutage("doc.query", "c", 1);

  ResilientStore store(nullptr, &docs, FastRetry(3));
  Document doc;
  doc.partition_key = "p";
  doc.id = "d1";
  doc.body = Json::MakeObject();
  doc.body["v"] = 1.0;
  ASSERT_TRUE(store.Upsert("c", doc).ok());
  auto got = store.Get("c", "p", "d1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto scanned = store.Query("c", [](const Document&) { return true; });
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(scanned->size(), 1u);
  EXPECT_EQ(store.total_retries(), 3);  // one per faulted operation
}

TEST(ResilientStoreTest, MissingStoresFailPrecondition) {
  ResilientStore store(nullptr, nullptr);
  EXPECT_TRUE(store.LakeGet("k").status().IsFailedPrecondition());
  EXPECT_TRUE(store.LakePut("k", "v").IsFailedPrecondition());
  EXPECT_TRUE(store.LakeList("").status().IsFailedPrecondition());
  EXPECT_TRUE(store.Get("c", "p", "i").status().IsFailedPrecondition());
  EXPECT_TRUE(
      store.Query("c", [](const Document&) { return true; })
          .status()
          .IsFailedPrecondition());
}

}  // namespace
}  // namespace seagull
