#include "scheduling/service_fabric.h"

#include "common/strings.h"

namespace seagull {

void ServiceFabricProperties::Set(const std::string& instance,
                                  const std::string& property,
                                  const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  props_[{instance, property}] = value;
}

std::optional<std::string> ServiceFabricProperties::Get(
    const std::string& instance, const std::string& property) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = props_.find({instance, property});
  if (it == props_.end()) return std::nullopt;
  return it->second;
}

void ServiceFabricProperties::Clear(const std::string& instance,
                                    const std::string& property) {
  std::lock_guard<std::mutex> lock(mu_);
  props_.erase({instance, property});
}

void ServiceFabricProperties::SetBackupWindowStart(const std::string& instance,
                                                   MinuteStamp start) {
  Set(instance, kBackupWindowProperty,
      StringPrintf("%lld", static_cast<long long>(start)));
}

std::optional<MinuteStamp> ServiceFabricProperties::GetBackupWindowStart(
    const std::string& instance) const {
  auto value = Get(instance, kBackupWindowProperty);
  if (!value.has_value()) return std::nullopt;
  auto parsed = ParseInt64(*value);
  if (!parsed.ok()) return std::nullopt;
  return *parsed;
}

int64_t ServiceFabricProperties::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(props_.size());
}

}  // namespace seagull
