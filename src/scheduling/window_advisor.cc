#include "scheduling/window_advisor.h"

#include "metrics/ll_window.h"

namespace seagull {

Result<WindowAdvice> AdviseCustomerWindow(
    const ModelEndpoint& endpoint, const std::string& server_id,
    const LoadSeries& recent, MinuteStamp customer_start,
    int64_t backup_duration_minutes, const AccuracyConfig& accuracy) {
  const int64_t day = DayIndex(customer_start);
  MinuteStamp day_start = day * kMinutesPerDay;
  if (customer_start + backup_duration_minutes >
      day_start + kMinutesPerDay) {
    return Status::Invalid("customer window crosses the day boundary");
  }
  SEAGULL_ASSIGN_OR_RETURN(
      LoadSeries predicted,
      endpoint.Predict(server_id, recent, day_start, kMinutesPerDay));

  WindowAdvice advice;
  double customer_load = WindowAverage(predicted, customer_start,
                                       backup_duration_minutes);
  if (IsMissing(customer_load)) {
    return Status::FailedPrecondition(
        "forecast has no data inside the customer window");
  }
  advice.customer_window_load = customer_load;
  advice.suggested = LowestLoadWindow(predicted, day,
                                      backup_duration_minutes);
  if (!advice.suggested.found) {
    return Status::FailedPrecondition("no LL window on the requested day");
  }
  advice.predicted_saving =
      advice.customer_window_load - advice.suggested.average_load;
  advice.customer_window_ok =
      advice.predicted_saving <= accuracy.window_tolerance;
  return advice;
}

}  // namespace seagull
