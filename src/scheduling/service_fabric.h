/// \file service_fabric.h
/// \brief Service-fabric property store analog (§2.3).
///
/// "The algorithm stores the start time of this window as a service
/// fabric property of respective PostgreSQL and MySQL database
/// instances. This property is used by the backup service to schedule
/// backups." A thread-safe (instance, property) → value map with typed
/// helpers for the backup-window property.

#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/time.h"

namespace seagull {

/// Property name under which the scheduler publishes backup windows.
inline constexpr const char* kBackupWindowProperty = "backup_window_start";

/// \brief Per-instance property bag shared by scheduler and backup
/// service.
class ServiceFabricProperties {
 public:
  /// Sets a property on an instance.
  void Set(const std::string& instance, const std::string& property,
           const std::string& value);

  /// Reads a property; nullopt when unset.
  std::optional<std::string> Get(const std::string& instance,
                                 const std::string& property) const;

  /// Removes a property; no-op when unset.
  void Clear(const std::string& instance, const std::string& property);

  /// Typed helper: publishes the scheduled backup-window start stamp.
  void SetBackupWindowStart(const std::string& instance, MinuteStamp start);

  /// Typed helper: reads the scheduled start; nullopt when the instance
  /// is on its default window.
  std::optional<MinuteStamp> GetBackupWindowStart(
      const std::string& instance) const;

  int64_t Count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, std::string> props_;
};

}  // namespace seagull
