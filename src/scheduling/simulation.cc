#include "scheduling/simulation.h"

#include <memory>

#include "pipeline/dashboard.h"

namespace seagull {

std::vector<DueServer> DueServersForDay(const Fleet& fleet,
                                        int64_t day_index) {
  std::vector<DueServer> due;
  const MinuteStamp day_start = day_index * kMinutesPerDay;
  const MinuteStamp day_end = day_start + kMinutesPerDay;
  const int64_t week = day_index / 7;
  for (const auto& profile : fleet.servers()) {
    if (profile.backup_day != DayOfWeekOf(day_start)) continue;
    // The server must exist during the backup day.
    if (!profile.IsAliveAt(day_start) || profile.deleted_at < day_end) {
      continue;
    }
    DueServer d;
    d.server_id = profile.server_id;
    // Telemetry available at scheduling time: everything before the day.
    MinuteStamp from = std::max<MinuteStamp>(0, day_start -
                                                    4 * kMinutesPerWeek);
    d.recent_load = fleet.ObservedLoad(profile, from, day_start);
    DefaultBackupWindow(profile, week, &d.default_start, &d.default_end);
    d.backup_duration_minutes = profile.backup_duration_minutes;
    due.push_back(std::move(d));
  }
  return due;
}

Result<SimulationResult> RunSimulation(const SimulationOptions& options) {
  SimulationResult result;
  SEAGULL_ASSIGN_OR_RETURN(LakeStore lake,
                           LakeStore::OpenTemporary("simulation"));
  DocStore docs;
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 0) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }

  Pipeline pipeline = Pipeline::Standard();
  PipelineScheduler scheduler(&pipeline, &lake, &docs,
                              options.fleet.pipeline_period_weeks);
  ImpactEvaluator impact(options.accuracy, options.busy_threshold);
  // Cohort evaluators keyed by generator archetype (Figure 13(a) reports
  // per-cohort numbers).
  ImpactEvaluator cohort[4] = {
      ImpactEvaluator(options.accuracy, options.busy_threshold),
      ImpactEvaluator(options.accuracy, options.busy_threshold),
      ImpactEvaluator(options.accuracy, options.busy_threshold),
      ImpactEvaluator(options.accuracy, options.busy_threshold)};

  PipelineContext config;
  config.accuracy = options.accuracy;
  config.fleet = options.fleet;
  config.model_name = options.model_name;
  config.pool = pool.get();

  for (const auto& region_config : options.regions) {
    Fleet fleet = Fleet::Generate(region_config);
    RegionSimulationResult region_result;
    region_result.region = region_config.name;

    ServiceFabricProperties properties;
    BackupScheduler backup_scheduler(&docs, &properties);
    BackupService backup_service(&properties, options.busy_threshold);

    const int64_t first_pipeline_week = options.fleet.long_lived_weeks - 1;
    const int64_t last_week = region_config.weeks - 1;
    for (int64_t week = first_pipeline_week; week < last_week; ++week) {
      // Load extraction (§2.2): weekly per region, written to the lake.
      SEAGULL_RETURN_NOT_OK(
          lake.Put(LakeStore::TelemetryKey(region_config.name, week),
                   ExtractWeekCsvText(fleet, week)));

      // Weekly AML-pipeline run.
      auto run = scheduler.RunIfDue(region_config.name, week, config);
      region_result.runs.push_back(run.report);
      for (auto& alert : run.alerts) {
        region_result.alerts.push_back(std::move(alert));
      }
      if (!run.report.success) continue;

      // Daily online scheduling + backup execution for the next week.
      const int64_t schedule_week = week + 1;
      for (int64_t dow = 0; dow < 7; ++dow) {
        const int64_t day = schedule_week * 7 + dow;
        std::vector<DueServer> due = DueServersForDay(fleet, day);
        auto schedules =
            backup_scheduler.ScheduleDay(region_config.name, day, due);
        region_result.backups_scheduled +=
            static_cast<int64_t>(schedules.size());
        for (size_t i = 0; i < schedules.size(); ++i) {
          const ScheduledBackup& sched = schedules[i];
          if (sched.moved()) ++region_result.backups_moved;
          const ServerProfile* profile = fleet.Find(sched.server_id);
          if (profile == nullptr) continue;
          // Truth extends one day past the backup day so a stretched
          // backup can run over midnight.
          LoadSeries true_span = fleet.TrueLoad(
              *profile, day * kMinutesPerDay, (day + 2) * kMinutesPerDay);
          LoadSeries true_day =
              true_span.Slice(day * kMinutesPerDay,
                              (day + 1) * kMinutesPerDay);
          // The backup service must execute exactly the scheduled window.
          BackupExecution exec = backup_service.Execute(
              sched.server_id, day, sched.default_start,
              due[i].backup_duration_minutes, true_day);
          (void)exec;
          impact.AddBackup(sched, true_day);
          cohort[static_cast<size_t>(profile->archetype)].AddBackup(
              sched, true_day);

          // Quality-of-service accounting through the contention model.
          auto run_exec = SimulateBackup(true_span, sched.window_start,
                                         profile->database_size_mb);
          auto run_def = SimulateBackup(true_span, sched.default_start,
                                        profile->database_size_mb);
          if (run_exec.ok() && run_def.ok()) {
            ++result.engine.backups;
            result.engine.stretch_executed += run_exec->Stretch();
            result.engine.stretch_default += run_def->Stretch();
            result.engine.contended_executed += run_exec->contended_minutes;
            result.engine.contended_default += run_def->contended_minutes;
          }
        }
      }

      // Capacity accounting (Fig. 13(b)) over the scheduled week.
      for (const auto& profile : fleet.servers()) {
        MinuteStamp w_start = schedule_week * kMinutesPerWeek;
        MinuteStamp w_end = w_start + kMinutesPerWeek;
        if (!profile.IsAliveAt(w_start)) continue;
        impact.AddServerWeek(profile.server_id,
                             fleet.TrueLoad(profile, w_start, w_end));
      }
    }
    result.regions.push_back(std::move(region_result));
  }

  if (result.engine.backups > 0) {
    double n = static_cast<double>(result.engine.backups);
    result.engine.stretch_executed /= n;
    result.engine.stretch_default /= n;
    result.engine.contended_executed /= n;
    result.engine.contended_default /= n;
  }
  result.impact = impact.impact();
  result.capacity = impact.capacity();
  result.impact_stable =
      cohort[static_cast<size_t>(ServerArchetype::kStable)].impact();
  result.impact_daily =
      cohort[static_cast<size_t>(ServerArchetype::kDailyPattern)].impact();
  result.impact_weekly =
      cohort[static_cast<size_t>(ServerArchetype::kWeeklyPattern)].impact();
  result.impact_no_pattern =
      cohort[static_cast<size_t>(ServerArchetype::kNoPattern)].impact();
  Dashboard dashboard(&docs);
  result.dashboard_text = dashboard.Render() + "\n" + impact.Render();
  return result;
}

}  // namespace seagull
