#include "scheduling/model_eval.h"

#include <algorithm>
#include <chrono>

#include "forecast/model.h"
#include "metrics/ll_window.h"

namespace seagull {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

double ModelEvalResult::PctWindowsCorrect() const {
  return server_days == 0 ? 0.0
                          : 100.0 * static_cast<double>(windows_correct) /
                                static_cast<double>(server_days);
}

double ModelEvalResult::PctLoadsAccurate() const {
  return server_days == 0 ? 0.0
                          : 100.0 * static_cast<double>(loads_accurate) /
                                static_cast<double>(server_days);
}

double ModelEvalResult::PctPredictable() const {
  return servers == 0 ? 0.0
                      : 100.0 * static_cast<double>(predictable) /
                            static_cast<double>(servers);
}

ServerFilter FilterLongLived() {
  return [](const ServerProfile& p) { return !p.IsShortLived(); };
}

ServerFilter FilterArchetype(ServerArchetype archetype) {
  return [archetype](const ServerProfile& p) {
    return !p.IsShortLived() && p.archetype == archetype;
  };
}

ServerFilter FilterStableOrPattern() {
  return [](const ServerProfile& p) {
    return !p.IsShortLived() &&
           (p.archetype == ServerArchetype::kStable ||
            p.archetype == ServerArchetype::kDailyPattern ||
            p.archetype == ServerArchetype::kWeeklyPattern);
  };
}

ServerFilter FilterUnstableNoPattern() {
  return [](const ServerProfile& p) {
    return !p.IsShortLived() &&
           p.archetype == ServerArchetype::kNoPattern;
  };
}

Result<ModelEvalResult> EvaluateModelOnFleet(
    const Fleet& fleet, const std::string& model_name,
    const ModelEvalOptions& options) {
  ModelEvalResult result;
  result.model = model_name;
  SEAGULL_ASSIGN_OR_RETURN(auto probe,
                           ModelFactory::Global().Create(model_name));
  const bool trains = probe->requires_training();
  const int64_t weeks = options.fleet_config.long_lived_weeks;
  const int64_t min_history_ticks =
      options.fleet_config.min_history_days * kMinutesPerDay /
      kServerIntervalMinutes;

  for (const auto& profile : fleet.servers()) {
    if (options.filter && !options.filter(profile)) continue;
    if (!options.filter && profile.IsShortLived()) continue;
    if (options.max_servers > 0 && result.servers >= options.max_servers) {
      break;
    }

    MinuteStamp obs_end = (options.target_week) * kMinutesPerWeek;
    LoadSeries observed = fleet.ObservedLoad(
        profile, std::max<MinuteStamp>(0, obs_end - 4 * kMinutesPerWeek),
        obs_end);
    if (observed.CountPresent() < min_history_ticks) continue;

    bool all_good = true;
    int64_t evaluated_days = 0;
    for (int64_t w = options.target_week - weeks; w < options.target_week;
         ++w) {
      int64_t day = w * 7 + static_cast<int64_t>(profile.backup_day);
      MinuteStamp day_start = day * kMinutesPerDay;
      if (day_start - kMinutesPerWeek < profile.created_at) {
        // Not enough history before this backup day to train on.
        all_good = false;
        continue;
      }

      SEAGULL_ASSIGN_OR_RETURN(auto model,
                               ModelFactory::Global().Create(model_name));
      if (trains) {
        LoadSeries train =
            observed.Slice(day_start - kMinutesPerWeek, day_start);
        if (train.CountPresent() < min_history_ticks) {
          all_good = false;
          continue;
        }
        auto t0 = std::chrono::steady_clock::now();
        Status fit = model->Fit(train);
        result.train_millis += MillisSince(t0);
        if (!fit.ok()) {
          all_good = false;
          continue;
        }
      }

      LoadSeries recent = observed.Slice(observed.start(), day_start);
      auto t1 = std::chrono::steady_clock::now();
      auto predicted = model->Forecast(recent, day_start, kMinutesPerDay);
      result.inference_millis += MillisSince(t1);
      if (!predicted.ok()) {
        all_good = false;
        continue;
      }

      auto t2 = std::chrono::steady_clock::now();
      LowLoadEvaluation eval =
          EvaluateLowLoad(*predicted, observed, day,
                          profile.backup_duration_minutes, options.accuracy);
      result.eval_millis += MillisSince(t2);
      if (!eval.evaluable) {
        all_good = false;
        continue;
      }
      ++evaluated_days;
      ++result.server_days;
      if (eval.window_correct) ++result.windows_correct;
      if (eval.load_accurate) ++result.loads_accurate;
      if (!eval.window_correct || !eval.load_accurate) all_good = false;
    }
    if (evaluated_days == 0) continue;
    ++result.servers;
    if (all_good && evaluated_days == weeks) ++result.predictable;
  }
  return result;
}

}  // namespace seagull
