/// \file backup_engine.h
/// \brief Throughput model of a full backup under customer load.
///
/// The paper's motivation is that backups colliding with customer
/// activity cause "inevitable competition for resources and poor quality
/// of service during backup windows" (§1). This engine makes that
/// competition measurable in both directions: a backup progresses at a
/// rate that shrinks as customer CPU load rises, so a backup placed in a
/// busy window both *stretches* (finishes late) and *overlaps more
/// customer activity*. The impact accounting uses it to quantify what
/// moving a backup into the lowest-load window actually buys.

#pragma once

#include "common/result.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief Resource-contention model parameters.
struct BackupEngineConfig {
  /// Backup throughput on an idle server, MB per minute.
  double idle_throughput_mb_per_min = 100.0;
  /// The backup's share of throughput at customer load L (percent) is
  /// max(min_share, (1 - L/100)^contention_exponent).
  double contention_exponent = 1.0;
  /// The backup never fully starves.
  double min_share = 0.15;
  /// Give up when a backup runs longer than this.
  int64_t max_duration_minutes = 24 * 60;
};

/// \brief Outcome of one simulated backup run.
struct BackupRun {
  MinuteStamp start = 0;
  /// Completion time (exclusive); start + max duration if it timed out.
  MinuteStamp end = 0;
  /// Planned duration at idle throughput.
  double planned_minutes = 0.0;
  bool completed = false;
  /// Average customer load overlapped by the running backup.
  double avg_overlapped_load = 0.0;
  /// Customer-load minutes overlapped above `busy_threshold` (the
  /// quality-of-service damage proxy).
  double contended_minutes = 0.0;

  double actual_minutes() const {
    return static_cast<double>(end - start);
  }
  /// Slowdown factor; 1.0 means the backup ran at idle speed.
  double Stretch() const {
    return planned_minutes > 0 ? actual_minutes() / planned_minutes : 0.0;
  }
};

/// Simulates a backup of `size_mb` starting at `start` against the true
/// customer load (missing samples are treated as idle). `busy_threshold`
/// feeds `contended_minutes`.
Result<BackupRun> SimulateBackup(const LoadSeries& true_load,
                                 MinuteStamp start, double size_mb,
                                 const BackupEngineConfig& config = {},
                                 double busy_threshold = 60.0);

/// Expected idle-speed duration of a backup, in minutes.
double PlannedMinutes(double size_mb, const BackupEngineConfig& config);

}  // namespace seagull
