#include "scheduling/backup_engine.h"

#include <algorithm>
#include <cmath>

namespace seagull {

double PlannedMinutes(double size_mb, const BackupEngineConfig& config) {
  if (config.idle_throughput_mb_per_min <= 0) return 0.0;
  return size_mb / config.idle_throughput_mb_per_min;
}

Result<BackupRun> SimulateBackup(const LoadSeries& true_load,
                                 MinuteStamp start, double size_mb,
                                 const BackupEngineConfig& config,
                                 double busy_threshold) {
  if (size_mb <= 0) return Status::Invalid("backup size must be positive");
  if (config.idle_throughput_mb_per_min <= 0) {
    return Status::Invalid("idle throughput must be positive");
  }
  const int64_t interval = true_load.interval_minutes();
  if (start % interval != 0) {
    return Status::Invalid("backup start must be grid-aligned");
  }

  BackupRun run;
  run.start = start;
  run.planned_minutes = PlannedMinutes(size_mb, config);

  double remaining_mb = size_mb;
  double load_sum = 0.0;
  MinuteStamp t = start;
  const MinuteStamp deadline = start + config.max_duration_minutes;
  while (remaining_mb > 0 && t < deadline) {
    double load = true_load.ValueAtTime(t);
    if (IsMissing(load)) load = 0.0;  // no telemetry = assume idle
    double share = std::pow(std::max(0.0, 1.0 - load / 100.0),
                            config.contention_exponent);
    share = std::max(share, config.min_share);
    double rate = config.idle_throughput_mb_per_min * share;

    double tick_minutes = static_cast<double>(interval);
    double produced = rate * tick_minutes;
    if (produced >= remaining_mb) {
      // Finishes mid-tick; charge only the used fraction.
      tick_minutes = remaining_mb / rate;
      remaining_mb = 0.0;
    } else {
      remaining_mb -= produced;
    }
    load_sum += load * tick_minutes;
    if (load >= busy_threshold) run.contended_minutes += tick_minutes;
    if (remaining_mb <= 0) {
      // Round the end up to the next grid point the backup touched.
      run.end = t + static_cast<MinuteStamp>(std::ceil(tick_minutes));
      run.completed = true;
      break;
    }
    t += interval;
  }
  if (!run.completed) run.end = deadline;
  double total_minutes = run.actual_minutes();
  run.avg_overlapped_load =
      total_minutes > 0 ? load_sum / total_minutes : 0.0;
  return run;
}

}  // namespace seagull
