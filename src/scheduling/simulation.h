/// \file simulation.h
/// \brief End-to-end Seagull simulation driver.
///
/// Wires every subsystem the way production does: the fleet simulator
/// plays Azure telemetry, load extraction writes weekly region files into
/// the lake, the pipeline scheduler runs the AML-pipeline analog weekly
/// per region, the backup scheduler runs daily, the backup service
/// executes windows against ground truth, and the impact evaluator
/// produces the Figure 13 accounting.

#pragma once

#include <string>
#include <vector>

#include "pipeline/scheduler.h"
#include "scheduling/backup_engine.h"
#include "scheduling/backup_service.h"
#include "scheduling/impact.h"
#include "telemetry/emitter.h"

namespace seagull {

/// \brief Simulation configuration.
struct SimulationOptions {
  std::vector<RegionConfig> regions;
  std::string model_name = "persistent_prev_day";
  AccuracyConfig accuracy;
  FleetConfig fleet;
  /// Worker threads for the pipeline's parallel modules; 0 = sequential.
  int threads = 0;
  /// CPU percentage above which a window collides with customer load.
  double busy_threshold = 60.0;
};

/// \brief Per-region outcome of the simulation.
struct RegionSimulationResult {
  std::string region;
  std::vector<PipelineRunReport> runs;
  std::vector<Alert> alerts;
  int64_t backups_scheduled = 0;
  int64_t backups_moved = 0;
};

/// \brief Whole-simulation outcome.
struct SimulationResult {
  std::vector<RegionSimulationResult> regions;
  ImpactReport impact;
  CapacityReport capacity;
  /// Figure 13(a) is reported per cohort (daily-pattern servers, stable
  /// servers, busy servers); these split the impact by the generator's
  /// ground-truth archetype.
  ImpactReport impact_stable;
  ImpactReport impact_daily;
  ImpactReport impact_weekly;
  ImpactReport impact_no_pattern;
  /// Backup-engine quality-of-service accounting: every executed backup
  /// is also simulated through the contention model at both its executed
  /// window and its default window.
  struct EngineReport {
    int64_t backups = 0;
    double stretch_executed = 0.0;   ///< mean slowdown, executed windows
    double stretch_default = 0.0;    ///< mean slowdown, default windows
    double contended_executed = 0.0; ///< mean contended minutes/backup
    double contended_default = 0.0;
  };
  EngineReport engine;

  /// Rendered Application-Insights-style dashboard.
  std::string dashboard_text;
};

/// Runs the full multi-week, multi-region simulation.
Result<SimulationResult> RunSimulation(const SimulationOptions& options);

/// Builds the due-server list for one day from the fleet (servers alive
/// on the day whose weekly backup day matches). Exposed for tests.
std::vector<DueServer> DueServersForDay(const Fleet& fleet,
                                        int64_t day_index);

}  // namespace seagull
