/// \file day_optimizer.h
/// \brief Backup *day* optimization — the §6.1 follow-up feature.
///
/// "To further optimize backup scheduling, we will move a backup of a
/// server from its default backup day to other day of the week if the
/// load is lower and/or prediction is more accurate on another day."
/// Given the active endpoint, this module forecasts every day of the
/// scheduling week, finds each day's lowest-load window, and picks the
/// (day, window) with the lowest predicted load — holding on to the
/// default day unless another day is better by a configurable margin
/// (rescheduling has operational cost).

#pragma once

#include "pipeline/deployment.h"
#include "timeseries/window.h"

namespace seagull {

/// \brief One candidate day's best window.
struct DayCandidate {
  int64_t day_index = 0;
  WindowResult window;
};

/// \brief The optimizer's decision for one server-week.
struct DayPlan {
  /// Chosen backup day and window.
  DayCandidate chosen;
  /// The default day's best window, for comparison.
  DayCandidate default_day;
  /// True when the plan moved off the default day.
  bool moved_day = false;
  /// Predicted load saved by moving days (percentage points).
  double predicted_saving = 0.0;
  /// All evaluated candidates, ordered by day.
  std::vector<DayCandidate> candidates;
};

/// \brief Day-choice policy.
struct DayOptimizerOptions {
  /// Move off the default day only when the predicted LL-window average
  /// improves by at least this many points.
  double min_saving = 5.0;
};

/// Plans the best backup day within `week` for one server. `recent` is
/// the telemetry available at planning time (up to the start of the
/// week); days the endpoint cannot forecast are skipped.
Result<DayPlan> PlanBackupDay(const ModelEndpoint& endpoint,
                              const std::string& server_id,
                              const LoadSeries& recent, int64_t week,
                              DayOfWeek default_day,
                              int64_t backup_duration_minutes,
                              const DayOptimizerOptions& options = {});

}  // namespace seagull
