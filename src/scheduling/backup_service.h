/// \file backup_service.h
/// \brief The backup service: executes full backups in their windows on
/// the simulated fleet and records the interference with customer load.
///
/// In production the backup service reads the service-fabric property
/// written by the scheduler and runs the backup there; servers without
/// the property run at their default time. The simulator charges the
/// backup against the server's ground-truth load so impact accounting
/// (Figure 13) can compare what the customer actually experienced.

#pragma once

#include <vector>

#include "scheduling/backup_scheduler.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief What one executed backup experienced.
struct BackupExecution {
  std::string server_id;
  int64_t day_index = 0;
  MinuteStamp start = 0;
  MinuteStamp end = 0;
  /// True when the window came from the scheduler's property rather than
  /// the default.
  bool used_scheduled_window = false;
  /// Customer load observed during the backup window.
  double avg_true_load = 0.0;
  double peak_true_load = 0.0;
  /// The window collided with a peak of customer activity.
  bool collided = false;
};

/// \brief Executes backups against ground-truth load.
class BackupService {
 public:
  /// `busy_threshold` is the CPU percentage above which a window counts
  /// as colliding with customer activity (§6.2 reports busy servers with
  /// "customer load over 60% of capacity").
  explicit BackupService(const ServiceFabricProperties* properties,
                         double busy_threshold = 60.0)
      : properties_(properties), busy_threshold_(busy_threshold) {}

  /// Runs one server's backup for `day_index`. The window is the
  /// service-fabric property when present, else the default.
  BackupExecution Execute(const std::string& server_id, int64_t day_index,
                          MinuteStamp default_start,
                          int64_t backup_duration_minutes,
                          const LoadSeries& true_load) const;

 private:
  const ServiceFabricProperties* properties_;
  double busy_threshold_;
};

}  // namespace seagull
