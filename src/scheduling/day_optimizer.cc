#include "scheduling/day_optimizer.h"

#include "metrics/ll_window.h"

namespace seagull {

Result<DayPlan> PlanBackupDay(const ModelEndpoint& endpoint,
                              const std::string& server_id,
                              const LoadSeries& recent, int64_t week,
                              DayOfWeek default_day,
                              int64_t backup_duration_minutes,
                              const DayOptimizerOptions& options) {
  if (!endpoint.Serves(server_id)) {
    return Status::NotFound("endpoint has no model for " + server_id);
  }
  DayPlan plan;
  bool any = false;
  for (int64_t dow = 0; dow < 7; ++dow) {
    int64_t day = week * 7 + dow;
    MinuteStamp day_start = day * kMinutesPerDay;
    auto predicted =
        endpoint.Predict(server_id, recent, day_start, kMinutesPerDay);
    if (!predicted.ok()) continue;
    DayCandidate candidate;
    candidate.day_index = day;
    candidate.window =
        LowestLoadWindow(*predicted, day, backup_duration_minutes);
    if (!candidate.window.found) continue;
    plan.candidates.push_back(candidate);
    if (dow == static_cast<int64_t>(default_day)) {
      plan.default_day = candidate;
    }
    if (!any || candidate.window.average_load <
                    plan.chosen.window.average_load) {
      plan.chosen = candidate;
      any = true;
    }
  }
  if (!any) {
    return Status::FailedPrecondition(
        "no forecastable day in the scheduling week for " + server_id);
  }
  if (!plan.default_day.window.found) {
    // Default day could not be forecast: the cheapest day wins outright.
    plan.moved_day = plan.chosen.day_index % 7 !=
                     static_cast<int64_t>(default_day);
    return plan;
  }
  plan.predicted_saving = plan.default_day.window.average_load -
                          plan.chosen.window.average_load;
  if (plan.chosen.day_index != plan.default_day.day_index &&
      plan.predicted_saving < options.min_saving) {
    // Not worth the reschedule: stay on the default day.
    plan.chosen = plan.default_day;
    plan.predicted_saving = 0.0;
  }
  plan.moved_day = plan.chosen.day_index != plan.default_day.day_index;
  return plan;
}

}  // namespace seagull
