/// \file window_advisor.h
/// \brief Customer backup-window advisor (§6.2).
///
/// "More recently, customers can select a backup window themselves.
/// However, they may not know the best time to run a backup. ... We also
/// use the lowest load window metric to measure if backup windows
/// selected by customers correspond to predictable lowest load windows
/// and suggest windows with expected lower load instead."

#pragma once

#include "common/config.h"
#include "pipeline/deployment.h"
#include "timeseries/window.h"

namespace seagull {

/// \brief Verdict on a customer-chosen backup window.
struct WindowAdvice {
  /// Predicted average load inside the customer's window.
  double customer_window_load = 0.0;
  /// The predicted lowest-load window of the same day.
  WindowResult suggested;
  /// True when the customer's window is already within tolerance of the
  /// predicted LL window (no suggestion needed).
  bool customer_window_ok = false;
  /// Predicted load saved by taking the suggestion (points).
  double predicted_saving = 0.0;
};

/// Evaluates a customer-selected window [start, start+duration) on its
/// day against the endpoint's forecast, suggesting the predicted LL
/// window when the customer's choice is significantly worse
/// (Definition 8's tolerance, applied to predicted load).
Result<WindowAdvice> AdviseCustomerWindow(
    const ModelEndpoint& endpoint, const std::string& server_id,
    const LoadSeries& recent, MinuteStamp customer_start,
    int64_t backup_duration_minutes, const AccuracyConfig& accuracy = {});

}  // namespace seagull
