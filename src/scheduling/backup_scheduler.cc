#include "scheduling/backup_scheduler.h"

#include "common/strings.h"
#include "metrics/ll_window.h"
#include "pipeline/inference.h"

namespace seagull {

const char* ScheduleDecisionName(ScheduleDecision d) {
  switch (d) {
    case ScheduleDecision::kScheduledLowLoad:
      return "scheduled_low_load";
    case ScheduleDecision::kDefaultNotPredictable:
      return "default_not_predictable";
    case ScheduleDecision::kDefaultNoHistory:
      return "default_no_history";
    case ScheduleDecision::kDefaultForecastFailed:
      return "default_forecast_failed";
  }
  return "unknown";
}

bool BackupScheduler::IsPredictable(const std::string& region, int64_t week,
                                    const std::string& server_id) const {
  Container* container = docs_->GetContainer(kAccuracyContainer);
  auto doc = container->Get(
      region, StringPrintf("w%04lld:%s", static_cast<long long>(week),
                           server_id.c_str()));
  if (!doc.ok()) return false;
  return doc->body.GetBool("predictable").ValueOr(false);
}

std::vector<ScheduledBackup> BackupScheduler::ScheduleDay(
    const std::string& region, int64_t day_index,
    const std::vector<DueServer>& due_servers) {
  std::vector<ScheduledBackup> out;
  out.reserve(due_servers.size());

  // The accuracy documents of the week containing this day.
  const int64_t week = day_index / 7;
  auto endpoint = LoadActiveEndpoint(docs_, region);

  for (const auto& due : due_servers) {
    ScheduledBackup sched;
    sched.server_id = due.server_id;
    sched.day_index = day_index;
    sched.default_start = due.default_start;
    sched.default_end = due.default_end;
    // Fall back to the default window unless every gate passes.
    sched.window_start = due.default_start;
    sched.window_end = due.default_end;

    Container* container = docs_->GetContainer(kAccuracyContainer);
    auto acc_doc = container->Get(
        region, StringPrintf("w%04lld:%s", static_cast<long long>(week),
                             due.server_id.c_str()));
    if (!acc_doc.ok()) {
      sched.decision = ScheduleDecision::kDefaultNoHistory;
      properties_->Clear(due.server_id, kBackupWindowProperty);
      out.push_back(sched);
      continue;
    }
    if (!acc_doc->body.GetBool("predictable").ValueOr(false)) {
      sched.decision = ScheduleDecision::kDefaultNotPredictable;
      properties_->Clear(due.server_id, kBackupWindowProperty);
      out.push_back(sched);
      continue;
    }
    // Optionally serve from the pipeline's stored predictions (§2.2:
    // "the predictions are input to the backup scheduling algorithm");
    // otherwise — or when none is stored — query the endpoint live with
    // telemetry through yesterday.
    WindowResult window;
    if (options_.prefer_stored_predictions) {
      Container* predictions = docs_->GetContainer(kPredictionsContainer);
      auto stored = predictions->Get(
          region, InferenceModule::PredictionId(day_index, due.server_id));
      if (stored.ok() &&
          static_cast<int64_t>(
              stored->body.GetNumber("duration_minutes").ValueOr(0)) ==
              due.backup_duration_minutes) {
        window.found = true;
        window.start = static_cast<MinuteStamp>(
            stored->body.GetNumber("window_start").ValueOr(0));
        window.duration_minutes = due.backup_duration_minutes;
        window.average_load =
            stored->body.GetNumber("predicted_avg_load").ValueOr(0.0);
      }
    }

    if (!window.found) {
      if (!endpoint.ok() || !endpoint->Serves(due.server_id)) {
        sched.decision = ScheduleDecision::kDefaultForecastFailed;
        properties_->Clear(due.server_id, kBackupWindowProperty);
        out.push_back(sched);
        continue;
      }
      // Live path: predict tomorrow and pick its lowest-load window
      // (Definition 7).
      MinuteStamp day_start = day_index * kMinutesPerDay;
      auto predicted = endpoint->Predict(due.server_id, due.recent_load,
                                         day_start, kMinutesPerDay);
      if (predicted.ok()) {
        window = LowestLoadWindow(*predicted, day_index,
                                  due.backup_duration_minutes);
      }
    }
    if (!window.found) {
      sched.decision = ScheduleDecision::kDefaultForecastFailed;
      properties_->Clear(due.server_id, kBackupWindowProperty);
      out.push_back(sched);
      continue;
    }

    sched.decision = ScheduleDecision::kScheduledLowLoad;
    sched.window_start = window.start;
    sched.window_end = window.start + due.backup_duration_minutes;
    properties_->SetBackupWindowStart(due.server_id, window.start);
    out.push_back(sched);
  }
  return out;
}

}  // namespace seagull
