/// \file impact.h
/// \brief Impact accounting for Figure 13: where backups landed relative
/// to the true lowest-load windows (13a) and how much CPU capacity the
/// fleet actually uses (13b).

#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/config.h"
#include "scheduling/backup_scheduler.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief One backup's placement relative to the day's true LL window.
struct BackupPlacement {
  std::string server_id;
  int64_t day_index = 0;
  ScheduleDecision decision = ScheduleDecision::kDefaultNoHistory;
  /// Average true load in the executed window / the default window / the
  /// day's true LL window.
  double avg_true_executed = 0.0;
  double avg_true_default = 0.0;
  double avg_true_ll = 0.0;
  /// The executed (resp. default) window is within tolerance of the true
  /// LL window (Definition 8 applied to window placement).
  bool executed_is_ll = false;
  bool default_is_ll = false;
  bool moved = false;
};

/// \brief Figure 13(a)-style aggregate for one cohort of backups.
struct ImpactReport {
  int64_t backups = 0;
  /// Moved off a default window that collided with activity onto a
  /// correctly chosen LL window.
  int64_t moved_to_ll = 0;
  /// Default window already coincided with an LL window.
  int64_t default_already_ll = 0;
  /// Executed window was not a correctly chosen LL window.
  int64_t incorrect = 0;
  /// Moved, correct, and the default was also fine — no customer-visible
  /// change.
  int64_t moved_neutral = 0;

  /// Busy-server cohort (§6.2: customer load over the busy threshold).
  int64_t busy_backups = 0;
  int64_t busy_default_collisions = 0;
  int64_t busy_executed_collisions = 0;

  /// Minutes of backup time moved out of measurably higher load — the
  /// "hours of improved customer experience" figure.
  double improved_minutes = 0.0;

  double FractionMoved() const;
  double FractionDefaultLl() const;
  double FractionIncorrect() const;
  /// Fraction of busy-cohort collisions avoided by scheduling.
  double BusyCollisionsAvoided() const;
};

/// \brief Figure 13(b): fleet capacity-utilization histogram.
struct CapacityReport {
  /// Bucket k counts servers whose weekly max CPU lies in
  /// [10k, 10(k+1)) percent; the last bucket is [90, 100].
  std::array<int64_t, 10> histogram = {};
  int64_t servers = 0;
  int64_t at_capacity = 0;  ///< weekly max reached >= capacity_epsilon

  double FractionAtCapacity() const;
};

/// \brief Accumulates placements into the Figure 13 reports.
class ImpactEvaluator {
 public:
  explicit ImpactEvaluator(AccuracyConfig accuracy = {},
                           double busy_threshold = 60.0,
                           double capacity_epsilon = 99.5)
      : accuracy_(accuracy), busy_threshold_(busy_threshold),
        capacity_epsilon_(capacity_epsilon) {}

  /// Classifies one scheduled backup against ground truth and folds it
  /// into the report. Returns the placement for inspection.
  BackupPlacement AddBackup(const ScheduledBackup& backup,
                            const LoadSeries& true_load);

  /// Adds one server's week of true load to the capacity report.
  void AddServerWeek(const std::string& server_id,
                     const LoadSeries& true_week_load);

  const ImpactReport& impact() const { return impact_; }
  const CapacityReport& capacity() const { return capacity_; }

  /// Renders both reports as a text block.
  std::string Render() const;

 private:
  AccuracyConfig accuracy_;
  double busy_threshold_;
  double capacity_epsilon_;
  ImpactReport impact_;
  CapacityReport capacity_;
};

}  // namespace seagull
