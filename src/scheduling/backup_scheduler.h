/// \file backup_scheduler.h
/// \brief The backup scheduling algorithm (§2.3) — the use-case-specific
/// online component.
///
/// Runs daily (inside the MDS runner in production). For every server due
/// for a full backup the next day it checks the three-week predictability
/// verdict produced by the pipeline; for predictable servers it queries
/// the model endpoint for the next day's load, picks the lowest-load
/// window long enough for a full backup, and publishes the window start
/// as a service-fabric property. Unpredictable or too-young servers keep
/// their default window.

#pragma once

#include <functional>
#include <vector>

#include "pipeline/accuracy.h"
#include "pipeline/deployment.h"
#include "scheduling/service_fabric.h"

namespace seagull {

/// \brief Why a server ended up on its window.
enum class ScheduleDecision : int8_t {
  /// Predictable; moved onto the predicted LL window.
  kScheduledLowLoad = 0,
  /// Not predictable for three weeks; default window kept (§2.3).
  kDefaultNotPredictable = 1,
  /// Too young / absent from accuracy records; default window kept.
  kDefaultNoHistory = 2,
  /// Endpoint could not produce a usable forecast; default kept.
  kDefaultForecastFailed = 3,
};

const char* ScheduleDecisionName(ScheduleDecision d);

/// \brief One scheduled backup for one server-day.
struct ScheduledBackup {
  std::string server_id;
  int64_t day_index = 0;
  MinuteStamp window_start = 0;
  MinuteStamp window_end = 0;
  MinuteStamp default_start = 0;
  MinuteStamp default_end = 0;
  ScheduleDecision decision = ScheduleDecision::kDefaultNoHistory;

  bool moved() const {
    return decision == ScheduleDecision::kScheduledLowLoad &&
           window_start != default_start;
  }
};

/// \brief Inputs describing one server due for backup tomorrow.
struct DueServer {
  std::string server_id;
  /// Telemetry available at scheduling time (up to the end of today).
  LoadSeries recent_load;
  MinuteStamp default_start = 0;
  MinuteStamp default_end = 0;
  int64_t backup_duration_minutes = 0;
};

/// \brief Scheduling policy knobs.
struct BackupSchedulerOptions {
  /// Use the inference module's stored predictions (computed at weekly
  /// pipeline time) before querying the endpoint live. The live query
  /// conditions on telemetry through yesterday and is therefore fresher;
  /// stored predictions avoid any model evaluation on the serving path.
  bool prefer_stored_predictions = false;
};

/// \brief The daily scheduling pass.
class BackupScheduler {
 public:
  BackupScheduler(DocStore* docs, ServiceFabricProperties* properties,
                  BackupSchedulerOptions options = {})
      : docs_(docs), properties_(properties), options_(options) {}

  /// Schedules every due server for `day_index` using the region's
  /// active endpoint and the accuracy documents of the covering week.
  std::vector<ScheduledBackup> ScheduleDay(
      const std::string& region, int64_t day_index,
      const std::vector<DueServer>& due_servers);

 private:
  /// Looks up the pipeline's predictability verdict for a server.
  bool IsPredictable(const std::string& region, int64_t week,
                     const std::string& server_id) const;

  DocStore* docs_;
  ServiceFabricProperties* properties_;
  BackupSchedulerOptions options_;
};

}  // namespace seagull
