/// \file model_eval.h
/// \brief The §5.3 experimental protocol as a reusable harness.
///
/// For each server: take four weeks of telemetry, and for each of the
/// three weekly backup days preceding the target week, train the model on
/// the week before that day (§5.3.1), forecast the day, and apply the §4
/// joint metrics. Reports the three paper metrics — correctly chosen LL
/// windows, accurately predicted LL-window load, and predictable servers —
/// plus wall-clock split into training / inference / metric evaluation
/// (Figures 11(a)–(d)).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "telemetry/fleet.h"

namespace seagull {

/// \brief Aggregate outcome of evaluating one model family on a cohort.
struct ModelEvalResult {
  std::string model;
  int64_t servers = 0;       ///< servers with enough history to evaluate
  int64_t server_days = 0;   ///< backup-day evaluations performed
  int64_t windows_correct = 0;
  int64_t loads_accurate = 0;
  int64_t predictable = 0;

  double train_millis = 0.0;
  double inference_millis = 0.0;
  double eval_millis = 0.0;

  double PctWindowsCorrect() const;
  double PctLoadsAccurate() const;
  double PctPredictable() const;
};

/// Filter over fleet profiles; return false to exclude a server.
using ServerFilter = std::function<bool(const ServerProfile&)>;

/// \brief Evaluation setup.
struct ModelEvalOptions {
  /// The week whose preceding `fleet.long_lived_weeks` backup days are
  /// evaluated (the scheduling week).
  int64_t target_week = 3;
  AccuracyConfig accuracy;
  FleetConfig fleet_config;
  /// Keep only matching servers; empty keeps all long-lived ones.
  ServerFilter filter;
  /// Cap evaluated servers (expensive baselines); 0 = no cap.
  int64_t max_servers = 0;
};

/// Runs the protocol for one model family over a fleet.
Result<ModelEvalResult> EvaluateModelOnFleet(
    const Fleet& fleet, const std::string& model_name,
    const ModelEvalOptions& options = {});

/// Convenience filters for the paper's cohorts.
ServerFilter FilterLongLived();
ServerFilter FilterArchetype(ServerArchetype archetype);
ServerFilter FilterStableOrPattern();
ServerFilter FilterUnstableNoPattern();

}  // namespace seagull
