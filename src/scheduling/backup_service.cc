#include "scheduling/backup_service.h"

#include <algorithm>

namespace seagull {

BackupExecution BackupService::Execute(const std::string& server_id,
                                       int64_t day_index,
                                       MinuteStamp default_start,
                                       int64_t backup_duration_minutes,
                                       const LoadSeries& true_load) const {
  BackupExecution exec;
  exec.server_id = server_id;
  exec.day_index = day_index;

  auto scheduled = properties_->GetBackupWindowStart(server_id);
  // Only honor a property that targets this backup day; a stale property
  // from a previous week must not leak into today's run.
  if (scheduled.has_value() && DayIndex(*scheduled) == day_index) {
    exec.start = *scheduled;
    exec.used_scheduled_window = true;
  } else {
    exec.start = default_start;
    exec.used_scheduled_window = false;
  }
  exec.end = exec.start + backup_duration_minutes;

  LoadSeries window = true_load.Slice(exec.start, exec.end);
  double avg = window.Mean();
  double peak = window.Max();
  exec.avg_true_load = IsMissing(avg) ? 0.0 : avg;
  exec.peak_true_load = IsMissing(peak) ? 0.0 : peak;
  exec.collided = exec.peak_true_load >= busy_threshold_;
  return exec;
}

}  // namespace seagull
