#include "scheduling/impact.h"

#include <algorithm>

#include "common/strings.h"
#include "metrics/ll_window.h"

namespace seagull {

double ImpactReport::FractionMoved() const {
  return backups == 0 ? 0.0
                      : static_cast<double>(moved_to_ll) /
                            static_cast<double>(backups);
}

double ImpactReport::FractionDefaultLl() const {
  return backups == 0 ? 0.0
                      : static_cast<double>(default_already_ll) /
                            static_cast<double>(backups);
}

double ImpactReport::FractionIncorrect() const {
  return backups == 0 ? 0.0
                      : static_cast<double>(incorrect) /
                            static_cast<double>(backups);
}

double ImpactReport::BusyCollisionsAvoided() const {
  if (busy_default_collisions == 0) return 0.0;
  return static_cast<double>(busy_default_collisions -
                             busy_executed_collisions) /
         static_cast<double>(busy_default_collisions);
}

double CapacityReport::FractionAtCapacity() const {
  return servers == 0 ? 0.0
                      : static_cast<double>(at_capacity) /
                            static_cast<double>(servers);
}

BackupPlacement ImpactEvaluator::AddBackup(const ScheduledBackup& backup,
                                           const LoadSeries& true_load) {
  BackupPlacement p;
  p.server_id = backup.server_id;
  p.day_index = backup.day_index;
  p.decision = backup.decision;
  p.moved = backup.moved();

  const int64_t duration = backup.window_end - backup.window_start;
  WindowResult ll = LowestLoadWindow(true_load, backup.day_index, duration);
  double avg_exec =
      true_load.MeanInRange(backup.window_start, backup.window_end);
  double avg_def =
      true_load.MeanInRange(backup.default_start, backup.default_end);
  p.avg_true_executed = IsMissing(avg_exec) ? 0.0 : avg_exec;
  p.avg_true_default = IsMissing(avg_def) ? 0.0 : avg_def;
  p.avg_true_ll = ll.found ? ll.average_load : 0.0;
  if (ll.found) {
    p.executed_is_ll =
        p.avg_true_executed - p.avg_true_ll <= accuracy_.window_tolerance;
    p.default_is_ll =
        p.avg_true_default - p.avg_true_ll <= accuracy_.window_tolerance;
  }

  ++impact_.backups;
  if (!p.executed_is_ll) {
    ++impact_.incorrect;
  } else if (p.moved && !p.default_is_ll) {
    ++impact_.moved_to_ll;
    impact_.improved_minutes += static_cast<double>(duration);
  } else if (p.default_is_ll) {
    ++impact_.default_already_ll;
  } else {
    ++impact_.moved_neutral;
  }

  // Busy cohort: the day saw customer load above the busy threshold. A
  // window "collides with a peak of customer activity" when any load in
  // it exceeds that threshold — placement inside the day's valleys is
  // exactly what the scheduler can influence.
  double day_peak =
      true_load
          .Slice(backup.day_index * kMinutesPerDay,
                 (backup.day_index + 1) * kMinutesPerDay)
          .Max();
  if (!IsMissing(day_peak) && day_peak >= busy_threshold_) {
    ++impact_.busy_backups;
    double peak_default =
        true_load.Slice(backup.default_start, backup.default_end).Max();
    double peak_exec =
        true_load.Slice(backup.window_start, backup.window_end).Max();
    if (!IsMissing(peak_default) && peak_default >= busy_threshold_) {
      ++impact_.busy_default_collisions;
    }
    if (!IsMissing(peak_exec) && peak_exec >= busy_threshold_) {
      ++impact_.busy_executed_collisions;
    }
  }
  return p;
}

void ImpactEvaluator::AddServerWeek(const std::string& server_id,
                                    const LoadSeries& true_week_load) {
  (void)server_id;
  double peak = true_week_load.Max();
  if (IsMissing(peak)) return;
  ++capacity_.servers;
  int bucket = std::clamp(static_cast<int>(peak / 10.0), 0, 9);
  ++capacity_.histogram[static_cast<size_t>(bucket)];
  if (peak >= capacity_epsilon_) ++capacity_.at_capacity;
}

std::string ImpactEvaluator::Render() const {
  std::string out;
  out += StringPrintf(
      "Backups: %lld | moved-to-LL %.1f%% | default-already-LL %.1f%% | "
      "incorrect %.1f%% | moved-neutral %lld | improved hours %.1f\n",
      static_cast<long long>(impact_.backups),
      100.0 * impact_.FractionMoved(), 100.0 * impact_.FractionDefaultLl(),
      100.0 * impact_.FractionIncorrect(),
      static_cast<long long>(impact_.moved_neutral),
      impact_.improved_minutes / 60.0);
  out += StringPrintf(
      "Busy cohort: %lld backups | default collisions %lld | executed "
      "collisions %lld | avoided %.1f%%\n",
      static_cast<long long>(impact_.busy_backups),
      static_cast<long long>(impact_.busy_default_collisions),
      static_cast<long long>(impact_.busy_executed_collisions),
      100.0 * impact_.BusyCollisionsAvoided());
  out += StringPrintf("Capacity: %lld servers | at capacity %.1f%%\n",
                      static_cast<long long>(capacity_.servers),
                      100.0 * capacity_.FractionAtCapacity());
  for (size_t k = 0; k < capacity_.histogram.size(); ++k) {
    out += StringPrintf("  max CPU %3zu-%3zu%%: %lld\n", k * 10, k * 10 + 10,
                        static_cast<long long>(capacity_.histogram[k]));
  }
  return out;
}

}  // namespace seagull
