/// \file seagull.h
/// \brief Umbrella header: the whole Seagull public API.
///
/// Include this to get every subsystem; fine-grained headers remain the
/// better choice inside the library itself.

#pragma once

// Foundations.
#include "common/config.h"    // IWYU pragma: export
#include "common/csv.h"       // IWYU pragma: export
#include "common/fault.h"     // IWYU pragma: export
#include "common/json.h"      // IWYU pragma: export
#include "common/logging.h"   // IWYU pragma: export
#include "common/random.h"    // IWYU pragma: export
#include "common/result.h"    // IWYU pragma: export
#include "common/retry.h"     // IWYU pragma: export
#include "common/status.h"    // IWYU pragma: export
#include "common/strings.h"   // IWYU pragma: export
#include "common/time.h"      // IWYU pragma: export

// Time series.
#include "timeseries/resample.h"  // IWYU pragma: export
#include "timeseries/series.h"    // IWYU pragma: export
#include "timeseries/stats.h"     // IWYU pragma: export
#include "timeseries/window.h"    // IWYU pragma: export

// Telemetry (simulator + adapters).
#include "telemetry/azure_trace.h"     // IWYU pragma: export
#include "telemetry/emitter.h"         // IWYU pragma: export
#include "telemetry/fleet.h"           // IWYU pragma: export
#include "telemetry/load_generator.h"  // IWYU pragma: export
#include "telemetry/records.h"         // IWYU pragma: export
#include "telemetry/server_profile.h"  // IWYU pragma: export
#include "telemetry/signals.h"         // IWYU pragma: export

// Storage.
#include "store/doc_store.h"        // IWYU pragma: export
#include "store/lake_store.h"       // IWYU pragma: export
#include "store/resilient_store.h"  // IWYU pragma: export

// Parallelism.
#include "parallel/thread_pool.h"  // IWYU pragma: export

// Forecast models.
#include "forecast/additive.h"     // IWYU pragma: export
#include "forecast/arima.h"        // IWYU pragma: export
#include "forecast/feedforward.h"  // IWYU pragma: export
#include "forecast/linalg.h"       // IWYU pragma: export
#include "forecast/model.h"        // IWYU pragma: export
#include "forecast/persistent.h"   // IWYU pragma: export
#include "forecast/routed.h"       // IWYU pragma: export
#include "forecast/ssa.h"          // IWYU pragma: export

// Metrics (Definitions 1-10).
#include "metrics/bucket_ratio.h"  // IWYU pragma: export
#include "metrics/classify.h"      // IWYU pragma: export
#include "metrics/ll_window.h"     // IWYU pragma: export
#include "metrics/predictable.h"   // IWYU pragma: export
#include "metrics/standard.h"      // IWYU pragma: export

// Pipeline.
#include "pipeline/accuracy.h"    // IWYU pragma: export
#include "pipeline/dashboard.h"   // IWYU pragma: export
#include "pipeline/deployment.h"  // IWYU pragma: export
#include "pipeline/features.h"    // IWYU pragma: export
#include "pipeline/incidents.h"   // IWYU pragma: export
#include "pipeline/inference.h"   // IWYU pragma: export
#include "pipeline/ingestion.h"   // IWYU pragma: export
#include "pipeline/pipeline.h"    // IWYU pragma: export
#include "pipeline/scheduler.h"   // IWYU pragma: export
#include "pipeline/serving.h"     // IWYU pragma: export
#include "pipeline/tracking.h"    // IWYU pragma: export
#include "pipeline/training.h"    // IWYU pragma: export
#include "pipeline/validation.h"  // IWYU pragma: export

// Scheduling (the use case).
#include "scheduling/backup_engine.h"     // IWYU pragma: export
#include "scheduling/backup_scheduler.h"  // IWYU pragma: export
#include "scheduling/backup_service.h"    // IWYU pragma: export
#include "scheduling/day_optimizer.h"     // IWYU pragma: export
#include "scheduling/impact.h"            // IWYU pragma: export
#include "scheduling/model_eval.h"        // IWYU pragma: export
#include "scheduling/service_fabric.h"    // IWYU pragma: export
#include "scheduling/simulation.h"        // IWYU pragma: export
#include "scheduling/window_advisor.h"    // IWYU pragma: export

// Auto-scale (Appendix A).
#include "autoscale/classify.h"     // IWYU pragma: export
#include "autoscale/eval.h"         // IWYU pragma: export
#include "autoscale/overbooking.h"  // IWYU pragma: export
#include "autoscale/policy.h"       // IWYU pragma: export
#include "autoscale/sql_fleet.h"    // IWYU pragma: export
