/// \file resample.h
/// \brief Granularity conversion and gap repair for load series.

#pragma once

#include "timeseries/series.h"

namespace seagull {

/// Downsamples to a coarser interval by averaging present samples within
/// each output bucket (e.g. 5-minute server telemetry to the 15-minute
/// SQL-database granularity of Appendix A). The new interval must be a
/// multiple of the old one and divide a day.
Result<LoadSeries> Downsample(const LoadSeries& series,
                              int64_t new_interval_minutes);

/// Fills missing samples by linear interpolation between the nearest
/// present neighbours; leading/trailing gaps are filled with the nearest
/// present value. A series with no present samples is returned unchanged.
LoadSeries InterpolateMissing(const LoadSeries& series);

/// Clamps all present samples into [lo, hi] (CPU load is a percentage).
LoadSeries ClampValues(const LoadSeries& series, double lo, double hi);

}  // namespace seagull
