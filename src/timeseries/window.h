/// \file window.h
/// \brief Sliding-window search over load series.
///
/// The backup scheduler needs the contiguous interval of a given duration
/// with the minimal average load within a day (Definition 7). This module
/// provides that search as a generic O(n) prefix-sum sweep.

#pragma once

#include "timeseries/series.h"

namespace seagull {

/// \brief A window found by `FindMinAverageWindow`.
struct WindowResult {
  /// Start stamp of the window.
  MinuteStamp start = 0;
  /// Duration of the window in minutes.
  int64_t duration_minutes = 0;
  /// Average load over the window's present samples.
  double average_load = 0.0;
  /// True when a window was found (the series covered >= one window).
  bool found = false;

  MinuteStamp end() const { return start + duration_minutes; }
};

/// Finds the length-`duration_minutes` window with minimal average load in
/// [series.start(), series.end()). Windows are evaluated at every grid
/// position; windows containing more than `max_missing_fraction` missing
/// samples are skipped. Ties resolve to the earliest window.
WindowResult FindMinAverageWindow(const LoadSeries& series,
                                  int64_t duration_minutes,
                                  double max_missing_fraction = 0.0);

/// As above but restricted to windows fully inside [from, to).
WindowResult FindMinAverageWindowInRange(const LoadSeries& series,
                                         MinuteStamp from, MinuteStamp to,
                                         int64_t duration_minutes,
                                         double max_missing_fraction = 0.0);

/// Average of present samples in [from, from + duration); missing if the
/// interval has no present samples.
double WindowAverage(const LoadSeries& series, MinuteStamp from,
                     int64_t duration_minutes);

}  // namespace seagull
