#include "timeseries/series.h"

#include <algorithm>

#include "common/strings.h"

namespace seagull {

Result<LoadSeries> LoadSeries::Make(MinuteStamp start,
                                    int64_t interval_minutes,
                                    std::vector<double> values) {
  if (interval_minutes <= 0 || kMinutesPerDay % interval_minutes != 0) {
    return Status::Invalid(StringPrintf(
        "interval %lld does not divide a day",
        static_cast<long long>(interval_minutes)));
  }
  if (start % interval_minutes != 0) {
    return Status::Invalid("series start is not aligned to the interval");
  }
  return LoadSeries(start, interval_minutes, std::move(values));
}

Result<LoadSeries> LoadSeries::MakeEmpty(MinuteStamp start,
                                         int64_t interval_minutes, int64_t n) {
  if (n < 0) return Status::Invalid("negative series length");
  return Make(start, interval_minutes,
              std::vector<double>(static_cast<size_t>(n), kMissingValue));
}

int64_t LoadSeries::IndexOf(MinuteStamp t) const {
  if (t < start_ || t >= end()) return -1;
  if ((t - start_) % interval_ != 0) return -1;
  return (t - start_) / interval_;
}

double LoadSeries::ValueAtTime(MinuteStamp t) const {
  int64_t i = IndexOf(t);
  return i < 0 ? kMissingValue : ValueAt(i);
}

LoadSeries LoadSeries::Slice(MinuteStamp from, MinuteStamp to) const {
  // Align the requested range onto this series' grid.
  MinuteStamp lo = std::max(from, start_);
  MinuteStamp hi = std::min(to, end());
  if (lo % interval_ != 0) lo += interval_ - (lo % interval_ + interval_) % interval_;
  if (lo >= hi) {
    return LoadSeries(std::max(from, start_) / interval_ * interval_,
                      interval_, {});
  }
  size_t a = static_cast<size_t>((lo - start_) / interval_);
  size_t b = static_cast<size_t>((hi - start_) / interval_);
  return LoadSeries(lo, interval_,
                    std::vector<double>(values_.begin() + a,
                                        values_.begin() + b));
}

LoadSeries LoadSeries::SliceDay(int64_t day_index) const {
  return Slice(day_index * kMinutesPerDay, (day_index + 1) * kMinutesPerDay);
}

LoadSeries LoadSeries::ShiftedTo(MinuteStamp new_start) const {
  LoadSeries out = *this;
  // Keep alignment: snap to the grid.
  out.start_ = new_start / interval_ * interval_;
  return out;
}

int64_t LoadSeries::CountPresent() const {
  int64_t n = 0;
  for (double v : values_) {
    if (!IsMissing(v)) ++n;
  }
  return n;
}

bool LoadSeries::CoversComplete(MinuteStamp from, MinuteStamp to) const {
  if (from < start_ || to > end()) return false;
  for (MinuteStamp t = from; t < to; t += interval_) {
    int64_t i = IndexOf(t);
    if (i < 0 || MissingAt(i)) return false;
  }
  return true;
}

double LoadSeries::Mean() const { return MeanInRange(start_, end()); }

double LoadSeries::Min() const {
  double m = kMissingValue;
  for (double v : values_) {
    if (IsMissing(v)) continue;
    if (IsMissing(m) || v < m) m = v;
  }
  return m;
}

double LoadSeries::Max() const {
  double m = kMissingValue;
  for (double v : values_) {
    if (IsMissing(v)) continue;
    if (IsMissing(m) || v > m) m = v;
  }
  return m;
}

double LoadSeries::MeanInRange(MinuteStamp from, MinuteStamp to) const {
  double sum = 0.0;
  int64_t n = 0;
  MinuteStamp lo = std::max(from, start_);
  MinuteStamp hi = std::min(to, end());
  for (MinuteStamp t = lo; t < hi; t += interval_) {
    int64_t i = IndexOf(t);
    if (i < 0) continue;
    double v = ValueAt(i);
    if (IsMissing(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? kMissingValue : sum / static_cast<double>(n);
}

Status LoadSeries::MergeFrom(const LoadSeries& other) {
  if (other.empty()) return Status::OK();
  if (empty()) {
    *this = other;
    return Status::OK();
  }
  if (other.interval_ != interval_) {
    return Status::Invalid("cannot merge series with different intervals");
  }
  MinuteStamp lo = std::min(start_, other.start_);
  MinuteStamp hi = std::max(end(), other.end());
  std::vector<double> merged(static_cast<size_t>((hi - lo) / interval_),
                             kMissingValue);
  for (int64_t i = 0; i < size(); ++i) {
    merged[static_cast<size_t>((TimeAt(i) - lo) / interval_)] = ValueAt(i);
  }
  for (int64_t i = 0; i < other.size(); ++i) {
    double v = other.ValueAt(i);
    if (!IsMissing(v)) {
      merged[static_cast<size_t>((other.TimeAt(i) - lo) / interval_)] = v;
    }
  }
  start_ = lo;
  values_ = std::move(merged);
  return Status::OK();
}

}  // namespace seagull
