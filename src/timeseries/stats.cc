#include "timeseries/stats.h"

#include <algorithm>
#include <cmath>

namespace seagull {

SeriesSummary Summarize(const LoadSeries& series) {
  SeriesSummary s;
  double sum = 0.0, sum_sq = 0.0;
  bool any = false;
  for (int64_t i = 0; i < series.size(); ++i) {
    double v = series.ValueAt(i);
    if (IsMissing(v)) {
      ++s.missing;
      continue;
    }
    ++s.count;
    sum += v;
    sum_sq += v * v;
    if (!any || v < s.min) s.min = v;
    if (!any || v > s.max) s.max = v;
    any = true;
  }
  if (s.count > 0) {
    s.mean = sum / static_cast<double>(s.count);
    double var = sum_sq / static_cast<double>(s.count) - s.mean * s.mean;
    s.stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
  return s;
}

double StdDev(const std::vector<double>& values) {
  double sum = 0.0, sum_sq = 0.0;
  int64_t n = 0;
  for (double v : values) {
    if (IsMissing(v)) continue;
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  if (n < 2) return 0.0;
  double mean = sum / static_cast<double>(n);
  double var = sum_sq / static_cast<double>(n) - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double MeanOf(const std::vector<double>& values) {
  double sum = 0.0;
  int64_t n = 0;
  for (double v : values) {
    if (IsMissing(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? kMissingValue : sum / static_cast<double>(n);
}

double Quantile(std::vector<double> values, double q) {
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return IsMissing(v); }),
               values.end());
  if (values.empty()) return kMissingValue;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Result<LoadSeries> ElementwiseMean(const std::vector<LoadSeries>& days,
                                   MinuteStamp out_start) {
  if (days.empty()) return Status::Invalid("no day slices to average");
  const int64_t n = days[0].size();
  const int64_t interval = days[0].interval_minutes();
  for (const auto& d : days) {
    if (d.size() != n || d.interval_minutes() != interval) {
      return Status::Invalid("day slices are not aligned");
    }
  }
  std::vector<double> out(static_cast<size_t>(n), kMissingValue);
  for (int64_t i = 0; i < n; ++i) {
    double sum = 0.0;
    int64_t cnt = 0;
    for (const auto& d : days) {
      double v = d.ValueAt(i);
      if (IsMissing(v)) continue;
      sum += v;
      ++cnt;
    }
    if (cnt > 0) out[static_cast<size_t>(i)] = sum / static_cast<double>(cnt);
  }
  return LoadSeries::Make(out_start, interval, std::move(out));
}

}  // namespace seagull
