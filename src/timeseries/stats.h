/// \file stats.h
/// \brief Descriptive statistics over load series and raw samples.

#pragma once

#include <vector>

#include "timeseries/series.h"

namespace seagull {

/// \brief Summary of a sample set (missing values excluded).
struct SeriesSummary {
  int64_t count = 0;
  int64_t missing = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes a full summary in one pass.
SeriesSummary Summarize(const LoadSeries& series);

/// Population standard deviation of present samples (0 for < 2 samples).
double StdDev(const std::vector<double>& values);

/// Mean of present samples; missing if none.
double MeanOf(const std::vector<double>& values);

/// Linear-interpolated quantile `q` in [0,1] of present samples;
/// missing if none present.
double Quantile(std::vector<double> values, double q);

/// Element-wise mean of several aligned day slices: output[i] is the mean
/// of input[k].ValueAt(i) over all k where present. All inputs must have
/// equal size and interval. Used by the previous-week-average forecast.
Result<LoadSeries> ElementwiseMean(const std::vector<LoadSeries>& days,
                                   MinuteStamp out_start);

}  // namespace seagull
