#include "timeseries/resample.h"

#include <algorithm>

namespace seagull {

Result<LoadSeries> Downsample(const LoadSeries& series,
                              int64_t new_interval_minutes) {
  const int64_t old_interval = series.interval_minutes();
  if (new_interval_minutes % old_interval != 0) {
    return Status::Invalid("new interval must be a multiple of the old one");
  }
  if (kMinutesPerDay % new_interval_minutes != 0) {
    return Status::Invalid("new interval must divide a day");
  }
  if (new_interval_minutes == old_interval) return series;
  const int64_t factor = new_interval_minutes / old_interval;

  // Align output start down to the new grid.
  MinuteStamp out_start = series.start();
  if (out_start % new_interval_minutes != 0) {
    out_start -= (out_start % new_interval_minutes + new_interval_minutes) %
                 new_interval_minutes;
  }
  const int64_t out_n =
      (series.end() - out_start + new_interval_minutes - 1) /
      new_interval_minutes;
  std::vector<double> out(static_cast<size_t>(out_n), kMissingValue);
  for (int64_t j = 0; j < out_n; ++j) {
    MinuteStamp bucket_start = out_start + j * new_interval_minutes;
    double sum = 0.0;
    int64_t cnt = 0;
    for (int64_t k = 0; k < factor; ++k) {
      double v = series.ValueAtTime(bucket_start + k * old_interval);
      if (IsMissing(v)) continue;
      sum += v;
      ++cnt;
    }
    if (cnt > 0) out[static_cast<size_t>(j)] = sum / static_cast<double>(cnt);
  }
  return LoadSeries::Make(out_start, new_interval_minutes, std::move(out));
}

LoadSeries InterpolateMissing(const LoadSeries& series) {
  LoadSeries out = series;
  const int64_t n = out.size();
  int64_t prev = -1;  // index of last present sample
  for (int64_t i = 0; i < n; ++i) {
    if (out.MissingAt(i)) continue;
    if (prev < 0) {
      // Leading gap: backfill with the first present value.
      for (int64_t j = 0; j < i; ++j) out.SetValue(j, out.ValueAt(i));
    } else if (prev + 1 < i) {
      double lo = out.ValueAt(prev);
      double hi = out.ValueAt(i);
      for (int64_t j = prev + 1; j < i; ++j) {
        double frac = static_cast<double>(j - prev) /
                      static_cast<double>(i - prev);
        out.SetValue(j, lo + (hi - lo) * frac);
      }
    }
    prev = i;
  }
  if (prev >= 0) {
    for (int64_t j = prev + 1; j < n; ++j) out.SetValue(j, out.ValueAt(prev));
  }
  return out;
}

LoadSeries ClampValues(const LoadSeries& series, double lo, double hi) {
  LoadSeries out = series;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out.MissingAt(i)) continue;
    out.SetValue(i, std::clamp(out.ValueAt(i), lo, hi));
  }
  return out;
}

}  // namespace seagull
