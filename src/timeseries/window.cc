#include "timeseries/window.h"

#include <algorithm>
#include <vector>

namespace seagull {

WindowResult FindMinAverageWindow(const LoadSeries& series,
                                  int64_t duration_minutes,
                                  double max_missing_fraction) {
  return FindMinAverageWindowInRange(series, series.start(), series.end(),
                                     duration_minutes, max_missing_fraction);
}

WindowResult FindMinAverageWindowInRange(const LoadSeries& series,
                                         MinuteStamp from, MinuteStamp to,
                                         int64_t duration_minutes,
                                         double max_missing_fraction) {
  WindowResult best;
  best.duration_minutes = duration_minutes;
  const int64_t interval = series.interval_minutes();
  if (duration_minutes <= 0 || duration_minutes % interval != 0) return best;
  const int64_t w = duration_minutes / interval;  // window size in ticks

  from = std::max(from, series.start());
  to = std::min(to, series.end());
  if (from % interval != 0) {
    from += interval - (from % interval + interval) % interval;
  }
  const int64_t n = (to - from) / interval;
  if (n < w) return best;

  const int64_t base = (from - series.start()) / interval;
  // Prefix sums over present values and present counts.
  std::vector<double> sum(static_cast<size_t>(n) + 1, 0.0);
  std::vector<int64_t> cnt(static_cast<size_t>(n) + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    double v = series.ValueAt(base + i);
    sum[i + 1] = sum[i] + (IsMissing(v) ? 0.0 : v);
    cnt[i + 1] = cnt[i] + (IsMissing(v) ? 0 : 1);
  }

  const int64_t min_present = w - static_cast<int64_t>(
      max_missing_fraction * static_cast<double>(w));
  for (int64_t i = 0; i + w <= n; ++i) {
    int64_t present = cnt[i + w] - cnt[i];
    if (present < min_present || present == 0) continue;
    double avg = (sum[i + w] - sum[i]) / static_cast<double>(present);
    if (!best.found || avg < best.average_load) {
      best.found = true;
      best.average_load = avg;
      best.start = from + i * interval;
    }
  }
  return best;
}

double WindowAverage(const LoadSeries& series, MinuteStamp from,
                     int64_t duration_minutes) {
  return series.MeanInRange(from, from + duration_minutes);
}

}  // namespace seagull
