/// \file series.h
/// \brief `LoadSeries`: a regular grid of CPU-load samples for one server.
///
/// Telemetry arrives as average user CPU load percentage per fixed
/// interval (5 minutes for PostgreSQL/MySQL servers, 15 for SQL
/// databases). A `LoadSeries` stores those samples on an aligned minute
/// grid; gaps in telemetry are represented as NaN ("missing") so that
/// validation can detect them and metrics can skip them.

#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace seagull {

/// Sentinel for a missing sample.
inline constexpr double kMissingValue =
    std::numeric_limits<double>::quiet_NaN();

/// True if `v` denotes a missing sample.
inline bool IsMissing(double v) { return std::isnan(v); }

/// \brief Regularly spaced load samples on the simulation calendar.
class LoadSeries {
 public:
  /// Creates a series. `start` must be aligned to `interval_minutes`,
  /// which must evenly divide a day.
  static Result<LoadSeries> Make(MinuteStamp start, int64_t interval_minutes,
                                 std::vector<double> values);

  /// Creates an all-missing series covering [start, start + n*interval).
  static Result<LoadSeries> MakeEmpty(MinuteStamp start,
                                      int64_t interval_minutes, int64_t n);

  LoadSeries() = default;

  MinuteStamp start() const { return start_; }
  /// One past the last sample's stamp.
  MinuteStamp end() const {
    return start_ + static_cast<int64_t>(values_.size()) * interval_;
  }
  int64_t interval_minutes() const { return interval_; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  /// Samples per day at this granularity.
  int64_t ticks_per_day() const { return TicksPerDay(interval_); }

  const std::vector<double>& values() const { return values_; }

  /// Stamp of sample `i`.
  MinuteStamp TimeAt(int64_t i) const { return start_ + i * interval_; }

  /// Index of the sample at stamp `t`, or -1 if out of range/unaligned.
  int64_t IndexOf(MinuteStamp t) const;

  double ValueAt(int64_t i) const { return values_[static_cast<size_t>(i)]; }
  bool MissingAt(int64_t i) const { return IsMissing(ValueAt(i)); }
  void SetValue(int64_t i, double v) { values_[static_cast<size_t>(i)] = v; }

  /// Value at stamp `t`, or missing if out of range.
  double ValueAtTime(MinuteStamp t) const;

  /// Copies the sub-series covering [from, to). Clamps to the series
  /// bounds; stamps outside the series contribute nothing.
  LoadSeries Slice(MinuteStamp from, MinuteStamp to) const;

  /// Copies one calendar day (day index since epoch).
  LoadSeries SliceDay(int64_t day_index) const;

  /// Returns a copy re-stamped to start at `new_start` (persistent
  /// forecast: yesterday's load becomes today's prediction).
  LoadSeries ShiftedTo(MinuteStamp new_start) const;

  /// Number of non-missing samples.
  int64_t CountPresent() const;
  /// Number of missing samples.
  int64_t CountMissing() const { return size() - CountPresent(); }

  /// True if the series fully covers [from, to) with no missing samples.
  bool CoversComplete(MinuteStamp from, MinuteStamp to) const;

  /// Mean of present samples; missing if none present.
  double Mean() const;
  /// Min / max over present samples; missing if none present.
  double Min() const;
  double Max() const;

  /// Average over present samples within [from, to); missing if none.
  double MeanInRange(MinuteStamp from, MinuteStamp to) const;

  /// Merges another series with the same interval into this one,
  /// extending the time range as needed; `other`'s present samples win.
  Status MergeFrom(const LoadSeries& other);

 private:
  LoadSeries(MinuteStamp start, int64_t interval, std::vector<double> values)
      : start_(start), interval_(interval), values_(std::move(values)) {}

  MinuteStamp start_ = 0;
  int64_t interval_ = kServerIntervalMinutes;
  std::vector<double> values_;
};

}  // namespace seagull
