/// \file bucket_ratio.h
/// \brief Definitions 1–2: the asymmetric-bound bucket ratio metric.
///
/// "the bucket ratio metric of the server s during the time interval t
/// [is] the percentage of predicted data points that are within the
/// acceptable error bound of +10/−5 of their respective true data points"
/// (Definition 1). A prediction is *accurate* when the bucket ratio is at
/// least 90% (Definition 2). The bound is asymmetric because slightly
/// over-predicting low load is harmless while under-predicting risks
/// scheduling a backup into real customer activity.

#pragma once

#include "common/config.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief Point-by-point outcome counts of a bucket-ratio evaluation.
struct BucketRatioResult {
  int64_t compared = 0;  ///< points where both series are present
  int64_t in_bound = 0;  ///< points inside the +over/−under bound
  /// Bucket ratio in [0,1]; 0 when nothing was comparable.
  double ratio = 0.0;

  bool IsAccurate(const AccuracyConfig& config) const {
    return compared > 0 && ratio >= config.accurate_bucket_ratio;
  }
};

/// Computes the bucket ratio of `predicted` against `truth` over the
/// intersection of their ranges. Points missing in either series are
/// excluded from the comparison.
BucketRatioResult BucketRatio(const LoadSeries& predicted,
                              const LoadSeries& truth,
                              const AccuracyConfig& config = {});

/// As above, restricted to [from, to).
BucketRatioResult BucketRatioInRange(const LoadSeries& predicted,
                                     const LoadSeries& truth,
                                     MinuteStamp from, MinuteStamp to,
                                     const AccuracyConfig& config = {});

/// True if one predicted point is inside the bound of its true point
/// (Definition 1's per-point test: true−under ≤ predicted ≤ true+over).
inline bool InBound(double predicted, double truth,
                    const AccuracyConfig& config) {
  return predicted <= truth + config.over_bound &&
         predicted >= truth - config.under_bound;
}

/// Definition 2 as a single call.
bool IsAccuratePrediction(const LoadSeries& predicted, const LoadSeries& truth,
                          const AccuracyConfig& config = {});

}  // namespace seagull
