#include "metrics/bucket_ratio.h"

#include <algorithm>

namespace seagull {

BucketRatioResult BucketRatioInRange(const LoadSeries& predicted,
                                     const LoadSeries& truth,
                                     MinuteStamp from, MinuteStamp to,
                                     const AccuracyConfig& config) {
  BucketRatioResult out;
  if (predicted.empty() || truth.empty()) return out;
  const int64_t interval = predicted.interval_minutes();
  if (truth.interval_minutes() != interval) return out;

  MinuteStamp lo = std::max({from, predicted.start(), truth.start()});
  MinuteStamp hi = std::min({to, predicted.end(), truth.end()});
  if (lo % interval != 0) {
    lo += interval - (lo % interval + interval) % interval;
  }
  for (MinuteStamp t = lo; t < hi; t += interval) {
    double p = predicted.ValueAtTime(t);
    double y = truth.ValueAtTime(t);
    if (IsMissing(p) || IsMissing(y)) continue;
    ++out.compared;
    if (InBound(p, y, config)) ++out.in_bound;
  }
  if (out.compared > 0) {
    out.ratio = static_cast<double>(out.in_bound) /
                static_cast<double>(out.compared);
  }
  return out;
}

BucketRatioResult BucketRatio(const LoadSeries& predicted,
                              const LoadSeries& truth,
                              const AccuracyConfig& config) {
  MinuteStamp from = std::max(predicted.start(), truth.start());
  MinuteStamp to = std::min(predicted.end(), truth.end());
  return BucketRatioInRange(predicted, truth, from, to, config);
}

bool IsAccuratePrediction(const LoadSeries& predicted, const LoadSeries& truth,
                          const AccuracyConfig& config) {
  return BucketRatio(predicted, truth, config).IsAccurate(config);
}

}  // namespace seagull
