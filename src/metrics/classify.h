/// \file classify.h
/// \brief Definitions 3–6: the §3.2 server classification.
///
/// Servers are classified by lifespan (short- vs long-lived) and by
/// whether their load is stable, follows a daily or weekly pattern, or
/// has no recognizable pattern. The classification is computed from
/// observed telemetry with the same bucket-ratio machinery the paper
/// uses, so a generator archetype only lands in its intended class when
/// its signal actually satisfies the definitions.

#pragma once

#include <string>

#include "common/config.h"
#include "metrics/bucket_ratio.h"

namespace seagull {

/// \brief Observed class of a server (Figure 3).
enum class ServerClass : int8_t {
  kShortLived = 0,
  kStable = 1,
  kDailyPattern = 2,
  kWeeklyPattern = 3,
  kNoPattern = 4,
};

const char* ServerClassName(ServerClass c);

/// \brief Classification verdict with the evidence behind it.
struct ClassificationResult {
  ServerClass server_class = ServerClass::kShortLived;
  /// Days of telemetry observed.
  int64_t observed_days = 0;
  /// Bucket ratio of the stable test (average-load prediction).
  double stable_ratio = 0.0;
  /// Worst per-day bucket ratio of the daily-pattern test.
  double daily_worst_ratio = 0.0;
  /// Worst per-day bucket ratio of the weekly-pattern test.
  double weekly_worst_ratio = 0.0;
};

/// Classifies one server from its observed load over [from, to).
///
/// Definition 3: long-lived means over `config.long_lived_weeks` weeks of
/// existence. Definition 4: stable when the interval's average accurately
/// predicts the whole interval. Definition 5: a daily pattern must hold
/// on *every* day of the interval. Definition 6: a weekly pattern must
/// hold on every day with an equivalent prior day, and excludes servers
/// with a daily pattern.
ClassificationResult ClassifyServer(const LoadSeries& load,
                                    MinuteStamp lifespan_start,
                                    MinuteStamp lifespan_end,
                                    MinuteStamp from, MinuteStamp to,
                                    const AccuracyConfig& accuracy = {},
                                    const FleetConfig& fleet = {});

/// \brief Population counts per class (Figure 3).
struct ClassCounts {
  int64_t total = 0;
  int64_t short_lived = 0;
  int64_t stable = 0;
  int64_t daily = 0;
  int64_t weekly = 0;
  int64_t no_pattern = 0;

  void Add(ServerClass c);
  double Fraction(ServerClass c) const;
};

}  // namespace seagull
