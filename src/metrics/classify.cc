#include "metrics/classify.h"

#include <algorithm>

namespace seagull {

const char* ServerClassName(ServerClass c) {
  switch (c) {
    case ServerClass::kShortLived:
      return "short_lived";
    case ServerClass::kStable:
      return "stable";
    case ServerClass::kDailyPattern:
      return "daily_pattern";
    case ServerClass::kWeeklyPattern:
      return "weekly_pattern";
    case ServerClass::kNoPattern:
      return "no_pattern";
  }
  return "unknown";
}

namespace {

/// Minimum fraction of a day's samples that must be present for the day
/// to participate in a pattern test.
constexpr double kMinDayCoverage = 0.5;

bool DayHasCoverage(const LoadSeries& load, int64_t day) {
  LoadSeries slice = load.SliceDay(day);
  if (slice.empty()) return false;
  return static_cast<double>(slice.CountPresent()) >=
         kMinDayCoverage * static_cast<double>(slice.ticks_per_day());
}

/// Tests whether day `d` is accurately predicted by day `d - lag_days`
/// (Definitions 5/6). Returns the bucket ratio; `ok` reports Definition 2.
struct DayTest {
  bool comparable = false;
  bool ok = false;
  double ratio = 0.0;
};

DayTest TestDayAgainstLag(const LoadSeries& load, int64_t day,
                          int64_t lag_days, const AccuracyConfig& accuracy) {
  DayTest t;
  if (!DayHasCoverage(load, day) || !DayHasCoverage(load, day - lag_days)) {
    return t;
  }
  LoadSeries prediction =
      load.SliceDay(day - lag_days).ShiftedTo(day * kMinutesPerDay);
  BucketRatioResult bucket = BucketRatioInRange(
      prediction, load, day * kMinutesPerDay, (day + 1) * kMinutesPerDay,
      accuracy);
  t.comparable = bucket.compared > 0;
  t.ratio = bucket.ratio;
  t.ok = bucket.IsAccurate(accuracy);
  return t;
}

}  // namespace

ClassificationResult ClassifyServer(const LoadSeries& load,
                                    MinuteStamp lifespan_start,
                                    MinuteStamp lifespan_end,
                                    MinuteStamp from, MinuteStamp to,
                                    const AccuracyConfig& accuracy,
                                    const FleetConfig& fleet) {
  ClassificationResult out;

  // Definition 3: lifespan gate.
  if (lifespan_end - lifespan_start < fleet.long_lived_weeks * kMinutesPerWeek) {
    out.server_class = ServerClass::kShortLived;
    return out;
  }

  MinuteStamp lo = std::max(from, lifespan_start);
  MinuteStamp hi = std::min(to, lifespan_end);
  int64_t first_day = DayIndex(lo + kMinutesPerDay - 1);
  int64_t last_day = DayIndex(hi - 1);  // inclusive
  out.observed_days = std::max<int64_t>(0, last_day - first_day + 1);

  // Definition 4: stable = predicted by the interval's own average.
  double avg = load.MeanInRange(lo, hi);
  if (!IsMissing(avg)) {
    const int64_t interval = load.interval_minutes();
    MinuteStamp aligned = lo % interval == 0
                              ? lo
                              : lo + interval - (lo % interval + interval) %
                                                    interval;
    int64_t n = std::max<int64_t>(0, (hi - aligned) / interval);
    auto flat = LoadSeries::Make(
        aligned, interval,
        std::vector<double>(static_cast<size_t>(n), avg));
    if (flat.ok()) {
      BucketRatioResult bucket =
          BucketRatioInRange(*flat, load, lo, hi, accuracy);
      out.stable_ratio = bucket.ratio;
      if (bucket.IsAccurate(accuracy)) {
        out.server_class = ServerClass::kStable;
        return out;
      }
    }
  }

  // Definition 5: daily pattern on every day of the interval.
  bool daily_any = false, daily_all = true;
  out.daily_worst_ratio = 1.0;
  for (int64_t d = first_day + 1; d <= last_day; ++d) {
    DayTest t = TestDayAgainstLag(load, d, 1, accuracy);
    if (!t.comparable) continue;
    daily_any = true;
    out.daily_worst_ratio = std::min(out.daily_worst_ratio, t.ratio);
    if (!t.ok) daily_all = false;
  }
  if (daily_any && daily_all) {
    out.server_class = ServerClass::kDailyPattern;
    return out;
  }

  // Definition 6: weekly pattern (excluding daily) on every testable day.
  bool weekly_any = false, weekly_all = true;
  out.weekly_worst_ratio = 1.0;
  for (int64_t d = first_day + 7; d <= last_day; ++d) {
    DayTest t = TestDayAgainstLag(load, d, 7, accuracy);
    if (!t.comparable) continue;
    weekly_any = true;
    out.weekly_worst_ratio = std::min(out.weekly_worst_ratio, t.ratio);
    if (!t.ok) weekly_all = false;
  }
  if (weekly_any && weekly_all) {
    out.server_class = ServerClass::kWeeklyPattern;
    return out;
  }

  out.server_class = ServerClass::kNoPattern;
  return out;
}

void ClassCounts::Add(ServerClass c) {
  ++total;
  switch (c) {
    case ServerClass::kShortLived:
      ++short_lived;
      break;
    case ServerClass::kStable:
      ++stable;
      break;
    case ServerClass::kDailyPattern:
      ++daily;
      break;
    case ServerClass::kWeeklyPattern:
      ++weekly;
      break;
    case ServerClass::kNoPattern:
      ++no_pattern;
      break;
  }
}

double ClassCounts::Fraction(ServerClass c) const {
  if (total == 0) return 0.0;
  int64_t n = 0;
  switch (c) {
    case ServerClass::kShortLived:
      n = short_lived;
      break;
    case ServerClass::kStable:
      n = stable;
      break;
    case ServerClass::kDailyPattern:
      n = daily;
      break;
    case ServerClass::kWeeklyPattern:
      n = weekly;
      break;
    case ServerClass::kNoPattern:
      n = no_pattern;
      break;
  }
  return static_cast<double>(n) / static_cast<double>(total);
}

}  // namespace seagull
