/// \file predictable.h
/// \brief Definition 9: the three-week predictability gate.
///
/// "A long-lived server is called predictable if for the last three weeks
/// its LL windows were chosen correctly and the load during these windows
/// was predicted accurately." The scheduler only moves backups of
/// predictable servers; everyone else keeps the default window (§2.3).

#pragma once

#include <functional>
#include <vector>

#include "metrics/ll_window.h"

namespace seagull {

/// \brief One historical backup-day evaluation used as predictability
/// evidence.
struct WeeklyEvidence {
  int64_t day_index = 0;
  bool evaluable = false;
  bool window_correct = false;
  bool load_accurate = false;

  bool Good() const { return evaluable && window_correct && load_accurate; }
};

/// \brief Definition 9 verdict with the evidence trail.
struct PredictabilityResult {
  bool long_lived = false;
  /// True when every one of the last `fleet.long_lived_weeks` weeks has
  /// good evidence.
  bool predictable = false;
  std::vector<WeeklyEvidence> evidence;
};

/// Produces the 24h load forecast for the given day (conditioning only on
/// telemetry before that day). Decouples the metric from any concrete
/// model — production stores past predictions; this harness regenerates
/// them.
using DayForecaster =
    std::function<Result<LoadSeries>(int64_t day_index)>;

/// Evaluates Definition 9 for a server whose weekly backup falls on
/// `backup_day`. For each of the `fleet.long_lived_weeks` weeks before
/// `target_week`, forecasts that week's backup day and applies the §4
/// joint metric against `observed`.
PredictabilityResult EvaluatePredictability(
    const DayForecaster& forecaster, const LoadSeries& observed,
    MinuteStamp lifespan_start, MinuteStamp lifespan_end, int64_t target_week,
    DayOfWeek backup_day, int64_t backup_duration_minutes,
    const AccuracyConfig& accuracy = {}, const FleetConfig& fleet = {});

}  // namespace seagull
