/// \file ll_window.h
/// \brief Definitions 7–8: lowest-load windows and the correctly-chosen
/// test, plus the combined per-day low-load evaluation (§4).
///
/// The two metrics are orthogonal (Figures 9/10): a window can be chosen
/// correctly while the load inside it is badly predicted, and vice versa.
/// Only both together say the prediction is usable for scheduling.

#pragma once

#include "common/config.h"
#include "metrics/bucket_ratio.h"
#include "timeseries/window.h"

namespace seagull {

/// Definition 7: the length-b interval of day `day_index` with minimal
/// average load, computed from `load` (true or predicted).
WindowResult LowestLoadWindow(const LoadSeries& load, int64_t day_index,
                              int64_t backup_duration_minutes);

/// Definition 8: the predicted window is chosen correctly when the
/// average *true* load inside it is within `config.window_tolerance` of
/// the average true load inside the true LL window.
bool IsWindowChosenCorrectly(const LoadSeries& true_load,
                             const WindowResult& predicted_window,
                             const WindowResult& true_window,
                             const AccuracyConfig& config = {});

/// \brief Joint result of the per-server, per-backup-day evaluation.
struct LowLoadEvaluation {
  /// Both windows were computable (enough present samples on the day).
  bool evaluable = false;
  WindowResult true_window;
  WindowResult predicted_window;
  /// Definition 8 verdict.
  bool window_correct = false;
  /// Bucket ratio of predicted vs true load *inside the predicted LL
  /// window* (Figures 9/10 measure accuracy there).
  BucketRatioResult window_bucket;
  /// Definition 2 verdict inside the predicted window.
  bool load_accurate = false;
  /// Bucket ratio over the whole day, for diagnostics.
  BucketRatioResult day_bucket;
};

/// Runs the full §4 evaluation of one server's backup day.
LowLoadEvaluation EvaluateLowLoad(const LoadSeries& predicted,
                                  const LoadSeries& true_load,
                                  int64_t day_index,
                                  int64_t backup_duration_minutes,
                                  const AccuracyConfig& config = {});

}  // namespace seagull
