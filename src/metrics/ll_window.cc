#include "metrics/ll_window.h"

namespace seagull {

WindowResult LowestLoadWindow(const LoadSeries& load, int64_t day_index,
                              int64_t backup_duration_minutes) {
  MinuteStamp day_start = day_index * kMinutesPerDay;
  MinuteStamp day_end = day_start + kMinutesPerDay;
  return FindMinAverageWindowInRange(load, day_start, day_end,
                                     backup_duration_minutes,
                                     /*max_missing_fraction=*/0.25);
}

bool IsWindowChosenCorrectly(const LoadSeries& true_load,
                             const WindowResult& predicted_window,
                             const WindowResult& true_window,
                             const AccuracyConfig& config) {
  if (!predicted_window.found || !true_window.found) return false;
  double avg_true_in_predicted = WindowAverage(
      true_load, predicted_window.start, predicted_window.duration_minutes);
  double avg_true_in_true = WindowAverage(true_load, true_window.start,
                                          true_window.duration_minutes);
  if (IsMissing(avg_true_in_predicted) || IsMissing(avg_true_in_true)) {
    return false;
  }
  // The true LL window minimizes average true load, so the difference is
  // non-negative; the question is only whether the true window would have
  // been *significantly* better (Figure 8 vs Figure 9).
  return avg_true_in_predicted - avg_true_in_true <= config.window_tolerance;
}

LowLoadEvaluation EvaluateLowLoad(const LoadSeries& predicted,
                                  const LoadSeries& true_load,
                                  int64_t day_index,
                                  int64_t backup_duration_minutes,
                                  const AccuracyConfig& config) {
  LowLoadEvaluation eval;
  eval.true_window =
      LowestLoadWindow(true_load, day_index, backup_duration_minutes);
  eval.predicted_window =
      LowestLoadWindow(predicted, day_index, backup_duration_minutes);
  eval.evaluable = eval.true_window.found && eval.predicted_window.found;
  if (!eval.evaluable) return eval;

  eval.window_correct = IsWindowChosenCorrectly(
      true_load, eval.predicted_window, eval.true_window, config);
  eval.window_bucket = BucketRatioInRange(
      predicted, true_load, eval.predicted_window.start,
      eval.predicted_window.end(), config);
  eval.load_accurate = eval.window_bucket.IsAccurate(config);
  eval.day_bucket =
      BucketRatioInRange(predicted, true_load, day_index * kMinutesPerDay,
                         (day_index + 1) * kMinutesPerDay, config);
  return eval;
}

}  // namespace seagull
