#include "metrics/predictable.h"

namespace seagull {

PredictabilityResult EvaluatePredictability(
    const DayForecaster& forecaster, const LoadSeries& observed,
    MinuteStamp lifespan_start, MinuteStamp lifespan_end, int64_t target_week,
    DayOfWeek backup_day, int64_t backup_duration_minutes,
    const AccuracyConfig& accuracy, const FleetConfig& fleet) {
  PredictabilityResult out;

  // Definition 9 applies to long-lived servers only; and the server must
  // have existed for all of the evidence weeks ("servers that did not
  // exist ... for the last three weeks" default, §2.3).
  const int64_t weeks = fleet.long_lived_weeks;
  MinuteStamp evidence_start =
      (target_week - weeks) * kMinutesPerWeek;
  out.long_lived =
      lifespan_end - lifespan_start >= weeks * kMinutesPerWeek &&
      lifespan_start <= evidence_start;
  if (!out.long_lived) return out;

  bool all_good = true;
  for (int64_t w = target_week - weeks; w < target_week; ++w) {
    WeeklyEvidence ev;
    ev.day_index = w * 7 + static_cast<int64_t>(backup_day);
    MinuteStamp day_start = ev.day_index * kMinutesPerDay;
    if (day_start < lifespan_start ||
        day_start + kMinutesPerDay > lifespan_end) {
      all_good = false;
      out.evidence.push_back(ev);
      continue;
    }
    auto predicted = forecaster(ev.day_index);
    if (predicted.ok()) {
      LowLoadEvaluation eval =
          EvaluateLowLoad(*predicted, observed, ev.day_index,
                          backup_duration_minutes, accuracy);
      ev.evaluable = eval.evaluable;
      ev.window_correct = eval.window_correct;
      ev.load_accurate = eval.load_accurate;
    }
    if (!ev.Good()) all_good = false;
    out.evidence.push_back(ev);
  }
  out.predictable = all_good && !out.evidence.empty();
  return out;
}

}  // namespace seagull
