#include "metrics/standard.h"

#include <algorithm>
#include <cmath>

namespace seagull {

namespace {

/// Applies `fn(pred, true)` to every jointly present sample pair.
template <typename Fn>
int64_t ForEachPair(const LoadSeries& predicted, const LoadSeries& truth,
                    Fn&& fn) {
  if (predicted.empty() || truth.empty()) return 0;
  if (predicted.interval_minutes() != truth.interval_minutes()) return 0;
  const int64_t interval = predicted.interval_minutes();
  MinuteStamp lo = std::max(predicted.start(), truth.start());
  MinuteStamp hi = std::min(predicted.end(), truth.end());
  int64_t n = 0;
  for (MinuteStamp t = lo; t < hi; t += interval) {
    double p = predicted.ValueAtTime(t);
    double y = truth.ValueAtTime(t);
    if (IsMissing(p) || IsMissing(y)) continue;
    fn(p, y);
    ++n;
  }
  return n;
}

}  // namespace

double MeanAbsoluteError(const LoadSeries& predicted,
                         const LoadSeries& truth) {
  double sum = 0.0;
  int64_t n = ForEachPair(predicted, truth, [&](double p, double y) {
    sum += std::fabs(p - y);
  });
  return n == 0 ? kMissingValue : sum / static_cast<double>(n);
}

double RootMeanSquaredError(const LoadSeries& predicted,
                            const LoadSeries& truth) {
  double sum = 0.0;
  int64_t n = ForEachPair(predicted, truth, [&](double p, double y) {
    sum += (p - y) * (p - y);
  });
  return n == 0 ? kMissingValue
                : std::sqrt(sum / static_cast<double>(n));
}

double NormalizedRmse(const LoadSeries& predicted, const LoadSeries& truth) {
  double sum_sq = 0.0, sum_true = 0.0;
  int64_t n = ForEachPair(predicted, truth, [&](double p, double y) {
    sum_sq += (p - y) * (p - y);
    sum_true += y;
  });
  if (n == 0) return kMissingValue;
  double mean_true = sum_true / static_cast<double>(n);
  if (mean_true == 0.0) return kMissingValue;
  return std::sqrt(sum_sq / static_cast<double>(n)) / mean_true;
}

double MeanAbsoluteScaledError(const LoadSeries& predicted,
                               const LoadSeries& truth) {
  double mae = MeanAbsoluteError(predicted, truth);
  if (IsMissing(mae)) return kMissingValue;
  // One-step-ahead naive error of the true series over the comparison
  // range.
  const int64_t interval = truth.interval_minutes();
  MinuteStamp lo = std::max(predicted.start(), truth.start());
  MinuteStamp hi = std::min(predicted.end(), truth.end());
  double naive_sum = 0.0;
  int64_t naive_n = 0;
  for (MinuteStamp t = lo + interval; t < hi; t += interval) {
    double cur = truth.ValueAtTime(t);
    double prev = truth.ValueAtTime(t - interval);
    if (IsMissing(cur) || IsMissing(prev)) continue;
    naive_sum += std::fabs(cur - prev);
    ++naive_n;
  }
  if (naive_n == 0) return kMissingValue;
  double factor = naive_sum / static_cast<double>(naive_n);
  if (factor == 0.0) return kMissingValue;
  return mae / factor;
}

}  // namespace seagull
