/// \file standard.h
/// \brief Standard statistical error metrics (Appendix A.2).
///
/// The backup-scheduling use case replaces these with the LL-window
/// metrics, but the preemptive auto-scale scenario reports Mean NRMSE and
/// MASE (Equations 1–3), so they are implemented here alongside the usual
/// MAE/RMSE diagnostics.

#pragma once

#include "timeseries/series.h"

namespace seagull {

/// Mean absolute error over jointly present samples; missing if none.
double MeanAbsoluteError(const LoadSeries& predicted, const LoadSeries& truth);

/// Root mean squared error over jointly present samples; missing if none.
double RootMeanSquaredError(const LoadSeries& predicted,
                            const LoadSeries& truth);

/// Equation 2: RMSE normalized by the mean of the true signal.
/// "A mean NRMSE of 1 is produced when the mean is predicted as the
/// forecast." Missing when the true mean is zero or nothing is present.
double NormalizedRmse(const LoadSeries& predicted, const LoadSeries& truth);

/// Equation 3: mean absolute error scaled by the in-sample one-step-ahead
/// naive error ("the error produced by a one step ahead true forecast").
/// MASE < 1 beats the one-step naive forecast. Missing when the
/// normalizing factor is zero or nothing is comparable.
double MeanAbsoluteScaledError(const LoadSeries& predicted,
                               const LoadSeries& truth);

}  // namespace seagull
