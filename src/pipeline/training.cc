#include "pipeline/training.h"

#include "common/obs/metrics.h"
#include "common/strings.h"
#include "forecast/batch.h"
#include "forecast/model.h"

namespace seagull {

Status ModelTrainingModule::Run(PipelineContext* ctx) {
  if (ctx->servers.empty()) {
    return Status::FailedPrecondition("training before validation");
  }
  SEAGULL_ASSIGN_OR_RETURN(auto probe,
                           ModelFactory::Global().Create(ctx->model_name));
  ctx->trained.clear();

  if (!probe->requires_training()) {
    // Heuristic family: one fleet-wide deployment entry, no fitting.
    SEAGULL_ASSIGN_OR_RETURN(Json doc, probe->Serialize());
    ctx->trained[""] = std::move(doc);
    ctx->stats["training.models"] = 1.0;
    ctx->stats["training.skipped"] = 0.0;
    return Status::OK();
  }

  const MinuteStamp train_end = (ctx->week + 1) * kMinutesPerWeek;
  const MinuteStamp train_start = train_end - kMinutesPerWeek;
  const int64_t min_history =
      ctx->fleet.min_history_days * kMinutesPerDay / kServerIntervalMinutes;

  // Per-model train telemetry. The batched engine runs the fan-out and
  // reports per-item outcomes in input order, so the tallies and
  // instrument observations below are plain sequential code.
  const MetricLabels model_labels{{"model", ctx->model_name}};
  Histogram* train_micros = MetricsRegistry::Global().GetHistogram(
      "seagull.forecast.train_micros", model_labels);
  Counter* models_trained = MetricsRegistry::Global().GetCounter(
      "seagull.forecast.models_trained", model_labels);
  Counter* train_failures = MetricsRegistry::Global().GetCounter(
      "seagull.forecast.train_failures", model_labels);

  // Eligibility filter, then hand the survivors to the batched trainer
  // as one item list (slices stay alive in `slices` for its duration).
  int64_t n_skipped = 0;
  std::vector<LoadSeries> slices;
  std::vector<size_t> item_server;
  slices.reserve(ctx->servers.size());
  item_server.reserve(ctx->servers.size());
  for (size_t i = 0; i < ctx->servers.size(); ++i) {
    LoadSeries train = ctx->servers[i].load.Slice(train_start, train_end);
    if (train.CountPresent() < min_history) {
      ++n_skipped;
      continue;
    }
    slices.push_back(std::move(train));
    item_server.push_back(i);
  }
  std::vector<BatchTrainItem> items(slices.size());
  for (size_t k = 0; k < slices.size(); ++k) items[k].train = &slices[k];

  BatchTrainStats batch_stats;
  SEAGULL_ASSIGN_OR_RETURN(
      std::vector<BatchTrainResult> results,
      BatchTrainer::Fit(ctx->model_name, items, ctx->pool, &batch_stats));

  int64_t n_failed = 0;
  for (size_t k = 0; k < results.size(); ++k) {
    BatchTrainResult& r = results[k];
    train_micros->Observe(r.fit_micros);
    if (r.status.ok()) {
      models_trained->Increment();
      ctx->trained.emplace(ctx->servers[item_server[k]].server_id,
                           std::move(r.doc));
    } else {
      train_failures->Increment();
      ++n_failed;
    }
  }
  ctx->stats["training.models"] = static_cast<double>(ctx->trained.size());
  ctx->stats["training.skipped"] = static_cast<double>(n_skipped);
  ctx->stats["training.failed"] = static_cast<double>(n_failed);
  ctx->stats["training.batch_groups"] =
      static_cast<double>(batch_stats.groups);
  ctx->stats["training.batch_shared"] =
      static_cast<double>(batch_stats.shared_fits);
  if (n_failed > 0) {
    ctx->AddIncident(IncidentSeverity::kWarning, name(),
                     StringPrintf("%lld servers failed model fitting",
                                  static_cast<long long>(n_failed)));
  }
  if (ctx->trained.empty()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "no server produced a trained model");
    return Status::Internal("training produced no models");
  }
  return Status::OK();
}

}  // namespace seagull
