#include "pipeline/training.h"

#include <atomic>

#include "common/obs/clock.h"
#include "common/obs/metrics.h"
#include "common/strings.h"
#include "forecast/model.h"

namespace seagull {

Status ModelTrainingModule::Run(PipelineContext* ctx) {
  if (ctx->servers.empty()) {
    return Status::FailedPrecondition("training before validation");
  }
  SEAGULL_ASSIGN_OR_RETURN(auto probe,
                           ModelFactory::Global().Create(ctx->model_name));
  ctx->trained.clear();

  if (!probe->requires_training()) {
    // Heuristic family: one fleet-wide deployment entry, no fitting.
    SEAGULL_ASSIGN_OR_RETURN(Json doc, probe->Serialize());
    ctx->trained[""] = std::move(doc);
    ctx->stats["training.models"] = 1.0;
    ctx->stats["training.skipped"] = 0.0;
    return Status::OK();
  }

  const MinuteStamp train_end = (ctx->week + 1) * kMinutesPerWeek;
  const MinuteStamp train_start = train_end - kMinutesPerWeek;
  const int64_t min_history =
      ctx->fleet.min_history_days * kMinutesPerDay / kServerIntervalMinutes;

  // Plain tallies — relaxed atomics, not a mutex: nothing else is
  // guarded by them and the fan-out only ever increments.
  std::atomic<int64_t> skipped{0}, failed{0};
  std::vector<std::pair<std::string, Json>> fitted(ctx->servers.size());
  std::vector<int8_t> ok_flags(ctx->servers.size(), 0);

  // Per-model train telemetry; thread-safe instruments shared by every
  // worker of the fan-out below.
  const MetricLabels model_labels{{"model", ctx->model_name}};
  Histogram* train_micros = MetricsRegistry::Global().GetHistogram(
      "seagull.forecast.train_micros", model_labels);
  Counter* models_trained = MetricsRegistry::Global().GetCounter(
      "seagull.forecast.models_trained", model_labels);
  Counter* train_failures = MetricsRegistry::Global().GetCounter(
      "seagull.forecast.train_failures", model_labels);

  auto work = [&](int64_t i) {
    const ServerTelemetry& st = ctx->servers[static_cast<size_t>(i)];
    LoadSeries train = st.load.Slice(train_start, train_end);
    if (train.CountPresent() < min_history) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto model = ModelFactory::Global().Create(ctx->model_name);
    if (!model.ok()) return;
    const int64_t fit_start = ObsClock::NowMicros();
    Status fit = (*model)->Fit(train);
    train_micros->Observe(
        static_cast<double>(ObsClock::NowMicros() - fit_start));
    if (fit.ok()) {
      models_trained->Increment();
    } else {
      train_failures->Increment();
    }
    if (!fit.ok()) {
      failed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto doc = (*model)->Serialize();
    if (!doc.ok()) {
      failed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    fitted[static_cast<size_t>(i)] = {st.server_id,
                                      std::move(doc).ValueUnsafe()};
    ok_flags[static_cast<size_t>(i)] = 1;
  };

  const int64_t n = static_cast<int64_t>(ctx->servers.size());
  if (ctx->pool != nullptr) {
    ParallelFor(ctx->pool, n, work);
  } else {
    SequentialFor(n, work);
  }

  for (int64_t i = 0; i < n; ++i) {
    if (ok_flags[static_cast<size_t>(i)]) {
      ctx->trained.emplace(std::move(fitted[static_cast<size_t>(i)].first),
                           std::move(fitted[static_cast<size_t>(i)].second));
    }
  }
  ctx->stats["training.models"] = static_cast<double>(ctx->trained.size());
  const int64_t n_skipped = skipped.load(std::memory_order_relaxed);
  const int64_t n_failed = failed.load(std::memory_order_relaxed);
  ctx->stats["training.skipped"] = static_cast<double>(n_skipped);
  ctx->stats["training.failed"] = static_cast<double>(n_failed);
  if (n_failed > 0) {
    ctx->AddIncident(IncidentSeverity::kWarning, name(),
                     StringPrintf("%lld servers failed model fitting",
                                  static_cast<long long>(n_failed)));
  }
  if (ctx->trained.empty()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "no server produced a trained model");
    return Status::Internal("training produced no models");
  }
  return Status::OK();
}

}  // namespace seagull
