/// \file features.h
/// \brief Feature Extraction module (§2.2): lifespan, stability, and
/// pattern classification per server — the inputs both to model choice
/// (§5.2) and to the Figure 3 population analysis.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// \brief Derives `ServerFeatures` for every grouped server.
class FeatureExtractionModule final : public PipelineModule {
 public:
  std::string name() const override { return "features"; }
  Status Run(PipelineContext* ctx) override;
};

/// Computes features for a single server's telemetry within the run's
/// observation window [obs_from, obs_to). Exposed for tests and the
/// classification bench.
ServerFeatures ExtractFeatures(const ServerTelemetry& telemetry,
                               MinuteStamp obs_from, MinuteStamp obs_to,
                               const AccuracyConfig& accuracy,
                               const FleetConfig& fleet);

}  // namespace seagull
