#include "pipeline/deployment.h"

#include <algorithm>

#include "common/strings.h"

namespace seagull {

namespace {

std::string VersionDocId(int64_t version) {
  return StringPrintf("v%06lld", static_cast<long long>(version));
}

}  // namespace

Result<ModelEndpoint> ModelEndpoint::FromVersionDoc(const Json& doc) {
  ModelEndpoint ep;
  SEAGULL_ASSIGN_OR_RETURN(ep.family_, doc.GetString("family"));
  SEAGULL_ASSIGN_OR_RETURN(double version, doc.GetNumber("version"));
  ep.version_ = static_cast<int64_t>(version);
  const Json& models = doc["models"];
  if (!models.is_object()) {
    return Status::Invalid("version doc has no models object");
  }
  for (const auto& [server_id, params] : models.AsObject()) {
    SEAGULL_ASSIGN_OR_RETURN(auto model,
                             ModelFactory::Global().Restore(params));
    ep.models_.emplace(server_id, std::move(model));
  }
  if (ep.models_.empty()) {
    return Status::Invalid("version doc deploys no models");
  }
  return ep;
}

bool ModelEndpoint::Serves(const std::string& server_id) const {
  return models_.count(server_id) > 0 || models_.count("") > 0;
}

Result<LoadSeries> ModelEndpoint::Predict(const std::string& server_id,
                                          const LoadSeries& recent,
                                          MinuteStamp start,
                                          int64_t horizon_minutes) const {
  auto it = models_.find(server_id);
  if (it == models_.end()) it = models_.find("");
  if (it == models_.end()) {
    return Status::NotFound("endpoint has no model for server " + server_id);
  }
  return it->second->Forecast(recent, start, horizon_minutes);
}

Result<Json> LoadVersionDoc(DocStore* docs, const std::string& region,
                            int64_t version) {
  Container* registry = docs->GetContainer(kModelRegistryContainer);
  SEAGULL_ASSIGN_OR_RETURN(Document doc,
                           registry->Get(region, VersionDocId(version)));
  return doc.body;
}

Result<int64_t> ActiveVersion(DocStore* docs, const std::string& region) {
  Container* registry = docs->GetContainer(kModelRegistryContainer);
  SEAGULL_ASSIGN_OR_RETURN(Document doc,
                           registry->Get(region, kActiveModelDocId));
  SEAGULL_ASSIGN_OR_RETURN(double v, doc.body.GetNumber("version"));
  return static_cast<int64_t>(v);
}

Status SetActiveVersion(DocStore* docs, const std::string& region,
                        int64_t version, const std::string& reason) {
  Container* registry = docs->GetContainer(kModelRegistryContainer);
  Document doc;
  doc.partition_key = region;
  doc.id = kActiveModelDocId;
  doc.body = Json::MakeObject();
  doc.body["version"] = version;
  doc.body["reason"] = reason;
  return registry->Upsert(std::move(doc));
}

Result<ModelEndpoint> LoadActiveEndpoint(DocStore* docs,
                                         const std::string& region) {
  SEAGULL_ASSIGN_OR_RETURN(int64_t version, ActiveVersion(docs, region));
  SEAGULL_ASSIGN_OR_RETURN(Json doc, LoadVersionDoc(docs, region, version));
  return ModelEndpoint::FromVersionDoc(doc);
}

Status ModelDeploymentModule::Run(PipelineContext* ctx) {
  if (ctx->docs == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  if (ctx->trained.empty()) {
    return Status::FailedPrecondition("deployment before training");
  }
  Container* registry = ctx->docs->GetContainer(kModelRegistryContainer);

  // Next version number: one past the highest deployed so far.
  int64_t version = 1;
  for (const auto& doc : registry->ReadPartition(ctx->region)) {
    if (doc.id == kActiveModelDocId) continue;
    double v = doc.body.GetNumber("version").ValueOr(0.0);
    version = std::max(version, static_cast<int64_t>(v) + 1);
  }

  Json body = Json::MakeObject();
  body["family"] = ctx->model_name;
  body["version"] = version;
  body["week"] = ctx->week;
  Json models = Json::MakeObject();
  for (const auto& [server_id, params] : ctx->trained) {
    models[server_id] = params;
  }
  body["models"] = std::move(models);

  // Health check: the package must load back into an endpoint before the
  // active pointer moves ("failed model deployment" incidents, §2.2).
  auto endpoint = ModelEndpoint::FromVersionDoc(body);
  if (!endpoint.ok()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "deployment health check failed: " +
                         endpoint.status().ToString());
    return endpoint.status().WithContext("deployment health check");
  }

  Document doc;
  doc.partition_key = ctx->region;
  doc.id = VersionDocId(version);
  doc.body = std::move(body);
  SEAGULL_RETURN_NOT_OK(registry->Upsert(std::move(doc)));
  SEAGULL_RETURN_NOT_OK(SetActiveVersion(ctx->docs, ctx->region, version,
                                         StringPrintf("deployed week %lld",
                                                      static_cast<long long>(
                                                          ctx->week))));
  ctx->deployed_version = version;
  ctx->stats["deployment.version"] = static_cast<double>(version);
  ctx->stats["deployment.models"] = static_cast<double>(ctx->trained.size());
  return Status::OK();
}

}  // namespace seagull
