#include "pipeline/inference.h"

#include "common/obs/clock.h"
#include "common/obs/metrics.h"
#include "common/strings.h"
#include "metrics/ll_window.h"
#include "pipeline/deployment.h"

namespace seagull {

std::string InferenceModule::PredictionId(int64_t day_index,
                                          const std::string& server_id) {
  return StringPrintf("d%05lld:%s", static_cast<long long>(day_index),
                      server_id.c_str());
}

Status InferenceModule::Run(PipelineContext* ctx) {
  if (ctx->docs == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  if (ctx->features.size() != ctx->servers.size()) {
    return Status::FailedPrecondition("inference before feature extraction");
  }
  SEAGULL_ASSIGN_OR_RETURN(ModelEndpoint endpoint,
                           LoadActiveEndpoint(ctx->docs, ctx->region));

  const int64_t target_week = ctx->week + 1;
  const int64_t n = static_cast<int64_t>(ctx->servers.size());
  struct Prediction {
    std::string server_id;
    int64_t day = 0;
    WindowResult window;
  };
  std::vector<std::vector<Prediction>> per_server(
      static_cast<size_t>(n));

  // Per-model inference telemetry, one observation per (server, day)
  // forecast; shared thread-safe instruments across the fan-out.
  const MetricLabels model_labels{{"model", ctx->model_name}};
  Histogram* infer_micros = MetricsRegistry::Global().GetHistogram(
      "seagull.forecast.infer_micros", model_labels);
  Counter* forecasts = MetricsRegistry::Global().GetCounter(
      "seagull.forecast.forecasts", model_labels);
  Counter* forecast_failures = MetricsRegistry::Global().GetCounter(
      "seagull.forecast.forecast_failures", model_labels);

  auto work = [&](int64_t i) {
    const ServerTelemetry& st = ctx->servers[static_cast<size_t>(i)];
    const ServerFeatures& f = ctx->features[static_cast<size_t>(i)];
    if (!endpoint.Serves(st.server_id)) return;
    // Forecast each day of the scheduling week. Telemetry ends at the
    // pipeline boundary; autoregressive families fold forward from it.
    for (int64_t dow = 0; dow < 7; ++dow) {
      int64_t day = target_week * 7 + dow;
      const int64_t predict_start = ObsClock::NowMicros();
      auto predicted = endpoint.Predict(st.server_id, st.load,
                                        day * kMinutesPerDay,
                                        kMinutesPerDay);
      infer_micros->Observe(
          static_cast<double>(ObsClock::NowMicros() - predict_start));
      if (predicted.ok()) {
        forecasts->Increment();
      } else {
        forecast_failures->Increment();
      }
      if (!predicted.ok()) continue;
      WindowResult window =
          LowestLoadWindow(*predicted, day, f.backup_duration_minutes);
      if (!window.found) continue;
      per_server[static_cast<size_t>(i)].push_back(
          {st.server_id, day, window});
    }
  };
  if (ctx->pool != nullptr) {
    ParallelFor(ctx->pool, n, work);
  } else {
    SequentialFor(n, work);
  }

  Container* container = ctx->docs->GetContainer(kPredictionsContainer);
  int64_t stored = 0;
  for (const auto& predictions : per_server) {
    for (const auto& p : predictions) {
      Document doc;
      doc.partition_key = ctx->region;
      doc.id = PredictionId(p.day, p.server_id);
      doc.body = Json::MakeObject();
      doc.body["server_id"] = p.server_id;
      doc.body["day"] = p.day;
      doc.body["window_start"] = p.window.start;
      doc.body["duration_minutes"] = p.window.duration_minutes;
      doc.body["predicted_avg_load"] = p.window.average_load;
      doc.body["model_version"] = ctx->deployed_version;
      SEAGULL_RETURN_NOT_OK(container->Upsert(std::move(doc)));
      ++stored;
    }
  }
  ctx->stats["inference.predictions"] = static_cast<double>(stored);
  return Status::OK();
}

}  // namespace seagull
