#include "pipeline/accuracy.h"

#include "common/strings.h"
#include "metrics/predictable.h"

namespace seagull {

ServerAccuracy EvaluateServerAccuracy(const ModelEndpoint& endpoint,
                                      const ServerTelemetry& telemetry,
                                      const ServerFeatures& features,
                                      int64_t target_week,
                                      const AccuracyConfig& accuracy,
                                      const FleetConfig& fleet,
                                      bool evaluate_all_days) {
  ServerAccuracy out;
  out.server_id = telemetry.server_id;
  out.long_lived = features.long_lived;

  DayForecaster forecaster =
      [&](int64_t day_index) -> Result<LoadSeries> {
    MinuteStamp day_start = day_index * kMinutesPerDay;
    // Condition only on telemetry strictly before the forecast day.
    LoadSeries recent = telemetry.load.Slice(telemetry.load.start(),
                                             day_start);
    return endpoint.Predict(telemetry.server_id, recent, day_start,
                            kMinutesPerDay);
  };

  PredictabilityResult pred = EvaluatePredictability(
      forecaster, telemetry.load, features.first_seen, features.last_seen,
      target_week, features.backup_day, features.backup_duration_minutes,
      accuracy, fleet);
  out.predictable = pred.predictable;
  out.weeks_evaluated = static_cast<int64_t>(pred.evidence.size());
  if (!pred.evidence.empty()) {
    const WeeklyEvidence& last = pred.evidence.back();
    out.last_window_correct = last.window_correct;
    out.last_load_accurate = last.load_accurate;
  }

  if (evaluate_all_days) {
    // Fig. 12(b) heavy mode: additionally evaluate every day of the most
    // recent week, looking for a better backup weekday.
    int64_t week = target_week - 1;
    for (int64_t dow = 0; dow < 7; ++dow) {
      int64_t day = week * 7 + dow;
      auto predicted = forecaster(day);
      if (!predicted.ok()) continue;
      (void)EvaluateLowLoad(*predicted, telemetry.load, day,
                            features.backup_duration_minutes, accuracy);
    }
  }
  return out;
}

Status AccuracyEvaluationModule::Run(PipelineContext* ctx) {
  if (ctx->docs == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  if (ctx->features.size() != ctx->servers.size()) {
    return Status::FailedPrecondition("accuracy evaluation before features");
  }
  SEAGULL_ASSIGN_OR_RETURN(ModelEndpoint endpoint,
                           LoadActiveEndpoint(ctx->docs, ctx->region));

  const int64_t target_week = ctx->week + 1;
  const int64_t n = static_cast<int64_t>(ctx->servers.size());
  ctx->accuracy_records.assign(ctx->servers.size(), ServerAccuracy{});

  auto work = [&](int64_t i) {
    ctx->accuracy_records[static_cast<size_t>(i)] = EvaluateServerAccuracy(
        endpoint, ctx->servers[static_cast<size_t>(i)],
        ctx->features[static_cast<size_t>(i)], target_week, ctx->accuracy,
        ctx->fleet, options_.evaluate_all_days);
  };
  if (ctx->pool != nullptr) {
    ParallelFor(ctx->pool, n, work);
  } else {
    SequentialFor(n, work);
  }

  // Persist per-server accuracy documents for the online scheduler.
  Container* container = ctx->docs->GetContainer(kAccuracyContainer);
  int64_t predictable = 0, long_lived = 0;
  for (const auto& rec : ctx->accuracy_records) {
    if (rec.long_lived) ++long_lived;
    if (rec.predictable) ++predictable;
    Document doc;
    doc.partition_key = ctx->region;
    doc.id = StringPrintf("w%04lld:%s", static_cast<long long>(target_week),
                          rec.server_id.c_str());
    doc.body = Json::MakeObject();
    doc.body["server_id"] = rec.server_id;
    doc.body["week"] = target_week;
    doc.body["long_lived"] = rec.long_lived;
    doc.body["predictable"] = rec.predictable;
    doc.body["last_window_correct"] = rec.last_window_correct;
    doc.body["last_load_accurate"] = rec.last_load_accurate;
    SEAGULL_RETURN_NOT_OK(container->Upsert(std::move(doc)));
  }
  ctx->stats["accuracy.long_lived"] = static_cast<double>(long_lived);
  ctx->stats["accuracy.predictable"] = static_cast<double>(predictable);
  if (long_lived > 0) {
    ctx->stats["accuracy.predictable_fraction"] =
        static_cast<double>(predictable) / static_cast<double>(long_lived);
  }
  return Status::OK();
}

}  // namespace seagull
