/// \file fleet_runner.h
/// \brief Parallel fleet execution engine (§2.1, §6.1, Fig. 12b).
///
/// The paper runs the AML pipeline partition-per-server on Dask across
/// 70+ regions. `FleetRunner` is that orchestration layer: it executes
/// many per-region `Pipeline` instances concurrently on one work-stealing
/// `ThreadPool` and fans per-server work (training, inference, accuracy
/// evaluation) into the same pool via nested `ParallelFor` — the pool's
/// caller-participation makes the nesting deadlock-free.
///
/// Determinism contract: given the same lake contents, document-store
/// state, and configuration, a run with `jobs = 1` and a run with any
/// `jobs > 1` produce byte-identical document-store snapshots, forecasts,
/// and low-load window choices. This holds because (a) regions write
/// only to their own partitions of the sorted-map document store, (b)
/// per-server loop bodies write only state owned by their index and all
/// reductions happen sequentially after each loop, and (c) model fitting
/// seeds its RNGs from configuration, never from global state. The
/// contract is enforced by tests/fleet_determinism_test.cc.
///
/// Memory plane: `FleetOptions::max_resident_regions` executes the job
/// list in fixed shards (same boundaries at every job count) with a
/// barrier between shards, and `FleetOptions::retire` runs sequentially
/// in job order at each shard edge so a driver can digest + drop a
/// region's partitions before the next shard materializes — peak RSS is
/// then bounded by one shard's working set instead of the whole fleet's.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pipeline/scheduler.h"

namespace seagull {

/// \brief One region-week the fleet should execute.
struct FleetJob {
  std::string region;
  int64_t week = 0;
};

/// \brief Fleet execution knobs.
struct FleetOptions {
  /// Concurrent region pipelines; <= 1 runs strictly sequentially on
  /// the calling thread (the Fig. 12b reference mode), 0 is treated as
  /// 1. Per-server fan-out inside each pipeline shares the same pool.
  int jobs = 1;
  /// Scheduler cadence passed through to `PipelineScheduler`.
  int64_t period_weeks = 1;
  /// Transient-failure policy for every region's modules and
  /// record-keeping (see `PipelineScheduler`).
  RetryPolicy retry;
  /// Memory-plane shard width: with a value > 0 the job list is
  /// executed in consecutive shards of at most this many regions, with
  /// a barrier between shards, so at most one shard's working set is
  /// ever resident. <= 0 (the default) runs the whole fleet as one
  /// shard. Shard boundaries fall at the same job indices regardless
  /// of `jobs`, so sharding never perturbs the determinism contract.
  int64_t max_resident_regions = 0;
  /// Retire hook, called once per completed region run — sequentially,
  /// in job order, at that region's shard boundary (after the shard's
  /// barrier). This is where a bounded-RSS driver digests a region's
  /// results and calls `DocStore::DropPartition` to release them
  /// before the next shard materializes. Runs on the calling thread;
  /// sequential job order makes anything it folds deterministic.
  std::function<void(const FleetJob&, const PipelineScheduler::ScheduledRun&)>
      retire;
  /// Return freed heap pages to the kernel (`TrimMallocArenas`) at each
  /// shard edge, after the retire hooks and before the RSS sample. At
  /// fleet scale the allocator otherwise retains a retired shard's
  /// pages for reuse, so the mid-run `process.rss_bytes` trajectory
  /// would show the historical high instead of live memory — and a
  /// per-shard RSS gate could miss (or misattribute) a mid-shard
  /// spike. Off by default: trimming costs a syscall sweep per shard.
  bool trim_at_shard_edges = false;
};

/// \brief One region removed from the healthy fleet this run: its
/// pipeline kept failing on transient errors after the retry budget.
struct QuarantinedRegion {
  std::string region;
  int64_t week = 0;
  std::string reason;  ///< the exhausted module's failure text
};

/// \brief Aggregated outcome of one fleet execution, in job order.
struct FleetRunResult {
  std::vector<PipelineScheduler::ScheduledRun> runs;
  /// Regions whose runs exhausted retries, in job order. Quarantine is
  /// graceful degradation, not fleet failure: every other region's run
  /// (and its backup scheduling inputs) completes normally, and a
  /// `region_quarantined` incident + alert is recorded for on-call.
  std::vector<QuarantinedRegion> quarantined;
  double wall_millis = 0.0;
  int jobs = 1;

  int64_t SuccessCount() const;
  int64_t FailureCount() const;
  /// Transient-failure retries spent across every run.
  int64_t TotalRetries() const;
  /// Alerts of every run, concatenated in job order.
  std::vector<Alert> AllAlerts() const;
};

/// \brief Runs a fleet of per-region pipelines concurrently.
class FleetRunner {
 public:
  /// Builds one pipeline per region run; must be safe to call from any
  /// thread. Defaults to `Pipeline::Standard`. Each job gets its own
  /// instance because modules are not required to be re-entrant.
  using PipelineFactory = std::function<Pipeline()>;

  FleetRunner(const LakeStore* lake, DocStore* docs,
              FleetOptions options = {},
              PipelineFactory factory = &Pipeline::Standard);

  /// Executes every due job, fanning regions across `options.jobs`
  /// workers. The context template supplies configuration (model family,
  /// accuracy constants). With jobs > 1 the runner installs its own pool
  /// so region- and server-level parallelism share one set of workers;
  /// with jobs <= 1 the template's pool (if any) drives per-server
  /// fan-out alone.
  FleetRunResult Run(const std::vector<FleetJob>& jobs,
                     const PipelineContext& config_template);

 private:
  const LakeStore* lake_;
  DocStore* docs_;
  FleetOptions options_;
  PipelineFactory factory_;
};

}  // namespace seagull
