/// \file scheduler.h
/// \brief Pipeline Scheduler (§2.2): decides which regions are due for a
/// weekly run, drives the runs, and records them — including catch-up
/// when a region missed its cadence.

#pragma once

#include "pipeline/dashboard.h"
#include "pipeline/incidents.h"
#include "pipeline/pipeline.h"

namespace seagull {

/// \brief Weekly per-region cadence driver.
class PipelineScheduler {
 public:
  /// `period_weeks` follows `FleetConfig::pipeline_period_weeks` —
  /// "servers are due for full backup at least once a week. Thus, the
  /// load extraction query runs once a week per region" (§2.2).
  /// `retry` governs transient-failure handling for the pipeline's
  /// modules and for the scheduler's own post-run record-keeping
  /// (dashboard + incident persistence).
  PipelineScheduler(const Pipeline* pipeline, const LakeStore* lake,
                    DocStore* docs, int64_t period_weeks = 1,
                    RetryPolicy retry = {})
      : pipeline_(pipeline), lake_(lake), docs_(docs),
        period_weeks_(period_weeks), retry_(retry) {}

  /// Last week a region ran successfully; -1 before the first run.
  int64_t LastSuccessfulWeek(const std::string& region) const;

  /// True if the region's run for `week` is due (never ran, or the
  /// period elapsed).
  bool IsDue(const std::string& region, int64_t week) const;

  /// \brief Outcome of one scheduled run.
  struct ScheduledRun {
    PipelineRunReport report;
    std::vector<Alert> alerts;
  };

  /// Runs the pipeline for one region-week if due (no-op report with
  /// success=true and no timings when not due). The context template
  /// supplies configuration (model family, accuracy constants, pool).
  ScheduledRun RunIfDue(const std::string& region, int64_t week,
                        const PipelineContext& config_template);

 private:
  const Pipeline* pipeline_;
  const LakeStore* lake_;
  DocStore* docs_;
  int64_t period_weeks_;
  RetryPolicy retry_;
};

}  // namespace seagull
