#include "pipeline/tracking.h"

#include "common/strings.h"
#include "pipeline/deployment.h"

namespace seagull {

Status ModelTrackingModule::Run(PipelineContext* ctx) {
  if (ctx->docs == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  if (ctx->deployed_version == 0) {
    return Status::FailedPrecondition("tracking before deployment");
  }
  if (ctx->accuracy_records.empty()) {
    return Status::FailedPrecondition("tracking before accuracy evaluation");
  }

  int64_t long_lived = 0, predictable = 0;
  for (const auto& rec : ctx->accuracy_records) {
    if (rec.long_lived) ++long_lived;
    if (rec.predictable) ++predictable;
  }
  const double fraction =
      long_lived > 0 ? static_cast<double>(predictable) /
                           static_cast<double>(long_lived)
                     : 0.0;

  Container* stats = ctx->docs->GetContainer(kVersionStatsContainer);

  // Previous version's recorded accuracy, if any.
  double previous_fraction = -1.0;
  int64_t previous_version = 0;
  for (const auto& doc : stats->ReadPartition(ctx->region)) {
    double v = doc.body.GetNumber("version").ValueOr(0.0);
    if (static_cast<int64_t>(v) >= ctx->deployed_version) continue;
    if (static_cast<int64_t>(v) > previous_version) {
      previous_version = static_cast<int64_t>(v);
      previous_fraction = doc.body.GetNumber("predictable_fraction")
                              .ValueOr(-1.0);
    }
  }

  // Record this version's stats.
  Document doc;
  doc.partition_key = ctx->region;
  doc.id = StringPrintf("v%06lld",
                        static_cast<long long>(ctx->deployed_version));
  doc.body = Json::MakeObject();
  doc.body["version"] = ctx->deployed_version;
  doc.body["week"] = ctx->week;
  doc.body["family"] = ctx->model_name;
  doc.body["predictable_fraction"] = fraction;
  doc.body["long_lived"] = long_lived;
  SEAGULL_RETURN_NOT_OK(stats->Upsert(std::move(doc)));

  // Fallback decision.
  if (previous_fraction >= 0.0 &&
      previous_fraction - fraction > options_.regression_threshold) {
    SEAGULL_RETURN_NOT_OK(SetActiveVersion(
        ctx->docs, ctx->region, previous_version,
        StringPrintf("fallback: v%lld predictable fraction %.3f dropped "
                     "below v%lld's %.3f",
                     static_cast<long long>(ctx->deployed_version), fraction,
                     static_cast<long long>(previous_version),
                     previous_fraction)));
    ctx->AddIncident(
        IncidentSeverity::kError, name(),
        StringPrintf("accuracy regression: fell back to model version %lld",
                     static_cast<long long>(previous_version)));
    ctx->stats["tracking.fallback"] = 1.0;
  } else {
    ctx->stats["tracking.fallback"] = 0.0;
  }
  ctx->stats["tracking.predictable_fraction"] = fraction;
  return Status::OK();
}

}  // namespace seagull
