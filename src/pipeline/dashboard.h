/// \file dashboard.h
/// \brief Application Insights analog (§2.2): a "summarized view of the
/// pipeline runs to facilitate real-time monitoring and incident
/// management", fed from persisted run documents.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// Container holding persisted run summaries.
inline constexpr const char* kRunsContainer = "pipeline_runs";

/// \brief Persists run reports and renders fleet-health summaries.
class Dashboard {
 public:
  explicit Dashboard(DocStore* docs) : docs_(docs) {}

  /// Stores one run's report and stats.
  Status Record(const PipelineContext& ctx, const PipelineRunReport& report);

  /// \brief Aggregated view over all recorded runs of a region.
  struct RegionSummary {
    std::string region;
    int64_t runs = 0;
    int64_t failures = 0;
    double avg_total_millis = 0.0;
    double last_predictable_fraction = 0.0;
    int64_t incidents = 0;
    /// Transient-failure retries spent across all recorded runs.
    int64_t retries = 0;
    /// Recorded runs that exhausted retries (quarantined by the fleet).
    int64_t quarantines = 0;
  };

  /// Summaries for every region with at least one recorded run.
  std::vector<RegionSummary> Summarize() const;

  /// Multi-line text table of `Summarize()` for terminal display.
  std::string Render() const;

  /// \brief Fleet-health counters published by `FleetRunner` workers
  /// through the atomic metrics registry.
  ///
  /// Unlike `Summarize()` — which reads run documents persisted after
  /// each region completes — these values are safe to read from a
  /// monitoring thread while a fleet run is still in flight: every
  /// field is backed by a registry counter that workers update with
  /// atomic increments, so there is no read-without-sync window.
  struct LiveFleetCounters {
    int64_t regions_run = 0;
    int64_t region_failures = 0;
    int64_t retries = 0;
    int64_t quarantines = 0;
  };

  /// Reads the current fleet counters off the global metrics registry.
  static LiveFleetCounters Live();

 private:
  DocStore* docs_;
};

}  // namespace seagull
