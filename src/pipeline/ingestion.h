/// \file ingestion.h
/// \brief Data Ingestion module: reads the region-week extraction from
/// the lake store into telemetry records (§2.2, §2.4 "Data Ingestion
/// requires update of the location of input data in ADLS").

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// \brief Reads the region-week extraction and parses it.
///
/// Two wire formats share the module. CSV is parsed to flat records
/// (validation groups them). A binary `SeriesBlock` goes through the
/// streaming `SeriesBlockCursor`: the envelope is validated once, then
/// servers are decoded one at a time from column views aliasing the
/// cached blob — peak transient memory is O(largest single server)
/// on top of the blob and the grouped output, instead of the old
/// O(total_samples) column scratch. The module samples the process-RSS
/// gauges at its phase boundary and reports per-server amortized cost
/// (`ingestion.resident_bytes` / `ingestion.servers`).
class DataIngestionModule final : public PipelineModule {
 public:
  std::string name() const override { return "ingestion"; }
  Status Run(PipelineContext* ctx) override;
};

}  // namespace seagull
