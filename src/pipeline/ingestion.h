/// \file ingestion.h
/// \brief Data Ingestion module: reads the region-week extraction from
/// the lake store into telemetry records (§2.2, §2.4 "Data Ingestion
/// requires update of the location of input data in ADLS").

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// \brief Reads `telemetry/<region>/week-XXXX.csv` and parses it.
class DataIngestionModule final : public PipelineModule {
 public:
  std::string name() const override { return "ingestion"; }
  Status Run(PipelineContext* ctx) override;
};

}  // namespace seagull
