#include "pipeline/features.h"

namespace seagull {

namespace {

/// First/last present sample stamps; the observable lifespan proxy.
void ObservedSpan(const LoadSeries& load, MinuteStamp* first,
                  MinuteStamp* last_exclusive) {
  *first = load.start();
  *last_exclusive = load.start();
  bool any = false;
  for (int64_t i = 0; i < load.size(); ++i) {
    if (load.MissingAt(i)) continue;
    if (!any) *first = load.TimeAt(i);
    *last_exclusive = load.TimeAt(i) + load.interval_minutes();
    any = true;
  }
}

}  // namespace

ServerFeatures ExtractFeatures(const ServerTelemetry& telemetry,
                               MinuteStamp obs_from, MinuteStamp obs_to,
                               const AccuracyConfig& accuracy,
                               const FleetConfig& fleet) {
  ServerFeatures f;
  f.server_id = telemetry.server_id;
  ObservedSpan(telemetry.load, &f.first_seen, &f.last_seen);

  // Lifespan classification (Definition 3). A server observed from the
  // very start of the window may predate it, but the pipeline can only
  // reason about what it has seen — same as production.
  f.long_lived =
      f.last_seen - f.first_seen >= fleet.long_lived_weeks * kMinutesPerWeek;

  f.classification =
      ClassifyServer(telemetry.load, f.first_seen, f.last_seen, obs_from,
                     obs_to, accuracy, fleet);
  f.summary = Summarize(telemetry.load);
  f.default_backup_start = telemetry.default_backup_start;
  f.default_backup_end = telemetry.default_backup_end;
  f.backup_duration_minutes = telemetry.backup_duration_minutes();
  f.backup_day = DayOfWeekOf(telemetry.default_backup_start);
  return f;
}

Status FeatureExtractionModule::Run(PipelineContext* ctx) {
  if (ctx->servers.empty()) {
    return Status::FailedPrecondition("feature extraction before validation");
  }
  MinuteStamp obs_to = (ctx->week + 1) * kMinutesPerWeek;
  MinuteStamp obs_from = obs_to - 4 * kMinutesPerWeek;
  if (obs_from < 0) obs_from = 0;

  ctx->features.assign(ctx->servers.size(), ServerFeatures{});
  auto work = [&](int64_t i) {
    ctx->features[static_cast<size_t>(i)] =
        ExtractFeatures(ctx->servers[static_cast<size_t>(i)], obs_from,
                        obs_to, ctx->accuracy, ctx->fleet);
  };
  if (ctx->pool != nullptr) {
    ParallelFor(ctx->pool, static_cast<int64_t>(ctx->servers.size()), work);
  } else {
    SequentialFor(static_cast<int64_t>(ctx->servers.size()), work);
  }

  ClassCounts counts;
  for (const auto& f : ctx->features) {
    counts.Add(f.classification.server_class);
  }
  ctx->stats["features.short_lived"] = static_cast<double>(counts.short_lived);
  ctx->stats["features.stable"] = static_cast<double>(counts.stable);
  ctx->stats["features.daily"] = static_cast<double>(counts.daily);
  ctx->stats["features.weekly"] = static_cast<double>(counts.weekly);
  ctx->stats["features.no_pattern"] = static_cast<double>(counts.no_pattern);
  return Status::OK();
}

}  // namespace seagull
