#include "pipeline/dashboard.h"

#include "common/obs/metrics.h"
#include "common/strings.h"

namespace seagull {

Status Dashboard::Record(const PipelineContext& ctx,
                         const PipelineRunReport& report) {
  Container* runs = docs_->GetContainer(kRunsContainer);
  Document doc;
  doc.partition_key = ctx.region;
  doc.id = StringPrintf("w%04lld", static_cast<long long>(ctx.week));
  doc.body = Json::MakeObject();
  doc.body["week"] = ctx.week;
  doc.body["success"] = report.success;
  doc.body["total_millis"] = report.TotalMillis();
  doc.body["incidents"] = report.incident_count;
  doc.body["retries"] = report.retries;
  doc.body["quarantined"] = report.retries_exhausted;
  Json timings = Json::MakeObject();
  for (const auto& t : report.timings) timings[t.module] = t.millis;
  doc.body["timings"] = std::move(timings);
  Json stats = Json::MakeObject();
  for (const auto& [key, value] : ctx.stats) stats[key] = value;
  doc.body["stats"] = std::move(stats);
  return runs->Upsert(std::move(doc));
}

std::vector<Dashboard::RegionSummary> Dashboard::Summarize() const {
  Container* runs = docs_->GetContainer(kRunsContainer);
  std::map<std::string, RegionSummary> by_region;
  std::map<std::string, int64_t> last_week;
  for (const auto& doc : runs->Query([](const Document&) { return true; })) {
    RegionSummary& s = by_region[doc.partition_key];
    s.region = doc.partition_key;
    ++s.runs;
    if (!doc.body.GetBool("success").ValueOr(false)) ++s.failures;
    s.avg_total_millis += doc.body.GetNumber("total_millis").ValueOr(0.0);
    s.incidents +=
        static_cast<int64_t>(doc.body.GetNumber("incidents").ValueOr(0.0));
    s.retries +=
        static_cast<int64_t>(doc.body.GetNumber("retries").ValueOr(0.0));
    if (doc.body.GetBool("quarantined").ValueOr(false)) ++s.quarantines;
    int64_t week =
        static_cast<int64_t>(doc.body.GetNumber("week").ValueOr(0.0));
    if (week >= last_week[doc.partition_key]) {
      last_week[doc.partition_key] = week;
      s.last_predictable_fraction =
          doc.body["stats"]
              .GetNumber("accuracy.predictable_fraction")
              .ValueOr(0.0);
    }
  }
  std::vector<RegionSummary> out;
  for (auto& [region, s] : by_region) {
    if (s.runs > 0) s.avg_total_millis /= static_cast<double>(s.runs);
    out.push_back(s);
  }
  return out;
}

Dashboard::LiveFleetCounters Dashboard::Live() {
  auto& registry = MetricsRegistry::Global();
  LiveFleetCounters live;
  live.regions_run =
      registry.GetCounter("seagull.fleet.regions_run")->Value();
  live.region_failures =
      registry.GetCounter("seagull.fleet.region_failures")->Value();
  live.retries = registry.GetCounter("seagull.fleet.retries")->Value();
  live.quarantines =
      registry.GetCounter("seagull.fleet.quarantines")->Value();
  return live;
}

std::string Dashboard::Render() const {
  std::string out;
  out += StringPrintf("%-12s %6s %6s %12s %12s %10s %8s %6s\n", "region",
                      "runs", "fails", "avg_ms", "predictable", "incidents",
                      "retries", "quar");
  for (const auto& s : Summarize()) {
    out += StringPrintf("%-12s %6lld %6lld %12.1f %11.1f%% %10lld %8lld "
                        "%6lld\n",
                        s.region.c_str(), static_cast<long long>(s.runs),
                        static_cast<long long>(s.failures),
                        s.avg_total_millis,
                        100.0 * s.last_predictable_fraction,
                        static_cast<long long>(s.incidents),
                        static_cast<long long>(s.retries),
                        static_cast<long long>(s.quarantines));
  }
  return out;
}

}  // namespace seagull
