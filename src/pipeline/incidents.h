/// \file incidents.h
/// \brief Incident Management (§2.2): persists incidents, evaluates alert
/// rules, and summarizes what needs human attention.
///
/// Runs after each pipeline run ("Model Tracking, Pipeline Scheduler, and
/// Incident Management run concurrently with other components and do not
/// block the flow of data through the AML pipeline", §6.1) — so it is a
/// post-run processor, not a `PipelineModule`.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// Container holding persisted incidents.
inline constexpr const char* kIncidentContainer = "incidents";

/// \brief One alert raised toward on-call.
struct Alert {
  std::string region;
  int64_t week = 0;
  std::string rule;
  std::string message;
};

/// \brief Alert rule thresholds.
struct IncidentRules {
  /// Any error-severity incident alerts.
  bool alert_on_error = true;
  /// Alert when more than this many warnings accumulate in one run.
  int64_t warning_threshold = 10;
  /// Alert when the run failed outright.
  bool alert_on_failure = true;
};

/// \brief Processes the incidents of finished runs.
class IncidentManager {
 public:
  /// `retry` absorbs transient document-store faults while persisting;
  /// an incident whose write exhausts retries is dropped with an error
  /// log (never a crash) — mirroring production, where the telemetry
  /// path must not take down the pipeline it reports on.
  explicit IncidentManager(DocStore* docs, IncidentRules rules = {},
                           RetryPolicy retry = {})
      : docs_(docs), rules_(rules), retry_(retry) {}

  /// Persists the run's incidents and returns the alerts its rules fire.
  std::vector<Alert> Process(const PipelineContext& ctx,
                             const PipelineRunReport& report);

  /// All persisted incidents of a region, ordered by id.
  std::vector<Document> History(const std::string& region) const;

 private:
  DocStore* docs_;
  IncidentRules rules_;
  RetryPolicy retry_;
  int64_t sequence_ = 0;
};

const char* IncidentSeverityName(IncidentSeverity severity);

}  // namespace seagull
