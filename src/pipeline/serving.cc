#include "pipeline/serving.h"

namespace seagull {

Json SeriesToJson(const LoadSeries& series) {
  Json doc = Json::MakeObject();
  doc["start"] = series.start();
  doc["interval"] = series.interval_minutes();
  Json values = Json::MakeArray();
  for (int64_t i = 0; i < series.size(); ++i) {
    if (series.MissingAt(i)) {
      values.Append(Json());
    } else {
      values.Append(series.ValueAt(i));
    }
  }
  doc["values"] = std::move(values);
  return doc;
}

Result<LoadSeries> SeriesFromJson(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double start, doc.GetNumber("start"));
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  if (!doc["values"].is_array()) {
    return Status::Invalid("series doc has no values array");
  }
  std::vector<double> values;
  values.reserve(doc["values"].AsArray().size());
  for (const auto& v : doc["values"].AsArray()) {
    if (v.is_null()) {
      values.push_back(kMissingValue);
    } else if (v.is_number()) {
      values.push_back(v.AsDouble());
    } else {
      return Status::Invalid("series value is neither number nor null");
    }
  }
  return LoadSeries::Make(static_cast<MinuteStamp>(start),
                          static_cast<int64_t>(interval), std::move(values));
}

Result<ForecastRequest> ForecastRequest::FromJson(const Json& doc) {
  ForecastRequest req;
  SEAGULL_ASSIGN_OR_RETURN(req.server_id, doc.GetString("server_id"));
  if (req.server_id.empty()) {
    return Status::Invalid("server id must not be empty");
  }
  SEAGULL_ASSIGN_OR_RETURN(double start, doc.GetNumber("start"));
  SEAGULL_ASSIGN_OR_RETURN(double horizon,
                           doc.GetNumber("horizon_minutes"));
  req.start = static_cast<MinuteStamp>(start);
  req.horizon_minutes = static_cast<int64_t>(horizon);
  if (req.horizon_minutes <= 0) {
    return Status::Invalid("horizon must be positive");
  }
  if (!doc["recent"].is_object()) {
    return Status::Invalid("request has no recent telemetry");
  }
  SEAGULL_ASSIGN_OR_RETURN(req.recent, SeriesFromJson(doc["recent"]));
  return req;
}

Json ForecastRequest::ToJson() const {
  Json doc = Json::MakeObject();
  doc["server_id"] = server_id;
  doc["start"] = start;
  doc["horizon_minutes"] = horizon_minutes;
  doc["recent"] = SeriesToJson(recent);
  return doc;
}

namespace {

std::string ErrorResponse(const Status& status) {
  Json doc = Json::MakeObject();
  doc["ok"] = false;
  doc["error"] = status.message();
  doc["code"] = StatusCodeToString(status.code());
  return doc.Dump();
}

}  // namespace

std::string ForecastService::HandleRequest(
    const std::string& request_text) const {
  auto parsed = Json::Parse(request_text);
  if (!parsed.ok()) {
    ++failed_;
    return ErrorResponse(parsed.status());
  }
  auto request = ForecastRequest::FromJson(*parsed);
  if (!request.ok()) {
    ++failed_;
    return ErrorResponse(request.status());
  }
  auto forecast =
      endpoint_.Predict(request->server_id, request->recent,
                        request->start, request->horizon_minutes);
  if (!forecast.ok()) {
    ++failed_;
    return ErrorResponse(forecast.status());
  }
  ++served_;
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["model_version"] = endpoint_.version();
  doc["forecast"] = SeriesToJson(*forecast);
  return doc.Dump();
}

}  // namespace seagull
