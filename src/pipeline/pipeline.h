/// \file pipeline.h
/// \brief The module chain and its runner (§2.2 "AML Pipeline").

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "pipeline/context.h"

namespace seagull {

/// \brief One stage of the pipeline.
class PipelineModule {
 public:
  virtual ~PipelineModule() = default;

  /// Stable module name for timings, incidents, and the dashboard.
  virtual std::string name() const = 0;

  /// Transforms the context. A non-OK status aborts the run (and the
  /// runner records an error incident); recoverable problems should
  /// instead be appended as incidents.
  virtual Status Run(PipelineContext* ctx) = 0;
};

/// \brief Wall-clock record of one module execution.
struct ModuleTiming {
  std::string module;
  double millis = 0.0;  ///< total across every attempt
  bool ok = false;
  int64_t attempts = 1;  ///< 1 = succeeded (or failed fatally) first try
};

/// \brief Outcome of one pipeline run.
struct PipelineRunReport {
  std::string region;
  int64_t week = 0;
  bool success = false;
  std::string failure;  ///< first failing module's status text
  std::vector<ModuleTiming> timings;
  int64_t incident_count = 0;
  /// Module re-executions spent on transient (retryable) failures.
  int64_t retries = 0;
  /// True when the run failed on a *retryable* status after the retry
  /// policy's budget was spent — the fleet runner quarantines such
  /// regions instead of treating them as data bugs.
  bool retries_exhausted = false;

  double TotalMillis() const;
  /// Milliseconds spent in a module; 0 if it did not run.
  double MillisOf(const std::string& module) const;
};

/// \brief Ordered chain of modules with timing and incident capture.
class Pipeline {
 public:
  Pipeline& Add(std::unique_ptr<PipelineModule> module);

  /// Runs all modules in order, stopping at the first failure.
  /// Equivalent to `Run(ctx, RetryPolicy{})`.
  PipelineRunReport Run(PipelineContext* ctx) const;

  /// Runs all modules in order; a module failing with a retryable
  /// status (see `IsRetryableStatus`) is re-executed under `retry`,
  /// each retry recorded as a warning incident. Modules must therefore
  /// be idempotent: they assign (not append) their context outputs and
  /// their document writes are keyed upserts. Stops at the first
  /// non-retryable or retry-exhausted failure.
  PipelineRunReport Run(PipelineContext* ctx, const RetryPolicy& retry) const;

  /// The standard Seagull chain: ingestion → validation → feature
  /// extraction → training → deployment → accuracy evaluation.
  static Pipeline Standard();

 private:
  std::vector<std::unique_ptr<PipelineModule>> modules_;
};

}  // namespace seagull
