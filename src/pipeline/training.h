/// \file training.h
/// \brief Model Training module (§2.2).
///
/// Trains the configured model family per server on the week of
/// telemetry preceding the scheduling week ("ML models are trained on one
/// week of data prior to backup day per server", §5.3.1) and serializes
/// the fitted parameters for deployment. Families that do not train
/// (persistent forecast) produce a single fleet-wide entry.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// \brief Fits and serializes per-server models.
class ModelTrainingModule final : public PipelineModule {
 public:
  /// `min_history_days` servers with less history are skipped (§5.3.1
  /// considers servers with at least three days of history).
  std::string name() const override { return "training"; }
  Status Run(PipelineContext* ctx) override;
};

}  // namespace seagull
