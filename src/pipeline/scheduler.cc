#include "pipeline/scheduler.h"

namespace seagull {

int64_t PipelineScheduler::LastSuccessfulWeek(
    const std::string& region) const {
  Container* runs = docs_->GetContainer(kRunsContainer);
  int64_t last = -1;
  for (const auto& doc : runs->ReadPartition(region)) {
    if (!doc.body.GetBool("success").ValueOr(false)) continue;
    int64_t week =
        static_cast<int64_t>(doc.body.GetNumber("week").ValueOr(-1.0));
    if (week > last) last = week;
  }
  return last;
}

bool PipelineScheduler::IsDue(const std::string& region, int64_t week) const {
  int64_t last = LastSuccessfulWeek(region);
  return last < 0 || week - last >= period_weeks_;
}

PipelineScheduler::ScheduledRun PipelineScheduler::RunIfDue(
    const std::string& region, int64_t week,
    const PipelineContext& config_template) {
  ScheduledRun out;
  if (!IsDue(region, week)) {
    out.report.region = region;
    out.report.week = week;
    out.report.success = true;
    return out;
  }
  PipelineContext ctx;
  ctx.region = region;
  ctx.week = week;
  ctx.accuracy = config_template.accuracy;
  ctx.fleet = config_template.fleet;
  ctx.model_name = config_template.model_name;
  ctx.pool = config_template.pool;
  ctx.lake = lake_;
  ctx.docs = docs_;
  out.report = pipeline_->Run(&ctx);

  Dashboard dashboard(docs_);
  dashboard.Record(ctx, out.report).Abort();
  IncidentManager incidents(docs_);
  out.alerts = incidents.Process(ctx, out.report);
  return out;
}

}  // namespace seagull
