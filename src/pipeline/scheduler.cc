#include "pipeline/scheduler.h"

namespace seagull {

int64_t PipelineScheduler::LastSuccessfulWeek(
    const std::string& region) const {
  Container* runs = docs_->GetContainer(kRunsContainer);
  int64_t last = -1;
  for (const auto& doc : runs->ReadPartition(region)) {
    if (!doc.body.GetBool("success").ValueOr(false)) continue;
    int64_t week =
        static_cast<int64_t>(doc.body.GetNumber("week").ValueOr(-1.0));
    if (week > last) last = week;
  }
  return last;
}

bool PipelineScheduler::IsDue(const std::string& region, int64_t week) const {
  int64_t last = LastSuccessfulWeek(region);
  return last < 0 || week - last >= period_weeks_;
}

PipelineScheduler::ScheduledRun PipelineScheduler::RunIfDue(
    const std::string& region, int64_t week,
    const PipelineContext& config_template) {
  ScheduledRun out;
  if (!IsDue(region, week)) {
    out.report.region = region;
    out.report.week = week;
    out.report.success = true;
    return out;
  }
  PipelineContext ctx;
  ctx.region = region;
  ctx.week = week;
  ctx.accuracy = config_template.accuracy;
  ctx.fleet = config_template.fleet;
  ctx.model_name = config_template.model_name;
  ctx.pool = config_template.pool;
  ctx.lake = lake_;
  ctx.docs = docs_;
  out.report = pipeline_->Run(&ctx, retry_);

  // Record-keeping must not crash the scheduler: a transient store
  // fault is retried, and a persistent one degrades to an incident
  // (the region stays due, so the next cadence catches up).
  Dashboard dashboard(docs_);
  RetryOutcome recorded = RunWithRetry(
      retry_, region + "/dashboard.record",
      [&] { return dashboard.Record(ctx, out.report); });
  if (!recorded.status.ok()) {
    ctx.AddIncident(IncidentSeverity::kError, "dashboard",
                    "failed to record run report: " +
                        recorded.status.ToString());
  }
  IncidentManager incidents(docs_, IncidentRules{}, retry_);
  out.alerts = incidents.Process(ctx, out.report);
  return out;
}

}  // namespace seagull
