/// \file validation.h
/// \brief Data Validation module: schema and bound anomaly detection.
///
/// §2.2: "we implemented existing rules such as detection of schema and
/// bound anomalies". §2.4: the schema and numeric data properties are
/// auto-deduced from input data, persisted, verified by a domain expert,
/// and then enforced on later runs. This module implements that loop
/// against the lake store and additionally enforces the telemetry grid,
/// deduplicates rows, and drops physically impossible CPU values.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// \brief Auto-deduced data properties of one region's telemetry.
struct SchemaProperties {
  std::vector<std::string> columns;
  double cpu_min = 0.0;
  double cpu_max = 0.0;
  bool verified = false;

  Json ToJson() const;
  static Result<SchemaProperties> FromJson(const Json& doc);
};

/// \brief Validates records and groups them per server.
class DataValidationModule final : public PipelineModule {
 public:
  std::string name() const override { return "validation"; }
  Status Run(PipelineContext* ctx) override;

  /// Lake key of the persisted schema file for a region.
  static std::string SchemaKey(const std::string& region);

 private:
  /// Row rules applied to pre-grouped (binary-ingested) telemetry.
  Status RunGrouped(PipelineContext* ctx);
};

}  // namespace seagull
