/// \file tracking.h
/// \brief Model Tracking module: version history and fallback (§1:
/// "Seagull continually re-evaluates accuracy of predictions, fallback
/// to previously known good models and triggers alerts as appropriate").
///
/// After accuracy evaluation, this module records the deployed version's
/// fleet-level accuracy and compares it against the previous version. A
/// significant regression flips the active pointer back to the last known
/// good version and raises an error incident.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// Container holding per-version accuracy summaries.
inline constexpr const char* kVersionStatsContainer = "model_version_stats";

/// \brief Tracking options.
struct ModelTrackingOptions {
  /// Absolute drop in predictable fraction that triggers fallback.
  double regression_threshold = 0.15;
};

/// \brief Records version accuracy and falls back on regression.
class ModelTrackingModule final : public PipelineModule {
 public:
  explicit ModelTrackingModule(ModelTrackingOptions options = {})
      : options_(options) {}

  std::string name() const override { return "tracking"; }
  Status Run(PipelineContext* ctx) override;

 private:
  ModelTrackingOptions options_;
};

}  // namespace seagull
