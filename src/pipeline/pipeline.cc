#include "pipeline/pipeline.h"

#include "common/logging.h"
#include "common/obs/clock.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/strings.h"
#include "pipeline/accuracy.h"
#include "pipeline/deployment.h"
#include "pipeline/features.h"
#include "pipeline/inference.h"
#include "pipeline/ingestion.h"
#include "pipeline/tracking.h"
#include "pipeline/training.h"
#include "pipeline/validation.h"

namespace seagull {

double PipelineRunReport::TotalMillis() const {
  double sum = 0.0;
  for (const auto& t : timings) sum += t.millis;
  return sum;
}

double PipelineRunReport::MillisOf(const std::string& module) const {
  for (const auto& t : timings) {
    if (t.module == module) return t.millis;
  }
  return 0.0;
}

Pipeline& Pipeline::Add(std::unique_ptr<PipelineModule> module) {
  modules_.push_back(std::move(module));
  return *this;
}

PipelineRunReport Pipeline::Run(PipelineContext* ctx) const {
  return Run(ctx, RetryPolicy{});
}

PipelineRunReport Pipeline::Run(PipelineContext* ctx,
                                const RetryPolicy& retry) const {
  PipelineRunReport report;
  report.region = ctx->region;
  report.week = ctx->week;
  report.success = true;
  auto& registry = MetricsRegistry::Global();
  for (const auto& module : modules_) {
    const std::string op_key =
        ctx->region + '/' + std::to_string(ctx->week) + '/' + module->name();
    const MetricLabels labels{{"module", module->name()}};
    // Module boundary span: nests under the caller's live span (the
    // fleet runner's per-region span) via the thread-local cursor.
    ScopedSpan span("module." + module->name(), "pipeline");
    const int64_t start = ObsClock::NowMicros();
    RetryOutcome outcome = RunWithRetry(
        retry, op_key, [&] { return module->Run(ctx); },
        [&](int attempt, const Status& status) {
          ctx->AddIncident(
              IncidentSeverity::kWarning, module->name(),
              StringPrintf("transient failure on attempt %d/%d, retrying: %s",
                           attempt, retry.max_attempts,
                           status.ToString().c_str()));
        });
    const int64_t elapsed_micros = ObsClock::NowMicros() - start;
    const Status& st = outcome.status;
    registry.GetCounter("seagull.pipeline.module_runs", labels)->Increment();
    if (!st.ok()) {
      registry.GetCounter("seagull.pipeline.module_failures", labels)
          ->Increment();
    }
    if (outcome.retries() > 0) {
      registry.GetCounter("seagull.pipeline.module_retries", labels)
          ->Increment(outcome.retries());
    }
    registry.GetHistogram("seagull.pipeline.module_micros", labels)
        ->Observe(static_cast<double>(elapsed_micros));
    span.AddArg("attempts", std::to_string(outcome.attempts));
    if (!st.ok()) span.AddArg("failed", "true");
    ModuleTiming timing;
    timing.module = module->name();
    timing.millis = static_cast<double>(elapsed_micros) / 1000.0;
    timing.ok = st.ok();
    timing.attempts = outcome.attempts;
    report.retries += outcome.retries();
    report.timings.push_back(timing);
    if (!st.ok()) {
      report.retries_exhausted = outcome.exhausted;
      // Record the failure unless the module already raised an error
      // incident about itself (avoids duplicate alerts).
      bool already_reported = false;
      for (const auto& incident : ctx->incidents) {
        if (incident.module == module->name() &&
            incident.severity == IncidentSeverity::kError) {
          already_reported = true;
          break;
        }
      }
      if (!already_reported) {
        ctx->AddIncident(IncidentSeverity::kError, module->name(),
                         st.ToString());
      }
      SEAGULL_LOG_ERROR("pipeline %s week %lld: module %s failed: %s",
                        ctx->region.c_str(),
                        static_cast<long long>(ctx->week),
                        module->name().c_str(), st.ToString().c_str());
      report.success = false;
      report.failure = module->name() + ": " + st.ToString();
      break;
    }
  }
  report.incident_count = static_cast<int64_t>(ctx->incidents.size());
  return report;
}

Pipeline Pipeline::Standard() {
  Pipeline p;
  p.Add(std::make_unique<DataIngestionModule>())
      .Add(std::make_unique<DataValidationModule>())
      .Add(std::make_unique<FeatureExtractionModule>())
      .Add(std::make_unique<ModelTrainingModule>())
      .Add(std::make_unique<ModelDeploymentModule>())
      .Add(std::make_unique<InferenceModule>())
      .Add(std::make_unique<AccuracyEvaluationModule>())
      .Add(std::make_unique<ModelTrackingModule>());
  return p;
}

}  // namespace seagull
