#include "pipeline/incidents.h"

#include "common/logging.h"
#include "common/strings.h"

namespace seagull {

const char* IncidentSeverityName(IncidentSeverity severity) {
  switch (severity) {
    case IncidentSeverity::kInfo:
      return "info";
    case IncidentSeverity::kWarning:
      return "warning";
    case IncidentSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::vector<Alert> IncidentManager::Process(const PipelineContext& ctx,
                                            const PipelineRunReport& report) {
  std::vector<Alert> alerts;
  Container* container = docs_->GetContainer(kIncidentContainer);

  int64_t warnings = 0;
  for (const auto& incident : ctx.incidents) {
    Document doc;
    doc.partition_key = ctx.region;
    doc.id = StringPrintf("w%04lld:%06lld",
                          static_cast<long long>(ctx.week),
                          static_cast<long long>(sequence_++));
    doc.body = Json::MakeObject();
    doc.body["week"] = ctx.week;
    doc.body["module"] = incident.module;
    doc.body["severity"] = IncidentSeverityName(incident.severity);
    doc.body["message"] = incident.message;
    RetryOutcome persisted = RunWithRetry(
        retry_, ctx.region + "/incident/" + doc.id,
        [&] { return container->Upsert(doc); });
    if (!persisted.status.ok()) {
      SEAGULL_LOG_ERROR("dropping incident %s/%s: %s", ctx.region.c_str(),
                        doc.id.c_str(),
                        persisted.status.ToString().c_str());
    }

    if (incident.severity == IncidentSeverity::kWarning) ++warnings;
    if (incident.severity == IncidentSeverity::kError &&
        rules_.alert_on_error) {
      alerts.push_back({ctx.region, ctx.week, "error_incident",
                        incident.module + ": " + incident.message});
    }
  }
  if (warnings > rules_.warning_threshold) {
    alerts.push_back(
        {ctx.region, ctx.week, "warning_flood",
         StringPrintf("%lld warnings in one run",
                      static_cast<long long>(warnings))});
  }
  if (!report.success && rules_.alert_on_failure) {
    alerts.push_back(
        {ctx.region, ctx.week, "run_failed", report.failure});
  }
  return alerts;
}

std::vector<Document> IncidentManager::History(
    const std::string& region) const {
  return docs_->GetContainer(kIncidentContainer)->ReadPartition(region);
}

}  // namespace seagull
