/// \file inference.h
/// \brief Inference module (§2.2, Figure 1).
///
/// "The pipeline ... performs inference ... Results are stored in Cosmos
/// DB ... the predictions are input to the backup scheduling algorithm."
/// After deployment, this module forecasts the scheduling week for every
/// server through the freshly activated endpoint and materializes each
/// day's *predicted lowest-load window* into the document store — the
/// compact form the scheduler actually consumes. The scheduler prefers
/// these stored predictions and falls back to a live endpoint query for
/// servers or days that lack one.

#pragma once

#include "pipeline/pipeline.h"

namespace seagull {

/// Container holding per-(server, day) predicted LL windows.
inline constexpr const char* kPredictionsContainer = "predictions";

/// \brief Materializes next-week predicted LL windows per server.
class InferenceModule final : public PipelineModule {
 public:
  std::string name() const override { return "inference"; }
  Status Run(PipelineContext* ctx) override;

  /// Document id of one (day, server) prediction.
  static std::string PredictionId(int64_t day_index,
                                  const std::string& server_id);
};

}  // namespace seagull
