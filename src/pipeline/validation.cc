#include "pipeline/validation.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace seagull {

Json SchemaProperties::ToJson() const {
  Json doc = Json::MakeObject();
  Json cols = Json::MakeArray();
  for (const auto& c : columns) cols.Append(c);
  doc["columns"] = std::move(cols);
  doc["cpu_min"] = cpu_min;
  doc["cpu_max"] = cpu_max;
  doc["verified"] = verified;
  return doc;
}

Result<SchemaProperties> SchemaProperties::FromJson(const Json& doc) {
  SchemaProperties p;
  if (!doc["columns"].is_array()) {
    return Status::Invalid("schema doc has no columns array");
  }
  for (const auto& c : doc["columns"].AsArray()) {
    if (!c.is_string()) return Status::Invalid("non-string column name");
    p.columns.push_back(c.AsString());
  }
  SEAGULL_ASSIGN_OR_RETURN(p.cpu_min, doc.GetNumber("cpu_min"));
  SEAGULL_ASSIGN_OR_RETURN(p.cpu_max, doc.GetNumber("cpu_max"));
  SEAGULL_ASSIGN_OR_RETURN(p.verified, doc.GetBool("verified"));
  return p;
}

std::string DataValidationModule::SchemaKey(const std::string& region) {
  return "schema/" + region + ".json";
}

Status DataValidationModule::Run(PipelineContext* ctx) {
  // Binary ingestion (SeriesBlock) delivers pre-grouped servers with no
  // flat-records intermediate; the rules below have a grouped
  // equivalent of every row rule so both paths validate identically.
  const bool grouped = ctx->records.empty() && !ctx->servers.empty();
  if (ctx->records.empty() && !grouped) {
    return Status::FailedPrecondition("validation before ingestion");
  }

  // --- schema handling: deduce on first run, enforce afterwards ---
  SchemaProperties observed;
  observed.columns.assign(kTelemetryColumns, kTelemetryColumns + 5);
  if (grouped) {
    bool any = false;
    for (const auto& st : ctx->servers) {
      for (double v : st.load.values()) {
        if (IsMissing(v)) continue;
        if (!any) {
          observed.cpu_min = observed.cpu_max = v;
          any = true;
        } else {
          observed.cpu_min = std::min(observed.cpu_min, v);
          observed.cpu_max = std::max(observed.cpu_max, v);
        }
      }
    }
  } else {
    observed.cpu_min = ctx->records.front().avg_cpu;
    observed.cpu_max = ctx->records.front().avg_cpu;
    for (const auto& r : ctx->records) {
      observed.cpu_min = std::min(observed.cpu_min, r.avg_cpu);
      observed.cpu_max = std::max(observed.cpu_max, r.avg_cpu);
    }
  }

  const std::string schema_key = SchemaKey(ctx->region);
  if (ctx->lake != nullptr && ctx->lake->Exists(schema_key)) {
    SEAGULL_ASSIGN_OR_RETURN(std::string text, ctx->lake->Get(schema_key));
    SEAGULL_ASSIGN_OR_RETURN(Json doc, Json::Parse(text));
    SEAGULL_ASSIGN_OR_RETURN(SchemaProperties expected,
                             SchemaProperties::FromJson(doc));
    if (expected.columns != observed.columns) {
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       "schema anomaly: column set changed");
      return Status::DataLoss("schema anomaly in region " + ctx->region);
    }
    // Bound anomaly on the whole-file level: the paper's rule flags data
    // drifting far outside historically observed bounds.
    double margin = 0.25 * (expected.cpu_max - expected.cpu_min) + 5.0;
    if (observed.cpu_max > expected.cpu_max + margin ||
        observed.cpu_min < expected.cpu_min - margin) {
      ctx->AddIncident(
          IncidentSeverity::kWarning, name(),
          StringPrintf("bound anomaly: observed cpu range [%.2f, %.2f] vs "
                       "expected [%.2f, %.2f]",
                       observed.cpu_min, observed.cpu_max, expected.cpu_min,
                       expected.cpu_max));
    }
  } else if (ctx->lake != nullptr) {
    // First run for this region: persist the deduced properties. In
    // production a domain expert verifies the file before enforcement;
    // the simulator trusts its own generator.
    observed.verified = true;
    SEAGULL_RETURN_NOT_OK(
        ctx->lake->Put(schema_key, observed.ToJson().Dump()));
    ctx->AddIncident(IncidentSeverity::kInfo, name(),
                     "deduced schema for region " + ctx->region);
  }

  // --- row-level rules ---
  if (grouped) return RunGrouped(ctx);
  int64_t dropped_bounds = 0, dropped_grid = 0, duplicates = 0,
          dropped_window = 0;
  // Dedup state: per server, the output index of each timestamp. Rows
  // arrive grouped by server in practice, so the per-server map is
  // looked up once per server run, not once per row.
  std::unordered_map<std::string, std::unordered_map<MinuteStamp, size_t>>
      seen;
  std::unordered_map<MinuteStamp, size_t>* current = nullptr;
  const std::string* current_id = nullptr;
  std::vector<TelemetryRecord> clean;
  clean.reserve(ctx->records.size());
  for (const auto& r : ctx->records) {
    if (r.avg_cpu < 0.0 || r.avg_cpu > 100.0) {
      ++dropped_bounds;
      continue;
    }
    if (r.timestamp % kServerIntervalMinutes != 0) {
      ++dropped_grid;
      continue;
    }
    if (r.default_backup_end <= r.default_backup_start ||
        r.default_backup_end - r.default_backup_start > kMinutesPerDay) {
      ++dropped_window;
      continue;
    }
    if (current_id == nullptr || *current_id != r.server_id) {
      auto [it, inserted] = seen.try_emplace(r.server_id);
      if (inserted) {
        it->second.reserve(4096);
      }
      current = &it->second;
      current_id = &it->first;
    }
    auto [slot, inserted] = current->try_emplace(r.timestamp, clean.size());
    if (!inserted) {
      // Last write wins, as in the production de-duplication rule.
      clean[slot->second] = r;
      ++duplicates;
      continue;
    }
    clean.push_back(r);
  }

  ctx->stats["validation.dropped_bounds"] = static_cast<double>(dropped_bounds);
  ctx->stats["validation.dropped_grid"] = static_cast<double>(dropped_grid);
  ctx->stats["validation.dropped_window"] = static_cast<double>(dropped_window);
  ctx->stats["validation.duplicates"] = static_cast<double>(duplicates);
  int64_t total_dropped = dropped_bounds + dropped_grid + dropped_window;
  if (total_dropped > 0) {
    ctx->AddIncident(IncidentSeverity::kWarning, name(),
                     StringPrintf("dropped %lld invalid rows",
                                  static_cast<long long>(total_dropped)));
  }
  if (clean.empty()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "all rows failed validation");
    return Status::DataLoss("all rows failed validation");
  }
  // Reject the file wholesale when the invalid fraction is implausible.
  double invalid_fraction = static_cast<double>(total_dropped) /
                            static_cast<double>(ctx->records.size());
  if (invalid_fraction > 0.5) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "more than half of the rows are invalid");
    return Status::DataLoss("invalid input data for region " + ctx->region);
  }

  SEAGULL_ASSIGN_OR_RETURN(ctx->servers, GroupByServer(clean));
  ctx->records = std::move(clean);
  ctx->stats["validation.servers"] = static_cast<double>(ctx->servers.size());
  return Status::OK();
}

Status DataValidationModule::RunGrouped(PipelineContext* ctx) {
  // The grouped mirror of the flat row rules. Each present sample is
  // one "row". Off-grid rows cannot exist here (the block decoder
  // rejects them) and duplicates were collapsed at encode time, so
  // those two counters are structurally zero.
  int64_t total_rows = 0;
  for (const auto& st : ctx->servers) total_rows += st.load.CountPresent();

  int64_t dropped_bounds = 0, dropped_window = 0;
  std::vector<ServerTelemetry> kept;
  kept.reserve(ctx->servers.size());
  for (auto& st : ctx->servers) {
    // Out-of-bounds samples become gaps, exactly as dropped CSV rows do.
    int64_t first = -1, last = -1;
    for (int64_t i = 0; i < st.load.size(); ++i) {
      if (st.load.MissingAt(i)) continue;
      const double v = st.load.ValueAt(i);
      if (v < 0.0 || v > 100.0) {
        st.load.SetValue(i, kMissingValue);
        ++dropped_bounds;
        continue;
      }
      if (first < 0) first = i;
      last = i;
    }
    if (first < 0) continue;  // every sample invalid: server vanishes
    const int64_t in_bounds = st.load.CountPresent();
    if (st.default_backup_end <= st.default_backup_start ||
        st.default_backup_end - st.default_backup_start > kMinutesPerDay) {
      // A broken backup window taints every row of the server, as each
      // flat row carries the same window fields.
      dropped_window += in_bounds;
      continue;
    }
    // GroupByServer derives the series extent from surviving rows, so
    // re-trim when an edge sample was invalidated.
    if (first > 0 || last < st.load.size() - 1) {
      st.load = st.load.Slice(st.load.TimeAt(first),
                              st.load.TimeAt(last) + st.load.interval_minutes());
    }
    kept.push_back(std::move(st));
  }

  ctx->stats["validation.dropped_bounds"] = static_cast<double>(dropped_bounds);
  ctx->stats["validation.dropped_grid"] = 0.0;
  ctx->stats["validation.dropped_window"] = static_cast<double>(dropped_window);
  ctx->stats["validation.duplicates"] = 0.0;
  const int64_t total_dropped = dropped_bounds + dropped_window;
  if (total_dropped > 0) {
    ctx->AddIncident(IncidentSeverity::kWarning, name(),
                     StringPrintf("dropped %lld invalid rows",
                                  static_cast<long long>(total_dropped)));
  }
  if (kept.empty()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "all rows failed validation");
    return Status::DataLoss("all rows failed validation");
  }
  if (total_rows > 0 && static_cast<double>(total_dropped) /
                                static_cast<double>(total_rows) >
                            0.5) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "more than half of the rows are invalid");
    return Status::DataLoss("invalid input data for region " + ctx->region);
  }

  ctx->servers = std::move(kept);
  ctx->stats["validation.servers"] = static_cast<double>(ctx->servers.size());
  return Status::OK();
}

}  // namespace seagull
