/// \file serving.h
/// \brief JSON request/response serving for deployed models.
///
/// In production the deployed model is "accessible through a REST
/// endpoint" (§2.2). This module implements that contract — a JSON
/// request carrying the server id, forecast range, and recent telemetry,
/// and a JSON response carrying the prediction or a structured error —
/// without binding to any transport: callers hand request text to
/// `HandleRequest` and ship the response text however they like (the
/// tests drive it in-process; an HTTP server would be a thin shim).

#pragma once

#include <string>

#include "pipeline/deployment.h"

namespace seagull {

/// \brief Parsed forecast request.
struct ForecastRequest {
  std::string server_id;
  MinuteStamp start = 0;
  int64_t horizon_minutes = 0;
  /// Recent telemetry: sample interval plus (timestamp, value) pairs.
  LoadSeries recent;

  /// Parses the JSON wire form:
  /// {"server_id": "...", "start": M, "horizon_minutes": M,
  ///  "recent": {"start": M, "interval": M, "values": [v|null, ...]}}
  static Result<ForecastRequest> FromJson(const Json& doc);
  Json ToJson() const;
};

/// \brief Serving endpoint wrapping a `ModelEndpoint`.
class ForecastService {
 public:
  explicit ForecastService(ModelEndpoint endpoint)
      : endpoint_(std::move(endpoint)) {}

  const ModelEndpoint& endpoint() const { return endpoint_; }

  /// Handles one request (JSON text in, JSON text out). Responses:
  ///   success: {"ok": true, "model_version": V, "forecast":
  ///             {"start": M, "interval": M, "values": [...]}}
  ///   failure: {"ok": false, "error": "...", "code": "..."}
  /// Malformed requests yield a failure response, never a crash.
  std::string HandleRequest(const std::string& request_text) const;

  /// Requests served / failed since construction.
  int64_t requests_served() const { return served_; }
  int64_t requests_failed() const { return failed_; }

 private:
  ModelEndpoint endpoint_;
  mutable int64_t served_ = 0;
  mutable int64_t failed_ = 0;
};

/// Serializes a load series into the wire form used by requests and
/// responses (missing samples encode as JSON null).
Json SeriesToJson(const LoadSeries& series);

/// Parses the wire form back into a series.
Result<LoadSeries> SeriesFromJson(const Json& doc);

}  // namespace seagull
