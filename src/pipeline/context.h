/// \file context.h
/// \brief Shared state flowing through one pipeline run.
///
/// One `PipelineContext` corresponds to one weekly run of the AML
/// pipeline for one region (§2.2): modules consume what earlier modules
/// produced and append incidents, metrics, and results. Storage handles
/// (lake + document store) are borrowed, mirroring the production setup
/// where ADLS and Cosmos DB outlive any single run.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "metrics/classify.h"
#include "parallel/thread_pool.h"
#include "store/doc_store.h"
#include "store/lake_store.h"
#include "telemetry/records.h"
#include "timeseries/stats.h"

namespace seagull {

/// \brief Severity of an operational incident (§2.2, Application
/// Insights examples: missing/invalid input, module errors, failed
/// deployment).
enum class IncidentSeverity : int8_t {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// \brief One structured incident raised during a run.
struct Incident {
  IncidentSeverity severity = IncidentSeverity::kInfo;
  std::string module;
  std::string message;
};

/// \brief Features extracted per server (§2.2 Feature Extraction).
struct ServerFeatures {
  std::string server_id;
  MinuteStamp first_seen = 0;
  MinuteStamp last_seen = 0;  // exclusive
  bool long_lived = false;
  ClassificationResult classification;
  SeriesSummary summary;
  /// Backup-day facts carried from telemetry.
  MinuteStamp default_backup_start = 0;
  MinuteStamp default_backup_end = 0;
  int64_t backup_duration_minutes = 0;
  DayOfWeek backup_day = DayOfWeek::kSunday;
};

/// \brief Per-server accuracy/predictability record produced by the
/// Accuracy Evaluation module and consumed by the backup scheduler.
struct ServerAccuracy {
  std::string server_id;
  bool long_lived = false;
  bool predictable = false;
  /// Joint §4 metrics on the most recent evaluated backup day.
  bool last_window_correct = false;
  bool last_load_accurate = false;
  int64_t weeks_evaluated = 0;
};

/// \brief Mutable state of one pipeline run.
struct PipelineContext {
  // --- run identity & configuration ---
  std::string region;
  /// Extraction week: the run sees telemetry up to the end of this week
  /// and schedules backups for the following week.
  int64_t week = 0;
  AccuracyConfig accuracy;
  FleetConfig fleet;
  /// Forecast-model family to train/deploy this run.
  std::string model_name = "persistent_prev_day";

  // --- borrowed infrastructure ---
  const LakeStore* lake = nullptr;
  DocStore* docs = nullptr;
  /// Optional worker pool; modules fall back to sequential execution
  /// when null (the Fig. 12(b) comparison toggles this).
  ThreadPool* pool = nullptr;

  // --- data products, in module order ---
  std::vector<TelemetryRecord> records;       // ingestion
  std::vector<ServerTelemetry> servers;       // validation (grouped, clean)
  std::vector<ServerFeatures> features;       // feature extraction
  /// Serialized fitted model per server id (families that train); the
  /// heuristic families deploy a single fleet-wide entry under "".
  std::map<std::string, Json> trained;        // training
  /// Version number assigned by deployment this run.
  int64_t deployed_version = 0;               // deployment
  std::vector<ServerAccuracy> accuracy_records;  // accuracy evaluation

  // --- operational products ---
  std::vector<Incident> incidents;
  /// Free-form per-module counters for the dashboard.
  std::map<std::string, double> stats;

  void AddIncident(IncidentSeverity severity, const std::string& module,
                   const std::string& message) {
    incidents.push_back({severity, module, message});
  }

  /// Features lookup by server id; nullptr if absent.
  const ServerFeatures* FindFeatures(const std::string& server_id) const {
    for (const auto& f : features) {
      if (f.server_id == server_id) return &f;
    }
    return nullptr;
  }
};

}  // namespace seagull
