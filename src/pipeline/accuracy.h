/// \file accuracy.h
/// \brief Accuracy Evaluation module (§2.2, §4).
///
/// For every server, re-generates the forecasts of the last three weekly
/// backup days (conditioning only on telemetry before each day), applies
/// the joint LL-window metrics, derives the Definition 9 predictability
/// verdict, and persists per-server accuracy documents for the scheduler.
/// This module is the pipeline's bottleneck at large inputs (§6.1), so it
/// is partitioned per server and optionally parallel — the Fig. 12(b)
/// comparison.

#pragma once

#include "pipeline/deployment.h"
#include "pipeline/pipeline.h"

namespace seagull {

/// Container holding per-server accuracy/predictability documents.
inline constexpr const char* kAccuracyContainer = "accuracy";

/// \brief Options shaping the evaluation cost profile.
struct AccuracyEvaluationOptions {
  /// Evaluate every day of the evidence weeks, not just the backup day —
  /// the "each day one week ahead" mode of Fig. 12(b) used to move
  /// backups to a better weekday.
  bool evaluate_all_days = false;
};

/// \brief The evaluation module.
class AccuracyEvaluationModule final : public PipelineModule {
 public:
  explicit AccuracyEvaluationModule(AccuracyEvaluationOptions options = {})
      : options_(options) {}

  std::string name() const override { return "accuracy"; }
  Status Run(PipelineContext* ctx) override;

 private:
  AccuracyEvaluationOptions options_;
};

/// Evaluates one server against an endpoint: the Definition 9 gate over
/// the three weeks preceding `target_week`. Exposed for tests and the
/// Fig. 12(b) bench.
ServerAccuracy EvaluateServerAccuracy(const ModelEndpoint& endpoint,
                                      const ServerTelemetry& telemetry,
                                      const ServerFeatures& features,
                                      int64_t target_week,
                                      const AccuracyConfig& accuracy,
                                      const FleetConfig& fleet,
                                      bool evaluate_all_days = false);

}  // namespace seagull
