#include "pipeline/fleet_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/logging.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/strings.h"
#include "pipeline/incidents.h"

namespace seagull {

int64_t FleetRunResult::SuccessCount() const {
  int64_t n = 0;
  for (const auto& run : runs) {
    if (run.report.success) ++n;
  }
  return n;
}

int64_t FleetRunResult::FailureCount() const {
  return static_cast<int64_t>(runs.size()) - SuccessCount();
}

int64_t FleetRunResult::TotalRetries() const {
  int64_t n = 0;
  for (const auto& run : runs) n += run.report.retries;
  return n;
}

std::vector<Alert> FleetRunResult::AllAlerts() const {
  std::vector<Alert> alerts;
  for (const auto& run : runs) {
    alerts.insert(alerts.end(), run.alerts.begin(), run.alerts.end());
  }
  return alerts;
}

FleetRunner::FleetRunner(const LakeStore* lake, DocStore* docs,
                         FleetOptions options, PipelineFactory factory)
    : lake_(lake), docs_(docs), options_(options),
      factory_(std::move(factory)) {}

FleetRunResult FleetRunner::Run(const std::vector<FleetJob>& jobs,
                                const PipelineContext& config_template) {
  FleetRunResult result;
  result.jobs = options_.jobs < 1 ? 1 : options_.jobs;
  result.runs.resize(jobs.size());

  // One pool serves both levels: region jobs fan out here, and each
  // pipeline's per-server loops nest into the same workers via
  // `ctx.pool`. With jobs <= 1 no pool exists and every module falls
  // back to `SequentialFor` — the determinism reference.
  std::unique_ptr<ThreadPool> pool;
  if (result.jobs > 1) pool = std::make_unique<ThreadPool>(result.jobs);

  // The fleet span is the root of this run's trace tree; per-region
  // spans parent to it explicitly because they execute on pool workers
  // where the thread-local span cursor is empty.
  ScopedSpan fleet_span("fleet.run", "fleet");
  const int64_t fleet_span_id = fleet_span.id();
  auto& registry = MetricsRegistry::Global();
  Counter* regions_run = registry.GetCounter("seagull.fleet.regions_run");
  Counter* region_failures =
      registry.GetCounter("seagull.fleet.region_failures");
  Counter* fleet_retries = registry.GetCounter("seagull.fleet.retries");

  const auto start = std::chrono::steady_clock::now();
  auto run_job = [&](int64_t i) {
    const FleetJob& job = jobs[static_cast<size_t>(i)];
    ScopedSpan region_span("region." + job.region, "fleet", fleet_span_id);
    // Fresh pipeline + scheduler per job: modules keep per-run state and
    // must not be shared across concurrently executing regions.
    Pipeline pipeline = factory_();
    PipelineScheduler scheduler(&pipeline, lake_, docs_,
                                options_.period_weeks, options_.retry);
    PipelineContext config = config_template;
    if (pool != nullptr) config.pool = pool.get();
    PipelineScheduler::ScheduledRun& run = result.runs[static_cast<size_t>(i)];
    run = scheduler.RunIfDue(job.region, job.week, config);
    // Live fleet-health counters: workers publish through the atomic
    // registry so a dashboard thread may read mid-run without racing
    // the run loop (the chaos suite proves this under tsan).
    regions_run->Increment();
    if (!run.report.success) region_failures->Increment();
    if (run.report.retries > 0) fleet_retries->Increment(run.report.retries);
  };
  const int64_t n = static_cast<int64_t>(jobs.size());
  // Shards partition the job list at fixed indices (independent of the
  // job count), each shard runs to a barrier, then the retire hook
  // walks its runs sequentially in job order — so a bounded-RSS driver
  // releases one shard's working set before the next one starts, and
  // the byte-determinism contract is untouched.
  const int64_t shard =
      options_.max_resident_regions > 0 ? options_.max_resident_regions : n;
  for (int64_t shard_begin = 0; shard_begin < n; shard_begin += shard) {
    const int64_t shard_end = std::min(n, shard_begin + shard);
    if (pool != nullptr) {
      // Grain 1: a chunk is one whole region pipeline.
      ParallelForChunked(pool.get(), shard_end - shard_begin, /*grain=*/1,
                         [&](int64_t begin, int64_t end) {
                           for (int64_t i = begin; i < end; ++i) {
                             run_job(shard_begin + i);
                           }
                         });
    } else {
      SequentialFor(shard_end - shard_begin,
                    [&](int64_t i) { run_job(shard_begin + i); });
    }
    if (options_.retire) {
      for (int64_t i = shard_begin; i < shard_end; ++i) {
        options_.retire(jobs[static_cast<size_t>(i)],
                        result.runs[static_cast<size_t>(i)]);
      }
    }
    // Shard edges are the fleet's phase boundaries: the peak-RSS gauge
    // sampled here shows whether retirement actually bounded the run.
    // The optional trim first returns the retired shard's freed pages
    // so the current-RSS reading reflects live memory, not arena reuse.
    if (options_.trim_at_shard_edges) TrimMallocArenas();
    SampleProcessRss();
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_millis =
      std::chrono::duration<double, std::milli>(end - start).count();

  // Quarantine pass — sequential, in job order, so the incident docs it
  // writes are deterministic regardless of how the runs interleaved.
  Counter* quarantines = registry.GetCounter("seagull.fleet.quarantines");
  Container* incidents = docs_->GetContainer(kIncidentContainer);
  for (size_t i = 0; i < result.runs.size(); ++i) {
    auto& run = result.runs[i];
    const PipelineRunReport& report = run.report;
    if (report.success || !report.retries_exhausted) continue;
    quarantines->Increment();
    result.quarantined.push_back({report.region, report.week,
                                  report.failure});
    Document doc;
    doc.partition_key = report.region;
    doc.id = StringPrintf("w%04lld:quarantine",
                          static_cast<long long>(report.week));
    doc.body = Json::MakeObject();
    doc.body["week"] = report.week;
    doc.body["module"] = "fleet";
    doc.body["severity"] = IncidentSeverityName(IncidentSeverity::kError);
    doc.body["message"] =
        "region quarantined after exhausting retries: " + report.failure;
    RetryOutcome persisted =
        RunWithRetry(options_.retry, report.region + "/quarantine",
                     [&] { return incidents->Upsert(doc); });
    if (!persisted.status.ok()) {
      SEAGULL_LOG_ERROR("dropping quarantine incident for %s: %s",
                        report.region.c_str(),
                        persisted.status.ToString().c_str());
    }
    run.alerts.push_back({report.region, report.week, "region_quarantined",
                          "pipeline exhausted retries: " + report.failure});
  }
  return result;
}

}  // namespace seagull
