#include "pipeline/ingestion.h"

#include "common/obs/metrics.h"
#include "common/strings.h"
#include "telemetry/series_block.h"

namespace seagull {

Status DataIngestionModule::Run(PipelineContext* ctx) {
  if (ctx->lake == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  const std::string key = LakeStore::TelemetryKey(ctx->region, ctx->week);
  if (!ctx->lake->Exists(key)) {
    // Missing input data is the canonical §2.2 incident example.
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "missing input blob: " + key);
    return Status::NotFound("missing input blob: " + key);
  }
  SEAGULL_ASSIGN_OR_RETURN(BlobRef blob, ctx->lake->GetBlob(key));

  int64_t rows = 0;
  int64_t resident_bytes = 0;
  const char* format = "csv";
  if (IsSeriesBlock(blob.view())) {
    // Binary fast path: stream the cursor server-by-server straight
    // into grouped per-server form — no flat-records intermediate, no
    // column scratch copies, and with mmap enabled no heap copy of the
    // blob either: the views alias the page-cache-backed mapping. The
    // cursor pins the blob's owner, so the views stay valid even if
    // the blob cache evicts the entry while this module runs.
    // Validation detects the pre-grouped input via ctx->servers.
    format = "binary";
    auto cursor = SeriesBlockCursor::Open(blob);
    if (!cursor.ok()) {
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       cursor.status().ToString());
      return cursor.status();
    }
    ctx->servers.reserve(static_cast<size_t>(cursor->size()));
    Status streamed =
        StreamSeriesBlockServers(*cursor, [&](ServerTelemetry&& st) {
          resident_bytes += ApproxTelemetryBytes(st);
          ctx->servers.push_back(std::move(st));
          return Status::OK();
        });
    if (!streamed.ok()) {
      ctx->servers.clear();
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       streamed.ToString());
      return streamed;
    }
    rows = cursor->info().total_samples;
  } else {
    auto records = ParseTelemetryCsv(blob.view());
    if (!records.ok()) {
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       records.status().ToString());
      return records.status();
    }
    ctx->records = std::move(records).ValueUnsafe();
    rows = static_cast<int64_t>(ctx->records.size());
    resident_bytes =
        static_cast<int64_t>(ctx->records.size() * sizeof(TelemetryRecord));
  }

  ctx->stats["ingestion.rows"] = static_cast<double>(rows);
  ctx->stats["ingestion.bytes"] = static_cast<double>(blob.size());
  // Format-dependent by design (flat records vs grouped series), so the
  // cross-format determinism suite canonicalizes it like ingestion.bytes.
  ctx->stats["ingestion.resident_bytes"] = static_cast<double>(resident_bytes);
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("seagull.pipeline.ingest_rows", {{"format", format}})
      ->Increment(rows);
  reg.GetCounter("seagull.pipeline.ingest_bytes", {{"format", format}})
      ->Increment(static_cast<int64_t>(blob.size()));
  reg.GetCounter("seagull.pipeline.ingest_resident_bytes",
                 {{"format", format}})
      ->Increment(resident_bytes);
  // Phase-boundary memory sample: ingestion holds a region's largest
  // transient working set, so its edge is where the peak-RSS gauge is
  // most informative.
  SampleProcessRss();
  if (rows == 0) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "input blob has no rows: " + key);
    return Status::DataLoss("input blob has no rows: " + key);
  }
  return Status::OK();
}

}  // namespace seagull
