#include "pipeline/ingestion.h"

#include "common/strings.h"

namespace seagull {

Status DataIngestionModule::Run(PipelineContext* ctx) {
  if (ctx->lake == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  const std::string key = LakeStore::TelemetryKey(ctx->region, ctx->week);
  if (!ctx->lake->Exists(key)) {
    // Missing input data is the canonical §2.2 incident example.
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "missing input blob: " + key);
    return Status::NotFound("missing input blob: " + key);
  }
  SEAGULL_ASSIGN_OR_RETURN(std::string text, ctx->lake->Get(key));
  auto records = ParseTelemetryCsv(text);
  if (!records.ok()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     records.status().ToString());
    return records.status();
  }
  ctx->records = std::move(records).ValueUnsafe();
  ctx->stats["ingestion.rows"] = static_cast<double>(ctx->records.size());
  SEAGULL_ASSIGN_OR_RETURN(int64_t bytes, ctx->lake->SizeOf(key));
  ctx->stats["ingestion.bytes"] = static_cast<double>(bytes);
  if (ctx->records.empty()) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "input blob has no rows: " + key);
    return Status::DataLoss("input blob has no rows: " + key);
  }
  return Status::OK();
}

}  // namespace seagull
