#include "pipeline/ingestion.h"

#include "common/obs/metrics.h"
#include "common/strings.h"
#include "telemetry/series_block.h"

namespace seagull {

Status DataIngestionModule::Run(PipelineContext* ctx) {
  if (ctx->lake == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  const std::string key = LakeStore::TelemetryKey(ctx->region, ctx->week);
  if (!ctx->lake->Exists(key)) {
    // Missing input data is the canonical §2.2 incident example.
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "missing input blob: " + key);
    return Status::NotFound("missing input blob: " + key);
  }
  SEAGULL_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> blob,
                           ctx->lake->GetShared(key));

  int64_t rows = 0;
  const char* format = "csv";
  if (IsSeriesBlock(*blob)) {
    // Binary fast path: decode straight into grouped per-server form,
    // skipping the flat-records intermediate. Validation detects the
    // pre-grouped input via ctx->servers.
    format = "binary";
    auto info = PeekSeriesBlock(*blob);
    if (!info.ok()) {
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       info.status().ToString());
      return info.status();
    }
    auto servers = DecodeSeriesBlockToServers(*blob);
    if (!servers.ok()) {
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       servers.status().ToString());
      return servers.status();
    }
    ctx->servers = std::move(servers).ValueUnsafe();
    rows = info->total_samples;
  } else {
    auto records = ParseTelemetryCsv(*blob);
    if (!records.ok()) {
      ctx->AddIncident(IncidentSeverity::kError, name(),
                       records.status().ToString());
      return records.status();
    }
    ctx->records = std::move(records).ValueUnsafe();
    rows = static_cast<int64_t>(ctx->records.size());
  }

  ctx->stats["ingestion.rows"] = static_cast<double>(rows);
  ctx->stats["ingestion.bytes"] = static_cast<double>(blob->size());
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("seagull.pipeline.ingest_rows", {{"format", format}})
      ->Increment(rows);
  reg.GetCounter("seagull.pipeline.ingest_bytes", {{"format", format}})
      ->Increment(static_cast<int64_t>(blob->size()));
  if (rows == 0) {
    ctx->AddIncident(IncidentSeverity::kError, name(),
                     "input blob has no rows: " + key);
    return Status::DataLoss("input blob has no rows: " + key);
  }
  return Status::OK();
}

}  // namespace seagull
