/// \file deployment.h
/// \brief Model Deployment + the REST-endpoint analog (§2.2).
///
/// Deployment packages the trained models into a versioned registry
/// document in the document store, verifies the package loads back into
/// a serving endpoint (the production health check behind "failed model
/// deployment" incidents), and flips the region's active-version pointer.
/// `ModelEndpoint` is the in-process stand-in for the REST endpoint the
/// scheduler queries daily.

#pragma once

#include <map>
#include <memory>

#include "forecast/model.h"
#include "pipeline/pipeline.h"

namespace seagull {

/// Document-store container names used by deployment and tracking.
inline constexpr const char* kModelRegistryContainer = "model_registry";
inline constexpr const char* kActiveModelDocId = "active";

/// \brief In-process serving endpoint holding deserialized models.
class ModelEndpoint {
 public:
  /// Loads every model of a registry version document.
  static Result<ModelEndpoint> FromVersionDoc(const Json& doc);

  const std::string& family() const { return family_; }
  int64_t version() const { return version_; }
  int64_t model_count() const { return static_cast<int64_t>(models_.size()); }

  /// Predicts load for a server over [start, start+horizon). Servers
  /// without a per-server model are served by the fleet-wide model if
  /// the family deploys one; otherwise NotFound.
  Result<LoadSeries> Predict(const std::string& server_id,
                             const LoadSeries& recent, MinuteStamp start,
                             int64_t horizon_minutes) const;

  /// True if the endpoint can serve this server.
  bool Serves(const std::string& server_id) const;

 private:
  std::string family_;
  int64_t version_ = 0;
  /// Key "" holds the fleet-wide model for heuristic families.
  std::map<std::string, std::unique_ptr<ForecastModel>> models_;
};

/// \brief Versions the trained models and activates the new version.
class ModelDeploymentModule final : public PipelineModule {
 public:
  std::string name() const override { return "deployment"; }
  Status Run(PipelineContext* ctx) override;
};

/// Reads the registry version document `version` of a region.
Result<Json> LoadVersionDoc(DocStore* docs, const std::string& region,
                            int64_t version);

/// Currently active version number of a region (NotFound before the
/// first deployment).
Result<int64_t> ActiveVersion(DocStore* docs, const std::string& region);

/// Points the region's active-version marker at `version`. Used by
/// deployment and by tracking's fallback path.
Status SetActiveVersion(DocStore* docs, const std::string& region,
                        int64_t version, const std::string& reason);

/// Loads the endpoint for the region's active version.
Result<ModelEndpoint> LoadActiveEndpoint(DocStore* docs,
                                         const std::string& region);

}  // namespace seagull
