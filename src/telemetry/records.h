/// \file records.h
/// \brief Telemetry record schema and per-server grouping.
///
/// The load-extraction query writes CSV files whose rows are: server
/// identifier, timestamp in minutes, average user CPU load percentage per
/// five minutes, and the default backup start/end timestamps (§5.3.1).
/// This header defines that row type and the per-server grouped form the
/// pipeline operates on.

#pragma once

#include <string>
#include <vector>

#include "common/csv.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief One telemetry row, exactly the paper's CSV schema.
struct TelemetryRecord {
  std::string server_id;
  MinuteStamp timestamp = 0;
  double avg_cpu = 0.0;
  MinuteStamp default_backup_start = 0;
  MinuteStamp default_backup_end = 0;
};

/// \brief All telemetry of one server within one extraction, grouped.
struct ServerTelemetry {
  std::string server_id;
  LoadSeries load;
  MinuteStamp default_backup_start = 0;
  MinuteStamp default_backup_end = 0;

  int64_t backup_duration_minutes() const {
    return default_backup_end - default_backup_start;
  }
};

/// Column names of the telemetry CSV schema, in order.
extern const char* const kTelemetryColumns[5];

/// Converts rows to a CSV table.
CsvTable RecordsToCsv(const std::vector<TelemetryRecord>& records);

/// Parses a CSV table into rows, validating the header.
Result<std::vector<TelemetryRecord>> CsvToRecords(const CsvTable& table);

/// Streaming writer: serializes rows straight to CSV text. Telemetry
/// fields never need quoting, so this avoids materializing a string
/// table for multi-million-row extractions.
std::string RecordsToCsvText(const std::vector<TelemetryRecord>& records);

/// Streaming parser: the inverse of `RecordsToCsvText`. Validates the
/// header and field count per line. Takes a view so blob-cache readers
/// parse in place instead of copying the extraction first.
Result<std::vector<TelemetryRecord>> ParseTelemetryCsv(
    std::string_view text);

/// Resident footprint of one grouped server (id + samples), the unit
/// the fleet memory plane budgets ingest by.
int64_t ApproxTelemetryBytes(const ServerTelemetry& server);

/// Groups rows by server into aligned load series. Rows may arrive in any
/// order; duplicate (server, timestamp) rows keep the last value.
Result<std::vector<ServerTelemetry>> GroupByServer(
    const std::vector<TelemetryRecord>& records,
    int64_t interval_minutes = kServerIntervalMinutes);

}  // namespace seagull
