#include "telemetry/fleet.h"

#include <algorithm>

#include "common/strings.h"

namespace seagull {

Fleet Fleet::Generate(const RegionConfig& config) {
  Fleet fleet;
  fleet.config_ = config;
  Rng rng(config.seed ^ Rng::HashString(config.name));
  fleet.servers_.reserve(static_cast<size_t>(config.num_servers));
  for (int i = 0; i < config.num_servers; ++i) {
    std::string id = StringPrintf("%s-srv-%05d", config.name.c_str(), i);
    fleet.servers_.push_back(
        SampleProfile(id, config.mix, config.HorizonMinutes(), &rng));
  }
  return fleet;
}

const ServerProfile* Fleet::Find(const std::string& server_id) const {
  for (const auto& s : servers_) {
    if (s.server_id == server_id) return &s;
  }
  return nullptr;
}

LoadSeries Fleet::TrueLoad(const ServerProfile& profile, MinuteStamp from,
                           MinuteStamp to) const {
  return GenerateLoad(profile, from, to, GeneratorOptions{});
}

LoadSeries Fleet::ObservedLoad(const ServerProfile& profile, MinuteStamp from,
                               MinuteStamp to) const {
  return GenerateLoad(profile, from, to, config_.telemetry);
}

std::vector<RegionConfig> MakeEvaluationRegions(double scale, uint64_t seed) {
  // Four regions of distinctly different sizes, mirroring the paper's
  // "hundreds of kilobytes to a few gigabytes" spread.
  struct Spec {
    const char* name;
    int servers;
  };
  const Spec specs[] = {
      {"region-xs", 60},
      {"region-s", 240},
      {"region-m", 900},
      {"region-l", 2400},
  };
  std::vector<RegionConfig> out;
  uint64_t salt = 0;
  for (const auto& spec : specs) {
    RegionConfig rc;
    rc.name = spec.name;
    rc.num_servers =
        std::max(1, static_cast<int>(spec.servers * scale));
    rc.weeks = 4;
    rc.seed = seed + (++salt) * 7919;
    out.push_back(rc);
  }
  return out;
}

}  // namespace seagull
