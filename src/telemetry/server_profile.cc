#include "telemetry/server_profile.h"

#include <algorithm>
#include <cmath>

namespace seagull {

const char* ServerArchetypeName(ServerArchetype a) {
  switch (a) {
    case ServerArchetype::kStable:
      return "stable";
    case ServerArchetype::kDailyPattern:
      return "daily";
    case ServerArchetype::kWeeklyPattern:
      return "weekly";
    case ServerArchetype::kNoPattern:
      return "no_pattern";
  }
  return "unknown";
}

bool ArchetypeMix::IsValid() const {
  if (short_lived < 0 || stable < 0 || daily < 0 || weekly < 0 ||
      no_pattern < 0) {
    return false;
  }
  double sum = short_lived + stable + daily + weekly + no_pattern;
  return std::fabs(sum - 1.0) < 1e-6;
}

namespace {

// Rounds to the telemetry grid.
int64_t SnapToGrid(double minutes, int64_t grid) {
  int64_t v = static_cast<int64_t>(minutes / static_cast<double>(grid));
  return v * grid;
}

ServerArchetype SampleShape(const ArchetypeMix& mix, Rng* rng) {
  // Conditional shape distribution for long-lived servers; short-lived
  // servers reuse the same conditional shape.
  double total = mix.stable + mix.daily + mix.weekly + mix.no_pattern;
  double u = rng->Uniform() * total;
  if ((u -= mix.stable) < 0) return ServerArchetype::kStable;
  if ((u -= mix.daily) < 0) return ServerArchetype::kDailyPattern;
  if ((u -= mix.weekly) < 0) return ServerArchetype::kWeeklyPattern;
  return ServerArchetype::kNoPattern;
}

void ConfigureShape(ServerProfile* p, Rng* rng) {
  switch (p->archetype) {
    case ServerArchetype::kStable:
      p->base_load = rng->Uniform(3.0, 45.0);
      p->noise_sigma = rng->Uniform(0.4, 1.6);
      p->bump_amplitude = {0.0, 0.0};
      break;
    case ServerArchetype::kDailyPattern: {
      p->base_load = rng->Uniform(8.0, 30.0);
      p->noise_sigma = rng->Uniform(0.5, 1.5);
      // Strong recurring peaks (e.g. an automated workload, §3.2): big
      // enough that a flat average fails the bucket-ratio test.
      p->bump_center = {rng->Uniform(7.0, 12.0) * 60,
                        rng->Uniform(13.0, 21.0) * 60};
      p->bump_width = {rng->Uniform(60.0, 150.0), rng->Uniform(60.0, 180.0)};
      p->bump_amplitude = {rng->Uniform(25.0, 45.0),
                           rng->Uniform(15.0, 40.0)};
      break;
    }
    case ServerArchetype::kWeeklyPattern: {
      p->base_load = rng->Uniform(8.0, 30.0);
      p->noise_sigma = rng->Uniform(0.5, 1.5);
      p->bump_center = {rng->Uniform(7.0, 12.0) * 60,
                        rng->Uniform(13.0, 21.0) * 60};
      p->bump_width = {rng->Uniform(60.0, 150.0), rng->Uniform(60.0, 180.0)};
      p->bump_amplitude = {rng->Uniform(25.0, 45.0),
                           rng->Uniform(15.0, 40.0)};
      // Weekday/weekend regime plus mild per-day variation breaks the
      // daily pattern while keeping the weekly one (Figure 6).
      for (int d = 0; d < 7; ++d) {
        bool weekend = d >= 5;
        p->day_scale[static_cast<size_t>(d)] =
            weekend ? rng->Uniform(0.05, 0.35) : rng->Uniform(0.8, 1.2);
      }
      break;
    }
    case ServerArchetype::kNoPattern: {
      // Unstable without a *recognizable* pattern (§3.2): enough
      // structure that low-load valleys often recur, but level drift,
      // regime shifts, and bursts break the strict 90%-bucket-ratio
      // tests day over day (Figure 7).
      p->base_load = rng->Uniform(10.0, 35.0);
      p->noise_sigma = rng->Uniform(1.0, 1.6);
      p->bump_center = {rng->Uniform(8.0, 13.0) * 60,
                        rng->Uniform(14.0, 20.0) * 60};
      p->bump_width = {rng->Uniform(80.0, 160.0), rng->Uniform(80.0, 180.0)};
      p->bump_amplitude = {rng->Uniform(4.0, 16.0), rng->Uniform(3.0, 12.0)};
      for (int d = 0; d < 7; ++d) {
        p->day_scale[static_cast<size_t>(d)] = rng->Uniform(0.85, 1.15);
      }
      p->ou_theta = rng->Uniform(0.03, 0.07);
      p->ou_sigma = rng->Uniform(0.2, 0.6);
      p->regime_mean_interarrival_minutes =
          rng->Uniform(3.0, 8.0) * kMinutesPerDay;
      p->burst_rate_per_day = rng->Uniform(0.5, 2.0);
      p->burst_magnitude = rng->Uniform(8.0, 20.0);
      break;
    }
  }
}

}  // namespace

ServerProfile SampleProfile(const std::string& server_id,
                            const ArchetypeMix& mix, int64_t horizon_minutes,
                            Rng* rng) {
  ServerProfile p;
  p.server_id = server_id;
  p.seed = Rng::HashString(server_id) ^ rng->Next();

  const bool short_lived = rng->Chance(mix.short_lived);
  p.archetype = SampleShape(mix, rng);
  ConfigureShape(&p, rng);

  if (short_lived) {
    // Lifespan under three weeks, placed uniformly in the horizon.
    int64_t lifespan = SnapToGrid(
        rng->Uniform(0.5 * kMinutesPerDay, 20.5 * kMinutesPerDay),
        kServerIntervalMinutes);
    int64_t slack = horizon_minutes - lifespan;
    p.created_at = slack > 0
                       ? SnapToGrid(rng->Uniform(0.0,
                                                 static_cast<double>(slack)),
                                    kServerIntervalMinutes)
                       : 0;
    p.deleted_at = p.created_at + lifespan;
  } else {
    // Long-lived: present from (near) the start through the horizon.
    p.created_at = 0;
    p.deleted_at = horizon_minutes;
  }

  // Capacity ceilings: a small tail of servers actually saturates their
  // CPU in a typical week (Figure 13(b) reports 3.7%).
  double u = rng->Uniform();
  if (u < 0.037) {
    p.capacity_ceiling = 100.0;
    p.base_load = rng->Uniform(55.0, 75.0);
    p.saturating = true;
    p.burst_rate_per_day = rng->Uniform(1.0, 4.0);
    p.burst_magnitude = rng->Uniform(40.0, 60.0);
  } else {
    p.capacity_ceiling = rng->Uniform(55.0, 99.0);
  }

  // Backup duration scales with a lognormal synthetic database size.
  double size_factor = std::exp(rng->Gaussian(0.0, 0.7));
  double duration = std::clamp(60.0 * size_factor, 30.0, 360.0);
  p.backup_duration_minutes =
      std::max<int64_t>(kServerIntervalMinutes,
                        SnapToGrid(duration, kServerIntervalMinutes));
  // Size consistent with the duration at the engine's idle throughput
  // (100 MB/min), so the scheduled window is exactly the idle run time.
  p.database_size_mb =
      static_cast<double>(p.backup_duration_minutes) * 100.0;

  p.backup_day = static_cast<DayOfWeek>(rng->UniformInt(0, 6));

  // The legacy default window ignores customer activity; it clusters in
  // the provider's overnight maintenance band with a minority scattered
  // across the day (so that some defaults collide with peaks).
  if (rng->Chance(0.75)) {
    p.default_backup_start_minute =
        SnapToGrid(rng->Uniform(0.0, 6.0) * 60, kServerIntervalMinutes);
  } else {
    p.default_backup_start_minute = SnapToGrid(
        rng->Uniform(0.0, 24.0) * 60 - static_cast<double>(
            p.backup_duration_minutes),
        kServerIntervalMinutes);
    if (p.default_backup_start_minute < 0) p.default_backup_start_minute = 0;
  }

  return p;
}

}  // namespace seagull
