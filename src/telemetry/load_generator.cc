#include "telemetry/load_generator.h"

#include <algorithm>
#include <cmath>

namespace seagull {

namespace {

double Bump(double minute_of_day, double center, double width,
            double amplitude) {
  // Wrap-around Gaussian bump so shapes are continuous at midnight.
  double d = minute_of_day - center;
  if (d > kMinutesPerDay / 2.0) d -= kMinutesPerDay;
  if (d < -kMinutesPerDay / 2.0) d += kMinutesPerDay;
  return amplitude * std::exp(-(d * d) / (2.0 * width * width));
}

}  // namespace

double ShapeAt(const ServerProfile& profile, MinuteStamp t) {
  const double mod = static_cast<double>(MinuteOfDay(t));
  const auto dow = static_cast<size_t>(DayOfWeekOf(t));
  double v = profile.base_load;
  for (int b = 0; b < 2; ++b) {
    v += profile.day_scale[dow] *
         Bump(mod, profile.bump_center[static_cast<size_t>(b)],
              profile.bump_width[static_cast<size_t>(b)],
              profile.bump_amplitude[static_cast<size_t>(b)]);
  }
  return v;
}

LoadSeries GenerateLoad(const ServerProfile& profile, MinuteStamp from,
                        MinuteStamp to, const GeneratorOptions& options) {
  const int64_t grid = kServerIntervalMinutes;
  // Align the emission range to the grid.
  MinuteStamp out_from = from / grid * grid;
  MinuteStamp out_to = (to + grid - 1) / grid * grid;
  const int64_t n = std::max<int64_t>(0, (out_to - out_from) / grid);
  std::vector<double> out(static_cast<size_t>(n), kMissingValue);

  // The load process always advances from the server's creation time so
  // that any emission range observes the same ground truth.
  MinuteStamp sim_from = profile.created_at / grid * grid;
  MinuteStamp sim_to = std::min(out_to, profile.deleted_at);
  Rng rng_load(profile.seed);
  Rng rng_drop(profile.seed ^ 0xD50FD50FD50FD50FULL);

  const bool is_no_pattern =
      profile.archetype == ServerArchetype::kNoPattern;
  const bool has_bursts = is_no_pattern || profile.saturating;

  // Ornstein–Uhlenbeck excursion state (no-pattern servers only).
  double ou_state = 0.0;
  double ou_mu = 0.0;
  MinuteStamp next_regime =
      sim_from + static_cast<MinuteStamp>(
          rng_load.Exponential(profile.regime_mean_interarrival_minutes));
  // Burst state.
  MinuteStamp burst_until = sim_from - 1;
  double burst_level = 0.0;
  MinuteStamp next_burst =
      sim_from + static_cast<MinuteStamp>(rng_load.Exponential(
          kMinutesPerDay / std::max(profile.burst_rate_per_day, 1e-6)));
  // Telemetry-hour dropout state.
  bool hour_dropped = false;

  for (MinuteStamp t = sim_from; t < sim_to; t += grid) {
    // -- advance stochastic state (always, for determinism) --
    double noise = rng_load.Gaussian(0.0, profile.noise_sigma);
    double ou_noise = rng_load.Gaussian(0.0, profile.ou_sigma);
    if (is_no_pattern) {
      if (t >= next_regime) {
        ou_mu = rng_load.Uniform(-0.35, 0.5) * profile.base_load;
        next_regime = t + static_cast<MinuteStamp>(rng_load.Exponential(
            profile.regime_mean_interarrival_minutes));
      }
      ou_state += profile.ou_theta * (ou_mu - ou_state) + ou_noise;
    }
    if (has_bursts && t >= next_burst) {
      burst_level = rng_load.Uniform(0.5, 1.0) * profile.burst_magnitude;
      burst_until = t + static_cast<MinuteStamp>(
          rng_load.Uniform(20.0, 4.0 * 60.0));
      next_burst = t + static_cast<MinuteStamp>(rng_load.Exponential(
          kMinutesPerDay / std::max(profile.burst_rate_per_day, 1e-6)));
    }

    // Hour-level dropout decision at hour boundaries.
    if (MinuteOfDay(t) % kMinutesPerHour == 0) {
      hour_dropped = rng_drop.Chance(options.missing_hour_rate);
    }
    bool sample_dropped = rng_drop.Chance(options.missing_sample_rate);

    if (t < out_from || t >= out_to) continue;
    if (!profile.IsAliveAt(t)) continue;
    if (hour_dropped || sample_dropped) continue;

    double v = ShapeAt(profile, t) + noise;
    if (is_no_pattern) v += ou_state;
    if (has_bursts && t < burst_until) v += burst_level;
    v = std::clamp(v, 0.0, profile.capacity_ceiling);
    out[static_cast<size_t>((t - out_from) / grid)] = v;
  }

  auto series = LoadSeries::Make(out_from, grid, std::move(out));
  series.status().Abort();  // construction is internal and must not fail
  return std::move(series).ValueUnsafe();
}

}  // namespace seagull
