/// \file series_block.h
/// \brief `SeriesBlock`: the binary columnar telemetry blob format.
///
/// The text-CSV data plane re-parses every byte of a region-week
/// extraction on every run; at fleet scale (Fig. 12a) that parse is the
/// dominant ingestion cost. A `SeriesBlock` stores the same extraction
/// in a packed columnar layout that decodes with column `memcpy`s
/// instead of per-field `strtod`, and groups per server at write time
/// so ingestion can skip the records intermediate entirely.
///
/// Layout (version 1, all integers little-endian):
///
///     offset 0   "SGB1"                magic, 4 bytes
///            4   u32  version          currently 1
///            8   u32  reserved         zero
///           12   i64  interval_minutes sample grid (5 for servers)
///           20   i64  server_count
///           28   i64  total_samples
///     directory, server_count entries (first-appearance order):
///            u32  id_len, id bytes
///            i64  default_backup_start
///            i64  default_backup_end
///            i64  sample_count
///     columns (server-major, directory order):
///            total_samples x i64  timestamps
///            total_samples x f64  avg_cpu values
///     trailer:
///            u64  FNV-1a checksum of every preceding byte
///
/// Losslessness contract: CPU values are quantized on encode through
/// the exact CSV round trip (`"%.4f"` print + `strtod` parse), so a
/// fleet stored as CSV and the same fleet stored as a `SeriesBlock`
/// decode to bit-identical doubles — the pipeline produces byte-equal
/// outputs from either representation. Decoding a block back to
/// records preserves per-server row order; rows are canonicalized to
/// server-major order (the order Load Extraction writes anyway), so
/// emitter-produced CSV transcodes byte-identically in both directions.

#pragma once

#include <bit>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/blob_ref.h"
#include "common/result.h"
#include "telemetry/records.h"

namespace seagull {

/// Header facts of a block, cheap to read (no column decode).
struct SeriesBlockInfo {
  uint32_t version = 0;
  int64_t interval_minutes = 0;
  int64_t server_count = 0;
  int64_t total_samples = 0;
};

/// True if `blob` starts with the SeriesBlock magic. CSV extractions
/// start with their header line, so sniffing the first four bytes is
/// enough to dispatch a telemetry blob to the right decoder.
bool IsSeriesBlock(std::string_view blob);

/// Serializes rows into a version-1 block. Values are quantized through
/// the CSV round trip (see file comment); rows are grouped per server
/// in first-appearance order, preserving per-server row order.
std::string EncodeSeriesBlock(
    const std::vector<TelemetryRecord>& records,
    int64_t interval_minutes = kServerIntervalMinutes);

/// Validates magic/version/bounds/checksum and returns the header.
Result<SeriesBlockInfo> PeekSeriesBlock(std::string_view blob);

/// Full inverse of `EncodeSeriesBlock`: back to flat rows, server-major.
Result<std::vector<TelemetryRecord>> DecodeSeriesBlock(std::string_view blob);

/// Reference path: decodes into grouped per-server series by first
/// materializing both columns into scratch vectors (O(total_samples)
/// transient memory), skipping the flat-records intermediate. Matches
/// `GroupByServer(DecodeSeriesBlock(blob))` exactly: same grid
/// validation, same duplicate-timestamp last-write-wins, same output
/// order (sorted by server id). Ingestion uses the streaming cursor
/// below instead; this stays as the equivalence oracle and the
/// before/after baseline for the decode-footprint bench rows.
Result<std::vector<ServerTelemetry>> DecodeSeriesBlockToServers(
    std::string_view blob);

/// \name Streaming, zero-copy decode.
///
/// The materializing decoders above copy every column word into scratch
/// vectors before grouping — at fleet scale that transient is the
/// dominant ingest allocation (16 bytes x total_samples on top of the
/// blob and the grouped output). The cursor instead validates the
/// envelope once and then yields per-server column *views* straight
/// into the blob bytes; the only per-server allocation left is the
/// output `LoadSeries` itself.
///
/// Lifetime contract: views alias the blob. A cursor opened on a
/// `BlobRef` (the `LakeStore::GetBlob` / blob-cache form — a heap
/// buffer or an mmap'd file, the cursor doesn't care) or a `shared_ptr`
/// string pins the backing storage for the cursor's lifetime, so cache
/// eviction or writer invalidation after `Open` cannot dangle the
/// views — eviction drops the cache's reference, not the buffer or the
/// mapping. A cursor opened on a raw `string_view` borrows: the caller
/// must keep the bytes alive for as long as any view is read.
/// @{

/// Little-endian 64-bit column over unaligned blob bytes. Elements are
/// loaded with `memcpy` (one mov on x86) because the column section
/// starts after a variable-length directory and has no alignment
/// guarantee — `reinterpret_cast` would be UB the sanitizer gate
/// rightly rejects.
template <typename T>
class SeriesBlockColumn {
  static_assert(sizeof(T) == 8, "columns store 64-bit words");

 public:
  SeriesBlockColumn() = default;
  SeriesBlockColumn(const char* bytes, int64_t size)
      : bytes_(bytes), size_(size) {}

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// The aliased bytes (tests assert views point into the blob).
  const char* bytes() const { return bytes_; }

  T operator[](int64_t i) const {
    uint64_t word;
    std::memcpy(&word, bytes_ + i * 8, 8);
    if constexpr (std::endian::native != std::endian::little) {
      word = ((word & 0x00000000000000ffull) << 56) |
             ((word & 0x000000000000ff00ull) << 40) |
             ((word & 0x0000000000ff0000ull) << 24) |
             ((word & 0x00000000ff000000ull) << 8) |
             ((word & 0x000000ff00000000ull) >> 8) |
             ((word & 0x0000ff0000000000ull) >> 24) |
             ((word & 0x00ff000000000000ull) >> 40) |
             ((word & 0xff00000000000000ull) >> 56);
    }
    return std::bit_cast<T>(word);
  }

 private:
  const char* bytes_ = nullptr;
  int64_t size_ = 0;
};

/// One directory entry's telemetry, viewed in place (directory order;
/// a malformed-but-checksummed blob may repeat a server id, exactly as
/// interleaved CSV rows may).
struct SeriesBlockServerView {
  std::string_view server_id;
  int64_t default_backup_start = 0;
  int64_t default_backup_end = 0;
  SeriesBlockColumn<int64_t> timestamps;
  SeriesBlockColumn<double> values;

  int64_t sample_count() const { return timestamps.size(); }
};

/// \brief Validates the SGB1 envelope (magic, version, checksum,
/// directory arithmetic, column bounds) once, then serves per-server
/// column views with no further copying or validation cost.
class SeriesBlockCursor {
 public:
  /// Borrowing open: `blob` must outlive every view read.
  static Result<SeriesBlockCursor> Open(std::string_view blob);

  /// Pinning open: keeps a reference to the shared buffer (the form
  /// `LakeStore::GetShared` returns) so views stay valid independent of
  /// blob-cache eviction.
  static Result<SeriesBlockCursor> Open(
      std::shared_ptr<const std::string> blob);

  /// Pinning open over a `BlobRef` (the form `LakeStore::GetBlob`
  /// returns): decode aliases the ref's bytes directly — for a mapped
  /// ref that is zero heap copies end to end — and the ref's owner
  /// (heap buffer or mmap) stays alive for the cursor's lifetime.
  static Result<SeriesBlockCursor> Open(BlobRef blob);

  const SeriesBlockInfo& info() const { return info_; }
  /// Directory entries (== info().server_count).
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  /// Random access, directory order.
  SeriesBlockServerView Entry(int64_t i) const;

  /// Iteration, directory order: fills `out` and advances; false at end.
  bool Next(SeriesBlockServerView* out);
  void Rewind() { next_ = 0; }

 private:
  SeriesBlockCursor() = default;

  struct EntryMeta {
    std::string_view id;
    int64_t backup_start = 0;
    int64_t backup_end = 0;
    int64_t sample_begin = 0;  ///< prefix sum of earlier sample counts
    int64_t sample_count = 0;
  };

  static Result<SeriesBlockCursor> OpenImpl(std::string_view blob,
                                            std::shared_ptr<const void> pin);

  SeriesBlockInfo info_;
  std::vector<EntryMeta> entries_;
  const char* timestamps_base_ = nullptr;
  const char* values_base_ = nullptr;
  int64_t next_ = 0;
  std::shared_ptr<const void> pin_;  ///< type-erased owner; null = borrow
};

/// Streams the cursor's telemetry grouped per server — byte-identical
/// to `DecodeSeriesBlockToServers` (same grid validation in directory
/// order, same duplicate-entry merge, same last-write-wins, servers
/// yielded sorted by id) but with peak transient memory O(largest
/// single server), not O(total_samples): each `ServerTelemetry` is
/// built from column views and handed to `fn` before the next one is
/// touched. A non-OK status from `fn` stops the stream and is returned.
Status StreamSeriesBlockServers(
    const SeriesBlockCursor& cursor,
    const std::function<Status(ServerTelemetry&&)>& fn);

/// @}

/// Format-sniffing reader for "recent load" consumers (CLI schedule /
/// advise): decodes either a `SeriesBlock` or a telemetry CSV into the
/// grouped per-server form. Takes a view so `GetShared`/cache callers
/// hand over borrowed bytes instead of forcing a blob copy.
Result<std::vector<ServerTelemetry>> DecodeTelemetryBlob(
    std::string_view blob);

/// The CSV-equivalent value of one CPU sample: what `avg_cpu` becomes
/// after being written with `"%.4f"` and parsed back. Encoding applies
/// this to every sample so both storage formats carry identical bits.
double QuantizeCpuForStorage(double v);

}  // namespace seagull
