/// \file series_block.h
/// \brief `SeriesBlock`: the binary columnar telemetry blob format.
///
/// The text-CSV data plane re-parses every byte of a region-week
/// extraction on every run; at fleet scale (Fig. 12a) that parse is the
/// dominant ingestion cost. A `SeriesBlock` stores the same extraction
/// in a packed columnar layout that decodes with column `memcpy`s
/// instead of per-field `strtod`, and groups per server at write time
/// so ingestion can skip the records intermediate entirely.
///
/// Layout (version 1, all integers little-endian):
///
///     offset 0   "SGB1"                magic, 4 bytes
///            4   u32  version          currently 1
///            8   u32  reserved         zero
///           12   i64  interval_minutes sample grid (5 for servers)
///           20   i64  server_count
///           28   i64  total_samples
///     directory, server_count entries (first-appearance order):
///            u32  id_len, id bytes
///            i64  default_backup_start
///            i64  default_backup_end
///            i64  sample_count
///     columns (server-major, directory order):
///            total_samples x i64  timestamps
///            total_samples x f64  avg_cpu values
///     trailer:
///            u64  FNV-1a checksum of every preceding byte
///
/// Losslessness contract: CPU values are quantized on encode through
/// the exact CSV round trip (`"%.4f"` print + `strtod` parse), so a
/// fleet stored as CSV and the same fleet stored as a `SeriesBlock`
/// decode to bit-identical doubles — the pipeline produces byte-equal
/// outputs from either representation. Decoding a block back to
/// records preserves per-server row order; rows are canonicalized to
/// server-major order (the order Load Extraction writes anyway), so
/// emitter-produced CSV transcodes byte-identically in both directions.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "telemetry/records.h"

namespace seagull {

/// Header facts of a block, cheap to read (no column decode).
struct SeriesBlockInfo {
  uint32_t version = 0;
  int64_t interval_minutes = 0;
  int64_t server_count = 0;
  int64_t total_samples = 0;
};

/// True if `blob` starts with the SeriesBlock magic. CSV extractions
/// start with their header line, so sniffing the first four bytes is
/// enough to dispatch a telemetry blob to the right decoder.
bool IsSeriesBlock(std::string_view blob);

/// Serializes rows into a version-1 block. Values are quantized through
/// the CSV round trip (see file comment); rows are grouped per server
/// in first-appearance order, preserving per-server row order.
std::string EncodeSeriesBlock(
    const std::vector<TelemetryRecord>& records,
    int64_t interval_minutes = kServerIntervalMinutes);

/// Validates magic/version/bounds/checksum and returns the header.
Result<SeriesBlockInfo> PeekSeriesBlock(std::string_view blob);

/// Full inverse of `EncodeSeriesBlock`: back to flat rows, server-major.
Result<std::vector<TelemetryRecord>> DecodeSeriesBlock(std::string_view blob);

/// Fast path for ingestion: decodes straight into grouped per-server
/// series, skipping the flat-records intermediate. Matches
/// `GroupByServer(DecodeSeriesBlock(blob))` exactly: same grid
/// validation, same duplicate-timestamp last-write-wins, same output
/// order (sorted by server id).
Result<std::vector<ServerTelemetry>> DecodeSeriesBlockToServers(
    std::string_view blob);

/// Format-sniffing reader for "recent load" consumers (CLI schedule /
/// advise): decodes either a `SeriesBlock` or a telemetry CSV into the
/// grouped per-server form.
Result<std::vector<ServerTelemetry>> DecodeTelemetryBlob(
    const std::string& blob);

/// The CSV-equivalent value of one CPU sample: what `avg_cpu` becomes
/// after being written with `"%.4f"` and parsed back. Encoding applies
/// this to every sample so both storage formats carry identical bits.
double QuantizeCpuForStorage(double v);

}  // namespace seagull
