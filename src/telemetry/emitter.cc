#include "telemetry/emitter.h"

#include "telemetry/series_block.h"

namespace seagull {

std::string ExtractWeekBlock(const Fleet& fleet, int64_t week_index,
                             const ExtractionOptions& options) {
  return EncodeSeriesBlock(ExtractWeek(fleet, week_index, options));
}

Status ExtractWeekBlockTo(const Fleet& fleet, int64_t week_index,
                          const SeriesBlockWriter::Sink& sink,
                          const ExtractionOptions& options,
                          int64_t* peak_resident_bytes) {
  MinuteStamp to = (week_index + 1) * kMinutesPerWeek;
  MinuteStamp from = to - options.history_weeks * kMinutesPerWeek;
  if (from < 0) from = 0;
  SeriesBlockWriter writer(sink);
  // Sizing pass: count each server's present samples. Servers with no
  // surviving samples are dropped by Declare, matching the record path
  // where they simply emit no rows.
  for (const auto& profile : fleet.servers()) {
    LoadSeries load = fleet.ObservedLoad(profile, from, to);
    int64_t present = 0;
    for (int64_t i = 0; i < load.size(); ++i) {
      if (!IsMissing(load.ValueAt(i))) ++present;
    }
    MinuteStamp b_start = 0, b_end = 0;
    DefaultBackupWindow(profile, week_index, &b_start, &b_end);
    SEAGULL_RETURN_NOT_OK(
        writer.Declare(profile.server_id, present, b_start, b_end));
  }
  SEAGULL_RETURN_NOT_OK(writer.StartAppend());
  // Append pass: regenerate each server's series (the simulator is
  // deterministic, so the second walk sees identical samples) and
  // stream it out.
  for (const auto& profile : fleet.servers()) {
    LoadSeries load = fleet.ObservedLoad(profile, from, to);
    for (int64_t i = 0; i < load.size(); ++i) {
      const double v = load.ValueAt(i);
      if (IsMissing(v)) continue;
      SEAGULL_RETURN_NOT_OK(writer.Append(profile.server_id, load.TimeAt(i), v));
    }
  }
  SEAGULL_RETURN_NOT_OK(writer.Finish());
  if (peak_resident_bytes != nullptr) {
    *peak_resident_bytes = writer.peak_resident_bytes();
  }
  return Status::OK();
}

void DefaultBackupWindow(const ServerProfile& profile, int64_t week_index,
                         MinuteStamp* start, MinuteStamp* end) {
  MinuteStamp day_start =
      week_index * kMinutesPerWeek +
      static_cast<int64_t>(profile.backup_day) * kMinutesPerDay;
  *start = day_start + profile.default_backup_start_minute;
  *end = *start + profile.backup_duration_minutes;
  // Keep the window inside the backup day.
  MinuteStamp day_end = day_start + kMinutesPerDay;
  if (*end > day_end) {
    *end = day_end;
    *start = day_end - profile.backup_duration_minutes;
  }
}

std::vector<TelemetryRecord> ExtractWeek(const Fleet& fleet,
                                         int64_t week_index,
                                         const ExtractionOptions& options) {
  std::vector<TelemetryRecord> out;
  MinuteStamp to = (week_index + 1) * kMinutesPerWeek;
  MinuteStamp from = to - options.history_weeks * kMinutesPerWeek;
  if (from < 0) from = 0;
  for (const auto& profile : fleet.servers()) {
    LoadSeries load = fleet.ObservedLoad(profile, from, to);
    MinuteStamp b_start = 0, b_end = 0;
    DefaultBackupWindow(profile, week_index, &b_start, &b_end);
    for (int64_t i = 0; i < load.size(); ++i) {
      double v = load.ValueAt(i);
      if (IsMissing(v)) continue;
      TelemetryRecord r;
      r.server_id = profile.server_id;
      r.timestamp = load.TimeAt(i);
      r.avg_cpu = v;
      r.default_backup_start = b_start;
      r.default_backup_end = b_end;
      out.push_back(std::move(r));
    }
  }
  return out;
}

CsvTable ExtractWeekCsv(const Fleet& fleet, int64_t week_index,
                        const ExtractionOptions& options) {
  return RecordsToCsv(ExtractWeek(fleet, week_index, options));
}

std::string ExtractWeekCsvText(const Fleet& fleet, int64_t week_index,
                               const ExtractionOptions& options) {
  return RecordsToCsvText(ExtractWeek(fleet, week_index, options));
}

}  // namespace seagull
