#include "telemetry/records.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "common/strings.h"

namespace seagull {

const char* const kTelemetryColumns[5] = {
    "server_id", "timestamp_minutes", "avg_cpu_pct",
    "default_backup_start", "default_backup_end"};

CsvTable RecordsToCsv(const std::vector<TelemetryRecord>& records) {
  CsvTable table;
  table.header.assign(kTelemetryColumns, kTelemetryColumns + 5);
  table.rows.reserve(records.size());
  for (const auto& r : records) {
    table.rows.push_back({
        r.server_id,
        StringPrintf("%lld", static_cast<long long>(r.timestamp)),
        StringPrintf("%.4f", r.avg_cpu),
        StringPrintf("%lld", static_cast<long long>(r.default_backup_start)),
        StringPrintf("%lld", static_cast<long long>(r.default_backup_end)),
    });
  }
  return table;
}

Result<std::vector<TelemetryRecord>> CsvToRecords(const CsvTable& table) {
  if (table.header.size() != 5) {
    return Status::Invalid("telemetry CSV must have 5 columns");
  }
  for (int i = 0; i < 5; ++i) {
    if (table.header[static_cast<size_t>(i)] != kTelemetryColumns[i]) {
      return Status::Invalid("unexpected telemetry column: " +
                             table.header[static_cast<size_t>(i)]);
    }
  }
  std::vector<TelemetryRecord> out;
  out.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    TelemetryRecord r;
    r.server_id = row[0];
    SEAGULL_ASSIGN_OR_RETURN(r.timestamp, ParseInt64(row[1]));
    SEAGULL_ASSIGN_OR_RETURN(r.avg_cpu, ParseDouble(row[2]));
    SEAGULL_ASSIGN_OR_RETURN(r.default_backup_start, ParseInt64(row[3]));
    SEAGULL_ASSIGN_OR_RETURN(r.default_backup_end, ParseInt64(row[4]));
    out.push_back(std::move(r));
  }
  return out;
}

std::string RecordsToCsvText(const std::vector<TelemetryRecord>& records) {
  std::string out;
  // server_id(~20) + 4 numeric fields: ~64 bytes per row.
  out.reserve(records.size() * 64 + 128);
  for (int i = 0; i < 5; ++i) {
    if (i > 0) out += ',';
    out += kTelemetryColumns[i];
  }
  out += '\n';
  char buf[160];
  for (const auto& r : records) {
    int n = std::snprintf(buf, sizeof(buf), "%s,%lld,%.4f,%lld,%lld\n",
                          r.server_id.c_str(),
                          static_cast<long long>(r.timestamp), r.avg_cpu,
                          static_cast<long long>(r.default_backup_start),
                          static_cast<long long>(r.default_backup_end));
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

Result<std::vector<TelemetryRecord>> ParseTelemetryCsv(
    std::string_view text) {
  std::vector<TelemetryRecord> out;
  size_t pos = 0;
  const size_t size = text.size();
  auto next_line = [&](std::string_view* line) {
    if (pos >= size) return false;
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = size;
    *line = text.substr(pos, end - pos);
    pos = end + 1;
    if (!line->empty() && line->back() == '\r') {
      line->remove_suffix(1);
    }
    return true;
  };

  std::string_view header;
  if (!next_line(&header)) return Status::Invalid("empty telemetry CSV");
  {
    std::string expected;
    for (int i = 0; i < 5; ++i) {
      if (i > 0) expected += ',';
      expected += kTelemetryColumns[i];
    }
    if (header != expected) {
      return Status::Invalid("unexpected telemetry CSV header");
    }
  }
  out.reserve(size / 48);

  std::string_view line;
  size_t line_no = 1;
  while (next_line(&line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string_view fields[5];
    size_t start = 0;
    int nf = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (nf >= 5) {
          return Status::Invalid(StringPrintf(
              "telemetry CSV line %zu has too many fields", line_no));
        }
        fields[nf++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (nf != 5) {
      return Status::Invalid(StringPrintf(
          "telemetry CSV line %zu has %d fields, expected 5", line_no, nf));
    }
    TelemetryRecord r;
    r.server_id.assign(fields[0]);
    SEAGULL_ASSIGN_OR_RETURN(r.timestamp, ParseInt64(fields[1]));
    SEAGULL_ASSIGN_OR_RETURN(r.avg_cpu, ParseDouble(fields[2]));
    SEAGULL_ASSIGN_OR_RETURN(r.default_backup_start, ParseInt64(fields[3]));
    SEAGULL_ASSIGN_OR_RETURN(r.default_backup_end, ParseInt64(fields[4]));
    out.push_back(std::move(r));
  }
  return out;
}

int64_t ApproxTelemetryBytes(const ServerTelemetry& server) {
  return static_cast<int64_t>(sizeof(ServerTelemetry)) +
         static_cast<int64_t>(server.server_id.size()) +
         server.load.size() * static_cast<int64_t>(sizeof(double));
}

Result<std::vector<ServerTelemetry>> GroupByServer(
    const std::vector<TelemetryRecord>& records, int64_t interval_minutes) {
  struct Acc {
    std::string_view id;
    MinuteStamp min_t = 0;
    MinuteStamp max_t = 0;
    bool any = false;
    std::vector<std::pair<MinuteStamp, double>> samples;
    MinuteStamp backup_start = 0;
    MinuteStamp backup_end = 0;
  };
  // Extractions are written server-major, so consecutive rows almost
  // always belong to the same server: remember the last slot and only
  // touch the hash index on a server change.
  std::unordered_map<std::string_view, size_t> index;
  std::vector<Acc> accs;
  std::string_view last_id;
  size_t last_slot = 0;
  bool have_last = false;
  for (const auto& r : records) {
    if (r.timestamp % interval_minutes != 0) {
      return Status::Invalid(StringPrintf(
          "timestamp %lld of server %s is off the %lld-minute grid",
          static_cast<long long>(r.timestamp), r.server_id.c_str(),
          static_cast<long long>(interval_minutes)));
    }
    size_t slot;
    if (have_last && last_id == r.server_id) {
      slot = last_slot;
    } else {
      auto [it, inserted] = index.try_emplace(r.server_id, accs.size());
      if (inserted) {
        accs.emplace_back();
        accs.back().id = it->first;
      }
      slot = it->second;
      last_id = it->first;
      last_slot = slot;
      have_last = true;
    }
    Acc& acc = accs[slot];
    if (!acc.any) {
      acc.min_t = acc.max_t = r.timestamp;
      acc.any = true;
    } else {
      acc.min_t = std::min(acc.min_t, r.timestamp);
      acc.max_t = std::max(acc.max_t, r.timestamp);
    }
    acc.samples.emplace_back(r.timestamp, r.avg_cpu);
    acc.backup_start = r.default_backup_start;
    acc.backup_end = r.default_backup_end;
  }
  std::sort(accs.begin(), accs.end(),
            [](const Acc& a, const Acc& b) { return a.id < b.id; });

  std::vector<ServerTelemetry> out;
  out.reserve(accs.size());
  for (auto& acc : accs) {
    int64_t n = (acc.max_t - acc.min_t) / interval_minutes + 1;
    SEAGULL_ASSIGN_OR_RETURN(
        LoadSeries series,
        LoadSeries::MakeEmpty(acc.min_t, interval_minutes, n));
    for (const auto& [t, v] : acc.samples) {
      series.SetValue((t - acc.min_t) / interval_minutes, v);
    }
    ServerTelemetry st;
    st.server_id.assign(acc.id);
    st.load = std::move(series);
    st.default_backup_start = acc.backup_start;
    st.default_backup_end = acc.backup_end;
    out.push_back(std::move(st));
  }
  return out;
}

}  // namespace seagull
