#include "telemetry/series_block.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/strings.h"

namespace seagull {

namespace {

constexpr char kMagic[4] = {'S', 'G', 'B', '1'};
constexpr uint32_t kVersion = 1;
// Header: magic(4) + version(4) + reserved(4) + interval(8) +
// server_count(8) + total_samples(8).
constexpr size_t kHeaderBytes = 36;
constexpr size_t kTrailerBytes = 8;
// A directory id longer than this is corruption, not telemetry.
constexpr uint32_t kMaxServerIdBytes = 1 << 16;

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU32(std::string* out, uint32_t v) { AppendLE(out, v, 4); }
void AppendI64(std::string* out, int64_t v) {
  AppendLE(out, static_cast<uint64_t>(v), 8);
}
void AppendF64(std::string* out, double v) {
  AppendLE(out, std::bit_cast<uint64_t>(v), 8);
}

/// Bounds-checked little-endian reader over the blob.
class BlockReader {
 public:
  explicit BlockReader(std::string_view blob) : blob_(blob) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return blob_.size() - off_; }

  bool ReadU32(uint32_t* v) {
    uint64_t wide = 0;
    if (!ReadLE(4, &wide)) return false;
    *v = static_cast<uint32_t>(wide);
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t wide = 0;
    if (!ReadLE(8, &wide)) return false;
    *v = static_cast<int64_t>(wide);
    return true;
  }
  bool ReadBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = blob_.substr(off_, n);
    off_ += n;
    return true;
  }

  /// Bulk column read: `n` little-endian 64-bit words into `out`.
  bool ReadWords(size_t n, uint64_t* out) {
    if (remaining() < n * 8) return false;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, blob_.data() + off_, n * 8);
      off_ += n * 8;
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (!ReadLE(8, &out[i])) return false;
      }
    }
    return true;
  }

 private:
  bool ReadLE(int bytes, uint64_t* v) {
    if (remaining() < static_cast<size_t>(bytes)) return false;
    uint64_t acc = 0;
    for (int i = 0; i < bytes; ++i) {
      acc |= static_cast<uint64_t>(
                 static_cast<unsigned char>(blob_[off_ + i]))
             << (8 * i);
    }
    off_ += static_cast<size_t>(bytes);
    *v = acc;
    return true;
  }

  std::string_view blob_;
  size_t off_ = 0;
};

struct DirectoryEntry {
  std::string_view id;
  int64_t backup_start = 0;
  int64_t backup_end = 0;
  int64_t sample_count = 0;
};

/// Shared decode skeleton: header + checksum + directory + column
/// bounds. On success positions `reader` at the first timestamp word.
Result<SeriesBlockInfo> ReadEnvelope(std::string_view blob,
                                     BlockReader* reader,
                                     std::vector<DirectoryEntry>* directory) {
  if (blob.size() < kHeaderBytes + kTrailerBytes) {
    return Status::Invalid("SeriesBlock truncated: shorter than header");
  }
  if (std::memcmp(blob.data(), kMagic, 4) != 0) {
    return Status::Invalid("not a SeriesBlock: bad magic");
  }
  const size_t body = blob.size() - kTrailerBytes;
  BlockReader trailer(blob.substr(body));
  int64_t stored_checksum = 0;
  trailer.ReadI64(&stored_checksum);
  const uint64_t computed = Fnv1a(blob.data(), body);
  if (static_cast<uint64_t>(stored_checksum) != computed) {
    return Status::DataLoss("SeriesBlock checksum mismatch (corrupt blob)");
  }

  SeriesBlockInfo info;
  std::string_view magic;
  uint32_t reserved = 0;
  if (!reader->ReadBytes(4, &magic) || !reader->ReadU32(&info.version) ||
      !reader->ReadU32(&reserved) || !reader->ReadI64(&info.interval_minutes) ||
      !reader->ReadI64(&info.server_count) ||
      !reader->ReadI64(&info.total_samples)) {
    return Status::Invalid("SeriesBlock truncated: short header");
  }
  if (info.version != kVersion) {
    return Status::Invalid(StringPrintf(
        "unsupported SeriesBlock version %u", info.version));
  }
  if (info.interval_minutes <= 0 || info.server_count < 0 ||
      info.total_samples < 0) {
    return Status::Invalid("SeriesBlock header has negative counts");
  }

  directory->reserve(static_cast<size_t>(info.server_count));
  int64_t samples_listed = 0;
  for (int64_t s = 0; s < info.server_count; ++s) {
    DirectoryEntry entry;
    uint32_t id_len = 0;
    if (!reader->ReadU32(&id_len) || id_len > kMaxServerIdBytes ||
        !reader->ReadBytes(id_len, &entry.id) ||
        !reader->ReadI64(&entry.backup_start) ||
        !reader->ReadI64(&entry.backup_end) ||
        !reader->ReadI64(&entry.sample_count)) {
      return Status::Invalid("SeriesBlock truncated: bad directory entry");
    }
    if (entry.sample_count < 0) {
      return Status::Invalid("SeriesBlock directory has negative sample count");
    }
    samples_listed += entry.sample_count;
    directory->push_back(entry);
  }
  if (samples_listed != info.total_samples) {
    return Status::Invalid(
        "SeriesBlock directory sample counts disagree with header");
  }
  const size_t columns =
      static_cast<size_t>(info.total_samples) * 16;  // i64 + f64 per sample
  if (reader->offset() + columns != body) {
    return Status::Invalid("SeriesBlock column section has the wrong size");
  }
  return info;
}

}  // namespace

double QuantizeCpuForStorage(double v) {
  // Exactly the CSV writer/parser pair: "%.4f" then strtod. Idempotent,
  // so transcoding an already-quantized blob changes nothing.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return std::strtod(buf, nullptr);
}

bool IsSeriesBlock(std::string_view blob) {
  return blob.size() >= 4 && std::memcmp(blob.data(), kMagic, 4) == 0;
}

std::string EncodeSeriesBlock(const std::vector<TelemetryRecord>& records,
                              int64_t interval_minutes) {
  // Group rows per server in first-appearance order. Rows arrive
  // server-major from Load Extraction, so the last-server fast path
  // makes this one hash lookup per server, not per row.
  struct Group {
    const TelemetryRecord* last = nullptr;  // backup window source
    std::vector<const TelemetryRecord*> rows;
  };
  std::unordered_map<std::string_view, size_t> index;
  std::vector<Group> groups;
  size_t id_bytes = 0;
  {
    std::string_view last_id;
    size_t last_slot = 0;
    bool have_last = false;
    for (const auto& r : records) {
      size_t slot;
      if (have_last && last_id == r.server_id) {
        slot = last_slot;
      } else {
        auto [it, inserted] = index.try_emplace(r.server_id, groups.size());
        if (inserted) {
          groups.emplace_back();
          id_bytes += r.server_id.size();
        }
        slot = it->second;
        last_id = it->first;
        last_slot = slot;
        have_last = true;
      }
      Group& g = groups[slot];
      g.rows.push_back(&r);
      g.last = &r;
    }
  }

  std::string out;
  out.reserve(kHeaderBytes + groups.size() * 28 + id_bytes +
              records.size() * 16 + kTrailerBytes);
  out.append(kMagic, 4);
  AppendU32(&out, kVersion);
  AppendU32(&out, 0);  // reserved
  AppendI64(&out, interval_minutes);
  AppendI64(&out, static_cast<int64_t>(groups.size()));
  AppendI64(&out, static_cast<int64_t>(records.size()));
  for (const auto& g : groups) {
    const std::string& id = g.rows.front()->server_id;
    AppendU32(&out, static_cast<uint32_t>(id.size()));
    out.append(id);
    AppendI64(&out, g.last->default_backup_start);
    AppendI64(&out, g.last->default_backup_end);
    AppendI64(&out, static_cast<int64_t>(g.rows.size()));
  }
  for (const auto& g : groups) {
    for (const TelemetryRecord* r : g.rows) AppendI64(&out, r->timestamp);
  }
  for (const auto& g : groups) {
    for (const TelemetryRecord* r : g.rows) {
      AppendF64(&out, QuantizeCpuForStorage(r->avg_cpu));
    }
  }
  AppendLE(&out, Fnv1a(out.data(), out.size()), 8);
  return out;
}

Result<SeriesBlockInfo> PeekSeriesBlock(std::string_view blob) {
  BlockReader reader(blob);
  std::vector<DirectoryEntry> directory;
  return ReadEnvelope(blob, &reader, &directory);
}

Result<std::vector<TelemetryRecord>> DecodeSeriesBlock(std::string_view blob) {
  BlockReader reader(blob);
  std::vector<DirectoryEntry> directory;
  SEAGULL_ASSIGN_OR_RETURN(SeriesBlockInfo info,
                           ReadEnvelope(blob, &reader, &directory));
  const size_t n = static_cast<size_t>(info.total_samples);
  std::vector<uint64_t> timestamps(n), values(n);
  if (!reader.ReadWords(n, timestamps.data()) ||
      !reader.ReadWords(n, values.data())) {
    return Status::Invalid("SeriesBlock truncated: short columns");
  }

  std::vector<TelemetryRecord> out;
  out.reserve(n);
  size_t cursor = 0;
  for (const auto& entry : directory) {
    for (int64_t i = 0; i < entry.sample_count; ++i, ++cursor) {
      TelemetryRecord r;
      r.server_id.assign(entry.id);
      r.timestamp = static_cast<int64_t>(timestamps[cursor]);
      r.avg_cpu = std::bit_cast<double>(values[cursor]);
      r.default_backup_start = entry.backup_start;
      r.default_backup_end = entry.backup_end;
      out.push_back(std::move(r));
    }
  }
  return out;
}

Result<std::vector<ServerTelemetry>> DecodeSeriesBlockToServers(
    std::string_view blob) {
  BlockReader reader(blob);
  std::vector<DirectoryEntry> directory;
  SEAGULL_ASSIGN_OR_RETURN(SeriesBlockInfo info,
                           ReadEnvelope(blob, &reader, &directory));
  const size_t n = static_cast<size_t>(info.total_samples);
  std::vector<uint64_t> timestamps(n), values(n);
  if (!reader.ReadWords(n, timestamps.data()) ||
      !reader.ReadWords(n, values.data())) {
    return Status::Invalid("SeriesBlock truncated: short columns");
  }

  // Merge directory entries per id (a well-formed block has one entry
  // per server, but duplicates must behave like interleaved CSV rows).
  struct Span {
    size_t begin = 0;
    size_t count = 0;
  };
  struct Acc {
    std::string_view id;
    std::vector<Span> spans;
    int64_t backup_start = 0;
    int64_t backup_end = 0;
    MinuteStamp min_t = 0;
    MinuteStamp max_t = 0;
    bool any = false;
  };
  std::unordered_map<std::string_view, size_t> index;
  std::vector<Acc> accs;
  accs.reserve(directory.size());
  size_t cursor = 0;
  for (const auto& entry : directory) {
    const size_t begin = cursor;
    cursor += static_cast<size_t>(entry.sample_count);
    if (entry.sample_count == 0) continue;  // no rows -> server absent
    auto [it, inserted] = index.try_emplace(entry.id, accs.size());
    if (inserted) accs.emplace_back();
    Acc& acc = accs[it->second];
    acc.id = entry.id;
    acc.spans.push_back({begin, static_cast<size_t>(entry.sample_count)});
    acc.backup_start = entry.backup_start;
    acc.backup_end = entry.backup_end;
    for (size_t i = begin; i < cursor; ++i) {
      const MinuteStamp t = static_cast<int64_t>(timestamps[i]);
      if (t % info.interval_minutes != 0) {
        return Status::Invalid(StringPrintf(
            "timestamp %lld of server %s is off the %lld-minute grid",
            static_cast<long long>(t), std::string(entry.id).c_str(),
            static_cast<long long>(info.interval_minutes)));
      }
      if (!acc.any) {
        acc.min_t = acc.max_t = t;
        acc.any = true;
      } else {
        acc.min_t = std::min(acc.min_t, t);
        acc.max_t = std::max(acc.max_t, t);
      }
    }
  }
  // GroupByServer iterates a std::map, so its output is sorted by id.
  std::sort(accs.begin(), accs.end(),
            [](const Acc& a, const Acc& b) { return a.id < b.id; });

  std::vector<ServerTelemetry> out;
  out.reserve(accs.size());
  for (const auto& acc : accs) {
    const int64_t len =
        (acc.max_t - acc.min_t) / info.interval_minutes + 1;
    SEAGULL_ASSIGN_OR_RETURN(
        LoadSeries series,
        LoadSeries::MakeEmpty(acc.min_t, info.interval_minutes, len));
    for (const Span& span : acc.spans) {
      for (size_t i = span.begin; i < span.begin + span.count; ++i) {
        // Duplicate timestamps keep the last value, as in GroupByServer.
        series.SetValue((static_cast<int64_t>(timestamps[i]) - acc.min_t) /
                            info.interval_minutes,
                        std::bit_cast<double>(values[i]));
      }
    }
    ServerTelemetry st;
    st.server_id.assign(acc.id);
    st.load = std::move(series);
    st.default_backup_start = acc.backup_start;
    st.default_backup_end = acc.backup_end;
    out.push_back(std::move(st));
  }
  return out;
}

Result<SeriesBlockCursor> SeriesBlockCursor::OpenImpl(
    std::string_view blob, std::shared_ptr<const void> pin) {
  BlockReader reader(blob);
  std::vector<DirectoryEntry> directory;
  SeriesBlockCursor cursor;
  SEAGULL_ASSIGN_OR_RETURN(cursor.info_,
                           ReadEnvelope(blob, &reader, &directory));
  cursor.entries_.reserve(directory.size());
  int64_t prefix = 0;
  for (const auto& entry : directory) {
    EntryMeta meta;
    meta.id = entry.id;
    meta.backup_start = entry.backup_start;
    meta.backup_end = entry.backup_end;
    meta.sample_begin = prefix;
    meta.sample_count = entry.sample_count;
    prefix += entry.sample_count;
    cursor.entries_.push_back(meta);
  }
  // ReadEnvelope leaves the reader at the first timestamp word and has
  // verified the column section is exactly 16 * total_samples bytes.
  cursor.timestamps_base_ = blob.data() + reader.offset();
  cursor.values_base_ =
      cursor.timestamps_base_ + cursor.info_.total_samples * 8;
  cursor.pin_ = std::move(pin);
  return cursor;
}

Result<SeriesBlockCursor> SeriesBlockCursor::Open(std::string_view blob) {
  return OpenImpl(blob, nullptr);
}

Result<SeriesBlockCursor> SeriesBlockCursor::Open(
    std::shared_ptr<const std::string> blob) {
  if (blob == nullptr) {
    return Status::Invalid("SeriesBlockCursor: null blob");
  }
  std::string_view view = *blob;
  return OpenImpl(view, std::move(blob));
}

Result<SeriesBlockCursor> SeriesBlockCursor::Open(BlobRef blob) {
  if (!blob) {
    return Status::Invalid("SeriesBlockCursor: empty blob ref");
  }
  std::string_view view = blob.view();
  std::shared_ptr<const void> pin = blob.owner();
  return OpenImpl(view, std::move(pin));
}

SeriesBlockServerView SeriesBlockCursor::Entry(int64_t i) const {
  const EntryMeta& meta = entries_[static_cast<size_t>(i)];
  SeriesBlockServerView view;
  view.server_id = meta.id;
  view.default_backup_start = meta.backup_start;
  view.default_backup_end = meta.backup_end;
  view.timestamps = SeriesBlockColumn<int64_t>(
      timestamps_base_ + meta.sample_begin * 8, meta.sample_count);
  view.values = SeriesBlockColumn<double>(
      values_base_ + meta.sample_begin * 8, meta.sample_count);
  return view;
}

bool SeriesBlockCursor::Next(SeriesBlockServerView* out) {
  if (next_ >= size()) return false;
  *out = Entry(next_++);
  return true;
}

Status StreamSeriesBlockServers(
    const SeriesBlockCursor& cursor,
    const std::function<Status(ServerTelemetry&&)>& fn) {
  // Pass 1, directory order: grid validation and per-id extent/window
  // accumulation — the same walk DecodeSeriesBlockToServers does over
  // its scratch vectors, so malformed blobs fail with the identical
  // status on the identical entry. Only O(directory) state is kept.
  struct Acc {
    std::string_view id;
    std::vector<int64_t> entries;  ///< directory indices, in order
    int64_t backup_start = 0;
    int64_t backup_end = 0;
    MinuteStamp min_t = 0;
    MinuteStamp max_t = 0;
    bool any = false;
  };
  const int64_t interval = cursor.info().interval_minutes;
  std::unordered_map<std::string_view, size_t> index;
  std::vector<Acc> accs;
  accs.reserve(static_cast<size_t>(cursor.size()));
  for (int64_t e = 0; e < cursor.size(); ++e) {
    const SeriesBlockServerView view = cursor.Entry(e);
    if (view.sample_count() == 0) continue;  // no rows -> server absent
    auto [it, inserted] = index.try_emplace(view.server_id, accs.size());
    if (inserted) accs.emplace_back();
    Acc& acc = accs[it->second];
    acc.id = view.server_id;
    acc.entries.push_back(e);
    acc.backup_start = view.default_backup_start;
    acc.backup_end = view.default_backup_end;
    for (int64_t i = 0; i < view.sample_count(); ++i) {
      const MinuteStamp t = view.timestamps[i];
      if (t % interval != 0) {
        return Status::Invalid(StringPrintf(
            "timestamp %lld of server %s is off the %lld-minute grid",
            static_cast<long long>(t),
            std::string(view.server_id).c_str(),
            static_cast<long long>(interval)));
      }
      if (!acc.any) {
        acc.min_t = acc.max_t = t;
        acc.any = true;
      } else {
        acc.min_t = std::min(acc.min_t, t);
        acc.max_t = std::max(acc.max_t, t);
      }
    }
  }
  std::sort(accs.begin(), accs.end(),
            [](const Acc& a, const Acc& b) { return a.id < b.id; });

  // Pass 2, sorted order: build one server at a time straight from the
  // column views and hand it off before touching the next.
  for (const auto& acc : accs) {
    const int64_t len = (acc.max_t - acc.min_t) / interval + 1;
    SEAGULL_ASSIGN_OR_RETURN(
        LoadSeries series, LoadSeries::MakeEmpty(acc.min_t, interval, len));
    for (const int64_t e : acc.entries) {
      const SeriesBlockServerView view = cursor.Entry(e);
      for (int64_t i = 0; i < view.sample_count(); ++i) {
        // Duplicate timestamps keep the last value, as in GroupByServer.
        series.SetValue((view.timestamps[i] - acc.min_t) / interval,
                        view.values[i]);
      }
    }
    ServerTelemetry st;
    st.server_id.assign(acc.id);
    st.load = std::move(series);
    st.default_backup_start = acc.backup_start;
    st.default_backup_end = acc.backup_end;
    SEAGULL_RETURN_NOT_OK(fn(std::move(st)));
  }
  return Status::OK();
}

Result<std::vector<ServerTelemetry>> DecodeTelemetryBlob(
    std::string_view blob) {
  if (IsSeriesBlock(blob)) {
    // Borrowing cursor: `blob` outlives this call, and every view is
    // consumed before returning.
    SEAGULL_ASSIGN_OR_RETURN(SeriesBlockCursor cursor,
                             SeriesBlockCursor::Open(blob));
    std::vector<ServerTelemetry> out;
    out.reserve(static_cast<size_t>(cursor.size()));
    SEAGULL_RETURN_NOT_OK(
        StreamSeriesBlockServers(cursor, [&](ServerTelemetry&& st) {
          out.push_back(std::move(st));
          return Status::OK();
        }));
    return out;
  }
  SEAGULL_ASSIGN_OR_RETURN(auto records, ParseTelemetryCsv(blob));
  return GroupByServer(records);
}

}  // namespace seagull
