/// \file server_profile.h
/// \brief Synthetic server archetypes for the fleet simulator.
///
/// The paper evaluates on Azure production telemetry for tens of thousands
/// of PostgreSQL/MySQL servers. That data is proprietary, so this module
/// defines parametric load archetypes whose population statistics are
/// calibrated to the paper's Figure 3 classification: 42.1% short-lived,
/// 53.5% long-lived stable, 0.2% with a daily/weekly pattern, and 4.2%
/// long-lived unstable without a pattern.

#pragma once

#include <array>
#include <string>

#include "common/random.h"
#include "common/time.h"

namespace seagull {

/// \brief Ground-truth load shape of a simulated server.
///
/// These are generator archetypes, not the observed classes of §3.2 — the
/// feature-extraction module re-derives the observed classes from
/// telemetry, and the two agree only as well as the metrics allow, which
/// is exactly the property Figure 3 measures.
enum class ServerArchetype : int8_t {
  /// Load hovers around a constant base (Definition 4 should hold).
  kStable = 0,
  /// Identical intra-day shape every day (Definition 5 should hold).
  kDailyPattern = 1,
  /// Intra-day shape varies by day of week, repeating weekly
  /// (Definition 6 should hold, Definition 5 should not).
  kWeeklyPattern = 2,
  /// Mean-reverting random walk with regime shifts and bursts; neither
  /// pattern should hold.
  kNoPattern = 3,
};

const char* ServerArchetypeName(ServerArchetype a);

/// \brief Static description of one simulated server.
struct ServerProfile {
  std::string server_id;
  ServerArchetype archetype = ServerArchetype::kStable;

  /// Lifespan: [created_at, deleted_at). Short-lived servers have a
  /// lifespan under three weeks (Definition 3).
  MinuteStamp created_at = 0;
  MinuteStamp deleted_at = 0;

  /// Mean CPU load percentage.
  double base_load = 20.0;
  /// Per-sample Gaussian noise sigma (percentage points).
  double noise_sigma = 1.5;
  /// Peak-hour bump parameters for patterned servers: two bumps with
  /// centers (minutes of day), widths (minutes), and amplitudes (points).
  std::array<double, 2> bump_center = {10.5 * 60, 15.0 * 60};
  std::array<double, 2> bump_width = {120.0, 150.0};
  std::array<double, 2> bump_amplitude = {0.0, 0.0};
  /// Per-day-of-week scale of the bumps (weekly-pattern servers vary
  /// this; daily-pattern servers keep it flat at 1).
  std::array<double, 7> day_scale = {1, 1, 1, 1, 1, 1, 1};

  /// No-pattern dynamics: Ornstein–Uhlenbeck reversion rate and step
  /// sigma, regime-shift mean inter-arrival, and burst process.
  double ou_theta = 0.02;
  double ou_sigma = 3.0;
  double regime_mean_interarrival_minutes = 2.0 * kMinutesPerDay;
  double burst_rate_per_day = 1.0;
  double burst_magnitude = 30.0;

  /// Hard ceiling: the server cannot exceed this CPU percentage. The
  /// fleet-wide distribution of ceilings drives Figure 13(b).
  double capacity_ceiling = 100.0;

  /// A small tail of servers periodically saturates its CPU regardless
  /// of shape (the 3.7% that "reach their CPU capacity per week",
  /// Figure 13(b)); these get the burst process on top of any archetype.
  bool saturating = false;

  /// Expected duration of a full backup of this server (multiple of the
  /// telemetry interval). Drives the LL-window length b (Definition 7).
  int64_t backup_duration_minutes = 60;

  /// Synthetic database size; consistent with `backup_duration_minutes`
  /// at the backup engine's idle throughput, so a backup run in an idle
  /// window completes within its planned window.
  double database_size_mb = 6000.0;

  /// Day of week on which the weekly full backup is due.
  DayOfWeek backup_day = DayOfWeek::kSunday;

  /// Default backup window start (minute of day), chosen by the legacy
  /// automated workflow independently of customer activity (§1).
  int64_t default_backup_start_minute = 2 * kMinutesPerHour;

  /// Seed for this server's private noise stream.
  uint64_t seed = 0;

  bool IsAliveAt(MinuteStamp t) const {
    return t >= created_at && t < deleted_at;
  }
  int64_t LifespanMinutes() const { return deleted_at - created_at; }
  bool IsShortLived(int64_t long_lived_weeks = 3) const {
    return LifespanMinutes() < long_lived_weeks * kMinutesPerWeek;
  }
};

/// \brief Population parameters used when sampling server profiles.
struct ArchetypeMix {
  /// Fraction of the fleet that is short-lived (any shape).
  double short_lived = 0.421;
  /// Long-lived fractions; the four must sum with `short_lived` to 1.
  /// Slightly offset from the Figure 3 targets (53.5 / 0.1 / 0.1 / 4.2)
  /// because the saturating 3.7% tail and classification leakage shift a
  /// few stable generators into the observed no-pattern class.
  double stable = 0.555;
  double daily = 0.001;
  double weekly = 0.001;
  double no_pattern = 0.022;

  /// True if fractions are non-negative and sum to ~1.
  bool IsValid() const;
};

/// Draws one server profile. `horizon_minutes` is the simulation length;
/// short-lived servers get a lifespan shorter than three weeks placed
/// uniformly inside the horizon.
ServerProfile SampleProfile(const std::string& server_id,
                            const ArchetypeMix& mix, int64_t horizon_minutes,
                            Rng* rng);

}  // namespace seagull
