/// \file series_block_writer.h
/// \brief Streaming (incremental) SGB1 encoder.
///
/// `EncodeSeriesBlock` materializes every `TelemetryRecord` of a
/// region-week and then the whole output blob — at 1M servers that is
/// ~600 MB of rows plus a ~95 MB string per region just to *stage* the
/// fleet. `SeriesBlockWriter` produces byte-identical SGB1 output while
/// holding only (a) the directory metadata and (b) the value column,
/// because the format's column layout (ALL timestamps server-major,
/// then ALL values) means exactly one of the two columns can stream
/// straight to the sink while the other must wait for its turn.
///
/// Two-pass protocol (DESIGN.md "memory-plane round 2"):
///
///   1. *Sizing pass* — `Declare(id, sample_count, backup_start,
///      backup_end)` once per server, in the order servers should
///      appear. Declarations with zero samples are skipped entirely
///      (the record encoder never emits a directory entry for a server
///      with no rows). After the last declaration, `StartAppend()`
///      emits the header and the complete directory to the sink.
///   2. *Append pass* — `Append(id, timestamp, value)` for every
///      sample, servers in declaration order with each server's samples
///      contiguous and in row order. Timestamp words stream to the sink
///      in 256 KB chunks as they arrive; quantized value words are
///      buffered (8 bytes/sample — the irreducible second column).
///      `Finish()` flushes the value column and the FNV-1a trailer.
///
/// The checksum is folded incrementally over every byte as it is
/// emitted, so the writer never needs the blob in memory to compute the
/// trailer. Peak resident cost is `8 * total_samples` plus one chunk —
/// ~48 MB for a 1000-server region-week versus ~700 MB for the
/// materializing path; `peak_resident_bytes()` reports the measured
/// high-water mark for the bench gate.
///
/// Inputs with interleaved or duplicate server ids cannot stream (their
/// groups are not contiguous); `WriteSeriesBlockFromRecords` handles
/// them by grouping first, exactly as `EncodeSeriesBlock` does, and is
/// the drop-in replacement for `Put(key, EncodeSeriesBlock(rows))`
/// call sites.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "telemetry/records.h"

namespace seagull {

/// \brief Incremental SGB1 encoder; see file comment for the protocol.
class SeriesBlockWriter {
 public:
  /// Receives consecutive byte ranges of the blob, in order. Returning
  /// a non-OK status aborts the write and surfaces from the caller.
  using Sink = std::function<Status(std::string_view)>;

  explicit SeriesBlockWriter(Sink sink,
                             int64_t interval_minutes = kServerIntervalMinutes);

  /// Sizing pass: registers one server's directory entry. Zero-count
  /// declarations are dropped (byte-identity with the record encoder).
  /// Declaring after `StartAppend` or a duplicate id is an error.
  Status Declare(std::string_view server_id, int64_t sample_count,
                 int64_t default_backup_start, int64_t default_backup_end);

  /// Ends the sizing pass: emits header + directory to the sink.
  Status StartAppend();

  /// Append pass: one sample. Servers must arrive in declaration order,
  /// contiguously, each with exactly its declared sample count; the
  /// value is quantized through the CSV round trip exactly as
  /// `EncodeSeriesBlock` does.
  Status Append(std::string_view server_id, int64_t timestamp,
                double avg_cpu);

  /// Flushes the value column and the checksum trailer. After an OK
  /// `Finish` the sink has received a complete, decodable SGB1 blob.
  Status Finish();

  /// Total bytes handed to the sink so far.
  int64_t bytes_written() const { return bytes_written_; }

  /// High-water mark of internal buffering (directory metadata + value
  /// column + pending timestamp chunk) — the encoder's resident cost.
  int64_t peak_resident_bytes() const { return peak_resident_bytes_; }

 private:
  enum class State { kDeclaring, kAppending, kFinished, kFailed };

  struct Declared {
    std::string id;
    int64_t backup_start;
    int64_t backup_end;
    int64_t sample_count;
  };

  Status Emit(std::string_view bytes);
  Status FlushTimestamps();
  void NoteResident();
  Status Fail(Status st);

  Sink sink_;
  int64_t interval_minutes_;
  State state_ = State::kDeclaring;

  std::vector<Declared> directory_;
  int64_t declared_samples_ = 0;
  int64_t directory_bytes_ = 0;

  size_t append_slot_ = 0;      ///< directory index being filled
  int64_t slot_remaining_ = 0;  ///< samples left for the current slot

  std::string ts_chunk_;    ///< pending timestamp words, flushed at 256 KB
  std::string value_words_; ///< whole value column, flushed in Finish

  uint64_t checksum_;  ///< FNV-1a folded over every emitted byte
  int64_t bytes_written_ = 0;
  int64_t peak_resident_bytes_ = 0;
};

/// Streams `records` through a `SeriesBlockWriter`, grouping rows per
/// server in first-appearance order (interleaved/duplicate ids merge,
/// backup window taken from a group's last row) — byte-identical to
/// `EncodeSeriesBlock(records, interval_minutes)` for every input. If
/// `peak_resident_bytes` is non-null it receives the writer's
/// high-water mark.
Status WriteSeriesBlockFromRecords(const std::vector<TelemetryRecord>& records,
                                   int64_t interval_minutes,
                                   const SeriesBlockWriter::Sink& sink,
                                   int64_t* peak_resident_bytes = nullptr);

}  // namespace seagull
