/// \file emitter.h
/// \brief Load Extraction analog: turns the simulated fleet into the CSV
/// files the pipeline ingests.
///
/// In production, Load Extraction is a recurring query over raw telemetry
/// that writes per-region files into ADLS once a week (§2.2). Here the
/// emitter plays the role of that query against the fleet simulator.

#pragma once

#include "telemetry/fleet.h"
#include "telemetry/records.h"
#include "telemetry/series_block_writer.h"

namespace seagull {

/// \brief Options for one extraction run.
struct ExtractionOptions {
  /// Include this many weeks of history ending at the extraction week
  /// (the evaluation data sets contain four weeks, §5.3.1).
  int history_weeks = 4;
};

/// Extracts telemetry rows for one region covering the `history_weeks`
/// ending with week `week_index` (inclusive). Rows for minutes where a
/// server was not alive or telemetry was dropped are simply absent.
std::vector<TelemetryRecord> ExtractWeek(const Fleet& fleet,
                                         int64_t week_index,
                                         const ExtractionOptions& options = {});

/// Convenience: extraction straight to a CSV table.
CsvTable ExtractWeekCsv(const Fleet& fleet, int64_t week_index,
                        const ExtractionOptions& options = {});

/// Convenience: extraction straight to CSV text (streaming writer; use
/// this for large regions).
std::string ExtractWeekCsvText(const Fleet& fleet, int64_t week_index,
                               const ExtractionOptions& options = {});

/// Convenience: extraction straight to a binary `SeriesBlock` blob (the
/// columnar format ingestion decodes without the records intermediate).
std::string ExtractWeekBlock(const Fleet& fleet, int64_t week_index,
                             const ExtractionOptions& options = {});

/// Streaming extraction straight into `sink` as SGB1 bytes —
/// byte-identical to `ExtractWeekBlock` but never materializing the
/// records vector or the blob: the fleet is walked twice (a sizing pass
/// counting each server's present samples, then an append pass
/// regenerating and emitting them), so the resident cost is one
/// server's `LoadSeries` plus the writer's value-column buffer instead
/// of a whole region-week of rows. Pair with `LakeStore::PutStreamed`
/// to stage a region without ever holding its blob. If
/// `peak_resident_bytes` is non-null it receives the writer's
/// high-water mark.
Status ExtractWeekBlockTo(const Fleet& fleet, int64_t week_index,
                          const SeriesBlockWriter::Sink& sink,
                          const ExtractionOptions& options = {},
                          int64_t* peak_resident_bytes = nullptr);

/// The default backup window of a server in a given week, as stamps.
/// (The legacy workflow schedules the weekly full backup on the server's
/// backup day at its default start minute.)
void DefaultBackupWindow(const ServerProfile& profile, int64_t week_index,
                         MinuteStamp* start, MinuteStamp* end);

}  // namespace seagull
