#include "telemetry/azure_trace.h"

#include <algorithm>

#include "common/strings.h"

namespace seagull {

Result<std::vector<ServerTelemetry>> ImportAzureVmTrace(
    const std::string& text, const AzureTraceOptions& options) {
  std::vector<TelemetryRecord> records;
  size_t pos = 0;
  const size_t size = text.size();
  size_t line_no = 0;
  int64_t dropped = 0;
  while (pos < size) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = size;
    std::string_view line = std::string_view(text).substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    // Split into exactly 5 fields.
    std::string_view fields[5];
    size_t start = 0;
    int nf = 0;
    bool too_many = false;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (nf >= 5) {
          too_many = true;
          break;
        }
        fields[nf++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (too_many || nf != 5) {
      return Status::Invalid(StringPrintf(
          "trace line %zu has %s fields, expected 5", line_no,
          too_many ? ">5" : std::to_string(nf).c_str()));
    }
    // Header row (non-numeric first field) is allowed anywhere the
    // public dataset shards put it.
    auto ts = ParseInt64(fields[0]);
    if (!ts.ok()) {
      if (line_no == 1) continue;  // header
      return Status::Invalid(
          StringPrintf("trace line %zu has a bad timestamp", line_no));
    }
    SEAGULL_ASSIGN_OR_RETURN(double avg, ParseDouble(fields[4]));
    if (*ts % 300 != 0) {
      return Status::Invalid(StringPrintf(
          "trace line %zu timestamp %lld is off the 300 s cadence",
          line_no, static_cast<long long>(*ts)));
    }
    if (avg < 0.0 || avg > 100.0) {
      if (options.drop_out_of_range) {
        ++dropped;
        continue;
      }
      return Status::Invalid(
          StringPrintf("trace line %zu cpu out of range", line_no));
    }
    TelemetryRecord r;
    r.server_id.assign(fields[1]);
    r.timestamp = *ts / 60;  // seconds -> minutes
    r.avg_cpu = avg;
    records.push_back(std::move(r));
  }
  if (records.empty()) {
    return Status::Invalid("trace contains no usable rows");
  }

  SEAGULL_ASSIGN_OR_RETURN(auto grouped, GroupByServer(records));
  // Attach synthetic backup metadata: the trace has none, and the
  // scheduler needs a default window per server.
  for (auto& server : grouped) {
    int64_t first_day = DayIndex(server.load.start());
    server.default_backup_start = first_day * kMinutesPerDay +
                                  options.default_backup_start_minute;
    server.default_backup_end =
        server.default_backup_start + options.backup_duration_minutes;
  }
  return grouped;
}

std::string ExportToTelemetryCsv(
    const std::vector<ServerTelemetry>& servers) {
  std::vector<TelemetryRecord> records;
  for (const auto& server : servers) {
    for (int64_t i = 0; i < server.load.size(); ++i) {
      double v = server.load.ValueAt(i);
      if (IsMissing(v)) continue;
      TelemetryRecord r;
      r.server_id = server.server_id;
      r.timestamp = server.load.TimeAt(i);
      r.avg_cpu = v;
      r.default_backup_start = server.default_backup_start;
      r.default_backup_end = server.default_backup_end;
      records.push_back(std::move(r));
    }
  }
  return RecordsToCsvText(records);
}

}  // namespace seagull
