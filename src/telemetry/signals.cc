#include "telemetry/signals.h"

#include <algorithm>
#include <cmath>

namespace seagull {

const char* SignalKindName(SignalKind kind) {
  switch (kind) {
    case SignalKind::kCpu:
      return "cpu";
    case SignalKind::kMemory:
      return "memory";
    case SignalKind::kIo:
      return "io";
    case SignalKind::kConnections:
      return "connections";
  }
  return "unknown";
}

const LoadSeries& MultiSignalSeries::Get(SignalKind kind) const {
  switch (kind) {
    case SignalKind::kCpu:
      return cpu;
    case SignalKind::kMemory:
      return memory;
    case SignalKind::kIo:
      return io;
    case SignalKind::kConnections:
      return connections;
  }
  return cpu;
}

namespace {

/// Derives a companion signal from the CPU series. Deterministic given
/// (profile.seed, kind).
LoadSeries DeriveSignal(const ServerProfile& profile, const LoadSeries& cpu,
                        SignalKind kind) {
  Rng rng(profile.seed ^ (0x51617EA1ULL * (static_cast<uint64_t>(kind) + 1)));
  LoadSeries out = cpu;  // same grid and missingness

  switch (kind) {
    case SignalKind::kCpu:
      return out;
    case SignalKind::kMemory: {
      // Memory follows activity slowly (caches fill, connections pin
      // buffers) above a provisioning-dependent floor.
      double floor = rng.Uniform(15.0, 45.0);
      double state = floor;
      const double alpha = 0.02;  // slow leaky integral
      for (int64_t i = 0; i < cpu.size(); ++i) {
        double c = cpu.ValueAt(i);
        if (IsMissing(c)) {
          out.SetValue(i, kMissingValue);
          continue;
        }
        double target = floor + 0.6 * c;
        state += alpha * (target - state) + rng.Gaussian(0.0, 0.15);
        out.SetValue(i, std::clamp(state, 0.0, 100.0));
      }
      return out;
    }
    case SignalKind::kIo: {
      // I/O tracks activity with multiplicative noise plus independent
      // flush bursts (checkpoints, log rotation).
      double io_ratio = rng.Uniform(0.3, 0.9);
      MinuteStamp burst_until = cpu.start() - 1;
      double burst_level = 0.0;
      MinuteStamp next_burst = cpu.start() + static_cast<MinuteStamp>(
          rng.Exponential(6.0 * kMinutesPerHour));
      for (int64_t i = 0; i < cpu.size(); ++i) {
        MinuteStamp t = cpu.TimeAt(i);
        if (t >= next_burst) {
          burst_level = rng.Uniform(25.0, 70.0);
          burst_until = t + static_cast<MinuteStamp>(
              rng.Uniform(10.0, 45.0));
          next_burst = t + static_cast<MinuteStamp>(
              rng.Exponential(6.0 * kMinutesPerHour));
        }
        double c = cpu.ValueAt(i);
        if (IsMissing(c)) {
          out.SetValue(i, kMissingValue);
          continue;
        }
        double v = io_ratio * c * rng.Uniform(0.7, 1.3);
        if (t < burst_until) v += burst_level;
        out.SetValue(i, std::clamp(v, 0.0, 100.0));
      }
      return out;
    }
    case SignalKind::kConnections: {
      // Connections scale with activity above a small resident pool,
      // quantized to whole connections.
      double pool = rng.Uniform(2.0, 12.0);
      double per_point = rng.Uniform(0.5, 3.0);
      for (int64_t i = 0; i < cpu.size(); ++i) {
        double c = cpu.ValueAt(i);
        if (IsMissing(c)) {
          out.SetValue(i, kMissingValue);
          continue;
        }
        double v = pool + per_point * c + rng.Gaussian(0.0, 1.0);
        out.SetValue(i, std::max(0.0, std::round(v)));
      }
      return out;
    }
  }
  return out;
}

}  // namespace

LoadSeries GenerateSignal(const ServerProfile& profile, SignalKind kind,
                          MinuteStamp from, MinuteStamp to,
                          const GeneratorOptions& options) {
  LoadSeries cpu = GenerateLoad(profile, from, to, options);
  if (kind == SignalKind::kCpu) return cpu;
  return DeriveSignal(profile, cpu, kind);
}

MultiSignalSeries GenerateAllSignals(const ServerProfile& profile,
                                     MinuteStamp from, MinuteStamp to,
                                     const GeneratorOptions& options) {
  MultiSignalSeries signals;
  signals.cpu = GenerateLoad(profile, from, to, options);
  signals.memory = DeriveSignal(profile, signals.cpu, SignalKind::kMemory);
  signals.io = DeriveSignal(profile, signals.cpu, SignalKind::kIo);
  signals.connections =
      DeriveSignal(profile, signals.cpu, SignalKind::kConnections);
  return signals;
}

double SignalCorrelation(const LoadSeries& a, const LoadSeries& b) {
  if (a.empty() || b.empty() ||
      a.interval_minutes() != b.interval_minutes()) {
    return 0.0;
  }
  MinuteStamp lo = std::max(a.start(), b.start());
  MinuteStamp hi = std::min(a.end(), b.end());
  double sum_a = 0, sum_b = 0, sum_ab = 0, sum_a2 = 0, sum_b2 = 0;
  int64_t n = 0;
  for (MinuteStamp t = lo; t < hi; t += a.interval_minutes()) {
    double va = a.ValueAtTime(t);
    double vb = b.ValueAtTime(t);
    if (IsMissing(va) || IsMissing(vb)) continue;
    sum_a += va;
    sum_b += vb;
    sum_ab += va * vb;
    sum_a2 += va * va;
    sum_b2 += vb * vb;
    ++n;
  }
  if (n < 2) return 0.0;
  double nn = static_cast<double>(n);
  double cov = sum_ab / nn - (sum_a / nn) * (sum_b / nn);
  double var_a = sum_a2 / nn - (sum_a / nn) * (sum_a / nn);
  double var_b = sum_b2 / nn - (sum_b / nn) * (sum_b / nn);
  if (var_a <= 0 || var_b <= 0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

CrossSignalFeatures ComputeCrossSignalFeatures(
    const MultiSignalSeries& signals) {
  CrossSignalFeatures f;
  f.cpu_memory_correlation = SignalCorrelation(signals.cpu, signals.memory);
  f.cpu_io_correlation = SignalCorrelation(signals.cpu, signals.io);
  f.cpu_connections_correlation =
      SignalCorrelation(signals.cpu, signals.connections);

  int64_t io_bound = 0, compared = 0;
  double memory_sum = 0;
  int64_t memory_n = 0;
  for (int64_t i = 0; i < signals.cpu.size(); ++i) {
    double c = signals.cpu.ValueAt(i);
    double io = i < signals.io.size() ? signals.io.ValueAt(i)
                                      : kMissingValue;
    if (!IsMissing(c) && !IsMissing(io)) {
      ++compared;
      if (io > c + 20.0) ++io_bound;
    }
    double m = i < signals.memory.size() ? signals.memory.ValueAt(i)
                                         : kMissingValue;
    if (!IsMissing(m)) {
      memory_sum += m;
      ++memory_n;
    }
  }
  if (compared > 0) {
    f.io_bound_fraction =
        static_cast<double>(io_bound) / static_cast<double>(compared);
  }
  if (memory_n > 0) {
    f.mean_memory = memory_sum / static_cast<double>(memory_n);
  }
  return f;
}

}  // namespace seagull
