/// \file load_generator.h
/// \brief Deterministic synthetic load signal per server profile.
///
/// Given a `ServerProfile` and a time range, produces the server's ground
/// truth CPU load on the 5-minute telemetry grid. Generation is a pure
/// function of (profile.seed, range), so any component — the emitter, the
/// backup service, the impact evaluator — observes a consistent signal.

#pragma once

#include "telemetry/server_profile.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief Options controlling telemetry imperfections.
struct GeneratorOptions {
  /// Probability that any individual sample is dropped (missing), as
  /// happens with real telemetry agents.
  double missing_sample_rate = 0.0;
  /// Probability that a whole hour of samples is dropped.
  double missing_hour_rate = 0.0;
};

/// Generates the server's true load over [from, to) clipped to the
/// server's lifespan; samples outside the lifespan are missing.
LoadSeries GenerateLoad(const ServerProfile& profile, MinuteStamp from,
                        MinuteStamp to,
                        const GeneratorOptions& options = {});

/// Deterministic noiseless shape component at time `t` (no OU/regime
/// state, no noise). Exposed for tests that verify pattern geometry.
double ShapeAt(const ServerProfile& profile, MinuteStamp t);

}  // namespace seagull
