/// \file fleet.h
/// \brief Region-scoped fleets of simulated servers.
///
/// Seagull partitions all input data by Azure region and runs one
/// pipeline per region (§2.1). A `Fleet` is the simulator's view of one
/// region: its server profiles plus helpers to materialize their load.

#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "telemetry/load_generator.h"
#include "telemetry/server_profile.h"

namespace seagull {

/// \brief Parameters of one simulated region.
struct RegionConfig {
  std::string name = "region";
  int num_servers = 100;
  /// Simulation horizon in weeks; the paper's data sets span four weeks
  /// (three for the predictability gate + the backup week, §5.3.1).
  int weeks = 4;
  ArchetypeMix mix;
  GeneratorOptions telemetry;
  uint64_t seed = 42;

  int64_t HorizonMinutes() const {
    return static_cast<int64_t>(weeks) * kMinutesPerWeek;
  }
};

/// \brief All simulated servers of one region.
class Fleet {
 public:
  /// Samples `config.num_servers` profiles deterministically.
  static Fleet Generate(const RegionConfig& config);

  const RegionConfig& config() const { return config_; }
  const std::vector<ServerProfile>& servers() const { return servers_; }
  int64_t size() const { return static_cast<int64_t>(servers_.size()); }

  /// Finds a profile by id; nullptr if absent.
  const ServerProfile* Find(const std::string& server_id) const;

  /// Ground-truth load of one server over [from, to) — no telemetry
  /// dropout, for impact evaluation.
  LoadSeries TrueLoad(const ServerProfile& profile, MinuteStamp from,
                      MinuteStamp to) const;

  /// Observed telemetry of one server over [from, to) — includes the
  /// region's configured dropout.
  LoadSeries ObservedLoad(const ServerProfile& profile, MinuteStamp from,
                          MinuteStamp to) const;

 private:
  RegionConfig config_;
  std::vector<ServerProfile> servers_;
};

/// Builds the paper's four-regions-of-different-sizes evaluation setup
/// (§5.3.1) scaled by `scale` (1.0 keeps the default sizes).
std::vector<RegionConfig> MakeEvaluationRegions(double scale = 1.0,
                                                uint64_t seed = 42);

}  // namespace seagull
