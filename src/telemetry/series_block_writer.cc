#include "telemetry/series_block_writer.h"

#include <bit>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "telemetry/series_block.h"

namespace seagull {

namespace {

// Mirrors the constants and byte production of series_block.cc's
// encoder exactly; the property suite pins the two byte-identical.
constexpr char kMagic[4] = {'S', 'G', 'B', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
constexpr size_t kHeaderBytes = 36;
constexpr size_t kTimestampChunkBytes = 256 * 1024;

uint64_t Fnv1aFold(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

void AppendLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU32(std::string* out, uint32_t v) { AppendLE(out, v, 4); }
void AppendI64(std::string* out, int64_t v) {
  AppendLE(out, static_cast<uint64_t>(v), 8);
}

/// One 64-bit little-endian column word — the append-pass hot path, so
/// a single memcpy on little-endian hosts instead of eight pushes.
void AppendWord(std::string* out, uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out->append(buf, 8);
  } else {
    AppendLE(out, v, 8);
  }
}

}  // namespace

SeriesBlockWriter::SeriesBlockWriter(Sink sink, int64_t interval_minutes)
    : sink_(std::move(sink)),
      interval_minutes_(interval_minutes),
      checksum_(kFnvOffset) {}

Status SeriesBlockWriter::Fail(Status st) {
  state_ = State::kFailed;
  return st;
}

Status SeriesBlockWriter::Emit(std::string_view bytes) {
  checksum_ = Fnv1aFold(checksum_, bytes.data(), bytes.size());
  bytes_written_ += static_cast<int64_t>(bytes.size());
  Status st = sink_(bytes);
  if (!st.ok()) return Fail(std::move(st));
  return Status::OK();
}

void SeriesBlockWriter::NoteResident() {
  const int64_t resident = directory_bytes_ +
                           static_cast<int64_t>(ts_chunk_.size()) +
                           static_cast<int64_t>(value_words_.size());
  if (resident > peak_resident_bytes_) peak_resident_bytes_ = resident;
}

Status SeriesBlockWriter::Declare(std::string_view server_id,
                                  int64_t sample_count,
                                  int64_t default_backup_start,
                                  int64_t default_backup_end) {
  switch (state_) {
    case State::kDeclaring:
      break;
    case State::kFailed:
      return Status::Invalid("SeriesBlockWriter: writer already failed");
    default:
      return Fail(Status::Invalid(
          "SeriesBlockWriter: Declare after StartAppend"));
  }
  if (sample_count < 0) {
    return Fail(Status::Invalid(
        "SeriesBlockWriter: negative sample count for server '" +
        std::string(server_id) + "'"));
  }
  // A server with no rows produces no directory entry — exactly what
  // the record encoder does, since it derives the directory from rows.
  if (sample_count == 0) return Status::OK();
  for (const Declared& d : directory_) {
    if (d.id == server_id) {
      return Fail(Status::Invalid(
          "SeriesBlockWriter: duplicate declaration for server '" +
          std::string(server_id) +
          "' (merge duplicates before streaming, e.g. via "
          "WriteSeriesBlockFromRecords)"));
    }
  }
  Declared d;
  d.id.assign(server_id);
  d.backup_start = default_backup_start;
  d.backup_end = default_backup_end;
  d.sample_count = sample_count;
  directory_bytes_ += static_cast<int64_t>(sizeof(Declared) + d.id.size());
  directory_.push_back(std::move(d));
  declared_samples_ += sample_count;
  NoteResident();
  return Status::OK();
}

Status SeriesBlockWriter::StartAppend() {
  switch (state_) {
    case State::kDeclaring:
      break;
    case State::kFailed:
      return Status::Invalid("SeriesBlockWriter: writer already failed");
    default:
      return Fail(Status::Invalid("SeriesBlockWriter: StartAppend twice"));
  }
  std::string head;
  head.reserve(kHeaderBytes + directory_.size() * 28);
  head.append(kMagic, 4);
  AppendU32(&head, kVersion);
  AppendU32(&head, 0);  // reserved
  AppendI64(&head, interval_minutes_);
  AppendI64(&head, static_cast<int64_t>(directory_.size()));
  AppendI64(&head, declared_samples_);
  for (const Declared& d : directory_) {
    AppendU32(&head, static_cast<uint32_t>(d.id.size()));
    head.append(d.id);
    AppendI64(&head, d.backup_start);
    AppendI64(&head, d.backup_end);
    AppendI64(&head, d.sample_count);
  }
  state_ = State::kAppending;
  SEAGULL_RETURN_NOT_OK(Emit(head));
  // The value column's final size is known exactly; reserving up front
  // keeps the high-water mark at 8 * total_samples instead of letting
  // geometric growth overshoot by up to 2x mid-append.
  value_words_.reserve(static_cast<size_t>(declared_samples_) * 8);
  ts_chunk_.reserve(kTimestampChunkBytes + 8);
  append_slot_ = 0;
  slot_remaining_ = directory_.empty() ? 0 : directory_.front().sample_count;
  return Status::OK();
}

Status SeriesBlockWriter::FlushTimestamps() {
  if (ts_chunk_.empty()) return Status::OK();
  SEAGULL_RETURN_NOT_OK(Emit(ts_chunk_));
  ts_chunk_.clear();
  return Status::OK();
}

Status SeriesBlockWriter::Append(std::string_view server_id, int64_t timestamp,
                                 double avg_cpu) {
  switch (state_) {
    case State::kAppending:
      break;
    case State::kFailed:
      return Status::Invalid("SeriesBlockWriter: writer already failed");
    case State::kDeclaring:
      return Fail(Status::Invalid(
          "SeriesBlockWriter: Append before StartAppend"));
    default:
      return Fail(Status::Invalid("SeriesBlockWriter: Append after Finish"));
  }
  if (slot_remaining_ == 0) {
    ++append_slot_;
    if (append_slot_ >= directory_.size()) {
      return Fail(Status::Invalid(
          "SeriesBlockWriter: append past the declared sample total"));
    }
    slot_remaining_ = directory_[append_slot_].sample_count;
  }
  const Declared& current = directory_[append_slot_];
  if (server_id != current.id) {
    return Fail(Status::Invalid(
        "SeriesBlockWriter: appends must follow declaration order with "
        "each server contiguous (got '" +
        std::string(server_id) + "', expected '" + current.id + "')"));
  }
  AppendWord(&ts_chunk_, static_cast<uint64_t>(timestamp));
  AppendWord(&value_words_,
             std::bit_cast<uint64_t>(QuantizeCpuForStorage(avg_cpu)));
  --slot_remaining_;
  NoteResident();
  if (ts_chunk_.size() >= kTimestampChunkBytes) {
    SEAGULL_RETURN_NOT_OK(FlushTimestamps());
  }
  return Status::OK();
}

Status SeriesBlockWriter::Finish() {
  switch (state_) {
    case State::kDeclaring:
      // An all-zero (or empty) declaration set never enters the append
      // pass explicitly; emit the header for it now.
      SEAGULL_RETURN_NOT_OK(StartAppend());
      break;
    case State::kAppending:
      break;
    case State::kFailed:
      return Status::Invalid("SeriesBlockWriter: writer already failed");
    default:
      return Fail(Status::Invalid("SeriesBlockWriter: Finish twice"));
  }
  const bool undelivered =
      !directory_.empty() &&
      (append_slot_ + 1 < directory_.size() || slot_remaining_ > 0);
  if (undelivered) {
    return Fail(Status::Invalid(
        "SeriesBlockWriter: Finish with undelivered declared samples"));
  }
  SEAGULL_RETURN_NOT_OK(FlushTimestamps());
  SEAGULL_RETURN_NOT_OK(Emit(value_words_));
  value_words_.clear();
  value_words_.shrink_to_fit();
  const uint64_t sum = checksum_;  // trailer is not folded into itself
  std::string trailer;
  AppendLE(&trailer, sum, 8);
  SEAGULL_RETURN_NOT_OK(Emit(trailer));
  state_ = State::kFinished;
  return Status::OK();
}

Status WriteSeriesBlockFromRecords(const std::vector<TelemetryRecord>& records,
                                   int64_t interval_minutes,
                                   const SeriesBlockWriter::Sink& sink,
                                   int64_t* peak_resident_bytes) {
  // Group rows per server in first-appearance order with the
  // last-server fast path — the same walk (and therefore the same
  // directory order and last-row backup window) as EncodeSeriesBlock.
  struct Group {
    const TelemetryRecord* last = nullptr;
    std::vector<const TelemetryRecord*> rows;
  };
  std::unordered_map<std::string_view, size_t> index;
  std::vector<Group> groups;
  {
    std::string_view last_id;
    size_t last_slot = 0;
    bool have_last = false;
    for (const auto& r : records) {
      size_t slot;
      if (have_last && last_id == r.server_id) {
        slot = last_slot;
      } else {
        auto [it, inserted] = index.try_emplace(r.server_id, groups.size());
        if (inserted) groups.emplace_back();
        slot = it->second;
        last_id = it->first;
        last_slot = slot;
        have_last = true;
      }
      Group& g = groups[slot];
      g.rows.push_back(&r);
      g.last = &r;
    }
  }

  SeriesBlockWriter writer(sink, interval_minutes);
  for (const Group& g : groups) {
    SEAGULL_RETURN_NOT_OK(writer.Declare(
        g.rows.front()->server_id, static_cast<int64_t>(g.rows.size()),
        g.last->default_backup_start, g.last->default_backup_end));
  }
  SEAGULL_RETURN_NOT_OK(writer.StartAppend());
  for (const Group& g : groups) {
    for (const TelemetryRecord* r : g.rows) {
      SEAGULL_RETURN_NOT_OK(
          writer.Append(r->server_id, r->timestamp, r->avg_cpu));
    }
  }
  SEAGULL_RETURN_NOT_OK(writer.Finish());
  if (peak_resident_bytes != nullptr) {
    *peak_resident_bytes = writer.peak_resident_bytes();
  }
  return Status::OK();
}

}  // namespace seagull
