/// \file signals.h
/// \brief Additional telemetry signals beyond CPU (§2.2).
///
/// "For the backup scheduling scenario, we have selected the average
/// customer CPU load percentage ... Other signals (memory, I/O, number
/// of active connections, etc.) can be added to improve accuracy." This
/// module generates those signals consistently with a server's CPU
/// ground truth — memory as a slow leaky integral of activity, I/O as
/// activity-correlated bursts, connections as a discretized scaled
/// activity level — and derives the cross-signal features the paper's
/// Feature Extraction module would consume.

#pragma once

#include "telemetry/load_generator.h"

namespace seagull {

/// \brief Telemetry signal kinds.
enum class SignalKind : int8_t {
  kCpu = 0,          ///< average user CPU percent (the paper's signal)
  kMemory = 1,       ///< memory utilization percent
  kIo = 2,           ///< disk I/O utilization percent
  kConnections = 3,  ///< active connection count
};

const char* SignalKindName(SignalKind kind);

/// \brief All signals of one server over one range, on the CPU grid.
struct MultiSignalSeries {
  LoadSeries cpu;
  LoadSeries memory;
  LoadSeries io;
  LoadSeries connections;

  const LoadSeries& Get(SignalKind kind) const;
};

/// Generates one signal over [from, to). `kCpu` is identical to
/// `GenerateLoad`; the others are deterministic functions of the same
/// ground truth plus signal-specific dynamics seeded per (server, kind).
LoadSeries GenerateSignal(const ServerProfile& profile, SignalKind kind,
                          MinuteStamp from, MinuteStamp to,
                          const GeneratorOptions& options = {});

/// Generates all four signals at once (shares one CPU evaluation).
MultiSignalSeries GenerateAllSignals(const ServerProfile& profile,
                                     MinuteStamp from, MinuteStamp to,
                                     const GeneratorOptions& options = {});

/// \brief Cross-signal features for the Feature Extraction module.
struct CrossSignalFeatures {
  /// Pearson correlation of CPU with each companion signal over the
  /// jointly present samples; 0 when not computable.
  double cpu_memory_correlation = 0.0;
  double cpu_io_correlation = 0.0;
  double cpu_connections_correlation = 0.0;
  /// Fraction of samples where I/O exceeds CPU by 20+ points — an
  /// "I/O-bound" indicator that CPU-only scheduling would miss.
  double io_bound_fraction = 0.0;
  /// Mean memory level (memory pressure changes backup cost).
  double mean_memory = 0.0;
};

/// Computes the cross-signal features over the series' common range.
CrossSignalFeatures ComputeCrossSignalFeatures(
    const MultiSignalSeries& signals);

/// Pearson correlation over jointly present samples; 0 if undefined.
double SignalCorrelation(const LoadSeries& a, const LoadSeries& b);

}  // namespace seagull
