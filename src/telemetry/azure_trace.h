/// \file azure_trace.h
/// \brief Adapter for the Azure Public Dataset VM trace format.
///
/// Downstream users with real traces do not have the paper's internal
/// telemetry, but Microsoft publishes VM CPU readings in the Azure
/// Public Dataset (`vmtable`/`vm_cpu_readings`) as rows of
/// `timestamp,vm_id,min_cpu,max_cpu,avg_cpu` with timestamps in seconds
/// at a 300-second cadence. This adapter converts that format into the
/// library's `ServerTelemetry` so the whole pipeline — classification,
/// forecasting, scheduling — runs on real data unchanged.

#pragma once

#include <string>
#include <vector>

#include "telemetry/records.h"

namespace seagull {

/// \brief Import options.
struct AzureTraceOptions {
  /// The trace has no backup metadata; imported servers get this default
  /// backup duration and a default window at this minute of day.
  int64_t backup_duration_minutes = 60;
  int64_t default_backup_start_minute = 2 * kMinutesPerHour;
  /// Rows whose avg_cpu lies outside [0, 100] are dropped (the public
  /// trace normalizes utilization to percent; stray rows exist).
  bool drop_out_of_range = true;
};

/// Parses Azure-Public-Dataset-style CSV text
/// (`timestamp,vm_id,min_cpu,max_cpu,avg_cpu`, header optional,
/// timestamps in seconds since trace start, 300 s cadence) into grouped
/// per-server telemetry on the 5-minute grid.
Result<std::vector<ServerTelemetry>> ImportAzureVmTrace(
    const std::string& text, const AzureTraceOptions& options = {});

/// Exports grouped telemetry back into the library's native telemetry
/// CSV (e.g. to stage an imported trace into a lake store for the
/// pipeline).
std::string ExportToTelemetryCsv(const std::vector<ServerTelemetry>& servers);

}  // namespace seagull
