#include "store/resilient_store.h"

#include "common/obs/metrics.h"

namespace seagull {

Status ResilientStore::Retry(const std::string& op_key,
                             const std::function<Status()>& op) const {
  RetryOutcome outcome = RunWithRetry(policy_, op_key, op);
  retries_.fetch_add(outcome.retries(), std::memory_order_relaxed);
  if (outcome.retries() > 0) {
    MetricsRegistry::Global()
        .GetCounter("seagull.store.retries")
        ->Increment(outcome.retries());
  }
  if (outcome.exhausted) {
    MetricsRegistry::Global()
        .GetCounter("seagull.store.retries_exhausted")
        ->Increment();
  }
  return outcome.status;
}

Result<std::string> ResilientStore::LakeGet(const std::string& key) const {
  if (lake_ == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  std::string value;
  Status st = Retry("lake.get/" + key, [&] {
    SEAGULL_ASSIGN_OR_RETURN(value, lake_->Get(key));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return value;
}

Result<std::shared_ptr<const std::string>> ResilientStore::LakeGetShared(
    const std::string& key) const {
  if (lake_ == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  std::shared_ptr<const std::string> value;
  Status st = Retry("lake.get/" + key, [&] {
    SEAGULL_ASSIGN_OR_RETURN(value, lake_->GetShared(key));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return value;
}

Result<BlobRef> ResilientStore::LakeGetBlob(const std::string& key) const {
  if (lake_ == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  BlobRef value;
  Status st = Retry("lake.get/" + key, [&] {
    SEAGULL_ASSIGN_OR_RETURN(value, lake_->GetBlob(key));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return value;
}

Status ResilientStore::LakePut(const std::string& key,
                               const std::string& content) const {
  if (lake_ == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  return Retry("lake.put/" + key, [&] { return lake_->Put(key, content); });
}

Result<std::vector<std::string>> ResilientStore::LakeList(
    const std::string& prefix) const {
  if (lake_ == nullptr) {
    return Status::FailedPrecondition("no lake store configured");
  }
  std::vector<std::string> keys;
  Status st = Retry("lake.list/" + prefix, [&] {
    SEAGULL_ASSIGN_OR_RETURN(keys, lake_->List(prefix));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return keys;
}

Status ResilientStore::Upsert(const std::string& container,
                              Document doc) const {
  if (docs_ == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  Container* c = docs_->GetContainer(container);
  const std::string op_key =
      "doc.upsert/" + container + '/' + doc.partition_key + '/' + doc.id;
  // The document is copied per attempt: `Container::Upsert` consumes it.
  return Retry(op_key, [&] { return c->Upsert(doc); });
}

Result<Document> ResilientStore::Get(const std::string& container,
                                     const std::string& partition_key,
                                     const std::string& id) const {
  if (docs_ == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  Container* c = docs_->GetContainer(container);
  Document doc;
  Status st = Retry("doc.get/" + container + '/' + partition_key + '/' + id,
                    [&] {
                      SEAGULL_ASSIGN_OR_RETURN(doc,
                                               c->Get(partition_key, id));
                      return Status::OK();
                    });
  if (!st.ok()) return st;
  return doc;
}

Result<std::vector<Document>> ResilientStore::Query(
    const std::string& container,
    const std::function<bool(const Document&)>& pred) const {
  if (docs_ == nullptr) {
    return Status::FailedPrecondition("no document store configured");
  }
  Container* c = docs_->GetContainer(container);
  std::vector<Document> docs;
  Status st = Retry("doc.query/" + container, [&] {
    SEAGULL_ASSIGN_OR_RETURN(docs, c->QueryChecked(pred));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return docs;
}

}  // namespace seagull
