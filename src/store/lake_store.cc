#include "store/lake_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/fault.h"
#include "common/obs/op.h"
#include "common/strings.h"
#include "store/blob_cache.h"

namespace fs = std::filesystem;

namespace seagull {

namespace {

/// Single sized read of a whole file: one allocation, one `read()`,
/// instead of the streambuf-chunked `ostringstream << rdbuf()` copy.
Result<std::string> ReadWholeFile(const std::string& path,
                                  const std::string& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such blob: " + key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  std::string content(static_cast<size_t>(size), '\0');
  if (size > 0 &&
      !in.read(content.data(), static_cast<std::streamsize>(size))) {
    return Status::IOError("short read: " + key);
  }
  return content;
}

/// The (size, mtime) identity the cache keys entries on.
Result<BlobCache::Fingerprint> StatFingerprint(const std::string& path,
                                               const std::string& key) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  BlobCache::Fingerprint fp;
  fp.size = static_cast<int64_t>(size);
  fp.mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    mtime.time_since_epoch())
                    .count();
  return fp;
}

}  // namespace

Result<LakeStore> LakeStore::Open(const std::string& root_dir) {
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::IOError("cannot create lake root '" + root_dir +
                           "': " + ec.message());
  }
  return LakeStore(fs::absolute(root_dir).string());
}

Result<LakeStore> LakeStore::OpenTemporary(const std::string& name_hint) {
  static std::atomic<uint64_t> counter{0};
  fs::path base = fs::temp_directory_path() / "seagull-lake";
  std::string dir = StringPrintf(
      "%s-%s-%llu", base.string().c_str(), name_hint.c_str(),
      static_cast<unsigned long long>(counter.fetch_add(1)));
  return Open(dir);
}

Result<std::string> LakeStore::ResolvePath(const std::string& key) const {
  if (key.empty() || key.front() == '/' || key.find("..") != std::string::npos) {
    return Status::Invalid("invalid lake key: '" + key + "'");
  }
  return (fs::path(root_) / key).string();
}

Status LakeStore::Put(const std::string& key,
                      const std::string& content) const {
  ObsOp op("seagull.lake", "put");
  return op.Done([&]() -> Status {
    SEAGULL_FAULT_POINT("lake.put", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    fs::path p(path);
    std::error_code ec;
    if (p.has_parent_path()) {
      fs::create_directories(p.parent_path(), ec);
      if (ec) return Status::IOError("mkdir failed: " + ec.message());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write blob: " + key);
    out << content;
    if (!out) return Status::IOError("short write: " + key);
    if (cache_) cache_->Invalidate(key);
    return Status::OK();
  }());
}

Result<std::string> LakeStore::Get(const std::string& key) const {
  ObsOp op("seagull.lake", "get");
  return op.Done([&]() -> Result<std::string> {
    SEAGULL_FAULT_POINT("lake.get", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    return ReadWholeFile(path, key);
  }());
}

Result<std::shared_ptr<const std::string>> LakeStore::GetShared(
    const std::string& key) const {
  ObsOp op("seagull.lake", "get_shared");
  return op.Done([&]() -> Result<std::shared_ptr<const std::string>> {
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    BlobCache::Fingerprint fp;
    if (cache_) {
      SEAGULL_ASSIGN_OR_RETURN(fp, StatFingerprint(path, key));
      if (auto cached = cache_->Lookup(key, fp)) return cached;
    }
    // Miss path: the real read, where transient blob faults live.
    SEAGULL_FAULT_POINT("lake.get", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path, key));
    auto blob = std::make_shared<const std::string>(std::move(content));
    if (cache_) cache_->Insert(key, fp, blob);
    return blob;
  }());
}

void LakeStore::ConfigureCache(int64_t capacity_bytes) {
  cache_ = capacity_bytes > 0 ? std::make_shared<BlobCache>(capacity_bytes)
                              : nullptr;
}

bool LakeStore::Exists(const std::string& key) const {
  auto path = ResolvePath(key);
  if (!path.ok()) return false;
  return fs::exists(*path);
}

Status LakeStore::Delete(const std::string& key) const {
  ObsOp op("seagull.lake", "delete");
  return op.Done([&]() -> Status {
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::NotFound("cannot delete blob: " + key);
    }
    if (cache_) cache_->Invalidate(key);
    return Status::OK();
  }());
}

Result<std::vector<std::string>> LakeStore::List(
    const std::string& prefix) const {
  ObsOp op("seagull.lake", "list");
  return op.Done([&]() -> Result<std::vector<std::string>> {
    SEAGULL_FAULT_POINT("lake.list", prefix);
    std::vector<std::string> keys;
    if (prefix.find("..") != std::string::npos ||
        (!prefix.empty() && prefix.front() == '/')) {
      return keys;  // no key can match an escaping prefix
    }
    // Walk only the deepest directory the prefix implies instead of the
    // whole lake: "telemetry/region-m/week-" starts the scan at
    // telemetry/region-m/.
    fs::path root(root_);
    fs::path start = root;
    const size_t last_slash = prefix.rfind('/');
    if (last_slash != std::string::npos) {
      start /= prefix.substr(0, last_slash);
    }
    std::error_code ec;
    if (!fs::exists(start, ec)) return keys;
    for (auto it = fs::recursive_directory_iterator(start, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) return Status::IOError("listing failed: " + ec.message());
      if (!it->is_regular_file()) continue;
      std::string rel = fs::relative(it->path(), root).generic_string();
      if (StartsWith(rel, prefix)) keys.push_back(rel);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }());
}

Result<int64_t> LakeStore::SizeOf(const std::string& key) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  return static_cast<int64_t>(size);
}

Status LakeStore::PutCsv(const std::string& key, const CsvTable& table) const {
  return Put(key, WriteCsv(table));
}

Result<CsvTable> LakeStore::GetCsv(const std::string& key) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string text, Get(key));
  return ParseCsv(text);
}

std::string LakeStore::TelemetryKey(const std::string& region,
                                    int64_t week_index) {
  return StringPrintf("telemetry/%s/week-%04lld.csv", region.c_str(),
                      static_cast<long long>(week_index));
}

}  // namespace seagull
