#include "store/lake_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/fault.h"
#include "common/obs/op.h"
#include "common/strings.h"
#include "store/blob_cache.h"
#include "store/mmap_blob.h"

namespace fs = std::filesystem;

namespace seagull {

namespace {

/// Staging files for atomic writes live next to their target under this
/// name prefix; `List` skips them so a concurrent writer never leaks a
/// half-written key into a listing.
constexpr char kTmpPrefix[] = ".seagull-tmp.";

/// Single sized read of a whole file: one allocation, one `read()`,
/// instead of the streambuf-chunked `ostringstream << rdbuf()` copy.
Result<std::string> ReadWholeFile(const std::string& path,
                                  const std::string& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such blob: " + key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  std::string content(static_cast<size_t>(size), '\0');
  if (size > 0 &&
      !in.read(content.data(), static_cast<std::streamsize>(size))) {
    return Status::IOError("short read: " + key);
  }
  return content;
}

/// The (size, mtime, inode, ctime) identity the cache keys entries on —
/// one `stat(2)` instead of the two `std::filesystem` calls it
/// replaces. Inode catches rename-replacement, ctime catches in-place
/// same-size rewrites with a restored mtime (ctime is kernel-controlled
/// and can't be forged from userspace), both of which must never let a
/// cached mapping serve stale pages.
Result<BlobCache::Fingerprint> StatFingerprint(const std::string& path,
                                               const std::string& key) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("no such blob: " + key);
  }
  BlobCache::Fingerprint fp;
  fp.size = static_cast<int64_t>(st.st_size);
  fp.mtime_ns =
      static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 + st.st_mtim.tv_nsec;
  fp.inode = static_cast<int64_t>(st.st_ino);
  fp.ctime_ns =
      static_cast<int64_t>(st.st_ctim.tv_sec) * 1000000000 + st.st_ctim.tv_nsec;
  return fp;
}

}  // namespace

Result<LakeStore> LakeStore::Open(const std::string& root_dir) {
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::IOError("cannot create lake root '" + root_dir +
                           "': " + ec.message());
  }
  return LakeStore(fs::absolute(root_dir).string());
}

Result<LakeStore> LakeStore::OpenTemporary(const std::string& name_hint) {
  static std::atomic<uint64_t> counter{0};
  fs::path base = fs::temp_directory_path() / "seagull-lake";
  std::string dir = StringPrintf(
      "%s-%s-%llu", base.string().c_str(), name_hint.c_str(),
      static_cast<unsigned long long>(counter.fetch_add(1)));
  return Open(dir);
}

Result<std::string> LakeStore::ResolvePath(const std::string& key) const {
  if (key.empty() || key.front() == '/' || key.find("..") != std::string::npos) {
    return Status::Invalid("invalid lake key: '" + key + "'");
  }
  return (fs::path(root_) / key).string();
}

Status LakeStore::WriteAtomic(
    const std::string& key,
    const std::function<Status(std::ostream&)>& writer) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) return Status::IOError("mkdir failed: " + ec.message());
  }
  // Stage in the target's directory so the final rename never crosses a
  // filesystem boundary. Replacing via rename (not in-place truncate)
  // keeps the old inode alive under any live mmap of the previous blob.
  static std::atomic<uint64_t> tmp_counter{0};
  fs::path tmp =
      target.parent_path() /
      StringPrintf("%s%s.%lld.%llu", kTmpPrefix,
                   target.filename().string().c_str(),
                   static_cast<long long>(::getpid()),
                   static_cast<unsigned long long>(tmp_counter.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write blob: " + key);
    Status st = writer(out);
    if (!st.ok()) {
      out.close();
      fs::remove(tmp, ec);
      return st;
    }
    out.flush();
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return Status::IOError("short write: " + key);
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    return Status::IOError("rename failed for blob '" + key +
                           "': " + ec.message());
  }
  if (cache_) cache_->Invalidate(key);
  return Status::OK();
}

Status LakeStore::Put(const std::string& key,
                      const std::string& content) const {
  ObsOp op("seagull.lake", "put");
  return op.Done([&]() -> Status {
    SEAGULL_FAULT_POINT("lake.put", key);
    return WriteAtomic(key, [&](std::ostream& out) -> Status {
      out.write(content.data(),
                static_cast<std::streamsize>(content.size()));
      return Status::OK();
    });
  }());
}

Status LakeStore::PutStreamed(
    const std::string& key,
    const std::function<Status(std::ostream&)>& writer) const {
  ObsOp op("seagull.lake", "put");
  return op.Done([&]() -> Status {
    SEAGULL_FAULT_POINT("lake.put", key);
    return WriteAtomic(key, writer);
  }());
}

Result<std::string> LakeStore::Get(const std::string& key) const {
  ObsOp op("seagull.lake", "get");
  return op.Done([&]() -> Result<std::string> {
    SEAGULL_FAULT_POINT("lake.get", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    return ReadWholeFile(path, key);
  }());
}

Result<BlobRef> LakeStore::GetBlob(const std::string& key) const {
  ObsOp op("seagull.lake", "get_blob");
  return op.Done([&]() -> Result<BlobRef> {
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    BlobCache::Fingerprint fp;
    if (cache_) {
      SEAGULL_ASSIGN_OR_RETURN(fp, StatFingerprint(path, key));
      if (BlobRef cached = cache_->Lookup(key, fp)) return cached;
    }
    // Miss path: the real read, where transient blob faults live.
    SEAGULL_FAULT_POINT("lake.get", key);
    BlobRef blob;
    if (*mmap_enabled_) {
      SEAGULL_ASSIGN_OR_RETURN(blob, MmapBlob::Map(path, key));
    } else {
      SEAGULL_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path, key));
      blob = BlobRef(std::make_shared<const std::string>(std::move(content)));
    }
    if (cache_) cache_->Insert(key, fp, blob);
    return blob;
  }());
}

Result<std::shared_ptr<const std::string>> LakeStore::GetShared(
    const std::string& key) const {
  ObsOp op("seagull.lake", "get_shared");
  return op.Done([&]() -> Result<std::shared_ptr<const std::string>> {
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    BlobCache::Fingerprint fp;
    if (cache_) {
      SEAGULL_ASSIGN_OR_RETURN(fp, StatFingerprint(path, key));
      if (BlobRef cached = cache_->Lookup(key, fp)) {
        if (cached.heap()) return cached.heap();
        // The cache holds a mapping; this legacy caller wants a string.
        return std::make_shared<const std::string>(cached.view());
      }
    }
    // Miss path: the real read, where transient blob faults live. Reads
    // into a heap buffer regardless of the mmap setting so the returned
    // string (and the cached entry) are what the caller asked for.
    SEAGULL_FAULT_POINT("lake.get", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path, key));
    auto blob = std::make_shared<const std::string>(std::move(content));
    if (cache_) cache_->Insert(key, fp, blob);
    return blob;
  }());
}

void LakeStore::ConfigureCache(int64_t capacity_bytes) {
  cache_ = capacity_bytes > 0 ? std::make_shared<BlobCache>(capacity_bytes)
                              : nullptr;
}

void LakeStore::ConfigureMmap(bool enabled) { *mmap_enabled_ = enabled; }

bool LakeStore::Exists(const std::string& key) const {
  auto path = ResolvePath(key);
  if (!path.ok()) return false;
  return fs::exists(*path);
}

Status LakeStore::Delete(const std::string& key) const {
  ObsOp op("seagull.lake", "delete");
  return op.Done([&]() -> Status {
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::NotFound("cannot delete blob: " + key);
    }
    if (cache_) cache_->Invalidate(key);
    return Status::OK();
  }());
}

Result<std::vector<std::string>> LakeStore::List(
    const std::string& prefix) const {
  ObsOp op("seagull.lake", "list");
  return op.Done([&]() -> Result<std::vector<std::string>> {
    SEAGULL_FAULT_POINT("lake.list", prefix);
    std::vector<std::string> keys;
    if (prefix.find("..") != std::string::npos ||
        (!prefix.empty() && prefix.front() == '/')) {
      return keys;  // no key can match an escaping prefix
    }
    // Walk only the deepest directory the prefix implies instead of the
    // whole lake: "telemetry/region-m/week-" starts the scan at
    // telemetry/region-m/.
    fs::path root(root_);
    fs::path start = root;
    const size_t last_slash = prefix.rfind('/');
    if (last_slash != std::string::npos) {
      start /= prefix.substr(0, last_slash);
    }
    std::error_code ec;
    if (!fs::exists(start, ec)) return keys;
    for (auto it = fs::recursive_directory_iterator(start, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) return Status::IOError("listing failed: " + ec.message());
      if (!it->is_regular_file()) continue;
      if (StartsWith(it->path().filename().string(), kTmpPrefix)) continue;
      std::string rel = fs::relative(it->path(), root).generic_string();
      if (StartsWith(rel, prefix)) keys.push_back(rel);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }());
}

Result<int64_t> LakeStore::SizeOf(const std::string& key) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  return static_cast<int64_t>(size);
}

Status LakeStore::PutCsv(const std::string& key, const CsvTable& table) const {
  return Put(key, WriteCsv(table));
}

Result<CsvTable> LakeStore::GetCsv(const std::string& key) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string text, Get(key));
  return ParseCsv(text);
}

std::string LakeStore::TelemetryKey(const std::string& region,
                                    int64_t week_index) {
  return StringPrintf("telemetry/%s/week-%04lld.csv", region.c_str(),
                      static_cast<long long>(week_index));
}

}  // namespace seagull
