#include "store/lake_store.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "common/obs/op.h"
#include "common/strings.h"

namespace fs = std::filesystem;

namespace seagull {

Result<LakeStore> LakeStore::Open(const std::string& root_dir) {
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::IOError("cannot create lake root '" + root_dir +
                           "': " + ec.message());
  }
  return LakeStore(fs::absolute(root_dir).string());
}

Result<LakeStore> LakeStore::OpenTemporary(const std::string& name_hint) {
  static std::atomic<uint64_t> counter{0};
  fs::path base = fs::temp_directory_path() / "seagull-lake";
  std::string dir = StringPrintf(
      "%s-%s-%llu", base.string().c_str(), name_hint.c_str(),
      static_cast<unsigned long long>(counter.fetch_add(1)));
  return Open(dir);
}

Result<std::string> LakeStore::ResolvePath(const std::string& key) const {
  if (key.empty() || key.front() == '/' || key.find("..") != std::string::npos) {
    return Status::Invalid("invalid lake key: '" + key + "'");
  }
  return (fs::path(root_) / key).string();
}

Status LakeStore::Put(const std::string& key,
                      const std::string& content) const {
  ObsOp op("seagull.lake", "put");
  return op.Done([&]() -> Status {
    SEAGULL_FAULT_POINT("lake.put", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    fs::path p(path);
    std::error_code ec;
    if (p.has_parent_path()) {
      fs::create_directories(p.parent_path(), ec);
      if (ec) return Status::IOError("mkdir failed: " + ec.message());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write blob: " + key);
    out << content;
    if (!out) return Status::IOError("short write: " + key);
    return Status::OK();
  }());
}

Result<std::string> LakeStore::Get(const std::string& key) const {
  ObsOp op("seagull.lake", "get");
  return op.Done([&]() -> Result<std::string> {
    SEAGULL_FAULT_POINT("lake.get", key);
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("no such blob: " + key);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }());
}

bool LakeStore::Exists(const std::string& key) const {
  auto path = ResolvePath(key);
  if (!path.ok()) return false;
  return fs::exists(*path);
}

Status LakeStore::Delete(const std::string& key) const {
  ObsOp op("seagull.lake", "delete");
  return op.Done([&]() -> Status {
    SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::NotFound("cannot delete blob: " + key);
    }
    return Status::OK();
  }());
}

Result<std::vector<std::string>> LakeStore::List(
    const std::string& prefix) const {
  ObsOp op("seagull.lake", "list");
  return op.Done([&]() -> Result<std::vector<std::string>> {
    SEAGULL_FAULT_POINT("lake.list", prefix);
    std::vector<std::string> keys;
    fs::path root(root_);
    std::error_code ec;
    if (!fs::exists(root, ec)) return keys;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) return Status::IOError("listing failed: " + ec.message());
      if (!it->is_regular_file()) continue;
      std::string rel = fs::relative(it->path(), root).generic_string();
      if (StartsWith(rel, prefix)) keys.push_back(rel);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }());
}

Result<int64_t> LakeStore::SizeOf(const std::string& key) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("no such blob: " + key);
  return static_cast<int64_t>(size);
}

Status LakeStore::PutCsv(const std::string& key, const CsvTable& table) const {
  return Put(key, WriteCsv(table));
}

Result<CsvTable> LakeStore::GetCsv(const std::string& key) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string text, Get(key));
  return ParseCsv(text);
}

std::string LakeStore::TelemetryKey(const std::string& region,
                                    int64_t week_index) {
  return StringPrintf("telemetry/%s/week-%04lld.csv", region.c_str(),
                      static_cast<long long>(week_index));
}

}  // namespace seagull
