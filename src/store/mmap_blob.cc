#include "store/mmap_blob.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace seagull {

namespace {

int64_t PageSize() {
  static const int64_t page = []() {
    const long p = ::sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<int64_t>(p) : 4096;
  }();
  return page;
}

}  // namespace

int64_t MmapBlob::ResidentEstimate(int64_t size) {
  if (size <= 0) return 0;
  const int64_t page = PageSize();
  return (size + page - 1) / page * page;
}

Result<BlobRef> MmapBlob::Map(const std::string& path,
                              const std::string& key) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("no such blob: " + key);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("stat failed: " + key);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (len > 0) {
    addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("mmap failed: " + key + ": " +
                             std::strerror(err));
    }
  }
  // The mapping outlives the descriptor; drop it now so a pinned blob
  // never holds an fd against the process limit.
  ::close(fd);
  auto blob = std::shared_ptr<const MmapBlob>(new MmapBlob(addr, len));
  return BlobRef(blob->bytes(), blob);
}

MmapBlob::~MmapBlob() {
  if (addr_ != nullptr) ::munmap(addr_, len_);
}

}  // namespace seagull
