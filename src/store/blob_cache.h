/// \file blob_cache.h
/// \brief Sharded LRU cache of immutable lake blobs.
///
/// The FleetRunner's parallel region×week runs read overlapping 4-week
/// telemetry windows: with W weeks of history, every extraction is read
/// up to four times per fleet run, and twice that across back-to-back
/// runs. `BlobCache` keeps whole blobs in memory as `BlobRef`s —
/// heap strings on the classic path, page-cache-backed mappings on the
/// mmap path — so concurrent readers share one immutable buffer (or
/// mapping) instead of each copying the file.
///
/// Coherence rule: an entry is valid only while the backing file's
/// (size, mtime, inode, ctime) fingerprint matches the one captured at
/// insert time. `LakeStore::Put`/`Delete` invalidate eagerly; writes
/// that bypass the store (another process, direct filesystem edits) are
/// caught by the fingerprint check on the next lookup. The inode
/// component catches tmp+rename replacement (new inode, even at equal
/// size and a copied-back mtime); the ctime component catches in-place
/// truncate-to-same-size rewrites with a restored mtime, because ctime
/// is kernel-controlled and cannot be set backwards from userspace.
/// Both matter doubly for mapped entries, where serving a stale entry
/// would alias pages of a different file generation.
///
/// Accounting: heap entries charge their byte length; mapped entries
/// charge a page-rounded mapped-resident estimate (what the mapping
/// costs once fully faulted in), and `seagull.lake.cache_bytes` tracks
/// the same number.
///
/// Sharded by key hash: each shard has its own mutex, LRU list, and
/// capacity slice, so parallel regions touching different keys never
/// contend on one lock.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/blob_ref.h"

namespace seagull {

class Counter;
class Gauge;

/// \brief Thread-safe sharded LRU keyed by lake key.
class BlobCache {
 public:
  /// Identity of the file snapshot an entry caches. Field order is
  /// part of the API: older call sites aggregate-initialize the first
  /// two fields and rely on inode/ctime defaulting to zero.
  struct Fingerprint {
    int64_t size = 0;
    int64_t mtime_ns = 0;
    int64_t inode = 0;     ///< st_ino — changes on tmp+rename replace
    int64_t ctime_ns = 0;  ///< st_ctim — bumps on any in-place rewrite
    bool operator==(const Fingerprint& o) const {
      return size == o.size && mtime_ns == o.mtime_ns && inode == o.inode &&
             ctime_ns == o.ctime_ns;
    }
  };

  /// `capacity_bytes` is split evenly across shards; a blob larger than
  /// one shard's slice is served uncached.
  explicit BlobCache(int64_t capacity_bytes);

  /// The cached blob for `key` if present and its fingerprint still
  /// matches `fp`; an empty ref on miss. A stale entry (fingerprint
  /// mismatch) is dropped and counted as both an invalidation and a
  /// miss.
  BlobRef Lookup(const std::string& key, const Fingerprint& fp);

  /// Inserts (or replaces) the entry for `key`, evicting least-recently
  /// used entries from the shard as needed. An empty ref is ignored.
  void Insert(const std::string& key, const Fingerprint& fp, BlobRef blob);

  /// Heap-buffer convenience used by tests and the classic read path.
  void Insert(const std::string& key, const Fingerprint& fp,
              std::shared_ptr<const std::string> blob) {
    Insert(key, fp, BlobRef(std::move(blob)));
  }

  /// Drops `key` if cached (writer-side coherence: Put/Delete).
  void Invalidate(const std::string& key);

  /// Drops everything.
  void Clear();

  /// What an entry for `blob` charges against capacity: byte length
  /// for heap entries, page-rounded resident estimate for mappings.
  static int64_t ChargeOf(const BlobRef& blob);

  int64_t capacity_bytes() const { return capacity_bytes_; }
  int64_t size_bytes() const;
  int64_t entry_count() const;

 private:
  struct Entry {
    std::string key;
    Fingerprint fp;
    BlobRef blob;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    int64_t bytes = 0;
  };

  Shard& ShardOf(const std::string& key);
  void DropLocked(Shard& shard,
                  std::unordered_map<std::string,
                                     std::list<Entry>::iterator>::iterator it);

  static constexpr int kShards = 8;
  int64_t capacity_bytes_;
  int64_t shard_capacity_;
  Shard shards_[kShards];

  // Resolved once; the registry guarantees pointer stability.
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* invalidations_;
  Gauge* bytes_gauge_;
};

}  // namespace seagull
