/// \file blob_cache.h
/// \brief Sharded LRU cache of immutable lake blobs.
///
/// The FleetRunner's parallel region×week runs read overlapping 4-week
/// telemetry windows: with W weeks of history, every extraction is read
/// up to four times per fleet run, and twice that across back-to-back
/// runs. `BlobCache` keeps whole blobs in memory as
/// `std::shared_ptr<const std::string>` so concurrent readers share one
/// immutable buffer instead of each copying the file.
///
/// Coherence rule: an entry is valid only while the backing file's
/// (size, mtime) fingerprint matches the one captured at insert time.
/// `LakeStore::Put`/`Delete` invalidate eagerly; writes that bypass the
/// store (another process, direct filesystem edits) are caught by the
/// fingerprint check on the next lookup.
///
/// Sharded by key hash: each shard has its own mutex, LRU list, and
/// capacity slice, so parallel regions touching different keys never
/// contend on one lock.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace seagull {

class Counter;
class Gauge;

/// \brief Thread-safe sharded LRU keyed by lake key.
class BlobCache {
 public:
  /// Identity of the file snapshot an entry caches.
  struct Fingerprint {
    int64_t size = 0;
    int64_t mtime_ns = 0;
    bool operator==(const Fingerprint& o) const {
      return size == o.size && mtime_ns == o.mtime_ns;
    }
  };

  /// `capacity_bytes` is split evenly across shards; a blob larger than
  /// one shard's slice is served uncached.
  explicit BlobCache(int64_t capacity_bytes);

  /// The cached blob for `key` if present and its fingerprint still
  /// matches `fp`; nullptr on miss. A stale entry (fingerprint
  /// mismatch) is dropped and counted as both an invalidation and a
  /// miss.
  std::shared_ptr<const std::string> Lookup(const std::string& key,
                                            const Fingerprint& fp);

  /// Inserts (or replaces) the entry for `key`, evicting least-recently
  /// used entries from the shard as needed.
  void Insert(const std::string& key, const Fingerprint& fp,
              std::shared_ptr<const std::string> blob);

  /// Drops `key` if cached (writer-side coherence: Put/Delete).
  void Invalidate(const std::string& key);

  /// Drops everything.
  void Clear();

  int64_t capacity_bytes() const { return capacity_bytes_; }
  int64_t size_bytes() const;
  int64_t entry_count() const;

 private:
  struct Entry {
    std::string key;
    Fingerprint fp;
    std::shared_ptr<const std::string> blob;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    int64_t bytes = 0;
  };

  Shard& ShardOf(const std::string& key);

  static constexpr int kShards = 8;
  int64_t capacity_bytes_;
  int64_t shard_capacity_;
  Shard shards_[kShards];

  // Resolved once; the registry guarantees pointer stability.
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* invalidations_;
  Gauge* bytes_gauge_;
};

}  // namespace seagull
