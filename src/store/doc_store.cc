#include "store/doc_store.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/fault.h"
#include "common/obs/op.h"

namespace seagull {

Status Container::Upsert(Document doc) {
  ObsOp op("seagull.doc", "upsert");
  return op.Done([&]() -> Status {
    SEAGULL_FAULT_POINT("doc.upsert",
                        name_ + '/' + doc.partition_key + '/' + doc.id);
    std::lock_guard<std::mutex> lock(mu_);
    Key key{doc.partition_key, doc.id};
    docs_[key] = std::move(doc);
    return Status::OK();
  }());
}

Status Container::Insert(Document doc) {
  ObsOp op("seagull.doc", "insert");
  return op.Done([&]() -> Status {
    SEAGULL_FAULT_POINT("doc.insert",
                        name_ + '/' + doc.partition_key + '/' + doc.id);
    std::lock_guard<std::mutex> lock(mu_);
    Key key{doc.partition_key, doc.id};
    auto [it, inserted] = docs_.emplace(key, std::move(doc));
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("document exists: " + key.first + "/" +
                                   key.second);
    }
    return Status::OK();
  }());
}

Result<Document> Container::Get(const std::string& partition_key,
                                const std::string& id) const {
  ObsOp op("seagull.doc", "get");
  return op.Done([&]() -> Result<Document> {
    SEAGULL_FAULT_POINT("doc.get", name_ + '/' + partition_key + '/' + id);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = docs_.find({partition_key, id});
    if (it == docs_.end()) {
      return Status::NotFound("no document: " + partition_key + "/" + id);
    }
    return it->second;
  }());
}

Status Container::Delete(const std::string& partition_key,
                         const std::string& id) {
  ObsOp op("seagull.doc", "delete");
  return op.Done([&]() -> Status {
    std::lock_guard<std::mutex> lock(mu_);
    if (docs_.erase({partition_key, id}) == 0) {
      return Status::NotFound("no document: " + partition_key + "/" + id);
    }
    return Status::OK();
  }());
}

std::vector<Document> Container::ReadPartition(
    const std::string& partition_key) const {
  ObsOp op("seagull.doc", "read_partition");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Document> out;
  for (auto it = docs_.lower_bound({partition_key, ""});
       it != docs_.end() && it->first.first == partition_key; ++it) {
    out.push_back(it->second);
  }
  op.Done(Status::OK());
  return out;
}

int64_t Container::DropPartition(const std::string& partition_key) {
  ObsOp op("seagull.doc", "drop_partition");
  std::lock_guard<std::mutex> lock(mu_);
  auto begin = docs_.lower_bound({partition_key, ""});
  auto end = begin;
  while (end != docs_.end() && end->first.first == partition_key) ++end;
  int64_t dropped = static_cast<int64_t>(std::distance(begin, end));
  docs_.erase(begin, end);
  op.Done(Status::OK());
  return dropped;
}

std::vector<Document> Container::Query(
    const std::function<bool(const Document&)>& pred) const {
  ObsOp op("seagull.doc", "query");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Document> out;
  for (const auto& [key, doc] : docs_) {
    if (pred(doc)) out.push_back(doc);
  }
  op.Done(Status::OK());
  return out;
}

Result<std::vector<Document>> Container::QueryChecked(
    const std::function<bool(const Document&)>& pred) const {
  SEAGULL_FAULT_POINT("doc.query", name_);
  return Query(pred);
}

int64_t Container::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(docs_.size());
}

Container* DocStore::GetContainer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = containers_.find(name);
  if (it == containers_.end()) {
    it = containers_.emplace(name, std::make_unique<Container>(name)).first;
  }
  return it->second.get();
}

int64_t DocStore::DropPartition(const std::string& partition_key) {
  std::vector<Container*> containers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    containers.reserve(containers_.size());
    for (const auto& [name, c] : containers_) containers.push_back(c.get());
  }
  int64_t dropped = 0;
  for (Container* c : containers) dropped += c->DropPartition(partition_key);
  return dropped;
}

std::vector<std::string> DocStore::ContainerNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, c] : containers_) names.push_back(name);
  return names;
}

Json DocStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json root = Json::MakeObject();
  for (const auto& [name, container] : containers_) {
    Json arr = Json::MakeArray();
    for (const auto& doc : container->Query([](const Document&) {
           return true;
         })) {
      Json d = Json::MakeObject();
      d["pk"] = doc.partition_key;
      d["id"] = doc.id;
      d["body"] = doc.body;
      arr.Append(std::move(d));
    }
    root[name] = std::move(arr);
  }
  return root;
}

Status DocStore::Restore(const Json& snapshot) {
  if (!snapshot.is_object()) {
    return Status::Invalid("snapshot must be a JSON object");
  }
  std::lock_guard<std::mutex> lock(mu_);
  containers_.clear();
  for (const auto& [name, arr] : snapshot.AsObject()) {
    if (!arr.is_array()) {
      return Status::Invalid("container snapshot must be an array: " + name);
    }
    auto container = std::make_unique<Container>(name);
    for (const auto& d : arr.AsArray()) {
      Document doc;
      SEAGULL_ASSIGN_OR_RETURN(doc.partition_key, d.GetString("pk"));
      SEAGULL_ASSIGN_OR_RETURN(doc.id, d.GetString("id"));
      doc.body = d["body"];
      SEAGULL_RETURN_NOT_OK(container->Upsert(std::move(doc)));
    }
    containers_.emplace(name, std::move(container));
  }
  return Status::OK();
}

Status DocStore::SaveToFile(const std::string& path) const {
  std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return Status::IOError("mkdir failed: " + ec.message());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write snapshot: " + path);
  out << Snapshot().Dump();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status DocStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no snapshot file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  SEAGULL_ASSIGN_OR_RETURN(Json snapshot, Json::Parse(buf.str()));
  return Restore(snapshot);
}

}  // namespace seagull
