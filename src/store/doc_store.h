/// \file doc_store.h
/// \brief Partitioned JSON document store — the Cosmos DB analog.
///
/// Pipeline results (predictions, accuracy records, scheduled windows,
/// model-registry entries) are stored in Cosmos DB in production (§2.2).
/// `DocStore` reproduces the interaction pattern: named containers,
/// documents addressed by (partition key, id), upserts, point reads, and
/// filtered scans — with optional JSON-file persistence.
///
/// Mutating and point-read operations are instrumented with
/// fault-injection points (`doc.upsert`, `doc.insert`, `doc.get`,
/// `doc.query` — see common/fault.h); snapshot/restore and the
/// non-fallible scans are deliberately not, so test oracles can read
/// ground-truth state while faults are active.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace seagull {

/// \brief A stored document: addressing plus JSON body.
struct Document {
  std::string partition_key;
  std::string id;
  Json body;
};

/// \brief One named container of documents.
class Container {
 public:
  explicit Container(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Inserts or replaces the document at (partition_key, id).
  Status Upsert(Document doc);

  /// Inserts; fails with AlreadyExists if present.
  Status Insert(Document doc);

  /// Point read.
  Result<Document> Get(const std::string& partition_key,
                       const std::string& id) const;

  Status Delete(const std::string& partition_key, const std::string& id);

  /// All documents of one partition, ordered by id.
  std::vector<Document> ReadPartition(const std::string& partition_key) const;

  /// Erases every document of one partition, returning how many were
  /// dropped. This is the memory-plane release primitive: retiring a
  /// region after its shard completes frees its documents before the
  /// next shard materializes (std::map nodes are freed per-erase, so
  /// the working set shrinks immediately, not at container teardown).
  int64_t DropPartition(const std::string& partition_key);

  /// Full scan with a predicate over the JSON body.
  std::vector<Document> Query(
      const std::function<bool(const Document&)>& pred) const;

  /// `Query` behind the `doc.query` fault-injection point, for callers
  /// (e.g. `ResilientStore`) that want scan failures to be observable
  /// and retryable instead of silently absent.
  Result<std::vector<Document>> QueryChecked(
      const std::function<bool(const Document&)>& pred) const;

  int64_t Count() const;

 private:
  using Key = std::pair<std::string, std::string>;
  std::string name_;
  mutable std::mutex mu_;
  std::map<Key, Document> docs_;
};

/// \brief A set of named containers with JSON snapshot persistence.
class DocStore {
 public:
  DocStore() = default;
  DocStore(const DocStore&) = delete;
  DocStore& operator=(const DocStore&) = delete;

  /// Returns the container, creating it if absent.
  Container* GetContainer(const std::string& name);

  /// Names of existing containers, sorted.
  std::vector<std::string> ContainerNames() const;

  /// Drops the partition from every container (see
  /// `Container::DropPartition`), returning the total count erased.
  int64_t DropPartition(const std::string& partition_key);

  /// Serializes every container to one JSON document.
  Json Snapshot() const;

  /// Restores from a snapshot (replaces current contents).
  Status Restore(const Json& snapshot);

  /// Saves/loads the snapshot to/from a file.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Container>> containers_;
};

}  // namespace seagull
