#include "store/blob_cache.h"

#include <functional>

#include "common/obs/metrics.h"

namespace seagull {

BlobCache::BlobCache(int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes < 0 ? 0 : capacity_bytes),
      shard_capacity_(capacity_bytes_ / kShards) {
  auto& reg = MetricsRegistry::Global();
  hits_ = reg.GetCounter("seagull.lake.cache_events", {{"event", "hit"}});
  misses_ = reg.GetCounter("seagull.lake.cache_events", {{"event", "miss"}});
  evictions_ =
      reg.GetCounter("seagull.lake.cache_events", {{"event", "evict"}});
  invalidations_ =
      reg.GetCounter("seagull.lake.cache_events", {{"event", "invalidate"}});
  bytes_gauge_ = reg.GetGauge("seagull.lake.cache_bytes");
}

BlobCache::Shard& BlobCache::ShardOf(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

std::shared_ptr<const std::string> BlobCache::Lookup(const std::string& key,
                                                     const Fingerprint& fp) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->Increment();
    return nullptr;
  }
  if (!(it->second->fp == fp)) {
    // The file changed behind our back; the entry caches a dead snapshot.
    const int64_t stale_bytes = static_cast<int64_t>(it->second->blob->size());
    shard.bytes -= stale_bytes;
    bytes_gauge_->Add(-static_cast<double>(stale_bytes));
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_->Increment();
    misses_->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Increment();
  return it->second->blob;
}

void BlobCache::Insert(const std::string& key, const Fingerprint& fp,
                       std::shared_ptr<const std::string> blob) {
  const int64_t blob_bytes = static_cast<int64_t>(blob->size());
  if (blob_bytes > shard_capacity_) return;  // would evict a whole shard
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= static_cast<int64_t>(it->second->blob->size());
    bytes_gauge_->Add(-static_cast<double>(it->second->blob->size()));
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  while (shard.bytes + blob_bytes > shard_capacity_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= static_cast<int64_t>(victim.blob->size());
    bytes_gauge_->Add(-static_cast<double>(victim.blob->size()));
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_->Increment();
  }
  shard.lru.push_front(Entry{key, fp, std::move(blob)});
  shard.index[key] = shard.lru.begin();
  shard.bytes += blob_bytes;
  bytes_gauge_->Add(static_cast<double>(blob_bytes));
}

void BlobCache::Invalidate(const std::string& key) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.bytes -= static_cast<int64_t>(it->second->blob->size());
  bytes_gauge_->Add(-static_cast<double>(it->second->blob->size()));
  shard.lru.erase(it->second);
  shard.index.erase(it);
  invalidations_->Increment();
}

void BlobCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes_gauge_->Add(-static_cast<double>(shard.bytes));
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

int64_t BlobCache::size_bytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

int64_t BlobCache::entry_count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.index.size());
  }
  return total;
}

}  // namespace seagull
