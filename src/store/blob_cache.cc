#include "store/blob_cache.h"

#include <functional>
#include <utility>

#include "common/obs/metrics.h"
#include "store/mmap_blob.h"

namespace seagull {

BlobCache::BlobCache(int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes < 0 ? 0 : capacity_bytes),
      shard_capacity_(capacity_bytes_ / kShards) {
  auto& reg = MetricsRegistry::Global();
  hits_ = reg.GetCounter("seagull.lake.cache_events", {{"event", "hit"}});
  misses_ = reg.GetCounter("seagull.lake.cache_events", {{"event", "miss"}});
  evictions_ =
      reg.GetCounter("seagull.lake.cache_events", {{"event", "evict"}});
  invalidations_ =
      reg.GetCounter("seagull.lake.cache_events", {{"event", "invalidate"}});
  bytes_gauge_ = reg.GetGauge("seagull.lake.cache_bytes");
}

int64_t BlobCache::ChargeOf(const BlobRef& blob) {
  const int64_t size = static_cast<int64_t>(blob.size());
  return blob.mapped() ? MmapBlob::ResidentEstimate(size) : size;
}

BlobCache::Shard& BlobCache::ShardOf(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

void BlobCache::DropLocked(
    Shard& shard,
    std::unordered_map<std::string, std::list<Entry>::iterator>::iterator it) {
  const int64_t charge = ChargeOf(it->second->blob);
  shard.bytes -= charge;
  bytes_gauge_->Add(-static_cast<double>(charge));
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

BlobRef BlobCache::Lookup(const std::string& key, const Fingerprint& fp) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->Increment();
    return BlobRef();
  }
  if (!(it->second->fp == fp)) {
    // The file changed behind our back; the entry caches a dead
    // snapshot. Holders of refs handed out earlier keep the old buffer
    // (or mapping) alive — dropping here only drops the cache's pin.
    DropLocked(shard, it);
    invalidations_->Increment();
    misses_->Increment();
    return BlobRef();
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Increment();
  return it->second->blob;
}

void BlobCache::Insert(const std::string& key, const Fingerprint& fp,
                       BlobRef blob) {
  if (!blob) return;
  const int64_t charge = ChargeOf(blob);
  if (charge > shard_capacity_) return;  // would evict a whole shard
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) DropLocked(shard, it);
  while (shard.bytes + charge > shard_capacity_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    const int64_t victim_charge = ChargeOf(victim.blob);
    shard.bytes -= victim_charge;
    bytes_gauge_->Add(-static_cast<double>(victim_charge));
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_->Increment();
  }
  shard.lru.push_front(Entry{key, fp, std::move(blob)});
  shard.index[key] = shard.lru.begin();
  shard.bytes += charge;
  bytes_gauge_->Add(static_cast<double>(charge));
}

void BlobCache::Invalidate(const std::string& key) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  DropLocked(shard, it);
  invalidations_->Increment();
}

void BlobCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes_gauge_->Add(-static_cast<double>(shard.bytes));
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

int64_t BlobCache::size_bytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

int64_t BlobCache::entry_count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.index.size());
  }
  return total;
}

}  // namespace seagull
