/// \file mmap_blob.h
/// \brief Read-only `mmap(2)` mapping of a lake blob.
///
/// The heap read path (`ReadWholeFile`) copies every blob into a
/// `std::string` — at 1M servers that is ~95 MB of allocation and
/// memcpy per region-week before decode even starts, and the copy
/// lives in the process heap where it counts against peak RSS even
/// after `malloc_trim`. A mapping instead aliases the kernel page
/// cache: the bytes are faulted in on first touch, shared with every
/// other mapper of the same inode, and reclaimable by the kernel under
/// pressure without the process doing anything.
///
/// Staleness/safety contract (DESIGN.md "memory-plane round 2"):
///   - `LakeStore::Put` replaces blobs via tmp + `rename(2)`, never by
///     truncating in place, so a live mapping always covers a fully
///     written immutable inode — readers can never fault on a page a
///     writer is mid-truncate on (`SIGBUS`).
///   - `BlobCache` fingerprints include the inode and ctime, so a
///     rename-replace (new inode) or an in-place rewrite by an external
///     process (ctime bump) invalidates the cached mapping on the next
///     lookup instead of serving stale pages.
///   - The mapping is `MAP_PRIVATE` + `PROT_READ`: this process never
///     writes through it, and post-map changes to the file are not
///     required to be visible — the fingerprint check makes them a new
///     entry anyway.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/blob_ref.h"
#include "common/result.h"

namespace seagull {

/// \brief Owns one read-only file mapping; unmapped on destruction.
///
/// Constructed only through `Map`, which hands back a `BlobRef` whose
/// type-erased owner is the `MmapBlob` — holders of the ref (cache
/// entries, pinned cursors) keep the mapping alive, and the last one
/// out unmaps.
class MmapBlob {
 public:
  /// Maps `path` read-only. An empty file yields a valid ref with an
  /// empty view (zero-length mappings are not representable).
  /// `key` is used for error messages only.
  static Result<BlobRef> Map(const std::string& path, const std::string& key);

  MmapBlob(const MmapBlob&) = delete;
  MmapBlob& operator=(const MmapBlob&) = delete;
  ~MmapBlob();

  std::string_view bytes() const {
    if (addr_ == nullptr) return std::string_view();
    return std::string_view(static_cast<const char*>(addr_), len_);
  }

  /// Page-rounded resident-memory estimate for a mapping of `size`
  /// bytes — what a fully faulted-in mapping costs, and what the cache
  /// charges mapped entries at.
  static int64_t ResidentEstimate(int64_t size);

 private:
  MmapBlob(void* addr, size_t len) : addr_(addr), len_(len) {}

  void* addr_;  ///< null for the empty-file mapping-less case
  size_t len_;
};

}  // namespace seagull
