/// \file lake_store.h
/// \brief File-backed blob store — the Azure Data Lake Store analog.
///
/// Load Extraction writes per-region, per-week CSV files into ADLS and
/// the pipeline's ingestion module reads them back (§2.2). `LakeStore`
/// provides that contract over a local directory tree with simple
/// hierarchical keys like `telemetry/region-m/week-0003.csv`.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/result.h"

namespace seagull {

class BlobCache;

/// \brief Hierarchical blob storage rooted at a local directory.
///
/// `Put`, `Get`, and `List` are instrumented with fault-injection
/// points (`lake.put`, `lake.get`, `lake.list` — see common/fault.h)
/// so chaos tests and the CLI's `--fault-rate` can exercise transient
/// blob failures deterministically.
class LakeStore {
 public:
  /// Creates (if needed) and opens a store rooted at `root_dir`.
  static Result<LakeStore> Open(const std::string& root_dir);

  /// Opens a store in a fresh unique temporary directory.
  static Result<LakeStore> OpenTemporary(const std::string& name_hint);

  const std::string& root() const { return root_; }

  /// Writes a blob, creating intermediate directories.
  Status Put(const std::string& key, const std::string& content) const;

  /// Reads a whole blob.
  Result<std::string> Get(const std::string& key) const;

  /// Reads a whole blob as a shared immutable buffer. With the cache
  /// enabled (`ConfigureCache`), repeat reads of an unchanged file
  /// return the same buffer without touching the filesystem beyond a
  /// `stat`; parallel readers share one copy. Fault injection fires on
  /// the miss (real read) path only — a cache hit never re-reads.
  Result<std::shared_ptr<const std::string>> GetShared(
      const std::string& key) const;

  /// Enables an LRU blob cache of `capacity_bytes` serving `GetShared`
  /// (0 disables, the default). Copies of this store made after the
  /// call share the cache. Entries are keyed on key + file size/mtime,
  /// so external writes are detected; writes through this store
  /// invalidate eagerly.
  void ConfigureCache(int64_t capacity_bytes);

  /// The cache, if one is configured (test/bench introspection).
  const std::shared_ptr<BlobCache>& cache() const { return cache_; }

  bool Exists(const std::string& key) const;

  Status Delete(const std::string& key) const;

  /// Lists keys under a prefix (recursive), sorted.
  Result<std::vector<std::string>> List(const std::string& prefix) const;

  /// Size of a blob in bytes.
  Result<int64_t> SizeOf(const std::string& key) const;

  /// \name CSV conveniences.
  /// @{
  Status PutCsv(const std::string& key, const CsvTable& table) const;
  Result<CsvTable> GetCsv(const std::string& key) const;
  /// @}

  /// Canonical key of one region-week telemetry extraction.
  static std::string TelemetryKey(const std::string& region,
                                  int64_t week_index);

 private:
  explicit LakeStore(std::string root) : root_(std::move(root)) {}

  Result<std::string> ResolvePath(const std::string& key) const;

  std::string root_;
  std::shared_ptr<BlobCache> cache_;  ///< null = caching disabled
};

}  // namespace seagull
