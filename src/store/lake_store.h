/// \file lake_store.h
/// \brief File-backed blob store — the Azure Data Lake Store analog.
///
/// Load Extraction writes per-region, per-week CSV files into ADLS and
/// the pipeline's ingestion module reads them back (§2.2). `LakeStore`
/// provides that contract over a local directory tree with simple
/// hierarchical keys like `telemetry/region-m/week-0003.csv`.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/blob_ref.h"
#include "common/csv.h"
#include "common/result.h"

namespace seagull {

class BlobCache;

/// \brief Hierarchical blob storage rooted at a local directory.
///
/// `Put`, `Get`, and `List` are instrumented with fault-injection
/// points (`lake.put`, `lake.get`, `lake.list` — see common/fault.h)
/// so chaos tests and the CLI's `--fault-rate` can exercise transient
/// blob failures deterministically.
///
/// Writes are atomic: `Put`/`PutStreamed` stage into a hidden tmp file
/// next to the target and `rename(2)` over it, so readers — including
/// live `mmap` mappings handed out by `GetBlob` — always see either the
/// old complete blob or the new one, never a torn or truncated file.
class LakeStore {
 public:
  /// Creates (if needed) and opens a store rooted at `root_dir`.
  static Result<LakeStore> Open(const std::string& root_dir);

  /// Opens a store in a fresh unique temporary directory.
  static Result<LakeStore> OpenTemporary(const std::string& name_hint);

  const std::string& root() const { return root_; }

  /// Writes a blob atomically (tmp + rename), creating intermediate
  /// directories.
  Status Put(const std::string& key, const std::string& content) const;

  /// Writes a blob atomically by streaming through `writer`, which
  /// appends the content to the provided stream. The blob becomes
  /// visible (and replaces any previous one) only after `writer`
  /// returns OK and the stream flushed cleanly; on any failure the tmp
  /// file is discarded and the previous blob is untouched. This is the
  /// sink for `SeriesBlockWriter`-style incremental encoders: a
  /// region's blob is produced without ever holding it in memory.
  Status PutStreamed(const std::string& key,
                     const std::function<Status(std::ostream&)>& writer) const;

  /// Reads a whole blob.
  Result<std::string> Get(const std::string& key) const;

  /// Reads a blob as a shared immutable `BlobRef` — the primary read
  /// path. With mmap enabled (the default) the ref aliases a read-only
  /// page-cache-backed mapping: zero heap copies, bytes faulted on
  /// first touch, reclaimable by the kernel. With mmap disabled
  /// (`ConfigureMmap(false)`) it owns a heap buffer. With the cache
  /// enabled (`ConfigureCache`), repeat reads of an unchanged file
  /// return the same ref without touching the filesystem beyond a
  /// `stat`; parallel readers share one buffer/mapping. Fault injection
  /// fires on the miss (real read) path only — a cache hit never
  /// re-reads.
  Result<BlobRef> GetBlob(const std::string& key) const;

  /// Legacy whole-blob heap read: like `GetBlob` but always returns a
  /// heap string (copying out of a cached mapping if that is what the
  /// cache holds; reading into a fresh heap buffer on a miss). Prefer
  /// `GetBlob` on hot paths.
  Result<std::shared_ptr<const std::string>> GetShared(
      const std::string& key) const;

  /// Enables an LRU blob cache of `capacity_bytes` serving
  /// `GetBlob`/`GetShared` (0 disables, the default). Copies of this
  /// store made after the call share the cache. Entries are keyed on
  /// key + file (size, mtime, inode, ctime), so external writes —
  /// including rename-replaces and same-size in-place rewrites — are
  /// detected; writes through this store invalidate eagerly.
  void ConfigureCache(int64_t capacity_bytes);

  /// Chooses the miss-path read strategy for `GetBlob`: mmap (true,
  /// the default — the `--lake-mmap` CLI flag) or heap buffers.
  /// Copies of this store share the setting if made after the call.
  void ConfigureMmap(bool enabled);

  bool mmap_enabled() const { return *mmap_enabled_; }

  /// The cache, if one is configured (test/bench introspection).
  const std::shared_ptr<BlobCache>& cache() const { return cache_; }

  bool Exists(const std::string& key) const;

  Status Delete(const std::string& key) const;

  /// Lists keys under a prefix (recursive), sorted. In-flight atomic
  /// write staging files are never listed.
  Result<std::vector<std::string>> List(const std::string& prefix) const;

  /// Size of a blob in bytes.
  Result<int64_t> SizeOf(const std::string& key) const;

  /// \name CSV conveniences.
  /// @{
  Status PutCsv(const std::string& key, const CsvTable& table) const;
  Result<CsvTable> GetCsv(const std::string& key) const;
  /// @}

  /// Canonical key of one region-week telemetry extraction.
  static std::string TelemetryKey(const std::string& region,
                                  int64_t week_index);

 private:
  explicit LakeStore(std::string root)
      : root_(std::move(root)), mmap_enabled_(std::make_shared<bool>(true)) {}

  Result<std::string> ResolvePath(const std::string& key) const;
  Status WriteAtomic(const std::string& key,
                     const std::function<Status(std::ostream&)>& writer) const;

  std::string root_;
  std::shared_ptr<BlobCache> cache_;  ///< null = caching disabled
  std::shared_ptr<bool> mmap_enabled_;  ///< shared across store copies
};

}  // namespace seagull
