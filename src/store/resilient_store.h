/// \file resilient_store.h
/// \brief Retry-wrapped access to the lake and document stores.
///
/// The production pipeline never talks to ADLS/Cosmos raw: SDK-level
/// retries absorb transient faults before they become incidents (§2.2).
/// `ResilientStore` is that layer here — every operation runs under a
/// `RetryPolicy`, transient failures (as classified by
/// `IsRetryableStatus`) are retried with deterministic backoff, and the
/// number of retries spent is counted for run reports and tests.
///
/// Borrowing semantics match `PipelineContext`: the wrapper holds
/// non-owning pointers to stores that outlive it.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "store/doc_store.h"
#include "store/lake_store.h"

namespace seagull {

/// \brief Applies one retry policy to lake and document operations.
class ResilientStore {
 public:
  /// Either store may be null when a caller only needs the other half.
  ResilientStore(const LakeStore* lake, DocStore* docs,
                 RetryPolicy policy = {})
      : lake_(lake), docs_(docs), policy_(policy) {}

  const RetryPolicy& policy() const { return policy_; }

  /// \name Lake operations (fail with FailedPrecondition if no lake).
  /// @{
  Result<std::string> LakeGet(const std::string& key) const;
  /// Shared-buffer read: hits the lake's blob cache when configured
  /// (see `LakeStore::GetShared`); faults retry like `LakeGet`.
  Result<std::shared_ptr<const std::string>> LakeGetShared(
      const std::string& key) const;
  /// `BlobRef` read — the primary path: zero-copy mmap-backed bytes
  /// when the lake has mmap enabled (see `LakeStore::GetBlob`); faults
  /// retry like `LakeGet`.
  Result<BlobRef> LakeGetBlob(const std::string& key) const;
  Status LakePut(const std::string& key, const std::string& content) const;
  Result<std::vector<std::string>> LakeList(const std::string& prefix) const;
  /// @}

  /// \name Document operations (fail with FailedPrecondition if no docs).
  /// @{
  Status Upsert(const std::string& container, Document doc) const;
  Result<Document> Get(const std::string& container,
                       const std::string& partition_key,
                       const std::string& id) const;
  Result<std::vector<Document>> Query(
      const std::string& container,
      const std::function<bool(const Document&)>& pred) const;
  /// @}

  /// Retries spent across every operation since construction.
  int64_t total_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  /// Runs `op` under the policy and accumulates its retry count.
  Status Retry(const std::string& op_key,
               const std::function<Status()>& op) const;

  const LakeStore* lake_;
  DocStore* docs_;
  RetryPolicy policy_;
  mutable std::atomic<int64_t> retries_{0};
};

}  // namespace seagull
