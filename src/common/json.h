/// \file json.h
/// \brief Minimal JSON value model, parser, and serializer.
///
/// Used by the document store (Cosmos DB analog), the model registry, and
/// the dashboard for structured records. Supports the full JSON grammar
/// except for \u escapes beyond the ASCII range (telemetry never needs
/// them).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace seagull {

/// \brief A JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  enum class Type : int8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}         // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}            // NOLINT
  Json(int64_t i)                                           // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}    // NOLINT
  Json(std::string s)                                       // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// \name Typed accessors. Calling the wrong one is a programming error
  /// (checked by assert in debug builds); prefer the Get* result forms
  /// when handling untrusted documents.
  /// @{
  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return arr_; }
  Array& AsArray() { return arr_; }
  const Object& AsObject() const { return obj_; }
  Object& AsObject() { return obj_; }
  /// @}

  /// Object member access; returns null Json for missing keys.
  const Json& operator[](const std::string& key) const;
  /// Mutable object member access; inserts null for missing keys.
  Json& operator[](const std::string& key);

  /// True if this is an object containing `key`.
  bool Contains(const std::string& key) const;

  /// Checked member lookup on objects.
  Result<double> GetNumber(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;

  /// Appends to an array value.
  void Append(Json v) { arr_.push_back(std::move(v)); }

  /// Serializes to compact JSON text.
  std::string Dump() const;

  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses JSON text.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace seagull
